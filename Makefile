# Tier-1 verification gate: every PR must keep this green. The race
# detector is part of the gate so concurrency regressions in the serving
# path (web.Site, caches, metrics) are caught before merge.

GO ?= go

.PHONY: tier1 vet build test race bench

tier1: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...
