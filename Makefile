# Tier-1 verification gate: every PR must keep this green. The race
# detector is part of the gate so concurrency regressions in the serving
# path (web.Site, caches, metrics) are caught before merge; the allocation
# regression checks guard the conversion and HDFS range-read hot paths
# (alloc tests skip under -race, so they get a dedicated non-race run).

GO ?= go

.PHONY: tier1 vet build test race alloccheck chaosshort chaos bench benchall trace scale edge elastic tenant

tier1: vet build race alloccheck chaosshort

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

alloccheck:
	$(GO) test -run 'TestAlloc' ./internal/video/ ./internal/hdfs/ ./internal/trace/ ./internal/ingress/ ./internal/edge/ ./internal/tenant/

# Short-mode chaos soak: the seeded fault-injection run (host crash,
# DataNode crash, block corruption, tracker death mid-job) at reduced
# workload scale, plus the elastic flash-crowd-while-host-crashes case,
# under the race detector — part of the tier-1 gate.
chaosshort:
	$(GO) test -race -short -count=1 -run 'TestChaosSoak|TestElasticChaos' ./internal/core/

# Full chaos soak with the recovery report: per-fault-class detection
# latency and MTTR land in BENCH_recovery.json for comparison across PRs.
# CHAOS_SEED=N reproduces a specific run.
chaos:
	CHAOS_BENCH_OUT=$(CURDIR)/BENCH_recovery.json \
		$(GO) test -race -count=1 -run 'TestChaosSoak' ./internal/core/
	@echo "wrote BENCH_recovery.json (seed $$(grep -m1 '"seed"' BENCH_recovery.json | tr -dc 0-9))"

# Serving-fleet scale sweep: closed-loop Zipf viewers against 1/4/8
# NIC-capped frontends plus the flash-crowd single-flight phase; the rows
# and flash report land in BENCH_scale.json for comparison across PRs.
scale:
	SCALE_BENCH_OUT=$(CURDIR)/BENCH_scale.json \
		$(GO) test -short -count=1 -run 'TestScaleBench' ./internal/experiments/
	@echo "wrote BENCH_scale.json ($$(grep -c '"throughput_x"' BENCH_scale.json) fleet rows + flash report)"

# Edge-cache delivery sweep: segmented ABR viewers against one persistent
# 4-frontend fleet plus the live-ingest phase; origin-offload rows and the
# live staleness report land in BENCH_edge.json for comparison across PRs.
edge:
	EDGE_BENCH_OUT=$(CURDIR)/BENCH_edge.json \
		$(GO) test -count=1 -run 'TestEdgeBench' ./internal/experiments/
	@echo "wrote BENCH_edge.json ($$(grep -c '"offload_pct"' BENCH_edge.json) sweep rows + live report)"

# Elasticity + rebalance soak (E16): a diurnal transcode wave with a 6x
# flash crowd and a mid-run host crash against the closed-loop elastic
# controller, then hot-host rebalancing; the windows, job/drain ledgers,
# and spread report land in BENCH_elastic.json for comparison across PRs.
elastic:
	ELASTIC_BENCH_OUT=$(CURDIR)/BENCH_elastic.json \
		$(GO) test -count=1 -run 'TestElasticBench' ./internal/experiments/
	@echo "wrote BENCH_elastic.json ($$(grep -c '"phase"' BENCH_elastic.json) windows + ledgers + spread report)"

# Multi-tenancy bench (E17): a bulk tenant floods the transcode intake
# while a victim tenant streams; the isolation ratio, throttle/quota
# counters, and the exact ledger reconciliation (ledger == database ==
# HDFS walk == reservation; vm-seconds == orchestrator state log) land in
# BENCH_tenant.json for comparison across PRs.
tenant:
	TENANT_BENCH_OUT=$(CURDIR)/BENCH_tenant.json \
		$(GO) test -count=1 -run 'TestTenantBench' ./internal/experiments/
	@echo "wrote BENCH_tenant.json ($$(grep -c '"name"' BENCH_tenant.json) tenant ledgers + isolation report)"

# Hot-path benchmarks: -cpu 1,4 shows how the conversion worker pool and
# the HDFS block fan-out scale with real cores; results land in
# BENCH_convert.json / BENCH_hdfs.json for regression comparison across
# PRs (BenchmarkReadRange's B/op is the chunked-checksum gate;
# BenchmarkStreamCached's B/op is the zero-copy block-cache gate).
bench:
	$(GO) test -json -run '^$$' -bench 'BenchmarkTranscoderConvert|BenchmarkFarm|BenchmarkSplit|BenchmarkMerge' \
		-benchmem -cpu 1,4 ./internal/video/ > BENCH_convert.json
	@echo "wrote BENCH_convert.json ($$(grep -c ns/op BENCH_convert.json) benchmark results)"
	$(GO) test -json -run '^$$' -bench 'BenchmarkReadRange|BenchmarkReadFile|BenchmarkWriteFile|BenchmarkStream' \
		-benchmem -cpu 1,4 ./internal/hdfs/ > BENCH_hdfs.json
	@echo "wrote BENCH_hdfs.json ($$(grep -c ns/op BENCH_hdfs.json) benchmark results)"

benchall:
	$(GO) test -bench . -benchtime 1x ./...

# Tracing-overhead benchmarks: disabled (must be 0 allocs/op), head-sampled,
# and always-on span paths plus the critical-path extractor; results land in
# BENCH_trace.json for regression comparison across PRs.
trace:
	$(GO) test -json -run '^$$' -bench 'BenchmarkTrace' -benchmem ./internal/trace/ > BENCH_trace.json
	@echo "wrote BENCH_trace.json ($$(grep -c ns/op BENCH_trace.json) benchmark results)"
