package videocloud

// One benchmark per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). Each wraps the corresponding experiments.E* harness —
// which also asserts the expected qualitative shape and panics on violation
// — and additionally reports the headline number via b.ReportMetric. Run:
//
//	go test -bench=. -benchmem
//
// Micro-benchmarks of the hot substrate paths follow the E* wrappers.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"videocloud/internal/experiments"
	"videocloud/internal/hdfs"
	"videocloud/internal/metrics"
	"videocloud/internal/search"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
)

// cell extracts a named column's value from a table row for ReportMetric.
// Cells may contain spaces, so columns are located by their byte offsets in
// the padded header line rather than by whitespace splitting. A negative
// row counts from the end (-1 = last row).
func cell(t *metrics.Table, row int, col string) float64 {
	lines := strings.Split(strings.TrimSpace(t.String()), "\n")
	if len(lines) < 4 {
		return 0
	}
	header := lines[1]
	start := strings.Index(header, col)
	if start < 0 {
		return 0
	}
	// The column ends where the next column's name begins (scan for the
	// first non-space after the name's padding), or at end of line.
	end := len(header)
	for i := start + len(col); i < len(header)-1; i++ {
		if header[i] == ' ' && header[i+1] != ' ' {
			end = i + 1
			break
		}
	}
	dataLines := lines[3:]
	if row < 0 {
		row = len(dataLines) + row
	}
	if row < 0 || row >= len(dataLines) {
		return 0
	}
	line := dataLines[row]
	if start >= len(line) {
		return 0
	}
	if end > len(line) {
		end = len(line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[start:end]), 64)
	if err != nil {
		return 0
	}
	return v
}

// runE executes an experiment harness b.N times, converting shape-violation
// panics into benchmark failures.
func runE(b *testing.B, fn func() *metrics.Table) *metrics.Table {
	b.Helper()
	var tbl *metrics.Table
	defer func() {
		if r := recover(); r != nil {
			b.Fatalf("experiment shape violation: %v", r)
		}
	}()
	for i := 0; i < b.N; i++ {
		tbl = fn()
	}
	return tbl
}

// BenchmarkE1LiveMigration — Figures 8-10: pre-copy live migration sweep.
func BenchmarkE1LiveMigration(b *testing.B) {
	tbl := runE(b, experiments.E1LiveMigration)
	b.ReportMetric(cell(tbl, 2, "downtime_ms"), "downtime_ms/1GB-40MBps")
}

// BenchmarkE1bMigrationAlgorithms — refs [20][21]: pre/post/stop-and-copy.
func BenchmarkE1bMigrationAlgorithms(b *testing.B) {
	tbl := runE(b, experiments.E1bMigrationAlgorithms)
	b.ReportMetric(cell(tbl, 1, "downtime_ms"), "precopy_downtime_ms")
	b.ReportMetric(cell(tbl, 0, "downtime_ms"), "stopcopy_downtime_ms")
}

// BenchmarkE1cMigrationUnderContention — migration sharing the link with
// service traffic.
func BenchmarkE1cMigrationUnderContention(b *testing.B) {
	tbl := runE(b, experiments.E1cMigrationUnderContention)
	b.ReportMetric(cell(tbl, -1, "total_s"), "total_s/3-flows")
}

// BenchmarkE6cConsolidation — §III-A "economize power" via live migration.
func BenchmarkE6cConsolidation(b *testing.B) {
	tbl := runE(b, experiments.E6cConsolidation)
	b.ReportMetric(cell(tbl, -1, "empty_hosts"), "hosts_freed")
}

// BenchmarkE8bSpeculativeExecution — straggler mitigation ablation.
func BenchmarkE8bSpeculativeExecution(b *testing.B) {
	tbl := runE(b, experiments.E8bSpeculativeExecution)
	b.ReportMetric(cell(tbl, 1, "job_s"), "degraded_job_s")
	b.ReportMetric(cell(tbl, 2, "job_s"), "speculative_job_s")
}

// BenchmarkE2ParallelTranscode — Figure 16: distributed FFmpeg conversion.
func BenchmarkE2ParallelTranscode(b *testing.B) {
	tbl := runE(b, experiments.E2ParallelTranscode)
	b.ReportMetric(cell(tbl, -1, "speedup"), "speedup/16-nodes")
}

// BenchmarkE3IndexConstruction — §I claim: MapReduce index build scaling.
func BenchmarkE3IndexConstruction(b *testing.B) {
	tbl := runE(b, experiments.E3IndexConstruction)
	b.ReportMetric(cell(tbl, -1, "speedup"), "speedup/16-trackers")
}

// BenchmarkE4SearchVsScan — §III claim: index search vs direct DB scan.
func BenchmarkE4SearchVsScan(b *testing.B) {
	tbl := runE(b, experiments.E4SearchVsScan)
	b.ReportMetric(cell(tbl, -1, "scan_over_index"), "scan_over_index/50k")
}

// BenchmarkE5VirtOverhead — Figures 1-2: full vs para virtualization.
func BenchmarkE5VirtOverhead(b *testing.B) {
	tbl := runE(b, experiments.E5VirtOverhead)
	b.ReportMetric(cell(tbl, 1, "cpu_overhead_pct"), "para_cpu_pct")
	b.ReportMetric(cell(tbl, 3, "cpu_overhead_pct"), "full_cpu_pct")
}

// BenchmarkE6Placement — §III-A: Capacity Manager policies.
func BenchmarkE6Placement(b *testing.B) {
	tbl := runE(b, experiments.E6Placement)
	b.ReportMetric(cell(tbl, 0, "hosts_used"), "packing_hosts")
	b.ReportMetric(cell(tbl, 1, "hosts_used"), "striping_hosts")
}

// BenchmarkE6bProvisioning — §II-C: COW clone vs full image copy.
func BenchmarkE6bProvisioning(b *testing.B) {
	tbl := runE(b, experiments.E6bProvisioning)
	b.ReportMetric(cell(tbl, 0, "deploy_s"), "cow_deploy_s")
	b.ReportMetric(cell(tbl, 1, "deploy_s"), "full_deploy_s")
}

// BenchmarkE7HDFSReplication — Figure 11: replication & failure repair.
func BenchmarkE7HDFSReplication(b *testing.B) {
	tbl := runE(b, experiments.E7HDFSReplication)
	b.ReportMetric(cell(tbl, 2, "blocks_repaired"), "rf3_blocks_repaired")
}

// BenchmarkE8MapReduceScaling — Figure 12: job scaling + locality ablation.
func BenchmarkE8MapReduceScaling(b *testing.B) {
	tbl := runE(b, experiments.E8MapReduceScaling)
	b.ReportMetric(cell(tbl, 3, "local_frac"), "local_frac/8-trackers")
}

// BenchmarkE9EndToEnd — Figures 17-23: the full user journey.
func BenchmarkE9EndToEnd(b *testing.B) {
	runE(b, experiments.E9EndToEnd)
}

// BenchmarkE9bConcurrentLoad — site throughput under concurrent viewers.
func BenchmarkE9bConcurrentLoad(b *testing.B) {
	tbl := runE(b, experiments.E9bConcurrentLoad)
	// Row 4 is the 32-user sweep level; per-route rows follow it.
	b.ReportMetric(cell(tbl, 4, "req_per_s"), "rps/32-users")
}

// BenchmarkE10FullStack — Figures 6/13/14 + 8-10: the whole stack with a
// live migration mid-stream.
func BenchmarkE10FullStack(b *testing.B) {
	runE(b, experiments.E10FullStack)
}

// BenchmarkE11AutoScaling — a VoD day against an auto-scaled fleet.
func BenchmarkE11AutoScaling(b *testing.B) {
	tbl := runE(b, experiments.E11AutoScaling)
	b.ReportMetric(cell(tbl, -1, "max_fleet"), "peak_fleet")
}

// BenchmarkE13CriticalPath — per-layer critical-path attribution of one
// traced upload and one traced playback (the last row is the playback
// coverage; the harness asserts ≥95% for both phases).
func BenchmarkE13CriticalPath(b *testing.B) {
	tbl := runE(b, experiments.E13CriticalPath)
	b.ReportMetric(cell(tbl, -1, "share_pct"), "playback_coverage_pct")
}

// BenchmarkE14ServingScale — closed-loop Zipf load against 1/4/8 NIC-capped
// frontends over a 4-shard metadata store, plus a flash crowd exercising the
// single-flight home cache (rows 0-2 are the fleet sizes; the harness gates
// >=2x at 4 and >=3x at 8 frontends with p99 within 2x of the baseline).
func BenchmarkE14ServingScale(b *testing.B) {
	tbl := runE(b, experiments.E14ServingScale)
	b.ReportMetric(cell(tbl, 2, "vs_1fe"), "throughput_x/8-frontends")
}

// BenchmarkE15EdgeDelivery — segmented ABR fan-out against one persistent
// 4-frontend fleet: the edge tier must absorb >= 90% of segment requests at
// peak fan-out (row 2 is the 64-viewer level), and the live phase must keep
// every viewer within a bounded lag of the newest segment.
func BenchmarkE15EdgeDelivery(b *testing.B) {
	tbl := runE(b, experiments.E15EdgeDelivery)
	b.ReportMetric(cell(tbl, 2, "offload_pct"), "offload_pct/64-viewers")
}

// ---- substrate micro-benchmarks ----

// BenchmarkIndexSearch measures ranked query latency on a 10k-video index.
func BenchmarkIndexSearch(b *testing.B) {
	ix := search.NewIndex()
	for i := 0; i < 10000; i++ {
		ix.Add(search.Document{
			ID:    int64(i + 1),
			Title: fmt.Sprintf("video %d cloud dance cooking", i),
			Body:  "kvm opennebula hadoop pop pasta tokyo description",
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := ix.Search("cloud dance", 25); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkDBScan measures the LIKE-scan baseline on 10k rows.
func BenchmarkDBScan(b *testing.B) {
	db := videodb.New()
	db.CreateTable("videos", videodb.Column{Name: "title", Type: videodb.TString})
	for i := 0; i < 10000; i++ {
		db.Insert("videos", videodb.Row{"title": fmt.Sprintf("video %d cloud dance", i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.ScanSubstring("videos", "title", "cloud")
		if err != nil || len(rows) == 0 {
			b.Fatal("scan failed")
		}
	}
}

// BenchmarkHDFSWrite measures the replication pipeline (1 MiB file, RF 3).
func BenchmarkHDFSWrite(b *testing.B) {
	c := hdfs.NewCluster(4, 256*1024)
	cl := c.Client("")
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.WriteFile(fmt.Sprintf("/f%d", i), data, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHDFSRead measures replicated reads (1 MiB file, RF 3).
func BenchmarkHDFSRead(b *testing.B) {
	c := hdfs.NewCluster(4, 256*1024)
	cl := c.Client("")
	data := make([]byte, 1<<20)
	if err := cl.WriteFile("/f", data, 3); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.ReadFile("/f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranscodeGOPs measures the byte-rewriting conversion path.
func BenchmarkTranscodeGOPs(b *testing.B) {
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 1_000_000}
	dst := video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 1_000_000}
	data, err := video.Generate(src, 60, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (video.Transcoder{}).Convert(data, dst); err != nil {
			b.Fatal(err)
		}
	}
}
