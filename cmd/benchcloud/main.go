// Command benchcloud runs the paper-reproduction experiments (DESIGN.md §4)
// and prints their result tables — the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchcloud              # run everything
//	benchcloud -only E2,E7  # run a subset
//	benchcloud -o out.txt   # also write the tables to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"videocloud/internal/experiments"
	"videocloud/internal/metrics"
)

var runners = []struct {
	id  string
	fn  func() *metrics.Table
	ref string
}{
	{"E1", experiments.E1LiveMigration, "Figs 8-10"},
	{"E1b", experiments.E1bMigrationAlgorithms, "refs [20][21]"},
	{"E1c", experiments.E1cMigrationUnderContention, "migration + service traffic"},
	{"E2", experiments.E2ParallelTranscode, "Fig 16"},
	{"E3", experiments.E3IndexConstruction, "§I index construction"},
	{"E4", experiments.E4SearchVsScan, "§III search vs DB"},
	{"E5", experiments.E5VirtOverhead, "Figs 1-2"},
	{"E6", experiments.E6Placement, "§III-A capacity manager"},
	{"E6b", experiments.E6bProvisioning, "§II-C shared images"},
	{"E6c", experiments.E6cConsolidation, "§III-A economize power"},
	{"E7", experiments.E7HDFSReplication, "Fig 11"},
	{"E8", experiments.E8MapReduceScaling, "Fig 12"},
	{"E8b", experiments.E8bSpeculativeExecution, "straggler ablation"},
	{"E9", experiments.E9EndToEnd, "Figs 17-23"},
	{"E9b", experiments.E9bConcurrentLoad, "concurrent viewers"},
	{"E10", experiments.E10FullStack, "Figs 6,13,14"},
	{"E11", experiments.E11AutoScaling, "VoD auto-scaling (ref [28])"},
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E2,E7); empty runs all")
	out := flag.String("o", "", "also write the tables to this file")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	var b strings.Builder
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", r.id, r.ref)
		tbl, err := run(r.fn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", r.id, err)
			os.Exit(1)
		}
		b.WriteString(tbl.String())
		b.WriteString("\n")
	}
	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
}

// run converts an experiment's shape-violation panic into an error.
func run(fn func() *metrics.Table) (tbl *metrics.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return fn(), nil
}
