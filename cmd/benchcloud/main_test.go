package main

import (
	"strings"
	"testing"

	"videocloud/internal/metrics"
)

func TestRunConvertsPanicToError(t *testing.T) {
	_, err := run(func() *metrics.Table { panic("shape violation: boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	tbl, err := run(func() *metrics.Table { return metrics.NewTable("ok", "x") })
	if err != nil || tbl == nil || tbl.Title != "ok" {
		t.Fatalf("happy path: %v %v", tbl, err)
	}
}

func TestRunnerRegistryComplete(t *testing.T) {
	// Every registered experiment has a unique id and a reference note.
	seen := map[string]bool{}
	for _, r := range runners {
		if r.id == "" || r.fn == nil || r.ref == "" {
			t.Fatalf("incomplete runner %+v", r.id)
		}
		if seen[r.id] {
			t.Fatalf("duplicate id %s", r.id)
		}
		seen[r.id] = true
	}
	if len(runners) < 16 {
		t.Fatalf("only %d experiments registered", len(runners))
	}
}
