// Command onecloud runs the IaaS layer by itself: a pool of simulated KVM
// hosts managed by the OpenNebula-like orchestrator, exposed through the
// JSON management API (the stand-in for the web interface of Figures 7-10).
// Virtual time is paced against wall time so the cloud feels live.
//
// Usage:
//
//	onecloud -hosts 4 -listen :9680 -scale 10
//
// then, for example:
//
//	curl localhost:9680/api/hosts
//	curl -X POST localhost:9680/api/vms -d '{"name":"web","vcpus":2,"memory_mb":2048,"disk_gb":10,"image":"ubuntu-10.04","workload":"streaming","rate_mbps":8}'
//	curl localhost:9680/api/vms
//	curl -X POST localhost:9680/api/vms/1/migrate -d '{"host":"node2"}'
//
// With -demo the command instead scripts the paper's Figures 7-10 sequence
// (deploy VMs, live-migrate one, print the monitor) and exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"videocloud/internal/nebula"
	"videocloud/internal/virt"
)

const gb = int64(1) << 30

func main() {
	hosts := flag.Int("hosts", 4, "number of simulated physical hosts")
	listen := flag.String("listen", ":9680", "management API listen address")
	scale := flag.Float64("scale", 10, "virtual seconds per wall second")
	demo := flag.Bool("demo", false, "run the Figures 7-10 demo script and exit")
	flag.Parse()

	cloud := nebula.New(nebula.Options{})
	for i := 1; i <= *hosts; i++ {
		if _, err := cloud.AddHost(fmt.Sprintf("node%d", i), 8, 1e9, 16*gb, 500*gb); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := cloud.Catalog().Register("ubuntu-10.04", 2*gb, 1004); err != nil {
		log.Fatal(err)
	}

	if *demo {
		runDemo(cloud)
		return
	}

	cloud.Monitor().Enable(30 * time.Second)
	pacer := nebula.StartPacer(cloud, *scale)
	defer pacer.Stop()
	log.Printf("onecloud: %d hosts, image %q registered, API on %s (time x%g)",
		*hosts, "ubuntu-10.04", *listen, *scale)
	log.Fatal(http.ListenAndServe(*listen, nebula.NewAPI(cloud)))
}

// runDemo scripts the paper's screenshots: deploy two VMs, show the
// monitor, live-migrate one VM to another node, show that it succeeded.
func runDemo(cloud *nebula.Cloud) {
	fmt.Println("== initial host pool (Figure 7) ==")
	id1, err := cloud.Submit(nebula.Template{
		Name: "webserver", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
		Image: "ubuntu-10.04", Workload: &virt.StreamingServer{StreamRate: 8 << 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.Submit(nebula.Template{
		Name: "database", VCPUs: 2, MemoryBytes: 4 * gb, DiskBytes: 20 * gb,
		Image: "ubuntu-10.04", Workload: virt.HotspotWriter{Rate: 16 << 20},
	}); err != nil {
		log.Fatal(err)
	}
	cloud.WaitIdle()
	cloud.Monitor().SampleNow()
	fmt.Println(cloud.Monitor().UtilizationTable())

	rec, err := cloud.VM(id1)
	if err != nil {
		log.Fatal(err)
	}
	src := rec.HostName
	var dst string
	for _, h := range cloud.Hosts() {
		if h.Name != src && h.CanFit(rec.VM.Config) {
			dst = h.Name
			break
		}
	}
	fmt.Printf("== live migration of %s from %s to %s (Figures 8-9) ==\n", rec.Name(), src, dst)
	if err := cloud.LiveMigrate(id1, dst); err != nil {
		log.Fatal(err)
	}
	cloud.WaitIdle()
	rep := rec.LastMigration
	if rep == nil || !rep.Success {
		log.Fatalf("migration failed: %+v", rep)
	}
	fmt.Printf("== live migration is successful (Figure 10) ==\n")
	fmt.Printf("   rounds=%d moved=%.2f GB total=%.1fs downtime=%.0fms reason=%s\n",
		len(rep.Rounds), float64(rep.TotalBytes)/float64(gb),
		rep.TotalTime.Seconds(), float64(rep.Downtime.Milliseconds()), rep.Reason)
	cloud.Monitor().SampleNow()
	fmt.Println(cloud.Monitor().UtilizationTable())

	fmt.Println("== host maintenance: evacuate + re-enable ==")
	started, err := cloud.Evacuate(dst)
	if err != nil {
		log.Fatal(err)
	}
	cloud.WaitIdle()
	fmt.Printf("evacuated %s with %d live migration(s); re-enabling\n", dst, started)
	if err := cloud.Enable(dst); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== power-saving consolidation ==")
	plan := cloud.Consolidate()
	cloud.WaitIdle()
	fmt.Printf("%d move(s); empty hosts now: %v\n", len(plan.Moves), cloud.EmptyHosts())
	cloud.Monitor().SampleNow()
	fmt.Println(cloud.Monitor().UtilizationTable())
}
