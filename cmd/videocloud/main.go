// Command videocloud boots the entire reproduced system — IaaS, VM-hosted
// HDFS/MapReduce, and the video website — and serves the site over HTTP.
// This is the paper's deployment in one process: browse to the listen
// address for the search home page (Figure 17), register, upload, watch.
//
// Usage:
//
//	videocloud -listen :8080 -hosts 4 -datavms 3 -reindex 5m -seed 3
//
// -seed N pre-populates the catalog with N demo videos so search has
// something to find immediately. -reindex runs the MapReduce re-index
// periodically, the paper's "renew indexed material every certain time".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"videocloud/internal/core"
	"videocloud/internal/hdfs"
	"videocloud/internal/tenant"
	"videocloud/internal/trace"
	"videocloud/internal/video"
)

func main() {
	listen := flag.String("listen", ":8080", "website listen address")
	hosts := flag.Int("hosts", 4, "simulated physical hosts")
	dataVMs := flag.Int("datavms", 3, "DataNode/TaskTracker VMs")
	reindex := flag.Duration("reindex", 5*time.Minute, "MapReduce re-index period (0 disables)")
	stats := flag.Duration("stats", time.Minute, "per-route serving dashboard log period (0 disables)")
	seed := flag.Int("seed", 3, "demo videos to pre-populate")
	admin := flag.String("admin", "admin", "admin account name")
	adminPass := flag.String("admin-pass", "admin", "admin account password")
	transcodeWorkers := flag.Int("transcode-workers", 0,
		"async conversion pool size (0 = convert uploads inline)")
	frontends := flag.Int("frontends", 1,
		"web-server replicas behind the ingress balancer (1 = no ingress)")
	dbShards := flag.Int("dbshards", 1,
		"metadata store shards hashed by id (1 = single embedded DB)")
	streamRate := flag.Int64("stream-rate", 0,
		"per-frontend streaming egress cap in bytes/sec (0 = unpaced)")
	segmentSeconds := flag.Int("segment-seconds", 0,
		"segmented-delivery segment duration in seconds (0 = twice the target GOP)")
	edgeCache := flag.Int64("edge-cache", 0,
		"per-frontend edge cache budget in bytes for playlists+segments (0 = 64 MiB default)")
	liveTTL := flag.Duration("live-edge-ttl", 0,
		"bound on cached playlist staleness — live segment-discovery latency (0 = 200ms default)")
	selfheal := flag.Bool("selfheal", true,
		"arm failure detection + automatic recovery (host heartbeats, HDFS healer)")
	elasticMax := flag.Int("elastic", 0,
		"max elastic transcode-farm VMs booted on queue pressure (0 disables autoscaling)")
	elasticMin := flag.Int("elastic-min", 0,
		"farm VMs kept warm even when idle (with -elastic)")
	rebalance := flag.Duration("rebalance", 0,
		"host-load rebalancing pass period via live migration (0 disables; with -elastic)")
	traceMode := flag.String("trace", "off",
		"distributed tracing: off, sample (head-sampled roots), or all")
	traceRate := flag.Float64("trace-rate", 0.1,
		"head-sampling probability for -trace sample")
	traceExport := flag.String("trace-export", "",
		"file that receives stored traces as Chrome trace-event JSON every -stats period (load in chrome://tracing)")
	tenants := flag.String("tenants", "",
		"comma-separated name:weight tenant list (e.g. acme:2,globex:1); each gets an API token printed at boot")
	flag.Parse()

	var topts trace.Options
	switch *traceMode {
	case "off":
	case "sample":
		topts = trace.Options{Enabled: true, SampleRate: *traceRate}
	case "all":
		topts = trace.Options{Enabled: true}
	default:
		log.Fatalf("bad -trace %q: want off, sample, or all", *traceMode)
	}

	vc, err := core.New(core.Config{
		PhysicalHosts: *hosts, DataVMs: *dataVMs,
		AdminUser: *admin, AdminPassword: *adminPass,
		TranscodeWorkers: *transcodeWorkers,
		Frontends:        *frontends, MetadataShards: *dbShards,
		StreamRateBytesPerSec: *streamRate,
		SegmentSeconds:        *segmentSeconds,
		EdgeCacheBytes:        *edgeCache,
		LiveEdgeTTL:           *liveTTL,
		Trace:                 topts,
	})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	if err := seedTenants(vc, *tenants); err != nil {
		log.Fatalf("tenants: %v", err)
	}
	st := vc.Status()
	log.Printf("videocloud: %d hosts, %d VMs running, datanodes %v",
		st.Hosts, len(st.VMs), st.DataNodes)
	if st.Fleet.Frontends > 1 || st.Fleet.MetadataShards > 1 {
		log.Printf("videocloud: serving fleet: %d frontends, %d metadata shards",
			st.Fleet.Frontends, st.Fleet.MetadataShards)
	}
	for _, vm := range st.VMs {
		log.Printf("  vm %-14s state=%-8s host=%-6s ip=%s", vm.Name, vm.State, vm.Host, vm.IP)
	}

	if *selfheal {
		vc.StartSelfHealing(hdfs.HealerConfig{})
		log.Printf("videocloud: self-healing armed (host heartbeats + HDFS healer)")
	}
	if *elasticMax > 0 {
		if err := vc.StartElastic(core.ElasticConfig{
			MinFarmVMs: *elasticMin, MaxFarmVMs: *elasticMax,
			RebalanceInterval: *rebalance,
		}); err != nil {
			log.Fatalf("elastic: %v", err)
		}
		log.Printf("videocloud: elastic transcode fleet armed (%d..%d farm VMs, rebalance %v)",
			*elasticMin, *elasticMax, *rebalance)
	}
	if *selfheal || *elasticMax > 0 {
		// The heartbeat monitor and elastic control loop run in virtual
		// time; pump the simulated clock at wall speed so they tick.
		go func() {
			for range time.Tick(100 * time.Millisecond) {
				vc.Cloud().RunFor(100 * time.Millisecond)
			}
		}()
	}

	seedCatalog(vc, *seed)
	if *reindex > 0 {
		go func() {
			for range time.Tick(*reindex) {
				if res, err := vc.ReindexMR(); err == nil {
					log.Printf("re-index: %d docs, %d map tasks, %.1fs modelled",
						vc.Site().Index().Docs(), len(res.MapTasks), res.Duration.Seconds())
				} else {
					log.Printf("re-index failed: %v", err)
				}
			}
		}()
	}
	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				logRouteDashboard(vc)
				if *traceExport != "" {
					exportTraces(vc, *traceExport)
				}
			}
		}()
	}
	log.Printf("videocloud: site on %s (admin account %q)", *listen, *admin)
	log.Fatal(http.ListenAndServe(*listen, vc.Handler()))
}

// logRouteDashboard prints one line per route that has seen traffic — the
// serving tier's request counts, status classes, in-flight depth, and
// latency quantiles — plus one line for the HDFS data path underneath it.
func logRouteDashboard(vc *core.VideoCloud) {
	st := vc.Status()
	for _, rs := range st.Routes {
		if rs.Requests == 0 {
			continue
		}
		log.Printf("route %-8s n=%-6d inflight=%d 2xx=%d 4xx=%d 5xx=%d p50=%.2fms p99=%.2fms",
			rs.Route, rs.Requests, rs.InFlight, rs.Status2xx, rs.Status4xx, rs.Status5xx,
			rs.Latency.P50*1000, rs.Latency.P99*1000)
	}
	h := st.HDFS
	if h.BytesRead > 0 || h.BytesWritten > 0 {
		log.Printf("hdfs read=%dMB write=%dMB ra hit/miss/pre=%d/%d/%d "+
			"pick local/load/first=%d/%d/%d failover=%d rd_p99=%.2fms wr_p99=%.2fms",
			h.BytesRead>>20, h.BytesWritten>>20,
			h.ReadaheadHits, h.ReadaheadMisses, h.ReadaheadPrefetches,
			h.ReplicaLocal, h.ReplicaLeastLoaded, h.ReplicaFirst, h.ReplicaFailovers,
			h.ReadLatency.P99*1000, h.WriteLatency.P99*1000)
	}
	if h.CacheHits > 0 || h.CacheFills > 0 {
		log.Printf("blockcache hit/miss/wait=%d/%d/%d fill=%d evict=%d resident=%dMB entries=%d refs=%d",
			h.CacheHits, h.CacheMisses, h.CacheWaits, h.CacheFills, h.CacheEvictions,
			h.CacheBytes>>20, h.CacheEntries, h.CacheRefs)
	}
	rc := st.Recovery
	if rc.HostsCrashed > 0 || rc.HostFailuresDetected > 0 || rc.VMsRequeued > 0 {
		log.Printf("recovery hosts crashed/detected=%d/%d vms requeued/restarted/exhausted=%d/%d/%d "+
			"mig resched=%d evac stuck/retried=%d/%d detect_p99=%.0fms restart_p99=%.0fms",
			rc.HostsCrashed, rc.HostFailuresDetected,
			rc.VMsRequeued, rc.VMsAutoRestarted, rc.VMsRestartExhausted,
			rc.MigrationsRescheduled, rc.EvacuationsStuck, rc.EvacuationsRetried,
			rc.DetectLatency.P99*1000, rc.RestartLatency.P99*1000)
	}
	hl := st.Heal
	if hl.DataNodesDetectedDead > 0 || hl.BlocksHealed > 0 || hl.PendingRepairs > 0 {
		log.Printf("heal dn dead/rejoined=%d/%d blocks healed=%d pending=%d fail=%d abandoned=%d "+
			"detect_p99=%.0fms heal_p99=%.0fms",
			hl.DataNodesDetectedDead, hl.DataNodesRejoined, hl.BlocksHealed,
			hl.PendingRepairs, hl.RepairFailures, hl.RepairsAbandoned,
			hl.DetectLatency.P99*1000, hl.HealLatency.P99*1000)
	}
	br := st.Breaker
	if br.Opened > 0 || br.Rejected > 0 || br.State != "closed" {
		log.Printf("breaker state=%s opened=%d reclosed=%d rejected=%d",
			br.State, br.Opened, br.Reclosed, br.Rejected)
	}
	tr := st.Trace
	if tr.Enabled || tr.RootsStarted > 0 {
		log.Printf("trace roots started/sampled=%d/%d spans rec/drop=%d/%d "+
			"stored=%d active=%d recent=%d retained=%d",
			tr.RootsStarted, tr.RootsSampled, tr.SpansRecorded, tr.SpansDropped,
			tr.TracesStored, tr.ActiveTraces, tr.RecentTraces, tr.RetainedTraces)
	}
	fl := st.Fleet
	if fl.Frontends > 1 {
		log.Printf("fleet frontends=%d shards=%d routes affine/spread=%d/%d backend_requests=%v",
			fl.Frontends, fl.MetadataShards, fl.AffineRoutes, fl.SpreadRoutes, fl.BackendRequests)
	}
	if el := st.Elastic; el.Enabled {
		log.Printf("elastic fleet=%d boot=%d drain=%d load=%.1f util=%.2f "+
			"out/in/freeze/thrash=%d/%d/%d/%d queue=%d wait_p99=%.0fms requeues=%d "+
			"rebal pass/mig/skip=%d/%d/%d spread=%.2f",
			el.Controller.Instances, el.Controller.Booting, el.Controller.Draining,
			el.Controller.LastLoad, el.Controller.LastUtil,
			el.Controller.ScaleOuts, el.Controller.ScaleIns, el.Controller.Freezes,
			el.Controller.Thrash, el.QueueDepth, el.WaitP99Seconds*1000, el.Requeues,
			el.RebalancePasses, el.RebalanceMigrations, el.RebalanceSkipped, el.HostLoadSpread)
	}
	if eg := st.Edge; eg.Hits+eg.Fills > 0 {
		log.Printf("edge hits=%d misses=%d joins=%d fills=%d evict=%d expire=%d rejects=%d entries=%d used=%dMB/%dMB",
			eg.Hits, eg.Misses, eg.Joins, eg.Fills, eg.Evictions, eg.Expirations,
			eg.AdmitRejects, eg.Entries, eg.UsedBytes>>20, eg.CapBytes>>20)
	}
	for _, ts := range st.Tenants {
		if ts.Usage.Events == 0 && ts.Res.Requests == 0 {
			continue
		}
		log.Printf("tenant %-12s w=%d vms=%d stored=%dMB vm_s=%.0f xcode_s=%.0f egress=%dMB denied=%d throttled=%d",
			ts.Name, ts.Weight, ts.Res.VMs, ts.Res.StorageBytes>>20,
			ts.Usage.VMSeconds, ts.Usage.TranscodeSeconds,
			int64(ts.Usage.BytesEgressed)>>20, ts.Res.QuotaDenials, ts.Res.Throttles)
	}
}

// seedTenants creates the -tenants list in the registry the cloud booted
// with and prints each tenant's writer API token exactly once — the only
// time the plaintext token exists outside the caller's hands.
func seedTenants(vc *core.VideoCloud, spec string) error {
	if spec == "" {
		return nil
	}
	reg := vc.Tenants()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return fmt.Errorf("bad -tenants entry %q: weight must be a positive integer", part)
			}
			weight = w
		}
		if _, err := reg.Create(name, weight, tenant.Quota{}); err != nil {
			return fmt.Errorf("create %q: %w", name, err)
		}
		tok, err := reg.IssueToken(name, tenant.RoleWriter)
		if err != nil {
			return fmt.Errorf("token for %q: %w", name, err)
		}
		log.Printf("tenant %-12s weight=%d api-token=%s", name, weight, tok)
	}
	return nil
}

// exportTraces writes every stored trace (error/slow retained first) as
// Chrome trace-event JSON for chrome://tracing or Perfetto.
func exportTraces(vc *core.VideoCloud, path string) {
	t := vc.Tracer()
	traces := append(t.Retained(), t.Traces()...)
	if len(traces) == 0 {
		return
	}
	data, err := trace.ExportChrome(traces)
	if err != nil {
		log.Printf("trace export: %v", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Printf("trace export: %v", err)
	}
}

// seedCatalog uploads n demo videos as the admin.
func seedCatalog(vc *core.VideoCloud, n int) {
	titles := []struct{ title, desc string }{
		{"Nobody dance cover", "pop dance practice room cover"},
		{"Cloud IaaS lecture", "kvm opennebula hadoop deployment walkthrough"},
		{"Taichung street food tour", "travel vlog night market taiwan"},
		{"Kernel debugging session", "linux kvm virtualization deep dive"},
		{"Holiday highlights", "beach trip summer memories"},
	}
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000}
	for i := 0; i < n && i < len(titles); i++ {
		data, err := video.Generate(src, 60+30*i, uint64(i+1))
		if err != nil {
			log.Printf("seed %d: %v", i, err)
			continue
		}
		id, err := vc.Site().ProcessUpload(context.Background(), 1, titles[i].title, titles[i].desc, data)
		if err != nil {
			log.Printf("seed %d: %v", i, err)
			continue
		}
		fmt.Printf("seeded /watch/%d  %q\n", id, titles[i].title)
	}
}
