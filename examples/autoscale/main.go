// Auto-scaling walkthrough (the paper's conclusion + its reference [28]):
// a streaming fleet tracks a day of video-on-demand load. Demand follows a
// diurnal wave with Zipf title popularity; the auto-scaler re-evaluates
// every 5 virtual minutes and grows or shrinks the fleet one VM at a time.
// The whole day runs in well under a second of wall time on the
// discrete-event clock.
package main

import (
	"fmt"
	"log"
	"time"

	"videocloud/internal/nebula"
	"videocloud/internal/virt"
	"videocloud/internal/workload"
)

const gb = int64(1) << 30

func main() {
	cloud := nebula.New(nebula.Options{})
	for i := 0; i < 12; i++ {
		if _, err := cloud.AddHost(fmt.Sprintf("node%d", i), 16, 1e9, 32*gb, 1000*gb); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := cloud.Catalog().Register("streamer", 2*gb, 1); err != nil {
		log.Fatal(err)
	}

	// VoD demand: trough 2, evening peak 16 concurrent-stream units.
	demand := workload.Diurnal{Base: 2, PeakFactor: 8, PeakHour: 21}
	// Title popularity for flavour: show the Zipf head.
	zipf := workload.NewZipf(500, 0.9)
	sessions := workload.Generate(zipf, demand, 20*time.Hour, 20*time.Hour+10*time.Minute, 42)
	fmt.Printf("evening sample: %d sessions in 10 min; first watches title #%d\n\n",
		len(sessions), sessions[0].Video)

	scaler := nebula.NewAutoScaler(cloud, nebula.Template{
		Name: "streamer", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
		Image: "streamer", Workload: &virt.StreamingServer{StreamRate: 8 << 20},
	}, 1, 10)
	scaler.InstanceCapacity = 2 // stream-units one VM absorbs
	scaler.Metric = demand.Rate
	if err := scaler.Start(5 * time.Minute); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	cloud.RunFor(24 * time.Hour)
	scaler.Stop()
	cloud.WaitIdle()
	fmt.Printf("simulated 24h in %v wall time\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("hour  load  fleet  util")
	for _, s := range scaler.History() {
		if s.At%time.Hour != 0 {
			continue
		}
		bar := ""
		for i := 0; i < s.Instances; i++ {
			bar += "#"
		}
		fmt.Printf("%4dh  %4.1f  %5d  %4.2f  %s\n",
			int(s.At.Hours()), s.Load, s.Instances, s.Util, bar)
	}
	fmt.Printf("\nscale-out events: %d, scale-in events: %d\n",
		cloud.Metrics().Counter("autoscale_out").Value(),
		cloud.Metrics().Counter("autoscale_in").Value())
}
