// Live migration walkthrough (paper Figures 8-10): deploy a streaming VM
// through the orchestrator, live-migrate it between nodes, and print the
// per-round behaviour of the pre-copy algorithm — then sweep the guest's
// dirty rate to show where live migration stops converging.
package main

import (
	"fmt"
	"log"

	"videocloud"
	"videocloud/internal/migrate"
	"videocloud/internal/simnet"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

const gb = int64(1) << 30
const mb = int64(1) << 20

func main() {
	// Part 1 — through the orchestrator, as the paper's web UI does.
	cloud := videocloud.NewIaaS(videocloud.IaaSOptions{})
	for i := 1; i <= 3; i++ {
		if _, err := cloud.AddHost(fmt.Sprintf("node%d", i), 8, 1e9, 16*gb, 500*gb); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := cloud.Catalog().Register("ubuntu-10.04", 2*gb, 1); err != nil {
		log.Fatal(err)
	}
	id, err := cloud.Submit(videocloud.Template{
		Name: "webserver", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
		Image: "ubuntu-10.04", Workload: &virt.StreamingServer{StreamRate: 8 * mb},
	})
	if err != nil {
		log.Fatal(err)
	}
	cloud.WaitIdle()
	rec, _ := cloud.VM(id)
	fmt.Printf("deployed %s on %s (ip %s)\n", rec.Name(), rec.HostName, rec.IP)

	var dst string
	for _, h := range cloud.Hosts() {
		if h.Name != rec.HostName && h.CanFit(rec.VM.Config) {
			dst = h.Name
			break
		}
	}
	if err := cloud.LiveMigrate(id, dst); err != nil {
		log.Fatal(err)
	}
	cloud.WaitIdle()
	rep := rec.LastMigration
	fmt.Printf("live migration %s -> %s: success=%v downtime=%v total=%v\n",
		rep.Src, rep.Dst, rep.Success, rep.Downtime, rep.TotalTime)
	fmt.Println("pre-copy rounds (pages shrink as the writable working set converges):")
	for _, rd := range rep.Rounds {
		fmt.Printf("  round %2d: %8d pages  %6.1f MB  %8v\n",
			rd.Round, rd.Pages, float64(rd.Bytes)/float64(mb), rd.Duration.Round(1e6))
	}

	// Part 2 — dirty-rate sweep on a bare migrator: the crossover where
	// pre-copy stops converging (dirty rate ~ link bandwidth, 125 MB/s).
	fmt.Println("\ndirty-rate sweep (1 GiB VM, 1 GbE):")
	fmt.Println("  rate_MBps  rounds  downtime    reason")
	for _, rate := range []int64{0, 20, 60, 100, 160, 240} {
		sim := simtime.NewSimulator()
		net := simnet.New(sim)
		net.AddHost("a", 1*simnet.Gbps, 1*simnet.Gbps, 0)
		net.AddHost("b", 1*simnet.Gbps, 1*simnet.Gbps, 0)
		src := virt.NewHost("a", 8, 1e9, 32*gb, 500*gb, 0)
		dstH := virt.NewHost("b", 8, 1e9, 32*gb, 500*gb, 0)
		vm, _ := src.CreateVM(virt.VMConfig{Name: "vm", VCPUs: 2, MemoryBytes: 1 * gb, Mode: virt.HWAssist})
		if rate > 0 {
			vm.Workload = virt.UniformWriter{Rate: rate * mb}
		} else {
			vm.Workload = virt.IdleWorkload{}
		}
		vm.Start()
		var r migrate.Report
		m := migrate.New(sim, net)
		if err := m.Migrate(vm, dstH, migrate.Config{Algorithm: migrate.PreCopy},
			func(rp migrate.Report) { r = rp }); err != nil {
			log.Fatal(err)
		}
		sim.Run()
		fmt.Printf("  %9d  %6d  %8v  %s\n", rate, len(r.Rounds), r.Downtime.Round(1e6), r.Reason)
	}
}
