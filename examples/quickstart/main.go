// Quickstart: boot the whole reproduced stack with one call, inspect it,
// upload a video through the public API, search for it, and print where its
// bytes physically live. This is the 60-second tour of the system the paper
// builds (IaaS + Hadoop PaaS + video SaaS).
package main

import (
	"context"
	"fmt"
	"log"

	"videocloud"
)

func main() {
	// One call boots 4 simulated hosts, deploys the service group
	// (NameNode VM, 3 DataNode VMs, web VM), assembles HDFS/MapReduce on
	// the data VMs and starts the site.
	vc, err := videocloud.New(videocloud.Config{})
	if err != nil {
		log.Fatal(err)
	}
	st := vc.Status()
	fmt.Printf("cloud up: %d hosts, %d VMs, virtual boot time %.0fs\n",
		st.Hosts, len(st.VMs), st.VirtualNow.Seconds())
	for _, vm := range st.VMs {
		fmt.Printf("  %-14s %-8s host=%-6s ip=%s\n", vm.Name, vm.State, vm.Host, vm.IP)
	}

	// Synthesize a "camera upload" and push it through the full pipeline:
	// probe -> parallel convert on the data VMs -> store in HDFS -> index.
	src := videocloud.MediaSpec{Codec: "mpeg4", Res: videocloud.R480p,
		FPS: 30, GOPSeconds: 2, BitrateBps: 300_000}
	data, err := videocloud.GenerateVideo(src, 90, 42)
	if err != nil {
		log.Fatal(err)
	}
	id, err := vc.Site().ProcessUpload(context.Background(), 1, "My first cloud video", "quickstart demo upload", data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuploaded video %d (%d KB source)\n", id, len(data)>>10)

	// Search finds it.
	hits := vc.Site().Index().Search("first cloud", 5)
	fmt.Printf("search 'first cloud' -> %d hit(s), top doc %d\n", len(hits), hits[0].Doc)

	// Its converted bytes live as replicated HDFS blocks on the data VMs.
	blocks, err := vc.HDFS().Client("").BlockLocations(fmt.Sprintf("/videocloud/videos/%d.vcf", id))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored as %d HDFS block(s):\n", len(blocks))
	for _, b := range blocks {
		fmt.Printf("  block %d (%d KB) on %v\n", b.ID, b.Length>>10, b.Locations)
	}
}
