// Transcode farm walkthrough (paper Figure 16): a 10-minute upload is split
// at GOP boundaries, converted to the player's H.264/720p on a growing pool
// of worker nodes, and merged — with the output verified bit-identical to a
// single-node conversion, and the paper's "takes even less execution time
// than ... a single node" claim printed as a speedup column.
package main

import (
	"bytes"
	"fmt"
	"log"

	"videocloud"
)

func main() {
	src := videocloud.MediaSpec{Codec: "mpeg4", Res: videocloud.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 1_000_000}
	dst := videocloud.MediaSpec{Codec: "h264", Res: videocloud.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 2_000_000}
	data, err := videocloud.GenerateVideo(src, 600, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source: 10-minute %s %s @ %.1f Mbps (%.1f MB)\n\n",
		src.Codec, src.Res, float64(src.BitrateBps)/1e6, float64(len(data))/1e6)

	// Single-node reference output for the bit-identity check.
	ref, err := videocloud.TranscodeFarm{Nodes: []string{"solo"}}.Convert(data, dst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("nodes  segments  parallel_s  single_s  speedup  identical")
	for _, n := range []int{1, 2, 4, 8, 16} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("datanode%d", i)
		}
		res, err := videocloud.TranscodeFarm{Nodes: nodes}.Convert(data, dst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %8d  %10.1f  %8.1f  %6.2fx  %v\n",
			n, len(res.Segments), res.Duration.Seconds(),
			res.SingleNodeDuration.Seconds(), res.Speedup(),
			bytes.Equal(res.Output, ref.Output))
	}

	// Show the per-segment schedule for the 4-node case.
	res, _ := videocloud.TranscodeFarm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}}.Convert(data, dst)
	fmt.Println("\n4-node segment schedule (Figure 16's split/convert/integrate):")
	for i, s := range res.Segments {
		fmt.Printf("  segment %2d: %2d GOPs on %-4s  %7.1fs -> %7.1fs\n",
			i, s.GOPs, s.Node, s.Start.Seconds(), s.End.Seconds())
	}
}
