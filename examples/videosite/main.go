// Video site walkthrough (paper Figures 17-23): run the full stack, then
// act as a user against the real HTTP site — register, follow the emailed
// verification link, log in, upload a video, search for it, stream it with
// time-bar seeks — and finally live-migrate the web server VM and keep
// watching.
package main

import (
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"

	"bytes"

	"videocloud"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	vc, err := videocloud.New(videocloud.Config{})
	must(err)
	srv := httptest.NewServer(vc.Handler())
	defer srv.Close()
	jar, _ := cookiejar.New(nil)
	browser := &http.Client{Jar: jar}

	fmt.Println("== Figure 19: register ==")
	resp, err := browser.PostForm(srv.URL+"/register", url.Values{
		"username": {"alice"}, "password": {"hunter2"}, "email": {"alice@example.com"},
	})
	must(err)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	link := resp.Header.Get("X-Verification-Link")
	fmt.Printf("verification email link: %s\n", link)
	r2, err := browser.Get(srv.URL + link)
	must(err)
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()

	fmt.Println("\n== Figure 20: log in ==")
	resp, err = browser.PostForm(srv.URL+"/login", url.Values{
		"username": {"alice"}, "password": {"hunter2"},
	})
	must(err)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Println("logged in as alice")

	fmt.Println("\n== Figure 22: upload (converted in parallel, stored in HDFS) ==")
	src := videocloud.MediaSpec{Codec: "mpeg4", Res: videocloud.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 250_000}
	media, err := videocloud.GenerateVideo(src, 120, 99)
	must(err)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("title", "Nobody dance cover")
	mw.WriteField("description", "my pop dance practice video")
	fw, _ := mw.CreateFormFile("video", "cover.avi")
	fw.Write(media)
	mw.Close()
	req, _ := http.NewRequest("POST", srv.URL+"/upload", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err = browser.Do(req)
	must(err)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	watchPath := resp.Request.URL.Path
	fmt.Printf("uploaded -> %s\n", watchPath)

	fmt.Println("\n== Figure 18: search 'nobody' ==")
	resp, err = browser.Get(srv.URL + "/search?q=nobody")
	must(err)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "Nobody dance cover") {
		fmt.Println("search hit: Nobody dance cover")
	} else {
		log.Fatal("search missed the upload")
	}

	fmt.Println("\n== Figure 23: player with a draggable time bar ==")
	id := strings.TrimPrefix(watchPath, "/watch/")
	player := &videocloud.Player{HTTP: browser}
	rep, err := player.Play(srv.URL+"/stream/"+id, []float64{0.25, 0.8}, nil)
	must(err)
	fmt.Printf("streamed with 2 seeks: fetched %d KB of %d KB in %d range requests\n",
		rep.BytesFetched>>10, rep.Size>>10, rep.Requests)

	fmt.Println("\n== Figures 8-10: live-migrate the web VM while the user watches ==")
	recHost := ""
	for _, vm := range vc.Status().VMs {
		if strings.HasPrefix(vm.Name, "webserver") {
			recHost = vm.Host
		}
	}
	var dst string
	for _, h := range vc.Cloud().Hosts() {
		if h.Name != recHost {
			dst = h.Name
			break
		}
	}
	mrep, err := vc.MigrateWebVM(dst)
	must(err)
	fmt.Printf("migrated %s -> %s, downtime %v\n", mrep.Src, mrep.Dst, mrep.Downtime)
	if _, err := player.Play(srv.URL+"/stream/"+id, []float64{0.5}, nil); err != nil {
		log.Fatal("playback after migration failed: ", err)
	}
	fmt.Println("playback after migration: ok")
}
