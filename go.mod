module videocloud

go 1.22
