// Package chaos is a deterministic, seed-reproducible fault injector for the
// whole stack: it can crash or hang a nebula host, silently kill an HDFS
// DataNode, corrupt a stored block replica, partition or delay simnet links,
// fail transcode-farm workers, and declare MapReduce task trackers dead. Every
// injection is recorded as a Fault whose detection and healing are later
// stamped by the self-healing layers (nebula.Monitor, hdfs.Healer, ...), so a
// chaos run produces per-fault-class detection-latency and MTTR numbers —
// written to BENCH_recovery.json by WriteReport.
//
// Reproducibility: all random target picks come from a single rand.Rand
// seeded at New. Two injectors with the same seed over identical clusters
// make identical picks in identical order.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"videocloud/internal/hdfs"
	"videocloud/internal/nebula"
	"videocloud/internal/simnet"
)

// Class names a fault category; report latencies aggregate per class.
type Class string

// The fault classes the injector can produce.
const (
	HostCrash       Class = "host_crash"       // silent host death (heartbeat-detected)
	HostHang        Class = "host_hang"        // host alive but unresponsive
	DataNodeCrash   Class = "datanode_crash"   // silent DataNode death (healer-detected)
	BlockCorruption Class = "block_corruption" // one replica's bytes flipped
	LinkPartition   Class = "link_partition"   // simnet host cut off
	LinkDelay       Class = "link_delay"       // simnet latency raised
	WorkerCrash     Class = "worker_crash"     // transcode farm worker fails a segment
	TrackerDeath    Class = "tracker_death"    // MapReduce task tracker dies
	TaskCrash       Class = "task_crash"       // one MapReduce task attempt fails
)

// Fault is one injected failure and its observed recovery timeline. Wall
// latencies come from the real clock (the HDFS healer's domain); sim
// latencies from the cloud's simulated clock (the nebula monitor's domain).
type Fault struct {
	ID     int    `json:"id"`
	Class  Class  `json:"class"`
	Target string `json:"target"`

	WallAt time.Time     `json:"injected_wall"`
	SimAt  time.Duration `json:"injected_sim_ns"`

	Detected   bool          `json:"detected"`
	Healed     bool          `json:"healed"`
	DetectWall time.Duration `json:"detect_wall_ns"`
	DetectSim  time.Duration `json:"detect_sim_ns"`
	HealWall   time.Duration `json:"heal_wall_ns"`
	HealSim    time.Duration `json:"heal_sim_ns"`
}

// Targets are the systems the injector may reach into. Any may be nil;
// methods needing an absent target return ErrNoTarget.
type Targets struct {
	Cloud   *nebula.Cloud
	Cluster *hdfs.Cluster
	Network *simnet.Network
}

// ErrNoTarget means the injector was asked to fault a subsystem it was not
// given.
var ErrNoTarget = errors.New("chaos: target subsystem not attached")

// Injector performs seeded fault injection and keeps the fault ledger.
// It is safe for concurrent use.
type Injector struct {
	seed int64

	mu           sync.Mutex
	rng          *rand.Rand
	t            Targets
	faults       []*Fault
	downTrackers map[string]bool
}

// New creates an injector whose every random choice derives from seed.
func New(seed int64, t Targets) *Injector {
	return &Injector{
		seed:         seed,
		rng:          rand.New(rand.NewSource(seed)),
		t:            t,
		downTrackers: make(map[string]bool),
	}
}

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// simNow reads the simulated clock, when a cloud is attached.
func (in *Injector) simNow() time.Duration {
	if in.t.Cloud == nil {
		return 0
	}
	return in.t.Cloud.Now()
}

// record appends a fault to the ledger. Callers hold in.mu.
func (in *Injector) record(class Class, target string) *Fault {
	f := &Fault{
		ID:     len(in.faults) + 1,
		Class:  class,
		Target: target,
		WallAt: time.Now(),
		SimAt:  in.simNow(),
	}
	in.faults = append(in.faults, f)
	return f
}

// ---- nebula host faults ----

// CrashHost silently kills the named host; only the heartbeat monitor can
// notice.
func (in *Injector) CrashHost(name string) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Cloud == nil {
		return nil, ErrNoTarget
	}
	if err := in.t.Cloud.CrashHost(name); err != nil {
		return nil, err
	}
	return in.record(HostCrash, name), nil
}

// CrashRandomHost picks a random healthy host and crashes it.
func (in *Injector) CrashRandomHost() (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Cloud == nil {
		return nil, ErrNoTarget
	}
	name, err := in.pickHostLocked()
	if err != nil {
		return nil, err
	}
	if err := in.t.Cloud.CrashHost(name); err != nil {
		return nil, err
	}
	return in.record(HostCrash, name), nil
}

// HangHost makes the named host stop answering heartbeats while its VMs
// keep running — the gray failure a liveness check must still fence.
func (in *Injector) HangHost(name string) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Cloud == nil {
		return nil, ErrNoTarget
	}
	if err := in.t.Cloud.Monitor().SetUnresponsive(name, true); err != nil {
		return nil, err
	}
	return in.record(HostHang, name), nil
}

// pickHostLocked chooses a random non-failed host.
func (in *Injector) pickHostLocked() (string, error) {
	var names []string
	for _, h := range in.t.Cloud.Hosts() { // Hosts() is sorted by name
		if !h.Failed() {
			names = append(names, h.Name)
		}
	}
	if len(names) == 0 {
		return "", errors.New("chaos: no healthy host to crash")
	}
	return names[in.rng.Intn(len(names))], nil
}

// ---- HDFS faults ----

// CrashDataNode silently takes the named DataNode down; only the healer's
// liveness polls can notice.
func (in *Injector) CrashDataNode(name string) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Cluster == nil {
		return nil, ErrNoTarget
	}
	if err := in.t.Cluster.CrashDataNode(name); err != nil {
		return nil, err
	}
	return in.record(DataNodeCrash, name), nil
}

// CrashRandomDataNode crashes a random live DataNode.
func (in *Injector) CrashRandomDataNode() (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Cluster == nil {
		return nil, ErrNoTarget
	}
	var live []string
	for _, name := range in.t.Cluster.DataNodeNames() {
		if dn := in.t.Cluster.DataNode(name); dn != nil && !dn.Down() {
			live = append(live, name)
		}
	}
	if len(live) == 0 {
		return nil, errors.New("chaos: no live datanode to crash")
	}
	name := live[in.rng.Intn(len(live))]
	if err := in.t.Cluster.CrashDataNode(name); err != nil {
		return nil, err
	}
	return in.record(DataNodeCrash, name), nil
}

// CorruptRandomBlock flips a byte in one randomly chosen stored replica on a
// random live DataNode. The corruption is latent until a reader's checksum
// verification trips over it.
func (in *Injector) CorruptRandomBlock() (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Cluster == nil {
		return nil, ErrNoTarget
	}
	var candidates []struct {
		node string
		id   hdfs.BlockID
	}
	for _, name := range in.t.Cluster.DataNodeNames() {
		dn := in.t.Cluster.DataNode(name)
		if dn == nil || dn.Down() {
			continue
		}
		for _, id := range dn.BlockIDs() { // sorted
			candidates = append(candidates, struct {
				node string
				id   hdfs.BlockID
			}{name, id})
		}
	}
	if len(candidates) == 0 {
		return nil, errors.New("chaos: no stored replica to corrupt")
	}
	pick := candidates[in.rng.Intn(len(candidates))]
	if err := in.t.Cluster.DataNode(pick.node).Corrupt(pick.id); err != nil {
		return nil, err
	}
	return in.record(BlockCorruption, fmt.Sprintf("%s/blk-%d", pick.node, pick.id)), nil
}

// ---- network faults ----

// PartitionHost cuts every flow through the named simnet host.
func (in *Injector) PartitionHost(name string) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Network == nil {
		return nil, ErrNoTarget
	}
	if err := in.t.Network.Partition(name); err != nil {
		return nil, err
	}
	return in.record(LinkPartition, name), nil
}

// HealPartition reconnects the host and stamps the matching fault healed.
func (in *Injector) HealPartition(name string) error {
	if in.t.Network == nil {
		return ErrNoTarget
	}
	if err := in.t.Network.Heal(name); err != nil {
		return err
	}
	in.HealedByTarget(LinkPartition, name)
	return nil
}

// DelayLink raises the host's link latency.
func (in *Injector) DelayLink(name string, latency time.Duration) (*Fault, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.t.Network == nil {
		return nil, ErrNoTarget
	}
	if err := in.t.Network.SetLatency(name, latency); err != nil {
		return nil, err
	}
	return in.record(LinkDelay, name), nil
}

// ---- transcode farm and MapReduce faults ----

// WorkerCrashHook returns a video.Farm.FaultHook that fails each segment
// task with probability p, at most limit times total, recording one
// WorkerCrash fault per injected failure. The farm surfaces the failure
// synchronously, so those faults are born detected.
func (in *Injector) WorkerCrashHook(p float64, limit int) func(node string, segment int) error {
	return func(node string, segment int) error {
		in.mu.Lock()
		defer in.mu.Unlock()
		if limit <= 0 || in.rng.Float64() >= p {
			return nil
		}
		limit--
		f := in.record(WorkerCrash, fmt.Sprintf("%s/seg-%d", node, segment))
		f.Detected = true
		return fmt.Errorf("chaos: injected worker crash on %s segment %d", node, segment)
	}
}

// TaskCrashHook returns a mapred.Config.TaskFaultHook that fails attempts
// with probability p, at most limit times total.
func (in *Injector) TaskCrashHook(p float64, limit int) func(phase, tracker string, taskID, attempt int) error {
	return func(phase, tracker string, taskID, attempt int) error {
		in.mu.Lock()
		defer in.mu.Unlock()
		if limit <= 0 || in.rng.Float64() >= p {
			return nil
		}
		limit--
		f := in.record(TaskCrash, fmt.Sprintf("%s/%s-%d", tracker, phase, taskID))
		f.Detected = true
		return fmt.Errorf("chaos: injected %s task crash on %s", phase, tracker)
	}
}

// KillTracker declares a MapReduce task tracker dead: TrackerAlive starts
// reporting false for it, and the engine re-runs its stranded work.
func (in *Injector) KillTracker(name string) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.downTrackers[name] = true
	return in.record(TrackerDeath, name)
}

// ReviveTracker brings a killed tracker back and stamps its fault healed.
func (in *Injector) ReviveTracker(name string) {
	in.mu.Lock()
	in.downTrackers[name] = false
	in.mu.Unlock()
	in.HealedByTarget(TrackerDeath, name)
}

// TrackerAlive is the liveness oracle to plug into mapred.Config.
func (in *Injector) TrackerAlive(name string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return !in.downTrackers[name]
}

// ---- recovery stamping ----

// MarkDetected stamps the fault's detection latency in both clock domains.
func (in *Injector) MarkDetected(f *Fault) {
	if f == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.markDetectedLocked(f)
}

func (in *Injector) markDetectedLocked(f *Fault) {
	if f.Detected {
		return
	}
	f.Detected = true
	f.DetectWall = time.Since(f.WallAt)
	f.DetectSim = in.simNow() - f.SimAt
}

// MarkHealed stamps the fault's recovery time (MTTR) in both clock domains.
// An undetected fault is marked detected at the same instant.
func (in *Injector) MarkHealed(f *Fault) {
	if f == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.markDetectedLocked(f)
	if f.Healed {
		return
	}
	f.Healed = true
	f.HealWall = time.Since(f.WallAt)
	f.HealSim = in.simNow() - f.SimAt
}

// DetectedByTarget stamps the oldest open fault of the class aimed at
// target; self-healing callbacks that only know the target name use this.
func (in *Injector) DetectedByTarget(class Class, target string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.faults {
		if f.Class == class && f.Target == target && !f.Detected {
			in.markDetectedLocked(f)
			return
		}
	}
}

// HealedByTarget stamps the oldest unhealed fault of the class aimed at
// target.
func (in *Injector) HealedByTarget(class Class, target string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range in.faults {
		if f.Class == class && f.Target == target && !f.Healed {
			in.markDetectedLocked(f)
			f.Healed = true
			f.HealWall = time.Since(f.WallAt)
			f.HealSim = in.simNow() - f.SimAt
			return
		}
	}
}

// Faults returns a copy of the ledger in injection order.
func (in *Injector) Faults() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Fault, len(in.faults))
	for i, f := range in.faults {
		out[i] = *f
	}
	return out
}
