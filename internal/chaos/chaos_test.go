package chaos

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"videocloud/internal/hdfs"
	"videocloud/internal/nebula"
)

const testBlock = 32 * 1024

// testStack builds one cloud + HDFS cluster with some stored data, identical
// on every call so seeded picks are comparable across stacks.
func testStack(t *testing.T) Targets {
	t.Helper()
	cloud := nebula.New(nebula.Options{})
	if _, err := cloud.Catalog().Register("img", 1<<30, 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"node1", "node2", "node3"} {
		if _, err := cloud.AddHost(n, 8, 1e9, 16<<30, 500<<30); err != nil {
			t.Fatal(err)
		}
	}
	cluster := hdfs.NewCluster(4, testBlock)
	data := make([]byte, 3*testBlock)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := cluster.Client("").WriteFile("/f", data, 3); err != nil {
		t.Fatal(err)
	}
	return Targets{Cloud: cloud, Cluster: cluster, Network: cloud.Network()}
}

// Two injectors with the same seed over identical stacks must make identical
// random picks in identical order.
func TestSeededReproducibility(t *testing.T) {
	run := func(seed int64) []string {
		in := New(seed, testStack(t))
		var got []string
		for _, f := range []func() (*Fault, error){
			in.CrashRandomDataNode, in.CorruptRandomBlock, in.CrashRandomHost, in.CrashRandomDataNode,
		} {
			fault, err := f()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, string(fault.Class)+":"+fault.Target)
		}
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// The tracker liveness oracle must flip with KillTracker/ReviveTracker and
// stamp the fault healed on revival.
func TestTrackerOracle(t *testing.T) {
	in := New(1, Targets{})
	if !in.TrackerAlive("dn1") {
		t.Fatal("fresh tracker reported dead")
	}
	in.KillTracker("dn1")
	if in.TrackerAlive("dn1") {
		t.Fatal("killed tracker reported alive")
	}
	in.ReviveTracker("dn1")
	if !in.TrackerAlive("dn1") {
		t.Fatal("revived tracker reported dead")
	}
	faults := in.Faults()
	if len(faults) != 1 || faults[0].Class != TrackerDeath || !faults[0].Healed {
		t.Fatalf("faults = %+v, want one healed tracker_death", faults)
	}
}

// WorkerCrashHook must honour its probability and total budget, recording
// one born-detected fault per injected failure.
func TestWorkerCrashHookLimit(t *testing.T) {
	in := New(7, Targets{})
	hook := in.WorkerCrashHook(1.0, 2)
	fails := 0
	for i := 0; i < 5; i++ {
		if hook("w1", i) != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("hook failed %d tasks, want 2", fails)
	}
	for _, f := range in.Faults() {
		if f.Class != WorkerCrash || !f.Detected {
			t.Fatalf("fault = %+v, want detected worker_crash", f)
		}
	}
	if n := len(in.Faults()); n != 2 {
		t.Fatalf("ledger has %d faults, want 2", n)
	}
}

// Injection against a missing subsystem must return ErrNoTarget, not panic.
func TestErrNoTarget(t *testing.T) {
	in := New(1, Targets{})
	if _, err := in.CrashHost("node1"); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("CrashHost err = %v", err)
	}
	if _, err := in.CrashRandomDataNode(); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("CrashRandomDataNode err = %v", err)
	}
	if _, err := in.PartitionHost("x"); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("PartitionHost err = %v", err)
	}
}

// The JSON report must aggregate per class and round-trip through a file.
func TestReportWriter(t *testing.T) {
	in := New(99, testStack(t))
	f1, err := in.CrashDataNode("dn0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.CrashDataNode("dn1"); err != nil {
		t.Fatal(err)
	}
	in.MarkDetected(f1)
	in.MarkHealed(f1)
	in.DetectedByTarget(DataNodeCrash, "dn1")

	path := filepath.Join(t.TempDir(), "BENCH_recovery.json")
	if err := in.WriteReport(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 99 || len(rep.Faults) != 2 || len(rep.Summary) != 1 {
		t.Fatalf("report = seed %d, %d faults, %d summaries", rep.Seed, len(rep.Faults), len(rep.Summary))
	}
	cs := rep.Summary[0]
	if cs.Class != DataNodeCrash || cs.Injected != 2 || cs.Detected != 2 || cs.Healed != 1 {
		t.Fatalf("summary = %+v", cs)
	}
	if in.MTTR() <= 0 {
		t.Fatal("MTTR not positive after a healed fault")
	}
}

// Partition + heal through the injector must stamp the fault healed.
func TestPartitionFaultLifecycle(t *testing.T) {
	tg := testStack(t)
	in := New(5, tg)
	f, err := in.PartitionHost("node1")
	if err != nil {
		t.Fatal(err)
	}
	if !tg.Network.Partitioned("node1") {
		t.Fatal("host not partitioned")
	}
	if err := in.HealPartition("node1"); err != nil {
		t.Fatal(err)
	}
	if tg.Network.Partitioned("node1") {
		t.Fatal("host still partitioned after heal")
	}
	if got := in.Faults()[f.ID-1]; !got.Healed {
		t.Fatalf("fault = %+v, want healed", got)
	}
}
