package chaos

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// ClassSummary aggregates detection latency and MTTR for one fault class.
// Wall seconds cover the real-clock recovery loops (HDFS healer); sim
// seconds the simulated-clock ones (nebula heartbeats). A class recovered
// in only one domain reports ~0 in the other.
type ClassSummary struct {
	Class    Class `json:"class"`
	Injected int   `json:"injected"`
	Detected int   `json:"detected"`
	Healed   int   `json:"healed"`

	MeanDetectWallSeconds float64 `json:"mean_detect_wall_seconds"`
	MaxDetectWallSeconds  float64 `json:"max_detect_wall_seconds"`
	MeanHealWallSeconds   float64 `json:"mean_heal_wall_seconds"`
	MaxHealWallSeconds    float64 `json:"max_heal_wall_seconds"`

	MeanDetectSimSeconds float64 `json:"mean_detect_sim_seconds"`
	MeanHealSimSeconds   float64 `json:"mean_heal_sim_seconds"`
}

// Report is the JSON document WriteReport emits (BENCH_recovery.json).
type Report struct {
	Seed    int64          `json:"seed"`
	Faults  []Fault        `json:"faults"`
	Summary []ClassSummary `json:"summary"`
}

// Report builds the aggregate view of the fault ledger.
func (in *Injector) Report() Report {
	faults := in.Faults()
	byClass := make(map[Class]*ClassSummary)
	var order []Class
	for i := range faults {
		f := &faults[i]
		cs := byClass[f.Class]
		if cs == nil {
			cs = &ClassSummary{Class: f.Class}
			byClass[f.Class] = cs
			order = append(order, f.Class)
		}
		cs.Injected++
		if f.Detected {
			cs.Detected++
			cs.MeanDetectWallSeconds += f.DetectWall.Seconds()
			cs.MeanDetectSimSeconds += f.DetectSim.Seconds()
			if s := f.DetectWall.Seconds(); s > cs.MaxDetectWallSeconds {
				cs.MaxDetectWallSeconds = s
			}
		}
		if f.Healed {
			cs.Healed++
			cs.MeanHealWallSeconds += f.HealWall.Seconds()
			cs.MeanHealSimSeconds += f.HealSim.Seconds()
			if s := f.HealWall.Seconds(); s > cs.MaxHealWallSeconds {
				cs.MaxHealWallSeconds = s
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	summary := make([]ClassSummary, 0, len(order))
	for _, class := range order {
		cs := byClass[class]
		if cs.Detected > 0 {
			cs.MeanDetectWallSeconds /= float64(cs.Detected)
			cs.MeanDetectSimSeconds /= float64(cs.Detected)
		}
		if cs.Healed > 0 {
			cs.MeanHealWallSeconds /= float64(cs.Healed)
			cs.MeanHealSimSeconds /= float64(cs.Healed)
		}
		summary = append(summary, *cs)
	}
	return Report{Seed: in.seed, Faults: faults, Summary: summary}
}

// WriteReport writes the JSON report to path (the `make chaos` target points
// it at BENCH_recovery.json).
func (in *Injector) WriteReport(path string) error {
	rep := in.Report()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MTTR returns the mean wall-clock heal latency across every healed fault,
// zero when nothing healed yet.
func (in *Injector) MTTR() time.Duration {
	var sum time.Duration
	n := 0
	for _, f := range in.Faults() {
		if f.Healed {
			sum += f.HealWall
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}
