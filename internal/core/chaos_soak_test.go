package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"videocloud/internal/chaos"
	"videocloud/internal/hdfs"
	"videocloud/internal/mapred"
	"videocloud/internal/nebula"
	"videocloud/internal/stream"
	"videocloud/internal/tenant"
	"videocloud/internal/trace"
)

// The chaos soak drives the full workload — uploads, streaming, a MapReduce
// re-index — while the seeded injector breaks one layer after another: a
// silent physical-host crash (heartbeat-detected, VMs auto-restarted), a
// silent DataNode crash (healer-detected, blocks re-replicated), a latent
// block corruption (checksum-detected on read, replica replaced), and a task
// tracker death plus injected task crashes mid-job (attempts retried,
// stranded work re-run). It then asserts the system healed completely: every
// upload byte-identical and streamable, every block back at target
// replication, the job finished, and the web tier never panicked.
//
// Reproducible: CHAOS_SEED overrides the injector seed; CHAOS_BENCH_OUT
// writes the per-fault-class detection/MTTR report (the `make chaos` target).
func soakSeed() int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 42
}

// waitUntil polls cond on the wall clock (the HDFS healer's domain).
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// annotated reports whether any span in tr carries an annotation key.
func annotated(tr *trace.Trace, key string) bool {
	for _, sd := range tr.Spans {
		for _, a := range sd.Annotations {
			if a.Key == key {
				return true
			}
		}
	}
	return false
}

// findRootTrace scans both trace rings for a completed trace by root name.
func findRootTrace(tracer *trace.Tracer, root string) *trace.Trace {
	for _, tr := range append(tracer.Retained(), tracer.Traces()...) {
		if tr.Root == root {
			return tr
		}
	}
	return nil
}

func allServiceVMsRunning(vc *VideoCloud) bool {
	for _, vm := range vc.Cloud().Snapshot() {
		if vm.State != nebula.Running {
			return false
		}
	}
	return true
}

func TestChaosSoak(t *testing.T) {
	uploads, seconds := 5, 15
	if testing.Short() {
		uploads, seconds = 3, 8
	}

	// Two paying tenants own the soak's catalog; after every fault below the
	// usage ledger must still balance to the byte for both of them.
	tenants := tenant.NewRegistry()
	tenA, err := tenants.Create("soak-a", 2, tenant.Quota{})
	if err != nil {
		t.Fatal(err)
	}
	tenB, err := tenants.Create("soak-b", 1, tenant.Quota{})
	if err != nil {
		t.Fatal(err)
	}

	// The injector is created after boot (it needs the assembled stack), but
	// the MapReduce engine's fault knobs are boot-time config — so the
	// oracle and hook late-bind through these variables.
	var in *chaos.Injector
	var taskHook func(phase, tracker string, taskID, attempt int) error
	vc := boot(t, Config{
		PhysicalHosts: 5, DataVMs: 4, Replication: 3,
		Tenants: tenants,
		// Always-on tracing: every failed-then-recovered operation below must
		// come out of the soak as a stored trace carrying its fault story.
		Trace: trace.Options{Enabled: true},
		MapRed: mapred.Config{
			TrackerAlive: func(tr string) bool {
				return in == nil || in.TrackerAlive(tr)
			},
			TaskFaultHook: func(phase, tr string, id, attempt int) error {
				if taskHook == nil {
					return nil
				}
				return taskHook(phase, tr, id, attempt)
			},
		},
	})
	defer vc.Close()
	in = chaos.New(soakSeed(), chaos.Targets{
		Cloud: vc.Cloud(), Cluster: vc.HDFS(), Network: vc.Cloud().Network(),
	})

	// ---- workload: upload the catalog, snapshot the stored bytes ----
	s := newSession(t, vc)
	s.loginAdmin()
	type upload struct {
		id   int64
		path string
		want []byte
	}
	var files []upload
	secsByTenant := map[string]float64{}
	for i := 0; i < uploads; i++ {
		// Alternate uploads between the two tenants so every later fault
		// lands on a catalog with mixed ownership.
		owner := tenA
		if i%2 == 1 {
			owner = tenB
		}
		secsByTenant[owner.Name()] += float64(seconds)
		id := s.uploadAs(vc, owner, fmt.Sprintf("soak clip %d topic%d", i, i%3), seconds, uint64(100+i))
		path := fmt.Sprintf("/videocloud/videos/%d.vcf", id)
		data, err := vc.HDFS().Client("").ReadFile(path)
		if err != nil {
			t.Fatalf("read back %s: %v", path, err)
		}
		files = append(files, upload{id, path, data})
		// Publishing also segments the rendition; track those objects too so
		// a corruption landing in a segment block is attributable (and the
		// end-of-soak sweep verifies their integrity as well).
		segs := 0
		for k := 0; ; k++ {
			sp := fmt.Sprintf("/videocloud/segments/%d-720p-%d.vcf", id, k)
			sdata, serr := vc.HDFS().Client("").ReadFile(sp)
			if serr != nil {
				break
			}
			files = append(files, upload{id, sp, sdata})
			segs++
		}
		if segs == 0 {
			t.Fatalf("upload %d published no segment objects", id)
		}
	}

	vc.StartSelfHealing(hdfs.HealerConfig{
		Interval: 5 * time.Millisecond,
		OnDataNodeDead: func(node string, since time.Duration) {
			in.DetectedByTarget(chaos.DataNodeCrash, node)
		},
	})
	defer vc.StopSelfHealing()

	// ---- fault 1: silent host crash ----
	// Only the heartbeat monitor can notice; recovery requeues the host's
	// VMs. Virtual time advances in steps so detection and full recovery
	// are stamped close to when they actually happen.
	f1, err := in.CrashRandomHost()
	if err != nil {
		t.Fatal(err)
	}
	hostHealed := false
	for elapsed := time.Duration(0); elapsed < 2*time.Minute; elapsed += 250 * time.Millisecond {
		vc.Cloud().RunFor(250 * time.Millisecond)
		if vc.Cloud().Metrics().Counter("host_failures_detected").Value() > 0 {
			in.MarkDetected(f1)
			if allServiceVMsRunning(vc) {
				in.MarkHealed(f1)
				hostHealed = true
				break
			}
		}
	}
	if !hostHealed {
		t.Fatalf("VMs not recovered after host crash on %s: %+v", f1.Target, vc.Cloud().Snapshot())
	}
	// The requeued VM's recovery episode is a complete stored trace whose
	// root records why the orchestrator requeued it.
	if rec := findRootTrace(vc.Tracer(), "nebula.recovery"); rec == nil {
		t.Fatalf("no nebula.recovery trace after host crash (stats %+v)", vc.Tracer().Stats())
	} else if !annotated(rec, "requeue") {
		t.Fatalf("recovery trace carries no requeue annotation: %+v", rec.Spans)
	}

	// ---- fault 2: silent DataNode crash ----
	// The wall-clock healer must declare it dead and re-replicate every
	// block it held back to target replication on the survivors.
	f2, err := in.CrashRandomDataNode()
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "datanode death detection", func() bool {
		return vc.Healer().Stats().DataNodesDetectedDead >= 1
	})
	waitUntil(t, 30*time.Second, "re-replication after datanode crash", func() bool {
		return len(vc.HDFS().NameNode().UnderReplicatedAll()) == 0 &&
			vc.Healer().PendingRepairs() == 0
	})
	in.MarkHealed(f2)

	// ---- fault 3: latent block corruption ----
	// Nothing notices until a reader's checksum verification trips; reading
	// from the corrupt replica's own node guarantees that replica is tried
	// first, the read must still succeed via failover, and the healer then
	// replaces the discarded replica.
	f3, err := in.CorruptRandomBlock()
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.SplitN(f3.Target, "/blk-", 2)
	corruptNode := parts[0]
	blkID, _ := strconv.ParseInt(parts[1], 10, 64)
	var corruptFile *upload
	for i := range files {
		blocks, err := vc.HDFS().Client("").BlockLocations(files[i].path)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if int64(b.ID) == blkID {
				corruptFile = &files[i]
			}
		}
	}
	if corruptFile == nil {
		t.Fatalf("corrupted block %d (target %s) not in any upload", blkID, f3.Target)
	}
	// The serving cache would mask the latent corruption until the block
	// fell out of residency; evict it now (as cache pressure eventually
	// would) so this read verifies against the corrupt replica itself.
	if bc := vc.HDFS().BlockCache(); bc != nil {
		bc.Invalidate(hdfs.BlockID(blkID))
	}
	rctx, rsp := vc.Tracer().StartSpan(context.Background(), "soak.corrupt_read")
	got, err := vc.HDFS().Client(corruptNode).ReadFileCtx(rctx, corruptFile.path)
	rsp.End()
	if err != nil {
		t.Fatalf("read of corrupted %s did not fail over: %v", corruptFile.path, err)
	}
	if !bytes.Equal(got, corruptFile.want) {
		t.Fatalf("%s served wrong bytes after corruption", corruptFile.path)
	}
	if vc.HDFS().Stats().CorruptReported == 0 {
		t.Fatal("checksum verification never reported the corrupt replica")
	}
	// The failed-then-recovered read's trace names the bad replica and the
	// failover that saved it.
	if rtr := vc.Tracer().Trace(rsp.TraceID()); rtr == nil {
		t.Fatal("corrupt read left no stored trace")
	} else if !annotated(rtr, "replica_error") || !annotated(rtr, "failover") {
		t.Fatalf("corrupt-read trace lacks replica_error/failover annotations: %+v", rtr.Spans)
	}
	in.DetectedByTarget(chaos.BlockCorruption, f3.Target)
	waitUntil(t, 30*time.Second, "re-replication after corruption", func() bool {
		return len(vc.HDFS().NameNode().UnderReplicatedAll()) == 0 &&
			vc.Healer().PendingRepairs() == 0
	})
	in.MarkHealed(f3)

	// ---- fault 4: tracker death + injected task crashes mid-job ----
	// The re-index MapReduce job must survive a dead tracker (its work
	// re-scheduled) and two injected attempt failures (retried).
	victim := ""
	for _, name := range vc.DataVMNames() {
		if name != f2.Target {
			victim = name
			break
		}
	}
	trackerFault := in.KillTracker(victim)
	taskHook = in.TaskCrashHook(1.0, 2)
	mctx, msp := vc.Tracer().StartSpan(context.Background(), "soak.reindex")
	res, err := vc.ReindexMRCtx(mctx)
	msp.End()
	if err != nil {
		t.Fatalf("re-index under chaos: %v", err)
	}
	lost := false
	for _, tr := range res.LostTrackers {
		if tr == victim {
			lost = true
		}
	}
	if !lost {
		t.Fatalf("job did not detect dead tracker %s: lost=%v", victim, res.LostTrackers)
	}
	if res.FailedAttempts < 2 {
		t.Fatalf("injected 2 task crashes, job retried %d", res.FailedAttempts)
	}
	in.DetectedByTarget(chaos.TrackerDeath, victim)
	in.ReviveTracker(victim)
	_ = trackerFault
	// The chaotic job's trace shows each injected crash (task-attempt span
	// with an error) and the retry that re-ran the work.
	mtr := vc.Tracer().Trace(msp.TraceID())
	if mtr == nil {
		t.Fatal("chaotic re-index left no stored trace")
	}
	crashed, retried := 0, 0
	for _, sd := range mtr.Spans {
		if sd.Layer != "mapred" {
			continue
		}
		if sd.Error != "" {
			crashed++
		}
		for _, a := range sd.Annotations {
			if a.Key == "retry" {
				retried++
			}
		}
	}
	if crashed < 2 || retried < 2 {
		t.Fatalf("re-index trace shows %d crashed / %d retried attempts, want >=2 each", crashed, retried)
	}

	// ---- verification: the system healed completely ----
	// Every upload is byte-identical to its post-upload snapshot and still
	// streams over HTTP.
	p := &stream.Player{HTTP: s.c}
	for _, f := range files {
		data, err := vc.HDFS().Client("").ReadFile(f.path)
		if err != nil {
			t.Fatalf("upload %s lost: %v", f.path, err)
		}
		if !bytes.Equal(data, f.want) {
			t.Fatalf("upload %s corrupted after soak", f.path)
		}
		if _, err := p.Play(fmt.Sprintf("%s/stream/%d", s.url, f.id), []float64{0.5}, nil); err != nil {
			t.Fatalf("stream %d after soak: %v", f.id, err)
		}
	}
	if n := len(vc.HDFS().NameNode().UnderReplicatedAll()); n != 0 {
		t.Fatalf("%d blocks still under-replicated after soak", n)
	}
	if vc.Site().Metrics().Counter("http_panics").Value() != 0 {
		t.Fatal("web tier panicked during soak")
	}
	if vc.Site().Index().Docs() != uploads {
		t.Fatalf("index has %d docs after chaos re-index, want %d", vc.Site().Index().Docs(), uploads)
	}

	// The recovery instrumentation saw everything.
	st := vc.Status()
	if st.Recovery.HostsCrashed < 1 || st.Recovery.HostFailuresDetected < 1 {
		t.Fatalf("recovery status missed the host crash: %+v", st.Recovery)
	}
	if st.Recovery.VMsRequeued < 1 || st.Recovery.VMsAutoRestarted < 1 {
		t.Fatalf("recovery status missed the VM restarts: %+v", st.Recovery)
	}
	if st.Heal.DataNodesDetectedDead < 1 || st.Heal.BlocksHealed < 1 {
		t.Fatalf("heal status missed the storage faults: %+v", st.Heal)
	}
	if st.HDFS.CorruptReported < 1 {
		t.Fatalf("hdfs status missed the corruption: %+v", st.HDFS)
	}

	// Every headline fault is detected and healed in the ledger.
	for _, f := range []*chaos.Fault{f1, f2, f3, trackerFault} {
		fresh := in.Faults()[f.ID-1]
		if !fresh.Detected || !fresh.Healed {
			t.Errorf("fault %d (%s on %s): detected=%v healed=%v",
				fresh.ID, fresh.Class, fresh.Target, fresh.Detected, fresh.Healed)
		}
	}

	// ---- per-tenant ledger balance ----
	// After a host crash with requeue, a DataNode loss, a corruption, and a
	// chaotic MapReduce job, each tenant's books must balance EXACTLY: the
	// ledger's transcode seconds are the source seconds they uploaded, the
	// ledger's stored bytes equal both the live reservation and the sum of
	// the database's per-video stored_bytes, and no quota ever overshot.
	// Streaming during verification above also means both tenants show
	// attributed egress.
	for _, ten := range []*tenant.Tenant{tenA, tenB} {
		name := ten.Name()
		u := vc.Tenants().Ledger().Usage(name)
		if u.TranscodeSeconds != secsByTenant[name] {
			t.Errorf("tenant %s: ledger transcode seconds = %v, want exactly %v",
				name, u.TranscodeSeconds, secsByTenant[name])
		}
		var dbBytes int64
		rows, err := vc.Site().DB().Select("videos", "tenant", name)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			sb, _ := row["stored_bytes"].(int64)
			dbBytes += sb
		}
		res := ten.Reservations()
		if int64(u.BytesStored) != dbBytes || res.StorageBytes != dbBytes {
			t.Errorf("tenant %s: ledger stored=%v reserved=%d db=%d, want all equal",
				name, u.BytesStored, res.StorageBytes, dbBytes)
		}
		if dbBytes == 0 {
			t.Errorf("tenant %s stored nothing during the soak", name)
		}
		if ov, ob, ot := ten.Overshoot(); ov != 0 || ob != 0 || ot != 0 {
			t.Errorf("tenant %s: quota overshoot vms=%d bytes=%d xcode=%v, want exactly 0", name, ov, ob, ot)
		}
		if u.BytesEgressed == 0 {
			t.Errorf("tenant %s: no egress attributed despite post-soak streaming", name)
		}
	}

	if out := os.Getenv("CHAOS_BENCH_OUT"); out != "" {
		if err := in.WriteReport(out); err != nil {
			t.Fatalf("write chaos report: %v", err)
		}
		t.Logf("chaos report: %s (MTTR %v over %d faults)", out, in.MTTR(), len(in.Faults()))
	}
}
