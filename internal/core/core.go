// Package core is the paper's actual contribution: the integration of an
// IaaS layer (KVM managed by OpenNebula), a PaaS layer (HDFS + MapReduce
// reached through a FUSE mount), and the SaaS video website, assembled into
// one running system — the architecture of Figures 6, 13 and 14.
//
// VideoCloud boots a simulated physical cluster, deploys a service group of
// virtual machines (NameNode, DataNodes, web server) through the
// orchestrator, and runs the video service *on those VMs*: every HDFS
// datanode, every MapReduce tracker and every FFmpeg conversion worker is
// named after — and capacity-accounted against — a VM the IaaS placed. Live
// migration of the web server VM while streams are playing (experiment E10)
// exercises the whole stack at once.
package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"videocloud/internal/edge"
	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/ingress"
	"videocloud/internal/mapred"
	"videocloud/internal/metrics"
	"videocloud/internal/migrate"
	"videocloud/internal/nebula"
	"videocloud/internal/search"
	"videocloud/internal/tenant"
	"videocloud/internal/trace"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
	"videocloud/internal/virt"
	"videocloud/internal/web"
)

const gb = int64(1) << 30

// Config sizes the deployment. The zero value builds the paper's small
// testbed: four physical nodes, three DataNode VMs, one web VM.
type Config struct {
	// PhysicalHosts is the size of the host pool (default 4).
	PhysicalHosts int
	// DataVMs is the number of DataNode/TaskTracker VMs (default 3).
	DataVMs int
	// HostCores / HostMemoryBytes size each physical node (default
	// 8 cores / 16 GiB).
	HostCores       int
	HostMemoryBytes int64
	// Replication is the HDFS replication factor (default min(3, DataVMs)).
	Replication int
	// BlockSize is the HDFS block size (default 4 MiB here — scaled down
	// from Hadoop's 64 MiB to keep simulated uploads cheap; override for
	// fidelity).
	BlockSize int64
	// BlockCacheBytes budgets the shared, refcounted HDFS block cache the
	// serving hot path reads through (zero selects the HDFS default;
	// negative disables caching so every read verifies against replicas).
	BlockCacheBytes int64
	// Policy is the Capacity Manager policy (default striping).
	Policy nebula.Policy
	// Target is the playback encoding (default: web package's H.264/720p).
	Target video.Spec
	// AdminUser/AdminPassword seed the site's administrator account.
	AdminUser, AdminPassword string
	// TranscodeWorkers sizes the site's asynchronous conversion pool; zero
	// keeps uploads synchronous (see web.Config.TranscodeWorkers).
	TranscodeWorkers int
	// TranscodeQueueCap bounds the async transcode intake queue.
	TranscodeQueueCap int
	// Frontends is the number of web-server replicas behind the ingress
	// balancer (default 1: the paper's single web VM; >1 builds the
	// scale-out serving fleet E14 measures).
	Frontends int
	// MetadataShards splits the metadata store into independent shards
	// hashed by id (default 1: one videodb.DB; >1 builds a
	// videodb.ShardedDB).
	MetadataShards int
	// StreamRateBytesPerSec caps each frontend's aggregate streaming
	// egress — the per-web-VM NIC model. Zero leaves replicas unpaced.
	StreamRateBytesPerSec int64
	// SegmentSeconds is the segmented-delivery segment duration (default
	// twice the target GOP; must be a GOP multiple).
	SegmentSeconds int
	// EdgeCacheBytes budgets each frontend's in-memory edge cache for
	// playlists and segments (default 64 MiB).
	EdgeCacheBytes int64
	// LiveEdgeTTL bounds how stale a cached playlist may be — the live
	// viewer's segment-discovery latency (default 200ms).
	LiveEdgeTTL time.Duration
	// Recovery tunes host failure detection and VM auto-restart (zero
	// values select the nebula defaults; arm detection with
	// StartSelfHealing).
	Recovery nebula.RecoveryOptions
	// MapRed tunes the MapReduce engine, including its fault-tolerance
	// knobs (task retries, tracker liveness) — the chaos soak plugs its
	// injector in here.
	MapRed mapred.Config
	// Trace configures the distributed tracer shared by every layer (web
	// middleware roots, transcode queue, farm, HDFS I/O, MapReduce
	// attempts, VM lifecycles). The zero value builds a disabled tracer
	// that costs nothing until Tracer().SetEnabled(true).
	Trace trace.Options
	// Tenants is the multi-tenant control plane: API tokens, quotas,
	// weighted-fair shares, and the usage ledger. Nil builds a fresh
	// registry holding only the default (unlimited) tenant, so a
	// single-tenant deployment pays nothing. The registry is threaded
	// through every layer: web admission and WFQ, HDFS write metering,
	// and VM quota gating in the orchestrator.
	Tenants *tenant.Registry
}

func (c Config) withDefaults() Config {
	if c.PhysicalHosts == 0 {
		c.PhysicalHosts = 4
	}
	if c.DataVMs == 0 {
		c.DataVMs = 3
	}
	if c.HostCores == 0 {
		c.HostCores = 8
	}
	if c.HostMemoryBytes == 0 {
		c.HostMemoryBytes = 16 * gb
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	if c.Replication > c.DataVMs {
		c.Replication = c.DataVMs
	}
	if c.BlockSize == 0 {
		c.BlockSize = 4 << 20
	}
	if c.Frontends == 0 {
		c.Frontends = 1
	}
	if c.MetadataShards == 0 {
		c.MetadataShards = 1
	}
	if c.Tenants == nil {
		c.Tenants = tenant.NewRegistry()
	}
	return c
}

// VideoCloud is the fully assembled system.
type VideoCloud struct {
	cfg    Config
	cloud  *nebula.Cloud
	hdfs   *hdfs.Cluster
	engine *mapred.Engine
	mount  *fusebridge.Mount
	site   *web.Site
	sites  []*web.Site
	lb     *ingress.Balancer
	reg    *metrics.Registry
	healer *hdfs.Healer
	tracer *trace.Tracer

	elastic    *nebula.ElasticController
	rebalancer *nebula.Rebalancer

	webVMID    int
	nameVMID   int
	dataVMIDs  []int
	reindexGen int
}

// BaseImage is the catalog name of the guest OS image every VM boots from
// (the paper's Ubuntu 10.04 deployment, §IV).
const BaseImage = "ubuntu-10.04-server"

// ServiceGroup is the nebula service-group name of the deployment.
const ServiceGroup = "videoservice"

// ErrNotReady is returned when the service group failed to reach Running.
var ErrNotReady = errors.New("core: service group did not become ready")

// New boots the whole stack: hosts, VM service group, HDFS on the data VMs,
// MapReduce over the same VMs, the FUSE mount, and the website.
func New(cfg Config) (*VideoCloud, error) {
	cfg = cfg.withDefaults()
	vc := &VideoCloud{cfg: cfg, reg: metrics.NewRegistry()}
	vc.tracer = trace.New(cfg.Trace)

	// ---- IaaS: hosts + image + service group ----
	vc.cloud = nebula.New(nebula.Options{Policy: cfg.Policy, Recovery: cfg.Recovery})
	// Attach the tracer before the service group is submitted so the boot
	// of every service VM is captured as a nebula.vm trace.
	vc.cloud.SetTracer(vc.tracer)
	// Owned VM submissions (Template.Owner != "") pass quota admission and
	// meter vm-seconds into the tenant ledger. The stack's own service
	// group is unowned infrastructure and bypasses the gate.
	vc.cloud.SetTenantGate(tenant.VMGate{Reg: cfg.Tenants})
	for i := 1; i <= cfg.PhysicalHosts; i++ {
		name := fmt.Sprintf("node%d", i)
		if _, err := vc.cloud.AddHost(name, cfg.HostCores, 1e9, cfg.HostMemoryBytes, 500*gb); err != nil {
			return nil, err
		}
	}
	if _, err := vc.cloud.Catalog().Register(BaseImage, 2*gb, 1004); err != nil {
		return nil, err
	}

	// Every service VM is submitted with Requeue: when its physical host
	// fails, the orchestrator restarts it on a surviving host instead of
	// declaring it dead — the HA behaviour the self-healing layer needs.
	templates := []nebula.Template{{
		Name: "namenode", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 20 * gb,
		Image: BaseImage, Workload: virt.HotspotWriter{Rate: 8 << 20},
		Context: map[string]string{"ROLE": "namenode"}, Requeue: true,
	}, {
		Name: "webserver", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 20 * gb,
		Image: BaseImage, Workload: &virt.StreamingServer{StreamRate: 16 << 20},
		Context: map[string]string{"ROLE": "webserver"}, Requeue: true,
	}}
	for i := 0; i < cfg.DataVMs; i++ {
		templates = append(templates, nebula.Template{
			Name: fmt.Sprintf("datanode%d", i), VCPUs: 2, MemoryBytes: 4 * gb,
			DiskBytes: 100 * gb, Image: BaseImage,
			Workload: virt.UniformWriter{Rate: 4 << 20, Util: 0.4},
			Context:  map[string]string{"ROLE": "datanode"},
			Requeue:  true,
			// One physical host must never hold two DataNode VMs:
			// otherwise a single host failure can destroy several
			// HDFS replicas at once and defeat Figure 11's point.
			AntiAffinity: cfg.DataVMs <= cfg.PhysicalHosts,
		})
	}
	ids, err := vc.cloud.SubmitGroup(ServiceGroup, templates)
	if err != nil {
		return nil, err
	}
	vc.cloud.WaitIdle()
	if !vc.cloud.GroupReady(ServiceGroup) {
		return nil, fmt.Errorf("%w: %d VMs submitted", ErrNotReady, len(ids))
	}
	vc.nameVMID, vc.webVMID = ids[0], ids[1]
	vc.dataVMIDs = ids[2:]

	// ---- PaaS: HDFS + MapReduce on the data VMs ----
	vc.hdfs = hdfs.NewCluster(0, cfg.BlockSize)
	// The assembled stack serves video through the shared block cache:
	// concurrent viewers of a hot file share one replica fetch and zero
	// per-request data copies. Standalone clusters leave it off so every
	// read exercises replica checksums.
	vc.hdfs.SetBlockCacheCapacity(cfg.BlockCacheBytes)
	// Every HDFS write is attributed to the writing context's tenant in
	// the ledger (uploads thread the tenant through web → queue → store).
	reg := cfg.Tenants
	vc.hdfs.SetWriteMeter(func(ctx context.Context, path string, n int64) {
		name := ""
		if ten, _, ok := tenant.FromContext(ctx); ok {
			name = ten.Name()
		}
		reg.Meter(name, tenant.KindHDFSBytesWritten, float64(n))
	})
	var trackers []string
	for _, id := range vc.dataVMIDs {
		rec, rerr := vc.cloud.VM(id)
		if rerr != nil {
			return nil, rerr
		}
		// The datanode's "rack" is the physical host its VM runs on:
		// HDFS's rack policy then keeps replicas on distinct physical
		// machines, so one host failure cannot destroy a whole block
		// even though the datanodes are virtual.
		vc.hdfs.AddDataNodeRack(rec.Name(), "/"+rec.HostName)
		trackers = append(trackers, rec.Name())
	}
	vc.engine, err = mapred.NewEngine(vc.hdfs, trackers, cfg.MapRed)
	if err != nil {
		return nil, err
	}
	vc.mount, err = fusebridge.New(vc.hdfs.Client(""), "/videocloud", cfg.Replication)
	if err != nil {
		return nil, err
	}

	// ---- SaaS: the website, converting uploads on the data VMs ----
	// MetadataShards > 1 swaps the single embedded DB for a sharded store
	// (per-shard latency lands in the stack registry); Frontends > 1 builds
	// replica Sites over the shared fleet state behind an ingress balancer.
	webCfg := web.Config{
		Tenants:               cfg.Tenants,
		Store:                 vc.mount,
		Farm:                  video.Farm{Nodes: trackers},
		Target:                cfg.Target,
		AdminUser:             cfg.AdminUser,
		AdminPassword:         cfg.AdminPassword,
		TranscodeWorkers:      cfg.TranscodeWorkers,
		TranscodeQueueCap:     cfg.TranscodeQueueCap,
		StreamRateBytesPerSec: cfg.StreamRateBytesPerSec,
		SegmentSeconds:        cfg.SegmentSeconds,
		EdgeCacheBytes:        cfg.EdgeCacheBytes,
		LiveEdgeTTL:           cfg.LiveEdgeTTL,
		Tracer:                vc.tracer,
	}
	if cfg.MetadataShards > 1 {
		sdb := videodb.NewSharded(cfg.MetadataShards)
		sdb.SetMetrics(vc.reg)
		webCfg.DB = sdb
	}
	vc.site, err = web.New(webCfg)
	if err != nil {
		return nil, err
	}
	vc.sites = []*web.Site{vc.site}
	for i := 1; i < cfg.Frontends; i++ {
		rep, rerr := web.NewReplica(webCfg, vc.site)
		if rerr != nil {
			return nil, rerr
		}
		vc.sites = append(vc.sites, rep)
	}
	if len(vc.sites) > 1 {
		backends := make([]http.Handler, len(vc.sites))
		for i, s := range vc.sites {
			backends[i] = s
		}
		vc.lb = ingress.New(backends...)
		vc.lb.SetMetrics(vc.reg)
	}
	return vc, nil
}

// Cloud returns the IaaS orchestrator.
func (vc *VideoCloud) Cloud() *nebula.Cloud { return vc.cloud }

// HDFS returns the storage cluster.
func (vc *VideoCloud) HDFS() *hdfs.Cluster { return vc.hdfs }

// Engine returns the MapReduce engine.
func (vc *VideoCloud) Engine() *mapred.Engine { return vc.engine }

// Mount returns the FUSE mount the site stores uploads in.
func (vc *VideoCloud) Mount() *fusebridge.Mount { return vc.mount }

// Site returns the primary web replica (all replicas share one fleet state,
// so reads and writes through any of them are equivalent).
func (vc *VideoCloud) Site() *web.Site { return vc.site }

// Sites returns every web replica in the serving fleet.
func (vc *VideoCloud) Sites() []*web.Site { return vc.sites }

// Ingress returns the fleet's load balancer, nil for a single-frontend
// deployment.
func (vc *VideoCloud) Ingress() *ingress.Balancer { return vc.lb }

// Handler returns the serving tier as an http.Handler: the ingress balancer
// when a fleet is deployed, the lone site otherwise.
func (vc *VideoCloud) Handler() http.Handler {
	if vc.lb != nil {
		return vc.lb
	}
	return vc.site
}

// Metrics returns stack-level counters.
func (vc *VideoCloud) Metrics() *metrics.Registry { return vc.reg }

// Tenants returns the multi-tenant control plane (tokens, quotas, ledger).
func (vc *VideoCloud) Tenants() *tenant.Registry { return vc.cfg.Tenants }

// Tracer returns the stack-wide distributed tracer.
func (vc *VideoCloud) Tracer() *trace.Tracer { return vc.tracer }

// WebVMID returns the orchestrator ID of the web-server VM.
func (vc *VideoCloud) WebVMID() int { return vc.webVMID }

// DataVMNames returns the hypervisor names of the DataNode VMs (also the
// HDFS datanode / tracker / farm worker names).
func (vc *VideoCloud) DataVMNames() []string {
	out := make([]string, 0, len(vc.dataVMIDs))
	for _, id := range vc.dataVMIDs {
		rec, err := vc.cloud.VM(id)
		if err == nil {
			out = append(out, rec.Name())
		}
	}
	return out
}

// MigrateWebVM live-migrates the web-server VM to dstHost and waits for the
// migration to finish, returning its report (Figures 8-10, but with the
// video service running on the VM).
func (vc *VideoCloud) MigrateWebVM(dstHost string) (*migrate.Report, error) {
	if err := vc.cloud.LiveMigrate(vc.webVMID, dstHost); err != nil {
		return nil, err
	}
	vc.cloud.WaitIdle()
	rec, err := vc.cloud.VM(vc.webVMID)
	if err != nil {
		return nil, err
	}
	if rec.LastMigration == nil {
		return nil, errors.New("core: migration produced no report")
	}
	vc.reg.Counter("web_vm_migrations").Inc()
	return rec.LastMigration, nil
}

// KillDataVM takes down the i-th DataNode VM's storage daemon and lets HDFS
// re-replicate — the fault the paper stores "transcripts" (replicas) to
// survive. It returns the number of blocks repaired.
func (vc *VideoCloud) KillDataVM(i int) (int, error) {
	if i < 0 || i >= len(vc.dataVMIDs) {
		return 0, fmt.Errorf("core: no data VM %d", i)
	}
	rec, err := vc.cloud.VM(vc.dataVMIDs[i])
	if err != nil {
		return 0, err
	}
	if err := vc.hdfs.KillDataNode(rec.Name()); err != nil {
		return 0, err
	}
	repaired := vc.hdfs.RepairAll()
	vc.reg.Counter("data_vm_failures").Inc()
	return repaired, nil
}

// ReindexMR rebuilds the site's search index with a distributed MapReduce
// job over a corpus exported to HDFS — the §III periodic Nutch re-index —
// and atomically swaps it into the site. The stored segment lands at
// /videocloud-index/segment.
func (vc *VideoCloud) ReindexMR() (*mapred.JobResult, error) {
	return vc.ReindexMRCtx(context.Background())
}

// ReindexMRCtx is ReindexMR under a core.reindex trace: the corpus export,
// the MapReduce job (with its per-attempt spans), and the index swap all
// record into one trace.
func (vc *VideoCloud) ReindexMRCtx(ctx context.Context) (*mapred.JobResult, error) {
	docs := vc.site.Documents()
	if len(docs) == 0 {
		return nil, errors.New("core: nothing to index")
	}
	ctx, sp := vc.tracer.StartSpan(ctx, "core.reindex")
	if sp != nil {
		sp.AnnotateInt("docs", int64(len(docs)))
	}
	res, err := vc.reindexSpan(ctx, docs)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	sp.End()
	return res, nil
}

func (vc *VideoCloud) reindexSpan(ctx context.Context, docs []search.Document) (*mapred.JobResult, error) {
	vc.reindexGen++
	dir := fmt.Sprintf("/corpus/gen-%d", vc.reindexGen)
	shard := len(docs)/len(vc.dataVMIDs) + 1
	paths, err := search.WriteCorpus(vc.hdfs.Client(""), dir, docs, shard, vc.cfg.Replication)
	if err != nil {
		return nil, err
	}
	ix, res, err := search.BuildIndexMRCtx(ctx, vc.engine, paths, fmt.Sprintf("/index/gen-%d", vc.reindexGen))
	if err != nil {
		return nil, err
	}
	if err := ix.SaveSegment(vc.hdfs.Client(""), "/videocloud-index/segment", vc.cfg.Replication); err != nil {
		return nil, err
	}
	vc.site.ReplaceIndex(ix)
	vc.reg.Counter("reindexes").Inc()
	vc.reg.Histogram("reindex_seconds").Observe(res.Duration.Seconds())
	return res, nil
}

// StartSelfHealing arms both recovery loops: the orchestrator's heartbeat
// host-failure detector (virtual time; tuned by Config.Recovery) and the
// storage tier's liveness/re-replication healer (wall clock; tuned by hcfg).
// While armed, the heartbeat is a periodic simulation event, so drive the
// cloud with RunFor rather than WaitIdle. Idempotent: re-arming restarts
// the HDFS healer with the new config.
func (vc *VideoCloud) StartSelfHealing(hcfg hdfs.HealerConfig) {
	vc.cloud.Monitor().EnableFailureDetection()
	if vc.healer != nil {
		vc.healer.Stop()
	}
	vc.healer = vc.hdfs.StartHealer(hcfg)
	vc.reg.Counter("selfheal_armed").Inc()
}

// StopSelfHealing disarms both loops (and makes WaitIdle usable again).
func (vc *VideoCloud) StopSelfHealing() {
	vc.cloud.Monitor().DisableFailureDetection()
	if vc.healer != nil {
		vc.healer.Stop()
		vc.healer = nil
	}
}

// Healer returns the storage tier's healing loop, nil while disarmed.
func (vc *VideoCloud) Healer() *hdfs.Healer { return vc.healer }

// MaintenanceReport summarises a RollingMaintenance pass.
type MaintenanceReport struct {
	// HostsServiced lists hosts that were evacuated and re-enabled.
	HostsServiced []string
	// Migrations counts live migrations performed.
	Migrations int
	// Skipped lists hosts that could not be fully evacuated (left
	// enabled with their VMs in place).
	Skipped []string
}

// RollingMaintenance services every physical host in turn: evacuate its VMs
// with live migration, hold it in maintenance (where an operator would
// patch and reboot it), then re-enable it before moving on. The video
// service keeps running throughout — the operational payoff of the live
// migration the paper demonstrates in Figures 8-10.
func (vc *VideoCloud) RollingMaintenance() (*MaintenanceReport, error) {
	rep := &MaintenanceReport{}
	for _, h := range vc.cloud.Hosts() {
		if h.Failed() {
			continue
		}
		started, err := vc.cloud.Evacuate(h.Name)
		if err != nil {
			// Not enough spare capacity for this host's VMs: put it
			// back in service and move on.
			vc.cloud.Enable(h.Name)
			rep.Skipped = append(rep.Skipped, h.Name)
			continue
		}
		vc.cloud.WaitIdle()
		rep.Migrations += started
		// (Patch + reboot happens here in real life.)
		if err := vc.cloud.Enable(h.Name); err != nil {
			return rep, err
		}
		rep.HostsServiced = append(rep.HostsServiced, h.Name)
	}
	vc.reg.Counter("maintenance_passes").Inc()
	return rep, nil
}

// Status summarises the stack for dashboards and the CLI.
type Status struct {
	Hosts      int
	VMs        []nebula.VMInfo
	DataNodes  []string
	Videos     int
	Users      int
	IndexDocs  int
	VirtualNow time.Duration
	// Routes carries the serving tier's per-route request counts, status
	// classes, in-flight gauges, and latency quantiles.
	Routes []web.RouteStats
	// Transcode reports the async conversion pool: workers, queue depth,
	// job counts, queue wait, and measured wall-clock conversion time.
	Transcode web.TranscodeStats
	// HDFS reports the data-path counters: bytes moved, readahead
	// hit/miss/prefetch counts, replica-selection policy decisions,
	// failovers, and read/write latency quantiles.
	HDFS hdfs.Stats
	// Recovery reports the orchestrator's failure-detection and
	// auto-restart activity.
	Recovery RecoveryStatus
	// Heal reports the storage healer's detection/repair activity (zero
	// while self-healing is disarmed).
	Heal hdfs.HealStats
	// Breaker reports the web tier's HDFS circuit breaker.
	Breaker web.BreakerStats
	// Trace reports the distributed tracer: roots started/sampled, spans
	// recorded/dropped, and stored-trace counts.
	Trace trace.Stats
	// Fleet reports the serving tier's shape and per-frontend request
	// distribution.
	Fleet FleetStatus
	// Edge aggregates every frontend's edge-cache counters (segmented
	// delivery: hits, origin fills, admissions, evictions).
	Edge edge.Stats
	// Elastic reports the autoscaling/rebalancing subsystem: fleet size,
	// scale decisions, drain outcomes, and host-load spread.
	Elastic ElasticStatus
	// Tenants reports every tenant's quota, live reservations, and
	// accumulated ledger usage, in creation order.
	Tenants []tenant.Status
}

// FleetStatus summarises the scale-out serving tier.
type FleetStatus struct {
	// Frontends is the number of web replicas (1 = no ingress).
	Frontends int
	// MetadataShards is the number of metadata store shards (1 = single DB).
	MetadataShards int
	// BackendRequests is the ingress's completed-request count per
	// frontend (nil for a single-frontend deployment).
	BackendRequests []int64
	// AffineRoutes / SpreadRoutes split ingress routing decisions between
	// video-affinity and least-in-flight.
	AffineRoutes, SpreadRoutes int64
}

// RecoveryStatus summarises the IaaS self-healing loop: how many host
// failures the heartbeat monitor declared, what happened to the VMs on
// them, and how long detection and recovery took (virtual-time seconds).
type RecoveryStatus struct {
	HostsCrashed          int64
	HostFailuresDetected  int64
	VMsRequeued           int64
	VMsAutoRestarted      int64
	VMsRestartExhausted   int64
	MigrationsRescheduled int64
	EvacuationsStuck      int64
	EvacuationsRetried    int64
	DetectLatency         metrics.Snapshot
	RestartLatency        metrics.Snapshot
}

// Status returns a point-in-time summary.
func (vc *VideoCloud) Status() Status {
	videos, _ := vc.site.DB().Count("videos")
	users, _ := vc.site.DB().Count("users")
	st := Status{
		Hosts:      len(vc.cloud.Hosts()),
		VMs:        vc.cloud.Snapshot(),
		DataNodes:  vc.hdfs.NameNode().LiveDataNodes(),
		Videos:     videos,
		Users:      users,
		IndexDocs:  vc.site.Index().Docs(),
		VirtualNow: vc.cloud.Now(),
		Routes:     vc.site.RouteStats(),
		Transcode:  vc.site.TranscodeStats(),
		HDFS:       vc.hdfs.Stats(),
		Recovery:   vc.recoveryStatus(),
		Breaker:    vc.site.BreakerStats(),
		Trace:      vc.tracer.Stats(),
	}
	if vc.healer != nil {
		st.Heal = vc.healer.Stats()
	}
	st.Fleet = FleetStatus{
		Frontends:      len(vc.sites),
		MetadataShards: vc.cfg.MetadataShards,
	}
	if vc.lb != nil {
		st.Fleet.BackendRequests = vc.lb.Stats()
		st.Fleet.AffineRoutes = vc.reg.Counter("ingress_affine_routes").Value()
		st.Fleet.SpreadRoutes = vc.reg.Counter("ingress_spread_routes").Value()
	}
	st.Edge = vc.edgeStats()
	st.Elastic = vc.elasticStatus()
	st.Tenants = vc.cfg.Tenants.StatusAll()
	return st
}

// edgeStats sums the edge-cache counters across the frontend fleet.
// Capacity is summed too: the result reads as "the tier's cache".
func (vc *VideoCloud) edgeStats() edge.Stats {
	var agg edge.Stats
	for _, s := range vc.sites {
		es := s.EdgeStats()
		agg.Hits += es.Hits
		agg.Misses += es.Misses
		agg.Joins += es.Joins
		agg.Fills += es.Fills
		agg.Evictions += es.Evictions
		agg.Expirations += es.Expirations
		agg.AdmitRejects += es.AdmitRejects
		agg.Entries += es.Entries
		agg.UsedBytes += es.UsedBytes
		agg.CapBytes += es.CapBytes
	}
	return agg
}

// recoveryStatus snapshots the orchestrator's self-healing counters.
func (vc *VideoCloud) recoveryStatus() RecoveryStatus {
	reg := vc.cloud.Metrics()
	return RecoveryStatus{
		HostsCrashed:          reg.Counter("hosts_crashed").Value(),
		HostFailuresDetected:  reg.Counter("host_failures_detected").Value(),
		VMsRequeued:           reg.Counter("vms_requeued").Value(),
		VMsAutoRestarted:      reg.Counter("vms_auto_restarted").Value(),
		VMsRestartExhausted:   reg.Counter("vms_restart_exhausted").Value(),
		MigrationsRescheduled: reg.Counter("migrations_rescheduled").Value(),
		EvacuationsStuck:      reg.Counter("evacuations_stuck").Value(),
		EvacuationsRetried:    reg.Counter("evacuations_retried").Value(),
		DetectLatency:         reg.Histogram("host_detect_seconds").Snapshot(),
		RestartLatency:        reg.Histogram("vm_recovery_seconds").Snapshot(),
	}
}

// DrainTranscodes waits for every queued upload conversion to finish on
// every frontend (no-op for synchronous sites).
func (vc *VideoCloud) DrainTranscodes() {
	for _, s := range vc.sites {
		s.DrainTranscodes()
	}
}

// Close disarms self-healing and elasticity, then shuts down every
// frontend's transcode pool after draining queued jobs.
func (vc *VideoCloud) Close() {
	vc.StopSelfHealing()
	vc.StopElastic()
	for _, s := range vc.sites {
		s.Close()
	}
}
