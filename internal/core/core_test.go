package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"videocloud/internal/nebula"
	"videocloud/internal/search"
	"videocloud/internal/stream"
	"videocloud/internal/tenant"
	"videocloud/internal/video"
)

func boot(t *testing.T, cfg Config) *VideoCloud {
	t.Helper()
	vc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return vc
}

func TestBootAssemblesStack(t *testing.T) {
	vc := boot(t, Config{})
	st := vc.Status()
	if st.Hosts != 4 {
		t.Fatalf("hosts = %d", st.Hosts)
	}
	// 1 namenode + 1 webserver + 3 datanodes, all running.
	if len(st.VMs) != 5 {
		t.Fatalf("VMs = %d", len(st.VMs))
	}
	for _, vm := range st.VMs {
		if vm.State != nebula.Running {
			t.Fatalf("%s state = %v", vm.Name, vm.State)
		}
		if vm.IP == "" || vm.Host == "" {
			t.Fatalf("%s missing placement: %+v", vm.Name, vm)
		}
	}
	// HDFS datanodes are the data VMs.
	if len(st.DataNodes) != 3 {
		t.Fatalf("datanodes = %v", st.DataNodes)
	}
	for _, dn := range st.DataNodes {
		if !strings.HasPrefix(dn, "datanode") {
			t.Fatalf("datanode %q not named after a VM", dn)
		}
	}
	// Admin account exists.
	if st.Users != 1 {
		t.Fatalf("users = %d", st.Users)
	}
	// Service group context: the web VM knows the namenode's address.
	rec, err := vc.Cloud().VM(vc.WebVMID())
	if err != nil {
		t.Fatal(err)
	}
	ctx := rec.VM.Context()
	if ctx["ROLE"] != "webserver" || ctx["MEMBER_namenode_IP"] == "" {
		t.Fatalf("web VM context = %v", ctx)
	}
}

// session drives the site over HTTP with cookies.
type session struct {
	t   *testing.T
	c   *http.Client
	url string
}

func newSession(t *testing.T, vc *VideoCloud) *session {
	t.Helper()
	srv := httptest.NewServer(vc.Handler())
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	return &session{t: t, c: &http.Client{Jar: jar}, url: srv.URL}
}

func (s *session) loginAdmin() {
	s.t.Helper()
	resp, err := s.c.PostForm(s.url+"/login", url.Values{
		"username": {"admin"}, "password": {"admin"},
	})
	if err != nil {
		s.t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func (s *session) uploadDirect(vc *VideoCloud, title string, seconds int, seed uint64) int64 {
	s.t.Helper()
	return s.uploadAs(vc, nil, title, seconds, seed)
}

// uploadAs uploads on behalf of a tenant (nil = the default tenant): the
// context carries the tenant identity exactly as the web middleware would
// attach it for a Bearer-token request.
func (s *session) uploadAs(vc *VideoCloud, ten *tenant.Tenant, title string, seconds int, seed uint64) int64 {
	s.t.Helper()
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 64_000}
	data, err := video.Generate(src, seconds, seed)
	if err != nil {
		s.t.Fatal(err)
	}
	ctx := context.Background()
	if ten != nil {
		ctx = tenant.WithContext(ctx, ten, tenant.RoleWriter)
	}
	id, err := vc.Site().ProcessUpload(ctx, 1, title, "uploaded in test", data)
	if err != nil {
		s.t.Fatal(err)
	}
	return id
}

func TestEndToEndUploadSearchStream(t *testing.T) {
	vc := boot(t, Config{})
	s := newSession(t, vc)
	s.loginAdmin()
	id := s.uploadDirect(vc, "Full stack demo", 30, 77)

	// Search finds it via the live index.
	resp, err := s.c.Get(s.url + "/search?q=stack+demo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Full stack demo") {
		t.Fatal("search missed the upload")
	}
	// Streaming with a seek works and the bytes are the H.264 convert.
	p := &stream.Player{HTTP: s.c}
	rep, err := p.Play(fmt.Sprintf("%s/stream/%d", s.url, id), []float64{0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := p.FetchRange(fmt.Sprintf("%s/stream/%d", s.url, id), 0, rep.Size-1)
	if err != nil {
		t.Fatal(err)
	}
	info, err := video.Probe(full)
	if err != nil {
		t.Fatal(err)
	}
	if info.Spec.Codec != video.H264 {
		t.Fatalf("streamed codec = %v", info.Spec.Codec)
	}
	// The upload's blocks live on VM-named datanodes.
	blocks, err := vc.HDFS().Client("").BlockLocations(fmt.Sprintf("/videocloud/videos/%d.vcf", id))
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range blocks[0].Locations {
		if !strings.HasPrefix(loc, "datanode") {
			t.Fatalf("block on %q", loc)
		}
	}
	// The serving-path instrumentation surfaces through Status: the search
	// and stream traffic just driven is visible per route.
	routes := map[string]bool{}
	for _, rs := range vc.Status().Routes {
		routes[rs.Route] = true
		switch rs.Route {
		case "search", "stream":
			if rs.Requests == 0 || rs.Latency.Count == 0 {
				t.Fatalf("route %s not instrumented: %+v", rs.Route, rs)
			}
		}
	}
	for _, want := range []string{"home", "search", "upload", "stream"} {
		if !routes[want] {
			t.Fatalf("Status.Routes missing %q", want)
		}
	}
}

func TestReindexMR(t *testing.T) {
	vc := boot(t, Config{})
	s := newSession(t, vc)
	_ = s
	for i := 0; i < 8; i++ {
		s.uploadDirect(vc, fmt.Sprintf("clip %d about topic%d", i, i%3), 10, uint64(i+1))
	}
	// Wipe the live index to prove the MR rebuild repopulates it.
	vc.Site().ReplaceIndex(search.NewIndex())
	if got := vc.Site().Index().Docs(); got != 0 {
		t.Fatalf("index not cleared: %d docs", got)
	}
	res, err := vc.ReindexMR()
	if err != nil {
		t.Fatal(err)
	}
	if vc.Site().Index().Docs() != 8 {
		t.Fatalf("reindex built %d docs", vc.Site().Index().Docs())
	}
	if res.Duration == 0 || len(res.MapTasks) == 0 {
		t.Fatalf("job stats = %+v", res)
	}
	// The segment persisted into HDFS.
	if _, err := vc.HDFS().Client("").Stat("/videocloud-index/segment"); err != nil {
		t.Fatalf("segment not stored: %v", err)
	}
	// Reindexing again (new generation) succeeds — periodic refresh.
	if _, err := vc.ReindexMR(); err != nil {
		t.Fatal(err)
	}
}

func TestKillDataVMRepairsAndServes(t *testing.T) {
	// A fourth data VM gives the NameNode somewhere to re-replicate.
	vc := boot(t, Config{DataVMs: 4})
	s := newSession(t, vc)
	id := s.uploadDirect(vc, "Survivor", 20, 9)
	repaired, err := vc.KillDataVM(0)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("nothing re-replicated")
	}
	// Playback still works.
	p := &stream.Player{HTTP: s.c}
	if _, err := p.Play(fmt.Sprintf("%s/stream/%d", s.url, id), []float64{0.3}, nil); err != nil {
		t.Fatalf("stream after data VM death: %v", err)
	}
	if _, err := vc.KillDataVM(99); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestMigrateWebVMWhileServing(t *testing.T) {
	vc := boot(t, Config{})
	s := newSession(t, vc)
	id := s.uploadDirect(vc, "Migrating soon", 20, 10)

	rec, _ := vc.Cloud().VM(vc.WebVMID())
	src := rec.HostName
	var dst string
	for _, h := range vc.Cloud().Hosts() {
		if h.Name != src && h.CanFit(rec.VM.Config) {
			dst = h.Name
			break
		}
	}
	if dst == "" {
		t.Fatal("no destination host")
	}
	rep, err := vc.MigrateWebVM(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatalf("migration failed: %s", rep.Reason)
	}
	if rec.HostName != dst {
		t.Fatalf("web VM on %s, want %s", rec.HostName, dst)
	}
	// The service keeps serving after migration.
	p := &stream.Player{HTTP: s.c}
	if _, err := p.Play(fmt.Sprintf("%s/stream/%d", s.url, id), nil, nil); err != nil {
		t.Fatalf("stream after migration: %v", err)
	}
	if rep.Downtime <= 0 {
		t.Fatal("no downtime recorded")
	}
}

func TestDataNodeRacksArePhysicalHosts(t *testing.T) {
	vc := boot(t, Config{})
	for _, id := range []int{0, 1, 2} {
		name := vc.DataVMNames()[id]
		rec, err := vc.Cloud().VM(vc.WebVMID())
		if err != nil {
			t.Fatal(err)
		}
		_ = rec
		rack := vc.HDFS().NameNode().Rack(name)
		if rack == "" || rack == "/default-rack" {
			t.Fatalf("datanode %s has rack %q", name, rack)
		}
	}
	// With anti-affine data VMs on distinct hosts, an RF>=2 block's
	// replicas live on VMs on different physical hosts.
	s := newSession(t, vc)
	id := s.uploadDirect(vc, "rack aware", 20, 42)
	blocks, err := vc.HDFS().Client("").BlockLocations(fmt.Sprintf("/videocloud/videos/%d.vcf", id))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		racks := map[string]bool{}
		for _, loc := range b.Locations {
			racks[vc.HDFS().NameNode().Rack(loc)] = true
		}
		if len(b.Locations) >= 2 && len(racks) < 2 {
			t.Fatalf("block %d replicas share a physical host: %v", b.ID, b.Locations)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	vc := boot(t, Config{PhysicalHosts: 6, DataVMs: 5, Replication: 3})
	st := vc.Status()
	if len(st.DataNodes) != 5 || st.Hosts != 6 {
		t.Fatalf("status = %+v", st)
	}
	if len(vc.DataVMNames()) != 5 {
		t.Fatalf("data VM names = %v", vc.DataVMNames())
	}
}

func TestBootFailsWhenCapacityInsufficient(t *testing.T) {
	// One tiny host cannot fit the group.
	_, err := New(Config{PhysicalHosts: 1, DataVMs: 8, HostCores: 2, HostMemoryBytes: 4 * gb})
	if err == nil {
		t.Fatal("impossible deployment booted")
	}
}
