// Elasticity wiring: the closed loop between the web tier's transcode load
// and the IaaS layer's VM fleet. The nebula.ElasticController watches queue
// depth + in-flight conversions (via Site.TranscodeLoad) and boots/retires
// "farmnode" VMs; each VM that reaches Running joins every frontend's
// conversion pool, and scale-down drains it — no new conversions, in-flight
// ones finish (bounded by the drain deadline, past which they are expelled
// and transparently retried on surviving nodes) — before the VM terminates.
// A nebula.Rebalancer keeps per-host load spread bounded with budgeted live
// migrations. Both freeze while failure detection/recovery is in progress.
package core

import (
	"fmt"
	"time"

	"videocloud/internal/nebula"
	"videocloud/internal/virt"
	"videocloud/internal/web"
)

// ElasticConfig tunes the elastic transcode fleet. Zero values select the
// documented defaults.
type ElasticConfig struct {
	// MinFarmVMs / MaxFarmVMs bound the elastic fleet on top of the static
	// data VMs (defaults 0 / 2×PhysicalHosts).
	MinFarmVMs, MaxFarmVMs int
	// InstanceCapacity is the transcode demand (queued + in-flight
	// conversions) one farm VM absorbs (default 2).
	InstanceCapacity float64
	// Interval is the control-loop tick in virtual time (default 500ms).
	Interval time.Duration
	// DrainDeadline bounds graceful scale-down; past it in-flight
	// conversions are expelled and retried elsewhere (default 30s virtual).
	DrainDeadline time.Duration
	// OutCooldown / InCooldown / GuardHold / MaxStep / HiLoad / LoLoad pass
	// through to nebula.ElasticOptions (see its docs for defaults).
	OutCooldown, InCooldown time.Duration
	GuardHold               time.Duration
	MaxStep                 int
	HiLoad, LoLoad          float64
	// RebalanceInterval enables the host-load rebalancer when positive.
	RebalanceInterval time.Duration
	// RebalanceSpread is the max−min host memory-fraction gap the
	// rebalancer tolerates (default 0.25); RebalanceBudget caps live
	// migrations per pass (default 2).
	RebalanceSpread float64
	RebalanceBudget int
}

// FarmVMPrefix names elastic transcode VMs (instances are farmnode-<id>).
const FarmVMPrefix = "farmnode"

// StartElastic arms the elasticity controller (and, if configured, the
// rebalancer). The control loop runs in virtual time: drive the cloud with
// RunFor. Call StopElastic (or Close) before WaitIdle.
func (vc *VideoCloud) StartElastic(cfg ElasticConfig) error {
	if vc.elastic != nil {
		return fmt.Errorf("core: elastic controller already started")
	}
	if cfg.MaxFarmVMs == 0 {
		cfg.MaxFarmVMs = 2 * vc.cfg.PhysicalHosts
	}
	if cfg.InstanceCapacity == 0 {
		cfg.InstanceCapacity = 2
	}
	if cfg.Interval == 0 {
		cfg.Interval = 500 * time.Millisecond
	}

	tpl := nebula.Template{
		Name: FarmVMPrefix, VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 20 * gb,
		Image: BaseImage, Workload: virt.UniformWriter{Rate: 4 << 20, Util: 0.6},
		Context: map[string]string{"ROLE": "farmnode"},
		// The controller owns replacement: a farm VM lost to a host crash
		// is not requeued by recovery — the next tick re-provisions
		// capacity if demand still warrants it.
		Requeue: false,
	}
	sites := vc.sites // immutable after New; hooks run under the cloud mutex
	ctrl, err := nebula.NewElasticController(vc.cloud, nebula.ElasticOptions{
		Template: tpl,
		Min:      cfg.MinFarmVMs, Max: cfg.MaxFarmVMs,
		InstanceCapacity: cfg.InstanceCapacity,
		// The static data VMs convert too; their capacity is the base the
		// fleet adds to, so an idle system scales to MinFarmVMs, not Max.
		BaseCapacity: cfg.InstanceCapacity * float64(len(vc.dataVMIDs)),
		HiLoad:       cfg.HiLoad, LoLoad: cfg.LoLoad,
		MaxStep:     cfg.MaxStep,
		OutCooldown: cfg.OutCooldown, InCooldown: cfg.InCooldown,
		GuardHold: cfg.GuardHold,
		Drain: nebula.DrainOptions{
			Deadline: cfg.DrainDeadline,
			InFlight: func(name string) int {
				n := 0
				for _, s := range sites {
					n += s.FarmNodeInFlight(name)
				}
				return n
			},
			OnDrain: func(name string) {
				for _, s := range sites {
					s.DrainFarmNode(name)
				}
			},
			OnExpire: func(name string) {
				for _, s := range sites {
					s.ExpelFarmNode(name)
				}
			},
		},
		Signal: func(time.Duration) float64 {
			load := 0
			for _, s := range sites {
				load += s.TranscodeLoad()
			}
			return float64(load)
		},
		OnReady: func(name string) {
			for _, s := range sites {
				s.AddFarmNode(name)
			}
		},
		OnRetire: func(name string) {
			for _, s := range sites {
				s.RemoveFarmNode(name)
			}
		},
	})
	if err != nil {
		return err
	}
	if err := ctrl.Start(cfg.Interval); err != nil {
		return err
	}
	vc.elastic = ctrl
	if cfg.RebalanceInterval > 0 {
		vc.rebalancer = nebula.NewRebalancer(vc.cloud, cfg.RebalanceSpread, cfg.RebalanceBudget)
		if cfg.GuardHold > 0 {
			vc.rebalancer.GuardHold = cfg.GuardHold
		}
		vc.rebalancer.Start(cfg.RebalanceInterval)
	}
	vc.reg.Counter("elastic_armed").Inc()
	return nil
}

// StopElastic halts the control loop and rebalancer (the fleet stays as it
// is; in-progress drains complete). Makes WaitIdle usable again. Idempotent.
func (vc *VideoCloud) StopElastic() {
	if vc.elastic != nil {
		vc.elastic.Stop()
		vc.elastic = nil
	}
	if vc.rebalancer != nil {
		vc.rebalancer.Stop()
		vc.rebalancer = nil
	}
}

// Elastic returns the running controller, nil while disarmed.
func (vc *VideoCloud) Elastic() *nebula.ElasticController { return vc.elastic }

// Rebalancer returns the running rebalancer, nil while disarmed.
func (vc *VideoCloud) Rebalancer() *nebula.Rebalancer { return vc.rebalancer }

// ElasticStatus summarises the elasticity subsystem for dashboards: the
// controller's fleet view, the signal it reads (queue depth + wait tail +
// per-node in-flight), drain outcomes, and rebalancer activity.
type ElasticStatus struct {
	// Enabled reports whether the controller is armed.
	Enabled bool
	// Controller snapshots fleet size, utilization, and decision counters.
	Controller nebula.ElasticStats
	// QueueDepth / WaitP99Seconds / ActiveConversions are the scaler's
	// input gauges, summed across frontends (the dashboard reads the same
	// numbers the controller does).
	QueueDepth        int
	WaitP99Seconds    float64
	ActiveConversions int
	// FarmNodes is the conversion pool's per-node in-flight/draining view,
	// aggregated across frontends.
	FarmNodes []web.FarmNodeStat
	// Drain outcome counters (orchestrator-wide, autoscaler included).
	DrainsStarted, DrainsCompleted, DrainsCancelled, DrainsExpired int64
	// Requeues counts conversions retried after a node expulsion.
	Requeues int64
	// Rebalancer activity and the current host-load spread (max−min
	// memory fraction over schedulable hosts).
	RebalancePasses, RebalanceMigrations, RebalanceSkipped int64
	HostLoadSpread                                         float64
}

// elasticStatus builds the Status().Elastic block.
func (vc *VideoCloud) elasticStatus() ElasticStatus {
	creg := vc.cloud.Metrics()
	st := ElasticStatus{
		Enabled:             vc.elastic != nil,
		DrainsStarted:       creg.Counter("drains_started").Value(),
		DrainsCompleted:     creg.Counter("drains_completed").Value(),
		DrainsCancelled:     creg.Counter("drains_cancelled").Value(),
		DrainsExpired:       creg.Counter("drain_deadline_expired").Value(),
		RebalancePasses:     creg.Counter("rebalance_passes").Value(),
		RebalanceMigrations: creg.Counter("rebalance_migrations").Value(),
		RebalanceSkipped:    creg.Counter("rebalance_skipped_guard").Value(),
	}
	if vc.elastic != nil {
		st.Controller = vc.elastic.Stats()
	}
	_, _, st.HostLoadSpread = vc.cloud.HostLoadSpread()

	// Aggregate the signal gauges across frontends the same way the
	// controller's hooks do.
	perNode := make(map[string]*web.FarmNodeStat)
	var order []string
	for _, s := range vc.sites {
		ts := s.TranscodeStats()
		st.QueueDepth += ts.QueueDepth
		st.ActiveConversions += ts.ActiveConversions
		st.Requeues += ts.Requeues
		if ts.WaitP99Seconds > st.WaitP99Seconds {
			st.WaitP99Seconds = ts.WaitP99Seconds
		}
		for _, row := range ts.Nodes {
			agg, ok := perNode[row.Node]
			if !ok {
				agg = &web.FarmNodeStat{Node: row.Node}
				perNode[row.Node] = agg
				order = append(order, row.Node)
			}
			agg.InFlight += row.InFlight
			agg.Draining = agg.Draining || row.Draining
		}
	}
	for _, name := range order {
		st.FarmNodes = append(st.FarmNodes, *perNode[name])
	}
	return st
}
