package core

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"videocloud/internal/hdfs"
	"videocloud/internal/trace"
)

// driveVirtual advances the cloud's virtual clock in small steps while
// yielding the wall clock, so the elastic control loop (virtual time) and the
// transcode pool (wall time) make progress together.
func driveVirtual(vc *VideoCloud, total, step time.Duration) {
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		vc.Cloud().RunFor(step)
		time.Sleep(200 * time.Microsecond)
	}
}

// driveUntil interleaves virtual steps and wall yields until cond holds.
func driveUntil(t *testing.T, vc *VideoCloud, wallBudget time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(wallBudget)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out driving until %s", what)
		}
		vc.Cloud().RunFor(250 * time.Millisecond)
		time.Sleep(200 * time.Microsecond)
	}
}

// TestElasticChaos is the tentpole's soak: a flash crowd of uploads lands
// while a physical host crashes mid-scale-out. The controller must absorb the
// spike (scale out), freeze while recovery is in progress (no crash-induced
// flapping), drain — not kill — on the way back down, and the rebalancer must
// spread load onto a fresh host afterwards. Not one accepted transcode may be
// lost, and the fleet must not thrash.
func TestElasticChaos(t *testing.T) {
	uploads, seconds := 20, 10
	if testing.Short() {
		uploads, seconds = 8, 6
	}
	vc := boot(t, Config{
		PhysicalHosts: 5, DataVMs: 3,
		TranscodeWorkers: 2, TranscodeQueueCap: uploads + 4,
		Trace: trace.Options{Enabled: true},
	})
	defer vc.Close()

	if err := vc.StartElastic(ElasticConfig{
		MinFarmVMs: 0, MaxFarmVMs: 4,
		InstanceCapacity:  2,
		Interval:          250 * time.Millisecond,
		OutCooldown:       time.Second,
		InCooldown:        5 * time.Second,
		GuardHold:         10 * time.Second,
		DrainDeadline:     20 * time.Second,
		MaxStep:           2,
		RebalanceInterval: time.Second,
		RebalanceSpread:   0.1,
		RebalanceBudget:   2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := vc.StartElastic(ElasticConfig{}); err == nil {
		t.Fatal("double StartElastic accepted")
	}
	vc.StartSelfHealing(hdfs.HealerConfig{Interval: 5 * time.Millisecond})
	defer vc.StopSelfHealing()

	// ---- flash crowd: a 10x upload burst hits the async intake ----
	s := newSession(t, vc)
	s.loginAdmin()
	var ids []int64
	for i := 0; i < uploads; i++ {
		ids = append(ids, s.uploadDirect(vc, fmt.Sprintf("flash clip %d", i), seconds, uint64(200+i)))
	}
	driveUntil(t, vc, 30*time.Second, "first elastic scale-out", func() bool {
		return vc.Cloud().Metrics().Counter("elastic_scale_out").Value() >= 1
	})

	// ---- chaos: crash a host mid-scale-out ----
	victim := "node5"
	for _, vm := range vc.Cloud().Snapshot() {
		if strings.HasPrefix(vm.Name, FarmVMPrefix) && vm.Host != "" {
			victim = vm.Host
			break
		}
	}
	if err := vc.Cloud().CrashHost(victim); err != nil {
		t.Fatal(err)
	}
	// Detection plus the GuardHold window: the controller must keep ticking
	// but freeze its decisions while recovery is in progress.
	driveVirtual(vc, 5*time.Second, 250*time.Millisecond)
	if got := vc.Cloud().Metrics().Counter("elastic_freezes").Value(); got == 0 {
		t.Fatal("controller never froze during host-failure recovery")
	}

	// ---- ride it out: burst converts, guard clears, fleet scales back ----
	driveUntil(t, vc, time.Minute, "transcode burst drained", func() bool {
		load := 0
		for _, site := range vc.Sites() {
			load += site.TranscodeLoad()
		}
		return load == 0
	})
	vc.DrainTranscodes()
	driveUntil(t, vc, time.Minute, "fleet drained back to Min", func() bool {
		st := vc.Elastic().Stats()
		return st.Instances == 0 && st.Draining == 0 && st.Booting == 0
	})

	// Zero lost, zero killed: every accepted upload is ready and streamable.
	ts := vc.Site().TranscodeStats()
	if ts.Failed != 0 || ts.Completed != int64(uploads) {
		t.Fatalf("transcode stats = %+v, want %d completed, 0 failed", ts, uploads)
	}
	for _, id := range ids {
		resp, err := s.c.Get(fmt.Sprintf("%s/stream/%d", s.url, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream %d after chaos: status %d", id, resp.StatusCode)
		}
	}

	st := vc.Status()
	if !st.Elastic.Enabled {
		t.Fatal("Status().Elastic not populated")
	}
	if st.Elastic.Controller.Thrash != 0 {
		t.Fatalf("fleet thrashed %d times", st.Elastic.Controller.Thrash)
	}
	if st.Elastic.Controller.ScaleOuts == 0 || st.Elastic.Controller.ScaleIns == 0 {
		t.Fatalf("elastic cycle incomplete: %+v", st.Elastic.Controller)
	}
	// At least one graceful scale-down drain must have run. The exact count
	// is load- and timing-dependent (the crash can consume a scaled-out
	// instance, which dies instead of draining); E16 gates the >=5 case
	// deterministically.
	if st.Elastic.DrainsStarted < 1 {
		t.Fatalf("drains started = %d, want >= 1 scale-down", st.Elastic.DrainsStarted)
	}
	if st.Elastic.DrainsCompleted+st.Elastic.DrainsExpired < st.Elastic.DrainsStarted {
		t.Fatalf("drain ledger does not balance: %+v", st.Elastic)
	}
	if st.Recovery.HostFailuresDetected < 1 {
		t.Fatalf("host crash never detected: %+v", st.Recovery)
	}
	// Every graceful retirement flushes a complete vm.drain trace episode
	// once the retired VM's shutdown epilog lands.
	driveUntil(t, vc, 30*time.Second, "vm.drain trace", func() bool {
		return findRootTrace(vc.Tracer(), "vm.drain") != nil
	})

	// ---- rebalance: a fresh host joins; load must spread onto it ----
	if _, err := vc.Cloud().AddHost("spare", 8, 1e9, 16*gb, 500*gb); err != nil {
		t.Fatal(err)
	}
	driveUntil(t, vc, 30*time.Second, "rebalance migration", func() bool {
		return vc.Cloud().Metrics().Counter("rebalance_migrations").Value() >= 1
	})
	// A completed migration flushes one vm.rebalance trace episode.
	driveUntil(t, vc, 30*time.Second, "vm.rebalance trace", func() bool {
		return findRootTrace(vc.Tracer(), "vm.rebalance") != nil
	})
	if sp := vc.Status().Elastic; sp.RebalanceMigrations < 1 {
		t.Fatalf("rebalance status = %+v", sp)
	}

	if vc.Site().Metrics().Counter("http_panics").Value() != 0 {
		t.Fatal("web tier panicked during elastic chaos")
	}
	vc.StopElastic()
	vc.StopElastic() // idempotent
}
