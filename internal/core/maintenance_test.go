package core

import (
	"fmt"
	"testing"

	"videocloud/internal/nebula"
	"videocloud/internal/stream"
)

func TestRollingMaintenanceKeepsServiceUp(t *testing.T) {
	// 5 hosts give headroom to evacuate any single host's VMs.
	vc := boot(t, Config{PhysicalHosts: 5, DataVMs: 3})
	s := newSession(t, vc)
	id := s.uploadDirect(vc, "Maintained", 20, 11)
	streamURL := fmt.Sprintf("%s/stream/%d", s.url, id)
	p := &stream.Player{HTTP: s.c}

	rep, err := vc.RollingMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HostsServiced) == 0 {
		t.Fatalf("no hosts serviced: %+v", rep)
	}
	if rep.Migrations == 0 {
		t.Fatal("no migrations performed")
	}
	// Every VM still runs, every host is back in service.
	for _, vm := range vc.Status().VMs {
		if vm.State != nebula.Running {
			t.Fatalf("%s state = %v after maintenance", vm.Name, vm.State)
		}
	}
	for _, h := range vc.Cloud().Hosts() {
		if h.Disabled() {
			t.Fatalf("%s left in maintenance", h.Name)
		}
	}
	// Playback still works.
	if _, err := p.Play(streamURL, []float64{0.5}, nil); err != nil {
		t.Fatalf("stream after maintenance: %v", err)
	}
	if vc.Metrics().Counter("maintenance_passes").Value() != 1 {
		t.Fatal("pass not counted")
	}
}

func TestRollingMaintenanceSkipsUnevacuatableHosts(t *testing.T) {
	// Default 4 hosts with 3 anti-affine data VMs + 2 service VMs:
	// evacuating a data VM's host may have nowhere anti-affine to go, so
	// that host gets skipped, not broken.
	vc := boot(t, Config{})
	before := vc.Status()
	rep, err := vc.RollingMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	after := vc.Status()
	if len(before.VMs) != len(after.VMs) {
		t.Fatal("VM count changed")
	}
	for _, vm := range after.VMs {
		if vm.State != nebula.Running {
			t.Fatalf("%s state = %v", vm.Name, vm.State)
		}
	}
	// Whatever happened, no host may stay disabled.
	for _, h := range vc.Cloud().Hosts() {
		if h.Disabled() {
			t.Fatalf("%s left disabled (report %+v)", h.Name, rep)
		}
	}
}
