package edge

import (
	"runtime"
	"testing"
)

// Allocation regression gate for the edge-cache hit path (make tier1 runs
// this via the alloccheck target). The invariant matches the PR 6 streaming
// gate: a warm segment hit — sketch update, LRU touch, and resolving the
// bytes to response slices — performs no allocation, so serving a popular
// segment to a million viewers costs zero GC pressure beyond the one cached
// copy.
func TestAllocWarmEdgeHitZeroCopy(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	c := New(Config{CapacityBytes: 1 << 20})
	seg := make([]byte, 256<<10)
	if _, _, err := c.GetOrFill("segment/1-720p-0.vcf", 0, func() ([]byte, error) {
		return seg, nil
	}); err != nil {
		t.Fatal(err)
	}
	content := NewContent(nil)
	var slices [][]byte
	hit := func() {
		data, ok := c.Get("segment/1-720p-0.vcf")
		if !ok {
			t.Fatal("warm entry missed")
		}
		content.Reset(data)
		var err error
		slices, err = content.AppendRangeSlices(slices[:0], 0, content.Size())
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ { // warm up: grow the slice header once
		hit()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const iters = 512
	for i := 0; i < iters; i++ {
		hit()
	}
	runtime.ReadMemStats(&after)
	perOp := int64(after.TotalAlloc-before.TotalAlloc) / iters
	if perOp > 0 {
		t.Fatalf("warm edge hit allocates %d B/op; want 0", perOp)
	}
}
