package edge

import (
	"fmt"
	"io"
)

// Content adapts a cached blob to the serving interfaces the streaming path
// expects: io.ReadSeeker for the generic fallback and the slice-append
// contract for the zero-copy vectored-write path (it satisfies
// stream.SliceRanger without importing stream). A warm edge hit therefore
// writes cache memory straight to the socket, exactly like an origin block
// hit does. Reset lets a handler reuse one Content per request without
// allocating.
type Content struct {
	data []byte
	pos  int64
}

// NewContent wraps cached bytes.
func NewContent(data []byte) *Content { return &Content{data: data} }

// Reset re-points the adapter at new bytes and rewinds it.
func (c *Content) Reset(data []byte) {
	c.data = data
	c.pos = 0
}

// Size reports the blob length.
func (c *Content) Size() int64 { return int64(len(c.data)) }

// AppendRangeSlices appends a view of [off, off+length) (clamped to EOF)
// to dst — a single slice, since cached objects are contiguous.
func (c *Content) AppendRangeSlices(dst [][]byte, off, length int64) ([][]byte, error) {
	size := int64(len(c.data))
	if off < 0 || length < 0 || off > size {
		return dst, fmt.Errorf("edge: range [%d,+%d) out of [0,%d)", off, length, size)
	}
	end := off + length
	if end > size {
		end = size
	}
	if off == end {
		return dst, nil
	}
	return append(dst, c.data[off:end]), nil
}

func (c *Content) Read(p []byte) (int, error) {
	if c.pos >= int64(len(c.data)) {
		return 0, io.EOF
	}
	n := copy(p, c.data[c.pos:])
	c.pos += int64(n)
	return n, nil
}

func (c *Content) Seek(off int64, whence int) (int64, error) {
	var pos int64
	switch whence {
	case io.SeekStart:
		pos = off
	case io.SeekCurrent:
		pos = c.pos + off
	case io.SeekEnd:
		pos = int64(len(c.data)) + off
	default:
		return 0, fmt.Errorf("edge: bad whence %d", whence)
	}
	if pos < 0 {
		return 0, fmt.Errorf("edge: negative seek %d", pos)
	}
	c.pos = pos
	return pos, nil
}
