// Package edge is the per-frontend edge cache of the delivery tier: a
// size-bounded in-memory cache for playlists and media segments, so that
// under fan-out the many viewers of a popular title are served from frontend
// memory and origin HDFS sees roughly one read per object instead of one
// per viewer.
//
// Admission is popularity-based (TinyLFU): every request feeds a count-min
// frequency sketch, and when the cache is full a new object only displaces
// the LRU victim if the sketch says it is at least as hot — one-hit wonders
// at the Zipf tail cannot wash the working set out of the cache. Concurrent
// misses on one key are collapsed to a single origin fill (single-flight),
// so a flash crowd arriving at an uncached object costs one HDFS read, not
// thousands. Entries may carry a TTL for live-edge objects (a live channel's
// playlist changes as segments are published); entries without a TTL are
// immutable, which published VOD segments are by construction.
package edge

import (
	"sync"
	"time"
)

// Source says how GetOrFill satisfied a request.
type Source int

const (
	// SourceHit: served from cache memory.
	SourceHit Source = iota
	// SourceFill: this call went to origin and (maybe) populated the cache.
	SourceFill
	// SourceJoin: another in-flight fill for the same key was joined.
	SourceJoin
)

func (s Source) String() string {
	switch s {
	case SourceHit:
		return "hit"
	case SourceFill:
		return "fill"
	case SourceJoin:
		return "join"
	}
	return "unknown"
}

// Config sizes a Cache.
type Config struct {
	// CapacityBytes bounds resident cached bytes (keys and bookkeeping are
	// not counted; entries dominate).
	CapacityBytes int64
	// SketchCounters sizes the frequency sketch (default CapacityBytes/4096,
	// minimum 1024 — roughly one counter per cacheable object).
	SketchCounters int
	// Now is a clock hook for TTL tests; defaults to time.Now.
	Now func() time.Time
}

// Stats is a point-in-time snapshot of cache behaviour.
type Stats struct {
	Hits, Misses, Joins  uint64
	Fills                uint64 // origin reads that completed
	Evictions            uint64 // entries displaced for space
	Expirations          uint64 // TTL entries that lapsed
	AdmitRejects         uint64 // candidates colder than the LRU victim
	Entries              int
	UsedBytes, CapBytes  int64
}

// entry is one cached object on the intrusive LRU list.
type entry struct {
	key        string
	data       []byte
	expire     time.Time // zero: immutable, never expires
	prev, next *entry
}

// flight is one in-progress origin fill that later arrivals join.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// Cache is a size-bounded, popularity-admission, single-flight cache.
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int64
	used    int64
	entries map[string]*entry
	head    entry // sentinel: head.next is MRU, head.prev is LRU
	sketch  *cmSketch
	flights map[string]*flight
	now     func() time.Time
	stats   Stats
}

// New builds a cache; a non-positive capacity yields a cache that admits
// nothing (every request fills from origin), which keeps callers branchless.
func New(cfg Config) *Cache {
	counters := cfg.SketchCounters
	if counters <= 0 {
		counters = int(cfg.CapacityBytes / 4096)
	}
	c := &Cache{
		cap:     cfg.CapacityBytes,
		entries: make(map[string]*entry),
		sketch:  newSketch(counters),
		flights: make(map[string]*flight),
		now:     cfg.Now,
	}
	if c.now == nil {
		c.now = time.Now
	}
	c.head.next = &c.head
	c.head.prev = &c.head
	return c
}

// Get returns the cached bytes for key, if resident and fresh. The returned
// slice is shared cache memory: callers must treat it as read-only. The warm
// path performs no allocations.
func (c *Cache) Get(key string) ([]byte, bool) {
	h := hashKey(key)
	c.mu.Lock()
	c.sketch.increment(h)
	e, ok := c.entries[key]
	if ok && c.expired(e) {
		c.removeLocked(e)
		c.stats.Expirations++
		ok = false
	}
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false
	}
	c.moveFrontLocked(e)
	c.stats.Hits++
	data := e.data
	c.mu.Unlock()
	return data, true
}

// GetOrFill returns the bytes for key, going to origin via fill on a miss.
// Concurrent misses on one key share a single fill. ttl > 0 marks the entry
// as expiring (live-edge objects); ttl == 0 marks it immutable. The returned
// Source says which path served this call. Like Get, the returned bytes are
// shared and read-only.
func (c *Cache) GetOrFill(key string, ttl time.Duration, fill func() ([]byte, error)) ([]byte, Source, error) {
	h := hashKey(key)
	c.mu.Lock()
	c.sketch.increment(h)
	if e, ok := c.entries[key]; ok {
		if !c.expired(e) {
			c.moveFrontLocked(e)
			c.stats.Hits++
			data := e.data
			c.mu.Unlock()
			return data, SourceHit, nil
		}
		c.removeLocked(e)
		c.stats.Expirations++
	}
	if f, ok := c.flights[key]; ok {
		c.stats.Joins++
		c.mu.Unlock()
		<-f.done
		return f.data, SourceJoin, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	f.data, f.err = fill()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.stats.Fills++
		c.admitLocked(key, h, f.data, ttl)
	}
	c.mu.Unlock()
	close(f.done)
	return f.data, SourceFill, f.err
}

// Invalidate drops key if resident (used when a cached object is replaced
// out of band; the normal live path relies on TTL instead).
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
	}
	c.mu.Unlock()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	s.Entries = len(c.entries)
	s.UsedBytes = c.used
	s.CapBytes = c.cap
	c.mu.Unlock()
	return s
}

func (c *Cache) expired(e *entry) bool {
	return !e.expire.IsZero() && !c.now().Before(e.expire)
}

// admitLocked decides whether the filled object earns cache residency.
// With free space it always enters (a fill already cost an origin read;
// caching it is free offload). Under pressure, TinyLFU arbitration: the
// candidate must be at least as hot as each LRU victim it displaces.
func (c *Cache) admitLocked(key string, h uint64, data []byte, ttl time.Duration) {
	size := int64(len(data))
	if size == 0 || size > c.cap {
		return
	}
	for c.used+size > c.cap {
		victim := c.head.prev
		if c.expired(victim) {
			c.removeLocked(victim)
			c.stats.Expirations++
			continue
		}
		if c.sketch.estimate(h) < c.sketch.estimate(hashKey(victim.key)) {
			c.stats.AdmitRejects++
			return
		}
		c.removeLocked(victim)
		c.stats.Evictions++
	}
	e := &entry{key: key, data: data}
	if ttl > 0 {
		e.expire = c.now().Add(ttl)
	}
	c.entries[key] = e
	c.used += size
	c.pushFrontLocked(e)
}

func (c *Cache) removeLocked(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	delete(c.entries, e.key)
	c.used -= int64(len(e.data))
}

func (c *Cache) pushFrontLocked(e *entry) {
	e.next = c.head.next
	e.prev = &c.head
	e.next.prev = e
	c.head.next = e
}

func (c *Cache) moveFrontLocked(e *entry) {
	if c.head.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	c.pushFrontLocked(e)
}
