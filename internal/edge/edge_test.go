package edge

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fillWith(data []byte) func() ([]byte, error) {
	return func() ([]byte, error) { return data, nil }
}

func TestGetOrFillCachesAndHits(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	data, src, err := c.GetOrFill("a", 0, fillWith(make([]byte, 100)))
	if err != nil || src != SourceFill || len(data) != 100 {
		t.Fatalf("first access: src=%v err=%v len=%d", src, err, len(data))
	}
	data, src, err = c.GetOrFill("a", 0, func() ([]byte, error) {
		t.Fatal("second access went to origin")
		return nil, nil
	})
	if err != nil || src != SourceHit || len(data) != 100 {
		t.Fatalf("second access: src=%v err=%v len=%d", src, err, len(data))
	}
	if got, ok := c.Get("a"); !ok || len(got) != 100 {
		t.Fatalf("Get after fill: ok=%v len=%d", ok, len(got))
	}
	s := c.Stats()
	if s.Fills != 1 || s.Hits != 2 || s.UsedBytes != 100 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFillErrorNotCached(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	boom := fmt.Errorf("origin down")
	if _, _, err := c.GetOrFill("a", 0, func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want origin error", err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("failed fill left an entry behind")
	}
}

func TestSingleFlightCollapsesConcurrentMisses(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	var fills atomic.Int64
	gate := make(chan struct{})
	const viewers = 32
	var wg sync.WaitGroup
	srcs := make([]Source, viewers)
	for i := 0; i < viewers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, src, err := c.GetOrFill("hot", 0, func() ([]byte, error) {
				fills.Add(1)
				<-gate // hold every concurrent miss open
				return make([]byte, 64), nil
			})
			if err != nil {
				t.Error(err)
			}
			srcs[i] = src
		}(i)
	}
	// Wait until the one fill is in flight, then give stragglers a moment
	// to pile up before releasing it.
	for fills.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()
	if fills.Load() != 1 {
		t.Fatalf("%d origin fills for one key, want 1", fills.Load())
	}
	nFill := 0
	for _, s := range srcs {
		if s == SourceFill {
			nFill++
		}
	}
	if nFill != 1 {
		t.Fatalf("%d callers report SourceFill, want 1", nFill)
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := time.Unix(0, 0)
	c := New(Config{CapacityBytes: 1 << 20, Now: func() time.Time { return clock }})
	c.GetOrFill("live", 50*time.Millisecond, fillWith(make([]byte, 10)))
	if _, ok := c.Get("live"); !ok {
		t.Fatal("fresh TTL entry missing")
	}
	clock = clock.Add(49 * time.Millisecond)
	if _, ok := c.Get("live"); !ok {
		t.Fatal("entry expired early")
	}
	clock = clock.Add(2 * time.Millisecond)
	if _, ok := c.Get("live"); ok {
		t.Fatal("entry served past its TTL")
	}
	var refilled bool
	_, src, _ := c.GetOrFill("live", 50*time.Millisecond, func() ([]byte, error) {
		refilled = true
		return make([]byte, 10), nil
	})
	if !refilled || src != SourceFill {
		t.Fatalf("stale entry not refilled: src=%v", src)
	}
	if c.Stats().Expirations == 0 {
		t.Fatal("no expirations counted")
	}
}

func TestEvictionIsLRUUnderPressure(t *testing.T) {
	// Room for exactly two 100-byte objects.
	c := New(Config{CapacityBytes: 200})
	c.GetOrFill("a", 0, fillWith(make([]byte, 100)))
	c.GetOrFill("b", 0, fillWith(make([]byte, 100)))
	// Touch "a" so "b" is the LRU victim; then make "c" hotter than "b".
	c.Get("a")
	for i := 0; i < 3; i++ {
		c.GetOrFill("c", 0, fillWith(make([]byte, 100)))
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU victim survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("hot candidate was not admitted")
	}
}

func TestColdCandidateRejectedByTinyLFU(t *testing.T) {
	c := New(Config{CapacityBytes: 200})
	// Make "a" and "b" hot via repeated requests.
	for i := 0; i < 10; i++ {
		c.GetOrFill("a", 0, fillWith(make([]byte, 100)))
		c.GetOrFill("b", 0, fillWith(make([]byte, 100)))
	}
	// A one-hit wonder must not displace them.
	if _, src, _ := c.GetOrFill("cold", 0, fillWith(make([]byte, 100))); src != SourceFill {
		t.Fatalf("cold miss src=%v", src)
	}
	if _, ok := c.Get("cold"); ok {
		t.Fatal("one-hit wonder displaced the working set")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("hot entry evicted by a cold candidate")
	}
	if c.Stats().AdmitRejects == 0 {
		t.Fatal("no admission rejects counted")
	}
}

func TestOversizeObjectBypassesCache(t *testing.T) {
	c := New(Config{CapacityBytes: 100})
	data, src, err := c.GetOrFill("big", 0, fillWith(make([]byte, 1000)))
	if err != nil || src != SourceFill || len(data) != 1000 {
		t.Fatalf("oversize fill: src=%v err=%v", src, err)
	}
	if s := c.Stats(); s.Entries != 0 || s.UsedBytes != 0 {
		t.Fatalf("oversize object was admitted: %+v", s)
	}
}

func TestZeroCapacityCacheStillServes(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 3; i++ {
		data, src, err := c.GetOrFill("a", 0, fillWith(make([]byte, 10)))
		if err != nil || src != SourceFill || len(data) != 10 {
			t.Fatalf("access %d: src=%v err=%v", i, src, err)
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	c.GetOrFill("a", 0, fillWith(make([]byte, 10)))
	c.Invalidate("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Invalidate")
	}
}

func TestSketchAging(t *testing.T) {
	s := newSketch(1024)
	h := hashKey("k")
	for i := 0; i < 100; i++ {
		s.increment(h)
	}
	if got := s.estimate(h); got != 15 {
		t.Fatalf("estimate after 100 increments = %d, want saturation at 15", got)
	}
	s.age()
	if got := s.estimate(h); got != 7 {
		t.Fatalf("estimate after aging = %d, want 7", got)
	}
}

func TestContentRangeSlices(t *testing.T) {
	data := []byte("0123456789")
	c := NewContent(data)
	if c.Size() != 10 {
		t.Fatalf("Size = %d", c.Size())
	}
	dst, err := c.AppendRangeSlices(nil, 2, 5)
	if err != nil || len(dst) != 1 || string(dst[0]) != "23456" {
		t.Fatalf("interior: %q, %v", dst, err)
	}
	dst, err = c.AppendRangeSlices(dst[:0], 8, 100)
	if err != nil || len(dst) != 1 || string(dst[0]) != "89" {
		t.Fatalf("clamped: %q, %v", dst, err)
	}
	if _, err = c.AppendRangeSlices(nil, 11, 1); err == nil {
		t.Fatal("offset past EOF accepted")
	}
	buf := make([]byte, 4)
	n, _ := c.Read(buf)
	if n != 4 || string(buf) != "0123" {
		t.Fatalf("Read: %d %q", n, buf)
	}
	if pos, _ := c.Seek(-2, 2); pos != 8 {
		t.Fatalf("SeekEnd: %d", pos)
	}
	c.Reset([]byte("ab"))
	if c.Size() != 2 {
		t.Fatal("Reset did not swap data")
	}
}
