//go:build !race

package edge

// raceEnabled reports whether the race detector is compiled in; allocation
// regression tests skip under -race because instrumentation inflates
// allocation counts.
const raceEnabled = false
