package edge

// cmSketch is a TinyLFU-style count-min sketch: a tiny, fixed-size frequency
// estimator over the full request stream, so admission can compare how hot a
// candidate object is against the eviction victim without keeping per-object
// state for the whole catalog. Counters are 4 bits (two per byte) across
// four rows; estimates take the minimum across rows. After a sample window
// of increments every counter is halved, so the sketch tracks recent
// popularity rather than all-time counts.
type cmSketch struct {
	rows    [sketchDepth][]byte
	mask    uint64
	samples int
	window  int
}

const sketchDepth = 4

// newSketch sizes the sketch for roughly `counters` tracked slots per row
// (rounded up to a power of two, minimum 1024).
func newSketch(counters int) *cmSketch {
	width := 1024
	for width < counters {
		width *= 2
	}
	s := &cmSketch{mask: uint64(width - 1), window: width * 8}
	for i := range s.rows {
		s.rows[i] = make([]byte, width/2)
	}
	return s
}

// hashKey is FNV-1a over the key string, inlined so the hot path never
// allocates a hash.Hash or a []byte conversion.
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// rowIndex derives row i's slot from one 64-bit hash by double hashing.
func (s *cmSketch) rowIndex(h uint64, i int) uint64 {
	h2 := (h >> 32) | 1
	return (h + uint64(i)*h2) & s.mask
}

func (s *cmSketch) get(row int, idx uint64) byte {
	return (s.rows[row][idx/2] >> (4 * (idx & 1))) & 0x0f
}

func (s *cmSketch) set(row int, idx uint64, v byte) {
	shift := 4 * (idx & 1)
	b := s.rows[row][idx/2]
	s.rows[row][idx/2] = (b &^ (0x0f << shift)) | (v << shift)
}

// increment bumps the key's counters (saturating at 15) and ages the sketch
// when the sample window closes.
func (s *cmSketch) increment(h uint64) {
	for i := 0; i < sketchDepth; i++ {
		idx := s.rowIndex(h, i)
		if v := s.get(i, idx); v < 15 {
			s.set(i, idx, v+1)
		}
	}
	if s.samples++; s.samples >= s.window {
		s.age()
	}
}

// estimate is the count-min estimate for the key.
func (s *cmSketch) estimate(h uint64) byte {
	est := byte(15)
	for i := 0; i < sketchDepth; i++ {
		if v := s.get(i, s.rowIndex(h, i)); v < est {
			est = v
		}
	}
	return est
}

// age halves every counter so old popularity decays.
func (s *cmSketch) age() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			// Halve both nibbles in place.
			row[j] = (row[j] >> 1) & 0x77
		}
	}
	s.samples = 0
}
