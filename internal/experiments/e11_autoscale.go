package experiments

import (
	"fmt"
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/nebula"
	"videocloud/internal/virt"
	"videocloud/internal/workload"
)

// E11AutoScaling plays out a full virtual day of video-on-demand load
// against an auto-scaled streaming fleet — the elasticity the paper's
// conclusion promises and its reference [28] (cloud bandwidth auto-scaling
// for VoD) formalizes. Offered demand follows a diurnal wave (trough 2,
// peak 16 concurrent-stream units at 21:00); each streaming VM absorbs 2
// units; the scaler evaluates every 5 virtual minutes.
//
// Expected shape: the fleet tracks the wave (small overnight, largest
// around the evening peak), per-instance utilization stays inside the
// scaler's band for the vast majority of samples after warm-up, and the
// fleet returns to the floor after the peak.
func E11AutoScaling() *metrics.Table {
	t := metrics.NewTable("E11 — auto-scaled streaming fleet over a VoD day",
		"window", "avg_load", "avg_fleet", "max_fleet", "util_in_band_pct")
	cloud := nebula.New(nebula.Options{})
	for i := 0; i < 12; i++ {
		if _, err := cloud.AddHost(fmt.Sprintf("node%d", i), 16, 1e9, 32*gb, 1000*gb); err != nil {
			panic(err)
		}
	}
	if _, err := cloud.Catalog().Register("streamer-image", 2*gb, 11); err != nil {
		panic(err)
	}
	demand := workload.Diurnal{Base: 2, PeakFactor: 8, PeakHour: 21}
	scaler := nebula.NewAutoScaler(cloud, nebula.Template{
		Name: "streamer", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
		Image: "streamer-image", Workload: &virt.StreamingServer{StreamRate: 8 << 20},
	}, 1, 10)
	scaler.InstanceCapacity = 2
	scaler.Metric = demand.Rate
	if err := scaler.Start(5 * time.Minute); err != nil {
		panic(err)
	}
	cloud.RunFor(24 * time.Hour)
	scaler.Stop()
	cloud.WaitIdle()

	hist := scaler.History()
	check(len(hist) > 200, "E11: only %d samples", len(hist))

	type window struct {
		name     string
		from, to time.Duration
	}
	// The sinusoid peaks at 21:00, so its trough is 09:00.
	windows := []window{
		{"trough 07-11h", 7 * time.Hour, 11 * time.Hour},
		{"shoulder 13-17h", 13 * time.Hour, 17 * time.Hour},
		{"peak 19-23h", 19 * time.Hour, 23 * time.Hour},
	}
	fleetAvg := map[string]float64{}
	for _, w := range windows {
		var loadSum, fleetSum float64
		maxFleet, n, inBand := 0, 0, 0
		for _, s := range hist {
			if s.At < w.from || s.At >= w.to {
				continue
			}
			n++
			loadSum += s.Load
			fleetSum += float64(s.Instances)
			if s.Instances > maxFleet {
				maxFleet = s.Instances
			}
			// The band extends one instance of slack below LoLoad:
			// the discrete fleet cannot sit exactly on the threshold.
			if s.Util <= scaler.HiLoad && s.Util >= scaler.LoLoad*0.5 {
				inBand++
			}
		}
		check(n > 0, "E11: window %q empty", w.name)
		bandPct := 100 * float64(inBand) / float64(n)
		t.AddRow(w.name, loadSum/float64(n), fleetSum/float64(n), maxFleet, bandPct)
		fleetAvg[w.name] = fleetSum / float64(n)
		check(bandPct > 60, "E11: %q utilization in band only %.0f%%", w.name, bandPct)
	}
	check(fleetAvg["peak 19-23h"] > 2*fleetAvg["trough 07-11h"],
		"E11: fleet does not track the wave (peak %.1f vs trough %.1f)",
		fleetAvg["peak 19-23h"], fleetAvg["trough 07-11h"])
	return t
}
