package experiments

import (
	"bytes"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strconv"
	"strings"
	"time"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/metrics"
	"videocloud/internal/stream"
	"videocloud/internal/trace"
	"videocloud/internal/video"
	"videocloud/internal/web"
)

// E13CriticalPath dissects one traced upload and one traced playback with
// the distributed tracer: every request is sampled, the critical-path
// extractor walks the stored trace, and the table shows where the request's
// wall time actually went, layer by layer. Expected shape: both requests
// yield complete traces whose child spans account for ≥95% of the root's
// window (the instrumentation leaves no large blind spots), with conversion
// (farm) dominating the upload and serving/storage dominating playback.
func E13CriticalPath() *metrics.Table {
	t := metrics.NewTable("E13 — traced request anatomy: per-layer critical path",
		"phase", "layer", "self_ms", "share_pct")
	tracer := trace.New(trace.Options{Enabled: true})
	cluster := hdfs.NewCluster(4, 256*1024)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	site, err := web.New(web.Config{
		Store:      mount,
		Farm:       video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target:     video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 500_000},
		Renditions: []video.Spec{{Codec: video.H264, Res: video.R360p, FPS: 30, GOPSeconds: 2, BitrateBps: 250_000}},
		Tracer:     tracer,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	c, srv := browserFor(site)
	defer srv.Close()

	resp := mustPost(c, srv.URL+"/register", map[string][]string{
		"username": {"tracy"}, "password": {"pw"}, "email": {"t@x"},
	})
	link := resp.Header.Get("X-Verification-Link")
	check(link != "", "E13: no verification link")
	code, _ := mustGet(c, srv.URL+link)
	check(code == 200, "E13: verify failed (%d)", code)
	resp = mustPost(c, srv.URL+"/login", map[string][]string{"username": {"tracy"}, "password": {"pw"}})
	check(resp.StatusCode == 200, "E13: login failed")

	// One traced upload over HTTP (the middleware's root span wraps the
	// inline conversion, storage, and publish).
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 300_000}
	data, gerr := video.Generate(src, 120, 2013)
	check(gerr == nil, "E13: generate: %v", gerr)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("title", "Traced upload")
	mw.WriteField("description", "critical path fixture")
	fw, _ := mw.CreateFormFile("video", "clip.avi")
	fw.Write(data)
	mw.Close()
	req, _ := http.NewRequest("POST", srv.URL+"/upload", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	uresp, uerr := c.Do(req)
	check(uerr == nil, "E13: upload: %v", uerr)
	io.Copy(io.Discard, uresp.Body)
	uresp.Body.Close()
	check(uresp.StatusCode == 200, "E13: upload status %d", uresp.StatusCode)
	loc := uresp.Request.URL.Path
	check(strings.HasPrefix(loc, "/watch/"), "E13: upload landed on %s", loc)
	videoID, _ := strconv.ParseInt(strings.TrimPrefix(loc, "/watch/"), 10, 64)

	up := waitForRoot(tracer, "web.upload")
	us := trace.Summarize(up)
	check(us.Coverage >= 0.95,
		"E13: upload critical path attributes only %.1f%% to child layers", 100*us.Coverage)
	addPathRows(t, "upload", us)

	// One traced playback with a time-bar seek. The player issues several
	// range requests; the headline breakdown is the largest one (the bulk
	// transfer), not a header probe.
	p := &stream.Player{HTTP: c}
	_, perr := p.Play(fmt.Sprintf("%s/stream/%d", srv.URL, videoID), []float64{0.5}, nil)
	check(perr == nil, "E13: playback: %v", perr)
	pb := largestRoot(tracer, "web.stream")
	ps := trace.Summarize(pb)
	check(ps.Coverage >= 0.95,
		"E13: playback critical path attributes only %.1f%% to child layers", 100*ps.Coverage)
	addPathRows(t, "playback", ps)

	// The Chrome export of both traces must be valid JSON (loadable in
	// chrome://tracing); ExportChrome validates by re-parsing.
	if _, eerr := trace.ExportChrome([]*trace.Trace{up, pb}); eerr != nil {
		panic(fmt.Sprintf("experiments: E13 chrome export: %v", eerr))
	}
	return t
}

// waitForRoot polls the tracer's rings for a completed trace by root name —
// async children (readahead prefetches) can hold the flush briefly past the
// HTTP response.
func waitForRoot(tracer *trace.Tracer, root string) *trace.Trace {
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, tr := range append(tracer.Retained(), tracer.Traces()...) {
			if tr.Root == root {
				return tr
			}
		}
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("experiments: E13: no completed %s trace (stats %+v)", root, tracer.Stats()))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// largestRoot waits for every in-flight trace to flush (background
// prefetches hold traces open briefly past the HTTP response), then returns
// the longest completed trace with the given root name.
func largestRoot(tracer *trace.Tracer, root string) *trace.Trace {
	deadline := time.Now().Add(5 * time.Second)
	for tracer.Stats().ActiveTraces > 0 {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("experiments: E13: traces still open (stats %+v)", tracer.Stats()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	var best *trace.Trace
	for _, tr := range append(tracer.Retained(), tracer.Traces()...) {
		if tr.Root == root && (best == nil || tr.Duration > best.Duration) {
			best = tr
		}
	}
	if best == nil {
		panic(fmt.Sprintf("experiments: E13: no completed %s trace (stats %+v)", root, tracer.Stats()))
	}
	return best
}

// addPathRows renders one phase's per-layer attribution, largest share
// first, with the coverage row last.
func addPathRows(t *metrics.Table, phase string, s trace.PathSummary) {
	for _, lt := range s.Layers {
		t.AddRow(phase, lt.Layer, ms(lt.Time), 100*float64(lt.Time)/float64(s.Total))
	}
	t.AddRow(phase, "= coverage", ms(s.Total), 100*s.Coverage)
}
