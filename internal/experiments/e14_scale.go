package experiments

import (
	"context"
	"fmt"
	"net/http"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/ingress"
	"videocloud/internal/metrics"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
	"videocloud/internal/web"
	"videocloud/internal/workload"
)

// scaleShards is the metadata shard count every E14 fleet uses.
const scaleShards = 4

// scaleStreamRate caps each frontend's streaming egress (the per-web-VM NIC
// model): scaling the fleet is what raises aggregate serving capacity,
// exactly the axis E14 measures.
const scaleStreamRate = int64(4 << 20) // 4 MiB/s per frontend

// scaleFleet is one assembled serving tier at a given frontend count.
type scaleFleet struct {
	sites []*web.Site
	srv   *localServer
	ids   []int64
	reg   *metrics.Registry // fleet registry: shard latency + ingress counters
}

func (f *scaleFleet) close() {
	f.srv.close()
	for _, s := range f.sites {
		s.Close()
	}
}

// newScaleFleet builds frontends web replicas over one 4-shard metadata
// store and one HDFS-backed mount, behind an ingress balancer (none for a
// single frontend), seeds the catalog, and serves it on a loopback listener.
func newScaleFleet(frontends, catalog int) *scaleFleet {
	f := &scaleFleet{reg: metrics.NewRegistry()}
	cluster := hdfs.NewCluster(4, 1<<20)
	cluster.SetBlockCacheCapacity(64 << 20)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		panic(err)
	}
	sdb := videodb.NewSharded(scaleShards)
	sdb.SetMetrics(f.reg)
	cfg := web.Config{
		Store:                 mount,
		DB:                    sdb,
		Farm:                  video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target:                video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000},
		StreamRateBytesPerSec: scaleStreamRate,
	}
	primary, err := web.New(cfg)
	if err != nil {
		panic(err)
	}
	f.sites = []*web.Site{primary}
	for i := 1; i < frontends; i++ {
		rep, rerr := web.NewReplica(cfg, primary)
		if rerr != nil {
			panic(rerr)
		}
		f.sites = append(f.sites, rep)
	}

	// Seed the catalog as the admin (user id 1); the transcoded target is
	// ~750 KB per title, enough for four 128 KiB Range windows per view.
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000}
	for i := 0; i < catalog; i++ {
		data, gerr := video.Generate(src, 30, uint64(i+1))
		if gerr != nil {
			panic(gerr)
		}
		id, uerr := primary.ProcessUpload(context.Background(), 1,
			fmt.Sprintf("scale video %d", i), "seeded for the scale test", data)
		if uerr != nil {
			panic(uerr)
		}
		f.ids = append(f.ids, id)
	}

	var h http.Handler = primary
	if frontends > 1 {
		backends := make([]http.Handler, len(f.sites))
		for i, s := range f.sites {
			backends[i] = s
		}
		lb := ingress.New(backends...)
		lb.SetMetrics(f.reg)
		h = lb
	}
	f.srv = newLocalServer(h)
	return f
}

// counterSum totals one cache counter across every replica's registry.
func (f *scaleFleet) counterSum(name string) int64 {
	var total int64
	for _, s := range f.sites {
		total += s.Metrics().Counter(name).Value()
	}
	return total
}

// ScaleRow is one fleet size's measurement (exported for BENCH_scale.json).
type ScaleRow struct {
	Frontends   int     `json:"frontends"`
	Viewers     int     `json:"viewers"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	StreamMBps  float64 `json:"stream_mbps"`
	ThroughputX float64 `json:"throughput_x"` // vs the 1-frontend row
	HomeP50Ms   float64 `json:"home_p50_ms"`
	HomeP99Ms   float64 `json:"home_p99_ms"`
	StreamP50Ms float64 `json:"stream_p50_ms"`
	StreamP99Ms float64 `json:"stream_p99_ms"`
}

// FlashRow is the flash-crowd phase's measurement: concurrent home traffic
// racing repeated invalidations, with the single-flight rebuild collapse.
type FlashRow struct {
	HomeRequests  int64 `json:"home_requests"`
	Errors        int64 `json:"errors"`
	Invalidations int64 `json:"invalidations"`
	Rebuilds      int64 `json:"rebuilds"`
	Frontends     int   `json:"frontends"`
}

// runServingScale measures closed-loop Zipf load against 1-, 4- and
// 8-frontend fleets, then drives a flash crowd with concurrent uploads
// against the largest fleet. Shared by E14's table and the BENCH_scale.json
// writer.
func runServingScale() ([]ScaleRow, FlashRow) {
	// 16 titles with a flattish exponent keep the hottest single video's
	// demand under one frontend's NIC: video affinity pins each title to
	// one backend, so a catalog whose head title dominates would bottleneck
	// every fleet size on that backend regardless of frontend count.
	const viewers = 32
	var rows []ScaleRow
	var flash FlashRow
	for _, frontends := range []int{1, 4, 8} {
		f := newScaleFleet(frontends, 16)
		rep := workload.RunLoad(workload.LoadOptions{
			BaseURL:       f.srv.url,
			VideoIDs:      f.ids,
			Viewers:       viewers,
			Loops:         2,
			ZipfS:         0.6,
			StreamChunk:   128 << 10,
			ChunksPerView: 4,
			Seed:          14,
		})
		rows = append(rows, ScaleRow{
			Frontends:   frontends,
			Viewers:     viewers,
			Requests:    rep.Requests,
			Errors:      rep.Errors,
			StreamMBps:  rep.ThroughputBps() / float64(mb),
			HomeP50Ms:   rep.Home.P50 * 1000,
			HomeP99Ms:   rep.Home.P99 * 1000,
			StreamP50Ms: rep.Stream.P50 * 1000,
			StreamP99Ms: rep.Stream.P99 * 1000,
		})
		if frontends == 8 {
			flash = runFlashCrowd(f, viewers)
		}
		f.close()
	}
	base := rows[0].StreamMBps
	for i := range rows {
		rows[i].ThroughputX = rows[i].StreamMBps / base
	}
	return rows, flash
}

// runFlashCrowd hammers the fleet's home page and one viral title while
// uploads keep invalidating the recent list. Every replica's rebuild count
// must collapse to at most one scan per invalidation generation — the
// single-flight guarantee — instead of one per concurrent miss.
func runFlashCrowd(f *scaleFleet, viewers int) FlashRow {
	scans0 := f.counterSum("cache_recent_scans")
	inv0 := f.counterSum("cache_recent_invalidations")

	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000}
	uploads := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 3 && err == nil; i++ {
			var data []byte
			data, err = video.Generate(src, 10, uint64(100+i))
			if err == nil {
				_, err = f.sites[0].ProcessUpload(context.Background(), 1,
					fmt.Sprintf("viral video %d", i), "flash crowd target", data)
			}
		}
		uploads <- err
	}()
	rep := workload.RunLoad(workload.LoadOptions{
		BaseURL:       f.srv.url,
		VideoIDs:      f.ids,
		Viewers:       viewers,
		Loops:         6,
		ZipfS:         0.9,
		FlashVideo:    f.ids[0],
		FlashFrac:     0.8,
		StreamChunk:   64 << 10,
		ChunksPerView: 1,
		Seed:          41,
	})
	if err := <-uploads; err != nil {
		panic(fmt.Sprintf("experiments: flash-crowd upload: %v", err))
	}
	return FlashRow{
		HomeRequests:  rep.Home.Count,
		Errors:        rep.Errors,
		Invalidations: f.counterSum("cache_recent_invalidations") - inv0,
		Rebuilds:      f.counterSum("cache_recent_scans") - scans0,
		Frontends:     len(f.sites),
	}
}

// E14ServingScale measures how serving capacity scales with the frontend
// fleet — the "million users" axis the paper's single web VM cannot reach.
// Each frontend's streaming egress is NIC-capped, so aggregate throughput
// should grow near-linearly 1→4→8 while client latency stays flat or
// improves; a flash crowd with concurrent invalidations then shows the
// single-flight home cache rebuilding once per invalidation per replica
// rather than once per concurrent miss.
func E14ServingScale() *metrics.Table {
	t := metrics.NewTable("E14 — serving fleet scale-out",
		"frontends", "viewers", "requests", "errors", "MBps", "vs_1fe",
		"home_p99_ms", "stream_p99_ms")
	rows, flash := runServingScale()
	for _, r := range rows {
		t.AddRow(r.Frontends, r.Viewers, r.Requests, r.Errors,
			r.StreamMBps, r.ThroughputX, r.HomeP99Ms, r.StreamP99Ms)
		check(r.Errors == 0, "E14: %d frontends produced %d errors", r.Frontends, r.Errors)
	}
	base, mid, top := rows[0], rows[1], rows[2]
	check(mid.ThroughputX >= 2,
		"E14: 4 frontends only %.2fx the 1-frontend throughput, want >= 2x", mid.ThroughputX)
	check(top.ThroughputX >= 3,
		"E14: 8 frontends only %.2fx the 1-frontend throughput, want >= 3x", top.ThroughputX)
	check(top.HomeP99Ms <= 2*base.HomeP99Ms,
		"E14: home p99 degraded %.1fms -> %.1fms scaling out", base.HomeP99Ms, top.HomeP99Ms)
	check(top.StreamP99Ms <= 2*base.StreamP99Ms,
		"E14: stream p99 degraded %.1fms -> %.1fms scaling out", base.StreamP99Ms, top.StreamP99Ms)

	t.AddRow("· flash", flash.Frontends, flash.HomeRequests, flash.Errors,
		"", "", flash.Invalidations, flash.Rebuilds)
	check(flash.Errors == 0, "E14: flash crowd produced %d errors", flash.Errors)
	// Single-flight bound: each of the F replicas rebuilds at most once per
	// invalidation generation (+1 for its initial cold fill), no matter how
	// many requests missed concurrently.
	bound := int64(flash.Frontends) * (flash.Invalidations + 1)
	check(flash.Rebuilds <= bound,
		"E14: %d rebuilds for %d invalidations on %d replicas (bound %d): stampede not collapsed",
		flash.Rebuilds, flash.Invalidations, flash.Frontends, bound)
	check(flash.HomeRequests >= 4*flash.Rebuilds,
		"E14: only %d home requests for %d rebuilds — herd not demonstrated",
		flash.HomeRequests, flash.Rebuilds)
	return t
}
