package experiments

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/ingress"
	"videocloud/internal/metrics"
	"videocloud/internal/video"
	"videocloud/internal/videodb"
	"videocloud/internal/web"
	"videocloud/internal/workload"
)

// E15 measures the edge-cache tier under segment fan-out: adaptive-bitrate
// viewers hammer one persistent 4-frontend fleet through the ingress
// balancer, and the question is how many of their segment requests ever
// reach origin HDFS. Video-affine routing pins each title's segments to one
// replica, the first viewer's misses fill that replica's edge cache
// (single-flight, so a flash crowd costs one read), and every later viewer
// is served from memory — origin reads should approach one per object, not
// one per view. A live phase then runs publisher pushes concurrently with
// edge-following viewers to show the TTL bounding playlist staleness.

// edgeLiveTTL bounds how stale a cached playlist may be. It must sit well
// under the publisher's push cadence (edgePushEvery) or live viewers would
// discover several segments late.
const edgeLiveTTL = 40 * time.Millisecond

// edgePushEvery is the live publisher's inter-segment pacing. Real ingest
// arrives at the segment duration (4s); compressing the clock keeps the
// experiment fast without changing the ordering the TTL bound depends on.
const edgePushEvery = 80 * time.Millisecond

// edgeCatalogSeconds sizes each seeded title: 48s over 4s segments is 12
// segment objects per rendition per title.
const edgeCatalogSeconds = 48

// edgeFleet is the persistent serving tier every E15 phase runs against.
// Unlike E14's per-row fleets, ONE fleet spans the whole viewer sweep: the
// warm-cache carry-over between rows is the effect being measured.
type edgeFleet struct {
	sites []*web.Site
	srv   *localServer
	ids   []int64
	reg   *metrics.Registry
}

func (f *edgeFleet) close() {
	f.srv.close()
	for _, s := range f.sites {
		s.Close()
	}
}

// counterSum totals one delivery counter across every replica's registry.
func (f *edgeFleet) counterSum(name string) int64 {
	var total int64
	for _, s := range f.sites {
		total += s.Metrics().Counter(name).Value()
	}
	return total
}

// newEdgeFleet builds frontends replicas with segmented delivery and a
// two-rung rendition ladder (ABR viewers need somewhere to switch), seeds
// catalog titles, and serves the fleet behind ingress on loopback.
func newEdgeFleet(frontends, catalog int) *edgeFleet {
	f := &edgeFleet{reg: metrics.NewRegistry()}
	cluster := hdfs.NewCluster(4, 1<<20)
	cluster.SetBlockCacheCapacity(64 << 20)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		panic(err)
	}
	sdb := videodb.NewSharded(scaleShards)
	sdb.SetMetrics(f.reg)
	cfg := web.Config{
		Store: mount,
		DB:    sdb,
		Farm:  video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target: video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30,
			GOPSeconds: 2, BitrateBps: 200_000},
		Renditions: []video.Spec{{Codec: video.H264, Res: video.R360p, FPS: 30,
			GOPSeconds: 2, BitrateBps: 80_000}},
		StreamRateBytesPerSec: scaleStreamRate,
		SegmentSeconds:        4,
		EdgeCacheBytes:        64 << 20,
		LiveEdgeTTL:           edgeLiveTTL,
	}
	primary, err := web.New(cfg)
	if err != nil {
		panic(err)
	}
	f.sites = []*web.Site{primary}
	for i := 1; i < frontends; i++ {
		rep, rerr := web.NewReplica(cfg, primary)
		if rerr != nil {
			panic(rerr)
		}
		f.sites = append(f.sites, rep)
	}

	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30,
		GOPSeconds: 2, BitrateBps: 100_000}
	for i := 0; i < catalog; i++ {
		data, gerr := video.Generate(src, edgeCatalogSeconds, uint64(i+1))
		if gerr != nil {
			panic(gerr)
		}
		id, uerr := primary.ProcessUpload(context.Background(), 1,
			fmt.Sprintf("edge video %d", i), "seeded for the edge-cache test", data)
		if uerr != nil {
			panic(uerr)
		}
		f.ids = append(f.ids, id)
	}

	backends := make([]http.Handler, len(f.sites))
	for i, s := range f.sites {
		backends[i] = s
	}
	lb := ingress.New(backends...)
	lb.SetMetrics(f.reg)
	f.srv = newLocalServer(lb)
	return f
}

// EdgeRow is one sweep level's measurement (exported for BENCH_edge.json).
// SegOrigin counts only this row's delta, so OffloadPct is the fraction of
// the row's segment requests absorbed by edge memory.
type EdgeRow struct {
	Viewers     int     `json:"viewers"`
	Sessions    int     `json:"sessions"`
	Segments    int     `json:"segments"`
	Errors      int     `json:"errors"`
	SegRequests int64   `json:"seg_requests"`
	SegOrigin   int64   `json:"seg_origin"`
	OffloadPct  float64 `json:"offload_pct"`
	RebufferPct float64 `json:"rebuffer_pct"`
	Switches    int     `json:"switches"`
}

// LiveRow is the live phase's measurement: publisher pushes racing viewers
// who follow the edge through the cache's TTL window.
type LiveRow struct {
	Viewers    int `json:"viewers"`
	Pushed     int `json:"pushed"`
	Segments   int `json:"segments"`
	Errors     int `json:"errors"`
	MaxLiveLag int `json:"max_live_lag"`
	EndReached int `json:"end_reached"`
}

// runEdgeDelivery drives the ABR viewer sweep and the live phase against one
// persistent fleet. Shared by E15's table and the BENCH_edge.json writer.
func runEdgeDelivery() ([]EdgeRow, LiveRow) {
	f := newEdgeFleet(4, 12)
	defer f.close()

	var rows []EdgeRow
	for i, viewers := range []int{4, 16, 64} {
		req0 := f.counterSum("edge_segment_requests")
		org0 := f.counterSum("edge_segment_origin")
		rep := workload.RunEdgeLoad(workload.EdgeLoadOptions{
			BaseURL:  f.srv.url,
			VideoIDs: f.ids,
			Viewers:  viewers,
			Sessions: 3 * viewers,
			ZipfS:    1.1,
			Seed:     int64(15 + i),
		})
		req := f.counterSum("edge_segment_requests") - req0
		org := f.counterSum("edge_segment_origin") - org0
		row := EdgeRow{
			Viewers:     viewers,
			Sessions:    rep.Sessions,
			Segments:    rep.Segments,
			Errors:      rep.Errors,
			SegRequests: req,
			SegOrigin:   org,
			RebufferPct: rep.RebufferRatio() * 100,
			Switches:    rep.Switches,
		}
		if req > 0 {
			row.OffloadPct = 100 * (1 - float64(org)/float64(req))
		}
		rows = append(rows, row)
	}

	return rows, runLivePhase(f)
}

// runLivePhase creates a live channel, pushes two priming segments so the
// playlist exists, then lets viewers follow the live edge while ten more
// segments land at edgePushEvery pacing, and finally ends the channel. Every
// viewer must ride within a bounded distance of the newest segment and see
// the end marker — the cached playlist's staleness is at most the TTL, well
// under one push interval.
func runLivePhase(f *edgeFleet) LiveRow {
	// Affinity pins the channel to ONE frontend, so its NIC budget sizes the
	// audience: 4 viewers' segment demand just fits the 4 MiB/s pacer.
	const viewers = 4
	const pushes = 12
	ctx := context.Background()
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30,
		GOPSeconds: 2, BitrateBps: 100_000}

	id, err := f.sites[0].CreateLiveChannel(ctx, 1, "edge live event", "live phase")
	if err != nil {
		panic(fmt.Sprintf("experiments: live channel: %v", err))
	}
	push := func(k int) {
		chunk, gerr := video.Generate(src, 4, uint64(200+k))
		if gerr != nil {
			panic(gerr)
		}
		if _, perr := f.sites[0].PushLiveSegment(ctx, id, chunk); perr != nil {
			panic(fmt.Sprintf("experiments: live push %d: %v", k, perr))
		}
	}
	push(0)
	push(1)

	done := make(chan *workload.EdgeLoadReport, 1)
	go func() {
		done <- workload.RunLiveViewers(f.srv.url, id, viewers, 10*time.Millisecond)
	}()
	for k := 2; k < pushes; k++ {
		time.Sleep(edgePushEvery)
		push(k)
	}
	if err := f.sites[0].EndLiveChannel(ctx, id); err != nil {
		panic(fmt.Sprintf("experiments: ending live channel: %v", err))
	}
	rep := <-done
	return LiveRow{
		Viewers:    viewers,
		Pushed:     pushes,
		Segments:   rep.Segments,
		Errors:     rep.Errors,
		MaxLiveLag: rep.MaxLiveLag,
		EndReached: rep.EndReached,
	}
}

// E15EdgeDelivery measures origin offload under segmented ABR fan-out: one
// persistent 4-frontend fleet, a 4x/16x/64x viewer sweep, then a live
// channel with edge-following viewers. The cold first row pays origin's
// one-read-per-object price; by the top of the sweep the edge tier must
// absorb >= 90% of segment requests, and live viewers must stay within a
// bounded lag of the newest segment and all see the end marker.
func E15EdgeDelivery() *metrics.Table {
	t := metrics.NewTable("E15 — edge-cache tier under segment fan-out",
		"viewers", "sessions", "segments", "errors", "seg_req", "origin",
		"offload_pct", "rebuffer_pct", "switches")
	rows, live := runEdgeDelivery()
	for _, r := range rows {
		t.AddRow(r.Viewers, r.Sessions, r.Segments, r.Errors, r.SegRequests,
			r.SegOrigin, r.OffloadPct, r.RebufferPct, r.Switches)
		check(r.Errors == 0, "E15: %d viewers produced %d errors", r.Viewers, r.Errors)
		check(r.Segments == 12*r.Sessions,
			"E15: %d viewers played %d segments over %d sessions, want %d",
			r.Viewers, r.Segments, r.Sessions, 12*r.Sessions)
	}
	top := rows[len(rows)-1]
	check(top.OffloadPct >= 90,
		"E15: edge tier absorbed only %.1f%% of segment requests at peak fan-out, want >= 90%%",
		top.OffloadPct)
	check(top.SegOrigin <= rows[0].SegOrigin,
		"E15: origin reads grew with fan-out (%d cold -> %d warm); cache is not retaining",
		rows[0].SegOrigin, top.SegOrigin)

	t.AddRow("· live", live.Viewers, live.Segments, live.Errors,
		live.Pushed, "", "", live.MaxLiveLag, live.EndReached)
	check(live.Errors == 0, "E15: live phase produced %d errors", live.Errors)
	check(live.EndReached == live.Viewers,
		"E15: only %d of %d live viewers reached the end marker", live.EndReached, live.Viewers)
	check(live.MaxLiveLag <= 6,
		"E15: a live viewer fell %d segments behind the edge, want <= 6", live.MaxLiveLag)
	return t
}
