package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/nebula"
	"videocloud/internal/virt"
	"videocloud/internal/workload"
)

// E16 plays a diurnal transcode demand wave with a 6x flash crowd and a
// mid-run host crash against the closed-loop elastic controller, then hands
// an imbalanced cluster to the live-migration rebalancer. Tuning below is in
// virtual time; jobs are fractional work units (a "job" is one transcode).
const (
	e16Tick       = 5 * time.Second   // controller evaluation interval
	e16SvcRate    = 0.5               // jobs/sec one farm instance completes
	e16NodeBuf    = 2.0               // jobs an instance keeps in flight
	e16BurstAt    = 90 * time.Minute  // flash crowd start
	e16BurstLen   = 15 * time.Minute  // flash crowd duration
	e16CrashAt    = 4 * time.Hour     // host crash (after the fleet settles)
	e16TrafficEnd = 6 * time.Hour     // arrivals stop; the tail drains
	e16Tail       = 45 * time.Minute  // post-traffic drain-down window
	e16HiLoad     = 0.8               // hysteresis band (also the absorb gate)
	e16LoLoad     = 0.3
	e16InCooldown = 10 * time.Minute // the larger cooldown = the flip window
)

// ElasticWindow is one observation window of the E16 run (exported for
// BENCH_elastic.json).
type ElasticWindow struct {
	Phase    string  `json:"phase"`
	AvgLoad  float64 `json:"avg_load"`
	AvgFleet float64 `json:"avg_fleet"`
	MaxFleet int     `json:"max_fleet"`
	Outs     int     `json:"outs"`
	Ins      int     `json:"ins"`
	Freezes  int     `json:"freezes"`
}

// ElasticReport is the full E16 measurement set (exported for
// BENCH_elastic.json). The job ledger is exact: every accepted job must end
// in CompletedJobs — drained, expired-and-requeued, or crash-requeued work
// included — with nothing left over.
type ElasticReport struct {
	Windows         []ElasticWindow `json:"windows"`
	AcceptedJobs    float64         `json:"accepted_jobs"`
	CompletedJobs   float64         `json:"completed_jobs"`
	RequeuedJobs    float64         `json:"requeued_jobs"`
	LeftoverJobs    float64         `json:"leftover_jobs"`
	SpikeAbsorbSecs float64         `json:"spike_absorb_secs"`
	PeakFleet       int             `json:"peak_fleet"`
	ScaleOuts       int64           `json:"scale_outs"`
	ScaleIns        int64           `json:"scale_ins"`
	Reclaims        int64           `json:"reclaims"`
	DrainsStarted   int64           `json:"drains_started"`
	DrainsCompleted int64           `json:"drains_completed"`
	DrainsExpired   int64           `json:"drains_expired"`
	Freezes         int64           `json:"freezes"`
	Thrash          int64           `json:"thrash"`
	Flips           int64           `json:"flips"`
	FlipWindows     float64         `json:"flip_windows"`
	SpreadBefore    float64         `json:"spread_before"`
	SpreadAfter     float64         `json:"spread_after"`
	RebalanceMoves  int64           `json:"rebalance_moves"`
	RebalancePasses int64           `json:"rebalance_passes"`
}

// e16Node is one farm instance's work state in the job ledger.
type e16Node struct {
	inflight float64
	draining bool
}

// e16Rig is the transcode-demand model the controller closes its loop on:
// arrivals follow the diurnal wave, serving instances pull work from a shared
// queue, draining instances finish what they hold but take nothing new. All
// methods run inside simulation callbacks (single-threaded virtual time), so
// no locking is needed; fields are only touched between RunFor calls
// otherwise.
type e16Rig struct {
	demand    workload.Diurnal
	nodes     map[string]*e16Node
	last      time.Duration
	arrivals  bool
	queue     float64
	accepted  float64
	completed float64
	requeued  float64
}

// signal advances the job ledger one controller tick and returns offered
// load (queued + in-flight jobs) — the metric the controller scales on.
func (r *e16Rig) signal(now time.Duration) float64 {
	dt := (now - r.last).Seconds()
	r.last = now
	if r.arrivals && dt > 0 {
		a := r.demand.Rate(now) * dt
		r.queue += a
		r.accepted += a
	}
	total := 0.0
	for _, n := range r.nodes {
		done := math.Min(n.inflight, e16SvcRate*dt)
		n.inflight -= done
		r.completed += done
		if !n.draining {
			if pull := math.Min(r.queue, e16NodeBuf-n.inflight); pull > 0 {
				r.queue -= pull
				n.inflight += pull
			}
		}
		total += n.inflight
	}
	return r.queue + total
}

// inflightOf is the drain poll: work still executing on an instance.
func (r *e16Rig) inflightOf(name string) int {
	if n := r.nodes[name]; n != nil {
		return int(math.Ceil(n.inflight))
	}
	return 0
}

// requeue hands an instance's unfinished work back to the queue — the
// expired-drain and crash-retirement path. Requeued, never dropped.
func (r *e16Rig) requeue(name string) {
	if n := r.nodes[name]; n != nil && n.inflight > 0 {
		r.queue += n.inflight
		r.requeued += n.inflight
		n.inflight = 0
	}
}

// runElasticity executes the E16 scenario and returns the raw measurements;
// E16Elasticity and TestElasticBench gate them.
func runElasticity() ElasticReport {
	cloud := nebula.New(nebula.Options{})
	for i := 1; i <= 8; i++ {
		if _, err := cloud.AddHost(fmt.Sprintf("node%d", i), 8, 1e9, 16*gb, 500*gb); err != nil {
			panic(err)
		}
	}
	if _, err := cloud.Catalog().Register("tcode-image", 2*gb, 11); err != nil {
		panic(err)
	}

	rig := &e16Rig{
		demand: workload.Diurnal{
			Base: 0.4, PeakFactor: 3, PeakHour: 2,
			Bursts: []workload.Burst{{Start: e16BurstAt, Duration: e16BurstLen, Factor: 6}},
		},
		nodes:    make(map[string]*e16Node),
		arrivals: true,
	}
	ctl, err := nebula.NewElasticController(cloud, nebula.ElasticOptions{
		Template: nebula.Template{
			Name: "tcode", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
			Image: "tcode-image", Workload: virt.IdleWorkload{},
		},
		Min: 1, Max: 12,
		InstanceCapacity: 5,
		HiLoad:           e16HiLoad,
		LoLoad:           e16LoLoad,
		MaxStep:          2,
		OutCooldown:      30 * time.Second,
		InCooldown:       e16InCooldown,
		GuardHold:        90 * time.Second,
		Drain: nebula.DrainOptions{
			Deadline:     2 * time.Minute,
			PollInterval: time.Second,
			InFlight:     rig.inflightOf,
			OnDrain: func(name string) {
				if n := rig.nodes[name]; n != nil {
					n.draining = true
				}
			},
			OnExpire: rig.requeue,
		},
		Signal: rig.signal,
		OnReady: func(name string) {
			if n := rig.nodes[name]; n != nil {
				n.draining = false // reclaimed from a drain
				return
			}
			rig.nodes[name] = &e16Node{}
		},
		OnRetire: func(name string) {
			rig.requeue(name)
			delete(rig.nodes, name)
		},
	})
	if err != nil {
		panic(err)
	}
	if err := ctl.Start(e16Tick); err != nil {
		panic(err)
	}
	cloud.Monitor().EnableFailureDetection()

	// Ride the wave through the flash crowd, then crash a host under a fleet
	// instance once the burst has been absorbed and the fleet has settled.
	cloud.RunFor(e16CrashAt)
	victim := ""
	for _, vm := range cloud.Snapshot() {
		if vm.State == nebula.Running && vm.Host != "" && strings.HasPrefix(vm.Name, "tcode") {
			victim = vm.Host
			break
		}
	}
	if victim == "" {
		panic("E16: no running fleet instance to crash under")
	}
	if err := cloud.CrashHost(victim); err != nil {
		panic(err)
	}
	cloud.RunFor(e16TrafficEnd - e16CrashAt)

	// Traffic ends; the controller drains the fleet back to the floor.
	rig.arrivals = false
	cloud.RunFor(e16Tail)
	ctl.Stop()
	cloud.Monitor().DisableFailureDetection()
	cloud.WaitIdle()

	hist := ctl.History()
	reg := cloud.Metrics()
	leftover := rig.queue
	for _, n := range rig.nodes {
		leftover += n.inflight
	}
	rep := ElasticReport{
		AcceptedJobs:    rig.accepted,
		CompletedJobs:   rig.completed,
		RequeuedJobs:    rig.requeued,
		LeftoverJobs:    leftover,
		SpikeAbsorbSecs: -1,
		ScaleOuts:       reg.Counter("elastic_scale_out").Value(),
		ScaleIns:        reg.Counter("elastic_scale_in").Value(),
		Reclaims:        reg.Counter("elastic_reclaims").Value(),
		DrainsStarted:   reg.Counter("drains_started").Value(),
		DrainsCompleted: reg.Counter("drains_completed").Value(),
		DrainsExpired:   reg.Counter("drain_deadline_expired").Value(),
		Freezes:         reg.Counter("elastic_freezes").Value(),
		Thrash:          reg.Counter("elastic_thrash").Value(),
		Flips:           reg.Counter("elastic_flips").Value(),
		FlipWindows:     float64(e16TrafficEnd+e16Tail) / float64(e16InCooldown),
	}

	type span struct {
		name     string
		from, to time.Duration
	}
	spans := []span{
		{"baseline wave", 0, e16BurstAt},
		{"flash crowd", e16BurstAt, e16BurstAt + e16BurstLen},
		{"absorb + settle", e16BurstAt + e16BurstLen, e16CrashAt},
		{"host crash", e16CrashAt, e16TrafficEnd},
		{"drain-down tail", e16TrafficEnd, e16TrafficEnd + e16Tail},
	}
	for _, sp := range spans {
		w := ElasticWindow{Phase: sp.name}
		var loadSum, fleetSum float64
		n := 0
		for _, s := range hist {
			if s.At < sp.from || s.At >= sp.to {
				continue
			}
			n++
			loadSum += s.Load
			fleetSum += float64(s.Instances)
			if s.Instances > w.MaxFleet {
				w.MaxFleet = s.Instances
			}
			switch {
			case strings.HasPrefix(s.Decision, "out") || strings.HasPrefix(s.Decision, "reclaim"):
				w.Outs++
			case strings.HasPrefix(s.Decision, "in-"):
				w.Ins++
			case s.Decision == "freeze":
				w.Freezes++
			}
		}
		if n > 0 {
			w.AvgLoad = loadSum / float64(n)
			w.AvgFleet = fleetSum / float64(n)
		}
		if w.MaxFleet > rep.PeakFleet {
			rep.PeakFleet = w.MaxFleet
		}
		rep.Windows = append(rep.Windows, w)
	}

	// Spike absorb time: from burst start until utilization first returns
	// inside the hysteresis band after having blown through it.
	blown := false
	for _, s := range hist {
		if s.At < e16BurstAt {
			continue
		}
		if !blown {
			if s.Util > e16HiLoad {
				blown = true
			}
			continue
		}
		if s.Util <= e16HiLoad {
			rep.SpikeAbsorbSecs = (s.At - e16BurstAt).Seconds()
			break
		}
	}

	// ---- rebalance: an imbalanced cluster gets a fresh host ----
	c2 := nebula.New(nebula.Options{})
	if _, err := c2.Catalog().Register("tcode-image", 2*gb, 11); err != nil {
		panic(err)
	}
	for _, h := range []string{"node1", "node2"} {
		if _, err := c2.AddHost(h, 8, 1e9, 16*gb, 500*gb); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := c2.Submit(nebula.Template{
			Name: "tcode", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
			Image: "tcode-image", Workload: virt.IdleWorkload{},
		}); err != nil {
			panic(err)
		}
	}
	c2.WaitIdle()
	if _, err := c2.AddHost("fresh", 8, 1e9, 16*gb, 500*gb); err != nil {
		panic(err)
	}
	_, _, rep.SpreadBefore = c2.HostLoadSpread()
	reb := nebula.NewRebalancer(c2, 0.15, 2)
	for pass := 0; pass < 8; pass++ {
		moved := reb.PassNow()
		c2.WaitIdle()
		if moved == 0 {
			break
		}
	}
	_, _, rep.SpreadAfter = c2.HostLoadSpread()
	rep.RebalanceMoves = c2.Metrics().Counter("rebalance_migrations").Value()
	rep.RebalancePasses = c2.Metrics().Counter("rebalance_passes").Value()
	return rep
}

// E16Elasticity is the elasticity experiment: a diurnal transcode wave with
// a 6x flash crowd and a host crash against the closed-loop controller, then
// hot-host rebalancing. The gates are the PR's contract: the spike is
// absorbed, not one accepted job is lost across all the scale-downs and the
// crash, the fleet never thrashes (at most one direction flip per cooldown
// window), and the rebalancer levels the cluster within its budget.
func E16Elasticity() *metrics.Table {
	t := metrics.NewTable("E16 — elastic transcode fleet: flash crowd, host crash, rebalance",
		"phase", "avg_load", "avg_fleet", "max_fleet", "events")
	r := runElasticity()
	for _, w := range r.Windows {
		t.AddRow(w.Phase, w.AvgLoad, w.AvgFleet, w.MaxFleet,
			fmt.Sprintf("out=%d in=%d freeze=%d", w.Outs, w.Ins, w.Freezes))
	}
	t.AddRow("job ledger", r.AcceptedJobs, "", "",
		fmt.Sprintf("completed=%.0f requeued=%.1f leftover=%.2f", r.CompletedJobs, r.RequeuedJobs, r.LeftoverJobs))
	t.AddRow("drain ledger", "", "", "",
		fmt.Sprintf("started=%d completed=%d expired=%d reclaims=%d", r.DrainsStarted, r.DrainsCompleted, r.DrainsExpired, r.Reclaims))
	t.AddRow("control", "", "", "",
		fmt.Sprintf("absorb=%.0fs flips=%d/%.0f windows thrash=%d freezes=%d", r.SpikeAbsorbSecs, r.Flips, r.FlipWindows, r.Thrash, r.Freezes))
	t.AddRow("rebalance", "", "", "",
		fmt.Sprintf("spread %.2f -> %.2f in %d moves / %d passes", r.SpreadBefore, r.SpreadAfter, r.RebalanceMoves, r.RebalancePasses))

	check(r.AcceptedJobs > 10000, "E16: only %.0f jobs offered", r.AcceptedJobs)
	check(math.Abs(r.AcceptedJobs-r.CompletedJobs) < 1e-3 && r.LeftoverJobs < 1e-3,
		"E16: jobs lost: accepted=%.3f completed=%.3f leftover=%.3f",
		r.AcceptedJobs, r.CompletedJobs, r.LeftoverJobs)
	check(r.SpikeAbsorbSecs >= 0 && r.SpikeAbsorbSecs <= (30*time.Minute).Seconds(),
		"E16: flash crowd not absorbed within 30min (%.0fs)", r.SpikeAbsorbSecs)
	check(r.PeakFleet >= 8, "E16: peak fleet %d never rose to the burst", r.PeakFleet)
	check(r.DrainsStarted >= 5, "E16: only %d scale-down drains", r.DrainsStarted)
	check(r.DrainsCompleted+r.DrainsExpired >= r.DrainsStarted,
		"E16: drain ledger does not balance: %d started, %d completed, %d expired",
		r.DrainsStarted, r.DrainsCompleted, r.DrainsExpired)
	check(r.Freezes >= 1, "E16: controller never froze after the host crash")
	check(r.RequeuedJobs > 0, "E16: the crash requeued nothing")
	check(r.Thrash == 0, "E16: fleet thrashed %d times", r.Thrash)
	check(float64(r.Flips) <= r.FlipWindows,
		"E16: %d direction flips exceed one per cooldown window (%.0f windows)", r.Flips, r.FlipWindows)
	check(r.RebalanceMoves >= 1, "E16: rebalancer never migrated")
	check(r.SpreadAfter <= 0.25 && r.SpreadAfter < r.SpreadBefore,
		"E16: spread %.2f -> %.2f not leveled", r.SpreadBefore, r.SpreadAfter)
	return t
}
