package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/metrics"
	"videocloud/internal/nebula"
	"videocloud/internal/tenant"
	"videocloud/internal/video"
	"videocloud/internal/virt"
	"videocloud/internal/web"
	"videocloud/internal/workload"
)

// E17 is the multi-tenancy experiment: a bulk tenant floods the transcode
// intake while a victim tenant streams its catalog, and the tenant layer
// must (a) keep the victim's client-observed stream p99 within 25% of its
// solo baseline, (b) throttle the abuser with retryable 429s instead of
// erroring or starving it, (c) never let any reservation overshoot its
// quota, and (d) keep the usage ledger exact — transcode seconds equal the
// source seconds published, stored bytes equal both the live reservation
// and a byte-walk of HDFS, and vm-seconds equal the orchestrator state log.
const (
	e17Workers      = 1 // one transcode worker => intake pressure is real
	e17QueueCap     = 4
	e17VictimWeight = 3
	e17BulkWeight   = 1
	e17CatalogSize  = 4  // victim's pre-seeded titles
	e17SeedSecs     = 20 // source seconds per victim title
	e17BulkUploads  = 10
	e17BulkSecs     = 30 // source seconds per bulk clip
	e17Viewers      = 4
	e17Loops        = 3
	e17LoadTrials   = 3 // best-of-n trials per phase strips host noise
	// The bulk tenant's hourly transcode window fits its flood plus a
	// little slack but not one more clip: the probe upload after the flood
	// must be refused with a hard quota denial (429), proving admission
	// control composes with fair queuing.
	e17BulkXcodeQuota = e17BulkUploads*e17BulkSecs + e17BulkSecs/2
	// Streaming is paced by the frontend egress cap, so client latency is
	// dominated by deterministic pacing rather than scheduler noise —
	// together with the best-of-n trial minimum, what makes the 1.25x p99
	// gate stable.
	e17StreamRate = int64(1 << 20)
)

// TenantLedgerRow is one tenant's end-of-run reconciliation (exported for
// BENCH_tenant.json).
type TenantLedgerRow struct {
	Name                 string  `json:"name"`
	Weight               int     `json:"weight"`
	XcodeSecondsLedger   float64 `json:"transcode_seconds_ledger"`
	XcodeSecondsExpected float64 `json:"transcode_seconds_expected"`
	StoredBytesLedger    int64   `json:"stored_bytes_ledger"`
	StoredBytesDB        int64   `json:"stored_bytes_db"`
	StoredBytesHDFS      int64   `json:"stored_bytes_hdfs"`
	StoredBytesReserved  int64   `json:"stored_bytes_reserved"`
	EgressBytes          float64 `json:"egress_bytes"`
	QuotaDenials         int64   `json:"quota_denials"`
	Throttles            int64   `json:"throttles"`
	OvershootVMs         int     `json:"overshoot_vms"`
	OvershootBytes       int64   `json:"overshoot_bytes"`
	OvershootXcode       float64 `json:"overshoot_transcode"`
}

// TenantReport is the full E17 measurement set (exported for
// BENCH_tenant.json).
type TenantReport struct {
	SoloStreamP50Ms   float64 `json:"solo_stream_p50_ms"`
	SoloStreamP99Ms   float64 `json:"solo_stream_p99_ms"`
	LoadedStreamP50Ms float64 `json:"loaded_stream_p50_ms"`
	LoadedStreamP99Ms float64 `json:"loaded_stream_p99_ms"`
	P99Ratio          float64 `json:"p99_ratio"`
	VictimRequests    int64   `json:"victim_requests"`
	VictimErrors      int64   `json:"victim_errors"`

	BulkPublished    int   `json:"bulk_published"`
	BulkThrottles    int64 `json:"bulk_throttle_429s"`
	BulkRetries      int64 `json:"bulk_retries"`
	BulkHardFailures int   `json:"bulk_hard_failures"`
	BulkProbeDenied  bool  `json:"bulk_probe_denied"`
	VictimPublished  int   `json:"victim_published"`

	Tenants []TenantLedgerRow `json:"tenants"`

	VMSecondsLedger   float64 `json:"vm_seconds_ledger"`
	VMSecondsStateLog float64 `json:"vm_seconds_state_log"`
}

// e17Rig is the assembled serving tier plus the registry behind it.
type e17Rig struct {
	reg     *tenant.Registry
	victim  *tenant.Tenant
	bulk    *tenant.Tenant
	cluster *hdfs.Cluster
	site    *web.Site
	srv     *localServer
	ids     []int64
}

func newTenantRig() *e17Rig {
	r := &e17Rig{reg: tenant.NewRegistry()}
	var err error
	if r.victim, err = r.reg.Create("victim", e17VictimWeight, tenant.Quota{}); err != nil {
		panic(err)
	}
	if r.bulk, err = r.reg.Create("bulk", e17BulkWeight, tenant.Quota{
		TranscodeSecondsPerHour: e17BulkXcodeQuota,
	}); err != nil {
		panic(err)
	}
	r.cluster = hdfs.NewCluster(4, 1<<20)
	mount, err := fusebridge.New(r.cluster.Client(""), "/site", 2)
	if err != nil {
		panic(err)
	}
	r.site, err = web.New(web.Config{
		Store:                 mount,
		Farm:                  video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target:                video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000},
		TranscodeWorkers:      e17Workers,
		TranscodeQueueCap:     e17QueueCap,
		StreamRateBytesPerSec: e17StreamRate,
		Tenants:               r.reg,
	})
	if err != nil {
		panic(err)
	}
	r.srv = newLocalServer(r.site)
	return r
}

func (r *e17Rig) close() {
	r.srv.close()
	r.site.Close()
}

// clip renders one synthetic source clip. Generation is bench-side media
// creation, not tenant API traffic — callers that race uploads against a
// latency measurement must render their payloads *before* the measured
// window so the CPU burst is not misread as neighbor interference.
func (r *e17Rig) clip(secs int, seed uint64) []byte {
	data, err := video.Generate(video.Spec{
		Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 64_000,
	}, secs, seed)
	if err != nil {
		panic(err)
	}
	return data
}

// uploadRetrying publishes one clip for ten, retrying fair-share throttles
// (the 429 + Retry-After contract an API client follows). It returns the
// video id, the number of throttled attempts, and a terminal error — which
// for this experiment should only ever be a hard quota denial.
func (r *e17Rig) uploadRetrying(ten *tenant.Tenant, title string, secs int, seed uint64) (int64, int64, error) {
	return r.uploadDataRetrying(ten, title, r.clip(secs, seed))
}

// uploadDataRetrying is uploadRetrying over a pre-rendered payload.
func (r *e17Rig) uploadDataRetrying(ten *tenant.Tenant, title string, data []byte) (int64, int64, error) {
	ctx := tenant.WithContext(context.Background(), ten, tenant.RoleWriter)
	var throttles int64
	for {
		id, err := r.site.ProcessUpload(ctx, 0, title, "tenant bench clip", data)
		if err == nil {
			return id, throttles, nil
		}
		if !errors.Is(err, tenant.ErrThrottled) {
			return 0, throttles, err
		}
		throttles++
		// A real client would sleep the full Retry-After (2s); the bench
		// compresses the wait so the run stays short — the signal under
		// test is the throttle itself, not the client's patience.
		time.Sleep(20 * time.Millisecond)
	}
}

// loadTrials runs e17LoadTrials closed-loop load phases back to back and
// returns the trial with the lowest stream p99 plus the request/error
// totals across all trials. Transient host noise — a co-scheduled test
// binary, a GC pause — can only inflate a trial's p99, never deflate it,
// so the minimum over trials is the stable signal; contention sources
// inside the rig (the bulk flood, the transcode worker) are present in
// every trial and cannot be stripped this way.
func (r *e17Rig) loadTrials(baseSeed int64) (best workload.LoadReport, requests, errs int64) {
	for i := 0; i < e17LoadTrials; i++ {
		rep := workload.RunLoad(workload.LoadOptions{
			BaseURL:     r.srv.url,
			VideoIDs:    r.ids,
			Viewers:     e17Viewers,
			Loops:       e17Loops,
			StreamChunk: 128 << 10,
			Seed:        baseSeed + int64(i)*101,
		})
		requests += rep.Requests
		errs += rep.Errors
		if i == 0 || rep.Stream.P99 < best.Stream.P99 {
			best = rep
		}
	}
	return best, requests, errs
}

// waitPublished blocks until every id's row is ready (the async queue
// publishes in the background).
func (r *e17Rig) waitPublished(ids []int64) {
	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for {
			row, err := r.site.DB().Get("videos", id)
			if err == nil {
				if status, _ := row["status"].(string); status == "ready" {
					break
				}
			}
			if time.Now().After(deadline) {
				panic(fmt.Sprintf("E17: video %d never published", id))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// hdfsWalkBytes recomputes a tenant's durable footprint straight from
// storage: for every video row it owns, the byte sizes of the stored
// target, each rendition, and every delivery segment. This is the
// independent audit the ledger's stored-bytes figure must match exactly.
func (r *e17Rig) hdfsWalkBytes(tenantName string) int64 {
	rows, err := r.site.DB().Select("videos", "tenant", tenantName)
	if err != nil {
		panic(err)
	}
	client := r.cluster.Client("")
	targetLabel := web.QualityLabel(video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000})
	var total int64
	for _, row := range rows {
		id, _ := row["id"].(int64)
		if data, err := client.ReadFile(fmt.Sprintf("/site/videos/%d.vcf", id)); err == nil {
			total += int64(len(data))
		}
		labels, _ := row["renditions"].(string)
		for _, label := range splitNonEmpty(labels) {
			if label != targetLabel {
				if data, err := client.ReadFile(fmt.Sprintf("/site/videos/%d-%s.vcf", id, label)); err == nil {
					total += int64(len(data))
				}
			}
			for k := 0; ; k++ {
				data, err := client.ReadFile(fmt.Sprintf("/site/segments/%d-%s-%d.vcf", id, label, k))
				if err != nil {
					break
				}
				total += int64(len(data))
			}
		}
	}
	return total
}

// splitNonEmpty splits a comma-joined list, dropping empty elements.
func splitNonEmpty(s string) []string {
	var out []string
	for start := 0; start <= len(s); {
		end := start
		for end < len(s) && s[end] != ',' {
			end++
		}
		if end > start {
			out = append(out, s[start:end])
		}
		start = end + 1
	}
	return out
}

// ledgerRow snapshots one tenant's reconciliation.
func (r *e17Rig) ledgerRow(ten *tenant.Tenant, expectedXcodeSecs float64) TenantLedgerRow {
	u := r.reg.Ledger().Usage(ten.Name())
	res := ten.Reservations()
	var dbBytes int64
	rows, err := r.site.DB().Select("videos", "tenant", ten.Name())
	if err != nil {
		panic(err)
	}
	for _, row := range rows {
		sb, _ := row["stored_bytes"].(int64)
		dbBytes += sb
	}
	ov, ob, ox := ten.Overshoot()
	return TenantLedgerRow{
		Name:                 ten.Name(),
		Weight:               ten.Weight(),
		XcodeSecondsLedger:   u.TranscodeSeconds,
		XcodeSecondsExpected: expectedXcodeSecs,
		StoredBytesLedger:    int64(u.BytesStored),
		StoredBytesDB:        dbBytes,
		StoredBytesHDFS:      r.hdfsWalkBytes(ten.Name()),
		StoredBytesReserved:  res.StorageBytes,
		EgressBytes:          u.BytesEgressed,
		QuotaDenials:         res.QuotaDenials,
		Throttles:            res.Throttles,
		OvershootVMs:         ov,
		OvershootBytes:       ob,
		OvershootXcode:       ox,
	}
}

// runTenancy executes the E17 scenario and returns the raw measurements;
// E17Tenancy and TestTenantBench gate them.
func runTenancy() TenantReport {
	r := newTenantRig()
	defer r.close()
	var rep TenantReport

	// ---- victim seeds its catalog ----
	var seedIDs []int64
	for i := 0; i < e17CatalogSize; i++ {
		id, _, err := r.uploadRetrying(r.victim, fmt.Sprintf("victim title %d", i), e17SeedSecs, uint64(i+1))
		if err != nil {
			panic(fmt.Sprintf("E17: victim seed %d: %v", i, err))
		}
		seedIDs = append(seedIDs, id)
	}
	r.waitPublished(seedIDs)
	r.ids = seedIDs
	rep.VictimPublished = len(seedIDs)

	// ---- phase A: the victim alone (baseline, pre-flood bracket) ----
	solo, soloReqs, soloErrs := r.loadTrials(17)

	// ---- phase B: the bulk tenant floods the intake ----
	// Six uploader goroutines race e17BulkUploads clips into a one-worker,
	// four-slot queue: the backlog instantly exceeds the bulk flow's fair
	// share and the queue throttles it, while the victim's viewers keep
	// streaming and one victim upload threads through the contended queue.
	type result struct {
		id        int64
		throttles int64
		err       error
	}
	clips := make([][]byte, e17BulkUploads)
	for i := range clips {
		clips[i] = r.clip(e17BulkSecs, uint64(100+i))
	}
	victimClip := r.clip(e17SeedSecs, 99)
	results := make(chan result, e17BulkUploads)
	sem := make(chan struct{}, 6)
	for i := 0; i < e17BulkUploads; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			id, th, err := r.uploadDataRetrying(r.bulk, fmt.Sprintf("bulk clip %d", i), clips[i])
			results <- result{id, th, err}
		}(i)
	}
	loaded, loadedReqs, loadedErrs := r.loadTrials(18)
	victimID, _, err := r.uploadDataRetrying(r.victim, "victim under contention", victimClip)
	if err != nil {
		panic(fmt.Sprintf("E17: victim upload under contention: %v", err))
	}
	var bulkIDs []int64
	for i := 0; i < e17BulkUploads; i++ {
		res := <-results
		rep.BulkRetries += res.throttles
		if res.err != nil {
			rep.BulkHardFailures++
			continue
		}
		bulkIDs = append(bulkIDs, res.id)
	}
	r.waitPublished(append(append([]int64(nil), bulkIDs...), victimID))
	rep.BulkPublished = len(bulkIDs)
	rep.VictimPublished++

	// ---- phase C: the victim alone again (post-flood bracket) ----
	// Background host noise (co-scheduled test binaries, the OS) drifts
	// over a run this long, so a baseline measured only before the flood
	// is not comparable to a loaded phase measured minutes later.
	// Bracketing the flood with solo measurements on both sides and taking
	// the *slower* bracket as the baseline controls for that drift:
	// degradation is charged to the bulk tenant only when the loaded p99
	// exceeds both quiet-side windows.
	post, postReqs, postErrs := r.loadTrials(19)
	if post.Stream.P99 > solo.Stream.P99 {
		solo = post
	}
	rep.SoloStreamP50Ms = solo.Stream.P50 * 1000
	rep.SoloStreamP99Ms = solo.Stream.P99 * 1000
	rep.LoadedStreamP50Ms = loaded.Stream.P50 * 1000
	rep.LoadedStreamP99Ms = loaded.Stream.P99 * 1000
	if rep.SoloStreamP99Ms > 0 {
		rep.P99Ratio = rep.LoadedStreamP99Ms / rep.SoloStreamP99Ms
	}
	rep.VictimRequests = soloReqs + loadedReqs + postReqs
	rep.VictimErrors = soloErrs + loadedErrs + postErrs
	rep.BulkThrottles = r.bulk.Reservations().Throttles

	// ---- the probe past the hard quota ----
	// The flood consumed the bulk tenant's hourly transcode window; one
	// more clip must be refused outright (ErrQuotaExceeded -> 429), not
	// queued, not retried into acceptance.
	if _, _, err := r.uploadRetrying(r.bulk, "bulk probe past quota", e17BulkSecs, 999); errors.Is(err, tenant.ErrQuotaExceeded) {
		rep.BulkProbeDenied = true
	}

	// ---- reconciliation ----
	rep.Tenants = []TenantLedgerRow{
		r.ledgerRow(r.victim, float64((e17CatalogSize+1)*e17SeedSecs)),
		r.ledgerRow(r.bulk, float64(e17BulkUploads*e17BulkSecs)),
	}

	// ---- vm-seconds: metered runtime vs the orchestrator state log ----
	rep.VMSecondsLedger, rep.VMSecondsStateLog = runTenantVMSeconds(r.reg)
	return rep
}

// runTenantVMSeconds boots a victim-owned VM on a tenant-gated cloud, runs
// it 90 virtual seconds, retires it, and returns the ledger's vm-seconds
// next to the exact Running time in the orchestrator's state log.
func runTenantVMSeconds(reg *tenant.Registry) (ledger, statelog float64) {
	cloud := nebula.New(nebula.Options{})
	if _, err := cloud.Catalog().Register("tenant-image", 2*gb, 3); err != nil {
		panic(err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := cloud.AddHost(fmt.Sprintf("node%d", i), 8, 1e9, 16*gb, 500*gb); err != nil {
			panic(err)
		}
	}
	cloud.SetTenantGate(tenant.VMGate{Reg: reg})
	before := reg.Ledger().Usage("victim").VMSeconds
	id, err := cloud.Submit(nebula.Template{
		Name: "victim-vm", VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
		Image: "tenant-image", Workload: virt.IdleWorkload{}, Owner: "victim",
	})
	if err != nil {
		panic(err)
	}
	cloud.WaitIdle()
	cloud.RunFor(90 * time.Second)
	if err := cloud.Shutdown(id); err != nil {
		panic(err)
	}
	cloud.WaitIdle()
	rec, err := cloud.VM(id)
	if err != nil {
		panic(err)
	}
	var want float64
	var runningAt time.Duration
	running := false
	for _, tr := range rec.StateLog {
		if !running && tr.To == nebula.Running {
			running, runningAt = true, tr.At
		} else if running && tr.To != nebula.Running {
			running = false
			want += (tr.At - runningAt).Seconds()
		}
	}
	return reg.Ledger().Usage("victim").VMSeconds - before, want
}

// E17Tenancy is the multi-tenancy experiment: quota admission, weighted
// fair queuing, and exact usage accounting under a noisy neighbor. The
// gates are the PR's contract: the victim's stream p99 stays within 25% of
// its solo baseline, the abuser is throttled (not errored) and its flood
// still fully publishes, nothing overshoots a quota, and every ledger
// figure reconciles exactly against the database, HDFS, and the
// orchestrator state log.
func E17Tenancy() *metrics.Table {
	t := metrics.NewTable("E17 — multi-tenant isolation: quotas, fair queuing, exact accounting",
		"measure", "victim", "bulk", "verdict")
	r := runTenancy()

	t.AddRow("stream p99 solo -> loaded (ms)",
		fmt.Sprintf("%.1f -> %.1f", r.SoloStreamP99Ms, r.LoadedStreamP99Ms), "",
		fmt.Sprintf("ratio %.2f", r.P99Ratio))
	t.AddRow("published / hard failures",
		fmt.Sprintf("%d / 0", r.VictimPublished),
		fmt.Sprintf("%d / %d", r.BulkPublished, r.BulkHardFailures),
		fmt.Sprintf("throttle 429s=%d retries=%d", r.BulkThrottles, r.BulkRetries))
	for _, row := range r.Tenants {
		t.AddRow("ledger "+row.Name,
			fmt.Sprintf("xcode %.0f/%.0f s", row.XcodeSecondsLedger, row.XcodeSecondsExpected),
			fmt.Sprintf("stored %d=%d=%d=%dB", row.StoredBytesLedger, row.StoredBytesDB,
				row.StoredBytesHDFS, row.StoredBytesReserved),
			fmt.Sprintf("denied=%d throttled=%d", row.QuotaDenials, row.Throttles))
	}
	t.AddRow("vm-seconds ledger vs state log",
		fmt.Sprintf("%.2f", r.VMSecondsLedger), fmt.Sprintf("%.2f", r.VMSecondsStateLog), "")

	check(r.VictimErrors == 0, "E17: victim saw %d request errors", r.VictimErrors)
	check(r.P99Ratio <= 1.25,
		"E17: victim stream p99 degraded %.2fx under the bulk flood (%.1fms -> %.1fms), want <= 1.25x",
		r.P99Ratio, r.SoloStreamP99Ms, r.LoadedStreamP99Ms)
	check(r.BulkThrottles >= 1, "E17: the bulk flood was never throttled")
	check(r.BulkHardFailures == 0 && r.BulkPublished == e17BulkUploads,
		"E17: bulk flood errored: %d published, %d hard failures", r.BulkPublished, r.BulkHardFailures)
	check(r.BulkProbeDenied, "E17: the past-quota probe upload was not refused")
	for _, row := range r.Tenants {
		check(row.XcodeSecondsLedger == row.XcodeSecondsExpected,
			"E17: %s transcode seconds %v != expected %v", row.Name, row.XcodeSecondsLedger, row.XcodeSecondsExpected)
		check(row.StoredBytesLedger == row.StoredBytesDB &&
			row.StoredBytesLedger == row.StoredBytesHDFS &&
			row.StoredBytesLedger == row.StoredBytesReserved && row.StoredBytesLedger > 0,
			"E17: %s stored bytes do not reconcile: ledger=%d db=%d hdfs=%d reserved=%d",
			row.Name, row.StoredBytesLedger, row.StoredBytesDB, row.StoredBytesHDFS, row.StoredBytesReserved)
		check(row.OvershootVMs == 0 && row.OvershootBytes == 0 && row.OvershootXcode == 0,
			"E17: %s overshot its quota: vms=%d bytes=%d xcode=%v",
			row.Name, row.OvershootVMs, row.OvershootBytes, row.OvershootXcode)
	}
	check(r.Tenants[0].EgressBytes > 0, "E17: no egress attributed to the victim's streams")
	check(r.VMSecondsLedger == r.VMSecondsStateLog && r.VMSecondsLedger > 0,
		"E17: vm-seconds %v != state log %v", r.VMSecondsLedger, r.VMSecondsStateLog)
	return t
}
