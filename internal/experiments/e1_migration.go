package experiments

import (
	"fmt"
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/migrate"
	"videocloud/internal/virt"
)

// runMigration migrates one VM and returns its report.
func runMigration(ramBytes int64, w virt.Workload, cfg migrate.Config, bandwidth float64) migrate.Report {
	r := newMigrationRig(bandwidth)
	vm := r.vm("vm", ramBytes, w)
	var rep migrate.Report
	m := migrate.New(r.sim, r.net)
	if err := m.Migrate(vm, r.dst, cfg, func(rp migrate.Report) { rep = rp }); err != nil {
		panic(fmt.Sprintf("experiments: migrate: %v", err))
	}
	r.sim.Run()
	return rep
}

// E1LiveMigration reproduces Figures 8-10: online live migration of a
// running VM between Node 3 and Node 2 over GbE, swept over RAM size and
// guest dirty rate. The paper shows the migration succeeding transparently;
// the quantitative shape (Clark et al., which the paper builds on) is that
// downtime stays tens of milliseconds while the dirty rate is well below
// link bandwidth, grows with the dirty rate, and degrades toward
// stop-and-copy once dirtying outruns the link (~125 MB/s here).
func E1LiveMigration() *metrics.Table {
	t := metrics.NewTable("E1 — live migration (pre-copy, 1 GbE), Figs 8-10",
		"ram_gb", "dirty_mb_s", "rounds", "total_s", "downtime_ms", "moved_gb", "reason")
	type pt struct {
		ramGB   int64
		dirtyMB int64
	}
	sweep := []pt{
		{1, 0}, {1, 10}, {1, 40}, {1, 80}, {1, 200},
		{2, 40}, {4, 40}, {8, 40},
	}
	var maxLowRate, highRate time.Duration
	for _, p := range sweep {
		var w virt.Workload = virt.IdleWorkload{}
		if p.dirtyMB > 0 {
			w = virt.UniformWriter{Rate: p.dirtyMB * mb}
		}
		rep := runMigration(p.ramGB*gb, w, migrate.Config{Algorithm: migrate.PreCopy}, 1e9/8)
		check(rep.Success, "E1: migration failed: %s", rep.Reason)
		t.AddRow(p.ramGB, p.dirtyMB, len(rep.Rounds), secs(rep.TotalTime),
			ms(rep.Downtime), float64(rep.TotalBytes)/float64(gb), rep.Reason)
		// A lightly dirtying guest stays "live": sub-second downtime.
		if p.dirtyMB <= 40 {
			check(rep.Downtime < time.Second, "E1: %v downtime for %d MB/s", rep.Downtime, p.dirtyMB)
			if p.ramGB == 1 && rep.Downtime > maxLowRate {
				maxLowRate = rep.Downtime
			}
		}
		if p.ramGB == 1 && p.dirtyMB == 200 {
			highRate = rep.Downtime
		}
	}
	// Shape: dirtying beyond link bandwidth (200 MB/s > ~125 MB/s) forces a
	// cut-over with far larger downtime than any converging case.
	check(highRate > 4*maxLowRate,
		"E1: over-bandwidth dirtying downtime %v not >> converging downtime %v", highRate, maxLowRate)
	return t
}

// E1bMigrationAlgorithms is the citation-level ablation behind the paper's
// references [20] (pre-copy) and [21] (post-copy): the three algorithms on
// an identical busy guest. Expected shape: stop-and-copy has catastrophic
// downtime, pre-copy cuts it by orders of magnitude at the price of re-sent
// pages, post-copy has the smallest downtime but a degraded post-resume
// window.
func E1bMigrationAlgorithms() *metrics.Table {
	t := metrics.NewTable("E1b — migration algorithm ablation (2 GiB VM, 40 MB/s hotspot writer)",
		"algorithm", "total_s", "downtime_ms", "moved_gb", "remote_faults", "degraded_ms")
	mk := func() virt.Workload { return virt.HotspotWriter{Rate: 40 * mb} }
	var reps [3]migrate.Report
	for i, alg := range []migrate.Algorithm{migrate.StopAndCopy, migrate.PreCopy, migrate.PostCopy} {
		rep := runMigration(2*gb, mk(), migrate.Config{Algorithm: alg}, 1e9/8)
		check(rep.Success, "E1b: %v failed: %s", alg, rep.Reason)
		reps[i] = rep
		t.AddRow(alg.String(), secs(rep.TotalTime), ms(rep.Downtime),
			float64(rep.TotalBytes)/float64(gb), rep.RemoteFaults, ms(rep.DegradedTime))
	}
	stop, pre, post := reps[0], reps[1], reps[2]
	check(pre.Downtime < stop.Downtime/10, "E1b: pre-copy downtime %v not << stop-and-copy %v",
		pre.Downtime, stop.Downtime)
	check(post.Downtime <= pre.Downtime, "E1b: post-copy downtime %v > pre-copy %v",
		post.Downtime, pre.Downtime)
	check(pre.TotalBytes > stop.TotalBytes, "E1b: pre-copy moved no extra pages")
	check(post.DegradedTime > 0, "E1b: post-copy shows no degradation window")
	return t
}
