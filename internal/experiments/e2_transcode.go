package experiments

import (
	"fmt"

	"videocloud/internal/metrics"
	"videocloud/internal/video"
)

// E2ParallelTranscode reproduces Figure 16 and the §III claim that
// distributed FFmpeg conversion "takes even less execution time than
// transferring files by FFmpeg on a single node". A 10-minute MPEG-4 upload
// is converted to the player's H.264/720p on 1..16 nodes. Expected shape:
// near-linear speedup at small node counts, flattening as per-segment
// scatter/gather overhead and the straggler segment dominate; output is
// verified bit-identical to single-node conversion at every point.
func E2ParallelTranscode() *metrics.Table {
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 1_500_000}
	dst := video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 2_000_000}
	data, err := video.Generate(src, 600, 2012)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	whole, err := video.Transcoder{}.Convert(data, dst)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}

	// Columns: the modelled schedule (parallel_s/speedup, deterministic —
	// these reproduce Figure 16) plus the measured wall clock of the real
	// worker pool (wall_ms/wall_speedup, hardware-dependent and reported
	// for information only: a single-core machine legitimately shows ~1×).
	t := metrics.NewTable("E2 — distributed FFmpeg conversion (10-min video, Fig 16)",
		"nodes", "segments", "parallel_s", "single_node_s", "speedup", "identical_output", "wall_ms", "wall_speedup")
	var prev float64
	var wallOneNode float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("dn%d", i)
		}
		res, err := video.Farm{Nodes: nodes}.Convert(data, dst)
		if err != nil {
			panic(fmt.Sprintf("experiments: farm: %v", err))
		}
		identical := len(res.Output) == len(whole.Output)
		if identical {
			for i := range res.Output {
				if res.Output[i] != whole.Output[i] {
					identical = false
					break
				}
			}
		}
		check(identical, "E2: %d-node output differs from single-node conversion", n)
		sp := res.Speedup()
		wallMs := float64(res.WallDuration.Milliseconds())
		if n == 1 {
			wallOneNode = float64(res.WallDuration)
		}
		wallSp := 0.0
		if res.WallDuration > 0 {
			wallSp = wallOneNode / float64(res.WallDuration)
		}
		t.AddRow(n, len(res.Segments), secs(res.Duration), secs(res.SingleNodeDuration), sp, identical, wallMs, wallSp)
		if n > 1 {
			check(sp > prev, "E2: speedup not monotone at %d nodes (%.2f <= %.2f)", n, sp, prev)
			check(sp > 1, "E2: %d nodes slower than one node", n)
		}
		prev = sp
	}
	return t
}
