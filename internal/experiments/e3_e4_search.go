package experiments

import (
	"fmt"
	"strings"
	"time"

	"videocloud/internal/hdfs"
	"videocloud/internal/mapred"
	"videocloud/internal/metrics"
	"videocloud/internal/search"
	"videocloud/internal/videodb"
)

// catalogDocs synthesizes a video-site catalog of n titled, described
// entries across a fixed topic mix.
func catalogDocs(n int) []search.Document {
	topics := []string{
		"music video pop dance korea", "cloud computing kvm opennebula lecture",
		"cooking recipe pasta italian kitchen", "travel vlog tokyo japan street",
		"gaming walkthrough boss fight strategy", "sports highlights football goal",
	}
	docs := make([]search.Document, n)
	for i := range docs {
		topic := topics[i%len(topics)]
		docs[i] = search.Document{
			ID:    int64(i + 1),
			Title: fmt.Sprintf("video %d %s", i+1, strings.Fields(topic)[0]),
			Body:  strings.Repeat(topic+" uploaded by user description tags ", 4),
		}
	}
	return docs
}

func indexRig(nodes int) (*hdfs.Cluster, *mapred.Engine) {
	c := hdfs.NewCluster(nodes, 256*1024)
	trackers := make([]string, nodes)
	for i := range trackers {
		trackers[i] = fmt.Sprintf("dn%d", i)
	}
	// Indexing tasks are small; scale the fixed task overhead down so the
	// experiment measures data parallelism, not JVM spawns.
	e, err := mapred.NewEngine(c, trackers, mapred.Config{TaskOverhead: 200 * time.Millisecond})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return c, e
}

// E3IndexConstruction reproduces the §I claim that MapReduce "sufficiently
// shorten[s] the time spent in searching indexes space construction": the
// same 3000-video catalog (with realistic page-sized descriptions) is
// indexed with 1..16 TaskTrackers over a fixed 48-shard corpus layout.
// Expected shape: construction time falls monotonically with trackers,
// flattening once wave count bottoms out, and the distributed index ranks
// queries identically to a directly built one.
func E3IndexConstruction() *metrics.Table {
	docs := catalogDocs(3000)
	// Realistic video pages carry more text than a one-line description;
	// pad the bodies so indexing is data-dominated, not task-overhead
	// dominated.
	for i := range docs {
		docs[i].Body = strings.Repeat(docs[i].Body, 8)
	}
	direct := search.NewIndex()
	for _, d := range docs {
		direct.Add(d)
	}
	t := metrics.NewTable("E3 — MapReduce index construction (3000 videos)",
		"trackers", "map_tasks", "local_maps", "build_s", "speedup")
	var base time.Duration
	var prev time.Duration
	for _, n := range []int{1, 2, 4, 8, 16} {
		cluster, engine := indexRig(n)
		// Constant shard layout: the input does not change with the
		// cluster size, only who processes it.
		paths, err := search.WriteCorpus(cluster.Client(""), "/corpus", docs, 3000/48+1, 2)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		ix, res, err := search.BuildIndexMR(engine, paths, "")
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		check(ix.Docs() == direct.Docs(), "E3: %d trackers indexed %d docs, want %d",
			n, ix.Docs(), direct.Docs())
		for _, q := range []string{"kvm cloud", "pasta", "tokyo street"} {
			a, b := ix.Search(q, 10), direct.Search(q, 10)
			check(len(a) == len(b), "E3: query %q hit count differs", q)
			for i := range a {
				check(a[i].Doc == b[i].Doc, "E3: query %q rank %d differs", q, i)
			}
		}
		if n == 1 {
			base = res.Duration
		} else {
			check(res.Duration < prev, "E3: %d trackers not faster than fewer", n)
		}
		prev = res.Duration
		t.AddRow(n, len(res.MapTasks), res.LocalMaps, secs(res.Duration),
			float64(base)/float64(res.Duration))
	}
	return t
}

// E4SearchVsScan reproduces the §III claim that the cloud search engine "is
// far [more] efficient than the traditional way which searches directly in
// the database": wall-clock query latency of the inverted index versus a
// MySQL-style LIKE full scan, swept over catalog size. Both paths are real
// code on real data; expected shape: the scan touches every row's text while
// the index touches only matching postings, so the index wins by a widening
// absolute margin at every catalog size.
func E4SearchVsScan() *metrics.Table {
	t := metrics.NewTable("E4 — index search vs direct DB scan",
		"videos", "index_us", "scan_us", "scan_over_index")
	queries := []string{"kvm", "pasta", "tokyo", "football", "dance"}
	for _, n := range []int{1000, 10000, 50000} {
		docs := catalogDocs(n)
		ix := search.NewIndex()
		db := videodb.New()
		if err := db.CreateTable("videos",
			videodb.Column{Name: "title", Type: videodb.TString},
			videodb.Column{Name: "description", Type: videodb.TString},
		); err != nil {
			panic(err)
		}
		for _, d := range docs {
			ix.Add(d)
			if _, err := db.Insert("videos", videodb.Row{"title": d.Title, "description": d.Body}); err != nil {
				panic(err)
			}
		}
		const rounds = 20
		start := time.Now()
		hits := 0
		for i := 0; i < rounds; i++ {
			for _, q := range queries {
				hits += len(ix.Search(q, 25))
			}
		}
		indexUS := float64(time.Since(start).Microseconds()) / float64(rounds*len(queries))
		check(hits > 0, "E4: index found nothing")

		start = time.Now()
		scanHits := 0
		for i := 0; i < rounds; i++ {
			for _, q := range queries {
				rows, err := db.ScanSubstring("videos", "description", q)
				if err != nil {
					panic(err)
				}
				scanHits += len(rows)
			}
		}
		scanUS := float64(time.Since(start).Microseconds()) / float64(rounds*len(queries))
		check(scanHits > 0, "E4: scan found nothing")

		ratio := scanUS / indexUS
		t.AddRow(n, indexUS, scanUS, ratio)
		check(ratio > 1.5, "E4: scan (%.0fus) not clearly slower than index (%.0fus) at %d videos",
			scanUS, indexUS, n)
	}
	return t
}
