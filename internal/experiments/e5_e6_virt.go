package experiments

import (
	"fmt"

	"videocloud/internal/metrics"
	"videocloud/internal/nebula"
	"videocloud/internal/virt"
)

// E5VirtOverhead quantifies the paper's §II-B discussion (Figures 1-2): the
// cost of full versus para-virtualization, plus native and KVM-with-VT
// reference points, on a CPU-bound and an I/O-bound guest benchmark.
// Expected shape: native < para < kvm-hw < full for both, with the gap far
// larger on I/O (device emulation) than on CPU.
func E5VirtOverhead() *metrics.Table {
	host := virt.NewHost("bench", 8, 1e9, 64*gb, 500*gb, 0)
	t := metrics.NewTable("E5 — virtualization overhead (Figs 1-2, §II-B)",
		"mode", "cpu_bench_s", "cpu_overhead_pct", "io_bench_s", "io_overhead_pct")
	const work = 60e9       // 60s of native single-vCPU compute
	const ioBytes = 12 * gb // 100s of native disk I/O at 120 MB/s
	var cpuBase, ioBase float64
	var prevCPU, prevIO float64
	for _, mode := range []virt.VirtMode{virt.Native, virt.ParaVirt, virt.HWAssist, virt.FullVirt} {
		vm, err := host.CreateVM(virt.VMConfig{
			Name: "bench-" + mode.String(), VCPUs: 1, MemoryBytes: 1 * gb, Mode: mode,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		cpu := vm.CPUTime(work).Seconds()
		io := vm.IOTime(ioBytes).Seconds()
		if mode == virt.Native {
			cpuBase, ioBase = cpu, io
		}
		t.AddRow(mode.String(), cpu, (cpu/cpuBase-1)*100, io, (io/ioBase-1)*100)
		if mode != virt.Native {
			check(cpu > prevCPU && io > prevIO,
				"E5: %v not slower than the previous mode", mode)
		}
		prevCPU, prevIO = cpu, io
	}
	// I/O suffers more than CPU under full virtualization.
	full, _ := host.CreateVM(virt.VMConfig{Name: "x", VCPUs: 1, MemoryBytes: 1 * gb, Mode: virt.FullVirt})
	cpuPct := full.CPUTime(work).Seconds()/cpuBase - 1
	ioPct := full.IOTime(ioBytes).Seconds()/ioBase - 1
	check(ioPct > cpuPct, "E5: I/O overhead (%.0f%%) not above CPU overhead (%.0f%%)",
		ioPct*100, cpuPct*100)
	return t
}

// placementCloud builds a cloud with the given policy, 16 hosts, and a
// registered image.
func placementCloud(policy nebula.Policy) *nebula.Cloud {
	c := nebula.New(nebula.Options{Policy: policy})
	for i := 0; i < 16; i++ {
		if _, err := c.AddHost(fmt.Sprintf("node%d", i), 16, 1e9, 32*gb, 1000*gb); err != nil {
			panic(err)
		}
	}
	if _, err := c.Catalog().Register("base", 2*gb, 1); err != nil {
		panic(err)
	}
	return c
}

// E6Placement exercises the Capacity Manager of §III-A ("adjusts VM
// placement based on a set of predefined policies"): 120 mixed VM requests
// against 16 hosts under each policy. Expected shape: packing powers the
// fewest hosts (the paper's "economize power" goal), striping uses all of
// them with the lowest memory imbalance, and every policy places every
// feasible request.
func E6Placement() *metrics.Table {
	t := metrics.NewTable("E6 — Capacity Manager placement policies (120 VMs / 16 hosts)",
		"policy", "placed", "hosts_used", "max_host_mem_gb", "mem_imbalance")
	type outcome struct {
		hostsUsed int
	}
	results := map[string]outcome{}
	for _, policy := range []nebula.Policy{nebula.PackingPolicy{}, nebula.StripingPolicy{}, nebula.LoadAwarePolicy{}} {
		c := placementCloud(policy)
		for i := 0; i < 120; i++ {
			tpl := nebula.Template{
				Name: fmt.Sprintf("vm%03d", i), VCPUs: 1 + i%2,
				MemoryBytes: int64(1+i%3) * gb, DiskBytes: 10 * gb,
				Image: "base", Workload: virt.IdleWorkload{},
			}
			if _, err := c.Submit(tpl); err != nil {
				panic(err)
			}
		}
		c.WaitIdle()
		check(c.PendingCount() == 0, "E6: %s left %d VMs pending", policy.Name(), c.PendingCount())
		used := 0
		var maxMem, minMem int64 = 0, 1 << 62
		for _, h := range c.Hosts() {
			_, mem, _ := h.Usage()
			if mem > 0 {
				used++
			}
			if mem > maxMem {
				maxMem = mem
			}
			if mem < minMem {
				minMem = mem
			}
		}
		imbalance := float64(maxMem-minMem) / float64(gb)
		t.AddRow(policy.Name(), 120, used, float64(maxMem)/float64(gb), imbalance)
		results[policy.Name()] = outcome{hostsUsed: used}
	}
	check(results["packing"].hostsUsed < results["striping"].hostsUsed,
		"E6: packing used %d hosts, striping %d — consolidation failed",
		results["packing"].hostsUsed, results["striping"].hostsUsed)
	check(results["striping"].hostsUsed == 16, "E6: striping used %d/16 hosts",
		results["striping"].hostsUsed)
	return t
}

// E6bProvisioning is the COW ablation of DESIGN.md: deployment latency of a
// VM whose disk is a qcow2-style copy-on-write clone versus a full copy of
// the 2 GiB base image ("multiple virtual machines using the same image",
// §II-C). Expected shape: COW provisioning is an order of magnitude faster
// because only metadata crosses the network.
func E6bProvisioning() *metrics.Table {
	t := metrics.NewTable("E6b — provisioning: COW clone vs full image copy",
		"disk_mode", "deploy_s")
	deploy := func(full bool) float64 {
		c := placementCloud(nebula.StripingPolicy{})
		id, err := c.Submit(nebula.Template{
			Name: "vm", VCPUs: 1, MemoryBytes: 1 * gb, DiskBytes: 10 * gb,
			Image: "base", FullClone: full, Workload: virt.IdleWorkload{},
		})
		if err != nil {
			panic(err)
		}
		c.WaitIdle()
		rec, err := c.VM(id)
		if err != nil {
			panic(err)
		}
		check(rec.State == nebula.Running, "E6b: full=%v state=%v (%s)", full, rec.State, rec.FailReason)
		return c.Now().Seconds()
	}
	cow := deploy(false)
	full := deploy(true)
	t.AddRow("cow-clone", cow)
	t.AddRow("full-copy", full)
	check(full > 1.3*cow, "E6b: full copy (%.1fs) not clearly slower than COW (%.1fs)", full, cow)
	return t
}
