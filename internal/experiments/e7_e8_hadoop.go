package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"videocloud/internal/hdfs"
	"videocloud/internal/mapred"
	"videocloud/internal/metrics"
)

// E7HDFSReplication reproduces the Figure 11 / §III fault-tolerance claim:
// replicas are stored "to lower damage risks caused by hosts". For each
// replication factor, a 16-block file is written across 6 datanodes, one
// datanode is killed, and the harness measures whether every byte is still
// readable and how many blocks the NameNode re-replicates. Expected shape:
// RF=1 loses data on the first failure; RF>=2 survives, with write
// amplification equal to RF and repair traffic bounded by the dead node's
// share of blocks.
func E7HDFSReplication() *metrics.Table {
	t := metrics.NewTable("E7 — HDFS replication & node failure (16-block file, 6 datanodes)",
		"rf", "write_amp", "readable_after_kill", "blocks_repaired", "fully_replicated_after_repair")
	const blockSize = 128 * 1024
	data := make([]byte, 16*blockSize)
	rand.New(rand.NewSource(7)).Read(data)
	for _, rf := range []int{1, 2, 3} {
		c := hdfs.NewCluster(6, blockSize)
		cl := c.Client("")
		if err := cl.WriteFile("/videos/film.vcf", data, rf); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		var stored int64
		for i := 0; i < 6; i++ {
			stored += c.DataNode(fmt.Sprintf("dn%d", i)).Used()
		}
		writeAmp := float64(stored) / float64(len(data))

		// Kill the datanode holding the most replicas of this file.
		blocks, _ := cl.BlockLocations("/videos/film.vcf")
		counts := map[string]int{}
		for _, b := range blocks {
			for _, loc := range b.Locations {
				counts[loc]++
			}
		}
		victim, max := "", -1
		for _, name := range c.NameNode().LiveDataNodes() {
			if counts[name] > max {
				victim, max = name, counts[name]
			}
		}
		c.KillDataNode(victim)
		got, err := cl.ReadFile("/videos/film.vcf")
		readable := err == nil && bytes.Equal(got, data)
		repaired := c.RepairAll()
		healthy := len(c.NameNode().UnderReplicated(rf)) == 0

		t.AddRow(rf, writeAmp, readable, repaired, healthy)
		check(writeAmp > float64(rf)-0.01 && writeAmp < float64(rf)+0.01,
			"E7: rf=%d write amplification %.2f", rf, writeAmp)
		if rf == 1 {
			check(!readable, "E7: rf=1 survived a node failure — replication experiment is broken")
		} else {
			check(readable, "E7: rf=%d lost data on one failure", rf)
			check(repaired > 0 && healthy, "E7: rf=%d repair incomplete (%d repaired)", rf, repaired)
		}
	}
	return t
}

// wordFile writes an ~nBytes text corpus and returns its true word counts.
func wordFile(c *hdfs.Cluster, path string, nBytes int) map[string]int {
	words := []string{"cloud", "video", "kvm", "hadoop", "nutch", "stream",
		"virtual", "machine", "nebula", "ffmpeg"}
	rng := rand.New(rand.NewSource(13))
	var b strings.Builder
	counts := map[string]int{}
	for b.Len() < nBytes {
		w := words[rng.Intn(len(words))]
		counts[w]++
		b.WriteString(w)
		if rng.Intn(12) == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	if err := c.Client("").WriteFile(path, []byte(b.String()), 2); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return counts
}

func wordCount(inputs []string) mapred.Job {
	return mapred.Job{
		Name:       "wordcount",
		InputPaths: inputs,
		Map: func(_ string, data []byte, emit func(k, v string)) error {
			for _, w := range strings.Fields(string(data)) {
				emit(w, "1")
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			sum := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				sum += n
			}
			emit(key, strconv.Itoa(sum))
			return nil
		},
	}
}

// E8MapReduceScaling reproduces Figure 12 and the §III-B locality argument:
// "each node reads the data stored in itself ... to avoid massive
// transmission". A wordcount over a 4 MiB corpus runs on 1..16 trackers,
// plus a locality-disabled ablation at 8 trackers. Expected shape: job time
// falls with trackers; with locality enabled most map tasks read local
// blocks; disabling locality slows the same job down.
func E8MapReduceScaling() *metrics.Table {
	t := metrics.NewTable("E8 — MapReduce scaling & data locality (Fig 12)",
		"trackers", "locality", "map_tasks", "local_frac", "job_s", "speedup")
	// 32 MiB over 1 MiB blocks with Hadoop-era constants scaled so task
	// time is data-dominated: a remote split pays a visible network toll.
	const corpusBytes = 32 << 20
	cfg := mapred.Config{
		TaskOverhead:  100 * time.Millisecond,
		MapThroughput: 30e6, NetBandwidth: 40e6,
	}
	run := func(n int, disableLocality bool) (*mapred.JobResult, map[string]int) {
		c := hdfs.NewCluster(n, 1<<20)
		want := wordFile(c, "/corpus.txt", corpusBytes)
		trackers := make([]string, n)
		for i := range trackers {
			trackers[i] = fmt.Sprintf("dn%d", i)
		}
		runCfg := cfg
		runCfg.DisableLocality = disableLocality
		e, err := mapred.NewEngine(c, trackers, runCfg)
		if err != nil {
			panic(err)
		}
		res, err := e.Run(wordCount([]string{"/corpus.txt"}))
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return res, want
	}
	var base, prev float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		res, want := run(n, false)
		// Correctness at every scale.
		got := map[string]int{}
		for _, kv := range res.Output {
			c, _ := strconv.Atoi(kv.Value)
			got[kv.Key] = c
		}
		for w, c := range want {
			check(got[w] == c, "E8: %d trackers count[%s]=%d, want %d", n, w, got[w], c)
		}
		local := float64(res.LocalMaps) / float64(len(res.MapTasks))
		if n == 1 {
			base = secs(res.Duration)
		} else {
			check(secs(res.Duration) < prev, "E8: %d trackers not faster", n)
		}
		prev = secs(res.Duration)
		t.AddRow(n, "on", len(res.MapTasks), local, secs(res.Duration), base/secs(res.Duration))
	}
	// Ablation: locality off at 8 trackers.
	resOn, _ := run(8, false)
	resOff, _ := run(8, true)
	t.AddRow(8, "off", len(resOff.MapTasks),
		float64(resOff.LocalMaps)/float64(len(resOff.MapTasks)),
		secs(resOff.Duration), base/secs(resOff.Duration))
	check(resOff.Duration > resOn.Duration,
		"E8: disabling locality did not slow the job (%v vs %v)", resOff.Duration, resOn.Duration)
	check(resOn.LocalMaps > resOff.LocalMaps, "E8: locality scheduler found no extra local maps")
	return t
}
