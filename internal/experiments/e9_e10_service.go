package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"videocloud/internal/core"
	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/metrics"
	"videocloud/internal/nebula"
	"videocloud/internal/stream"
	"videocloud/internal/video"
	"videocloud/internal/web"
)

// browserFor returns a cookie-keeping client against handler.
func browserFor(handler http.Handler) (*http.Client, *httptest.Server) {
	srv := httptest.NewServer(handler)
	jar, _ := cookiejar.New(nil)
	return &http.Client{Jar: jar}, srv
}

func mustPost(c *http.Client, u string, form url.Values) *http.Response {
	resp, err := c.PostForm(u, form)
	if err != nil {
		panic(fmt.Sprintf("experiments: POST %s: %v", u, err))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func mustGet(c *http.Client, u string) (int, string) {
	resp, err := c.Get(u)
	if err != nil {
		panic(fmt.Sprintf("experiments: GET %s: %v", u, err))
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// E9EndToEnd walks the whole Figures 17-23 user journey against a running
// site — register, verify, log in, upload a 2-minute video (converted in
// parallel, stored in HDFS), search for it, and stream it with a time-bar
// seek — recording the wall-clock latency of each step plus the modelled
// parallel-conversion time. Expected shape: every step succeeds; parallel
// conversion beats the single-node model; playback fetches only a fraction
// of the file despite the seek.
func E9EndToEnd() *metrics.Table {
	t := metrics.NewTable("E9 — end-to-end user journey (Figs 17-23)",
		"step", "result", "wall_ms")
	cluster := hdfs.NewCluster(4, 1<<20)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		panic(err)
	}
	site, err := web.New(web.Config{
		Store:  mount,
		Farm:   video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target: video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 500_000},
	})
	if err != nil {
		panic(err)
	}
	c, srv := browserFor(site)
	defer srv.Close()

	step := func(name string, fn func() string) {
		start := time.Now()
		result := fn()
		t.AddRow(name, result, ms(time.Since(start)))
	}

	step("register+verify", func() string {
		resp := mustPost(c, srv.URL+"/register", url.Values{
			"username": {"alice"}, "password": {"pw"}, "email": {"a@x"},
		})
		link := resp.Header.Get("X-Verification-Link")
		check(link != "", "E9: no verification link")
		code, _ := mustGet(c, srv.URL+link)
		check(code == 200, "E9: verify failed (%d)", code)
		return "ok"
	})
	step("login", func() string {
		resp := mustPost(c, srv.URL+"/login", url.Values{"username": {"alice"}, "password": {"pw"}})
		check(resp.StatusCode == 200, "E9: login failed")
		return "ok"
	})
	var videoID int64
	step("upload+convert+store", func() string {
		src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 300_000}
		data, gerr := video.Generate(src, 120, 2012)
		check(gerr == nil, "E9: generate: %v", gerr)
		alice, aerr := site.DB().SelectOne("users", "username", "alice")
		check(aerr == nil, "E9: no alice row")
		id, uerr := site.ProcessUpload(context.Background(), alice["id"].(int64), "Nobody music video", "pop dance cover", data)
		check(uerr == nil, "E9: upload: %v", uerr)
		videoID = id
		speedup := site.Metrics().Histogram("conversion_speedup").Mean()
		check(speedup > 1, "E9: parallel conversion speedup %.2f <= 1", speedup)
		return fmt.Sprintf("conversion speedup %.1fx", speedup)
	})
	step("search", func() string {
		code, body := mustGet(c, srv.URL+"/search?q=nobody")
		check(code == 200 && strings.Contains(body, "Nobody music video"), "E9: search miss")
		return "1 hit"
	})
	var fetched, size int64
	step("stream+seek", func() string {
		p := &stream.Player{HTTP: c}
		rep, perr := p.Play(fmt.Sprintf("%s/stream/%d", srv.URL, videoID), []float64{0.75}, nil)
		check(perr == nil, "E9: playback: %v", perr)
		fetched, size = rep.BytesFetched, rep.Size
		return fmt.Sprintf("fetched %dKB of %dKB", fetched>>10, size>>10)
	})
	check(fetched < size/2, "E9: seeking still fetched %d of %d bytes", fetched, size)
	// The serving tier's own per-route instrumentation for the journey just
	// driven (register, verify, login, search, stream).
	for _, rs := range site.RouteStats() {
		if rs.Requests == 0 {
			continue
		}
		t.AddRow("· route "+rs.Route,
			fmt.Sprintf("n=%d p50=%.2fms p99=%.2fms", rs.Requests, rs.Latency.P50*1000, rs.Latency.P99*1000))
	}
	return t
}

// E10FullStack reproduces the paper's headline integration (Figures 6, 13,
// 14 plus 8-10 combined): the entire video service runs inside VMs that the
// IaaS placed, and the web-server VM is live-migrated while a viewer is
// streaming. Expected shape: the service group deploys on the simulated
// testbed in minutes of virtual time, uploads/search/playback all work from
// VM-hosted HDFS, migration succeeds with sub-second downtime, and playback
// still works afterwards.
func E10FullStack() *metrics.Table {
	t := metrics.NewTable("E10 — full stack on the IaaS (Figs 6, 13, 14 + live migration)",
		"phase", "value")
	vc, err := core.New(core.Config{PhysicalHosts: 4, DataVMs: 3})
	if err != nil {
		panic(fmt.Sprintf("experiments: boot: %v", err))
	}
	st := vc.Status()
	check(len(st.VMs) == 5, "E10: %d VMs", len(st.VMs))
	for _, vm := range st.VMs {
		check(vm.State == nebula.Running, "E10: %s is %v", vm.Name, vm.State)
	}
	t.AddRow("virtual boot time", fmt.Sprintf("%.0fs for %d VMs on %d hosts",
		st.VirtualNow.Seconds(), len(st.VMs), st.Hosts))

	c, srv := browserFor(vc.Handler())
	defer srv.Close()
	mustPost(c, srv.URL+"/login", url.Values{"username": {"admin"}, "password": {"admin"}})
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000}
	data, _ := video.Generate(src, 60, 7)
	id, err := vc.Site().ProcessUpload(context.Background(), 1, "Full stack stream", "served from VM-hosted HDFS", data)
	check(err == nil, "E10: upload: %v", err)
	t.AddRow("upload", "converted on data VMs, stored in VM-hosted HDFS")

	res, err := vc.ReindexMR()
	check(err == nil, "E10: reindex: %v", err)
	t.AddRow("MapReduce re-index", fmt.Sprintf("%d map tasks, %.1fs modelled", len(res.MapTasks), res.Duration.Seconds()))
	_, body := mustGet(c, srv.URL+"/search?q=full+stack")
	check(strings.Contains(body, "Full stack stream"), "E10: search miss after reindex")

	p := &stream.Player{HTTP: c}
	streamURL := fmt.Sprintf("%s/stream/%d", srv.URL, id)
	if _, err := p.Play(streamURL, []float64{0.5}, nil); err != nil {
		panic(fmt.Sprintf("experiments: pre-migration playback: %v", err))
	}

	// Live-migrate the web VM to another host mid-service.
	rec, _ := vc.Cloud().VM(vc.WebVMID())
	var dst string
	for _, h := range vc.Cloud().Hosts() {
		if h.Name != rec.HostName && h.CanFit(rec.VM.Config) {
			dst = h.Name
			break
		}
	}
	check(dst != "", "E10: no migration destination")
	rep, err := vc.MigrateWebVM(dst)
	check(err == nil && rep.Success, "E10: migration failed: %v", err)
	check(rep.Downtime < time.Second, "E10: downtime %v", rep.Downtime)
	t.AddRow("live migration of web VM", fmt.Sprintf("%s→%s, downtime %.0fms, total %.1fs",
		rep.Src, rep.Dst, ms(rep.Downtime), rep.TotalTime.Seconds()))

	if _, err := p.Play(streamURL, []float64{0.9}, nil); err != nil {
		panic(fmt.Sprintf("experiments: post-migration playback: %v", err))
	}
	t.AddRow("playback after migration", "ok (seek to 90% succeeded)")

	repaired, err := vc.KillDataVM(0)
	check(err == nil, "E10: kill data VM: %v", err)
	if _, err := p.Play(streamURL, nil, nil); err != nil {
		panic(fmt.Sprintf("experiments: playback after data VM death: %v", err))
	}
	t.AddRow("data VM failure", fmt.Sprintf("%d blocks re-replicated, playback ok", repaired))
	return t
}
