package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
	"videocloud/internal/metrics"
	"videocloud/internal/stream"
	"videocloud/internal/video"
	"videocloud/internal/web"
)

// E9bConcurrentLoad stresses the running site with concurrent scripted
// viewers — the operating regime the paper's conclusion gestures at ("with
// the scalability of cloud hosting, streaming a video can become
// seamless"). A pre-seeded catalog is hammered by 1..32 concurrent users,
// each looping home → search → watch-page → stream-with-seek. Expected
// shape: zero errors at every concurrency level and throughput sustained
// within a constant factor of the single-user rate (no lock convoy or
// serial bottleneck collapse; absolute scaling depends on host cores).
// After the sweep, the site's own serving-path instrumentation is appended
// as one row per route (server-side p50/p99, cumulative over all levels).
func E9bConcurrentLoad() *metrics.Table {
	t := metrics.NewTable("E9b — concurrent viewer load",
		"users", "requests", "req_per_s", "errors", "p50_ms", "p99_ms")
	cluster := hdfs.NewCluster(4, 1<<20)
	mount, err := fusebridge.New(cluster.Client(""), "/site", 2)
	if err != nil {
		panic(err)
	}
	site, err := web.New(web.Config{
		Store:  mount,
		Farm:   video.Farm{Nodes: []string{"dn0", "dn1", "dn2", "dn3"}},
		Target: video.Spec{Codec: video.H264, Res: video.R720p, FPS: 30, GOPSeconds: 2, BitrateBps: 200_000},
	})
	if err != nil {
		panic(err)
	}
	// Seed a small catalog as the admin (user id 1).
	src := video.Spec{Codec: video.MPEG4, Res: video.R480p, FPS: 30, GOPSeconds: 2, BitrateBps: 100_000}
	var ids []int64
	for i := 0; i < 6; i++ {
		data, gerr := video.Generate(src, 30, uint64(i+1))
		if gerr != nil {
			panic(gerr)
		}
		id, uerr := site.ProcessUpload(context.Background(), 1, fmt.Sprintf("load video %d dance cloud", i),
			"seeded for the load test", data)
		if uerr != nil {
			panic(uerr)
		}
		ids = append(ids, id)
	}
	srv := newLocalServer(site)
	defer srv.close()

	var baseline float64
	for _, users := range []int{1, 4, 8, 16, 32} {
		requests, errs, p50, p99, elapsed := runViewers(srv.url, ids, users, 60)
		rps := float64(requests) / elapsed.Seconds()
		t.AddRow(users, requests, rps, errs, p50, p99)
		check(errs == 0, "E9b: %d users produced %d errors", users, errs)
		if users == 1 {
			baseline = rps
		} else {
			check(rps > baseline*0.4,
				"E9b: throughput collapsed at %d users (%.0f vs %.0f rps)", users, rps, baseline)
		}
	}
	// Per-route serving-path metrics, as recorded by the site itself. The
	// errors column carries the 5xx count; req_per_s does not apply.
	for _, rs := range site.RouteStats() {
		if rs.Requests == 0 {
			continue
		}
		t.AddRow("· "+rs.Route, rs.Requests, "", rs.Status5xx,
			rs.Latency.P50*1000, rs.Latency.P99*1000)
		check(rs.Status5xx == 0, "E9b: route %s served %d 5xx", rs.Route, rs.Status5xx)
	}
	hits := site.Metrics().Counter("cache_recent_hits").Value()
	misses := site.Metrics().Counter("cache_recent_misses").Value()
	check(hits > misses, "E9b: home cache ineffective (%d hits vs %d misses)", hits, misses)
	return t
}

// runViewers drives `users` goroutines, each performing `loops` iterations
// of the home→search→watch→stream script, and returns totals.
func runViewers(baseURL string, ids []int64, users, loops int) (req int64, errs int64, p50ms, p99ms float64, elapsed time.Duration) {
	lat := metrics.NewHistogram()
	var reqCount, errCount atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			client := &http.Client{}
			p := &stream.Player{HTTP: client, ChunkBytes: 32 << 10}
			do := func(fn func() error) {
				t0 := time.Now()
				err := fn()
				lat.ObserveDuration(time.Since(t0))
				reqCount.Add(1)
				if err != nil {
					errCount.Add(1)
				}
			}
			get := func(path string) error {
				resp, err := client.Get(baseURL + path)
				if err != nil {
					return err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					return fmt.Errorf("status %d for %s", resp.StatusCode, path)
				}
				return nil
			}
			for i := 0; i < loops; i++ {
				id := ids[(u+i)%len(ids)]
				do(func() error { return get("/") })
				do(func() error { return get("/search?q=" + url.QueryEscape("dance cloud")) })
				do(func() error { return get(fmt.Sprintf("/watch/%d", id)) })
				do(func() error {
					seek := float64((u+i)%9) / 10
					_, err := p.Play(fmt.Sprintf("%s/stream/%d", baseURL, id), []float64{seek}, nil)
					return err
				})
			}
		}(u)
	}
	wg.Wait()
	elapsed = time.Since(start)
	return reqCount.Load(), errCount.Load(),
		lat.Quantile(0.5) * 1000, lat.Quantile(0.99) * 1000, elapsed
}

// localServer is a minimal httptest.Server replacement so the experiments
// package stays importable from non-test code.
type localServer struct {
	url   string
	close func()
}

func newLocalServer(h http.Handler) *localServer {
	srv := &http.Server{Handler: h}
	ln, err := listenLoopback()
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	return &localServer{
		url:   "http://" + ln.Addr().String(),
		close: func() { srv.Close() },
	}
}

func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
