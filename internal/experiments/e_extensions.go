package experiments

import (
	"fmt"
	"time"

	"videocloud/internal/hdfs"
	"videocloud/internal/mapred"
	"videocloud/internal/metrics"
	"videocloud/internal/migrate"
	"videocloud/internal/nebula"
	"videocloud/internal/virt"
)

// E1cMigrationUnderContention extends E1 with a realistic complication the
// paper's testbed would face: the migration link is shared with the video
// service's own traffic. A 2 GiB VM migrates while 0-3 background bulk
// flows leave the same source NIC. Expected shape: total migration time
// grows as the fair-share bandwidth drops, while downtime stays bounded
// (the stop-and-copy phase is short regardless).
func E1cMigrationUnderContention() *metrics.Table {
	t := metrics.NewTable("E1c — live migration under background traffic (2 GiB VM, 1 GbE)",
		"background_flows", "total_s", "downtime_ms", "moved_gb")
	var prev time.Duration
	for _, flows := range []int{0, 1, 2, 3} {
		r := newMigrationRig(1e9 / 8)
		// Sink hosts for the background traffic.
		for i := 0; i < flows; i++ {
			r.net.AddHost(fmt.Sprintf("sink%d", i), 1e9/8, 1e9/8, 100*time.Microsecond)
		}
		vm := r.vm("vm", 2*gb, virt.HotspotWriter{Rate: 20 * mb})
		// Long-running bulk transfers from the migration source.
		for i := 0; i < flows; i++ {
			if _, err := r.net.Transfer(r.src.Name, fmt.Sprintf("sink%d", i), 64*gb, nil); err != nil {
				panic(err)
			}
		}
		var rep migrate.Report
		done := false
		m := migrate.New(r.sim, r.net)
		if err := m.Migrate(vm, r.dst, migrate.Config{Algorithm: migrate.PreCopy},
			func(rp migrate.Report) { rep = rp; done = true }); err != nil {
			panic(err)
		}
		r.sim.RunWhile(func() bool { return !done })
		check(rep.Success, "E1c: %d flows: %s", flows, rep.Reason)
		t.AddRow(flows, secs(rep.TotalTime), ms(rep.Downtime), float64(rep.TotalBytes)/float64(gb))
		if flows > 0 {
			check(rep.TotalTime > prev,
				"E1c: %d flows not slower than %d (%v <= %v)", flows, flows-1, rep.TotalTime, prev)
		}
		check(rep.Downtime < 2*time.Second, "E1c: downtime %v under contention", rep.Downtime)
		prev = rep.TotalTime
	}
	return t
}

// E8bSpeculativeExecution is the straggler ablation: the same wordcount on
// a 4-node cluster where one node is 4x degraded, with Hadoop-style
// speculative execution off and on. Expected shape: the degraded node
// stretches the job; speculation claws most of the stretch back by
// re-running the stragglers on healthy nodes; output is identical.
func E8bSpeculativeExecution() *metrics.Table {
	t := metrics.NewTable("E8b — speculative execution vs a 4x-degraded node",
		"cluster", "speculative", "backups", "job_s")
	const corpusBytes = 16 << 20
	run := func(degraded, speculative bool) *mapred.JobResult {
		c := hdfs.NewCluster(4, 1<<20)
		wordFile(c, "/corpus.txt", corpusBytes)
		cfg := mapred.Config{
			TaskOverhead:  100 * time.Millisecond,
			MapThroughput: 30e6, NetBandwidth: 40e6,
			SpeculativeExecution: speculative,
		}
		if degraded {
			cfg.TrackerSpeeds = map[string]float64{"dn0": 0.25}
		}
		e, err := mapred.NewEngine(c, []string{"dn0", "dn1", "dn2", "dn3"}, cfg)
		if err != nil {
			panic(err)
		}
		res, err := e.Run(wordCount([]string{"/corpus.txt"}))
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return res
	}
	healthy := run(false, false)
	slow := run(true, false)
	spec := run(true, true)
	t.AddRow("healthy", false, 0, secs(healthy.Duration))
	t.AddRow("1 node 4x slow", false, slow.SpeculativeTasks, secs(slow.Duration))
	t.AddRow("1 node 4x slow", true, spec.SpeculativeTasks, secs(spec.Duration))
	check(slow.Duration > healthy.Duration, "E8b: degraded node did not slow the job")
	check(spec.SpeculativeTasks > 0, "E8b: no backups launched")
	check(spec.Duration < slow.Duration,
		"E8b: speculation did not help (%v >= %v)", spec.Duration, slow.Duration)
	// Identical answers.
	check(len(spec.Output) == len(slow.Output), "E8b: output size differs")
	for i := range spec.Output {
		check(spec.Output[i] == slow.Output[i], "E8b: output differs at %d", i)
	}
	return t
}

// E6cConsolidation measures the paper's "economize power" goal as an
// operation on a running cloud: 8 small VMs striped across 8 hosts are
// live-migration-consolidated; freed hosts could be powered down. Expected
// shape: most hosts empty after the pass and every VM stays Running.
func E6cConsolidation() *metrics.Table {
	t := metrics.NewTable("E6c — power-saving consolidation via live migration",
		"phase", "hosts_in_use", "empty_hosts", "vms_running")
	c := placementCloud(nebula.StripingPolicy{})
	for i := 0; i < 8; i++ {
		if _, err := c.Submit(nebula.Template{
			Name: fmt.Sprintf("svc%d", i), VCPUs: 2, MemoryBytes: 2 * gb,
			DiskBytes: 10 * gb, Image: "base", Workload: virt.IdleWorkload{},
		}); err != nil {
			panic(err)
		}
	}
	c.WaitIdle()
	inUse := func() (int, int, int) {
		empty := len(c.EmptyHosts())
		running := 0
		for _, info := range c.Snapshot() {
			if info.State == nebula.Running {
				running++
			}
		}
		return len(c.Hosts()) - empty, empty, running
	}
	u, e, run0 := inUse()
	t.AddRow("striped", u, e, run0)
	check(u >= 8, "E6c: striping used only %d hosts", u)

	plan := c.Consolidate()
	c.WaitIdle()
	// A second pass finishes any chains the first enabled.
	c.Consolidate()
	c.WaitIdle()
	u2, e2, run2 := inUse()
	t.AddRow(fmt.Sprintf("after consolidation (%d moves)", len(plan.Moves)), u2, e2, run2)
	check(run2 == run0, "E6c: consolidation lost VMs (%d -> %d)", run0, run2)
	check(e2 > e, "E6c: no hosts freed")
	check(u2 < u, "E6c: hosts in use did not shrink (%d -> %d)", u, u2)
	return t
}
