package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestEdgeBench runs the E15 viewer sweep and live phase and gates the
// offload and staleness shape; with EDGE_BENCH_OUT set (the `make edge`
// target), the rows land in BENCH_edge.json for comparison across PRs.
func TestEdgeBench(t *testing.T) {
	rows, live := runEdgeDelivery()
	for _, r := range rows {
		t.Logf("viewers=%d sessions=%d segments=%d errors=%d seg_req=%d origin=%d offload=%.1f%% rebuffer=%.2f%% switches=%d",
			r.Viewers, r.Sessions, r.Segments, r.Errors, r.SegRequests,
			r.SegOrigin, r.OffloadPct, r.RebufferPct, r.Switches)
		if r.Errors != 0 {
			t.Errorf("%d viewers: %d errors", r.Viewers, r.Errors)
		}
		if r.Segments != 12*r.Sessions {
			t.Errorf("%d viewers: %d segments over %d sessions, want %d",
				r.Viewers, r.Segments, r.Sessions, 12*r.Sessions)
		}
	}
	top := rows[len(rows)-1]
	if top.OffloadPct < 90 {
		t.Errorf("edge tier absorbed %.1f%% of segment requests at peak fan-out, want >= 90%%", top.OffloadPct)
	}
	if top.SegOrigin > rows[0].SegOrigin {
		t.Errorf("origin reads grew with fan-out: %d cold -> %d warm", rows[0].SegOrigin, top.SegOrigin)
	}

	t.Logf("live: viewers=%d pushed=%d segments=%d errors=%d max_lag=%d end_reached=%d",
		live.Viewers, live.Pushed, live.Segments, live.Errors, live.MaxLiveLag, live.EndReached)
	if live.Errors != 0 {
		t.Errorf("live phase: %d errors", live.Errors)
	}
	if live.EndReached != live.Viewers {
		t.Errorf("only %d of %d live viewers reached the end marker", live.EndReached, live.Viewers)
	}
	if live.MaxLiveLag > 6 {
		t.Errorf("a live viewer fell %d segments behind the edge, want <= 6", live.MaxLiveLag)
	}

	if out := os.Getenv("EDGE_BENCH_OUT"); out != "" {
		report := struct {
			Rows []EdgeRow `json:"rows"`
			Live LiveRow   `json:"live"`
		}{rows, live}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("edge report: %s", out)
	}
}
