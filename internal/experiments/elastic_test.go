package experiments

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"
)

// TestElasticBench runs the E16 elasticity scenario and gates its robustness
// contract; with ELASTIC_BENCH_OUT set (the `make elastic` target), the
// report lands in BENCH_elastic.json for comparison across PRs.
func TestElasticBench(t *testing.T) {
	r := runElasticity()
	for _, w := range r.Windows {
		t.Logf("%-16s load=%6.1f fleet=%4.1f max=%2d out=%d in=%d freeze=%d",
			w.Phase, w.AvgLoad, w.AvgFleet, w.MaxFleet, w.Outs, w.Ins, w.Freezes)
	}
	t.Logf("jobs: accepted=%.0f completed=%.0f requeued=%.1f leftover=%.3f",
		r.AcceptedJobs, r.CompletedJobs, r.RequeuedJobs, r.LeftoverJobs)
	t.Logf("drains: started=%d completed=%d expired=%d reclaims=%d",
		r.DrainsStarted, r.DrainsCompleted, r.DrainsExpired, r.Reclaims)
	t.Logf("control: absorb=%.0fs flips=%d thrash=%d freezes=%d",
		r.SpikeAbsorbSecs, r.Flips, r.Thrash, r.Freezes)
	t.Logf("rebalance: spread %.2f -> %.2f in %d moves / %d passes",
		r.SpreadBefore, r.SpreadAfter, r.RebalanceMoves, r.RebalancePasses)

	// Zero lost transcodes: the job ledger balances exactly, with at least
	// five scale-down drains and a crash-requeue in the mix.
	if math.Abs(r.AcceptedJobs-r.CompletedJobs) > 1e-3 || r.LeftoverJobs > 1e-3 {
		t.Errorf("jobs lost: accepted=%.3f completed=%.3f leftover=%.3f",
			r.AcceptedJobs, r.CompletedJobs, r.LeftoverJobs)
	}
	if r.DrainsStarted < 5 {
		t.Errorf("only %d scale-down drains, want >= 5", r.DrainsStarted)
	}
	if r.DrainsCompleted+r.DrainsExpired < r.DrainsStarted {
		t.Errorf("drain ledger: %d started, %d completed, %d expired",
			r.DrainsStarted, r.DrainsCompleted, r.DrainsExpired)
	}
	if r.RequeuedJobs <= 0 {
		t.Error("the host crash requeued nothing")
	}
	// Spike absorbed: utilization returns inside the band within 30 minutes
	// of the flash crowd landing, with the fleet actually scaled out.
	if r.SpikeAbsorbSecs < 0 || r.SpikeAbsorbSecs > (30*time.Minute).Seconds() {
		t.Errorf("flash crowd not absorbed within 30min (absorb=%.0fs)", r.SpikeAbsorbSecs)
	}
	if r.PeakFleet < 8 {
		t.Errorf("peak fleet = %d, want >= 8 under the burst", r.PeakFleet)
	}
	// Anti-thrash: zero thrash events and at most one direction flip per
	// cooldown window; the controller froze during crash recovery.
	if r.Thrash != 0 {
		t.Errorf("fleet thrashed %d times", r.Thrash)
	}
	if float64(r.Flips) > r.FlipWindows {
		t.Errorf("%d direction flips over %.0f cooldown windows", r.Flips, r.FlipWindows)
	}
	if r.Freezes < 1 {
		t.Error("controller never froze during host-failure recovery")
	}
	// Rebalance: the fresh host absorbs load until the spread levels out.
	if r.RebalanceMoves < 1 || r.SpreadAfter > 0.25 || r.SpreadAfter >= r.SpreadBefore {
		t.Errorf("rebalance: spread %.2f -> %.2f in %d moves",
			r.SpreadBefore, r.SpreadAfter, r.RebalanceMoves)
	}

	if out := os.Getenv("ELASTIC_BENCH_OUT"); out != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("elastic report: %s", out)
	}
}
