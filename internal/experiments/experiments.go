// Package experiments contains the reproduction harnesses for every figure
// and in-text performance claim of the paper (DESIGN.md §4, EXPERIMENTS.md).
// Each E* function builds its workload, runs it, and returns an aligned
// table whose rows are recorded in EXPERIMENTS.md; cmd/benchcloud prints
// them all and the root bench_test.go wraps each in a testing.B benchmark
// that also asserts the expected qualitative shape.
package experiments

import (
	"fmt"
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/simnet"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

const (
	gb = int64(1) << 30
	mb = int64(1) << 20
)

// ms renders a duration as fractional milliseconds for table rows.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// secs renders a duration as fractional seconds for table rows.
func secs(d time.Duration) float64 { return d.Seconds() }

// migrationRig builds two GbE-connected hosts for migration experiments.
type migrationRig struct {
	sim *simtime.Simulator
	net *simnet.Network
	src *virt.Host
	dst *virt.Host
}

func newMigrationRig(bandwidth float64) *migrationRig {
	sim := simtime.NewSimulator()
	net := simnet.New(sim)
	net.AddHost("node2", bandwidth, bandwidth, 100*time.Microsecond)
	net.AddHost("node3", bandwidth, bandwidth, 100*time.Microsecond)
	return &migrationRig{
		sim: sim, net: net,
		src: virt.NewHost("node3", 8, 1e9, 64*gb, 500*gb, 0),
		dst: virt.NewHost("node2", 8, 1e9, 64*gb, 500*gb, 0),
	}
}

func (r *migrationRig) vm(name string, memBytes int64, w virt.Workload) *virt.VM {
	vm, err := r.src.CreateVM(virt.VMConfig{
		Name: name, VCPUs: 2, MemoryBytes: memBytes, DiskBytes: 10 * gb, Mode: virt.HWAssist,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	vm.Workload = w
	if err := vm.Start(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return vm
}

// check panics with a labelled message when an experiment invariant fails;
// benchmarks convert this into a test failure.
func check(cond bool, format string, args ...any) {
	if !cond {
		panic("experiments: shape violation: " + fmt.Sprintf(format, args...))
	}
}

// All runs every experiment and returns the tables in order. It is what
// cmd/benchcloud prints.
func All() []*metrics.Table {
	return []*metrics.Table{
		E1LiveMigration(),
		E1bMigrationAlgorithms(),
		E1cMigrationUnderContention(),
		E2ParallelTranscode(),
		E3IndexConstruction(),
		E4SearchVsScan(),
		E5VirtOverhead(),
		E6Placement(),
		E6bProvisioning(),
		E6cConsolidation(),
		E7HDFSReplication(),
		E8MapReduceScaling(),
		E8bSpeculativeExecution(),
		E9EndToEnd(),
		E9bConcurrentLoad(),
		E10FullStack(),
		E11AutoScaling(),
		E13CriticalPath(),
		E14ServingScale(),
		E15EdgeDelivery(),
		E16Elasticity(),
		E17Tenancy(),
	}
}
