package experiments

import (
	"strings"
	"testing"

	"videocloud/internal/metrics"
)

// runExp executes an experiment, converting shape-violation panics into
// test failures.
func runExp(t *testing.T, name string, fn func() *metrics.Table) *metrics.Table {
	t.Helper()
	var tbl *metrics.Table
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s panicked: %v", name, r)
			}
		}()
		tbl = fn()
	}()
	if tbl == nil || tbl.Rows() == 0 {
		t.Fatalf("%s produced no rows", name)
	}
	if !strings.Contains(tbl.String(), "==") {
		t.Fatalf("%s table missing title", name)
	}
	return tbl
}

func TestE1LiveMigration(t *testing.T) {
	tbl := runExp(t, "E1", E1LiveMigration)
	if tbl.Rows() != 8 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE1bAlgorithms(t *testing.T) {
	tbl := runExp(t, "E1b", E1bMigrationAlgorithms)
	out := tbl.String()
	for _, alg := range []string{"pre-copy", "post-copy", "stop-and-copy"} {
		if !strings.Contains(out, alg) {
			t.Fatalf("missing %s:\n%s", alg, out)
		}
	}
}

func TestE1cContention(t *testing.T) {
	tbl := runExp(t, "E1c", E1cMigrationUnderContention)
	if tbl.Rows() != 4 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE6cConsolidation(t *testing.T) {
	tbl := runExp(t, "E6c", E6cConsolidation)
	if tbl.Rows() != 2 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE8bSpeculative(t *testing.T) {
	tbl := runExp(t, "E8b", E8bSpeculativeExecution)
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE2ParallelTranscode(t *testing.T) {
	tbl := runExp(t, "E2", E2ParallelTranscode)
	if tbl.Rows() != 5 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE3IndexConstruction(t *testing.T) {
	runExp(t, "E3", E3IndexConstruction)
}

func TestE4SearchVsScan(t *testing.T) {
	runExp(t, "E4", E4SearchVsScan)
}

func TestE5VirtOverhead(t *testing.T) {
	tbl := runExp(t, "E5", E5VirtOverhead)
	if tbl.Rows() != 4 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE6Placement(t *testing.T) {
	runExp(t, "E6", E6Placement)
}

func TestE6bProvisioning(t *testing.T) {
	runExp(t, "E6b", E6bProvisioning)
}

func TestE7HDFSReplication(t *testing.T) {
	tbl := runExp(t, "E7", E7HDFSReplication)
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE8MapReduceScaling(t *testing.T) {
	tbl := runExp(t, "E8", E8MapReduceScaling)
	if tbl.Rows() != 6 { // 5 scaling points + locality-off ablation
		t.Fatalf("rows = %d", tbl.Rows())
	}
}

func TestE9EndToEnd(t *testing.T) {
	tbl := runExp(t, "E9", E9EndToEnd)
	// 5 journey steps + per-route latency rows (home via the login
	// redirect, register, verify, login, search, stream).
	if tbl.Rows() != 11 {
		t.Fatalf("rows = %d\n%s", tbl.Rows(), tbl)
	}
}

func TestE9bConcurrentLoad(t *testing.T) {
	tbl := runExp(t, "E9b", E9bConcurrentLoad)
	// 5 concurrency levels + per-route rows (home, search, watch, stream).
	if tbl.Rows() != 9 {
		t.Fatalf("rows = %d\n%s", tbl.Rows(), tbl)
	}
}

func TestE10FullStack(t *testing.T) {
	tbl := runExp(t, "E10", E10FullStack)
	if tbl.Rows() != 6 {
		t.Fatalf("rows = %d\n%s", tbl.Rows(), tbl)
	}
}

func TestE11AutoScaling(t *testing.T) {
	tbl := runExp(t, "E11", E11AutoScaling)
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
}
