package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestScaleBench runs the E14 fleet sweep and gates its scaling shape; with
// SCALE_BENCH_OUT set (the `make scale` target), the rows land in
// BENCH_scale.json for comparison across PRs.
func TestScaleBench(t *testing.T) {
	rows, flash := runServingScale()
	for _, r := range rows {
		t.Logf("frontends=%d viewers=%d requests=%d errors=%d %.1f MB/s (%.2fx) home_p99=%.1fms stream_p99=%.1fms",
			r.Frontends, r.Viewers, r.Requests, r.Errors,
			r.StreamMBps, r.ThroughputX, r.HomeP99Ms, r.StreamP99Ms)
		if r.Errors != 0 {
			t.Errorf("%d frontends: %d errors", r.Frontends, r.Errors)
		}
	}
	base, mid, top := rows[0], rows[1], rows[2]
	if mid.ThroughputX < 2 {
		t.Errorf("4 frontends reached %.2fx the single-frontend throughput, want >= 2x", mid.ThroughputX)
	}
	if top.ThroughputX < 3 {
		t.Errorf("8 frontends reached %.2fx the single-frontend throughput, want >= 3x", top.ThroughputX)
	}
	if top.HomeP99Ms > 2*base.HomeP99Ms {
		t.Errorf("home p99 degraded from %.1fms to %.1fms scaling 1 -> 8 frontends", base.HomeP99Ms, top.HomeP99Ms)
	}
	if top.StreamP99Ms > 2*base.StreamP99Ms {
		t.Errorf("stream p99 degraded from %.1fms to %.1fms scaling 1 -> 8 frontends", base.StreamP99Ms, top.StreamP99Ms)
	}

	t.Logf("flash: %d home requests, %d invalidations, %d rebuilds over %d replicas",
		flash.HomeRequests, flash.Invalidations, flash.Rebuilds, flash.Frontends)
	bound := int64(flash.Frontends) * (flash.Invalidations + 1)
	if flash.Rebuilds > bound {
		t.Errorf("flash crowd ran %d rebuilds for %d invalidations on %d replicas (bound %d)",
			flash.Rebuilds, flash.Invalidations, flash.Frontends, bound)
	}

	if out := os.Getenv("SCALE_BENCH_OUT"); out != "" {
		report := struct {
			Rows  []ScaleRow `json:"rows"`
			Flash FlashRow   `json:"flash"`
		}{rows, flash}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("scale report: %s", out)
	}
}
