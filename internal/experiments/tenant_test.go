package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// TestTenantBench runs the E17 multi-tenancy scenario and gates the
// noisy-neighbor isolation and exact-accounting contract; with
// TENANT_BENCH_OUT set (the `make tenant` target), the report lands in
// BENCH_tenant.json for comparison across PRs.
func TestTenantBench(t *testing.T) {
	r := runTenancy()
	t.Logf("victim stream p99: solo=%.1fms loaded=%.1fms ratio=%.2f (errors=%d over %d requests)",
		r.SoloStreamP99Ms, r.LoadedStreamP99Ms, r.P99Ratio, r.VictimErrors, r.VictimRequests)
	t.Logf("bulk flood: published=%d hard_failures=%d throttle_429s=%d retries=%d probe_denied=%v",
		r.BulkPublished, r.BulkHardFailures, r.BulkThrottles, r.BulkRetries, r.BulkProbeDenied)
	for _, row := range r.Tenants {
		t.Logf("ledger %-8s xcode=%.0f/%.0fs stored ledger/db/hdfs/reserved=%d/%d/%d/%d egress=%.0fB denied=%d throttled=%d",
			row.Name, row.XcodeSecondsLedger, row.XcodeSecondsExpected,
			row.StoredBytesLedger, row.StoredBytesDB, row.StoredBytesHDFS, row.StoredBytesReserved,
			row.EgressBytes, row.QuotaDenials, row.Throttles)
	}
	t.Logf("vm-seconds: ledger=%.2f state_log=%.2f", r.VMSecondsLedger, r.VMSecondsStateLog)

	// Noisy-neighbor isolation: the victim's client-observed stream p99
	// under the bulk flood stays within 25% of its solo baseline, with zero
	// request errors.
	if r.VictimErrors != 0 {
		t.Errorf("victim saw %d request errors", r.VictimErrors)
	}
	if r.P99Ratio > 1.25 {
		t.Errorf("victim stream p99 degraded %.2fx (%.1fms -> %.1fms), want <= 1.25x",
			r.P99Ratio, r.SoloStreamP99Ms, r.LoadedStreamP99Ms)
	}
	// The abuser is throttled, not errored: every flood clip eventually
	// publishes after 429 backoff, and the past-quota probe is refused.
	if r.BulkThrottles < 1 {
		t.Error("the bulk flood was never throttled")
	}
	if r.BulkHardFailures != 0 || r.BulkPublished != e17BulkUploads {
		t.Errorf("bulk flood: %d published, %d hard failures, want %d / 0",
			r.BulkPublished, r.BulkHardFailures, e17BulkUploads)
	}
	if !r.BulkProbeDenied {
		t.Error("the past-quota probe upload was not refused with ErrQuotaExceeded")
	}
	// Exact accounting: ledger == database == HDFS walk == live
	// reservation, expected transcode seconds, zero overshoot.
	for _, row := range r.Tenants {
		if row.XcodeSecondsLedger != row.XcodeSecondsExpected {
			t.Errorf("%s: transcode seconds %v != expected %v",
				row.Name, row.XcodeSecondsLedger, row.XcodeSecondsExpected)
		}
		if row.StoredBytesLedger != row.StoredBytesDB ||
			row.StoredBytesLedger != row.StoredBytesHDFS ||
			row.StoredBytesLedger != row.StoredBytesReserved ||
			row.StoredBytesLedger == 0 {
			t.Errorf("%s: stored bytes do not reconcile: ledger=%d db=%d hdfs=%d reserved=%d",
				row.Name, row.StoredBytesLedger, row.StoredBytesDB, row.StoredBytesHDFS, row.StoredBytesReserved)
		}
		if row.OvershootVMs != 0 || row.OvershootBytes != 0 || row.OvershootXcode != 0 {
			t.Errorf("%s: quota overshoot vms=%d bytes=%d xcode=%v, want exactly 0",
				row.Name, row.OvershootVMs, row.OvershootBytes, row.OvershootXcode)
		}
	}
	if r.Tenants[0].EgressBytes == 0 {
		t.Error("no egress attributed to the victim's streams")
	}
	if r.VMSecondsLedger != r.VMSecondsStateLog || r.VMSecondsLedger == 0 {
		t.Errorf("vm-seconds ledger %v != state log %v", r.VMSecondsLedger, r.VMSecondsStateLog)
	}

	if out := os.Getenv("TENANT_BENCH_OUT"); out != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("tenant report: %s", out)
	}
}
