// Package fusebridge is the FUSE stand-in of the paper's §IV: "we use
// Filesystem in Userspace (FUSE) for a direct storage function ... to mount
// uploading folders on HDFS to reach the goal of Cloud distributed storage"
// (Figure 14).
//
// A Mount maps a directory-like namespace onto a subtree of HDFS: the
// website writes uploads through ordinary file operations and the bytes land
// in replicated HDFS blocks. The read side implements io/fs.FS (verified
// against testing/fstest), so any Go code that consumes a filesystem —
// including net/http file serving — can run directly against HDFS.
package fusebridge

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	gopath "path"
	"strings"
	"time"

	"videocloud/internal/hdfs"
)

// Mount exposes the HDFS subtree rooted at root as a filesystem.
type Mount struct {
	client      *hdfs.Client
	root        string
	replication int
}

// New mounts the HDFS subtree at root (created if absent) with the given
// default replication for new files.
func New(client *hdfs.Client, root string, replication int) (*Mount, error) {
	if replication < 1 {
		return nil, fmt.Errorf("fusebridge: replication %d < 1", replication)
	}
	if err := client.Mkdir(root); err != nil {
		return nil, err
	}
	return &Mount{client: client, root: gopath.Clean(root), replication: replication}, nil
}

// abs converts a mount-relative fs.FS name to an absolute HDFS path.
func (m *Mount) abs(name string) (string, error) {
	if !fs.ValidPath(name) {
		return "", fmt.Errorf("fusebridge: invalid path %q", name)
	}
	if name == "." {
		return m.root, nil
	}
	return m.root + "/" + name, nil
}

// Open implements fs.FS. Files resolve status and block layout in a single
// batched NameNode call (Client.Open); only the directory branch pays a
// second round trip for the listing.
func (m *Mount) Open(name string) (fs.File, error) {
	p, err := m.abs(name)
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	r, err := m.client.Open(p)
	if errors.Is(err, hdfs.ErrIsDirectory) {
		entries, lerr := m.client.List(p)
		if lerr != nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: mapErr(lerr)}
		}
		return &dirFile{name: gopath.Base(name), entries: entries}, nil
	}
	if err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: mapErr(err)}
	}
	return &file{name: gopath.Base(name), st: r.Stat(), r: r}, nil
}

func mapErr(err error) error {
	switch {
	case errors.Is(err, hdfs.ErrNotFound):
		return fs.ErrNotExist
	case errors.Is(err, hdfs.ErrExists):
		return fs.ErrExist
	default:
		return err
	}
}

// WriteFile stores data at name (parents auto-created), replacing any
// existing file — the semantics a FUSE rewrite maps to create-over on HDFS.
func (m *Mount) WriteFile(name string, data []byte) error {
	return m.WriteFileCtx(context.Background(), name, data)
}

// WriteFileCtx is WriteFile linked to the trace span in ctx: the store
// records hdfs.write_file / hdfs.write_block spans under the caller's trace.
func (m *Mount) WriteFileCtx(ctx context.Context, name string, data []byte) error {
	p, err := m.abs(name)
	if err != nil {
		return err
	}
	if st, serr := m.client.Stat(p); serr == nil {
		if st.IsDir {
			return fmt.Errorf("fusebridge: %q is a directory", name)
		}
		if rerr := m.client.Remove(p); rerr != nil {
			return rerr
		}
	}
	return m.client.WriteFileCtx(ctx, p, data, m.replication)
}

// Create opens a streaming writer at name. The file becomes visible when
// the writer is closed.
func (m *Mount) Create(name string) (io.WriteCloser, error) {
	p, err := m.abs(name)
	if err != nil {
		return nil, err
	}
	return m.client.Create(p, m.replication)
}

// ReadFile returns the full content of name.
func (m *Mount) ReadFile(name string) ([]byte, error) {
	return m.ReadFileCtx(context.Background(), name)
}

// ReadFileCtx is ReadFile linked to the trace span in ctx.
func (m *Mount) ReadFileCtx(ctx context.Context, name string) ([]byte, error) {
	p, err := m.abs(name)
	if err != nil {
		return nil, err
	}
	data, err := m.client.ReadFileCtx(ctx, p)
	if err != nil {
		return nil, mapPathErr("read", name, err)
	}
	return data, nil
}

func mapPathErr(op, name string, err error) error {
	return &fs.PathError{Op: op, Path: name, Err: mapErr(err)}
}

// Remove deletes a file or empty directory.
func (m *Mount) Remove(name string) error {
	p, err := m.abs(name)
	if err != nil {
		return err
	}
	if err := m.client.Remove(p); err != nil {
		return mapPathErr("remove", name, err)
	}
	return nil
}

// Mkdir creates a directory (and parents).
func (m *Mount) Mkdir(name string) error {
	p, err := m.abs(name)
	if err != nil {
		return err
	}
	return m.client.Mkdir(p)
}

// Exists reports whether name exists under the mount.
func (m *Mount) Exists(name string) bool {
	p, err := m.abs(name)
	if err != nil {
		return false
	}
	_, err = m.client.Stat(p)
	return err == nil
}

// OpenSeeker opens name for random access (io.ReadSeeker + io.ReaderAt),
// the interface the streaming layer needs for Range requests.
func (m *Mount) OpenSeeker(name string) (*hdfs.Reader, error) {
	return m.OpenSeekerCtx(context.Background(), name)
}

// OpenSeekerCtx is OpenSeeker linked to the trace span in ctx: block range
// reads and prefetches through the returned reader record spans annotated
// with readahead hits/misses under the caller's trace.
func (m *Mount) OpenSeekerCtx(ctx context.Context, name string) (*hdfs.Reader, error) {
	p, err := m.abs(name)
	if err != nil {
		return nil, err
	}
	r, err := m.client.OpenCtx(ctx, p)
	if err != nil {
		return nil, mapPathErr("open", name, err)
	}
	return r, nil
}

// ---- fs.File implementations ----

type fileInfo struct {
	name string
	size int64
	dir  bool
}

func (fi fileInfo) Name() string       { return fi.name }
func (fi fileInfo) Size() int64        { return fi.size }
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.dir }
func (fi fileInfo) Sys() any           { return nil }
func (fi fileInfo) Mode() fs.FileMode {
	if fi.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}

type file struct {
	name string
	st   hdfs.FileStatus
	r    *hdfs.Reader
}

func (f *file) Stat() (fs.FileInfo, error) {
	return fileInfo{name: f.name, size: f.st.Size}, nil
}
func (f *file) Read(p []byte) (int, error)                { return f.r.Read(p) }
func (f *file) Seek(off int64, whence int) (int64, error) { return f.r.Seek(off, whence) }
func (f *file) ReadAt(p []byte, off int64) (int, error)   { return f.r.ReadAt(p, off) }
func (f *file) Size() int64                               { return f.r.Size() }

// AppendRangeSlices forwards the zero-copy range API (stream.SliceRanger),
// so HTTP serving through the fs.FS view also avoids per-request buffers.
func (f *file) AppendRangeSlices(dst [][]byte, off, length int64) ([][]byte, error) {
	return f.r.AppendRangeSlices(dst, off, length)
}

// Close releases the reader's shared block-cache references.
func (f *file) Close() error { return f.r.Close() }

type dirFile struct {
	name    string
	entries []hdfs.FileStatus
	pos     int
}

func (d *dirFile) Stat() (fs.FileInfo, error) {
	return fileInfo{name: d.name, dir: true}, nil
}

func (d *dirFile) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.name, Err: errors.New("is a directory")}
}

func (d *dirFile) Close() error { return nil }

type dirEntry struct{ fileInfo }

func (e dirEntry) Type() fs.FileMode          { return e.Mode().Type() }
func (e dirEntry) Info() (fs.FileInfo, error) { return e.fileInfo, nil }

// ReadDir implements fs.ReadDirFile.
func (d *dirFile) ReadDir(n int) ([]fs.DirEntry, error) {
	rest := d.entries[d.pos:]
	if n <= 0 {
		d.pos = len(d.entries)
		out := make([]fs.DirEntry, len(rest))
		for i, st := range rest {
			out[i] = dirEntry{fileInfo{name: gopath.Base(st.Path), size: st.Size, dir: st.IsDir}}
		}
		return out, nil
	}
	if len(rest) == 0 {
		return nil, io.EOF
	}
	if n > len(rest) {
		n = len(rest)
	}
	out := make([]fs.DirEntry, n)
	for i := 0; i < n; i++ {
		st := rest[i]
		out[i] = dirEntry{fileInfo{name: gopath.Base(st.Path), size: st.Size, dir: st.IsDir}}
	}
	d.pos += n
	return out, nil
}

// Walk lists every file under dir (recursively), mount-relative, sorted by
// the underlying List order.
func (m *Mount) Walk(dir string) ([]string, error) {
	p, err := m.abs(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	var walk func(abs string) error
	walk = func(abs string) error {
		entries, err := m.client.List(abs)
		if err != nil {
			return err
		}
		for _, st := range entries {
			if st.IsDir {
				if err := walk(st.Path); err != nil {
					return err
				}
				continue
			}
			rel := strings.TrimPrefix(st.Path, m.root+"/")
			out = append(out, rel)
		}
		return nil
	}
	if err := walk(p); err != nil {
		return nil, err
	}
	return out, nil
}
