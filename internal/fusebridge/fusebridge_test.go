package fusebridge

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"testing"
	"testing/fstest"

	"videocloud/internal/hdfs"
)

func newMount(t *testing.T) *Mount {
	t.Helper()
	c := hdfs.NewCluster(3, 64*1024)
	m, err := New(c.Client(""), "/uploads", 2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWriteReadThroughMount(t *testing.T) {
	m := newMount(t)
	data := bytes.Repeat([]byte("frame"), 50000) // multi-block
	if err := m.WriteFile("videos/clip.mp4", data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("videos/clip.mp4")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	if !m.Exists("videos/clip.mp4") || m.Exists("videos/ghost.mp4") {
		t.Fatal("Exists wrong")
	}
}

func TestOverwriteReplaces(t *testing.T) {
	m := newMount(t)
	m.WriteFile("f.txt", []byte("one"))
	if err := m.WriteFile("f.txt", []byte("two-longer")); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("f.txt")
	if string(got) != "two-longer" {
		t.Fatalf("got %q", got)
	}
}

func TestStreamingCreate(t *testing.T) {
	m := newMount(t)
	w, err := m.Create("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 10; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 20000)
		want = append(want, chunk...)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("big.bin")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("streamed write: %v", err)
	}
}

func TestFSInterface(t *testing.T) {
	m := newMount(t)
	m.WriteFile("a.txt", []byte("alpha"))
	m.WriteFile("sub/b.txt", []byte("beta"))
	// fs.ReadFile path.
	got, err := fs.ReadFile(m, "sub/b.txt")
	if err != nil || string(got) != "beta" {
		t.Fatalf("fs.ReadFile: %v %q", err, got)
	}
	// Stat via Open.
	f, err := m.Open("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil || fi.Size() != 5 || fi.IsDir() {
		t.Fatalf("Stat: %v %+v", err, fi)
	}
	f.Close()
	// Directory listing via fs.ReadDir.
	entries, err := fs.ReadDir(m, ".")
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir: %v %v", err, entries)
	}
	// Missing file error shape.
	if _, err := m.Open("nope.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing open: %v", err)
	}
	var pe *fs.PathError
	if _, err := m.Open("nope.txt"); !errors.As(err, &pe) {
		t.Fatal("error is not *fs.PathError")
	}
	if _, err := m.Open("../escape"); err == nil {
		t.Fatal("path escape accepted")
	}
}

func TestFSTestCompliance(t *testing.T) {
	m := newMount(t)
	m.WriteFile("a.txt", []byte("alpha"))
	m.WriteFile("dir/b.txt", []byte("beta"))
	m.WriteFile("dir/deeper/c.txt", []byte("gamma"))
	if err := fstest.TestFS(m, "a.txt", "dir/b.txt", "dir/deeper/c.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestSeekThroughMount(t *testing.T) {
	m := newMount(t)
	data := make([]byte, 200000)
	for i := range data {
		data[i] = byte(i)
	}
	m.WriteFile("v.mp4", data)
	r, err := m.OpenSeeker("v.mp4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Seek(150000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[150000:150100]) {
		t.Fatal("seek read wrong bytes")
	}
}

func TestRemoveAndWalk(t *testing.T) {
	m := newMount(t)
	m.WriteFile("keep/x.bin", []byte("x"))
	m.WriteFile("keep/y.bin", []byte("y"))
	m.WriteFile("drop.bin", []byte("z"))
	files, err := m.Walk(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("Walk = %v", files)
	}
	if err := m.Remove("drop.bin"); err != nil {
		t.Fatal(err)
	}
	files, _ = m.Walk(".")
	if len(files) != 2 {
		t.Fatalf("after remove: %v", files)
	}
	if err := m.Remove("drop.bin"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestDataLandsInHDFSReplicated(t *testing.T) {
	c := hdfs.NewCluster(3, 64*1024)
	m, _ := New(c.Client(""), "/uploads", 3)
	m.WriteFile("v.mp4", bytes.Repeat([]byte("a"), 70000))
	blocks, err := c.Client("").BlockLocations("/uploads/v.mp4")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("%d blocks", len(blocks))
	}
	for _, b := range blocks {
		if len(b.Locations) != 3 {
			t.Fatalf("block %d has %d replicas", b.ID, len(b.Locations))
		}
	}
	// Survives a datanode death — the paper's stated reason for HDFS.
	c.KillDataNode(blocks[0].Locations[0])
	got, err := m.ReadFile("v.mp4")
	if err != nil || len(got) != 70000 {
		t.Fatalf("read after node death: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	c := hdfs.NewCluster(1, 64*1024)
	if _, err := New(c.Client(""), "/m", 0); err == nil {
		t.Fatal("replication 0 accepted")
	}
}
