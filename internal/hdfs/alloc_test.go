package hdfs

import (
	"runtime"
	"testing"
)

// Allocation regression gate for the range-read hot path (make tier1 runs
// this via the alloccheck target). The invariant: a K-byte window read out
// of an N-byte block allocates O(K), never O(N) — the seed implementation
// copied and re-checksummed the whole block per window, which made every
// 256 KiB player seek cost a block-sized allocation.

func TestAllocReadRangeBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	const block = 8 << 20
	const window = 64 << 10
	c := NewCluster(2, block)
	cl := c.Client("")
	data := payload(block, 42) // exactly one 8 MiB block
	if err := cl.WriteFile("/big", data, 2); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Open("/big")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, window)
	readAt := func(i int) {
		off := (int64(i) * 3 * window) % (block - window)
		if _, err := r.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // warm up histogram sample slices etc.
		readAt(i)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const iters = 64
	for i := 0; i < iters; i++ {
		readAt(i)
	}
	runtime.ReadMemStats(&after)
	perOp := int64(after.TotalAlloc-before.TotalAlloc) / iters
	// Generous ceiling: the window plus small per-fetch bookkeeping. The
	// seed whole-block path allocated ~8 MiB per window here.
	if perOp > window*8 {
		t.Fatalf("ReadAt allocates %d B/op for a %d B window of a %d B block; want O(window)",
			perOp, window, block)
	}
}

// TestAllocCachedStreamZeroCopy gates the serving hot path's headline
// property: once a file's blocks are resident in the shared cache, resolving
// a Range window to response slices performs no data copy and (amortised)
// no allocation at all — the window is served as views of cached block data
// reused across requests.
func TestAllocCachedStreamZeroCopy(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	const block = 1 << 20
	const blocks = 4
	const window = 256 << 10
	c := NewCluster(2, block)
	c.SetBlockCacheCapacity(0)
	cl := c.Client("")
	data := payload(blocks*block, 42)
	if err := cl.WriteFile("/v", data, 2); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Open("/v")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var slices [][]byte
	readWindow := func(i int) {
		off := (int64(i) * 3 * window) % int64(blocks*block-window)
		slices, err = r.AppendRangeSlices(slices[:0], off, window)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: fill the cache, retain every block, grow the slice header.
	for i := 0; i < blocks*2; i++ {
		readWindow(i)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const iters = 256
	for i := 0; i < iters; i++ {
		readWindow(i)
	}
	runtime.ReadMemStats(&after)
	perOp := int64(after.TotalAlloc-before.TotalAlloc) / iters
	// ~0 data-copy allocations: a few hundred bytes of slack for metrics
	// internals, nothing within orders of magnitude of the window.
	if perOp > 256 {
		t.Fatalf("cached AppendRangeSlices allocates %d B/op for a %d B window; want ~0", perOp, window)
	}
}
