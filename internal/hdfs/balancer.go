package hdfs

import (
	"errors"
	"fmt"
	"sort"
)

// This file adds the two operational tools a production HDFS deployment of
// the paper's video store needs: the balancer (Hadoop's balancer daemon),
// which evens storage across DataNodes after growth or skewed ingest, and
// graceful decommissioning, which drains a node's replicas before it is
// removed — the planned-maintenance counterpart of the crash handling in
// MarkDead.

// ErrDecommissionIncomplete is returned when a node still holds the only
// replica of some block.
var ErrDecommissionIncomplete = errors.New("hdfs: decommission incomplete")

// moveReplica atomically retargets one replica in the NameNode's books.
func (nn *NameNode) moveReplica(id BlockID, from, to string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	info, ok := nn.blocks[id]
	if !ok {
		return fmt.Errorf("hdfs: move of unknown block %d", id)
	}
	src, dst := nn.datanodes[from], nn.datanodes[to]
	if src == nil || dst == nil {
		return fmt.Errorf("hdfs: move %d between unknown nodes %q->%q", id, from, to)
	}
	found := false
	for i, loc := range info.Locations {
		if loc == to {
			return fmt.Errorf("hdfs: block %d already on %q", id, to)
		}
		if loc == from {
			info.Locations[i] = to
			found = true
		}
	}
	if !found {
		return fmt.Errorf("hdfs: block %d has no replica on %q", id, from)
	}
	delete(src.blocks, id)
	src.used -= info.Length
	dst.blocks[id] = true
	dst.used += info.Length
	return nil
}

// usedBytes returns live datanodes sorted by stored bytes (ascending).
func (nn *NameNode) usedByNode() []struct {
	Name string
	Used int64
} {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []struct {
		Name string
		Used int64
	}
	for name, dn := range nn.datanodes {
		if dn.alive && !dn.decommissioning {
			out = append(out, struct {
				Name string
				Used int64
			}{name, dn.used})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Used != out[j].Used {
			return out[i].Used < out[j].Used
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// blocksOn returns the block IDs a node holds, sorted.
func (nn *NameNode) blocksOn(name string) []BlockID {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	dn := nn.datanodes[name]
	if dn == nil {
		return nil
	}
	out := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hasReplica reports whether node holds block id in the NameNode's books.
func (nn *NameNode) hasReplica(name string, id BlockID) bool {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	dn := nn.datanodes[name]
	return dn != nil && dn.blocks[id]
}

// Balance moves block replicas from the most- to the least-utilized
// datanodes until the spread of stored bytes is within threshold (or no
// legal move remains — a replica never moves to a node that already holds
// the block). It returns the number of replicas moved.
func (c *Cluster) Balance(threshold int64) int {
	if threshold < 1 {
		threshold = 1
	}
	moves := 0
	for iter := 0; iter < 10000; iter++ {
		nodes := c.nn.usedByNode()
		if len(nodes) < 2 {
			return moves
		}
		lo, hi := nodes[0], nodes[len(nodes)-1]
		if hi.Used-lo.Used <= threshold {
			return moves
		}
		moved := false
		for _, id := range c.nn.blocksOn(hi.Name) {
			if c.nn.hasReplica(lo.Name, id) {
				continue
			}
			src, dst := c.DataNode(hi.Name), c.DataNode(lo.Name)
			if src == nil || dst == nil {
				break
			}
			data, err := src.Read(id)
			if err != nil {
				continue
			}
			// Don't overshoot: moving this block must not make the
			// destination the new outlier by more than the gap.
			if lo.Used+int64(len(data)) > hi.Used {
				continue
			}
			if err := dst.Store(id, data); err != nil {
				continue
			}
			if err := c.nn.moveReplica(id, hi.Name, lo.Name); err != nil {
				dst.Delete(id)
				continue
			}
			src.Delete(id)
			c.reg.Counter("blocks_rebalanced").Inc()
			moves++
			moved = true
			break
		}
		if !moved {
			return moves
		}
	}
	return moves
}

// StartDecommission excludes a node from new placements and queues
// re-replication (with the draining node as the copy source) for every
// block that would otherwise drop below one live replica elsewhere.
func (nn *NameNode) StartDecommission(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	dn, ok := nn.datanodes[name]
	if !ok {
		return fmt.Errorf("hdfs: unknown datanode %q", name)
	}
	dn.decommissioning = true
	ids := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := nn.blocks[id]
		if info == nil {
			continue
		}
		elsewhere := 0
		exclude := map[string]bool{}
		for _, loc := range info.Locations {
			exclude[loc] = true
			other := nn.datanodes[loc]
			if loc != name && other != nil && other.alive && !other.decommissioning {
				elsewhere++
			}
		}
		// Restore the block's full target replication on the nodes
		// that remain after this one retires.
		missing := info.Replication - elsewhere
		if missing < 1 && elsewhere == 0 {
			missing = 1
		}
		if missing < 1 {
			continue
		}
		targets := nn.chooseTargets(missing, "", exclude)
		for _, target := range targets {
			nn.pendingRepl = append(nn.pendingRepl, ReplicationTask{Block: id, Src: name, Dst: target})
			exclude[target] = true
		}
	}
	return nil
}

// FinishDecommission verifies every block on the node has a live replica
// elsewhere, then retires the node (no re-replication storm — its replicas
// were already drained).
func (nn *NameNode) FinishDecommission(name string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	dn, ok := nn.datanodes[name]
	if !ok {
		return fmt.Errorf("hdfs: unknown datanode %q", name)
	}
	if !dn.decommissioning {
		return fmt.Errorf("hdfs: %q is not decommissioning", name)
	}
	for id := range dn.blocks {
		info := nn.blocks[id]
		if info == nil {
			continue
		}
		elsewhere := 0
		for _, loc := range info.Locations {
			other := nn.datanodes[loc]
			if loc != name && other != nil && other.alive && !other.decommissioning {
				elsewhere++
			}
		}
		if elsewhere == 0 {
			return fmt.Errorf("%w: block %d only on %q", ErrDecommissionIncomplete, id, name)
		}
	}
	// Retire: drop its replicas from the books.
	for id := range dn.blocks {
		if info := nn.blocks[id]; info != nil {
			kept := info.Locations[:0]
			for _, loc := range info.Locations {
				if loc != name {
					kept = append(kept, loc)
				}
			}
			info.Locations = kept
		}
	}
	dn.blocks = map[BlockID]bool{}
	dn.used = 0
	dn.alive = false
	return nil
}

// Decommission runs the full graceful-drain flow on the cluster: start,
// copy the queued replicas, verify, retire, and finally take the node's
// process down. It returns how many blocks were copied off the node.
func (c *Cluster) Decommission(name string) (int, error) {
	if err := c.nn.StartDecommission(name); err != nil {
		return 0, err
	}
	copied := c.RepairAll()
	if err := c.nn.FinishDecommission(name); err != nil {
		return copied, err
	}
	if dn := c.DataNode(name); dn != nil {
		dn.SetDown(true)
	}
	c.reg.Counter("datanodes_decommissioned").Inc()
	return copied, nil
}
