package hdfs

import (
	"bytes"
	"errors"
	"testing"
)

// skewedCluster writes files while only two of four nodes exist, then adds
// two empty nodes — the classic post-expansion imbalance.
func skewedCluster(t *testing.T) (*Cluster, [][]byte) {
	t.Helper()
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	var files [][]byte
	for i := 0; i < 6; i++ {
		data := payload(2*testBlock, int64(i))
		if err := cl.WriteFile(string(rune('a'+i))+"/f", data, 2); err != nil {
			// Paths must be absolute.
			if err2 := cl.WriteFile("/"+string(rune('a'+i)), data, 2); err2 != nil {
				t.Fatal(err2)
			}
		}
		files = append(files, data)
	}
	c.AddDataNode("dn2")
	c.AddDataNode("dn3")
	return c, files
}

func TestBalanceEvensStorage(t *testing.T) {
	c, files := skewedCluster(t)
	spread := func() int64 {
		var min, max int64 = 1 << 62, 0
		for _, n := range []string{"dn0", "dn1", "dn2", "dn3"} {
			u := c.DataNode(n).Used()
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
		}
		return max - min
	}
	before := spread()
	if before == 0 {
		t.Fatal("cluster not skewed to begin with")
	}
	moves := c.Balance(2 * testBlock)
	if moves == 0 {
		t.Fatal("balancer moved nothing")
	}
	after := spread()
	if after > 2*testBlock {
		t.Fatalf("spread after balance = %d, want <= %d", after, 2*testBlock)
	}
	if after >= before {
		t.Fatalf("spread did not shrink: %d -> %d", before, after)
	}
	// All data still reads back intact.
	cl := c.Client("")
	for i, want := range files {
		got, err := cl.ReadFile("/" + string(rune('a'+i)))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("file %d corrupted after balance: %v", i, err)
		}
	}
	// Replica invariant: no block has two replicas on one node.
	for i := range files {
		blocks, _ := cl.BlockLocations("/" + string(rune('a'+i)))
		for _, b := range blocks {
			seen := map[string]bool{}
			for _, loc := range b.Locations {
				if seen[loc] {
					t.Fatalf("block %d has duplicate replica on %s", b.ID, loc)
				}
				seen[loc] = true
				if !c.DataNode(loc).Has(b.ID) {
					t.Fatalf("NameNode says %s holds %d but it does not", loc, b.ID)
				}
			}
		}
	}
}

func TestBalanceIdempotent(t *testing.T) {
	c, _ := skewedCluster(t)
	c.Balance(testBlock)
	again := c.Balance(testBlock)
	if again != 0 {
		t.Fatalf("second balance moved %d blocks", again)
	}
}

func TestBalanceSingleNodeNoop(t *testing.T) {
	c := NewCluster(1, testBlock)
	c.Client("").WriteFile("/f", payload(testBlock, 1), 1)
	if moves := c.Balance(1); moves != 0 {
		t.Fatalf("single-node balance moved %d", moves)
	}
}

func TestDecommissionGraceful(t *testing.T) {
	c := NewCluster(4, testBlock)
	cl := c.Client("")
	data := payload(6*testBlock, 3)
	if err := cl.WriteFile("/film", data, 2); err != nil {
		t.Fatal(err)
	}
	// Find a node holding replicas.
	blocks, _ := cl.BlockLocations("/film")
	victim := blocks[0].Locations[0]
	held := 0
	for _, b := range blocks {
		for _, loc := range b.Locations {
			if loc == victim {
				held++
			}
		}
	}
	copied, err := c.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	// Replicas were drained; data fully replicated without the node.
	if got := c.NameNode().UnderReplicated(2); len(got) != 0 {
		t.Fatalf("under-replicated after decommission: %v", got)
	}
	got, err := cl.ReadFile("/film")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data after decommission: %v", err)
	}
	// The retired node serves nothing and receives nothing.
	blocks, _ = cl.BlockLocations("/film")
	for _, b := range blocks {
		for _, loc := range b.Locations {
			if loc == victim {
				t.Fatalf("block %d still mapped to retired node", b.ID)
			}
		}
	}
	if err := cl.WriteFile("/new", payload(testBlock, 9), 3); err != nil {
		t.Fatal(err)
	}
	nb, _ := cl.BlockLocations("/new")
	for _, loc := range nb[0].Locations {
		if loc == victim {
			t.Fatal("new block placed on retired node")
		}
	}
	_ = copied
}

func TestDecommissionLastReplicaHolder(t *testing.T) {
	// RF=1: the draining node holds the only replicas; decommission must
	// copy them off before retiring.
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(3*testBlock, 4)
	cl.WriteFile("/f", data, 1)
	blocks, _ := cl.BlockLocations("/f")
	victim := blocks[0].Locations[0]
	copied, err := c.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	if copied == 0 {
		t.Fatal("no replicas drained despite being sole holder")
	}
	got, err := cl.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data lost: %v", err)
	}
}

func TestDecommissionErrors(t *testing.T) {
	c := NewCluster(2, testBlock)
	if _, err := c.Decommission("ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := c.NameNode().FinishDecommission("dn0"); err == nil {
		t.Fatal("finish without start accepted")
	}
	// Decommission with nowhere to drain: RF=1 file on the only other
	// node... make both nodes hold sole replicas and kill the target.
	cl := c.Client("")
	cl.WriteFile("/f", payload(2*testBlock, 5), 1)
	blocks, _ := cl.BlockLocations("/f")
	victim := blocks[0].Locations[0]
	other := "dn0"
	if victim == "dn0" {
		other = "dn1"
	}
	c.KillDataNode(other)
	if _, err := c.Decommission(victim); !errors.Is(err, ErrDecommissionIncomplete) {
		t.Fatalf("err = %v", err)
	}
}
