package hdfs

import (
	"fmt"
	"io"
	"testing"
)

// Data-path benchmarks (make bench writes them to BENCH_hdfs.json with
// -benchmem -cpu 1,4). BenchmarkReadRange tracks bytes allocated per
// window — the chunked-checksum gate; BenchmarkReadFile's -cpu scaling
// shows the parallel block fan-out.

// BenchmarkReadRange measures a player-seek window: 64 KiB out of one
// 8 MiB block. Only the checksum chunks overlapping the window are
// verified and only the window is copied, so B/op tracks the window, not
// the block.
func BenchmarkReadRange(b *testing.B) {
	const block = 8 << 20
	const window = 64 << 10
	c := NewCluster(3, block)
	cl := c.Client("")
	if err := cl.WriteFile("/big", payload(block, 1), 2); err != nil {
		b.Fatal(err)
	}
	r, err := cl.Open("/big")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, window)
	b.SetBytes(window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * 1234567) % (block - window)
		if _, err := r.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFile reads an 8-block file whose block fetches fan out over
// up to GOMAXPROCS workers — compare -cpu 1 vs -cpu 4 for the parallel
// speedup. The loop reuses its destination buffer (ReadFileInto), the
// steady-state form of repeated full-file readers: each block is CRC32
// verified against its replica and copied exactly once, into the final
// buffer.
func BenchmarkReadFile(b *testing.B) {
	const blockSize = 4 << 20
	const blocks = 8
	c := NewCluster(4, blockSize)
	cl := c.Client("")
	data := payload(blocks*blockSize, 2)
	if err := cl.WriteFile("/f", data, 2); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = cl.ReadFileInto("/f", buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFileCached is BenchmarkReadFile against the serving
// configuration: the shared block cache enabled (as core.New runs it), so
// after the first iteration fills the cache every block is served by one
// copy out of resident verified data — no replica access, no checksum
// pass.
func BenchmarkReadFileCached(b *testing.B) {
	const blockSize = 4 << 20
	const blocks = 8
	c := NewCluster(4, blockSize)
	c.SetBlockCacheCapacity(0)
	cl := c.Client("")
	data := payload(blocks*blockSize, 2)
	if err := cl.WriteFile("/f", data, 2); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = cl.ReadFileInto("/f", buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteFile measures the concurrent replication pipeline: a
// 4-block file stored at RF 3, all targets per block written at once.
func BenchmarkWriteFile(b *testing.B) {
	const blockSize = 1 << 20
	c := NewCluster(4, blockSize)
	cl := c.Client("")
	data := payload(4*blockSize, 3)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/f%d", i)
		if err := cl.WriteFile(path, data, 3); err != nil {
			b.Fatal(err)
		}
		if err := c.Delete(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSeek replays a Flowplayer session over a multi-block
// file: drag the time bar to a pseudo-random offset, stream one 256 KiB
// window (Seek + sequential Read, the http.ServeContent access pattern).
func BenchmarkStreamSeek(b *testing.B) {
	const blockSize = 4 << 20
	const blocks = 8
	const window = 256 << 10
	c := NewCluster(4, blockSize)
	cl := c.Client("")
	data := payload(blocks*blockSize, 4)
	if err := cl.WriteFile("/v.mp4", data, 2); err != nil {
		b.Fatal(err)
	}
	r, err := cl.Open("/v.mp4")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, window)
	b.SetBytes(window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * 7654321) % (int64(len(data)) - window)
		if _, err := r.Seek(off, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamCached replays the zero-copy serving loop: pseudo-random
// 256 KiB Range windows resolved to slices of shared-cache block data
// (Reader.AppendRangeSlices — what stream.Serve hands to the vectored
// response write). Steady state performs no data copy at all; B/op tracks
// bookkeeping, not bytes.
func BenchmarkStreamCached(b *testing.B) {
	const blockSize = 4 << 20
	const blocks = 8
	const window = 256 << 10
	c := NewCluster(4, blockSize)
	c.SetBlockCacheCapacity(0)
	cl := c.Client("")
	data := payload(blocks*blockSize, 4)
	if err := cl.WriteFile("/v.mp4", data, 2); err != nil {
		b.Fatal(err)
	}
	r, err := cl.Open("/v.mp4")
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	var slices [][]byte
	b.SetBytes(window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * 7654321) % (int64(len(data)) - window)
		slices, err = r.AppendRangeSlices(slices[:0], off, window)
		if err != nil {
			b.Fatal(err)
		}
	}
}
