package hdfs

import (
	"container/list"
	"sync"
	"sync/atomic"

	"videocloud/internal/metrics"
)

// BlockCache is a shared, size-bounded, reference-counted cache of immutable
// block data. It is the serving hot path's answer to per-request buffers:
// every reader of a hot file slices the same cached copy of each block, so
// N concurrent viewers of a viral video cost one replica fetch and zero
// per-viewer data copies.
//
// Three properties make it safe to hand out interior slices:
//
//   - Entry data is immutable. The cache owns the only reference to the
//     backing array (fills come from DataNode.Read, which returns a fresh
//     verified copy), and nothing ever writes to it again.
//   - Entries are reference-counted. A Reader retains a reference for every
//     block it has handed out slices of and releases them on Close; the
//     outstanding-reference gauge must return to zero when serving is done.
//   - Eviction never invalidates a slice. Evicting an entry only detaches it
//     from the cache's index; holders keep their reference and the data stays
//     reachable (and therefore valid) until the last reference is released
//     and the garbage collector reclaims it. Pinned entries (refs > 0) are
//     skipped by the evictor entirely, so the budget prefers to shed idle
//     blocks first.
//
// Fills are single-flight: concurrent requests for the same absent block
// share one replica fetch. The first caller fetches; later callers are
// counted as waits and receive a reference to the same entry.
type BlockCache struct {
	capacity int64
	reg      *metrics.Registry

	// pinned counts outstanding references across all entries, resident or
	// evicted — the gauge tests use to prove readers release everything.
	pinned atomic.Int64

	mu      sync.Mutex
	entries map[BlockID]*CacheEntry
	fills   map[BlockID]*cacheFill
	lru     *list.List // front = most recently used; values are *CacheEntry
	bytes   int64      // resident bytes
}

// CacheEntry is one cached block. Data is immutable; callers may slice it
// freely for as long as they hold a reference.
type CacheEntry struct {
	owner *BlockCache
	id    BlockID
	data  []byte
	refs  atomic.Int64
	elem  *list.Element // nil once evicted
}

// Data returns the immutable block bytes. Callers must hold a reference.
func (e *CacheEntry) Data() []byte { return e.data }

// Release drops one reference on e. It releases against the cache that
// created the entry, so it stays correct even if the cluster has since
// swapped in a different cache.
func (e *CacheEntry) Release() {
	if e != nil {
		e.owner.Release(e)
	}
}

// retain adds a reference to an entry the caller already holds one on (so
// it cannot concurrently drop to zero).
func (e *CacheEntry) retain() {
	e.refs.Add(1)
	e.owner.pinned.Add(1)
}

// cacheFill is an in-flight single-flight fetch; done closes once entry/err
// are set. waiters is the number of joiners whose references are pre-counted
// into the entry before done closes, so the evictor can never observe the
// entry unpinned while a waiter is about to use it.
type cacheFill struct {
	done    chan struct{}
	waiters int64
	entry   *CacheEntry
	err     error
}

// newBlockCache builds a cache bounded to capacity resident bytes, counting
// into the cluster registry. capacity <= 0 is rejected by the cluster layer.
func newBlockCache(capacity int64, reg *metrics.Registry) *BlockCache {
	return &BlockCache{
		capacity: capacity,
		reg:      reg,
		entries:  make(map[BlockID]*CacheEntry),
		fills:    make(map[BlockID]*cacheFill),
		lru:      list.New(),
	}
}

// Capacity returns the resident-byte budget.
func (c *BlockCache) Capacity() int64 { return c.capacity }

// acquire returns a referenced entry for id if resident. The caller must
// release it.
func (c *BlockCache) acquire(id BlockID) (*CacheEntry, bool) {
	c.mu.Lock()
	e := c.entries[id]
	if e == nil {
		c.mu.Unlock()
		return nil, false
	}
	e.refs.Add(1)
	c.pinned.Add(1)
	c.lru.MoveToFront(e.elem)
	c.mu.Unlock()
	c.reg.Counter("blockcache_hits").Inc()
	return e, true
}

// GetOrFill returns a referenced entry for id, fetching it with fetch when
// absent. Concurrent callers for the same absent block share one fetch. The
// returned source is "hit", "wait" (joined an in-flight fill), or "fill"
// (this caller ran the fetch). The caller must Release the entry.
func (c *BlockCache) GetOrFill(id BlockID, fetch func() ([]byte, error)) (e *CacheEntry, source string, err error) {
	c.mu.Lock()
	if e := c.entries[id]; e != nil {
		e.refs.Add(1)
		c.pinned.Add(1)
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		c.reg.Counter("blockcache_hits").Inc()
		return e, "hit", nil
	}
	if f := c.fills[id]; f != nil {
		f.waiters++
		c.mu.Unlock()
		c.reg.Counter("blockcache_waits").Inc()
		<-f.done
		if f.err != nil {
			return nil, "wait", f.err
		}
		// The reference was pre-counted into the entry by the filler.
		return f.entry, "wait", nil
	}
	f := &cacheFill{done: make(chan struct{})}
	c.fills[id] = f
	c.mu.Unlock()

	c.reg.Counter("blockcache_misses").Inc()
	data, ferr := fetch()

	c.mu.Lock()
	delete(c.fills, id)
	if ferr != nil {
		f.err = ferr
		c.mu.Unlock()
		close(f.done)
		return nil, "fill", ferr
	}
	e = &CacheEntry{owner: c, id: id, data: data}
	// One reference for the filler plus one per waiter, all counted before
	// the entry becomes visible, so it is born pinned.
	e.refs.Store(1 + f.waiters)
	c.pinned.Add(1 + f.waiters)
	f.entry = e
	e.elem = c.lru.PushFront(e)
	c.entries[id] = e
	c.bytes += int64(len(data))
	c.reg.Counter("blockcache_fills").Inc()
	c.evictLocked()
	c.mu.Unlock()
	close(f.done)
	return e, "fill", nil
}

// Release drops one reference on e. Entries are never freed eagerly: a
// released resident entry stays cached (now evictable), and a released
// evicted entry simply becomes garbage once the last holder lets go.
func (c *BlockCache) Release(e *CacheEntry) {
	if e == nil {
		return
	}
	e.refs.Add(-1)
	c.pinned.Add(-1)
}

// evictLocked sheds least-recently-used unpinned entries until resident
// bytes fit the budget. Pinned entries are skipped: the budget may be
// temporarily exceeded while every resident block is in use, which is
// bounded by the working set of open readers.
func (c *BlockCache) evictLocked() {
	for c.bytes > c.capacity {
		evicted := false
		for el := c.lru.Back(); el != nil; {
			prev := el.Prev()
			e := el.Value.(*CacheEntry)
			if e.refs.Load() == 0 {
				c.removeLocked(e)
				c.reg.Counter("blockcache_evictions").Inc()
				evicted = true
				break
			}
			el = prev
		}
		if !evicted {
			return // everything resident is pinned
		}
	}
}

// removeLocked detaches a resident entry from the index and LRU list.
func (c *BlockCache) removeLocked(e *CacheEntry) {
	delete(c.entries, e.id)
	c.lru.Remove(e.elem)
	e.elem = nil
	c.bytes -= int64(len(e.data))
}

// Invalidate detaches the given blocks from the cache regardless of pin
// state (holders keep valid data). Used when blocks are reclaimed on file
// deletion, and by chaos tests to force a refill from replicas.
func (c *BlockCache) Invalidate(ids ...BlockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		if e := c.entries[id]; e != nil {
			c.removeLocked(e)
			c.reg.Counter("blockcache_invalidations").Inc()
		}
	}
}

// Bytes returns the resident cached bytes.
func (c *BlockCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Entries returns the resident entry count.
func (c *BlockCache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Refs returns the outstanding references across all entries (resident or
// evicted). Zero means no reader currently holds cache-backed slices.
func (c *BlockCache) Refs() int64 { return c.pinned.Load() }
