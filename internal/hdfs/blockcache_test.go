package hdfs

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// newCachedCluster builds a cluster with the shared block cache enabled —
// the serving configuration — plus a written file to read back.
func newCachedCluster(t *testing.T, blockSize int64, fileBytes, rf int, budget int64) (*Cluster, *Client, []byte) {
	t.Helper()
	c := NewCluster(3, blockSize)
	c.SetBlockCacheCapacity(budget)
	cl := c.Client("")
	data := payload(fileBytes, 9)
	if err := cl.WriteFile("/f", data, rf); err != nil {
		t.Fatal(err)
	}
	return c, cl, data
}

// TestReadAtShortCachedBlockDetected is the regression test for the silent
// misalignment bug: a cached block shorter than the NameNode's recorded
// length (a truncated cache entry) used to return a short chunk with a nil
// error, and ReadAt advanced to the next block — every subsequent byte of
// the response landed at the wrong offset. It must fail loudly with
// io.ErrUnexpectedEOF instead.
func TestReadAtShortCachedBlockDetected(t *testing.T) {
	const block = 1024
	c, cl, data := newCachedCluster(t, block, 2*block, 2, 0)
	blocks, err := cl.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	// Poison the cache: block 0 resident with only 600 of its 1024 bytes.
	const short = 600
	bc := c.BlockCache()
	e, source, err := bc.GetOrFill(blocks[0].ID, func() ([]byte, error) {
		return append([]byte(nil), data[:short]...), nil
	})
	if err != nil || source != "fill" {
		t.Fatalf("poison fill: source=%q err=%v", source, err)
	}
	e.Release()

	r, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]byte, 2*block)
	n, err := r.ReadAt(buf, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadAt over truncated cached block: n=%d err=%v, want io.ErrUnexpectedEOF", n, err)
	}
	if n != short {
		t.Fatalf("ReadAt returned n=%d, want the %d bytes that exist", n, short)
	}
	if !bytes.Equal(buf[:n], data[:short]) {
		t.Fatal("the bytes that were returned are misaligned")
	}
	// The zero-copy path must refuse the same way.
	if _, err := r.RangeSlices(0, 2*block); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("RangeSlices over truncated cached block: err=%v, want io.ErrUnexpectedEOF", err)
	}
}

// waitRefsZero waits for the cache's outstanding-reference gauge to drain
// (prefetch fills hold transient references from background goroutines).
func waitRefsZero(t *testing.T, bc *BlockCache) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for bc.Refs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cache refs stuck at %d after readers closed", bc.Refs())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentReadersShareSingleFill streams one file through N
// concurrent readers (run under -race via make tier1): every block must be
// fetched from replicas exactly once (single-flight fill), every reader
// must see identical bytes, and all cache references must return to zero
// once the readers close.
func TestConcurrentReadersShareSingleFill(t *testing.T) {
	const block = 64 << 10
	const blocks = 4
	c, cl, data := newCachedCluster(t, block, blocks*block, 2, 0)
	bc := c.BlockCache()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := cl.Open("/f")
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			got, err := io.ReadAll(r)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- errors.New("reader saw wrong bytes")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.CacheFills != blocks {
		t.Fatalf("fills = %d, want exactly %d (one single-flight fetch per block for %d readers)",
			st.CacheFills, blocks, readers)
	}
	if served := st.CacheHits + st.CacheWaits; served == 0 {
		t.Fatal("no reads were served by the shared cache")
	}
	waitRefsZero(t, bc)
}

// TestEvictionSparesInUseSlices runs the cache at a one-block budget while
// a reader holds zero-copy slices of block 0: the evictor must shed only
// unpinned blocks, the handed-out slice must stay byte-correct through the
// churn, and closing the reader must release every reference.
func TestEvictionSparesInUseSlices(t *testing.T) {
	const block = 1024
	const blocks = 4
	c, cl, data := newCachedCluster(t, block, blocks*block, 2, block)
	bc := c.BlockCache()

	r, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	slices, err := r.RangeSlices(100, 700) // pins block 0
	if err != nil {
		t.Fatal(err)
	}
	// Churn the rest of the file through the one-block budget.
	buf := make([]byte, block)
	for round := 0; round < 3; round++ {
		for bi := 1; bi < blocks; bi++ {
			if _, err := r.ReadAt(buf, int64(bi*block)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.CacheEvictions == 0 {
		t.Fatalf("no evictions under a one-block budget (stats %+v)", st)
	}
	var got []byte
	for _, sl := range slices {
		got = append(got, sl...)
	}
	if !bytes.Equal(got, data[100:800]) {
		t.Fatal("pinned slice content changed while the cache evicted around it")
	}
	// The pinned block survived residency; refs drain on close.
	if ent, ok := bc.acquire(r.blocks[0].ID); !ok {
		t.Fatal("pinned block 0 was evicted while referenced")
	} else {
		ent.Release()
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	waitRefsZero(t, bc)
}

// TestDeleteInvalidatesCache checks file deletion detaches the file's
// blocks from the cache so a recreated path can never serve stale bytes.
func TestDeleteInvalidatesCache(t *testing.T) {
	const block = 1024
	c, cl, _ := newCachedCluster(t, block, 2*block, 2, 0)
	if _, err := cl.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	bc := c.BlockCache()
	if bc.Entries() == 0 {
		t.Fatal("read did not populate the cache")
	}
	if err := c.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if n := bc.Entries(); n != 0 {
		t.Fatalf("%d cache entries survive deletion", n)
	}
	next := payload(2*block, 11)
	if err := cl.WriteFile("/f", next, 2); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, next) {
		t.Fatal("recreated file served stale cached bytes")
	}
}
