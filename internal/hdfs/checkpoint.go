package hdfs

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file implements NameNode checkpointing, HDFS's fsimage mechanism:
// the namespace tree and block metadata persist across a NameNode restart,
// while block *locations* do not — they are rebuilt from DataNode block
// reports, exactly as in Hadoop. Without this, the single NameNode of
// Figure 11 is a metadata single point of failure; with it, the video
// catalog survives a front-end reboot.

type inodeWire struct {
	Name        string
	Dir         bool
	Children    map[string]*inodeWire
	Blocks      []BlockID
	Replication int
	Complete    bool
}

type blockWire struct {
	ID          BlockID
	Length      int64
	Replication int
}

type fsImage struct {
	BlockSize int64
	Root      *inodeWire
	Blocks    []blockWire
	NextBlock BlockID
}

func wireTree(n *inode) *inodeWire {
	w := &inodeWire{
		Name: n.name, Dir: n.dir,
		Blocks:      append([]BlockID(nil), n.blocks...),
		Replication: n.replication, Complete: n.complete,
	}
	if n.dir {
		w.Children = make(map[string]*inodeWire, len(n.children))
		for name, child := range n.children {
			w.Children[name] = wireTree(child)
		}
	}
	return w
}

func unwireTree(w *inodeWire) *inode {
	n := &inode{
		name: w.Name, dir: w.Dir,
		blocks:      append([]BlockID(nil), w.Blocks...),
		replication: w.Replication, complete: w.Complete,
	}
	if w.Dir {
		n.children = make(map[string]*inode, len(w.Children))
		for name, child := range w.Children {
			n.children[name] = unwireTree(child)
		}
	}
	return n
}

// SaveImage serializes the namespace and block metadata (an fsimage).
// Replica locations are deliberately excluded: they are soft state owned by
// the DataNodes' block reports.
func (nn *NameNode) SaveImage() ([]byte, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	img := fsImage{
		BlockSize: nn.blockSize,
		Root:      wireTree(nn.root),
		NextBlock: nn.nextBlock,
	}
	for id, info := range nn.blocks {
		img.Blocks = append(img.Blocks, blockWire{ID: id, Length: info.Length, Replication: info.Replication})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, fmt.Errorf("hdfs: encode fsimage: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadNameNode reconstructs a NameNode from an fsimage. It knows the
// namespace and every block's metadata, but no locations until DataNodes
// report in; the cluster stays in effective safe-mode (reads fail) until
// block reports arrive.
func LoadNameNode(image []byte) (*NameNode, error) {
	var img fsImage
	if err := gob.NewDecoder(bytes.NewReader(image)).Decode(&img); err != nil {
		return nil, fmt.Errorf("hdfs: decode fsimage: %w", err)
	}
	nn := NewNameNode(img.BlockSize)
	nn.root = unwireTree(img.Root)
	nn.nextBlock = img.NextBlock
	for _, b := range img.Blocks {
		nn.blocks[b.ID] = &BlockInfo{ID: b.ID, Length: b.Length, Replication: b.Replication}
	}
	return nn, nil
}

// RestartNameNode simulates a NameNode crash + restart from a checkpoint:
// the master is replaced by one loaded from image, every DataNode
// re-registers, and block reports rebuild the location map.
func (c *Cluster) RestartNameNode(image []byte) error {
	nn, err := LoadNameNode(image)
	if err != nil {
		return err
	}
	c.mu.RLock()
	nodes := make([]*DataNode, 0, len(c.nodes))
	for _, dn := range c.nodes {
		nodes = append(nodes, dn)
	}
	c.mu.RUnlock()
	c.nn = nn
	for _, dn := range nodes {
		if dn.Down() {
			continue
		}
		nn.RegisterDataNode(dn.Name(), 1<<40)
		for _, id := range dn.BlockIDs() {
			if err := nn.BlockReceived(dn.Name(), id); err != nil {
				// A block unknown to the checkpoint (written after
				// the save) is orphaned; the datanode reclaims it.
				dn.Delete(id)
			}
		}
	}
	c.reg.Counter("namenode_restarts").Inc()
	return nil
}
