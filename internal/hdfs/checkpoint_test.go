package hdfs

import (
	"bytes"
	"errors"
	"testing"
)

func TestCheckpointRestartRoundTrip(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	dataA := payload(3*testBlock, 1)
	dataB := payload(testBlock/2, 2)
	cl.WriteFile("/videos/a.vcf", dataA, 2)
	cl.WriteFile("/videos/b.vcf", dataB, 3)
	c.NameNode().Mkdir("/index")

	img, err := c.NameNode().SaveImage()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNameNode(img); err != nil {
		t.Fatal(err)
	}
	// Namespace intact.
	ls, err := c.NameNode().List("/videos")
	if err != nil || len(ls) != 2 {
		t.Fatalf("List after restart: %v %v", ls, err)
	}
	st, _ := c.NameNode().Stat("/videos/a.vcf")
	if st.Size != int64(len(dataA)) || st.Replication != 2 {
		t.Fatalf("stat after restart: %+v", st)
	}
	// Data readable: locations rebuilt from block reports.
	got, err := cl.ReadFile("/videos/a.vcf")
	if err != nil || !bytes.Equal(got, dataA) {
		t.Fatalf("read a after restart: %v", err)
	}
	got, err = cl.ReadFile("/videos/b.vcf")
	if err != nil || !bytes.Equal(got, dataB) {
		t.Fatalf("read b after restart: %v", err)
	}
	// Replication metadata survived: killing a node still queues repair.
	blocks, _ := cl.BlockLocations("/videos/a.vcf")
	c.KillDataNode(blocks[0].Locations[0])
	if c.RepairAll() == 0 {
		t.Fatal("no repair after post-restart failure")
	}
	if under := c.NameNode().UnderReplicated(2); len(under) != 0 {
		t.Fatalf("under-replicated: %v", under)
	}
}

func TestRestartLosesPostCheckpointFiles(t *testing.T) {
	// Files written after the checkpoint are gone after restart (no edit
	// log in this model) and their orphaned blocks are reclaimed.
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	cl.WriteFile("/old", payload(testBlock, 3), 2)
	img, _ := c.NameNode().SaveImage()
	cl.WriteFile("/new", payload(testBlock, 4), 2)
	usedBefore := c.DataNode("dn0").Used() + c.DataNode("dn1").Used()
	if err := c.RestartNameNode(img); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("/new"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-checkpoint file survived: %v", err)
	}
	if _, err := cl.ReadFile("/old"); err != nil {
		t.Fatalf("pre-checkpoint file lost: %v", err)
	}
	usedAfter := c.DataNode("dn0").Used() + c.DataNode("dn1").Used()
	if usedAfter >= usedBefore {
		t.Fatalf("orphaned blocks not reclaimed: %d -> %d", usedBefore, usedAfter)
	}
}

func TestRestartWithDownNodeStaysDegraded(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(2*testBlock, 5)
	cl.WriteFile("/f", data, 2)
	img, _ := c.NameNode().SaveImage()
	// One node is down during the restart: its replicas are unknown.
	c.DataNode("dn0").SetDown(true)
	if err := c.RestartNameNode(img); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read with one silent node: %v", err)
	}
	// When the node comes back, Revive re-announces its blocks.
	c.ReviveDataNode("dn0")
	blocks, _ := cl.BlockLocations("/f")
	total := 0
	for _, b := range blocks {
		total += len(b.Locations)
	}
	if total != 4 { // 2 blocks x RF 2
		t.Fatalf("replica count after revive = %d, want 4", total)
	}
}

func TestLoadNameNodeRejectsGarbage(t *testing.T) {
	if _, err := LoadNameNode([]byte("junk")); err == nil {
		t.Fatal("garbage image loaded")
	}
}
