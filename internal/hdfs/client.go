package hdfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"videocloud/internal/trace"
)

// Client implements the HDFS user-facing protocol described in §III-B: "Name
// node receives users' commands, delivers Data node [addresses] back to
// users ... so that users can directly deliver information to Data node."
// Writes go through a replication pipeline; reads fail over between replicas
// and report corrupt ones.
//
// Block reads rank candidate replicas with a load-aware policy: the
// client's own node first (locality), then ascending per-DataNode in-flight
// read count, ties keeping the NameNode's order. ReadFile fans block
// fetches out with bounded concurrency; both knobs live on Cluster.
type Client struct {
	cluster   *Cluster
	localNode string
}

// ErrAllReplicasFailed is returned when no replica of a block is readable.
var ErrAllReplicasFailed = errors.New("hdfs: all replicas failed")

// Writer streams a file into HDFS, cutting it into blocks. Its internal
// buffer is a single block-sized allocation reused for the writer's
// lifetime, so steady-state multi-block writes cause no buffer churn.
type Writer struct {
	client  *Client
	path    string
	buf     []byte // len = bytes buffered, cap grows once to block size
	flushed int
	closed  bool
	err     error
	// flushHook, when set (tests only), runs before each block flush with
	// the zero-based block index; an error fails that flush before it
	// touches the cluster.
	flushHook func(blockIndex int) error
	// span, when non-nil, parents a per-block hdfs.write_block span for
	// every flushed block.
	span *trace.Span
}

// Create opens a new file for writing with the given replication factor.
func (c *Client) Create(path string, replication int) (*Writer, error) {
	return c.CreateCtx(context.Background(), path, replication)
}

// CreateCtx is Create linked to the trace span in ctx: every flushed block
// records an hdfs.write_block child span.
func (c *Client) CreateCtx(ctx context.Context, path string, replication int) (*Writer, error) {
	if err := c.cluster.nn.Create(path, replication); err != nil {
		return nil, err
	}
	return &Writer{client: c, path: path, span: trace.FromContext(ctx)}, nil
}

// Write implements io.Writer, flushing whole blocks as they fill. The
// returned count is exactly the bytes of p accepted — committed to the
// cluster or still buffered; bytes lost in a failed pipeline flush are not
// reported as written.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("hdfs: write after close on %q", w.path)
	}
	bs := int(w.client.cluster.nn.BlockSize())
	written := 0
	for len(p) > 0 {
		if cap(w.buf) < bs {
			// Grow geometrically but never past one block: the buffer
			// reaches block size once and is then reused forever.
			need := len(w.buf) + len(p)
			if need > bs {
				need = bs
			}
			if cap(w.buf) < need {
				newCap := 2 * cap(w.buf)
				if newCap < need {
					newCap = need
				}
				if newCap > bs {
					newCap = bs
				}
				grown := make([]byte, len(w.buf), newCap)
				copy(grown, w.buf)
				w.buf = grown
			}
		}
		n := copy(w.buf[len(w.buf):cap(w.buf)], p)
		w.buf = w.buf[:len(w.buf)+n]
		p = p[n:]
		if len(w.buf) == bs {
			if err := w.flushBlock(w.buf); err != nil {
				w.err = err
				return written, err
			}
			w.buf = w.buf[:0]
		}
		written += n
	}
	return written, nil
}

// flushBlock runs the write pipeline for one block: allocate at the
// NameNode, then store on the targets — concurrently by default, since each
// in-process "forward" hop is independent, or chained sequentially when the
// cluster's write concurrency is 1. Targets that fail are dropped; the
// block commits with the replicas that succeeded, in pipeline order, and
// the NameNode repairs the rest.
func (w *Writer) flushBlock(data []byte) error {
	sp := w.span.StartChild("hdfs.write_block")
	err := w.flushBlockSpan(data, sp)
	if err != nil {
		sp.SetError(err)
	}
	sp.End()
	return err
}

func (w *Writer) flushBlockSpan(data []byte, sp *trace.Span) error {
	c := w.client
	idx := w.flushed
	w.flushed++
	sp.AnnotateInt("index", int64(idx))
	sp.AnnotateInt("bytes", int64(len(data)))
	if w.flushHook != nil {
		if err := w.flushHook(idx); err != nil {
			return err
		}
	}
	start := time.Now()
	info, err := c.cluster.nn.AddBlock(w.path, c.localNode)
	if err != nil {
		return err
	}
	sp.AnnotateInt("block", int64(info.ID))
	ok := make([]bool, len(info.Locations))
	store := func(i int, target string) {
		dn := c.cluster.DataNode(target)
		ok[i] = dn != nil && dn.Store(info.ID, data) == nil
	}
	if workers := c.cluster.writeWorkers(len(info.Locations)); workers <= 1 {
		for i, target := range info.Locations {
			store(i, target)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, target := range info.Locations {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, target string) {
				defer wg.Done()
				defer func() { <-sem }()
				store(i, target)
			}(i, target)
		}
		wg.Wait()
	}
	stored := make([]string, 0, len(info.Locations))
	for i, target := range info.Locations {
		if ok[i] {
			stored = append(stored, target)
		} else if sp.Recording() {
			sp.Annotate("replica_failed", target)
		}
	}
	if len(stored) == 0 {
		return fmt.Errorf("hdfs: pipeline for block %d failed on all %d targets",
			info.ID, len(info.Locations))
	}
	if err := c.cluster.nn.CommitBlock(info.ID, int64(len(data)), stored); err != nil {
		return err
	}
	if sp.Recording() {
		sp.AnnotateInt("replicas", int64(len(stored)))
	}
	c.cluster.reg.Counter("bytes_written").Add(int64(len(data)) * int64(len(stored)))
	c.cluster.reg.Counter("blocks_written").Inc()
	c.cluster.reg.Histogram("hdfs_write_seconds").
		ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
	return nil
}

// Close flushes the final partial block and completes the file.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.flushBlock(w.buf); err != nil {
			w.err = err
			return err
		}
		w.buf = nil
	}
	return w.client.cluster.nn.CloseFile(w.path)
}

// WriteFile creates path with the given replication and writes data.
func (c *Client) WriteFile(path string, data []byte, replication int) error {
	return c.WriteFileCtx(context.Background(), path, data, replication)
}

// WriteFileCtx is WriteFile under an hdfs.write_file span parented from
// ctx; each flushed block nests an hdfs.write_block child under it.
func (c *Client) WriteFileCtx(ctx context.Context, path string, data []byte, replication int) error {
	sp := trace.FromContext(ctx).StartChild("hdfs.write_file")
	if sp != nil {
		sp.Annotate("path", path)
		sp.AnnotateInt("bytes", int64(len(data)))
	}
	err := c.writeFileSpan(path, data, replication, sp)
	if err != nil {
		sp.SetError(err)
	}
	sp.End()
	if fn := c.cluster.writeMeter.Load(); fn != nil && err == nil {
		(*fn)(ctx, path, int64(len(data)))
	}
	return err
}

func (c *Client) writeFileSpan(path string, data []byte, replication int, sp *trace.Span) error {
	if err := c.cluster.nn.Create(path, replication); err != nil {
		return err
	}
	w := &Writer{client: c, path: path, span: sp}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// orderReplicas ranks a block's candidate replicas by the selection
// policy: the client's own node first (zero-hop locality), then ascending
// in-flight read count per datanode, ties keeping the NameNode's order.
// The decision taken for the top pick is counted in the cluster registry
// (replica_select_local / _least_loaded / _first).
func (c *Client) orderReplicas(locs []string) []string {
	if len(locs) == 0 {
		return locs
	}
	if len(locs) == 1 {
		c.cluster.reg.Counter(c.pickCounter(locs[0], locs, nil)).Inc()
		return locs
	}
	// Snapshot load counts so the sort comparator stays consistent even
	// while other readers change them.
	load := make(map[string]int64, len(locs))
	rank := make(map[string]int, len(locs))
	for i, l := range locs {
		load[l] = c.cluster.InflightReads(l)
		rank[l] = i
	}
	out := make([]string, len(locs))
	copy(out, locs)
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i] == c.localNode, out[j] == c.localNode
		if c.localNode != "" && li != lj {
			return li
		}
		if load[out[i]] != load[out[j]] {
			return load[out[i]] < load[out[j]]
		}
		return rank[out[i]] < rank[out[j]]
	})
	c.cluster.reg.Counter(c.pickCounter(out[0], locs, load)).Inc()
	return out
}

// pickCounter names the policy metric matching the chosen first replica.
func (c *Client) pickCounter(pick string, locs []string, load map[string]int64) string {
	switch {
	case c.localNode != "" && pick == c.localNode:
		return "replica_select_local"
	case pick != locs[0] && load != nil && load[pick] < load[locs[0]]:
		return "replica_select_least_loaded"
	default:
		return "replica_select_first"
	}
}

// fetchWithFailover is the one replica-iteration path shared by whole-block
// and range reads: rank replicas by the selection policy, track per-node
// in-flight counts, fail over on any error, report corrupt replicas to the
// NameNode (which queues repair), and record read latency. read runs
// against a single replica. When parent records, the fetch emits an
// hdfs.read_block span annotated with every failed replica and the eventual
// failover; readahead ("hit"/"miss"/"prefetch") notes how the range-read
// cache classified this fetch.
func (c *Client) fetchWithFailover(parent *trace.Span, readahead string, info BlockInfo, read func(dn *DataNode) ([]byte, error)) ([]byte, error) {
	var data []byte
	_, err := c.fetchIntoFailover(parent, readahead, info, func(dn *DataNode) (int, error) {
		d, err := read(dn)
		if err != nil {
			return 0, err
		}
		data = d
		return len(d), nil
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// fetchIntoFailover is the base replica-iteration loop; read reports the
// bytes it produced (typically written into a caller-owned buffer, which is
// why no []byte crosses this boundary — the alloc-free into-variants and
// the allocating fetchWithFailover both compile down to it).
func (c *Client) fetchIntoFailover(parent *trace.Span, readahead string, info BlockInfo, read func(dn *DataNode) (int, error)) (int, error) {
	sp := parent.StartChild("hdfs.read_block")
	if sp != nil {
		sp.AnnotateInt("block", int64(info.ID))
		if readahead != "" {
			sp.Annotate("readahead", readahead)
		}
	}
	start := time.Now()
	var lastErr error = fmt.Errorf("%w: block %d has no live replicas", ErrAllReplicasFailed, info.ID)
	for i, loc := range c.orderReplicas(info.Locations) {
		dn := c.cluster.DataNode(loc)
		if dn == nil {
			continue
		}
		ctr := c.cluster.inflightFor(loc)
		ctr.Add(1)
		n, err := read(dn)
		ctr.Add(-1)
		if err == nil {
			if i > 0 {
				c.cluster.reg.Counter("replica_failovers").Inc()
				if sp.Recording() {
					sp.Annotate("failover", fmt.Sprintf("retry served by %s after %d failed replica(s)", loc, i))
				}
			} else if sp.Recording() {
				sp.Annotate("replica", loc)
			}
			c.cluster.reg.Counter("bytes_read").Add(int64(n))
			c.cluster.reg.Histogram("hdfs_read_seconds").
				ObserveExemplar(time.Since(start).Seconds(), sp.TraceID())
			sp.End()
			return n, nil
		}
		if sp.Recording() {
			sp.Annotate("replica_error", loc+": "+err.Error())
		}
		if errors.Is(err, ErrChecksum) {
			c.cluster.nn.ReportCorrupt(loc, info.ID)
			c.cluster.reg.Counter("corrupt_replicas_reported").Inc()
		}
		lastErr = err
	}
	err := fmt.Errorf("%w: block %d: %v", ErrAllReplicasFailed, info.ID, lastErr)
	sp.SetError(err)
	sp.End()
	return 0, err
}

// fetchRangeInto reads [off, off+len(dst)) of a block into dst with replica
// failover, verifying and copying only the checksum chunks the window
// overlaps — no intermediate buffer.
func (c *Client) fetchRangeInto(parent *trace.Span, readahead string, info BlockInfo, off int64, dst []byte) (int, error) {
	return c.fetchIntoFailover(parent, readahead, info, func(dn *DataNode) (int, error) {
		return dn.ReadRangeInto(info.ID, off, dst)
	})
}

// readBlock fetches one whole block, failing over across replicas.
func (c *Client) readBlock(parent *trace.Span, info BlockInfo) ([]byte, error) {
	return c.fetchWithFailover(parent, "", info, func(dn *DataNode) ([]byte, error) {
		return dn.Read(info.ID)
	})
}

// blockInto lands one whole block in dst (len(dst) = block length). With
// the shared cache enabled the block is served from — or filled into — the
// cache, so a re-read of a hot file is a single copy with no checksum pass;
// otherwise the replica verifies its whole-block CRC and copies straight
// into dst.
func (c *Client) blockInto(parent *trace.Span, info BlockInfo, dst []byte) (int, error) {
	if bc := c.cluster.BlockCache(); bc != nil {
		e, source, err := bc.GetOrFill(info.ID, func() ([]byte, error) {
			return c.fetchWithFailover(parent, "cache_fill", info, func(dn *DataNode) ([]byte, error) {
				return dn.Read(info.ID)
			})
		})
		if err != nil {
			return 0, err
		}
		n := copy(dst, e.data)
		e.Release()
		if source != "fill" && parent.Recording() {
			if sp := parent.StartChild("hdfs.read_block"); sp != nil {
				sp.AnnotateInt("block", int64(info.ID))
				sp.Annotate("cache", source)
				sp.End()
			}
		}
		return n, nil
	}
	return c.fetchIntoFailover(parent, "", info, func(dn *DataNode) (int, error) {
		return dn.ReadInto(info.ID, dst)
	})
}

// ReadFile returns the whole content of path, fetching blocks in parallel
// with bounded concurrency (Cluster.SetReadConcurrency). The result is
// byte-identical to a sequential read: every block lands at its own offset
// in one pre-sized buffer.
func (c *Client) ReadFile(path string) ([]byte, error) {
	return c.ReadFileCtx(context.Background(), path)
}

// ReadFileInto is ReadFile reusing dst's backing array when it is large
// enough (growing it otherwise) — the steady-state form for callers that
// re-read files in a loop (MapReduce splits, transcode inputs), which
// otherwise pay a full buffer allocation and zeroing per read.
func (c *Client) ReadFileInto(path string, dst []byte) ([]byte, error) {
	return c.readFileInto(context.Background(), path, dst)
}

// ReadFileCtx is ReadFile under an hdfs.read_file span parented from ctx;
// each block fetch nests an hdfs.read_block child recording per-replica
// errors and failovers.
func (c *Client) ReadFileCtx(ctx context.Context, path string) ([]byte, error) {
	return c.readFileInto(ctx, path, nil)
}

func (c *Client) readFileInto(ctx context.Context, path string, dst []byte) ([]byte, error) {
	sp := trace.FromContext(ctx).StartChild("hdfs.read_file")
	if sp != nil {
		sp.Annotate("path", path)
	}
	data, err := c.readFileSpan(path, dst, sp)
	if err != nil {
		sp.SetError(err)
	} else if sp.Recording() {
		sp.AnnotateInt("bytes", int64(len(data)))
	}
	sp.End()
	return data, err
}

func (c *Client) readFileSpan(path string, dst []byte, sp *trace.Span) ([]byte, error) {
	blocks, err := c.cluster.nn.GetBlockLocations(path)
	if err != nil {
		return nil, err
	}
	if len(blocks) == 0 {
		return nil, nil
	}
	offsets := make([]int64, len(blocks))
	var total int64
	for i, b := range blocks {
		offsets[i] = total
		total += b.Length
	}
	out := dst
	if int64(cap(out)) < total {
		out = make([]byte, total)
	}
	out = out[:total]
	if workers := c.cluster.readWorkers(len(blocks)); workers > 1 && len(blocks) > 1 {
		if err := c.readBlocksParallel(sp, blocks, offsets, out, workers); err != nil {
			return nil, err
		}
		return out, nil
	}
	for i, b := range blocks {
		n, err := c.blockInto(sp, b, out[offsets[i]:offsets[i]+b.Length])
		if err != nil {
			return nil, err
		}
		if int64(n) < b.Length {
			return nil, fmt.Errorf("hdfs: block %d short read: %d of %d bytes: %w",
				b.ID, n, b.Length, io.ErrUnexpectedEOF)
		}
	}
	return out, nil
}

// readBlocksParallel fans block fetches out over a bounded worker pool;
// the first error wins and stops further fetches from launching.
func (c *Client) readBlocksParallel(sp *trace.Span, blocks []BlockInfo, offsets []int64, out []byte, workers int) error {
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
	)
	for i := range blocks {
		if failed.Load() {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if failed.Load() {
				return
			}
			b := blocks[i]
			n, err := c.blockInto(sp, b, out[offsets[i]:offsets[i]+b.Length])
			if err == nil && int64(n) < b.Length {
				err = fmt.Errorf("hdfs: block %d short read: %d of %d bytes: %w",
					b.ID, n, b.Length, io.ErrUnexpectedEOF)
			}
			if err != nil {
				if failed.CompareAndSwap(false, true) {
					mu.Lock()
					firstErr = err
					mu.Unlock()
				}
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() {
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
	return nil
}

// Open returns a random-access reader for path.
func (c *Client) Open(path string) (*Reader, error) {
	return c.OpenCtx(context.Background(), path)
}

// OpenCtx is Open linked to the trace span in ctx: range reads and
// prefetches through the returned Reader record hdfs.read_block spans
// annotated with readahead hits and misses.
func (c *Client) OpenCtx(ctx context.Context, path string) (*Reader, error) {
	sp := trace.FromContext(ctx).StartChild("hdfs.open")
	if sp != nil {
		sp.Annotate("path", path)
	}
	r, err := c.open(path)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, err
	}
	sp.End()
	r.span = trace.FromContext(ctx)
	return r, nil
}

func (c *Client) open(path string) (*Reader, error) {
	// One batched NameNode round trip resolves status and block layout
	// together — the open-for-streaming path used to pay two.
	st, blocks, err := c.cluster.nn.FileBlocks(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir {
		return nil, fmt.Errorf("%w: %q", ErrIsDirectory, path)
	}
	starts := make([]int64, len(blocks))
	var size int64
	for i, b := range blocks {
		starts[i] = size
		size += b.Length
	}
	return &Reader{
		client: c,
		blocks: blocks,
		starts: starts,
		size:   size,
		st:     st,
		cache:  make(map[int]*raEntry),
	}, nil
}

// BlockLocations exposes a file's block layout — what the MapReduce
// JobTracker uses for data-locality scheduling.
func (c *Client) BlockLocations(path string) ([]BlockInfo, error) {
	return c.cluster.nn.GetBlockLocations(path)
}

// Mkdir creates a directory and any missing parents.
func (c *Client) Mkdir(path string) error { return c.cluster.nn.Mkdir(path) }

// List returns a directory's entries.
func (c *Client) List(path string) ([]FileStatus, error) { return c.cluster.nn.List(path) }

// Stat returns metadata for a path.
func (c *Client) Stat(path string) (FileStatus, error) { return c.cluster.nn.Stat(path) }

// Remove deletes a file or empty directory, reclaiming block storage.
func (c *Client) Remove(path string) error { return c.cluster.Delete(path) }
