package hdfs

import (
	"errors"
	"fmt"
	"io"
)

// Client implements the HDFS user-facing protocol described in §III-B: "Name
// node receives users' commands, delivers Data node [addresses] back to
// users ... so that users can directly deliver information to Data node."
// Writes go through a replication pipeline; reads fail over between replicas
// and report corrupt ones.
type Client struct {
	cluster   *Cluster
	localNode string
}

// ErrAllReplicasFailed is returned when no replica of a block is readable.
var ErrAllReplicasFailed = errors.New("hdfs: all replicas failed")

// Writer streams a file into HDFS, cutting it into blocks.
type Writer struct {
	client *Client
	path   string
	buf    []byte
	closed bool
	err    error
}

// Create opens a new file for writing with the given replication factor.
func (c *Client) Create(path string, replication int) (*Writer, error) {
	if err := c.cluster.nn.Create(path, replication); err != nil {
		return nil, err
	}
	return &Writer{client: c, path: path}, nil
}

// Write implements io.Writer, flushing whole blocks as they fill.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, fmt.Errorf("hdfs: write after close on %q", w.path)
	}
	w.buf = append(w.buf, p...)
	bs := int(w.client.cluster.nn.BlockSize())
	for len(w.buf) >= bs {
		if err := w.flushBlock(w.buf[:bs]); err != nil {
			w.err = err
			return 0, err
		}
		w.buf = w.buf[bs:]
	}
	return len(p), nil
}

// flushBlock runs the write pipeline for one block: allocate at the
// NameNode, then store on each target in order (first target forwards to
// the next, as the real pipeline does; in-process that is a sequential
// chain). Targets that fail mid-pipeline are dropped; the block commits
// with the replicas that succeeded, and the NameNode repairs the rest.
func (w *Writer) flushBlock(data []byte) error {
	c := w.client
	info, err := c.cluster.nn.AddBlock(w.path, c.localNode)
	if err != nil {
		return err
	}
	var stored []string
	for _, target := range info.Locations {
		dn := c.cluster.DataNode(target)
		if dn == nil {
			continue
		}
		if err := dn.Store(info.ID, data); err != nil {
			continue
		}
		stored = append(stored, target)
	}
	if len(stored) == 0 {
		return fmt.Errorf("hdfs: pipeline for block %d failed on all %d targets",
			info.ID, len(info.Locations))
	}
	if err := c.cluster.nn.CommitBlock(info.ID, int64(len(data)), stored); err != nil {
		return err
	}
	c.cluster.reg.Counter("bytes_written").Add(int64(len(data)) * int64(len(stored)))
	c.cluster.reg.Counter("blocks_written").Inc()
	return nil
}

// Close flushes the final partial block and completes the file.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.flushBlock(w.buf); err != nil {
			w.err = err
			return err
		}
		w.buf = nil
	}
	return w.client.cluster.nn.CloseFile(w.path)
}

// WriteFile creates path with the given replication and writes data.
func (c *Client) WriteFile(path string, data []byte, replication int) error {
	w, err := c.Create(path, replication)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// readBlock fetches one block, failing over across replicas. Corrupt
// replicas are reported to the NameNode (which queues repair).
func (c *Client) readBlock(info BlockInfo) ([]byte, error) {
	var lastErr error = fmt.Errorf("%w: block %d has no live replicas", ErrAllReplicasFailed, info.ID)
	for _, loc := range info.Locations {
		dn := c.cluster.DataNode(loc)
		if dn == nil {
			continue
		}
		data, err := dn.Read(info.ID)
		if err == nil {
			c.cluster.reg.Counter("bytes_read").Add(int64(len(data)))
			return data, nil
		}
		if errors.Is(err, ErrChecksum) {
			c.cluster.nn.ReportCorrupt(loc, info.ID)
			c.cluster.reg.Counter("corrupt_replicas_reported").Inc()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: block %d: %v", ErrAllReplicasFailed, info.ID, lastErr)
}

// ReadFile returns the whole content of path.
func (c *Client) ReadFile(path string) ([]byte, error) {
	blocks, err := c.cluster.nn.GetBlockLocations(path)
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, b := range blocks {
		data, err := c.readBlock(b)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// Open returns a random-access reader for path.
func (c *Client) Open(path string) (*Reader, error) {
	blocks, err := c.cluster.nn.GetBlockLocations(path)
	if err != nil {
		return nil, err
	}
	var size int64
	for _, b := range blocks {
		size += b.Length
	}
	return &Reader{client: c, blocks: blocks, size: size}, nil
}

// Reader reads an HDFS file with io.Reader/io.Seeker/io.ReaderAt semantics;
// it backs both sequential consumption (MapReduce splits) and the
// seekable-playback path of the video site (HTTP Range requests).
type Reader struct {
	client *Client
	blocks []BlockInfo
	size   int64
	pos    int64
}

// Size returns the file length.
func (r *Reader) Size() int64 { return r.size }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("hdfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("hdfs: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// ReadAt implements io.ReaderAt, fetching only the block ranges covering
// [off, off+len(p)).
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off >= r.size {
		return 0, io.EOF
	}
	n := 0
	var blockStart int64
	for _, b := range r.blocks {
		blockEnd := blockStart + b.Length
		if off+int64(len(p)) <= blockStart || off >= blockEnd {
			blockStart = blockEnd
			continue
		}
		// Overlap of [off, off+len(p)) with this block.
		lo := off + int64(n)
		if lo < blockStart {
			lo = blockStart
		}
		want := int64(len(p) - n)
		chunk, err := r.fetchRange(b, lo-blockStart, want)
		if err != nil {
			return n, err
		}
		n += copy(p[n:], chunk)
		blockStart = blockEnd
		if n == len(p) {
			return n, nil
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *Reader) fetchRange(info BlockInfo, off, length int64) ([]byte, error) {
	var lastErr error = fmt.Errorf("%w: block %d has no live replicas", ErrAllReplicasFailed, info.ID)
	for _, loc := range info.Locations {
		dn := r.client.cluster.DataNode(loc)
		if dn == nil {
			continue
		}
		data, err := dn.ReadRange(info.ID, off, length)
		if err == nil {
			r.client.cluster.reg.Counter("bytes_read").Add(int64(len(data)))
			return data, nil
		}
		if errors.Is(err, ErrChecksum) {
			r.client.cluster.nn.ReportCorrupt(loc, info.ID)
			r.client.cluster.reg.Counter("corrupt_replicas_reported").Inc()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: block %d: %v", ErrAllReplicasFailed, info.ID, lastErr)
}

// BlockLocations exposes a file's block layout — what the MapReduce
// JobTracker uses for data-locality scheduling.
func (c *Client) BlockLocations(path string) ([]BlockInfo, error) {
	return c.cluster.nn.GetBlockLocations(path)
}

// Mkdir creates a directory and any missing parents.
func (c *Client) Mkdir(path string) error { return c.cluster.nn.Mkdir(path) }

// List returns a directory's entries.
func (c *Client) List(path string) ([]FileStatus, error) { return c.cluster.nn.List(path) }

// Stat returns metadata for a path.
func (c *Client) Stat(path string) (FileStatus, error) { return c.cluster.nn.Stat(path) }

// Remove deletes a file or empty directory, reclaiming block storage.
func (c *Client) Remove(path string) error { return c.cluster.Delete(path) }
