package hdfs

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"videocloud/internal/metrics"
)

// Cluster wires a NameNode to its DataNodes and implements the data-path
// operations that need both sides: the replication pipeline, replica repair,
// and block reclamation. In the paper's deployment each DataNode runs inside
// a KVM virtual machine; here the nodes are in-process objects, so the data
// path is real and the placement decisions are identical.
//
// The cluster also owns the data-path tuning knobs (checksum chunk size,
// read/write fan-out) and the per-DataNode in-flight read counts that feed
// the client's load-aware replica selection.
type Cluster struct {
	nn  *NameNode
	reg *metrics.Registry

	chunkSize atomic.Int64
	readConc  atomic.Int64 // 0 = auto (GOMAXPROCS capped at 8)
	writeConc atomic.Int64 // 0 = auto (all pipeline targets at once)

	// cache, when non-nil, is the shared refcounted block cache readers
	// serve from (SetBlockCacheCapacity). Off by default so corruption
	// tests exercise the replica path; the core stack enables it.
	cache atomic.Pointer[BlockCache]

	// writeMeter, when set, observes every successful whole-file write on
	// the data path (SetWriteMeter) — the usage-accounting tap: core wires
	// it to the tenant ledger, attributing by the writer's context.
	writeMeter atomic.Pointer[func(ctx context.Context, path string, n int64)]

	mu       sync.RWMutex
	nodes    map[string]*DataNode
	inflight map[string]*atomic.Int64
}

// DefaultBlockCacheBytes is the resident budget SetBlockCacheCapacity(0)
// selects — enough for a few hot multi-block videos at the scaled-down
// 4 MiB block size without dominating a test process's memory.
const DefaultBlockCacheBytes = 256 << 20

// SetBlockCacheCapacity enables the shared block cache with a resident-byte
// budget (0 selects DefaultBlockCacheBytes) or disables it entirely with a
// negative value. Enabling replaces any previous cache; already-open readers
// keep references into the old one, which stays valid until released.
func (c *Cluster) SetBlockCacheCapacity(budget int64) {
	if budget < 0 {
		c.cache.Store(nil)
		return
	}
	if budget == 0 {
		budget = DefaultBlockCacheBytes
	}
	c.cache.Store(newBlockCache(budget, c.reg))
}

// BlockCache returns the shared block cache, or nil when disabled.
func (c *Cluster) BlockCache() *BlockCache { return c.cache.Load() }

// SetWriteMeter installs fn to observe every successful whole-file write
// with the writer's context, the path, and the byte count; nil removes it.
// The hook must be cheap and must not call back into the cluster.
func (c *Cluster) SetWriteMeter(fn func(ctx context.Context, path string, n int64)) {
	if fn == nil {
		c.writeMeter.Store(nil)
		return
	}
	c.writeMeter.Store(&fn)
}

// NewCluster creates a cluster with n datanodes named "dn0".."dn<n-1>".
// blockSize 0 selects the 64 MiB default.
func NewCluster(n int, blockSize int64) *Cluster {
	c := &Cluster{
		nn:       NewNameNode(blockSize),
		reg:      metrics.NewRegistry(),
		nodes:    make(map[string]*DataNode),
		inflight: make(map[string]*atomic.Int64),
	}
	c.chunkSize.Store(DefaultChunkSize)
	for i := 0; i < n; i++ {
		c.AddDataNode(fmt.Sprintf("dn%d", i))
	}
	return c
}

// NameNode returns the master.
func (c *Cluster) NameNode() *NameNode { return c.nn }

// Metrics returns cluster counters (bytes written/read, repairs, readahead
// and replica-selection activity) and latency histograms.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// SetChunkSize sets the checksum chunk granularity used for blocks stored
// from now on (already-stored replicas keep their layout). sz <= 0
// restores DefaultChunkSize.
func (c *Cluster) SetChunkSize(sz int64) {
	if sz <= 0 {
		sz = DefaultChunkSize
	}
	c.chunkSize.Store(sz)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, dn := range c.nodes {
		dn.SetChunkSize(sz)
	}
}

// ChunkSize returns the checksum chunk granularity for new blocks.
func (c *Cluster) ChunkSize() int64 { return c.chunkSize.Load() }

// SetReadConcurrency bounds how many blocks Client.ReadFile fetches at
// once. n <= 0 restores the default (GOMAXPROCS, capped at 8); n == 1
// forces the strictly sequential path.
func (c *Cluster) SetReadConcurrency(n int) { c.readConc.Store(int64(n)) }

// SetWriteConcurrency bounds how many pipeline targets a block write
// stores to at once. n <= 0 restores the default (all targets); n == 1
// forces the sequential target chain.
func (c *Cluster) SetWriteConcurrency(n int) { c.writeConc.Store(int64(n)) }

// readWorkers resolves the effective read fan-out for a file of `blocks`
// blocks.
func (c *Cluster) readWorkers(blocks int) int {
	n := int(c.readConc.Load())
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	if n > blocks {
		n = blocks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// writeWorkers resolves the effective write fan-out for `targets` pipeline
// targets.
func (c *Cluster) writeWorkers(targets int) int {
	n := int(c.writeConc.Load())
	if n <= 0 || n > targets {
		n = targets
	}
	if n < 1 {
		n = 1
	}
	return n
}

// inflightFor returns the in-flight read counter for a datanode, creating
// it on first use (revived or externally registered nodes included).
func (c *Cluster) inflightFor(name string) *atomic.Int64 {
	c.mu.RLock()
	ctr := c.inflight[name]
	c.mu.RUnlock()
	if ctr != nil {
		return ctr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr = c.inflight[name]; ctr == nil {
		ctr = new(atomic.Int64)
		c.inflight[name] = ctr
	}
	return ctr
}

// InflightReads reports how many block fetches are currently outstanding
// against a datanode — the load signal replica selection orders by.
func (c *Cluster) InflightReads(name string) int64 {
	c.mu.RLock()
	ctr := c.inflight[name]
	c.mu.RUnlock()
	if ctr == nil {
		return 0
	}
	return ctr.Load()
}

// AddDataNode creates and registers a new datanode on the default rack.
func (c *Cluster) AddDataNode(name string) *DataNode {
	return c.AddDataNodeRack(name, DefaultRack)
}

// AddDataNodeRack creates and registers a datanode with rack topology.
func (c *Cluster) AddDataNodeRack(name, rack string) *DataNode {
	dn := NewDataNode(name)
	dn.SetChunkSize(c.ChunkSize())
	c.mu.Lock()
	c.nodes[name] = dn
	if c.inflight[name] == nil {
		c.inflight[name] = new(atomic.Int64)
	}
	c.mu.Unlock()
	c.nn.RegisterDataNodeRack(name, 1<<40, rack)
	return dn
}

// KillRack takes down every datanode on a rack (a switch or PDU failure)
// and triggers the NameNode's handling for each.
func (c *Cluster) KillRack(rack string) int {
	c.mu.RLock()
	var names []string
	for name := range c.nodes {
		names = append(names, name)
	}
	c.mu.RUnlock()
	killed := 0
	for _, name := range names {
		if c.nn.Rack(name) == rack {
			if err := c.KillDataNode(name); err == nil {
				killed++
			}
		}
	}
	return killed
}

// DataNodeNames returns every datanode's name, sorted — the enumeration the
// chaos injector uses for random target picks.
func (c *Cluster) DataNodeNames() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// DataNode returns a datanode by name, or nil.
func (c *Cluster) DataNode(name string) *DataNode {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[name]
}

// KillDataNode takes a node down and triggers the NameNode's failure
// handling (as missed heartbeats would); re-replication tasks are queued
// but not yet executed — call RepairAll or ProcessReplication.
func (c *Cluster) KillDataNode(name string) error {
	dn := c.DataNode(name)
	if dn == nil {
		return fmt.Errorf("hdfs: unknown datanode %q", name)
	}
	dn.SetDown(true)
	c.nn.MarkDead(name)
	c.reg.Counter("datanodes_killed").Inc()
	return nil
}

// ReviveDataNode brings a previously killed node back. Its stored replicas
// are re-announced to the NameNode.
func (c *Cluster) ReviveDataNode(name string) error {
	dn := c.DataNode(name)
	if dn == nil {
		return fmt.Errorf("hdfs: unknown datanode %q", name)
	}
	dn.SetDown(false)
	rack := c.nn.Rack(name)
	if rack == "" {
		rack = DefaultRack
	}
	c.nn.RegisterDataNodeRack(name, 1<<40, rack)
	for _, id := range dn.BlockIDs() {
		c.nn.BlockReceived(name, id)
	}
	return nil
}

// ProcessReplication executes the queued re-replication tasks, copying
// block bytes between datanodes, and returns how many succeeded.
func (c *Cluster) ProcessReplication() int {
	tasks := c.nn.TakeReplicationTasks()
	ok := 0
	for _, t := range tasks {
		src, dst := c.DataNode(t.Src), c.DataNode(t.Dst)
		if src == nil || dst == nil {
			continue
		}
		data, err := src.Read(t.Block)
		if err != nil {
			c.reg.Counter("replication_failures").Inc()
			continue
		}
		if err := dst.Store(t.Block, data); err != nil {
			c.reg.Counter("replication_failures").Inc()
			continue
		}
		if err := c.nn.BlockReceived(t.Dst, t.Block); err != nil {
			c.reg.Counter("replication_failures").Inc()
			continue
		}
		c.reg.Counter("blocks_replicated").Inc()
		c.reg.Counter("replication_bytes").Add(int64(len(data)))
		ok++
	}
	return ok
}

// RepairAll loops ProcessReplication until the queue stays empty.
func (c *Cluster) RepairAll() int {
	total := 0
	for {
		n := c.ProcessReplication()
		total += n
		if n == 0 {
			return total
		}
	}
}

// Delete removes a file and reclaims its blocks on every datanode.
func (c *Cluster) Delete(path string) error {
	freed, err := c.nn.Delete(path)
	if err != nil {
		return err
	}
	if bc := c.BlockCache(); bc != nil {
		bc.Invalidate(freed...)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, dn := range c.nodes {
		for _, id := range freed {
			dn.Delete(id)
		}
	}
	return nil
}

// Client returns a client whose writes prefer localNode for the first
// replica and whose reads prefer a localNode replica when one exists
// ("" for a remote client with no locality).
func (c *Cluster) Client(localNode string) *Client {
	return &Client{cluster: c, localNode: localNode}
}

// Stats is a point-in-time summary of the storage data path, surfaced
// through core.Status for dashboards and the CLI.
type Stats struct {
	BytesRead        int64
	BytesWritten     int64
	BlocksWritten    int64
	BlocksReplicated int64
	CorruptReported  int64

	// Readahead effectiveness: block windows served from a reader's
	// prefetch cache vs fetched from a replica, and prefetches launched.
	ReadaheadHits       int64
	ReadaheadMisses     int64
	ReadaheadPrefetches int64

	// Replica-selection policy outcomes: reads that went to the client's
	// own node, reads steered to a less-loaded replica, reads that kept
	// the NameNode's default order, and mid-read failovers.
	ReplicaLocal       int64
	ReplicaLeastLoaded int64
	ReplicaFirst       int64
	ReplicaFailovers   int64

	// Shared block cache effectiveness: block requests served from the
	// resident cache, requests that ran a replica fetch, requests that
	// joined another caller's in-flight fetch (single-flight), entries
	// shed by the budget, and the live resident/pin state.
	CacheHits        int64
	CacheMisses      int64
	CacheWaits       int64
	CacheFills       int64
	CacheEvictions   int64
	CacheBytes       int64
	CacheEntries     int64
	CacheRefs        int64

	// Per-block-operation latency distributions, in seconds.
	ReadLatency  metrics.Snapshot
	WriteLatency metrics.Snapshot
}

// Stats snapshots the data-path metrics.
func (c *Cluster) Stats() Stats {
	var cacheBytes, cacheRefs int64
	var cacheEntries int
	if bc := c.BlockCache(); bc != nil {
		cacheBytes, cacheEntries, cacheRefs = bc.Bytes(), bc.Entries(), bc.Refs()
	}
	return Stats{
		CacheHits:      c.reg.Counter("blockcache_hits").Value(),
		CacheMisses:    c.reg.Counter("blockcache_misses").Value(),
		CacheWaits:     c.reg.Counter("blockcache_waits").Value(),
		CacheFills:     c.reg.Counter("blockcache_fills").Value(),
		CacheEvictions: c.reg.Counter("blockcache_evictions").Value(),
		CacheBytes:     cacheBytes,
		CacheEntries:   int64(cacheEntries),
		CacheRefs:      cacheRefs,

		BytesRead:           c.reg.Counter("bytes_read").Value(),
		BytesWritten:        c.reg.Counter("bytes_written").Value(),
		BlocksWritten:       c.reg.Counter("blocks_written").Value(),
		BlocksReplicated:    c.reg.Counter("blocks_replicated").Value(),
		CorruptReported:     c.reg.Counter("corrupt_replicas_reported").Value(),
		ReadaheadHits:       c.reg.Counter("readahead_hits").Value(),
		ReadaheadMisses:     c.reg.Counter("readahead_misses").Value(),
		ReadaheadPrefetches: c.reg.Counter("readahead_prefetches").Value(),
		ReplicaLocal:        c.reg.Counter("replica_select_local").Value(),
		ReplicaLeastLoaded:  c.reg.Counter("replica_select_least_loaded").Value(),
		ReplicaFirst:        c.reg.Counter("replica_select_first").Value(),
		ReplicaFailovers:    c.reg.Counter("replica_failovers").Value(),
		ReadLatency:         c.reg.Histogram("hdfs_read_seconds").Snapshot(),
		WriteLatency:        c.reg.Histogram("hdfs_write_seconds").Snapshot(),
	}
}
