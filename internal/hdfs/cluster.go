package hdfs

import (
	"fmt"
	"sync"

	"videocloud/internal/metrics"
)

// Cluster wires a NameNode to its DataNodes and implements the data-path
// operations that need both sides: the replication pipeline, replica repair,
// and block reclamation. In the paper's deployment each DataNode runs inside
// a KVM virtual machine; here the nodes are in-process objects, so the data
// path is real and the placement decisions are identical.
type Cluster struct {
	nn  *NameNode
	reg *metrics.Registry

	mu    sync.RWMutex
	nodes map[string]*DataNode
}

// NewCluster creates a cluster with n datanodes named "dn0".."dn<n-1>".
// blockSize 0 selects the 64 MiB default.
func NewCluster(n int, blockSize int64) *Cluster {
	c := &Cluster{
		nn:    NewNameNode(blockSize),
		reg:   metrics.NewRegistry(),
		nodes: make(map[string]*DataNode),
	}
	for i := 0; i < n; i++ {
		c.AddDataNode(fmt.Sprintf("dn%d", i))
	}
	return c
}

// NameNode returns the master.
func (c *Cluster) NameNode() *NameNode { return c.nn }

// Metrics returns cluster counters (bytes written/read, repairs).
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// AddDataNode creates and registers a new datanode on the default rack.
func (c *Cluster) AddDataNode(name string) *DataNode {
	return c.AddDataNodeRack(name, DefaultRack)
}

// AddDataNodeRack creates and registers a datanode with rack topology.
func (c *Cluster) AddDataNodeRack(name, rack string) *DataNode {
	dn := NewDataNode(name)
	c.mu.Lock()
	c.nodes[name] = dn
	c.mu.Unlock()
	c.nn.RegisterDataNodeRack(name, 1<<40, rack)
	return dn
}

// KillRack takes down every datanode on a rack (a switch or PDU failure)
// and triggers the NameNode's handling for each.
func (c *Cluster) KillRack(rack string) int {
	c.mu.RLock()
	var names []string
	for name := range c.nodes {
		names = append(names, name)
	}
	c.mu.RUnlock()
	killed := 0
	for _, name := range names {
		if c.nn.Rack(name) == rack {
			if err := c.KillDataNode(name); err == nil {
				killed++
			}
		}
	}
	return killed
}

// DataNode returns a datanode by name, or nil.
func (c *Cluster) DataNode(name string) *DataNode {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[name]
}

// KillDataNode takes a node down and triggers the NameNode's failure
// handling (as missed heartbeats would); re-replication tasks are queued
// but not yet executed — call RepairAll or ProcessReplication.
func (c *Cluster) KillDataNode(name string) error {
	dn := c.DataNode(name)
	if dn == nil {
		return fmt.Errorf("hdfs: unknown datanode %q", name)
	}
	dn.SetDown(true)
	c.nn.MarkDead(name)
	c.reg.Counter("datanodes_killed").Inc()
	return nil
}

// ReviveDataNode brings a previously killed node back. Its stored replicas
// are re-announced to the NameNode.
func (c *Cluster) ReviveDataNode(name string) error {
	dn := c.DataNode(name)
	if dn == nil {
		return fmt.Errorf("hdfs: unknown datanode %q", name)
	}
	dn.SetDown(false)
	rack := c.nn.Rack(name)
	if rack == "" {
		rack = DefaultRack
	}
	c.nn.RegisterDataNodeRack(name, 1<<40, rack)
	for _, id := range dn.BlockIDs() {
		c.nn.BlockReceived(name, id)
	}
	return nil
}

// ProcessReplication executes the queued re-replication tasks, copying
// block bytes between datanodes, and returns how many succeeded.
func (c *Cluster) ProcessReplication() int {
	tasks := c.nn.TakeReplicationTasks()
	ok := 0
	for _, t := range tasks {
		src, dst := c.DataNode(t.Src), c.DataNode(t.Dst)
		if src == nil || dst == nil {
			continue
		}
		data, err := src.Read(t.Block)
		if err != nil {
			c.reg.Counter("replication_failures").Inc()
			continue
		}
		if err := dst.Store(t.Block, data); err != nil {
			c.reg.Counter("replication_failures").Inc()
			continue
		}
		if err := c.nn.BlockReceived(t.Dst, t.Block); err != nil {
			c.reg.Counter("replication_failures").Inc()
			continue
		}
		c.reg.Counter("blocks_replicated").Inc()
		c.reg.Counter("replication_bytes").Add(int64(len(data)))
		ok++
	}
	return ok
}

// RepairAll loops ProcessReplication until the queue stays empty.
func (c *Cluster) RepairAll() int {
	total := 0
	for {
		n := c.ProcessReplication()
		total += n
		if n == 0 {
			return total
		}
	}
}

// Delete removes a file and reclaims its blocks on every datanode.
func (c *Cluster) Delete(path string) error {
	freed, err := c.nn.Delete(path)
	if err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, dn := range c.nodes {
		for _, id := range freed {
			dn.Delete(id)
		}
	}
	return nil
}

// Client returns a client whose writes prefer localNode for the first
// replica ("" for a remote client with no locality).
func (c *Cluster) Client(localNode string) *Client {
	return &Client{cluster: c, localNode: localNode}
}
