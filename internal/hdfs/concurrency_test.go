package hdfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentWritersAndReaders drives the cluster from many goroutines
// at once — the access pattern of the paper's website, where uploads,
// playback and the indexer hit HDFS concurrently. Run with -race in CI.
func TestConcurrentWritersAndReaders(t *testing.T) {
	c := NewCluster(4, testBlock)
	const writers = 8
	const filesPerWriter = 5
	var wg sync.WaitGroup
	errs := make(chan error, writers*filesPerWriter*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.Client(fmt.Sprintf("dn%d", w%4))
			for f := 0; f < filesPerWriter; f++ {
				path := fmt.Sprintf("/w%d/f%d", w, f)
				data := payload(testBlock+f*1000, int64(w*100+f))
				if err := cl.WriteFile(path, data, 2); err != nil {
					errs <- fmt.Errorf("write %s: %w", path, err)
					continue
				}
				got, err := cl.ReadFile(path)
				if err != nil {
					errs <- fmt.Errorf("read %s: %w", path, err)
					continue
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("corruption in %s", path)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Namespace holds every file.
	total := 0
	for w := 0; w < writers; w++ {
		ls, err := c.NameNode().List(fmt.Sprintf("/w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		total += len(ls)
	}
	if total != writers*filesPerWriter {
		t.Fatalf("namespace holds %d files, want %d", total, writers*filesPerWriter)
	}
}

// TestConcurrentReadersDuringFailure mixes reads with a datanode death and
// repair — the failure path must be as thread-safe as the happy path.
func TestConcurrentReadersDuringFailure(t *testing.T) {
	c := NewCluster(4, testBlock)
	cl := c.Client("")
	data := payload(4*testBlock, 1)
	if err := cl.WriteFile("/f", data, 3); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := cl.ReadFile("/f")
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("corrupt read")
					return
				}
			}
		}()
	}
	c.KillDataNode("dn0")
	c.RepairAll()
	c.ReviveDataNode("dn0")
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
