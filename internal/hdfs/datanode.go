package hdfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Errors returned by DataNode operations.
var (
	ErrNoBlock  = errors.New("hdfs: block not stored here")
	ErrChecksum = errors.New("hdfs: block checksum mismatch")
	ErrDown     = errors.New("hdfs: datanode is down")
)

// DefaultChunkSize is the checksum granularity for stored blocks: each
// 64 KiB chunk carries its own CRC32, so a range read verifies only the
// chunks it overlaps instead of re-checksumming the whole block. 64 KiB
// mirrors Hadoop's io.bytes.per.checksum scaled to the serving window a
// Flowplayer seek actually asks for.
const DefaultChunkSize = 64 << 10

// blockData is one stored replica: the bytes plus a checksum ladder — a
// whole-block CRC32 backing the full-read fast path, and per-chunk CRC32s
// backing O(range) verification for random-access windows. The chunk size
// is recorded per block so a cluster-wide chunk-size change never
// invalidates already-stored replicas.
type blockData struct {
	data  []byte
	whole uint32
	sums  []uint32
	chunk int64
}

// DataNode stores block replicas with CRC32 checksums — the slave side of
// Figure 11. It is safe for concurrent use.
type DataNode struct {
	name string

	mu     sync.RWMutex
	blocks map[BlockID]*blockData
	chunk  int64
	down   bool
}

// NewDataNode returns an empty datanode with the default checksum chunk
// size.
func NewDataNode(name string) *DataNode {
	return &DataNode{
		name:   name,
		blocks: make(map[BlockID]*blockData),
		chunk:  DefaultChunkSize,
	}
}

// Name returns the node's cluster-unique name.
func (dn *DataNode) Name() string { return dn.name }

// SetChunkSize sets the checksum granularity for subsequently stored
// blocks; existing replicas keep the layout they were written with.
// sz <= 0 restores the default.
func (dn *DataNode) SetChunkSize(sz int64) {
	if sz <= 0 {
		sz = DefaultChunkSize
	}
	dn.mu.Lock()
	dn.chunk = sz
	dn.mu.Unlock()
}

// Store writes a block replica. The data is copied, and both the
// whole-block and per-chunk checksums are computed up front so every later
// read — full or ranged — verifies against write-time state.
func (dn *DataNode) Store(id BlockID, data []byte) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if dn.down {
		return fmt.Errorf("%w: %s", ErrDown, dn.name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	bd := &blockData{data: cp, whole: crc32.ChecksumIEEE(cp), chunk: dn.chunk}
	n := (int64(len(cp)) + bd.chunk - 1) / bd.chunk
	bd.sums = make([]uint32, n)
	for i := int64(0); i < n; i++ {
		lo := i * bd.chunk
		hi := lo + bd.chunk
		if hi > int64(len(cp)) {
			hi = int64(len(cp))
		}
		bd.sums[i] = crc32.ChecksumIEEE(cp[lo:hi])
	}
	dn.blocks[id] = bd
	return nil
}

// Read returns a copy of the block after verifying the whole-block
// checksum in a single pass (the fast path for full-block transfers). A
// checksum failure returns ErrChecksum — the trigger for the client's
// replica failover and corruption report.
func (dn *DataNode) Read(id BlockID) ([]byte, error) {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	bd, err := dn.lockedVerified(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(bd.data))
	copy(out, bd.data)
	return out, nil
}

// ReadInto verifies the whole-block checksum and copies the block into dst,
// returning the bytes copied (min of block and dst length) — Read without
// the output allocation, for callers landing blocks at their final offset
// in a pre-sized file buffer.
func (dn *DataNode) ReadInto(id BlockID, dst []byte) (int, error) {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	bd, err := dn.lockedVerified(id)
	if err != nil {
		return 0, err
	}
	return copy(dst, bd.data), nil
}

// lockedVerified fetches a block record and verifies its whole-block CRC;
// callers hold dn.mu.
func (dn *DataNode) lockedVerified(id BlockID) (*blockData, error) {
	bd, err := dn.locked(id)
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(bd.data) != bd.whole {
		return nil, fmt.Errorf("%w: %d on %s", ErrChecksum, id, dn.name)
	}
	return bd, nil
}

// ReadRange returns up to length bytes of the block starting at off,
// verifying only the checksum chunks overlapping [off, off+length) and
// copying only that window — O(range) work regardless of block size. It
// backs random-access reads (streaming seeks). Corruption outside the
// requested chunks is not detected here, exactly as in HDFS's per-chunk
// verification; full-block reads and the next overlapping window catch it.
func (dn *DataNode) ReadRange(id BlockID, off, length int64) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("hdfs: negative range length %d", length)
	}
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	bd, end, err := dn.lockedRange(id, off, length)
	if err != nil {
		return nil, err
	}
	out := make([]byte, end-off)
	copy(out, bd.data[off:end])
	return out, nil
}

// ReadRangeInto is ReadRange landing directly in dst (the window length is
// len(dst)) — the serving hot path's variant, which verifies the overlapped
// checksum chunks in place and performs exactly one copy, into the caller's
// buffer. Returns the bytes copied, short only when the window runs past
// the block end.
func (dn *DataNode) ReadRangeInto(id BlockID, off int64, dst []byte) (int, error) {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	bd, end, err := dn.lockedRange(id, off, int64(len(dst)))
	if err != nil {
		return 0, err
	}
	return copy(dst, bd.data[off:end]), nil
}

// lockedRange validates a window against a block, verifies the checksum
// chunks overlapping [off, off+length), and returns the record with the
// clamped window end; callers hold dn.mu.
func (dn *DataNode) lockedRange(id BlockID, off, length int64) (*blockData, int64, error) {
	bd, err := dn.locked(id)
	if err != nil {
		return nil, 0, err
	}
	size := int64(len(bd.data))
	if off < 0 || off > size {
		return nil, 0, fmt.Errorf("hdfs: offset %d out of block bounds %d", off, size)
	}
	end := off + length
	if end > size {
		end = size
	}
	for ci := off / bd.chunk; ci*bd.chunk < end; ci++ {
		lo := ci * bd.chunk
		hi := lo + bd.chunk
		if hi > size {
			hi = size
		}
		if crc32.ChecksumIEEE(bd.data[lo:hi]) != bd.sums[ci] {
			return nil, 0, fmt.Errorf("%w: %d chunk %d on %s", ErrChecksum, id, ci, dn.name)
		}
	}
	return bd, end, nil
}

// locked fetches a block record; callers hold dn.mu.
func (dn *DataNode) locked(id BlockID) (*blockData, error) {
	if dn.down {
		return nil, fmt.Errorf("%w: %s", ErrDown, dn.name)
	}
	bd, ok := dn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d on %s", ErrNoBlock, id, dn.name)
	}
	return bd, nil
}

// Delete removes a block replica; absent blocks are a no-op.
func (dn *DataNode) Delete(id BlockID) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	delete(dn.blocks, id)
}

// Has reports whether the node stores the block.
func (dn *DataNode) Has(id BlockID) bool {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	_, ok := dn.blocks[id]
	return ok
}

// BlockIDs returns the stored block IDs, sorted.
func (dn *DataNode) BlockIDs() []BlockID {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	out := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Used returns the bytes stored.
func (dn *DataNode) Used() int64 {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	var n int64
	for _, bd := range dn.blocks {
		n += int64(len(bd.data))
	}
	return n
}

// SetDown toggles the node's availability (crash injection). Stored data
// survives so a revived node serves its old replicas, as with a rebooted
// machine.
func (dn *DataNode) SetDown(down bool) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.down = down
}

// Down reports whether the node is down.
func (dn *DataNode) Down() bool {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	return dn.down
}

// Corrupt flips a byte in the middle of a stored replica without updating
// any checksum — a test hook standing in for disk bit rot.
func (dn *DataNode) Corrupt(id BlockID) error {
	return dn.CorruptAt(id, -1)
}

// CorruptAt flips the byte at off (negative means the block's midpoint)
// without updating checksums, so tests can target a specific checksum
// chunk.
func (dn *DataNode) CorruptAt(id BlockID, off int64) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	bd, ok := dn.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d on %s", ErrNoBlock, id, dn.name)
	}
	if len(bd.data) == 0 {
		return fmt.Errorf("hdfs: cannot corrupt empty block %d", id)
	}
	if off < 0 {
		off = int64(len(bd.data)) / 2
	}
	if off >= int64(len(bd.data)) {
		return fmt.Errorf("hdfs: corrupt offset %d out of block bounds %d", off, len(bd.data))
	}
	bd.data[off] ^= 0xFF
	return nil
}
