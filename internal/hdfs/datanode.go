package hdfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Errors returned by DataNode operations.
var (
	ErrNoBlock  = errors.New("hdfs: block not stored here")
	ErrChecksum = errors.New("hdfs: block checksum mismatch")
	ErrDown     = errors.New("hdfs: datanode is down")
)

// DataNode stores block replicas with CRC32 checksums — the slave side of
// Figure 11. It is safe for concurrent use.
type DataNode struct {
	name string

	mu     sync.RWMutex
	blocks map[BlockID][]byte
	sums   map[BlockID]uint32
	down   bool
}

// NewDataNode returns an empty datanode.
func NewDataNode(name string) *DataNode {
	return &DataNode{
		name:   name,
		blocks: make(map[BlockID][]byte),
		sums:   make(map[BlockID]uint32),
	}
}

// Name returns the node's cluster-unique name.
func (dn *DataNode) Name() string { return dn.name }

// Store writes a block replica. The data is copied.
func (dn *DataNode) Store(id BlockID, data []byte) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if dn.down {
		return fmt.Errorf("%w: %s", ErrDown, dn.name)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	dn.blocks[id] = cp
	dn.sums[id] = crc32.ChecksumIEEE(cp)
	return nil
}

// Read returns a copy of the block after verifying its checksum. A
// checksum failure returns ErrChecksum — the trigger for the client's
// replica failover and corruption report.
func (dn *DataNode) Read(id BlockID) ([]byte, error) {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	if dn.down {
		return nil, fmt.Errorf("%w: %s", ErrDown, dn.name)
	}
	data, ok := dn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d on %s", ErrNoBlock, id, dn.name)
	}
	if crc32.ChecksumIEEE(data) != dn.sums[id] {
		return nil, fmt.Errorf("%w: %d on %s", ErrChecksum, id, dn.name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// ReadRange returns length bytes of the block starting at off, checksum
// verified. It backs random-access reads (streaming seeks).
func (dn *DataNode) ReadRange(id BlockID, off, length int64) ([]byte, error) {
	data, err := dn.Read(id)
	if err != nil {
		return nil, err
	}
	if off < 0 || off > int64(len(data)) {
		return nil, fmt.Errorf("hdfs: offset %d out of block bounds %d", off, len(data))
	}
	end := off + length
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[off:end], nil
}

// Delete removes a block replica; absent blocks are a no-op.
func (dn *DataNode) Delete(id BlockID) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	delete(dn.blocks, id)
	delete(dn.sums, id)
}

// Has reports whether the node stores the block.
func (dn *DataNode) Has(id BlockID) bool {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	_, ok := dn.blocks[id]
	return ok
}

// BlockIDs returns the stored block IDs, sorted.
func (dn *DataNode) BlockIDs() []BlockID {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	out := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Used returns the bytes stored.
func (dn *DataNode) Used() int64 {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	var n int64
	for _, b := range dn.blocks {
		n += int64(len(b))
	}
	return n
}

// SetDown toggles the node's availability (crash injection). Stored data
// survives so a revived node serves its old replicas, as with a rebooted
// machine.
func (dn *DataNode) SetDown(down bool) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.down = down
}

// Down reports whether the node is down.
func (dn *DataNode) Down() bool {
	dn.mu.RLock()
	defer dn.mu.RUnlock()
	return dn.down
}

// Corrupt flips a byte of a stored replica without updating the checksum —
// a test hook standing in for disk bit rot.
func (dn *DataNode) Corrupt(id BlockID) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	data, ok := dn.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d on %s", ErrNoBlock, id, dn.name)
	}
	if len(data) == 0 {
		return fmt.Errorf("hdfs: cannot corrupt empty block %d", id)
	}
	data[len(data)/2] ^= 0xFF
	return nil
}
