package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"
)

// ---- byte identity: parallel vs sequential paths ----

func TestParallelReadByteIdentity(t *testing.T) {
	c := NewCluster(4, testBlock)
	cl := c.Client("")
	data := payload(7*testBlock+123, 21)
	if err := cl.WriteFile("/f", data, 2); err != nil {
		t.Fatal(err)
	}
	c.SetReadConcurrency(1)
	seq, err := cl.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	c.SetReadConcurrency(8)
	par, err := cl.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, data) || !bytes.Equal(par, data) {
		t.Fatal("sequential and parallel reads must both match the written bytes")
	}
}

func TestParallelWriteByteIdentity(t *testing.T) {
	data := payload(5*testBlock+77, 22)
	build := func(writeConc int) *Cluster {
		c := NewCluster(4, testBlock)
		c.SetWriteConcurrency(writeConc)
		if err := c.Client("").WriteFile("/f", data, 3); err != nil {
			t.Fatal(err)
		}
		return c
	}
	seq, par := build(1), build(0)
	sb, err := seq.Client("").BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := par.Client("").BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(sb) != len(pb) {
		t.Fatalf("block counts differ: %d vs %d", len(sb), len(pb))
	}
	for i := range sb {
		if fmt.Sprint(sb[i].Locations) != fmt.Sprint(pb[i].Locations) {
			t.Fatalf("block %d placement differs: %v vs %v", i, sb[i].Locations, pb[i].Locations)
		}
		for _, loc := range sb[i].Locations {
			a, err := seq.DataNode(loc).Read(sb[i].ID)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.DataNode(loc).Read(pb[i].ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("block %d replica on %s differs between pipelines", i, loc)
			}
		}
	}
	got, err := par.Client("").ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("parallel-pipeline file does not round-trip: %v", err)
	}
}

// ---- replica selection policy ----

func TestReplicaSelectionLocalFirst(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("dn1")
	got := cl.orderReplicas([]string{"dn0", "dn1", "dn2"})
	if got[0] != "dn1" {
		t.Fatalf("order = %v, want client-local dn1 first", got)
	}
	if c.Metrics().Counter("replica_select_local").Value() == 0 {
		t.Fatal("local pick not counted")
	}
}

func TestReplicaSelectionLeastLoaded(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	c.inflightFor("dn0").Add(5)
	defer c.inflightFor("dn0").Add(-5)
	got := cl.orderReplicas([]string{"dn0", "dn1", "dn2"})
	if got[0] == "dn0" {
		t.Fatalf("order = %v, want the loaded dn0 demoted", got)
	}
	if got[len(got)-1] != "dn0" {
		t.Fatalf("order = %v, want dn0 last", got)
	}
	if c.Metrics().Counter("replica_select_least_loaded").Value() == 0 {
		t.Fatal("least-loaded pick not counted")
	}
	// With equal load the NameNode's order is kept.
	c.inflightFor("dn0").Add(-5)
	defer c.inflightFor("dn0").Add(5)
	got = cl.orderReplicas([]string{"dn2", "dn0", "dn1"})
	if fmt.Sprint(got) != "[dn2 dn0 dn1]" {
		t.Fatalf("tie order = %v, want NameNode order preserved", got)
	}
}

// ---- chunked checksums: corruption lands on the correct chunk ----

func TestRangeReadCorruptChunkFailover(t *testing.T) {
	const block = 4 * DefaultChunkSize // 4 chunks of 64 KiB
	c := NewCluster(3, block)
	cl := c.Client("")
	data := payload(block, 23)
	if err := cl.WriteFile("/f", data, 2); err != nil {
		t.Fatal(err)
	}
	blocks, _ := cl.BlockLocations("/f")
	bad := blocks[0].Locations[0]
	corruptOff := int64(2*DefaultChunkSize + 100) // inside chunk 2
	if err := c.DataNode(bad).CorruptAt(blocks[0].ID, corruptOff); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	// A window in untouched chunks is served from the (partially corrupt)
	// first replica without tripping verification — per-chunk semantics.
	buf := make([]byte, 4096)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[:4096]) {
		t.Fatal("clean-chunk window returned wrong bytes")
	}
	if got := c.Metrics().Counter("corrupt_replicas_reported").Value(); got != 0 {
		t.Fatalf("clean-chunk window reported corruption (%d)", got)
	}
	// A window overlapping the corrupt chunk must detect it, fail over to
	// the healthy replica, and still return exactly the right bytes.
	off := corruptOff - 1000
	if _, err := r.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+4096]) {
		t.Fatal("failover window returned wrong bytes")
	}
	if c.Metrics().Counter("corrupt_replicas_reported").Value() == 0 {
		t.Fatal("corrupt chunk not reported")
	}
	if c.Metrics().Counter("replica_failovers").Value() == 0 {
		t.Fatal("failover not counted")
	}
	// The NameNode dropped the corrupt replica and repair restores RF 2
	// off the bad node.
	c.RepairAll()
	blocks, _ = cl.BlockLocations("/f")
	if len(blocks[0].Locations) != 2 {
		t.Fatalf("locations after repair = %v", blocks[0].Locations)
	}
	for _, loc := range blocks[0].Locations {
		if loc == bad {
			t.Fatal("corrupt replica still listed")
		}
	}
}

// ---- Writer io.Writer contract ----

func TestWriterPartialWriteCount(t *testing.T) {
	const bs = 1024
	c := NewCluster(2, bs)
	cl := c.Client("")
	w, err := cl.Create("/f", 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	w.flushHook = func(blockIndex int) error {
		if blockIndex == 1 {
			return boom
		}
		return nil
	}
	// 2.5 blocks: block 0 flushes fine, block 1's flush fails — exactly
	// one block of p was accepted, the rest must not be reported written.
	n, err := w.Write(payload(2*bs+bs/2, 24))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected flush failure", err)
	}
	if n != bs {
		t.Fatalf("Write reported %d bytes accepted, want %d (one flushed block)", n, bs)
	}
	// The writer is poisoned with the same error from then on.
	if _, err := w.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("poisoned write err = %v", err)
	}
	if err := w.Close(); !errors.Is(err, boom) {
		t.Fatalf("poisoned close err = %v", err)
	}
}

func TestWriterBufferReusedAcrossBlocks(t *testing.T) {
	const bs = 1024
	c := NewCluster(2, bs)
	cl := c.Client("")
	w, err := cl.Create("/f", 1)
	if err != nil {
		t.Fatal(err)
	}
	var data []byte
	// Many small writes crossing several block boundaries: the buffer must
	// settle at exactly one block and the bytes must round-trip.
	for i := 0; i < 50; i++ {
		part := payload(100, int64(25+i))
		data = append(data, part...)
		n, err := w.Write(part)
		if err != nil || n != len(part) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
		if cap(w.buf) > bs {
			t.Fatalf("buffer grew past one block: cap=%d", cap(w.buf))
		}
	}
	if cap(w.buf) != bs {
		t.Fatalf("buffer cap = %d, want settled at block size %d", cap(w.buf), bs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip after many small writes: %v", err)
	}
}

// ---- readahead ----

func TestReadaheadPipelinesSequentialReads(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(4*testBlock, 26)
	if err := cl.WriteFile("/f", data, 2); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("sequential read with readahead: %v", err)
	}
	if c.Metrics().Counter("readahead_prefetches").Value() == 0 {
		t.Fatal("sequential consumption launched no prefetch")
	}
	if c.Metrics().Counter("readahead_hits").Value() == 0 {
		t.Fatal("prefetched blocks never served a read")
	}
}

func TestReadaheadNotTriggeredByRandomReadAt(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(4*testBlock, 27), 2); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := 0; i < 4; i++ { // window at each block's head — never the tail
		if _, err := r.ReadAt(buf, int64(i)*testBlock); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Metrics().Counter("readahead_prefetches").Value(); got != 0 {
		t.Fatalf("random ReadAt launched %d prefetches, want 0", got)
	}
}

// ---- wall-clock gate: parallel block fan-out ----

// TestMeasuredParallelReadSpeedup is the wall-clock gate of ISSUE 3:
// reading a multi-block file with 4-way block fan-out must beat the
// sequential path. Block reads are CPU-bound (CRC32 + copies), so this
// needs real cores; smaller machines are skipped (BenchmarkReadFile still
// records their numbers).
func TestMeasuredParallelReadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the wall-clock comparison")
	}
	if runtime.NumCPU() < 4 || runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need 4 CPUs for a meaningful wall-clock gate, have %d (GOMAXPROCS %d)",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	const blockSize = 2 << 20
	const blocks = 16
	c := NewCluster(4, blockSize)
	cl := c.Client("")
	data := payload(blocks*blockSize, 28)
	if err := cl.WriteFile("/big", data, 2); err != nil {
		t.Fatal(err)
	}
	wall := func(conc int) time.Duration {
		c.SetReadConcurrency(conc)
		best := time.Duration(1<<62 - 1)
		for run := 0; run < 3; run++ {
			start := time.Now()
			got, err := cl.ReadFile("/big")
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			if !bytes.Equal(got, data) {
				t.Fatal("read mismatch")
			}
		}
		return best
	}
	serial := wall(1)
	parallel := wall(4)
	speedup := float64(serial) / float64(parallel)
	t.Logf("wall clock: conc 1 %v, conc 4 %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 1.5 {
		t.Fatalf("4-way read speedup %.2fx, want >= 1.5x", speedup)
	}
}

// ---- concurrent streaming under failure (-race in CI) ----

// TestConcurrentStreamingWithDownAndCorruptReplicas streams the same file
// from many readers while one replica is corrupted, a datanode dies, the
// cluster repairs, and the node revives. Every read must return exactly
// the written bytes — failover and per-chunk verification may never leak a
// wrong window.
func TestConcurrentStreamingWithDownAndCorruptReplicas(t *testing.T) {
	c := NewCluster(5, testBlock)
	cl := c.Client("")
	data := payload(6*testBlock, 29)
	if err := cl.WriteFile("/v.mp4", data, 3); err != nil {
		t.Fatal(err)
	}
	blocks, _ := cl.BlockLocations("/v.mp4")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			r, err := cl.Open("/v.mp4")
			if err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 8192)
			for pass := 0; pass < 3; pass++ {
				if _, err := r.Seek(0, io.SeekStart); err != nil {
					errs <- err
					return
				}
				var off int64
				for {
					n, err := r.Read(buf)
					if n > 0 {
						if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
							errs <- fmt.Errorf("reader %d: wrong bytes at %d", g, off)
							return
						}
						off += int64(n)
					}
					if err == io.EOF {
						break
					}
					if err != nil {
						errs <- fmt.Errorf("reader %d at %d: %w", g, off, err)
						return
					}
				}
			}
		}(g)
	}
	close(start)
	// Fault injection while the readers stream: corrupt one replica of the
	// first block, kill a different node, repair, revive. RF 3 keeps at
	// least one healthy replica of every block throughout.
	if err := c.DataNode(blocks[0].Locations[0]).Corrupt(blocks[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := c.KillDataNode(blocks[0].Locations[1]); err != nil {
		t.Fatal(err)
	}
	c.RepairAll()
	if err := c.ReviveDataNode(blocks[0].Locations[1]); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// ---- stats surface ----

func TestClusterStatsSnapshot(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("dn0")
	data := payload(3*testBlock, 30)
	if err := cl.WriteFile("/f", data, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.BytesWritten == 0 || st.BlocksWritten != 3 {
		t.Fatalf("write accounting: %+v", st)
	}
	if st.BytesRead != int64(len(data)) {
		t.Fatalf("BytesRead = %d, want %d", st.BytesRead, len(data))
	}
	if st.WriteLatency.Count != 3 || st.ReadLatency.Count != 3 {
		t.Fatalf("latency histograms: write n=%d read n=%d, want 3 each",
			st.WriteLatency.Count, st.ReadLatency.Count)
	}
	if st.ReplicaLocal+st.ReplicaLeastLoaded+st.ReplicaFirst == 0 {
		t.Fatal("no replica-selection decisions recorded")
	}
}
