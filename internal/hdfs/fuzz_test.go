package hdfs

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReaderReadAt checks every (offset, length) window of a file with a
// partial final block against the in-memory oracle: exact bytes, exact
// short-read count, io.EOF exactly when the window runs past the end.
// Seeds cover block boundaries, EOF edges and degenerate windows; `go test`
// runs the seeds, `go test -fuzz=FuzzReaderReadAt` explores further.
func FuzzReaderReadAt(f *testing.F) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(2*testBlock+testBlock/3, 31) // partial final block
	if err := cl.WriteFile("/f", data, 2); err != nil {
		f.Fatal(err)
	}
	r, err := cl.Open("/f")
	if err != nil {
		f.Fatal(err)
	}
	size := int64(len(data))
	f.Add(int64(0), 1)
	f.Add(int64(0), 0)
	f.Add(int64(testBlock-1), 2)              // crosses first boundary
	f.Add(int64(testBlock), testBlock)        // exactly the second block
	f.Add(size-1, 1)                          // last byte
	f.Add(size-1, 100)                        // short read + EOF
	f.Add(size, 10)                           // at EOF
	f.Add(size+1000, 10)                      // past EOF
	f.Add(int64(testBlock/2), 2*testBlock)    // spans three blocks
	f.Add(int64(2*testBlock), testBlock)      // partial final block
	f.Fuzz(func(t *testing.T, off int64, length int) {
		if off < 0 || length < 0 || length > 4*testBlock {
			t.Skip()
		}
		buf := make([]byte, length)
		n, err := r.ReadAt(buf, off)
		if off >= size {
			if n != 0 || err != io.EOF {
				t.Fatalf("ReadAt(%d, %d) past EOF = (%d, %v), want (0, EOF)", off, length, n, err)
			}
			return
		}
		want := size - off
		if want > int64(length) {
			want = int64(length)
		}
		if int64(n) != want {
			t.Fatalf("ReadAt(%d, %d) = %d bytes, want %d", off, length, n, want)
		}
		if n < length {
			if err != io.EOF {
				t.Fatalf("short ReadAt(%d, %d) err = %v, want EOF", off, length, err)
			}
		} else if err != nil {
			t.Fatalf("full ReadAt(%d, %d) err = %v", off, length, err)
		}
		if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
			t.Fatalf("ReadAt(%d, %d) returned wrong bytes", off, length)
		}
	})
}

// TestReadAtEmptyFile pins the degenerate cases: a zero-byte file reads as
// immediate EOF through every API.
func TestReadAtEmptyFile(t *testing.T) {
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/empty", nil, 1); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadFile empty = (%d bytes, %v)", len(got), err)
	}
	r, err := cl.Open("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d", r.Size())
	}
	buf := make([]byte, 10)
	if n, err := r.ReadAt(buf, 0); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt = (%d, %v), want (0, EOF)", n, err)
	}
	if n, err := r.Read(buf); n != 0 || err != io.EOF {
		t.Fatalf("Read = (%d, %v), want (0, EOF)", n, err)
	}
}

// TestReadAtRejectsNegativeOffset pins the io.ReaderAt contract edge.
func TestReadAtRejectsNegativeOffset(t *testing.T) {
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(100, 32), 1); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt(make([]byte, 10), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}
