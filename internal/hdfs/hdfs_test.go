package hdfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

const testBlock = 64 * 1024 // 64 KiB blocks keep tests light

func payload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(3*testBlock+777, 1) // 4 blocks, last partial
	if err := cl.WriteFile("/videos/a.mp4", data, 3); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/videos/a.mp4")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	st, err := c.NameNode().Stat("/videos/a.mp4")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(data)) || st.Blocks != 4 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestReplicationPlacement(t *testing.T) {
	c := NewCluster(5, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(testBlock, 2), 3); err != nil {
		t.Fatal(err)
	}
	blocks, _ := cl.BlockLocations("/f")
	if len(blocks) != 1 {
		t.Fatalf("%d blocks", len(blocks))
	}
	if len(blocks[0].Locations) != 3 {
		t.Fatalf("replicas = %v, want 3 distinct nodes", blocks[0].Locations)
	}
	seen := map[string]bool{}
	for _, loc := range blocks[0].Locations {
		if seen[loc] {
			t.Fatalf("duplicate replica node %s", loc)
		}
		seen[loc] = true
		if !c.DataNode(loc).Has(blocks[0].ID) {
			t.Fatalf("%s does not actually hold the block", loc)
		}
	}
}

func TestWriteLocalityPrefersClientNode(t *testing.T) {
	c := NewCluster(4, testBlock)
	cl := c.Client("dn2")
	if err := cl.WriteFile("/f", payload(2*testBlock, 3), 2); err != nil {
		t.Fatal(err)
	}
	blocks, _ := cl.BlockLocations("/f")
	for _, b := range blocks {
		if b.Locations[0] != "dn2" {
			t.Fatalf("first replica on %s, want client-local dn2", b.Locations[0])
		}
	}
}

func TestReplicationFactorOne(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(testBlock/2, 4), 1); err != nil {
		t.Fatal(err)
	}
	blocks, _ := cl.BlockLocations("/f")
	if len(blocks[0].Locations) != 1 {
		t.Fatalf("replicas = %v", blocks[0].Locations)
	}
}

func TestReplicationCappedByClusterSize(t *testing.T) {
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(100, 5), 3); err != nil {
		t.Fatal(err)
	}
	blocks, _ := cl.BlockLocations("/f")
	if len(blocks[0].Locations) != 2 {
		t.Fatalf("replicas = %v, want capped at 2", blocks[0].Locations)
	}
}

func TestNamespaceOperations(t *testing.T) {
	c := NewCluster(2, testBlock)
	nn := c.NameNode()
	cl := c.Client("")
	if err := nn.Mkdir("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteFile("/a/b/f1", []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteFile("/a/b/f2", []byte("yy"), 1); err != nil {
		t.Fatal(err)
	}
	ls, err := nn.List("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 3 || ls[0].Path != "/a/b/c" || !ls[0].IsDir || ls[1].Path != "/a/b/f1" || ls[2].Size != 2 {
		t.Fatalf("List = %+v", ls)
	}
	// Errors.
	if _, err := nn.List("/a/b/f1"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("List file: %v", err)
	}
	if _, err := nn.Stat("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat ghost: %v", err)
	}
	if err := cl.WriteFile("/a/b/f1", []byte("x"), 1); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := nn.Delete("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty dir: %v", err)
	}
	if _, err := cl.ReadFile("/a/b"); !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("read dir: %v", err)
	}
	if err := nn.Mkdir("relative/path"); err == nil {
		t.Fatal("relative path accepted")
	}
	if err := nn.Create("/f", 0); !errors.Is(err, ErrBadReplication) {
		t.Fatalf("rf=0: %v", err)
	}
}

func TestDeleteReclaimsBlocks(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(2*testBlock, 6)
	cl.WriteFile("/f", data, 2)
	used := int64(0)
	for i := 0; i < 3; i++ {
		used += c.DataNode([]string{"dn0", "dn1", "dn2"}[i]).Used()
	}
	if used != int64(2*len(data)) { // RF=2
		t.Fatalf("used = %d, want %d", used, 2*len(data))
	}
	if err := c.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"dn0", "dn1", "dn2"} {
		if c.DataNode(n).Used() != 0 {
			t.Fatalf("%s still stores %d bytes", n, c.DataNode(n).Used())
		}
	}
	if _, err := cl.ReadFile("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read deleted: %v", err)
	}
}

func TestUnderConstructionInvisible(t *testing.T) {
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	w, err := cl.Create("/f", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(payload(testBlock, 7))
	if _, err := cl.ReadFile("/f"); !errors.Is(err, ErrFileOpen) {
		t.Fatalf("read open file: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFile("/f"); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op; write after close fails.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestDataNodeFailureReadFailover(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(2*testBlock+5, 8)
	cl.WriteFile("/f", data, 2)
	// Kill one replica holder of the first block.
	blocks, _ := cl.BlockLocations("/f")
	if err := c.KillDataNode(blocks[0].Locations[0]); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadFile("/f")
	if err != nil {
		t.Fatalf("read after single failure: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read corrupted data")
	}
}

func TestReReplicationAfterNodeDeath(t *testing.T) {
	c := NewCluster(4, testBlock)
	cl := c.Client("")
	data := payload(4*testBlock, 9)
	cl.WriteFile("/f", data, 3)
	if under := c.NameNode().UnderReplicated(3); len(under) != 0 {
		t.Fatalf("under-replicated before failure: %v", under)
	}
	c.KillDataNode("dn0")
	under := c.NameNode().UnderReplicated(3)
	if len(under) == 0 {
		t.Fatal("no blocks under-replicated after killing a node")
	}
	repaired := c.RepairAll()
	if repaired == 0 {
		t.Fatal("repair did nothing")
	}
	if under := c.NameNode().UnderReplicated(3); len(under) != 0 {
		t.Fatalf("still under-replicated after repair: %v", under)
	}
	got, err := cl.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data integrity after repair: %v", err)
	}
	if got := c.Metrics().Counter("blocks_replicated").Value(); got == 0 {
		t.Fatal("metrics missed the repair")
	}
}

func TestTotalLossIsReported(t *testing.T) {
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	cl.WriteFile("/f", payload(testBlock, 10), 1) // RF=1: one replica
	blocks, _ := cl.BlockLocations("/f")
	c.KillDataNode(blocks[0].Locations[0])
	if _, err := cl.ReadFile("/f"); !errors.Is(err, ErrAllReplicasFailed) {
		t.Fatalf("total loss read: %v", err)
	}
}

func TestReviveRestoresReplicas(t *testing.T) {
	c := NewCluster(2, testBlock)
	cl := c.Client("")
	data := payload(testBlock, 11)
	cl.WriteFile("/f", data, 1)
	blocks, _ := cl.BlockLocations("/f")
	holder := blocks[0].Locations[0]
	c.KillDataNode(holder)
	if _, err := cl.ReadFile("/f"); err == nil {
		t.Fatal("read should fail while node is down")
	}
	c.ReviveDataNode(holder)
	got, err := cl.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after revive: %v", err)
	}
}

func TestChecksumDetectionAndRepair(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(testBlock, 12)
	cl.WriteFile("/f", data, 2)
	blocks, _ := cl.BlockLocations("/f")
	bad := blocks[0].Locations[0]
	if err := c.DataNode(bad).Corrupt(blocks[0].ID); err != nil {
		t.Fatal(err)
	}
	// Read succeeds via the healthy replica and reports the corruption.
	got, err := cl.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read with corrupt replica: %v", err)
	}
	if c.Metrics().Counter("corrupt_replicas_reported").Value() == 0 {
		t.Fatal("corruption not reported")
	}
	// Repair restores RF=2 on a clean node.
	c.RepairAll()
	blocks, _ = cl.BlockLocations("/f")
	if len(blocks[0].Locations) != 2 {
		t.Fatalf("locations after repair = %v", blocks[0].Locations)
	}
	for _, loc := range blocks[0].Locations {
		if loc == bad {
			t.Fatal("corrupt replica still listed")
		}
	}
}

func TestReaderSeekAndReadAt(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(3*testBlock+100, 13)
	cl.WriteFile("/v.mp4", data, 2)
	r, err := cl.Open("/v.mp4")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size = %d", r.Size())
	}
	// Sequential read of everything.
	all, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(all, data) {
		t.Fatalf("sequential read: %v", err)
	}
	// Seek to a mid-block offset (a time-bar drag) and read across a
	// block boundary.
	off := int64(testBlock + testBlock/2)
	if _, err := r.Seek(off, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, testBlock) // spans into block 3
	n, err := io.ReadFull(r, buf)
	if err != nil {
		t.Fatalf("read after seek: %v (n=%d)", err, n)
	}
	if !bytes.Equal(buf, data[off:off+int64(testBlock)]) {
		t.Fatal("seeked read returned wrong bytes")
	}
	// SeekEnd.
	if _, err := r.Seek(-10, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	tail, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(tail, data[len(data)-10:]) {
		t.Fatalf("tail read: %v", err)
	}
	// EOF past end.
	if _, err := r.ReadAt(buf, int64(len(data))); err != io.EOF {
		t.Fatalf("ReadAt past EOF: %v", err)
	}
	// Negative seek rejected.
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
}

// Property: random (offset, length) ReadAt windows always return exactly the
// file's bytes.
func TestPropertyReadAtWindows(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(5*testBlock/2, 14)
	cl.WriteFile("/f", data, 2)
	r, err := cl.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, length uint16) bool {
		o := int64(off) % int64(len(data))
		l := int(length)%8192 + 1
		buf := make([]byte, l)
		n, err := r.ReadAt(buf, o)
		if err != nil && err != io.EOF {
			return false
		}
		want := len(data) - int(o)
		if want > l {
			want = l
		}
		if n != want {
			return false
		}
		return bytes.Equal(buf[:n], data[o:int(o)+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any write size round-trips and block accounting matches.
func TestPropertyWriteSizes(t *testing.T) {
	f := func(sz uint32, seed int64) bool {
		n := int(sz % (4 * testBlock))
		c := NewCluster(3, testBlock)
		cl := c.Client("")
		data := payload(n, seed)
		if err := cl.WriteFile("/f", data, 2); err != nil {
			return false
		}
		got, err := cl.ReadFile("/f")
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		st, _ := c.NameNode().Stat("/f")
		wantBlocks := (n + testBlock - 1) / testBlock
		return st.Size == int64(n) && st.Blocks == wantBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDataNodeDirectOps(t *testing.T) {
	dn := NewDataNode("dn0")
	if dn.Name() != "dn0" {
		t.Fatal("name")
	}
	if err := dn.Store(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := dn.Read(1)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read: %v %q", err, got)
	}
	// Returned slice is a copy.
	got[0] = 'X'
	again, _ := dn.Read(1)
	if string(again) != "hello" {
		t.Fatal("Read aliases storage")
	}
	if _, err := dn.Read(99); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("missing block: %v", err)
	}
	if _, err := dn.ReadRange(1, 99, 5); err == nil {
		t.Fatal("out-of-range ReadRange accepted")
	}
	part, err := dn.ReadRange(1, 1, 3)
	if err != nil || string(part) != "ell" {
		t.Fatalf("ReadRange: %v %q", err, part)
	}
	dn.SetDown(true)
	if _, err := dn.Read(1); !errors.Is(err, ErrDown) {
		t.Fatalf("down read: %v", err)
	}
	if err := dn.Store(2, []byte("x")); !errors.Is(err, ErrDown) {
		t.Fatalf("down store: %v", err)
	}
	dn.SetDown(false)
	dn.Delete(1)
	if dn.Has(1) || dn.Used() != 0 {
		t.Fatal("delete left data")
	}
}
