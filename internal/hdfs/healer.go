package hdfs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"videocloud/internal/metrics"
)

// This file is the storage tier's self-healing loop. The seed code had the
// mechanisms (MarkDead enqueues re-replication work, ProcessReplication
// executes it) but nothing ran them: a dead DataNode sat unnoticed until an
// operator called KillDataNode, and the repair queue waited for a manual
// RepairAll. The Healer closes the loop the way HDFS's heartbeat monitor and
// ReplicationMonitor do (Shvachko et al. 2010): it polls node liveness,
// declares death after consecutive missed polls, runs bounded-concurrency
// repair copies with per-block retry backoff, and re-absorbs rejoining
// nodes' replicas.

// HealerConfig tunes the background healing loop. Zero values select the
// defaults documented per field. All times are wall clock — the storage
// tier runs on real goroutines, not the virtual-time kernel.
type HealerConfig struct {
	// Interval is the poll period for liveness and repair scans
	// (default 20ms).
	Interval time.Duration
	// MissThreshold is how many consecutive down polls declare a DataNode
	// dead (default 3).
	MissThreshold int
	// Concurrency bounds parallel repair copies (default 4).
	Concurrency int
	// MaxAttempts caps repair attempts per block before giving up until
	// the next under-replication scan re-queues it (default 5).
	MaxAttempts int
	// Backoff delays a block's retry after a failed copy, doubling per
	// attempt (default 50ms).
	Backoff time.Duration

	// OnDataNodeDead, if set, observes each death declaration with the
	// time since the node was first seen down.
	OnDataNodeDead func(node string, sinceDown time.Duration)
	// OnBlockHealed, if set, observes each block restored to target
	// replication with the time since it was first queued.
	OnBlockHealed func(id BlockID, sinceQueued time.Duration)
}

func (c HealerConfig) withDefaults() HealerConfig {
	if c.Interval == 0 {
		c.Interval = 20 * time.Millisecond
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
	if c.Concurrency == 0 {
		c.Concurrency = 4
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 5
	}
	if c.Backoff == 0 {
		c.Backoff = 50 * time.Millisecond
	}
	return c
}

// repairState tracks one under-replicated block through the healer.
type repairState struct {
	attempts    int
	nextTry     time.Time
	firstQueued time.Time
	inFlight    bool
}

// Healer is the background failure detector and re-replication worker for
// one cluster. Create with Cluster.StartHealer, stop with Stop.
type Healer struct {
	c   *Cluster
	cfg HealerConfig

	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup // in-flight repair copies

	mu        sync.Mutex
	downPolls map[string]int
	firstDown map[string]time.Time
	pending   map[BlockID]*repairState
}

// StartHealer launches the healing loop and returns its handle. The caller
// owns the handle and must Stop it; running two healers on one cluster is
// safe but pointless.
func (c *Cluster) StartHealer(cfg HealerConfig) *Healer {
	h := &Healer{
		c: c, cfg: cfg.withDefaults(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		downPolls: make(map[string]int),
		firstDown: make(map[string]time.Time),
		pending:   make(map[BlockID]*repairState),
	}
	go h.run()
	return h
}

// CrashDataNode takes a node down silently — no NameNode notification, no
// queued repair. Detection is the healer's job; this is the chaos injector's
// DataNode-kill fault. Contrast KillDataNode, which models an operator
// declaring the node dead.
func (c *Cluster) CrashDataNode(name string) error {
	dn := c.DataNode(name)
	if dn == nil {
		return fmt.Errorf("hdfs: unknown datanode %q", name)
	}
	dn.SetDown(true)
	c.reg.Counter("datanodes_crashed").Inc()
	return nil
}

// Stop halts the loop and waits for in-flight repair copies to finish.
func (h *Healer) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
	h.wg.Wait()
}

func (h *Healer) run() {
	defer close(h.done)
	ticker := time.NewTicker(h.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-ticker.C:
			h.pollLiveness()
			h.gatherWork()
			h.dispatchRepairs()
		}
	}
}

// pollLiveness is one detection tick: a node down for MissThreshold
// consecutive polls is declared dead to the NameNode (which queues repair
// work for its blocks); a node back up while the NameNode thinks it dead is
// rejoined and its surviving replicas re-announced.
func (h *Healer) pollLiveness() {
	nn := h.c.NameNode()
	h.c.mu.RLock()
	names := make([]string, 0, len(h.c.nodes))
	for name := range h.c.nodes {
		names = append(names, name)
	}
	h.c.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		dn := h.c.DataNode(name)
		if dn == nil {
			continue
		}
		down, alive := dn.Down(), nn.IsAlive(name)
		switch {
		case !down && alive:
			h.mu.Lock()
			h.downPolls[name] = 0
			delete(h.firstDown, name)
			h.mu.Unlock()
		case down && alive:
			h.mu.Lock()
			if h.downPolls[name] == 0 {
				h.firstDown[name] = time.Now()
			}
			h.downPolls[name]++
			declared := h.downPolls[name] >= h.cfg.MissThreshold
			var sinceDown time.Duration
			if declared {
				sinceDown = time.Since(h.firstDown[name])
			}
			h.mu.Unlock()
			if declared {
				nn.MarkDead(name)
				h.c.reg.Counter("datanodes_detected_dead").Inc()
				h.c.reg.Histogram("dn_detect_seconds").Observe(sinceDown.Seconds())
				if h.cfg.OnDataNodeDead != nil {
					h.cfg.OnDataNodeDead(name, sinceDown)
				}
			}
		case !down && !alive:
			// Rejoin: re-register and announce surviving replicas so the
			// NameNode can count them toward replication targets again.
			h.c.ReviveDataNode(name)
			h.c.reg.Counter("datanodes_rejoined").Inc()
			h.mu.Lock()
			h.downPolls[name] = 0
			delete(h.firstDown, name)
			h.mu.Unlock()
		}
	}
}

// gatherWork merges the NameNode's event-driven repair queue with a full
// under-replication scan into the healer's deduplicated pending set. The
// scan is what makes healing convergent: a copy that failed (or a queue
// entry lost to a dead source) is rediscovered on the next tick.
func (h *Healer) gatherWork() {
	nn := h.c.NameNode()
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range nn.TakeReplicationTasks() {
		if h.pending[t.Block] == nil {
			h.pending[t.Block] = &repairState{firstQueued: now, nextTry: now}
		}
	}
	for _, id := range nn.UnderReplicatedAll() {
		if h.pending[id] == nil {
			h.pending[id] = &repairState{firstQueued: now, nextTry: now}
		}
	}
}

// dispatchRepairs starts repair copies for due blocks, bounded by
// cfg.Concurrency across ticks.
func (h *Healer) dispatchRepairs() {
	now := time.Now()
	h.mu.Lock()
	inFlight := 0
	for _, st := range h.pending {
		if st.inFlight {
			inFlight++
		}
	}
	budget := h.cfg.Concurrency - inFlight
	var due []BlockID
	for id, st := range h.pending {
		if !st.inFlight && !st.nextTry.After(now) {
			due = append(due, id)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	if len(due) > budget {
		due = due[:max(budget, 0)]
	}
	for _, id := range due {
		h.pending[id].inFlight = true
		h.wg.Add(1)
		go h.repairOne(id)
	}
	h.mu.Unlock()
}

// repairOne executes one re-replication copy, re-resolving source and
// target at execution time (the plan a queue entry was born with may name a
// node that has since died).
func (h *Healer) repairOne(id BlockID) {
	defer h.wg.Done()
	task, healthy, ok := h.c.NameNode().PlanRepair(id)
	if healthy {
		h.settle(id, true)
		return
	}
	if !ok {
		// Unrepairable right now (no live source or no target); leave
		// pending with backoff so a rejoin or freed capacity can fix it.
		h.retryLater(id, false)
		return
	}
	err := h.copyBlock(task)
	if err != nil {
		h.c.reg.Counter("replication_failures").Inc()
		h.retryLater(id, true)
		return
	}
	// One copy done; the block may still be short (two replicas lost).
	if _, healthy, _ := h.c.NameNode().PlanRepair(id); healthy {
		h.settle(id, false)
	} else {
		h.retryLater(id, false)
	}
}

// copyBlock moves one replica between datanodes and commits it.
func (h *Healer) copyBlock(t ReplicationTask) error {
	src, dst := h.c.DataNode(t.Src), h.c.DataNode(t.Dst)
	if src == nil || dst == nil {
		return fmt.Errorf("hdfs: repair %d: unknown node %q/%q", t.Block, t.Src, t.Dst)
	}
	data, err := src.Read(t.Block)
	if err != nil {
		return err
	}
	if err := dst.Store(t.Block, data); err != nil {
		return err
	}
	if err := h.c.NameNode().BlockReceived(t.Dst, t.Block); err != nil {
		return err
	}
	h.c.reg.Counter("blocks_replicated").Inc()
	h.c.reg.Counter("replication_bytes").Add(int64(len(data)))
	return nil
}

// settle removes a healed block from the pending set and records its
// time-to-heal (unless it was already healthy when first examined).
func (h *Healer) settle(id BlockID, alreadyHealthy bool) {
	h.mu.Lock()
	st := h.pending[id]
	delete(h.pending, id)
	h.mu.Unlock()
	if st == nil || alreadyHealthy {
		return
	}
	since := time.Since(st.firstQueued)
	h.c.reg.Counter("blocks_healed").Inc()
	h.c.reg.Histogram("re_replication_seconds").Observe(since.Seconds())
	if h.cfg.OnBlockHealed != nil {
		h.cfg.OnBlockHealed(id, since)
	}
}

// retryLater schedules a block's next attempt with exponential backoff.
// Failed copies consume the attempt budget; "unrepairable right now" does
// not (the cluster state, not the block, is the problem). A block out of
// budget leaves the set — the under-replication scan re-queues it fresh if
// it still needs help.
func (h *Healer) retryLater(id BlockID, countAttempt bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.pending[id]
	if st == nil {
		return
	}
	st.inFlight = false
	if countAttempt {
		st.attempts++
		if st.attempts >= h.cfg.MaxAttempts {
			delete(h.pending, id)
			h.c.reg.Counter("repairs_abandoned").Inc()
			return
		}
	}
	backoff := h.cfg.Backoff << st.attempts
	if backoff > 5*time.Second || backoff <= 0 {
		backoff = 5 * time.Second
	}
	st.nextTry = time.Now().Add(backoff)
}

// PendingRepairs reports how many blocks the healer currently tracks as
// under-replicated.
func (h *Healer) PendingRepairs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pending)
}

// HealStats is a point-in-time summary of detection and repair activity.
type HealStats struct {
	DataNodesDetectedDead int64
	DataNodesRejoined     int64
	BlocksHealed          int64
	RepairFailures        int64
	RepairsAbandoned      int64
	PendingRepairs        int
	DetectLatency         metrics.Snapshot
	HealLatency           metrics.Snapshot
}

// Stats snapshots the healer's activity.
func (h *Healer) Stats() HealStats {
	reg := h.c.reg
	return HealStats{
		DataNodesDetectedDead: reg.Counter("datanodes_detected_dead").Value(),
		DataNodesRejoined:     reg.Counter("datanodes_rejoined").Value(),
		BlocksHealed:          reg.Counter("blocks_healed").Value(),
		RepairFailures:        reg.Counter("replication_failures").Value(),
		RepairsAbandoned:      reg.Counter("repairs_abandoned").Value(),
		PendingRepairs:        h.PendingRepairs(),
		DetectLatency:         reg.Histogram("dn_detect_seconds").Snapshot(),
		HealLatency:           reg.Histogram("re_replication_seconds").Snapshot(),
	}
}
