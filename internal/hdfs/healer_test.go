package hdfs

import (
	"bytes"
	"testing"
	"time"
)

// fastHealer returns a healer tuned for test latency.
func fastHealer(c *Cluster) *Healer {
	return c.StartHealer(HealerConfig{
		Interval:      2 * time.Millisecond,
		MissThreshold: 2,
		Backoff:       5 * time.Millisecond,
	})
}

// waitUntil polls cond for up to 5s of wall clock.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A silently crashed DataNode must be detected (MarkDead never called by the
// test) and every affected block re-replicated back to target, with the data
// still readable byte-for-byte.
func TestHealerDetectsCrashAndReReplicates(t *testing.T) {
	c := NewCluster(4, testBlock)
	cl := c.Client("")
	data := payload(3*testBlock, 42)
	if err := cl.WriteFile("/film", data, 3); err != nil {
		t.Fatal(err)
	}
	h := fastHealer(c)
	defer h.Stop()

	if err := c.CrashDataNode("dn1"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "dead-node detection", func() bool {
		return c.reg.Counter("datanodes_detected_dead").Value() == 1
	})
	waitUntil(t, "full re-replication", func() bool {
		return len(c.NameNode().UnderReplicatedAll()) == 0
	})
	got, err := cl.ReadFile("/film")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after healing")
	}
	st := h.Stats()
	if st.BlocksHealed == 0 {
		t.Fatal("no blocks recorded as healed")
	}
	if st.DetectLatency.Count == 0 || st.HealLatency.Count == 0 {
		t.Fatalf("latency histograms empty: %+v", st)
	}
}

// A node that comes back up after being declared dead must rejoin: its
// replicas count again and under-replication clears even when no spare node
// exists to copy to.
func TestHealerRejoinsRevivedNode(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(2*testBlock, 7), 3); err != nil {
		t.Fatal(err)
	}
	h := fastHealer(c)
	defer h.Stop()

	// All 3 nodes hold replicas; with one down there is nowhere to copy.
	c.CrashDataNode("dn2")
	waitUntil(t, "detection", func() bool {
		return c.reg.Counter("datanodes_detected_dead").Value() == 1
	})
	// Bring it back: the healer must re-register it and clear the debt.
	c.DataNode("dn2").SetDown(false)
	waitUntil(t, "rejoin", func() bool {
		return c.reg.Counter("datanodes_rejoined").Value() == 1
	})
	waitUntil(t, "replication restored", func() bool {
		return len(c.NameNode().UnderReplicatedAll()) == 0
	})
}

// Two replicas of the same block lost at once: the healer must copy twice
// (re-resolving sources) to restore a 3-target block on a 5-node cluster.
func TestHealerRestoresDoubleLoss(t *testing.T) {
	c := NewCluster(5, testBlock)
	cl := c.Client("")
	data := payload(testBlock, 9)
	if err := cl.WriteFile("/f", data, 3); err != nil {
		t.Fatal(err)
	}
	locs, err := cl.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	h := fastHealer(c)
	defer h.Stop()
	c.CrashDataNode(locs[0].Locations[0])
	c.CrashDataNode(locs[0].Locations[1])
	waitUntil(t, "full re-replication after double loss", func() bool {
		return len(c.NameNode().UnderReplicatedAll()) == 0
	})
	got, err := cl.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after double-loss healing")
	}
}

// A corrupt replica reported by a reader must be healed by the background
// worker without any manual RepairAll.
func TestHealerRepairsCorruptReplica(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	data := payload(testBlock, 5)
	if err := cl.WriteFile("/f", data, 2); err != nil {
		t.Fatal(err)
	}
	locs, err := cl.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	h := fastHealer(c)
	defer h.Stop()
	// Corrupt one replica; a read fails over and reports it.
	bad := locs[0].Locations[0]
	if err := c.DataNode(bad).Corrupt(locs[0].ID); err != nil {
		t.Fatal(err)
	}
	if got, err := cl.ReadFile("/f"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read with corrupt replica: err=%v", err)
	}
	waitUntil(t, "corrupt replica re-replicated", func() bool {
		return len(c.NameNode().UnderReplicatedAll()) == 0
	})
}

// The healer must be quiet on a healthy cluster: no detections, no copies.
func TestHealerIdleOnHealthyCluster(t *testing.T) {
	c := NewCluster(3, testBlock)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(2*testBlock, 3), 2); err != nil {
		t.Fatal(err)
	}
	h := fastHealer(c)
	time.Sleep(50 * time.Millisecond)
	h.Stop()
	st := h.Stats()
	if st.DataNodesDetectedDead != 0 || st.BlocksHealed != 0 {
		t.Fatalf("healer acted on a healthy cluster: %+v", st)
	}
	if st.PendingRepairs != 0 {
		t.Fatalf("PendingRepairs = %d", st.PendingRepairs)
	}
}
