// Package hdfs is the Hadoop Distributed File System stand-in described in
// the paper's §III-B and Figure 11: a master-slave file system with one
// NameNode holding the namespace and block map, and DataNodes storing
// replicated blocks. "The metadata consists of name space of the file
// system ... however, the real data are not stored at Name node."
//
// This implementation moves real bytes: files are split into blocks, written
// through a replication pipeline across DataNodes, verified with CRC32
// checksums on read, and re-replicated when a DataNode dies — the property
// the paper relies on "to lower damage risks caused by hosts".
package hdfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// DefaultBlockSize matches Hadoop 0.20's 64 MiB default.
const DefaultBlockSize = 64 << 20

// Errors returned by the NameNode.
var (
	ErrNotFound       = errors.New("hdfs: no such file or directory")
	ErrExists         = errors.New("hdfs: file exists")
	ErrIsDirectory    = errors.New("hdfs: is a directory")
	ErrNotDirectory   = errors.New("hdfs: not a directory")
	ErrNotEmpty       = errors.New("hdfs: directory not empty")
	ErrNoDataNodes    = errors.New("hdfs: no live datanodes for placement")
	ErrFileOpen       = errors.New("hdfs: file is under construction")
	ErrFileComplete   = errors.New("hdfs: file already complete")
	ErrBadReplication = errors.New("hdfs: invalid replication factor")
)

// BlockID identifies a block cluster-wide.
type BlockID int64

// BlockInfo is the NameNode's record of one block.
type BlockInfo struct {
	ID        BlockID
	Length    int64
	Locations []string // datanode names holding a replica
	// Replication is the file's target replica count for this block.
	Replication int
}

// FileStatus describes a namespace entry.
type FileStatus struct {
	Path        string
	IsDir       bool
	Size        int64
	Replication int
	Blocks      int
}

// ReplicationTask instructs the cluster to copy a block between datanodes to
// restore its replication factor.
type ReplicationTask struct {
	Block BlockID
	Src   string
	Dst   string
}

type inode struct {
	name     string
	dir      bool
	children map[string]*inode
	// file fields
	blocks      []BlockID
	replication int
	complete    bool
}

// DefaultRack is the rack of datanodes registered without topology.
const DefaultRack = "/default-rack"

type dnInfo struct {
	name            string
	rack            string
	capacity        int64
	used            int64
	alive           bool
	decommissioning bool
	blocks          map[BlockID]bool
}

// NameNode is the master: namespace tree, block map, datanode liveness, and
// the replication queue. All methods are safe for concurrent use.
type NameNode struct {
	mu        sync.Mutex
	blockSize int64
	root      *inode
	blocks    map[BlockID]*BlockInfo
	nextBlock BlockID
	datanodes map[string]*dnInfo
	// pendingRepl holds blocks needing re-replication; drained by
	// TakeReplicationTasks.
	pendingRepl []ReplicationTask
}

// NewNameNode returns a NameNode with the given block size (0 selects
// DefaultBlockSize).
func NewNameNode(blockSize int64) *NameNode {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &NameNode{
		blockSize: blockSize,
		root:      &inode{name: "/", dir: true, children: map[string]*inode{}},
		blocks:    make(map[BlockID]*BlockInfo),
		datanodes: make(map[string]*dnInfo),
	}
}

// BlockSize returns the cluster block size.
func (nn *NameNode) BlockSize() int64 { return nn.blockSize }

func splitPath(p string) ([]string, error) {
	if !strings.HasPrefix(p, "/") {
		return nil, fmt.Errorf("hdfs: path %q is not absolute", p)
	}
	clean := path.Clean(p)
	if clean == "/" {
		return nil, nil
	}
	return strings.Split(strings.TrimPrefix(clean, "/"), "/"), nil
}

// lookup walks to the inode for p; nil if absent.
func (nn *NameNode) lookup(p string) (*inode, error) {
	parts, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	cur := nn.root
	for _, part := range parts {
		if !cur.dir {
			return nil, fmt.Errorf("%w: %q", ErrNotDirectory, p)
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, p)
		}
		cur = next
	}
	return cur, nil
}

// Mkdir creates a directory and any missing parents.
func (nn *NameNode) Mkdir(p string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	cur := nn.root
	for _, part := range parts {
		next, ok := cur.children[part]
		if !ok {
			next = &inode{name: part, dir: true, children: map[string]*inode{}}
			cur.children[part] = next
		} else if !next.dir {
			return fmt.Errorf("%w: %q", ErrNotDirectory, p)
		}
		cur = next
	}
	return nil
}

// Create opens a new file for writing with the given replication factor.
// Parents are created as needed. The file stays "under construction" until
// CloseFile.
func (nn *NameNode) Create(p string, replication int) error {
	if replication < 1 {
		return fmt.Errorf("%w: %d", ErrBadReplication, replication)
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: /", ErrIsDirectory)
	}
	cur := nn.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur.children[part]
		if !ok {
			next = &inode{name: part, dir: true, children: map[string]*inode{}}
			cur.children[part] = next
		} else if !next.dir {
			return fmt.Errorf("%w: %q", ErrNotDirectory, p)
		}
		cur = next
	}
	name := parts[len(parts)-1]
	if _, dup := cur.children[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, p)
	}
	cur.children[name] = &inode{name: name, replication: replication}
	return nil
}

// file returns the inode for a plain file.
func (nn *NameNode) file(p string) (*inode, error) {
	node, err := nn.lookup(p)
	if err != nil {
		return nil, err
	}
	if node.dir {
		return nil, fmt.Errorf("%w: %q", ErrIsDirectory, p)
	}
	return node, nil
}

// AddBlock allocates the next block of an under-construction file and
// chooses its replica pipeline. clientNode, when it names a live datanode,
// receives the first replica (HDFS write locality).
func (nn *NameNode) AddBlock(p, clientNode string) (*BlockInfo, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	node, err := nn.file(p)
	if err != nil {
		return nil, err
	}
	if node.complete {
		return nil, fmt.Errorf("%w: %q", ErrFileComplete, p)
	}
	targets := nn.chooseTargets(node.replication, clientNode, nil)
	if len(targets) == 0 {
		return nil, ErrNoDataNodes
	}
	nn.nextBlock++
	info := &BlockInfo{ID: nn.nextBlock, Locations: targets, Replication: node.replication}
	nn.blocks[info.ID] = info
	node.blocks = append(node.blocks, info.ID)
	return info, nil
}

// chooseTargets picks up to want live datanodes for a new block's pipeline.
// With a single rack it prefers the client's node first, then least-used.
// With topology it follows Hadoop's default placement: first replica on the
// client's node (or least-used), second on a *different* rack (survives a
// rack failure), third on the second's rack but a different node (bounds
// cross-rack traffic), and any further replicas least-used anywhere.
func (nn *NameNode) chooseTargets(want int, clientNode string, exclude map[string]bool) []string {
	var cands []*dnInfo
	racks := map[string]bool{}
	for _, dn := range nn.datanodes {
		if dn.alive && !dn.decommissioning && !exclude[dn.name] {
			cands = append(cands, dn)
			racks[dn.rack] = true
		}
	}
	// Deterministic base order: client-local first, emptiest, then name.
	sort.Slice(cands, func(i, j int) bool {
		li, lj := cands[i].name == clientNode, cands[j].name == clientNode
		if li != lj {
			return li
		}
		if cands[i].used != cands[j].used {
			return cands[i].used < cands[j].used
		}
		return cands[i].name < cands[j].name
	})
	if want >= 2 && len(racks) >= 2 {
		return nn.rackAwareTargets(want, cands)
	}
	if len(cands) > want {
		cands = cands[:want]
	}
	out := make([]string, len(cands))
	for i, dn := range cands {
		out[i] = dn.name
	}
	return out
}

// rackAwareTargets implements the staged rack policy over an already-ranked
// candidate list.
func (nn *NameNode) rackAwareTargets(want int, ranked []*dnInfo) []string {
	taken := map[string]bool{}
	var out []string
	pick := func(pred func(*dnInfo) bool) *dnInfo {
		for _, dn := range ranked {
			if !taken[dn.name] && pred(dn) {
				taken[dn.name] = true
				out = append(out, dn.name)
				return dn
			}
		}
		return nil
	}
	any := func(*dnInfo) bool { return true }
	first := pick(any)
	if first == nil {
		return out
	}
	if len(out) < want {
		second := pick(func(dn *dnInfo) bool { return dn.rack != first.rack })
		if second == nil {
			second = pick(any)
		}
		if second != nil && len(out) < want {
			third := pick(func(dn *dnInfo) bool { return dn.rack == second.rack })
			if third == nil {
				pick(any)
			}
		}
	}
	for len(out) < want && pick(any) != nil {
	}
	return out
}

// CommitBlock records a block's final length and its confirmed replica
// locations after the pipeline write succeeded.
func (nn *NameNode) CommitBlock(id BlockID, length int64, locations []string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	info, ok := nn.blocks[id]
	if !ok {
		return fmt.Errorf("hdfs: commit of unknown block %d", id)
	}
	info.Length = length
	info.Locations = append([]string(nil), locations...)
	for _, name := range locations {
		if dn := nn.datanodes[name]; dn != nil {
			dn.blocks[id] = true
			dn.used += length
		}
	}
	return nil
}

// CloseFile completes an under-construction file; its content becomes
// immutable (matching 2012-era HDFS without append).
func (nn *NameNode) CloseFile(p string) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	node, err := nn.file(p)
	if err != nil {
		return err
	}
	if node.complete {
		return fmt.Errorf("%w: %q", ErrFileComplete, p)
	}
	node.complete = true
	return nil
}

// GetBlockLocations returns the file's blocks in order with their replica
// locations. Only complete files can be read.
func (nn *NameNode) GetBlockLocations(p string) ([]BlockInfo, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	node, err := nn.file(p)
	if err != nil {
		return nil, err
	}
	if !node.complete {
		return nil, fmt.Errorf("%w: %q", ErrFileOpen, p)
	}
	return nn.blockInfosLocked(node), nil
}

// blockInfosLocked snapshots a complete file's block layout. The location
// lists are carved from one arena sized by a counting pass — two
// allocations for the whole file instead of one per block — with
// full-capacity subslices so an append on one block's list can never bleed
// into the next. Callers hold nn.mu.
func (nn *NameNode) blockInfosLocked(node *inode) []BlockInfo {
	out := make([]BlockInfo, len(node.blocks))
	var locTotal int
	for _, id := range node.blocks {
		info := nn.blocks[id]
		for _, name := range info.Locations {
			if dn := nn.datanodes[name]; dn != nil && dn.alive {
				locTotal++
			}
		}
	}
	arena := make([]string, 0, locTotal)
	for i, id := range node.blocks {
		info := nn.blocks[id]
		lo := len(arena)
		for _, name := range info.Locations {
			if dn := nn.datanodes[name]; dn != nil && dn.alive {
				arena = append(arena, name)
			}
		}
		out[i] = BlockInfo{
			ID: id, Length: info.Length,
			Locations: arena[lo:len(arena):len(arena)], Replication: info.Replication,
		}
	}
	return out
}

// FileBlocks resolves a path's status and, for complete files, its block
// layout in one namespace lock acquisition — the batched lookup backing
// Client.Open, which previously paid separate Stat and GetBlockLocations
// round trips. Directories return their status with nil blocks; an
// under-construction file is an ErrFileOpen error.
func (nn *NameNode) FileBlocks(p string) (FileStatus, []BlockInfo, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	node, err := nn.lookup(p)
	if err != nil {
		return FileStatus{}, nil, err
	}
	st := FileStatus{Path: path.Clean(p), IsDir: node.dir, Replication: node.replication}
	if node.dir {
		return st, nil, nil
	}
	if !node.complete {
		return FileStatus{}, nil, fmt.Errorf("%w: %q", ErrFileOpen, p)
	}
	blocks := nn.blockInfosLocked(node)
	for _, b := range blocks {
		st.Size += b.Length
	}
	st.Blocks = len(blocks)
	return st, blocks, nil
}

func (nn *NameNode) liveLocations(info *BlockInfo) []string {
	var out []string
	for _, name := range info.Locations {
		if dn := nn.datanodes[name]; dn != nil && dn.alive {
			out = append(out, name)
		}
	}
	return out
}

// Stat returns metadata for a path.
func (nn *NameNode) Stat(p string) (FileStatus, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	node, err := nn.lookup(p)
	if err != nil {
		return FileStatus{}, err
	}
	st := FileStatus{Path: path.Clean(p), IsDir: node.dir, Replication: node.replication}
	if !node.dir {
		for _, id := range node.blocks {
			st.Size += nn.blocks[id].Length
		}
		st.Blocks = len(node.blocks)
	}
	return st, nil
}

// List returns the entries of a directory, sorted by name.
func (nn *NameNode) List(p string) ([]FileStatus, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	node, err := nn.lookup(p)
	if err != nil {
		return nil, err
	}
	if !node.dir {
		return nil, fmt.Errorf("%w: %q", ErrNotDirectory, p)
	}
	names := make([]string, 0, len(node.children))
	for name := range node.children {
		names = append(names, name)
	}
	sort.Strings(names)
	base := path.Clean(p)
	out := make([]FileStatus, 0, len(names))
	for _, name := range names {
		child := node.children[name]
		st := FileStatus{Path: path.Join(base, name), IsDir: child.dir, Replication: child.replication}
		if !child.dir {
			for _, id := range child.blocks {
				st.Size += nn.blocks[id].Length
			}
			st.Blocks = len(child.blocks)
		}
		out = append(out, st)
	}
	return out, nil
}

// Delete removes a file (releasing its blocks) or an empty directory.
// Returns the block IDs to reclaim so datanodes can free storage.
func (nn *NameNode) Delete(p string) ([]BlockID, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	parts, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("hdfs: cannot delete /")
	}
	cur := nn.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur.children[part]
		if !ok || !next.dir {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, p)
		}
		cur = next
	}
	name := parts[len(parts)-1]
	node, ok := cur.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, p)
	}
	if node.dir && len(node.children) > 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotEmpty, p)
	}
	delete(cur.children, name)
	var freed []BlockID
	for _, id := range node.blocks {
		info := nn.blocks[id]
		for _, loc := range info.Locations {
			if dn := nn.datanodes[loc]; dn != nil && dn.blocks[id] {
				delete(dn.blocks, id)
				dn.used -= info.Length
			}
		}
		delete(nn.blocks, id)
		freed = append(freed, id)
	}
	return freed, nil
}

// ---- datanode management ----

// RegisterDataNode adds (or revives) a datanode on the default rack.
func (nn *NameNode) RegisterDataNode(name string, capacity int64) {
	nn.RegisterDataNodeRack(name, capacity, DefaultRack)
}

// RegisterDataNodeRack adds (or revives) a datanode with rack topology;
// replica placement then follows Hadoop's rack policy (see chooseTargets).
func (nn *NameNode) RegisterDataNodeRack(name string, capacity int64, rack string) {
	if rack == "" {
		rack = DefaultRack
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if dn, ok := nn.datanodes[name]; ok {
		dn.alive = true
		dn.capacity = capacity
		dn.rack = rack
		return
	}
	nn.datanodes[name] = &dnInfo{
		name: name, rack: rack, capacity: capacity, alive: true, blocks: map[BlockID]bool{},
	}
}

// Rack returns a datanode's rack ("" if unknown).
func (nn *NameNode) Rack(name string) string {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if dn := nn.datanodes[name]; dn != nil {
		return dn.rack
	}
	return ""
}

// LiveDataNodes returns the names of live datanodes, sorted.
func (nn *NameNode) LiveDataNodes() []string {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []string
	for name, dn := range nn.datanodes {
		if dn.alive {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// MarkDead declares a datanode dead (missed heartbeats) and enqueues
// re-replication work for every under-replicated block it held.
func (nn *NameNode) MarkDead(name string) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	dn, ok := nn.datanodes[name]
	if !ok || !dn.alive {
		return
	}
	dn.alive = false
	ids := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info := nn.blocks[id]
		if info == nil {
			continue
		}
		live := nn.liveLocations(info)
		if len(live) == 0 {
			continue // block lost; read path will surface the error
		}
		exclude := map[string]bool{}
		for _, l := range info.Locations {
			exclude[l] = true
		}
		targets := nn.chooseTargets(1, "", exclude)
		if len(targets) == 0 {
			continue
		}
		nn.pendingRepl = append(nn.pendingRepl, ReplicationTask{
			Block: id, Src: live[0], Dst: targets[0],
		})
	}
}

// TakeReplicationTasks drains the re-replication queue.
func (nn *NameNode) TakeReplicationTasks() []ReplicationTask {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	out := nn.pendingRepl
	nn.pendingRepl = nil
	return out
}

// BlockReceived records a new replica (completed re-replication copy).
func (nn *NameNode) BlockReceived(node string, id BlockID) error {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	info, ok := nn.blocks[id]
	if !ok {
		return fmt.Errorf("hdfs: blockReceived for unknown block %d", id)
	}
	dn, ok := nn.datanodes[node]
	if !ok {
		return fmt.Errorf("hdfs: blockReceived from unknown node %q", node)
	}
	for _, loc := range info.Locations {
		if loc == node {
			return nil
		}
	}
	info.Locations = append(info.Locations, node)
	dn.blocks[id] = true
	dn.used += info.Length
	return nil
}

// ReportCorrupt removes a corrupt replica from the block map and, when live
// replicas remain, queues a re-replication from one of them.
func (nn *NameNode) ReportCorrupt(node string, id BlockID) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	info, ok := nn.blocks[id]
	if !ok {
		return
	}
	kept := info.Locations[:0]
	for _, loc := range info.Locations {
		if loc != node {
			kept = append(kept, loc)
		}
	}
	info.Locations = kept
	if dn := nn.datanodes[node]; dn != nil && dn.blocks[id] {
		delete(dn.blocks, id)
		dn.used -= info.Length
	}
	live := nn.liveLocations(info)
	if len(live) == 0 {
		return
	}
	exclude := map[string]bool{node: true}
	for _, l := range info.Locations {
		exclude[l] = true
	}
	targets := nn.chooseTargets(1, "", exclude)
	if len(targets) > 0 {
		nn.pendingRepl = append(nn.pendingRepl, ReplicationTask{Block: id, Src: live[0], Dst: targets[0]})
	}
}

// UnderReplicated returns blocks whose live replica count is below want.
func (nn *NameNode) UnderReplicated(want int) []BlockID {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []BlockID
	for id, info := range nn.blocks {
		if len(nn.liveLocations(info)) < want {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UnderReplicatedAll returns blocks whose live replica count is below their
// own file's target replication, sorted — the healer's scan source, which
// (unlike the pendingRepl queue) cannot lose work to a failed copy.
func (nn *NameNode) UnderReplicatedAll() []BlockID {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var out []BlockID
	for id, info := range nn.blocks {
		if len(nn.liveLocations(info)) < info.Replication {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsAlive reports whether the named datanode is currently considered live.
func (nn *NameNode) IsAlive(name string) bool {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	dn := nn.datanodes[name]
	return dn != nil && dn.alive
}

// PlanRepair re-resolves one re-replication copy for id at call time:
// a live source replica and a fresh live target excluding every current
// location. healthy reports the block already meets its target replication
// (nothing to do); ok reports whether a task could be planned — false with
// healthy=false means the block is currently unrepairable (no live source,
// or nowhere to put a copy).
func (nn *NameNode) PlanRepair(id BlockID) (task ReplicationTask, healthy, ok bool) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	info := nn.blocks[id]
	if info == nil {
		return ReplicationTask{}, true, false // deleted: nothing to heal
	}
	live := nn.liveLocations(info)
	if len(live) >= info.Replication {
		return ReplicationTask{}, true, false
	}
	if len(live) == 0 {
		return ReplicationTask{}, false, false // lost (until a node rejoins)
	}
	exclude := map[string]bool{}
	for _, l := range info.Locations {
		exclude[l] = true
	}
	targets := nn.chooseTargets(1, "", exclude)
	if len(targets) == 0 {
		return ReplicationTask{}, false, false
	}
	return ReplicationTask{Block: id, Src: live[0], Dst: targets[0]}, false, true
}
