package hdfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// twoRackCluster builds 3 nodes on rack A and 3 on rack B.
func twoRackCluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster(0, testBlock)
	for i := 0; i < 3; i++ {
		c.AddDataNodeRack(fmt.Sprintf("a%d", i), "/rack-a")
		c.AddDataNodeRack(fmt.Sprintf("b%d", i), "/rack-b")
	}
	return c
}

func rackOf(c *Cluster, node string) string { return c.NameNode().Rack(node) }

func TestRackAwarePlacementSpansTwoRacks(t *testing.T) {
	c := twoRackCluster(t)
	cl := c.Client("")
	if err := cl.WriteFile("/f", payload(4*testBlock, 1), 3); err != nil {
		t.Fatal(err)
	}
	blocks, _ := cl.BlockLocations("/f")
	for _, b := range blocks {
		if len(b.Locations) != 3 {
			t.Fatalf("block %d has %d replicas", b.ID, len(b.Locations))
		}
		racks := map[string]int{}
		for _, loc := range b.Locations {
			racks[rackOf(c, loc)]++
		}
		// Hadoop policy: exactly two racks, split 2+1.
		if len(racks) != 2 {
			t.Fatalf("block %d spans %d racks: %v", b.ID, len(racks), b.Locations)
		}
		for _, n := range racks {
			if n != 1 && n != 2 {
				t.Fatalf("block %d rack split %v", b.ID, racks)
			}
		}
		// Replicas 2 and 3 share a rack (cross-rack traffic bounded).
		if rackOf(c, b.Locations[1]) != rackOf(c, b.Locations[2]) {
			t.Fatalf("block %d: 2nd and 3rd replicas on different racks: %v", b.ID, b.Locations)
		}
		// Replica 1 and 2 on different racks (rack-failure tolerance).
		if rackOf(c, b.Locations[0]) == rackOf(c, b.Locations[1]) {
			t.Fatalf("block %d: first two replicas share a rack: %v", b.ID, b.Locations)
		}
	}
}

func TestRackFailureSurvivedWithRF3(t *testing.T) {
	c := twoRackCluster(t)
	cl := c.Client("")
	data := payload(5*testBlock, 2)
	cl.WriteFile("/f", data, 3)
	if killed := c.KillRack("/rack-a"); killed != 3 {
		t.Fatalf("killed %d nodes", killed)
	}
	got, err := cl.ReadFile("/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rack failure: %v", err)
	}
}

func TestRackFailureLosesDataWithoutRackAwareness(t *testing.T) {
	// Negative control: all nodes on one rack, second "rack" empty — the
	// rack policy cannot help, so killing the only populated rack loses
	// everything.
	c := NewCluster(0, testBlock)
	for i := 0; i < 3; i++ {
		c.AddDataNodeRack(fmt.Sprintf("a%d", i), "/rack-a")
	}
	cl := c.Client("")
	cl.WriteFile("/f", payload(2*testBlock, 3), 3)
	c.KillRack("/rack-a")
	if _, err := cl.ReadFile("/f"); err == nil {
		t.Fatal("read succeeded with every replica holder dead")
	}
}

func TestSingleRackKeepsLegacyPlacement(t *testing.T) {
	// Without topology, placement is client-local + least-used, as before.
	c := NewCluster(4, testBlock)
	cl := c.Client("dn2")
	cl.WriteFile("/f", payload(testBlock, 4), 2)
	blocks, _ := cl.BlockLocations("/f")
	if blocks[0].Locations[0] != "dn2" {
		t.Fatalf("client-local placement broken: %v", blocks[0].Locations)
	}
}

func TestReviveKeepsRack(t *testing.T) {
	c := twoRackCluster(t)
	c.Client("").WriteFile("/f", payload(testBlock, 5), 2)
	c.KillDataNode("a0")
	c.ReviveDataNode("a0")
	if got := c.NameNode().Rack("a0"); got != "/rack-a" {
		t.Fatalf("rack after revive = %q", got)
	}
}

// Property: for any RF and cluster shape with two racks, every placed block
// has distinct nodes and, when RF >= 2 and both racks have capacity, spans
// both racks.
func TestPropertyRackPlacementInvariants(t *testing.T) {
	f := func(rfRaw, aNodes, bNodes uint8) bool {
		rf := int(rfRaw%3) + 1
		na, nb := int(aNodes%3)+1, int(bNodes%3)+1
		c := NewCluster(0, testBlock)
		for i := 0; i < na; i++ {
			c.AddDataNodeRack(fmt.Sprintf("a%d", i), "/ra")
		}
		for i := 0; i < nb; i++ {
			c.AddDataNodeRack(fmt.Sprintf("b%d", i), "/rb")
		}
		cl := c.Client("")
		if err := cl.WriteFile("/f", payload(testBlock, int64(rfRaw)), rf); err != nil {
			return false
		}
		blocks, err := cl.BlockLocations("/f")
		if err != nil {
			return false
		}
		for _, b := range blocks {
			seen := map[string]bool{}
			racks := map[string]bool{}
			for _, loc := range b.Locations {
				if seen[loc] {
					return false // duplicate node
				}
				seen[loc] = true
				racks[rackOf(c, loc)] = true
			}
			want := rf
			if want > na+nb {
				want = na + nb
			}
			if len(b.Locations) != want {
				return false
			}
			if rf >= 2 && len(b.Locations) >= 2 && len(racks) < 2 {
				return false // both racks available but not used
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
