package hdfs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"videocloud/internal/trace"
)

// Reader reads an HDFS file with io.Reader/io.Seeker/io.ReaderAt semantics;
// it backs both sequential consumption (MapReduce splits, the FUSE bridge)
// and the seekable-playback path of the video site (HTTP Range requests).
//
// With the cluster's shared block cache enabled (the serving configuration),
// block windows are served by slicing the cache's immutable copy: the first
// reader of a block runs one single-flight replica fetch and every
// concurrent and later reader shares the result. AppendRangeSlices exposes
// those views directly — zero data copies between the cache and the HTTP
// response — with the reader holding a reference per block until Close.
//
// Without the cache, sequential Reads get per-reader readahead: once a read
// touches the tail of a block, the next block is prefetched in the
// background, so block N+1 transfers while block N is being consumed.
// Random ReadAt windows bypass the readahead trigger and fetch — and
// checksum-verify — only the chunks they overlap, straight into the
// caller's buffer.
//
// A short block — fewer bytes than the NameNode's recorded length, from a
// truncated cache entry or replica — fails the read with
// io.ErrUnexpectedEOF instead of silently misaligning later bytes.
//
// ReadAt and AppendRangeSlices are safe for concurrent use; Read and Seek
// share the position and are not. Close releases every cache reference the
// reader holds; slices obtained before Close stay valid until then.
type Reader struct {
	client *Client
	blocks []BlockInfo
	starts []int64 // starts[i] = file offset of blocks[i]
	size   int64
	st     FileStatus
	pos    int64
	// span, when non-nil (OpenCtx under a sampled trace), parents the
	// hdfs.read_block / hdfs.prefetch spans this reader's fetches emit.
	span *trace.Span

	mu       sync.Mutex
	cache    map[int]*raEntry      // block index -> readahead slot (≤2 entries)
	retained map[BlockID]*CacheEntry // shared-cache refs backing handed-out slices
	closed   bool
}

// raEntry is one readahead slot; ready closes once data/err are set.
type raEntry struct {
	ready chan struct{}
	data  []byte
	err   error
}

// readaheadTriggerDenom arms prefetch of the next block when a sequential
// read touches the last 1/readaheadTriggerDenom of the current one: a
// consumer that deep is very likely to continue, while a random player
// window usually isn't, so seeks don't waste whole-block fetches.
const readaheadTriggerDenom = 4

// Size returns the file length.
func (r *Reader) Size() int64 { return r.size }

// Stat returns the file's NameNode status as recorded at open time.
func (r *Reader) Stat() FileStatus { return r.st }

// Read implements io.Reader. The prefetch is armed before the current
// window is fetched so the next block transfers while this one is served.
func (r *Reader) Read(p []byte) (int, error) {
	r.maybePrefetch(r.pos, int64(len(p)))
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("hdfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("hdfs: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// Close releases the reader's shared-cache references. Slices returned by
// AppendRangeSlices must not be used after Close. Reads after Close still
// work (they fall back to acquire-copy-release), so a late Range request on
// a recycled fs.File fails loudly nowhere — but they retain nothing.
func (r *Reader) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	retained := r.retained
	r.retained = nil
	r.cache = nil
	r.mu.Unlock()
	for _, e := range retained {
		e.Release()
	}
	return nil
}

// blockIndex returns the index of the block containing file offset off
// (len(r.blocks) when off is at or past EOF).
func (r *Reader) blockIndex(off int64) int {
	return sort.Search(len(r.blocks), func(i int) bool {
		return r.starts[i]+r.blocks[i].Length > off
	})
}

// ReadAt implements io.ReaderAt, fetching only the block ranges covering
// [off, off+len(p)). A block that comes back shorter than its recorded
// length fails with io.ErrUnexpectedEOF rather than letting the next
// block's bytes slide into the gap.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("hdfs: negative read offset %d", off)
	}
	if off >= r.size {
		return 0, io.EOF
	}
	n := 0
	for bi := r.blockIndex(off); n < len(p) && bi < len(r.blocks); bi++ {
		bo := off + int64(n) - r.starts[bi]
		want := int64(len(p) - n)
		if rem := r.blocks[bi].Length - bo; want > rem {
			want = rem
		}
		m, err := r.blockRangeInto(bi, bo, p[n:int64(n)+want])
		n += m
		if err != nil {
			return n, err
		}
		if int64(m) < want {
			// The source (cache entry or replica) held fewer bytes than
			// the NameNode recorded for this block. Advancing would
			// misalign every subsequent byte of the response.
			return n, io.ErrUnexpectedEOF
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// AppendRangeSlices appends immutable views covering [off, off+length) of
// the file to dst and returns it — the zero-copy serving path. With the
// shared block cache the views alias cached block data (references held
// until Close); without it each view is a freshly fetched window buffer.
// A short block yields io.ErrUnexpectedEOF, an offset at or past EOF
// io.EOF; length is clamped to the file end.
func (r *Reader) AppendRangeSlices(dst [][]byte, off, length int64) ([][]byte, error) {
	if off < 0 {
		return dst, fmt.Errorf("hdfs: negative read offset %d", off)
	}
	if length == 0 {
		return dst, nil
	}
	if off >= r.size {
		return dst, io.EOF
	}
	if rem := r.size - off; length > rem {
		length = rem
	}
	var n int64
	for bi := r.blockIndex(off); n < length && bi < len(r.blocks); bi++ {
		bo := off + n - r.starts[bi]
		want := length - n
		if rem := r.blocks[bi].Length - bo; want > rem {
			want = rem
		}
		sl, err := r.blockRangeSlice(bi, bo, want)
		if len(sl) > 0 {
			dst = append(dst, sl)
		}
		n += int64(len(sl))
		if err != nil {
			return dst, err
		}
		if int64(len(sl)) < want {
			return dst, io.ErrUnexpectedEOF
		}
	}
	return dst, nil
}

// RangeSlices is AppendRangeSlices into a fresh slice set.
func (r *Reader) RangeSlices(off, length int64) ([][]byte, error) {
	return r.AppendRangeSlices(nil, off, length)
}

// localSlot returns the reader-local readahead entry for block bi, or nil.
func (r *Reader) localSlot(bi int) *raEntry {
	r.mu.Lock()
	e := r.cache[bi]
	r.mu.Unlock()
	return e
}

// localSlotData waits for a readahead slot and returns its data, dropping
// the slot on fetch failure so the caller retries against live replicas.
func (r *Reader) localSlotData(bi int, e *raEntry) ([]byte, bool) {
	<-e.ready
	if e.err == nil {
		r.client.cluster.reg.Counter("readahead_hits").Inc()
		if hsp := r.span.StartChild("hdfs.read_block"); hsp != nil {
			hsp.AnnotateInt("block", int64(r.blocks[bi].ID))
			hsp.Annotate("readahead", "hit")
			hsp.End()
		}
		return e.data, true
	}
	// The prefetch failed (e.g. every replica was down when it ran);
	// drop the slot and retry synchronously, which re-ranks replicas
	// as they are now.
	r.mu.Lock()
	if r.cache[bi] == e {
		delete(r.cache, bi)
	}
	r.mu.Unlock()
	return nil, false
}

// cacheEntry returns a referenced shared-cache entry for block bi, filling
// it single-flight from replicas when absent. The reference is transient:
// the caller must Release it. When the reader already retains the block
// (slices handed out), that retained entry is reused with an extra
// reference so mixed ReadAt/slice traffic stays cheap.
func (r *Reader) cacheEntry(bc *BlockCache, bi int) (*CacheEntry, error) {
	info := r.blocks[bi]
	r.mu.Lock()
	if e := r.retained[info.ID]; e != nil {
		e.retain()
		r.mu.Unlock()
		return e, nil
	}
	r.mu.Unlock()
	e, source, err := bc.GetOrFill(info.ID, func() ([]byte, error) {
		return r.client.fetchWithFailover(r.span, "cache_fill", info, func(dn *DataNode) ([]byte, error) {
			return dn.Read(info.ID)
		})
	})
	if err != nil {
		return nil, err
	}
	if source != "fill" && r.span.Recording() {
		// Fills already emit an annotated hdfs.read_block span from the
		// replica fetch; hits and single-flight joins record a cheap span
		// so traces attribute the window to the cache.
		if hsp := r.span.StartChild("hdfs.read_block"); hsp != nil {
			hsp.AnnotateInt("block", int64(info.ID))
			hsp.Annotate("cache", source)
			hsp.End()
		}
	}
	return e, nil
}

// retainEntry records e as backing handed-out slices, owning its reference
// until Close. Reports false — caller keeps ownership — when the reader is
// closed or already retains the block.
func (r *Reader) retainEntry(e *CacheEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.retained[e.id] != nil {
		return false
	}
	if r.retained == nil {
		r.retained = make(map[BlockID]*CacheEntry)
	}
	r.retained[e.id] = e
	return true
}

// blockRangeInto copies [bo, bo+len(dst)) of block bi into dst, serving
// from the reader-local readahead slot, then the shared block cache
// (single-flight fill, reference held only for the copy — a sequential
// whole-file scan never pins more than one block), then straight from a
// replica, verifying and copying only the checksum chunks the window
// overlaps.
func (r *Reader) blockRangeInto(bi int, bo int64, dst []byte) (int, error) {
	if e := r.localSlot(bi); e != nil {
		if data, ok := r.localSlotData(bi, e); ok {
			return copyWindow(dst, data, bo), nil
		}
	}
	if bc := r.client.cluster.BlockCache(); bc != nil {
		e, err := r.cacheEntry(bc, bi)
		if err != nil {
			return 0, err
		}
		n := copyWindow(dst, e.data, bo)
		e.Release()
		return n, nil
	}
	r.client.cluster.reg.Counter("readahead_misses").Inc()
	return r.client.fetchRangeInto(r.span, "miss", r.blocks[bi], bo, dst)
}

// blockRangeSlice returns a view of [bo, bo+want) of block bi without
// copying when a cached copy exists (reader-local or shared); otherwise it
// fetches exactly that window into a fresh buffer. Shared-cache views stay
// referenced until Close.
func (r *Reader) blockRangeSlice(bi int, bo, want int64) ([]byte, error) {
	if e := r.localSlot(bi); e != nil {
		if data, ok := r.localSlotData(bi, e); ok {
			return sliceWindow(data, bo, want), nil
		}
	}
	if bc := r.client.cluster.BlockCache(); bc != nil {
		e, err := r.cacheEntry(bc, bi)
		if err != nil {
			return nil, err
		}
		sl := sliceWindow(e.data, bo, want)
		if !r.retainEntry(e) {
			// Closed reader (nothing would hold the reference past this
			// call): hand back a copy instead of an unguarded view.
			// Already-retained block: the retained reference covers the
			// view's lifetime and this transient one is extra.
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				cp := make([]byte, len(sl))
				copy(cp, sl)
				sl = cp
			}
			e.Release()
		}
		return sl, nil
	}
	r.client.cluster.reg.Counter("readahead_misses").Inc()
	return r.client.fetchWithFailover(r.span, "miss", r.blocks[bi], func(dn *DataNode) ([]byte, error) {
		return dn.ReadRange(r.blocks[bi].ID, bo, want)
	})
}

// copyWindow copies data[bo:bo+len(dst)] into dst, clamped to len(data).
func copyWindow(dst, data []byte, bo int64) int {
	if bo >= int64(len(data)) {
		return 0
	}
	return copy(dst, data[bo:])
}

// sliceWindow returns data[bo:bo+want], clamped to len(data).
func sliceWindow(data []byte, bo, want int64) []byte {
	if bo >= int64(len(data)) {
		return nil
	}
	end := bo + want
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[bo:end]
}

// maybePrefetch arms readahead for the block after the one a prospective
// sequential read of [off, off+n) ends in, when that read reaches the
// block's trigger tail.
func (r *Reader) maybePrefetch(off, n int64) {
	if len(r.blocks) < 2 {
		return
	}
	end := off + n
	if end > r.size {
		end = r.size
	}
	if end <= off {
		return
	}
	j := r.blockIndex(end - 1)
	if j+1 >= len(r.blocks) {
		return
	}
	b := r.blocks[j]
	tail := r.starts[j] + b.Length - b.Length/readaheadTriggerDenom
	if end-1 < tail {
		return
	}
	r.prefetch(j + 1)
}

// prefetch warms block bi in the background: into the shared cache when
// enabled (one fill serves every reader), otherwise into the reader-local
// slot cache, evicting slots the consumer has passed so the local cache
// never outgrows current+next.
func (r *Reader) prefetch(bi int) {
	if bc := r.client.cluster.BlockCache(); bc != nil {
		r.prefetchShared(bc, bi)
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if _, ok := r.cache[bi]; ok {
		r.mu.Unlock()
		return
	}
	for k := range r.cache {
		if k < bi-1 {
			delete(r.cache, k)
		}
	}
	if r.cache == nil {
		r.cache = make(map[int]*raEntry)
	}
	e := &raEntry{ready: make(chan struct{})}
	r.cache[bi] = e
	r.mu.Unlock()
	r.client.cluster.reg.Counter("readahead_prefetches").Inc()
	info := r.blocks[bi]
	psp := r.span.StartChild("hdfs.prefetch")
	if psp != nil {
		psp.AnnotateInt("block", int64(info.ID))
	}
	go func() {
		e.data, e.err = r.client.fetchWithFailover(psp, "prefetch", info, func(dn *DataNode) ([]byte, error) {
			return dn.Read(info.ID)
		})
		if e.err != nil {
			psp.SetError(e.err)
		}
		psp.End()
		close(e.ready)
	}()
}

// prefetchShared warms block bi in the shared cache. Residency is checked
// first so repeat triggers on the same block tail cost one lock hop; the
// fill itself is single-flight across all readers.
func (r *Reader) prefetchShared(bc *BlockCache, bi int) {
	info := r.blocks[bi]
	if e, ok := bc.acquire(info.ID); ok {
		e.Release()
		return
	}
	r.client.cluster.reg.Counter("readahead_prefetches").Inc()
	psp := r.span.StartChild("hdfs.prefetch")
	if psp != nil {
		psp.AnnotateInt("block", int64(info.ID))
	}
	go func() {
		e, _, err := bc.GetOrFill(info.ID, func() ([]byte, error) {
			return r.client.fetchWithFailover(psp, "prefetch", info, func(dn *DataNode) ([]byte, error) {
				return dn.Read(info.ID)
			})
		})
		if err != nil {
			psp.SetError(err)
		} else {
			e.Release()
		}
		psp.End()
	}()
}
