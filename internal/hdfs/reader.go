package hdfs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"videocloud/internal/trace"
)

// Reader reads an HDFS file with io.Reader/io.Seeker/io.ReaderAt semantics;
// it backs both sequential consumption (MapReduce splits, the FUSE bridge)
// and the seekable-playback path of the video site (HTTP Range requests).
//
// Sequential Reads get readahead: once a read touches the tail of a block,
// the next block is prefetched in the background into a small per-reader
// cache, so block N+1 transfers while block N is being consumed. Random
// ReadAt windows bypass the readahead trigger and fetch — and
// checksum-verify — only the chunks they overlap, keeping a K-byte read of
// an N-byte block at O(K) cost for any N.
//
// ReadAt is safe for concurrent use; Read and Seek share the position and
// are not.
type Reader struct {
	client *Client
	blocks []BlockInfo
	starts []int64 // starts[i] = file offset of blocks[i]
	size   int64
	pos    int64
	// span, when non-nil (OpenCtx under a sampled trace), parents the
	// hdfs.read_block / hdfs.prefetch spans this reader's fetches emit.
	span *trace.Span

	mu    sync.Mutex
	cache map[int]*raEntry // block index -> readahead slot (≤2 entries)
}

// raEntry is one readahead slot; ready closes once data/err are set.
type raEntry struct {
	ready chan struct{}
	data  []byte
	err   error
}

// readaheadTriggerDenom arms prefetch of the next block when a sequential
// read touches the last 1/readaheadTriggerDenom of the current one: a
// consumer that deep is very likely to continue, while a random player
// window usually isn't, so seeks don't waste whole-block fetches.
const readaheadTriggerDenom = 4

// Size returns the file length.
func (r *Reader) Size() int64 { return r.size }

// Read implements io.Reader. The prefetch is armed before the current
// window is fetched so the next block transfers while this one is served.
func (r *Reader) Read(p []byte) (int, error) {
	r.maybePrefetch(r.pos, int64(len(p)))
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("hdfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("hdfs: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// blockIndex returns the index of the block containing file offset off
// (len(r.blocks) when off is at or past EOF).
func (r *Reader) blockIndex(off int64) int {
	return sort.Search(len(r.blocks), func(i int) bool {
		return r.starts[i]+r.blocks[i].Length > off
	})
}

// ReadAt implements io.ReaderAt, fetching only the block ranges covering
// [off, off+len(p)).
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("hdfs: negative read offset %d", off)
	}
	if off >= r.size {
		return 0, io.EOF
	}
	n := 0
	for bi := r.blockIndex(off); n < len(p) && bi < len(r.blocks); bi++ {
		bo := off + int64(n) - r.starts[bi]
		want := int64(len(p) - n)
		if rem := r.blocks[bi].Length - bo; want > rem {
			want = rem
		}
		chunk, err := r.rangeFromBlock(bi, bo, want)
		n += copy(p[n:], chunk)
		if err != nil {
			return n, err
		}
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// rangeFromBlock serves [bo, bo+want) of block bi: from the readahead
// cache when a prefetched copy exists or is in flight (counted as a hit),
// otherwise straight from a replica, verifying only the checksum chunks
// the window overlaps (counted as a miss).
func (r *Reader) rangeFromBlock(bi int, bo, want int64) ([]byte, error) {
	r.mu.Lock()
	e := r.cache[bi]
	r.mu.Unlock()
	if e != nil {
		<-e.ready
		if e.err == nil {
			r.client.cluster.reg.Counter("readahead_hits").Inc()
			if hsp := r.span.StartChild("hdfs.read_block"); hsp != nil {
				hsp.AnnotateInt("block", int64(r.blocks[bi].ID))
				hsp.Annotate("readahead", "hit")
				hsp.End()
			}
			end := bo + want
			if end > int64(len(e.data)) {
				end = int64(len(e.data))
			}
			if bo > end {
				bo = end
			}
			return e.data[bo:end], nil
		}
		// The prefetch failed (e.g. every replica was down when it ran);
		// drop the slot and retry synchronously, which re-ranks replicas
		// as they are now.
		r.mu.Lock()
		if r.cache[bi] == e {
			delete(r.cache, bi)
		}
		r.mu.Unlock()
	}
	r.client.cluster.reg.Counter("readahead_misses").Inc()
	return r.client.fetchWithFailover(r.span, "miss", r.blocks[bi], func(dn *DataNode) ([]byte, error) {
		return dn.ReadRange(r.blocks[bi].ID, bo, want)
	})
}

// maybePrefetch arms readahead for the block after the one a prospective
// sequential read of [off, off+n) ends in, when that read reaches the
// block's trigger tail.
func (r *Reader) maybePrefetch(off, n int64) {
	if len(r.blocks) < 2 {
		return
	}
	end := off + n
	if end > r.size {
		end = r.size
	}
	if end <= off {
		return
	}
	j := r.blockIndex(end - 1)
	if j+1 >= len(r.blocks) {
		return
	}
	b := r.blocks[j]
	tail := r.starts[j] + b.Length - b.Length/readaheadTriggerDenom
	if end-1 < tail {
		return
	}
	r.prefetch(j + 1)
}

// prefetch starts a background whole-block fetch of block bi into the
// reader's cache unless one is already there; blocks the consumer has
// passed are evicted so the cache never outgrows current+next.
func (r *Reader) prefetch(bi int) {
	r.mu.Lock()
	if _, ok := r.cache[bi]; ok {
		r.mu.Unlock()
		return
	}
	for k := range r.cache {
		if k < bi-1 {
			delete(r.cache, k)
		}
	}
	e := &raEntry{ready: make(chan struct{})}
	r.cache[bi] = e
	r.mu.Unlock()
	r.client.cluster.reg.Counter("readahead_prefetches").Inc()
	info := r.blocks[bi]
	psp := r.span.StartChild("hdfs.prefetch")
	if psp != nil {
		psp.AnnotateInt("block", int64(info.ID))
	}
	go func() {
		e.data, e.err = r.client.fetchWithFailover(psp, "prefetch", info, func(dn *DataNode) ([]byte, error) {
			return dn.Read(info.ID)
		})
		if e.err != nil {
			psp.SetError(e.err)
		}
		psp.End()
		close(e.ready)
	}()
}
