package image

import (
	"bytes"
	"testing"
)

// BenchmarkCOWRead measures the backing-chain read path (clone of a clone).
func BenchmarkCOWRead(b *testing.B) {
	c := NewCatalog()
	c.Register("base", 64*BlockSize, 1)
	c.Clone("base", "mid")
	mid, _ := c.Get("mid")
	mid.WriteBlock(3, bytes.Repeat([]byte{1}, BlockSize))
	leaf, _ := c.Clone("mid", "leaf")
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := leaf.ReadBlock(int64(i % 64)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOWWrite measures local-layer block writes.
func BenchmarkCOWWrite(b *testing.B) {
	c := NewCatalog()
	c.Register("base", 64*BlockSize, 1)
	clone, _ := c.Clone("base", "c")
	data := bytes.Repeat([]byte{2}, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := clone.WriteBlock(int64(i%64), data); err != nil {
			b.Fatal(err)
		}
	}
}
