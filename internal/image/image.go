// Package image implements the VM disk-image repository: a catalog of base
// images plus qcow2-style copy-on-write clones. The paper's deployment runs
// "multiple virtual machines using the same image" (§II-C); COW is what makes
// that cheap, and experiment E6b measures COW versus full-clone provisioning.
//
// Images hold real (deterministic, seed-generated) block content so the COW
// read path — local block if written, else fall through the backing chain —
// is exercised by data, not assumed.
package image

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// BlockSize is the image block granularity in bytes (qcow2's default
// cluster size is 64 KiB).
const BlockSize = 64 * 1024

// Errors returned by the catalog.
var (
	ErrNotFound  = errors.New("image: not found")
	ErrDuplicate = errors.New("image: name already in use")
	ErrInUse     = errors.New("image: has dependent clones")
)

// Format distinguishes full (raw) images from copy-on-write clones.
type Format int

// Image formats.
const (
	Raw Format = iota
	COW
)

// String implements fmt.Stringer.
func (f Format) String() string {
	if f == Raw {
		return "raw"
	}
	return "cow"
}

// Image is a disk image. Raw images generate their pristine content
// deterministically from their seed; COW images hold only locally written
// blocks and delegate the rest to their backing image.
type Image struct {
	Name   string
	Format Format
	Size   int64 // bytes; always a multiple of BlockSize

	mu      sync.RWMutex
	seed    uint64
	backing *Image
	written map[int64][]byte // block index -> block content
	clones  int
}

// Blocks returns the number of blocks in the image.
func (img *Image) Blocks() int64 { return img.Size / BlockSize }

// Backing returns the backing image for COW clones, nil for raw images.
func (img *Image) Backing() *Image {
	img.mu.RLock()
	defer img.mu.RUnlock()
	return img.backing
}

// AllocatedBytes returns the bytes physically stored by this image alone:
// the full size for raw images, only locally written blocks for clones.
// This is what provisioning has to copy or create.
func (img *Image) AllocatedBytes() int64 {
	img.mu.RLock()
	defer img.mu.RUnlock()
	if img.Format == Raw {
		return img.Size
	}
	return int64(len(img.written)) * BlockSize
}

// pristine fills dst with the deterministic base content of block idx.
func (img *Image) pristine(idx int64, dst []byte) {
	// xorshift64* keyed by (seed, block): stable, cheap, and distinct per
	// block so tests can detect cross-block mixups.
	x := img.seed ^ uint64(idx+1)*0x2545f4914f6cdd1d
	for i := 0; i < len(dst); i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := x
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = byte(v)
			v >>= 8
		}
	}
}

// ReadBlock returns the content of block idx, following the backing chain
// for blocks this image has not written locally.
func (img *Image) ReadBlock(idx int64) ([]byte, error) {
	if idx < 0 || idx >= img.Blocks() {
		return nil, fmt.Errorf("image: block %d out of range [0,%d)", idx, img.Blocks())
	}
	img.mu.RLock()
	if b, ok := img.written[idx]; ok {
		out := make([]byte, BlockSize)
		copy(out, b)
		img.mu.RUnlock()
		return out, nil
	}
	backing := img.backing
	img.mu.RUnlock()
	if backing != nil {
		return backing.ReadBlock(idx)
	}
	out := make([]byte, BlockSize)
	img.pristine(idx, out)
	return out, nil
}

// WriteBlock stores new content for block idx in this image's local layer.
// data must be exactly BlockSize bytes.
func (img *Image) WriteBlock(idx int64, data []byte) error {
	if idx < 0 || idx >= img.Blocks() {
		return fmt.Errorf("image: block %d out of range [0,%d)", idx, img.Blocks())
	}
	if len(data) != BlockSize {
		return fmt.Errorf("image: write of %d bytes, want %d", len(data), BlockSize)
	}
	cp := make([]byte, BlockSize)
	copy(cp, data)
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.written == nil {
		img.written = make(map[int64][]byte)
	}
	img.written[idx] = cp
	return nil
}

// Catalog is the image repository (OpenNebula's image datastore; OpenStack
// calls the equivalent Glance).
type Catalog struct {
	mu     sync.Mutex
	images map[string]*Image
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{images: make(map[string]*Image)}
}

// Register creates a raw base image of size bytes (rounded up to a whole
// block) whose content derives from seed.
func (c *Catalog) Register(name string, size int64, seed uint64) (*Image, error) {
	if name == "" {
		return nil, fmt.Errorf("image: empty name")
	}
	if size <= 0 {
		return nil, fmt.Errorf("image: non-positive size %d", size)
	}
	blocks := (size + BlockSize - 1) / BlockSize
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.images[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	img := &Image{Name: name, Format: Raw, Size: blocks * BlockSize, seed: seed}
	c.images[name] = img
	return img, nil
}

// Clone creates a copy-on-write child of base. Provisioning cost is
// metadata only — AllocatedBytes of the clone starts at zero.
func (c *Catalog) Clone(base, name string) (*Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	parent, ok := c.images[base]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, base)
	}
	if _, dup := c.images[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	img := &Image{Name: name, Format: COW, Size: parent.Size, backing: parent}
	parent.mu.Lock()
	parent.clones++
	parent.mu.Unlock()
	c.images[name] = img
	return img, nil
}

// FullClone creates an independent raw copy of base, materialising every
// block (including COW-inherited ones). It is the expensive provisioning
// path E6b compares against Clone.
func (c *Catalog) FullClone(base, name string) (*Image, error) {
	c.mu.Lock()
	parent, ok := c.images[base]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, base)
	}
	if _, dup := c.images[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	img := &Image{Name: name, Format: Raw, Size: parent.Size, seed: parent.seed}
	c.images[name] = img
	c.mu.Unlock()

	// Materialise blocks that differ from the seed-pristine content
	// anywhere in parent's chain.
	for idx := int64(0); idx < parent.Blocks(); idx++ {
		b, err := parent.ReadBlock(idx)
		if err != nil {
			return nil, err
		}
		want := make([]byte, BlockSize)
		img.pristine(idx, want)
		if !equalBlocks(b, want) {
			if err := img.WriteBlock(idx, b); err != nil {
				return nil, err
			}
		}
	}
	return img, nil
}

func equalBlocks(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get returns the named image.
func (c *Catalog) Get(name string) (*Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img, ok := c.images[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return img, nil
}

// Delete removes an image. Images with live clones cannot be removed.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	img, ok := c.images[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	img.mu.RLock()
	clones := img.clones
	backing := img.backing
	img.mu.RUnlock()
	if clones > 0 {
		return fmt.Errorf("%w: %q has %d clones", ErrInUse, name, clones)
	}
	if backing != nil {
		backing.mu.Lock()
		backing.clones--
		backing.mu.Unlock()
	}
	delete(c.images, name)
	return nil
}

// List returns all image names, sorted.
func (c *Catalog) List() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.images))
	for name := range c.images {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
