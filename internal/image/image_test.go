package image

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRegisterAndRead(t *testing.T) {
	c := NewCatalog()
	img, err := c.Register("ubuntu-10.04", 10*BlockSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	if img.Blocks() != 10 || img.Format != Raw {
		t.Fatalf("blocks=%d format=%v", img.Blocks(), img.Format)
	}
	b0, err := img.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := img.ReadBlock(1)
	if bytes.Equal(b0, b1) {
		t.Fatal("distinct blocks have identical pristine content")
	}
	// Deterministic.
	again, _ := img.ReadBlock(0)
	if !bytes.Equal(b0, again) {
		t.Fatal("pristine content not deterministic")
	}
}

func TestRegisterRoundsUpToBlock(t *testing.T) {
	c := NewCatalog()
	img, _ := c.Register("odd", BlockSize+1, 1)
	if img.Size != 2*BlockSize {
		t.Fatalf("Size = %d", img.Size)
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Register("", BlockSize, 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.Register("x", 0, 1); err == nil {
		t.Fatal("zero size accepted")
	}
	c.Register("dup", BlockSize, 1)
	if _, err := c.Register("dup", BlockSize, 1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := NewCatalog()
	img, _ := c.Register("base", 4*BlockSize, 7)
	data := bytes.Repeat([]byte{0xAB}, BlockSize)
	if err := img.WriteBlock(2, data); err != nil {
		t.Fatal(err)
	}
	got, _ := img.ReadBlock(2)
	if !bytes.Equal(got, data) {
		t.Fatal("read did not return last write")
	}
	// Returned slice is a copy: mutating it must not corrupt the image.
	got[0] = 0xFF
	got2, _ := img.ReadBlock(2)
	if got2[0] != 0xAB {
		t.Fatal("ReadBlock aliases internal storage")
	}
	// Writing also copies the caller's slice.
	data[0] = 0xEE
	got3, _ := img.ReadBlock(2)
	if got3[0] != 0xAB {
		t.Fatal("WriteBlock aliases caller slice")
	}
}

func TestWriteValidation(t *testing.T) {
	c := NewCatalog()
	img, _ := c.Register("base", 2*BlockSize, 7)
	if err := img.WriteBlock(5, make([]byte, BlockSize)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := img.WriteBlock(0, make([]byte, 10)); err == nil {
		t.Fatal("short write accepted")
	}
	if _, err := img.ReadBlock(-1); err == nil {
		t.Fatal("negative read accepted")
	}
}

func TestCOWCloneSemantics(t *testing.T) {
	c := NewCatalog()
	base, _ := c.Register("base", 8*BlockSize, 99)
	baseData := bytes.Repeat([]byte{0x01}, BlockSize)
	base.WriteBlock(3, baseData)

	clone, err := c.Clone("base", "vm-disk-1")
	if err != nil {
		t.Fatal(err)
	}
	if clone.Format != COW || clone.Backing() != base {
		t.Fatal("clone not COW-backed")
	}
	if clone.AllocatedBytes() != 0 {
		t.Fatalf("fresh clone allocates %d bytes", clone.AllocatedBytes())
	}
	// Reads fall through to the backing image, including its writes.
	got, _ := clone.ReadBlock(3)
	if !bytes.Equal(got, baseData) {
		t.Fatal("clone does not see backing write")
	}
	p0, _ := base.ReadBlock(0)
	g0, _ := clone.ReadBlock(0)
	if !bytes.Equal(p0, g0) {
		t.Fatal("clone pristine read differs from base")
	}
	// Clone write does not leak into base.
	mine := bytes.Repeat([]byte{0x77}, BlockSize)
	clone.WriteBlock(3, mine)
	got, _ = clone.ReadBlock(3)
	if !bytes.Equal(got, mine) {
		t.Fatal("clone write not visible in clone")
	}
	got, _ = base.ReadBlock(3)
	if !bytes.Equal(got, baseData) {
		t.Fatal("clone write leaked into base")
	}
	if clone.AllocatedBytes() != BlockSize {
		t.Fatalf("clone allocates %d after one write", clone.AllocatedBytes())
	}
	// Base write after clone IS visible through unwritten clone blocks
	// (qcow2 backing semantics).
	newBase := bytes.Repeat([]byte{0x05}, BlockSize)
	base.WriteBlock(7, newBase)
	got, _ = clone.ReadBlock(7)
	if !bytes.Equal(got, newBase) {
		t.Fatal("clone does not read through to backing for unwritten block")
	}
}

func TestCloneChain(t *testing.T) {
	c := NewCatalog()
	c.Register("base", 4*BlockSize, 5)
	c.Clone("base", "mid")
	mid, _ := c.Get("mid")
	data := bytes.Repeat([]byte{0x42}, BlockSize)
	mid.WriteBlock(1, data)
	leaf, err := c.Clone("mid", "leaf")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := leaf.ReadBlock(1)
	if !bytes.Equal(got, data) {
		t.Fatal("two-level chain read failed")
	}
}

func TestFullCloneIndependence(t *testing.T) {
	c := NewCatalog()
	base, _ := c.Register("base", 6*BlockSize, 11)
	custom := bytes.Repeat([]byte{0x33}, BlockSize)
	base.WriteBlock(2, custom)
	full, err := c.FullClone("base", "full")
	if err != nil {
		t.Fatal(err)
	}
	if full.Format != Raw || full.Backing() != nil {
		t.Fatal("full clone still COW")
	}
	got, _ := full.ReadBlock(2)
	if !bytes.Equal(got, custom) {
		t.Fatal("full clone missing base's written block")
	}
	// Fully independent: base writes after cloning are invisible.
	base.WriteBlock(4, custom)
	got, _ = full.ReadBlock(4)
	if bytes.Equal(got, custom) {
		t.Fatal("full clone sees post-clone base write")
	}
	// Full clone of a COW chain flattens it.
	c.Clone("base", "cow")
	cow, _ := c.Get("cow")
	cow.WriteBlock(5, custom)
	flat, err := c.FullClone("cow", "flat")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = flat.ReadBlock(5)
	if !bytes.Equal(got, custom) {
		t.Fatal("flattened clone missing chain write")
	}
}

func TestProvisioningCostAsymmetry(t *testing.T) {
	c := NewCatalog()
	base, _ := c.Register("base", 100*BlockSize, 1)
	base.WriteBlock(0, bytes.Repeat([]byte{1}, BlockSize))
	cow, _ := c.Clone("base", "cow")
	full, _ := c.FullClone("base", "full")
	if cow.AllocatedBytes() != 0 {
		t.Fatalf("COW clone allocated %d", cow.AllocatedBytes())
	}
	if full.AllocatedBytes() == 0 {
		t.Fatal("full clone allocated nothing despite modified base")
	}
}

func TestDeleteRules(t *testing.T) {
	c := NewCatalog()
	c.Register("base", BlockSize, 1)
	c.Clone("base", "child")
	if err := c.Delete("base"); !errors.Is(err, ErrInUse) {
		t.Fatalf("deleting backed image: %v", err)
	}
	if err := c.Delete("child"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("base"); err != nil {
		t.Fatalf("delete after last clone removed: %v", err)
	}
	if err := c.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCloneErrors(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Clone("nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	c.Register("a", BlockSize, 1)
	c.Register("b", BlockSize, 1)
	if _, err := c.Clone("a", "b"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.FullClone("nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestList(t *testing.T) {
	c := NewCatalog()
	c.Register("zeta", BlockSize, 1)
	c.Register("alpha", BlockSize, 1)
	got := c.List()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("List = %v", got)
	}
}

// Property: for any write set applied to a clone, every block reads back as
// either the clone's last write or the base content — never a mix.
func TestPropertyCOWReadYourWrites(t *testing.T) {
	f := func(writes []uint8) bool {
		c := NewCatalog()
		base, _ := c.Register("base", 16*BlockSize, 3)
		clone, _ := c.Clone("base", "c")
		last := map[int64]byte{}
		for i, w := range writes {
			idx := int64(w % 16)
			val := byte(i + 1)
			clone.WriteBlock(idx, bytes.Repeat([]byte{val}, BlockSize))
			last[idx] = val
		}
		for idx := int64(0); idx < 16; idx++ {
			got, err := clone.ReadBlock(idx)
			if err != nil {
				return false
			}
			if v, ok := last[idx]; ok {
				if !bytes.Equal(got, bytes.Repeat([]byte{v}, BlockSize)) {
					return false
				}
			} else {
				want, _ := base.ReadBlock(idx)
				if !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
