// Package ingress is the fleet's load-balancing frontend: one HTTP handler
// fanning requests out over M web.Site replicas.
//
// Two routing policies cover the two traffic shapes the paper's serving tier
// sees:
//
//   - Video-affine routes (/watch/{id}, /stream/{id}) are placed by jump
//     consistent hash on the video id, so all Range requests for one video
//     land on the replica whose BlockCache already holds its blocks. A flash
//     crowd on one video hits one warm cache instead of cold-missing on M.
//   - Everything else (home, search, login, upload, admin) goes to the
//     replica with the fewest requests currently in flight, which tracks the
//     instantaneous load imbalance better than round-robin under mixed
//     request costs.
//
// The routing decision is allocation-free: the video id is parsed with a
// manual digit walk (no strconv, no substring), the policy consults only
// pre-sized atomic counters, and per-backend metrics are pre-resolved at
// construction. tier-1's alloccheck gates this at <= 1 alloc/op.
package ingress

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"videocloud/internal/metrics"
)

// Balancer routes requests across a fixed set of backend replicas.
type Balancer struct {
	backends []http.Handler
	inflight []atomic.Int64
	// served[i] counts requests completed by backend i (pre-resolved
	// metrics.Counter so the hot path never touches the registry map).
	served []*metrics.Counter
	// affine counts requests routed by video affinity; spread counts
	// least-in-flight routes. Both may be nil when no registry is set.
	affine *metrics.Counter
	spread *metrics.Counter
}

// New builds a Balancer over the given replicas. Panics if backends is empty:
// an ingress with nothing behind it is a construction bug, not a runtime
// condition.
func New(backends ...http.Handler) *Balancer {
	if len(backends) == 0 {
		panic("ingress: no backends")
	}
	return &Balancer{
		backends: backends,
		inflight: make([]atomic.Int64, len(backends)),
		served:   make([]*metrics.Counter, len(backends)),
	}
}

// SetMetrics pre-resolves the balancer's counters from reg. Call before
// serving traffic; not safe concurrently with ServeHTTP.
func (b *Balancer) SetMetrics(reg *metrics.Registry) {
	for i := range b.served {
		b.served[i] = reg.Counter(fmt.Sprintf("ingress_backend%d_requests", i))
	}
	b.affine = reg.Counter("ingress_affine_routes")
	b.spread = reg.Counter("ingress_spread_routes")
}

// Backends returns the number of replicas behind the balancer.
func (b *Balancer) Backends() int { return len(b.backends) }

// jumpHash is the Lamping-Veach jump consistent hash: maps key uniformly
// onto [0, n) such that growing n from m to m+1 moves only ~1/(m+1) of keys.
// Adding a frontend to the fleet re-homes only its fair share of videos'
// warm caches instead of reshuffling everything.
func jumpHash(key uint64, n int) int {
	var bucket int64 = -1
	var j int64
	for j < int64(n) {
		bucket = j
		key = key*2862933555777941757 + 1
		j = int64(float64(bucket+1) * (float64(1<<31) / float64((key>>33)+1)))
	}
	return int(bucket)
}

// videoID extracts the numeric id from /watch/{id}, /stream/{id},
// /playlist/{id}[/...], or /segment/{id}/... paths without allocating. The
// segmented-delivery routes must be video-affine for the same reason
// /stream is — all of one title's segment requests should land on the
// replica whose edge cache holds them — so the digit walk stops at the
// first '/' instead of requiring digits to the end. ok is false for every
// other path (including malformed or overflowing ids, which then fall
// through to least-in-flight and get the backend's own 404/400 handling).
func videoID(path string) (id uint64, ok bool) {
	var rest string
	switch {
	case len(path) > 7 && path[:7] == "/watch/":
		rest = path[7:]
	case len(path) > 8 && path[:8] == "/stream/":
		rest = path[8:]
	case len(path) > 10 && path[:10] == "/playlist/":
		rest = path[10:]
	case len(path) > 9 && path[:9] == "/segment/":
		rest = path[9:]
	default:
		return 0, false
	}
	digits := 0
	for i := 0; i < len(rest); i++ {
		d := rest[i]
		if d == '/' {
			break
		}
		if d < '0' || d > '9' {
			return 0, false
		}
		if digits++; digits > 18 { // 18 digits always fit in uint64
			return 0, false
		}
		id = id*10 + uint64(d-'0')
	}
	if digits == 0 {
		return 0, false
	}
	return id, true
}

// route picks the backend index for a request path: video affinity when the
// path carries a video id, least-in-flight otherwise. Exposed internally so
// the alloc gate can measure the decision in isolation.
func (b *Balancer) route(path string) (idx int, affine bool) {
	if id, ok := videoID(path); ok {
		return jumpHash(id, len(b.backends)), true
	}
	best, min := 0, b.inflight[0].Load()
	for i := 1; i < len(b.inflight); i++ {
		if n := b.inflight[i].Load(); n < min {
			best, min = i, n
		}
	}
	return best, false
}

// ServeHTTP routes the request to its backend, tracking in-flight load.
func (b *Balancer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	idx, affine := b.route(r.URL.Path)
	if affine {
		if b.affine != nil {
			b.affine.Inc()
		}
	} else if b.spread != nil {
		b.spread.Inc()
	}
	b.inflight[idx].Add(1)
	b.backends[idx].ServeHTTP(w, r)
	b.inflight[idx].Add(-1)
	if c := b.served[idx]; c != nil {
		c.Inc()
	}
}

// Stats reports per-backend completed-request counts (zero when SetMetrics
// was never called). Index i corresponds to backend i.
func (b *Balancer) Stats() []int64 {
	out := make([]int64, len(b.backends))
	for i, c := range b.served {
		if c != nil {
			out[i] = c.Value()
		}
	}
	return out
}
