package ingress

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"videocloud/internal/metrics"
)

// tagHandler records which backend served each request.
type tagHandler struct {
	id    int
	mu    sync.Mutex
	paths []string
	delay time.Duration
}

func (h *tagHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	h.mu.Lock()
	h.paths = append(h.paths, r.URL.Path)
	h.mu.Unlock()
	fmt.Fprintf(w, "backend-%d", h.id)
}

func newTestBalancer(n int) (*Balancer, []*tagHandler) {
	hs := make([]*tagHandler, n)
	backends := make([]http.Handler, n)
	for i := range hs {
		hs[i] = &tagHandler{id: i}
		backends[i] = hs[i]
	}
	return New(backends...), hs
}

func TestVideoID(t *testing.T) {
	cases := []struct {
		path string
		id   uint64
		ok   bool
	}{
		{"/watch/7", 7, true},
		{"/stream/123456", 123456, true},
		{"/watch/", 0, false},
		{"/stream/", 0, false},
		{"/watch/7x", 0, false},
		{"/watch/-1", 0, false},
		{"/stream/9999999999999999999", 0, false}, // 19 digits: rejected
		{"/", 0, false},
		{"/search", 0, false},
		{"/watchlist/7", 0, false},
		// Segmented-delivery routes carry the id before a sub-path.
		{"/playlist/42", 42, true},
		{"/playlist/42/720p", 42, true},
		{"/segment/42/720p/3", 42, true},
		{"/segment/9001/360p/0", 9001, true},
		{"/playlist/", 0, false},
		{"/segment/", 0, false},
		{"/playlist//720p", 0, false},
		{"/segment/x/720p/0", 0, false},
		{"/segment/9999999999999999999/720p/0", 0, false}, // 19 digits
	}
	for _, c := range cases {
		id, ok := videoID(c.path)
		if id != c.id || ok != c.ok {
			t.Errorf("videoID(%q) = (%d, %v), want (%d, %v)", c.path, id, ok, c.id, c.ok)
		}
	}
}

// TestVideoAffinity: every request for one video must land on the same
// backend, and placement must be identical across balancer instances
// (restart determinism — the warm cache survives an ingress bounce).
func TestVideoAffinity(t *testing.T) {
	b, hs := newTestBalancer(4)
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest("GET", "/stream/42", nil))
	}
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest("GET", "/watch/42", nil))
	}
	nonEmpty := 0
	for _, h := range hs {
		if len(h.paths) > 0 {
			nonEmpty++
			if len(h.paths) != 30 {
				t.Fatalf("affine backend served %d of 30 requests", len(h.paths))
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("video 42 spread across %d backends, want 1", nonEmpty)
	}

	b2, _ := newTestBalancer(4)
	for id := uint64(1); id <= 200; id++ {
		p := fmt.Sprintf("/stream/%d", id)
		i1, a1 := b.route(p)
		i2, a2 := b2.route(p)
		if !a1 || !a2 || i1 != i2 {
			t.Fatalf("video %d routed to %d/%d (affine %v/%v); placement must be deterministic", id, i1, i2, a1, a2)
		}
	}
}

// TestJumpHashProperties: uniform-ish spread, and growing the fleet moves
// only a fraction of keys (the consistent-hash contract that keeps most
// warm caches warm through a scale-out).
func TestJumpHashProperties(t *testing.T) {
	const keys = 10000
	counts := make([]int, 8)
	moved := 0
	for k := uint64(0); k < keys; k++ {
		b8 := jumpHash(k, 8)
		counts[b8]++
		if jumpHash(k, 9) != b8 {
			moved++
		}
	}
	for i, c := range counts {
		if c < keys/8/2 || c > keys/8*2 {
			t.Fatalf("bucket %d holds %d of %d keys; want near %d", i, c, keys, keys/8)
		}
	}
	// Ideal move fraction 8→9 is 1/9 ≈ 11%; allow slack but catch
	// rehash-everything regressions.
	if moved > keys/5 {
		t.Fatalf("%d of %d keys moved growing 8→9 backends; want ~%d", moved, keys, keys/9)
	}
	if moved == 0 {
		t.Fatal("no keys moved growing 8→9 backends; hash ignores n")
	}
}

// TestFleetGrowthRehoming pins the router-level consequence of jump
// consistent hashing that the scaling work relies on: growing the fleet
// from M to M+1 frontends re-homes at most ~1/(M+1) of video ids (plus
// statistical slack), and every id that does move lands on the NEW
// frontend — an existing replica never inherits another's videos, so no
// warm cache is invalidated except by the fair share the newcomer takes.
func TestFleetGrowthRehoming(t *testing.T) {
	const ids = 20000
	for _, m := range []int{2, 4, 8} {
		small, _ := newTestBalancer(m)
		grown, _ := newTestBalancer(m + 1)
		moved := 0
		for id := 0; id < ids; id++ {
			// Route realistic segmented-delivery paths, not bare keys: the
			// digit walk and the hash must agree end to end.
			p := fmt.Sprintf("/segment/%d/720p/3", id)
			before, a1 := small.route(p)
			after, a2 := grown.route(p)
			if !a1 || !a2 {
				t.Fatalf("path %q not video-affine", p)
			}
			if before != after {
				moved++
				if after != m {
					t.Fatalf("id %d moved %d→%d growing %d→%d frontends; movers must land on the new frontend %d",
						id, before, after, m, m+1, m)
				}
			}
		}
		// ~1/(M+1) of ids move; ε = 25% relative slack over the ideal.
		limit := ids/(m+1) + ids/(m+1)/4
		if moved > limit {
			t.Fatalf("growing %d→%d frontends moved %d of %d ids; want <= ~%d",
				m, m+1, moved, ids, limit)
		}
		if moved == 0 {
			t.Fatalf("growing %d→%d frontends moved nothing; new frontend gets no traffic", m, m+1)
		}
	}
}

// TestLeastInFlight: with one backend stalled mid-request, non-affine
// traffic must drain to the idle backends.
func TestLeastInFlight(t *testing.T) {
	b, hs := newTestBalancer(3)
	hs[0].delay = 200 * time.Millisecond

	// Occupy backend 0 with one slow request.
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q=x", nil))
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the slow request enter ServeHTTP

	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	}
	wg.Wait()

	hs[0].mu.Lock()
	slow := len(hs[0].paths)
	hs[0].mu.Unlock()
	if slow != 1 {
		t.Fatalf("stalled backend received %d requests, want only the initial slow one", slow)
	}
	if got := len(hs[1].paths) + len(hs[2].paths); got != 10 {
		t.Fatalf("idle backends served %d of 10", got)
	}
}

func TestStatsAndMetrics(t *testing.T) {
	b, _ := newTestBalancer(2)
	reg := metrics.NewRegistry()
	b.SetMetrics(reg)
	for i := 0; i < 6; i++ {
		rec := httptest.NewRecorder()
		b.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/stream/%d", i), nil))
	}
	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))

	stats := b.Stats()
	var total int64
	for _, n := range stats {
		total += n
	}
	if total != 7 {
		t.Fatalf("Stats total %d, want 7 (%v)", total, stats)
	}
	if got := reg.Counter("ingress_affine_routes").Value(); got != 6 {
		t.Fatalf("affine routes %d, want 6", got)
	}
	if got := reg.Counter("ingress_spread_routes").Value(); got != 1 {
		t.Fatalf("spread routes %d, want 1", got)
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New() with no backends must panic")
		}
	}()
	New()
}

// TestAllocRoute is the tier-1 alloccheck gate for the ingress hot path:
// the routing decision (id parse + policy pick) must not allocate.
func TestAllocRoute(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	b, _ := newTestBalancer(8)
	paths := []string{"/stream/123456", "/watch/42", "/", "/search?q=cats"}
	for _, p := range paths {
		p := p
		got := testing.AllocsPerRun(100, func() {
			b.route(p)
		})
		if got > 1 {
			t.Fatalf("route(%q) allocates %.1f times per op, want <= 1", p, got)
		}
	}
}
