package mapred

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// checkCounts verifies the job output matches the true word counts.
func checkCounts(t *testing.T, res *JobResult, want map[string]int) {
	t.Helper()
	got := map[string]int{}
	for _, kv := range res.Output {
		n, _ := strconv.Atoi(kv.Value)
		got[kv.Key] = n
	}
	if len(got) != len(want) {
		t.Fatalf("keys = %d, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], n)
		}
	}
}

// Transient task crashes (first attempt of every map) must be retried and
// leave the result untouched.
func TestTaskRetrySurvivesTransientFaults(t *testing.T) {
	c, e := rig(t, 4, Config{
		TrackerMaxFailures: 1000, // faults here are not the trackers' fault
		TaskFaultHook: func(phase, tracker string, taskID, attempt int) error {
			if phase == "map" && attempt == 0 {
				return errors.New("injected crash")
			}
			return nil
		},
	})
	want := corpus(t, c, "/in/a.txt", 2000)
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res, want)
	if res.FailedAttempts != len(res.MapTasks) {
		t.Fatalf("FailedAttempts = %d, map tasks = %d", res.FailedAttempts, len(res.MapTasks))
	}
}

// A task that fails every attempt must abort the job with ErrTaskFailed once
// MaxTaskAttempts is spent — not loop forever.
func TestTaskAttemptsExhausted(t *testing.T) {
	c, e := rig(t, 3, Config{
		MaxTaskAttempts:    3,
		TrackerMaxFailures: 1000,
		TaskFaultHook: func(phase, tracker string, taskID, attempt int) error {
			return errors.New("poison split")
		},
	})
	corpus(t, c, "/in/a.txt", 200)
	_, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
}

// A tracker whose attempts keep failing must be blacklisted; the job then
// completes on the remaining trackers.
func TestTrackerBlacklisted(t *testing.T) {
	c, e := rig(t, 4, Config{
		TrackerMaxFailures: 2,
		MaxTaskAttempts:    6,
		TaskFaultHook: func(phase, tracker string, taskID, attempt int) error {
			if tracker == "dn0" {
				return errors.New("flaky node")
			}
			return nil
		},
	})
	want := corpus(t, c, "/in/a.txt", 3000)
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, "/out"))
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res, want)
	if len(res.BlacklistedTrackers) != 1 || res.BlacklistedTrackers[0] != "dn0" {
		t.Fatalf("BlacklistedTrackers = %v", res.BlacklistedTrackers)
	}
	for _, ts := range res.MapTasks {
		if ts.Tracker == "dn0" {
			t.Fatalf("task %d completed on blacklisted tracker", ts.ID)
		}
	}
	for _, ts := range res.ReduceTasks {
		if ts.Tracker == "dn0" {
			t.Fatalf("reduce %d ran on blacklisted tracker", ts.ID)
		}
	}
}

// A tracker that dies mid-job strands its completed map output; those maps
// must be re-run elsewhere and the result stay exact.
func TestDeadTrackerStrandsCompletedMaps(t *testing.T) {
	// Kill dn1 when the hook observes its second map attempt: by then the
	// first attempt has completed on it, so stranded output exists.
	var dn1Dead bool
	dn1Attempts := 0
	cfg := Config{
		TrackerAlive: func(tr string) bool { return !(tr == "dn1" && dn1Dead) },
		TaskFaultHook: func(phase, tracker string, taskID, attempt int) error {
			// Observe progress only; never inject a failure.
			if phase == "map" && tracker == "dn1" {
				dn1Attempts++
				if dn1Attempts == 2 {
					dn1Dead = true
				}
			}
			return nil
		},
	}
	c, e := rig(t, 4, cfg)
	want := corpus(t, c, "/in/a.txt", 4000)
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res, want)
	if len(res.LostTrackers) != 1 || res.LostTrackers[0] != "dn1" {
		t.Fatalf("LostTrackers = %v", res.LostTrackers)
	}
	for _, ts := range res.MapTasks {
		if ts.Tracker == "dn1" {
			t.Fatal("a surviving map stat points at the dead tracker")
		}
	}
	for _, ts := range res.ReduceTasks {
		if ts.Tracker == "dn1" {
			t.Fatal("a reduce ran on the dead tracker")
		}
	}
}

// Reduce attempts are retried like map attempts.
func TestReduceRetry(t *testing.T) {
	c, e := rig(t, 3, Config{
		TrackerMaxFailures: 1000,
		TaskFaultHook: func(phase, tracker string, taskID, attempt int) error {
			if phase == "reduce" && attempt == 0 {
				return errors.New("reduce crash")
			}
			return nil
		},
	})
	want := corpus(t, c, "/in/a.txt", 1000)
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, res, want)
	if res.FailedAttempts != len(res.ReduceTasks) {
		t.Fatalf("FailedAttempts = %d, reduce tasks = %d", res.FailedAttempts, len(res.ReduceTasks))
	}
}

// With every tracker gone the job must fail fast with a typed error.
func TestNoLiveTrackers(t *testing.T) {
	c, e := rig(t, 3, Config{
		TrackerAlive: func(string) bool { return false },
	})
	corpus(t, c, "/in/a.txt", 100)
	_, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if !errors.Is(err, ErrNoLiveTrackers) {
		t.Fatalf("err = %v, want ErrNoLiveTrackers", err)
	}
}

// The rerun bookkeeping must be reflected in MapTasksRerun, and the part
// files written after recovery must contain the full result.
func TestStrandedRerunWritesCorrectPartFiles(t *testing.T) {
	var dead bool
	dn2Attempts := 0
	cfg := Config{
		TrackerAlive: func(tr string) bool { return !(tr == "dn2" && dead) },
		TaskFaultHook: func(phase, tracker string, taskID, attempt int) error {
			if phase == "map" && tracker == "dn2" {
				dn2Attempts++
				if dn2Attempts == 2 {
					dead = true
				}
			}
			return nil
		},
	}
	c, e := rig(t, 4, cfg)
	want := corpus(t, c, "/in/a.txt", 3000)
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, "/out"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasksRerun == 0 {
		t.Fatal("expected stranded maps to be re-run")
	}
	var all strings.Builder
	for _, f := range res.OutputFiles {
		data, rerr := c.Client("").ReadFile(f)
		if rerr != nil {
			t.Fatal(rerr)
		}
		all.Write(data)
	}
	for k, n := range want {
		line := k + "\t" + strconv.Itoa(n)
		if !strings.Contains(all.String(), line) {
			t.Fatalf("part files missing %q", line)
		}
	}
}
