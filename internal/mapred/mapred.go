// Package mapred is the Hadoop MapReduce stand-in of the paper's §III-B and
// Figure 12: a JobTracker decomposes a job over HDFS blocks into map tasks,
// TaskTrackers (co-located with DataNodes) execute them with data-locality
// preference — "each node reads the data stored in itself and has it
// processed to avoid massive transmission through the Internet" — and reduce
// tasks merge the shuffled intermediate output back into HDFS.
//
// Execution is hybrid (DESIGN.md §5.1): map and reduce functions really run
// over the real bytes in HDFS, so results are genuine; task *timing* comes
// from a calibrated cost model scheduled onto tracker slots with a
// deterministic list scheduler, so speedup curves are meaningful even on a
// single-core development machine. JobResult reports both the simulated
// makespan and the real wall time.
package mapred

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"time"

	"videocloud/internal/hdfs"
	"videocloud/internal/trace"
)

// KV is an intermediate key/value pair.
type KV struct {
	Key   string
	Value string
}

// MapFunc processes one input split. path identifies the input file, data is
// the split's bytes; emit produces intermediate pairs.
type MapFunc func(path string, data []byte, emit func(k, v string)) error

// ReduceFunc folds all values of one key; emit produces final pairs.
type ReduceFunc func(key string, values []string, emit func(k, v string)) error

// Job describes a MapReduce computation over HDFS files.
type Job struct {
	Name string
	// InputPaths are HDFS files; each block becomes one map split.
	InputPaths []string
	// OutputPath is an HDFS directory that receives part-r-NNNNN files.
	// Empty means the output stays in memory only (JobResult.Output).
	OutputPath string
	Map        MapFunc
	Reduce     ReduceFunc
	// Combine optionally pre-folds map output per task (a mini-reduce),
	// shrinking shuffle volume.
	Combine ReduceFunc
	// NumReducers defaults to the number of trackers.
	NumReducers int
}

// Config tunes the engine.
type Config struct {
	// SlotsPerTracker is the number of concurrent map/reduce slots per
	// node (Hadoop default 2).
	SlotsPerTracker int
	// MapThroughput is modelled map processing speed, bytes/second/slot.
	MapThroughput float64
	// ReduceThroughput is modelled reduce speed, bytes/second/slot.
	ReduceThroughput float64
	// NetBandwidth models cross-node reads (non-local splits) and
	// shuffle transfer, bytes/second.
	NetBandwidth float64
	// TaskOverhead is fixed per-task startup cost (JVM spawn in Hadoop).
	TaskOverhead time.Duration
	// DisableLocality makes the scheduler ignore block placement —
	// the ablation arm of experiment E8.
	DisableLocality bool
	// TrackerSpeeds gives per-tracker compute factors for heterogeneous
	// clusters (absent trackers default to 1.0). A 0.25 entry models the
	// degraded node that motivates speculative execution.
	TrackerSpeeds map[string]float64
	// SpeculativeExecution launches backup attempts of straggling map
	// tasks on idle faster slots, Hadoop-style; the earliest attempt
	// wins and the other is killed.
	SpeculativeExecution bool

	// --- fault tolerance (Hadoop's JobTracker recovery model) ---

	// MaxTaskAttempts caps attempts per task before the whole job fails
	// (Hadoop's mapred.map.max.attempts, default 4).
	MaxTaskAttempts int
	// TrackerMaxFailures blacklists a tracker once this many of its task
	// attempts fail; a blacklisted tracker gets no new tasks but its
	// completed map output stays fetchable (default 3).
	TrackerMaxFailures int
	// TrackerAlive, when set, is polled at every scheduling decision; a
	// tracker reported dead loses its slots AND its completed map output,
	// so finished maps stranded on it are re-run (in Hadoop, intermediate
	// output lives on the tracker's local disk and dies with it).
	TrackerAlive func(tracker string) bool
	// TaskFaultHook, when set, runs before each task attempt executes;
	// a non-nil return fails that attempt. phase is "map" or "reduce".
	// This is the chaos-injection point for task crashes.
	TaskFaultHook func(phase, tracker string, taskID, attempt int) error
}

func (c Config) withDefaults() Config {
	if c.SlotsPerTracker == 0 {
		c.SlotsPerTracker = 2
	}
	if c.MapThroughput == 0 {
		c.MapThroughput = 60e6
	}
	if c.ReduceThroughput == 0 {
		c.ReduceThroughput = 80e6
	}
	if c.NetBandwidth == 0 {
		c.NetBandwidth = 100e6
	}
	if c.TaskOverhead == 0 {
		c.TaskOverhead = 1 * time.Second
	}
	if c.MaxTaskAttempts == 0 {
		c.MaxTaskAttempts = 4
	}
	if c.TrackerMaxFailures == 0 {
		c.TrackerMaxFailures = 3
	}
	return c
}

// TaskStat records one executed task for reporting.
type TaskStat struct {
	ID      int
	Tracker string
	Local   bool
	Bytes   int64
	Start   time.Duration
	End     time.Duration
}

// JobResult reports a completed job.
type JobResult struct {
	Job         string
	MapTasks    []TaskStat
	ReduceTasks []TaskStat
	LocalMaps   int
	// ShuffleBytes is the intermediate volume moved between map and
	// reduce (post-combine).
	ShuffleBytes int64
	// SpeculativeTasks counts backup attempts launched (and their wins).
	SpeculativeTasks int
	SpeculativeWins  int
	// FailedAttempts counts task attempts that failed (injected faults).
	FailedAttempts int
	// MapTasksRerun counts completed maps re-executed because their
	// tracker died before the reduce barrier (stranded output).
	MapTasksRerun int
	// LostTrackers lists trackers detected dead during the job;
	// BlacklistedTrackers those excluded for repeated task failures.
	LostTrackers        []string
	BlacklistedTrackers []string
	// Duration is the modelled makespan; WallTime the real elapsed time.
	Duration time.Duration
	WallTime time.Duration
	// Output holds the final pairs sorted by key (also written to
	// OutputPath part files when set).
	Output []KV
	// OutputFiles lists the written part files.
	OutputFiles []string
}

// Engine runs jobs on a set of task trackers over an HDFS cluster.
type Engine struct {
	cluster  *hdfs.Cluster
	trackers []string
	cfg      Config
}

// Errors returned by the engine.
var (
	ErrNoTrackers = errors.New("mapred: no task trackers")
	ErrNoInput    = errors.New("mapred: no input splits")
	// ErrTaskFailed wraps a job failure caused by a task exhausting
	// MaxTaskAttempts.
	ErrTaskFailed = errors.New("mapred: task exceeded max attempts")
	// ErrNoLiveTrackers means every tracker died or was blacklisted
	// before the job could finish.
	ErrNoLiveTrackers = errors.New("mapred: no live task trackers")
)

// NewEngine creates an engine whose trackers are named nodes (normally the
// HDFS datanode names, giving co-located compute and storage as in Hadoop).
func NewEngine(cluster *hdfs.Cluster, trackers []string, cfg Config) (*Engine, error) {
	if len(trackers) == 0 {
		return nil, ErrNoTrackers
	}
	return &Engine{cluster: cluster, trackers: append([]string(nil), trackers...), cfg: cfg.withDefaults()}, nil
}

// Trackers returns the tracker names.
func (e *Engine) Trackers() []string { return append([]string(nil), e.trackers...) }

// split is one map input: a block of an input file.
type split struct {
	path   string
	block  hdfs.BlockInfo
	offset int64 // offset of this block within the file
}

// slot is one execution slot in the list scheduler.
type slot struct {
	tracker string
	free    time.Duration
	speed   float64
}

// Run executes the job to completion.
func (e *Engine) Run(job Job) (*JobResult, error) {
	return e.RunCtx(context.Background(), job)
}

// RunCtx is Run linked to the trace span in ctx: the job records a
// mapred.job span with one mapred.map / mapred.reduce child per task
// attempt. Task spans carry the modelled schedule in the sim clock domain
// (SetSimStart/EndAtSim) alongside their real wall time, and failed attempts
// carry the injected error plus a retry annotation.
func (e *Engine) RunCtx(ctx context.Context, job Job) (*JobResult, error) {
	jsp := trace.FromContext(ctx).StartChild("mapred.job")
	jsp.Annotate("job", job.Name)
	jsp.SetSimStart(0)
	res, err := e.run(job, jsp)
	if err != nil {
		jsp.SetError(err)
		jsp.End()
		return res, err
	}
	jsp.AnnotateInt("map_tasks", int64(len(res.MapTasks)))
	jsp.AnnotateInt("reduce_tasks", int64(len(res.ReduceTasks)))
	if res.FailedAttempts > 0 {
		jsp.AnnotateInt("failed_attempts", int64(res.FailedAttempts))
	}
	jsp.EndAtSim(res.Duration)
	return res, nil
}

func (e *Engine) run(job Job, jsp *trace.Span) (*JobResult, error) {
	wallStart := time.Now()
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapred: job %q missing map or reduce function", job.Name)
	}
	splits, err := e.computeSplits(job.InputPaths)
	if err != nil {
		return nil, err
	}
	if len(splits) == 0 {
		return nil, ErrNoInput
	}
	nReduce := job.NumReducers
	if nReduce <= 0 {
		nReduce = len(e.trackers)
	}

	res := &JobResult{Job: job.Name}

	// ---- map phase ----
	slots := e.newSlots()
	partitions := make([]map[string][]string, nReduce)
	for i := range partitions {
		partitions[i] = make(map[string][]string)
	}
	remaining := make([]*split, len(splits))
	for i := range splits {
		remaining[i] = &splits[i]
	}
	var taskSplits []*split              // parallel to res.MapTasks, for speculation
	var taskOutputs []map[string][]string // parallel to res.MapTasks; merged at the barrier
	taskID := 0

	// Fault-tolerance state. dead trackers lost their slots and their map
	// output; blacklisted ones only stop receiving new work.
	attempts := make(map[*split]int)
	failures := make(map[string]int)
	dead := make(map[string]bool)
	blacklisted := make(map[string]bool)
	schedulable := func(tr string) bool { return !dead[tr] && !blacklisted[tr] }
	recordFailure := func(tr string) {
		res.FailedAttempts++
		failures[tr]++
		if failures[tr] >= e.cfg.TrackerMaxFailures && !blacklisted[tr] {
			blacklisted[tr] = true
			res.BlacklistedTrackers = append(res.BlacklistedTrackers, tr)
		}
	}
	// strandSweep detects newly-dead trackers and re-queues every completed
	// map that ran on one: its intermediate output died with the node.
	strandSweep := func() {
		if e.cfg.TrackerAlive == nil {
			return
		}
		for _, tr := range e.trackers {
			if dead[tr] || e.cfg.TrackerAlive(tr) {
				continue
			}
			dead[tr] = true
			res.LostTrackers = append(res.LostTrackers, tr)
			jsp.Annotate("lost_tracker", tr)
			kept := res.MapTasks[:0]
			keptSplits := taskSplits[:0]
			keptOut := taskOutputs[:0]
			for i, ts := range res.MapTasks {
				if ts.Tracker == tr {
					remaining = append(remaining, taskSplits[i])
					res.MapTasksRerun++
					continue
				}
				kept = append(kept, ts)
				keptSplits = append(keptSplits, taskSplits[i])
				keptOut = append(keptOut, taskOutputs[i])
			}
			res.MapTasks, taskSplits, taskOutputs = kept, keptSplits, keptOut
		}
	}

	for {
		strandSweep()
		if len(remaining) == 0 {
			break
		}
		live := liveSlots(slots, schedulable)
		if len(live) == 0 {
			return nil, fmt.Errorf("mapred: job %q: %w", job.Name, ErrNoLiveTrackers)
		}
		s := earliestSlot(live)
		idx := e.pickSplit(remaining, s.tracker)
		sp := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)

		local := contains(sp.block.Locations, s.tracker)
		data, rerr := e.readSplit(sp)
		if rerr != nil {
			return nil, fmt.Errorf("mapred: read split of %q: %w", sp.path, rerr)
		}
		cost := e.mapCost(int64(len(data)), local, s.speed)
		id := taskID
		taskID++
		attempt := attempts[sp]
		attempts[sp] = attempt + 1
		asp := jsp.StartChild("mapred.map")
		if asp != nil {
			asp.Annotate("tracker", s.tracker)
			asp.AnnotateInt("task", int64(id))
			asp.AnnotateInt("attempt", int64(attempt))
			asp.SetSimStart(s.free)
		}
		if hook := e.cfg.TaskFaultHook; hook != nil {
			if herr := hook("map", s.tracker, id, attempt); herr != nil {
				s.free += cost // the failed attempt held its slot
				recordFailure(s.tracker)
				asp.SetError(herr)
				if attempts[sp] >= e.cfg.MaxTaskAttempts {
					asp.EndAtSim(s.free)
					return nil, fmt.Errorf("mapred: map task %d of %q failed %d attempts (%v): %w",
						id, sp.path, attempts[sp], herr, ErrTaskFailed)
				}
				asp.Annotate("retry", "requeued")
				asp.EndAtSim(s.free)
				remaining = append(remaining, sp)
				continue
			}
		}
		// Execute the user map function for real.
		out := make(map[string][]string)
		emit := func(k, v string) { out[k] = append(out[k], v) }
		if merr := job.Map(sp.path, data, emit); merr != nil {
			asp.SetError(merr)
			asp.End()
			return nil, fmt.Errorf("mapred: map task %d: %w", id, merr)
		}
		if job.Combine != nil {
			combined, cerr := combineOutput(out, job.Combine)
			if cerr != nil {
				asp.SetError(cerr)
				asp.End()
				return nil, fmt.Errorf("mapred: combine task %d: %w", id, cerr)
			}
			out = combined
		}

		// Model the task's time: compute scales with the node's speed,
		// the network does not.
		start := s.free
		s.free += cost
		if local {
			asp.Annotate("local", "true")
		}
		asp.EndAtSim(s.free)
		res.MapTasks = append(res.MapTasks, TaskStat{
			ID: id, Tracker: s.tracker, Local: local,
			Bytes: int64(len(data)), Start: start, End: s.free,
		})
		taskSplits = append(taskSplits, sp)
		taskOutputs = append(taskOutputs, out)
	}
	var mapEnd time.Duration
	for _, ts := range res.MapTasks {
		if ts.End > mapEnd {
			mapEnd = ts.End
		}
		if ts.Local {
			res.LocalMaps++
		}
	}
	if e.cfg.SpeculativeExecution {
		mapEnd = e.speculate(res, taskSplits, liveSlots(slots, schedulable), mapEnd)
	}

	// Merge map output into reduce partitions only at the barrier, once
	// every producing tracker is known to have survived the map phase.
	for _, out := range taskOutputs {
		for k, vs := range out {
			p := int(keyHash(k) % uint32(len(partitions)))
			partitions[p][k] = append(partitions[p][k], vs...)
		}
	}

	// ---- shuffle + reduce phase (barrier at mapEnd, as in Hadoop) ----
	slots = e.newSlots()
	for _, s := range slots {
		s.free = mapEnd
	}
	var jobEnd time.Duration = mapEnd
	for p := 0; p < nReduce; p++ {
		if len(partitions[p]) == 0 {
			continue
		}
		inBytes := partitionBytes(partitions[p])

		// Pick a live slot; retry the attempt on injected faults. A
		// retried reduce refetches its shuffle input, so ShuffleBytes
		// counts every attempt.
		var s *slot
		var rsp *trace.Span
		for attempt := 0; ; attempt++ {
			if e.cfg.TrackerAlive != nil {
				for _, tr := range e.trackers {
					if !dead[tr] && !e.cfg.TrackerAlive(tr) {
						dead[tr] = true
						res.LostTrackers = append(res.LostTrackers, tr)
						jsp.Annotate("lost_tracker", tr)
					}
				}
			}
			live := liveSlots(slots, schedulable)
			if len(live) == 0 {
				return nil, fmt.Errorf("mapred: job %q: %w", job.Name, ErrNoLiveTrackers)
			}
			s = earliestSlot(live)
			res.ShuffleBytes += inBytes
			rsp = jsp.StartChild("mapred.reduce")
			if rsp != nil {
				rsp.Annotate("tracker", s.tracker)
				rsp.AnnotateInt("partition", int64(p))
				rsp.AnnotateInt("attempt", int64(attempt))
				rsp.SetSimStart(s.free)
			}
			if hook := e.cfg.TaskFaultHook; hook != nil {
				if herr := hook("reduce", s.tracker, p, attempt); herr != nil {
					s.free += scaleBySpeed(e.cfg.TaskOverhead+bytesTime(inBytes, e.cfg.ReduceThroughput), s.speed) +
						bytesTime(inBytes, e.cfg.NetBandwidth)
					recordFailure(s.tracker)
					rsp.SetError(herr)
					if attempt+1 >= e.cfg.MaxTaskAttempts {
						rsp.EndAtSim(s.free)
						return nil, fmt.Errorf("mapred: reduce task %d failed %d attempts (%v): %w",
							p, attempt+1, herr, ErrTaskFailed)
					}
					rsp.Annotate("retry", "requeued")
					rsp.EndAtSim(s.free)
					continue
				}
			}
			break
		}

		keys := make([]string, 0, len(partitions[p]))
		for k := range partitions[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var outPairs []KV
		emit := func(k, v string) { outPairs = append(outPairs, KV{k, v}) }
		for _, k := range keys {
			if rerr := job.Reduce(k, partitions[p][k], emit); rerr != nil {
				rsp.SetError(rerr)
				rsp.End()
				return nil, fmt.Errorf("mapred: reduce partition %d key %q: %w", p, k, rerr)
			}
		}
		outBytes := pairsBytes(outPairs)

		cost := scaleBySpeed(e.cfg.TaskOverhead+bytesTime(inBytes, e.cfg.ReduceThroughput), s.speed) +
			bytesTime(inBytes, e.cfg.NetBandwidth) + // shuffle fetch
			bytesTime(outBytes, e.cfg.NetBandwidth) // HDFS write
		start := s.free
		s.free += cost
		rsp.EndAtSim(s.free)
		if s.free > jobEnd {
			jobEnd = s.free
		}
		res.ReduceTasks = append(res.ReduceTasks, TaskStat{
			ID: p, Tracker: s.tracker, Bytes: inBytes, Start: start, End: s.free,
		})
		res.Output = append(res.Output, outPairs...)

		if job.OutputPath != "" {
			name := fmt.Sprintf("%s/part-r-%05d", strings.TrimSuffix(job.OutputPath, "/"), p)
			var b strings.Builder
			for _, kv := range outPairs {
				fmt.Fprintf(&b, "%s\t%s\n", kv.Key, kv.Value)
			}
			cl := e.cluster.Client(s.tracker)
			if werr := cl.WriteFile(name, []byte(b.String()), 2); werr != nil {
				return nil, fmt.Errorf("mapred: write %q: %w", name, werr)
			}
			res.OutputFiles = append(res.OutputFiles, name)
		}
	}
	sort.Slice(res.Output, func(i, j int) bool {
		if res.Output[i].Key != res.Output[j].Key {
			return res.Output[i].Key < res.Output[j].Key
		}
		return res.Output[i].Value < res.Output[j].Value
	})
	res.Duration = jobEnd
	res.WallTime = time.Since(wallStart)
	return res, nil
}

func (e *Engine) newSlots() []*slot {
	slots := make([]*slot, 0, len(e.trackers)*e.cfg.SlotsPerTracker)
	for _, tr := range e.trackers {
		speed := 1.0
		if s, ok := e.cfg.TrackerSpeeds[tr]; ok && s > 0 {
			speed = s
		}
		for i := 0; i < e.cfg.SlotsPerTracker; i++ {
			slots = append(slots, &slot{tracker: tr, speed: speed})
		}
	}
	return slots
}

// mapCost models one map attempt's duration on a slot of the given speed.
// Everything the node itself does (task startup, map compute) scales with
// its speed; network transfer does not.
func (e *Engine) mapCost(bytes int64, local bool, speed float64) time.Duration {
	cost := scaleBySpeed(e.cfg.TaskOverhead+bytesTime(bytes, e.cfg.MapThroughput), speed)
	if !local {
		cost += bytesTime(bytes, e.cfg.NetBandwidth)
	}
	return cost
}

func scaleBySpeed(d time.Duration, speed float64) time.Duration {
	if speed <= 0 || speed == 1 {
		return d
	}
	return time.Duration(float64(d) / speed)
}

// speculate launches backup attempts for straggling map tasks, mirroring
// Hadoop's speculative execution: a task whose attempt finishes last, and
// which an idle slot on another tracker could complete earlier, gets a
// backup; the earlier attempt wins and both slots free at the winning time.
// It returns the new map-phase end time.
func (e *Engine) speculate(res *JobResult, taskSplits []*split, slots []*slot, mapEnd time.Duration) time.Duration {
	// Visit tasks latest-finishing first; only a task that is the last
	// attempt on its slot can still be "running" to speculate against.
	order := make([]int, len(res.MapTasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := res.MapTasks[order[a]], res.MapTasks[order[b]]
		if ta.End != tb.End {
			return ta.End > tb.End
		}
		return ta.ID < tb.ID
	})
	// Hadoop speculates only tasks progressing well below their peers;
	// here: attempt duration over 1.5x the mean attempt duration.
	var meanDur time.Duration
	for _, ts := range res.MapTasks {
		meanDur += ts.End - ts.Start
	}
	meanDur /= time.Duration(len(res.MapTasks))
	for _, ti := range order {
		ts := &res.MapTasks[ti]
		if ts.End-ts.Start <= meanDur*3/2 {
			continue // not a straggler by Hadoop's threshold
		}
		var origSlot *slot
		for _, s := range slots {
			if s.tracker == ts.Tracker && s.free == ts.End {
				origSlot = s
				break
			}
		}
		if origSlot == nil {
			continue // an earlier attempt on that slot; already done
		}
		var best *slot
		var bestEnd time.Duration
		for _, s := range slots {
			if s.tracker == ts.Tracker {
				continue // Hadoop never backs up on the same node
			}
			local := contains(taskSplits[ti].block.Locations, s.tracker)
			end := s.free + e.mapCost(ts.Bytes, local, s.speed)
			if best == nil || end < bestEnd ||
				(end == bestEnd && s.tracker < best.tracker) {
				best, bestEnd = s, end
			}
		}
		if best == nil || bestEnd >= ts.End {
			continue
		}
		res.SpeculativeTasks++
		res.SpeculativeWins++
		ts.End = bestEnd
		ts.Tracker = best.tracker
		origSlot.free = bestEnd // original attempt killed
		best.free = bestEnd
	}
	newEnd := time.Duration(0)
	for _, ts := range res.MapTasks {
		if ts.End > newEnd {
			newEnd = ts.End
		}
	}
	if newEnd > mapEnd {
		return mapEnd
	}
	return newEnd
}

// liveSlots filters slots to trackers the job may still schedule on.
func liveSlots(slots []*slot, schedulable func(string) bool) []*slot {
	out := make([]*slot, 0, len(slots))
	for _, s := range slots {
		if schedulable(s.tracker) {
			out = append(out, s)
		}
	}
	return out
}

// earliestSlot returns the slot that frees first (ties by tracker name for
// determinism).
func earliestSlot(slots []*slot) *slot {
	best := slots[0]
	for _, s := range slots[1:] {
		if s.free < best.free || (s.free == best.free && s.tracker < best.tracker) {
			best = s
		}
	}
	return best
}

// pickSplit chooses the next split for a tracker: a block-local one when
// locality is enabled and available, else the first remaining.
func (e *Engine) pickSplit(remaining []*split, tracker string) int {
	if !e.cfg.DisableLocality {
		for i, sp := range remaining {
			if contains(sp.block.Locations, tracker) {
				return i
			}
		}
	}
	return 0
}

func (e *Engine) computeSplits(paths []string) ([]split, error) {
	cl := e.cluster.Client("")
	var out []split
	for _, p := range paths {
		blocks, err := cl.BlockLocations(p)
		if err != nil {
			return nil, err
		}
		var off int64
		for _, b := range blocks {
			out = append(out, split{path: p, block: b, offset: off})
			off += b.Length
		}
	}
	return out, nil
}

// readSplit returns the split's record-aligned bytes, following Hadoop's
// TextInputFormat rule: a record (newline-terminated line) belongs to the
// split where it starts. Splits after the first skip their leading partial
// record; every split extends past its block end to finish its last record.
// This keeps records that straddle block boundaries from being processed
// twice or torn in half.
func (e *Engine) readSplit(sp *split) ([]byte, error) {
	r, err := e.cluster.Client("").Open(sp.path)
	if err != nil {
		return nil, err
	}
	fileSize := r.Size()
	start := sp.offset
	end := sp.offset + sp.block.Length

	if start > 0 {
		// Skip the partial record owned by the previous split.
		pos, found, serr := scanNewline(r, start, fileSize)
		if serr != nil {
			return nil, serr
		}
		if !found || pos >= end {
			// No record starts in this split.
			return nil, nil
		}
		start = pos
	}
	// Extend to finish the record that starts before end.
	if end < fileSize {
		pos, found, serr := scanNewline(r, end, fileSize)
		if serr != nil {
			return nil, serr
		}
		if found {
			end = pos
		} else {
			end = fileSize
		}
	} else {
		end = fileSize
	}
	if start >= end {
		return nil, nil
	}
	buf := make([]byte, end-start)
	n, err := r.ReadAt(buf, start)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}

// scanNewline returns the position just after the first '\n' at or after
// off, and whether one was found before limit.
func scanNewline(r *hdfs.Reader, off, limit int64) (int64, bool, error) {
	const chunk = 4096
	buf := make([]byte, chunk)
	for pos := off; pos < limit; {
		n, err := r.ReadAt(buf, pos)
		if n == 0 {
			if err == io.EOF {
				return limit, false, nil
			}
			return 0, false, err
		}
		for i := 0; i < n; i++ {
			if buf[i] == '\n' {
				return pos + int64(i) + 1, true, nil
			}
		}
		pos += int64(n)
		if err == io.EOF {
			break
		}
	}
	return limit, false, nil
}

func combineOutput(out map[string][]string, combine ReduceFunc) (map[string][]string, error) {
	combined := make(map[string][]string, len(out))
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit := func(ck, cv string) { combined[ck] = append(combined[ck], cv) }
		if err := combine(k, out[k], emit); err != nil {
			return nil, err
		}
	}
	return combined, nil
}

func keyHash(k string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(k))
	return h.Sum32()
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func bytesTime(n int64, rate float64) time.Duration {
	return time.Duration(float64(n) / rate * float64(time.Second))
}

func partitionBytes(m map[string][]string) int64 {
	var n int64
	for k, vs := range m {
		for _, v := range vs {
			n += int64(len(k) + len(v))
		}
	}
	return n
}

func pairsBytes(pairs []KV) int64 {
	var n int64
	for _, kv := range pairs {
		n += int64(len(kv.Key) + len(kv.Value))
	}
	return n
}
