package mapred

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"videocloud/internal/hdfs"
)

const testBlock = 32 * 1024

// rig builds an HDFS cluster with n co-located trackers.
func rig(t *testing.T, n int, cfg Config) (*hdfs.Cluster, *Engine) {
	t.Helper()
	c := hdfs.NewCluster(n, testBlock)
	trackers := make([]string, n)
	for i := range trackers {
		trackers[i] = fmt.Sprintf("dn%d", i)
	}
	e, err := NewEngine(c, trackers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

// corpus writes text data spanning several blocks and returns true word
// counts.
func corpus(t *testing.T, c *hdfs.Cluster, path string, repeat int) map[string]int {
	t.Helper()
	words := []string{"cloud", "video", "kvm", "opennebula", "hadoop", "nutch", "stream", "cloud", "video", "cloud"}
	var b strings.Builder
	counts := map[string]int{}
	for i := 0; i < repeat; i++ {
		for _, w := range words {
			b.WriteString(w)
			b.WriteByte(' ')
			counts[w]++
		}
		b.WriteByte('\n')
	}
	if err := c.Client("").WriteFile(path, []byte(b.String()), 2); err != nil {
		t.Fatal(err)
	}
	return counts
}

func wordCountJob(inputs []string, output string) Job {
	return Job{
		Name:       "wordcount",
		InputPaths: inputs,
		OutputPath: output,
		Map: func(path string, data []byte, emit func(k, v string)) error {
			for _, w := range strings.Fields(string(data)) {
				emit(w, "1")
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			sum := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				sum += n
			}
			emit(key, strconv.Itoa(sum))
			return nil
		},
	}
}

func TestWordCountCorrectness(t *testing.T) {
	c, e := rig(t, 4, Config{})
	want := corpus(t, c, "/in/corpus.txt", 2000)
	res, err := e.Run(wordCountJob([]string{"/in/corpus.txt"}, "/out"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range res.Output {
		n, _ := strconv.Atoi(kv.Value)
		got[kv.Key] = n
	}
	if len(got) != len(want) {
		t.Fatalf("keys = %d, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], n)
		}
	}
	// Output files landed in HDFS and contain the same data.
	if len(res.OutputFiles) == 0 {
		t.Fatal("no part files written")
	}
	var all strings.Builder
	for _, f := range res.OutputFiles {
		data, err := c.Client("").ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(data)
	}
	for k, n := range want {
		if !strings.Contains(all.String(), fmt.Sprintf("%s\t%d", k, n)) {
			t.Fatalf("part files missing %s=%d", k, n)
		}
	}
}

func TestSplitPerBlock(t *testing.T) {
	c, e := rig(t, 3, Config{})
	corpus(t, c, "/in/a.txt", 3000) // several blocks
	st, _ := c.NameNode().Stat("/in/a.txt")
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MapTasks) != st.Blocks {
		t.Fatalf("map tasks = %d, blocks = %d", len(res.MapTasks), st.Blocks)
	}
}

func TestLocalityPreferred(t *testing.T) {
	c, e := rig(t, 4, Config{})
	corpus(t, c, "/in/a.txt", 4000)
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	// With RF=2 on 4 nodes and locality-aware pulls, most tasks run local.
	frac := float64(res.LocalMaps) / float64(len(res.MapTasks))
	if frac < 0.5 {
		t.Fatalf("local fraction = %.2f (%d/%d)", frac, res.LocalMaps, len(res.MapTasks))
	}
}

func TestLocalityAblationIsSlower(t *testing.T) {
	run := func(disable bool) *JobResult {
		c, e := rig(t, 4, Config{DisableLocality: disable})
		corpus(t, c, "/in/a.txt", 6000)
		res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withLoc := run(false)
	without := run(true)
	if without.LocalMaps > withLoc.LocalMaps {
		t.Fatalf("locality off found more local maps: %d > %d", without.LocalMaps, withLoc.LocalMaps)
	}
	if without.Duration < withLoc.Duration {
		t.Fatalf("locality off faster: %v < %v", without.Duration, withLoc.Duration)
	}
}

func TestScalingWithTrackers(t *testing.T) {
	duration := func(n int) time.Duration {
		c, e := rig(t, n, Config{})
		corpus(t, c, "/in/a.txt", 12000)
		res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	d1, d4 := duration(1), duration(4)
	speedup := float64(d1) / float64(d4)
	if speedup < 1.5 {
		t.Fatalf("4 trackers speedup = %.2fx over 1", speedup)
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	sumCombine := func(key string, values []string, emit func(k, v string)) error {
		sum := 0
		for _, v := range values {
			n, _ := strconv.Atoi(v)
			sum += n
		}
		emit(key, strconv.Itoa(sum))
		return nil
	}
	run := func(withCombine bool) *JobResult {
		c, e := rig(t, 3, Config{})
		want := corpus(t, c, "/in/a.txt", 5000)
		job := wordCountJob([]string{"/in/a.txt"}, "")
		if withCombine {
			job.Combine = sumCombine
		}
		res, err := e.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		// Correctness preserved either way.
		got := map[string]int{}
		for _, kv := range res.Output {
			n, _ := strconv.Atoi(kv.Value)
			got[kv.Key] = n
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("combine=%v: count[%s] = %d, want %d", withCombine, k, got[k], n)
			}
		}
		return res
	}
	plain := run(false)
	combined := run(true)
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner did not shrink shuffle: %d >= %d", combined.ShuffleBytes, plain.ShuffleBytes)
	}
}

func TestMultipleInputsAndReducers(t *testing.T) {
	c, e := rig(t, 3, Config{})
	w1 := corpus(t, c, "/in/a.txt", 1000)
	w2 := corpus(t, c, "/in/b.txt", 500)
	job := wordCountJob([]string{"/in/a.txt", "/in/b.txt"}, "/out")
	job.NumReducers = 5
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range res.Output {
		n, _ := strconv.Atoi(kv.Value)
		got[kv.Key] = n
	}
	for k := range w1 {
		if got[k] != w1[k]+w2[k] {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], w1[k]+w2[k])
		}
	}
	if len(res.OutputFiles) > 5 {
		t.Fatalf("%d part files for 5 reducers", len(res.OutputFiles))
	}
}

func TestErrors(t *testing.T) {
	c, e := rig(t, 2, Config{})
	if _, err := NewEngine(c, nil, Config{}); !errors.Is(err, ErrNoTrackers) {
		t.Fatalf("no trackers: %v", err)
	}
	if _, err := e.Run(Job{Name: "x", InputPaths: []string{"/missing"}}); err == nil {
		t.Fatal("missing map fn accepted")
	}
	job := wordCountJob([]string{"/missing"}, "")
	if _, err := e.Run(job); !errors.Is(err, hdfs.ErrNotFound) {
		t.Fatalf("missing input: %v", err)
	}
	c.Client("").WriteFile("/empty-dir-file", nil, 1)
	job = wordCountJob([]string{"/empty-dir-file"}, "")
	if _, err := e.Run(job); !errors.Is(err, ErrNoInput) {
		t.Fatalf("empty input: %v", err)
	}
	// Map error propagates.
	c2, e2 := rig(t, 2, Config{})
	corpus(t, c2, "/in/a.txt", 100)
	bad := wordCountJob([]string{"/in/a.txt"}, "")
	bad.Map = func(string, []byte, func(k, v string)) error { return errors.New("boom") }
	if _, err := e2.Run(bad); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("map error: %v", err)
	}
	// Reduce error propagates.
	bad = wordCountJob([]string{"/in/a.txt"}, "")
	bad.Reduce = func(string, []string, func(k, v string)) error { return errors.New("crunch") }
	if _, err := e2.Run(bad); err == nil || !strings.Contains(err.Error(), "crunch") {
		t.Fatalf("reduce error: %v", err)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() *JobResult {
		c, e := rig(t, 3, Config{})
		corpus(t, c, "/in/a.txt", 3000)
		res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.LocalMaps != b.LocalMaps {
		t.Fatalf("nondeterministic schedule: %v/%d vs %v/%d",
			a.Duration, a.LocalMaps, b.Duration, b.LocalMaps)
	}
	for i := range a.MapTasks {
		if a.MapTasks[i].Tracker != b.MapTasks[i].Tracker {
			t.Fatal("task assignment differs between runs")
		}
	}
}

// Property: every map task runs exactly once per split and the modelled
// schedule never overlaps two tasks on one slot.
func TestPropertyScheduleSanity(t *testing.T) {
	f := func(repeat uint8, nodes uint8) bool {
		n := int(nodes%4) + 1
		c, _ := hdfs.NewCluster(n, testBlock), 0
		_ = c
		cluster := hdfs.NewCluster(n, testBlock)
		trackers := make([]string, n)
		for i := range trackers {
			trackers[i] = fmt.Sprintf("dn%d", i)
		}
		e, _ := NewEngine(cluster, trackers, Config{})
		var b strings.Builder
		for i := 0; i < int(repeat%40)+1; i++ {
			b.WriteString("alpha beta gamma delta epsilon zeta eta theta ")
		}
		cluster.Client("").WriteFile("/in", []byte(b.String()), 2)
		res, err := e.Run(wordCountJob([]string{"/in"}, ""))
		if err != nil {
			return false
		}
		st, _ := cluster.NameNode().Stat("/in")
		if len(res.MapTasks) != st.Blocks {
			return false
		}
		// Tasks on the same tracker must not overlap more than the
		// slot count allows; verify per-slot non-overlap by checking
		// that at any task start, running tasks on that tracker are
		// < SlotsPerTracker... simplified: total busy time per tracker
		// fits within (slots * makespan).
		busy := map[string]time.Duration{}
		for _, ts := range res.MapTasks {
			if ts.End < ts.Start {
				return false
			}
			busy[ts.Tracker] += ts.End - ts.Start
		}
		for _, d := range busy {
			if d > 2*res.Duration+time.Millisecond { // 2 slots/tracker
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
