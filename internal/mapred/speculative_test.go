package mapred

import (
	"fmt"
	"strconv"
	"testing"

	"videocloud/internal/hdfs"
)

// hetRig builds a cluster where dn0 is a 4x-degraded node.
func hetRig(t *testing.T, n int, speculative bool) (*hdfs.Cluster, *Engine) {
	t.Helper()
	c := hdfs.NewCluster(n, testBlock)
	trackers := make([]string, n)
	for i := range trackers {
		trackers[i] = fmt.Sprintf("dn%d", i)
	}
	e, err := NewEngine(c, trackers, Config{
		TrackerSpeeds:        map[string]float64{"dn0": 0.25},
		SpeculativeExecution: speculative,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

func TestSpeculativeExecutionCutsStragglerTail(t *testing.T) {
	run := func(speculative bool) *JobResult {
		c, e := hetRig(t, 4, speculative)
		corpus(t, c, "/in/a.txt", 8000)
		res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	spec := run(true)
	if spec.SpeculativeTasks == 0 {
		t.Fatal("no backup attempts on a 4x-degraded node")
	}
	if spec.Duration >= plain.Duration {
		t.Fatalf("speculation did not help: %v >= %v", spec.Duration, plain.Duration)
	}
	// Output identical either way.
	if len(spec.Output) != len(plain.Output) {
		t.Fatalf("output size differs: %d vs %d", len(spec.Output), len(plain.Output))
	}
	for i := range spec.Output {
		if spec.Output[i] != plain.Output[i] {
			t.Fatalf("output differs at %d", i)
		}
	}
}

func TestNoSpeculationOnHomogeneousCluster(t *testing.T) {
	c := hdfs.NewCluster(4, testBlock)
	corpus(t, c, "/in/a.txt", 4000)
	e, err := NewEngine(c, []string{"dn0", "dn1", "dn2", "dn3"}, Config{SpeculativeExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeculativeTasks != 0 {
		t.Fatalf("%d pointless backups on a homogeneous cluster", res.SpeculativeTasks)
	}
}

func TestHeterogeneousSpeedsSlowTheSlowNode(t *testing.T) {
	// Same job with and without the degraded node being degraded: the
	// degraded run must take longer.
	run := func(slow bool) *JobResult {
		c := hdfs.NewCluster(2, testBlock)
		corpus(t, c, "/in/a.txt", 6000)
		cfg := Config{}
		if slow {
			cfg.TrackerSpeeds = map[string]float64{"dn0": 0.2}
		}
		e, err := NewEngine(c, []string{"dn0", "dn1"}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(wordCountJob([]string{"/in/a.txt"}, ""))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	degraded := run(true)
	if degraded.Duration <= fast.Duration {
		t.Fatalf("degraded node did not slow the job: %v <= %v", degraded.Duration, fast.Duration)
	}
}

func TestSpeculativeCorrectnessUnderCombiner(t *testing.T) {
	c, e := hetRig(t, 3, true)
	want := corpus(t, c, "/in/a.txt", 3000)
	job := wordCountJob([]string{"/in/a.txt"}, "/out")
	job.Combine = job.Reduce
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range res.Output {
		n, _ := strconv.Atoi(kv.Value)
		got[kv.Key] = n
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], n)
		}
	}
}
