package metrics

import "testing"

// The Snapshot fix: one lock acquisition and one sort for all three
// quantiles, versus the old shape of a lock round-trip per accessor and a
// fresh copy+sort per Quantile call. BenchmarkHistogramThreeQuantiles keeps
// the old shape measurable so the win stays visible across PRs.

func filledHistogram() *Histogram {
	h := NewHistogram()
	x := uint64(0x2545f4914f6cdd1d)
	for i := 0; i < reservoirCap; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		h.Observe(float64(x%100000) / 1000)
	}
	return h
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	h := filledHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkHistogramThreeQuantiles(b *testing.B) {
	h := filledHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Snapshot{
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
			Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
		}
		if s.Count == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
