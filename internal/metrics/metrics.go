// Package metrics provides lightweight instrumentation primitives shared by
// every videocloud subsystem: counters, gauges, duration/value histograms,
// and a registry that renders aligned text tables for the experiment
// harnesses (EXPERIMENTS.md rows are produced through this package).
//
// All types are safe for concurrent use; the hot-path operations are a single
// atomic add so they are cheap enough for per-block and per-request use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n panics: counters are monotonic by contract.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations and reports count, mean, min,
// max and quantiles. Observations are retained exactly up to a cap, after
// which reservoir sampling keeps an unbiased sample; count/sum/min/max remain
// exact.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min      float64
	max      float64
	samples  []float64
	capN     int
	rngSeed  uint64
	exemplar Exemplar
}

// Exemplar links a histogram's worst observation to the trace that produced
// it, so a latency quantile can be followed to a concrete request. A zero
// TraceID means "no exemplar recorded".
type Exemplar struct {
	Value   float64
	TraceID uint64
}

// reservoirCap bounds per-histogram memory; 4096 samples give quantile error
// well under the variation any experiment here cares about.
const reservoirCap = 4096

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{capN: reservoirCap, rngSeed: 0x9e3779b97f4a7c15}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
}

// ObserveExemplar records v and, when traceID is nonzero and v is the
// largest exemplar-carrying observation so far, remembers the (v, traceID)
// pair — slow observations stay attributable to the trace that caused them.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
	if traceID != 0 && (h.exemplar.TraceID == 0 || v >= h.exemplar.Value) {
		h.exemplar = Exemplar{Value: v, TraceID: traceID}
	}
}

func (h *Histogram) observeLocked(v float64) {
	if h.capN == 0 { // zero value usable
		h.capN = reservoirCap
		h.rngSeed = 0x9e3779b97f4a7c15
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < h.capN {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir replacement with a deterministic xorshift PRNG so metric
	// output never perturbs experiment determinism.
	h.rngSeed ^= h.rngSeed << 13
	h.rngSeed ^= h.rngSeed >> 7
	h.rngSeed ^= h.rngSeed << 17
	if idx := h.rngSeed % uint64(h.count); idx < uint64(h.capN) {
		h.samples[idx] = v
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained sample using
// linear interpolation. Returns 0 for an empty histogram; NaN q panics.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: bad quantile %v", q))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted interpolates the q-quantile from an already-sorted sample.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count         int64
	Sum, Mean     float64
	Min, Max      float64
	P50, P90, P99 float64
	Exemplar      Exemplar
}

// Snapshot returns a consistent summary. The reservoir is copied once under
// a single lock acquisition and sorted once for all three quantiles (the old
// path re-locked and re-sorted per quantile — eight lock round-trips and
// three sorts per snapshot, which the route dashboard takes per histogram).
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	s := Snapshot{
		Count: h.count, Sum: h.sum,
		Min: h.min, Max: h.max,
		Exemplar: h.exemplar,
	}
	sorted := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	sort.Float64s(sorted)
	s.P50 = quantileSorted(sorted, 0.5)
	s.P90 = quantileSorted(sorted, 0.9)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// Registry is a named collection of metrics. The zero value is usable.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Dump renders every metric, sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %-40s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-40s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		s := h.Snapshot()
		lines = append(lines, fmt.Sprintf(
			"hist    %-40s n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
			name, s.Count, s.Mean, s.P50, s.P99, s.Max))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
