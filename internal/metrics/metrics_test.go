package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("Sum = %g", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %g", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %g/%g", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %g, want 3", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %g, want 1", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("p100 = %g, want 5", q)
	}
}

func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	h.Observe(2)
	if h.Mean() != 2 {
		t.Fatalf("zero-value histogram Mean = %g", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(10)
	if q := h.Quantile(0.5); q != 5 {
		t.Fatalf("p50 = %g, want 5 (interpolated)", q)
	}
}

func TestHistogramBadQuantilePanics(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Quantile(%v) did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
}

func TestHistogramReservoirKeepsExactAggregates(t *testing.T) {
	h := NewHistogram()
	n := reservoirCap * 3
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != int64(n) {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if h.Min() != 0 || h.Max() != float64(n-1) {
		t.Fatalf("Min/Max = %g/%g", h.Min(), h.Max())
	}
	wantSum := float64(n) * float64(n-1) / 2
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
	// Median of 0..n-1 should be near n/2 even with sampling.
	med := h.Quantile(0.5)
	if med < float64(n)*0.35 || med > float64(n)*0.65 {
		t.Fatalf("sampled median %g too far from %g", med, float64(n)/2)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(1500 * time.Millisecond)
	if h.Mean() != 1.5 {
		t.Fatalf("Mean = %g, want 1.5", h.Mean())
	}
}

// Property: for any non-empty observation set within reservoir capacity,
// Quantile is monotonic in q and bounded by [Min, Max].
func TestPropertyQuantileMonotonic(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 || len(raw) > reservoirCap {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(float64(v))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-9 || v < h.Min()-1e-9 || v > h.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: within capacity, Quantile(0.5) equals the true median.
func TestPropertyExactMedianWithinCapacity(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 || len(raw) > 512 {
			return true
		}
		h := NewHistogram()
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			h.Observe(float64(v))
		}
		sort.Float64s(vals)
		var want float64
		n := len(vals)
		if n%2 == 1 {
			want = vals[n/2]
		} else {
			want = (vals[n/2-1] + vals[n/2]) / 2
		}
		return math.Abs(h.Quantile(0.5)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("Counter(x) returned distinct instances")
	}
	a.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("registry lost counter state")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram(h) returned distinct instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge(g) returned distinct instances")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	r.Gauge("vms").Set(2)
	r.Histogram("latency").Observe(0.5)
	out := r.Dump()
	for _, want := range []string{"requests", "vms", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump missing %q:\n%s", want, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1", "nodes", "time_s", "speedup")
	tb.AddRow(1, 10.0, 1.0)
	tb.AddRow(8, 1.3333333, 7.5)
	out := tb.String()
	if !strings.Contains(out, "== E1 ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1.333") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableShortRowRenders(t *testing.T) {
	tb := NewTable("partial", "a", "b", "c")
	tb.AddRow(1) // fewer cells than columns is fine
	if out := tb.String(); !strings.Contains(out, "1") {
		t.Fatalf("short row lost:\n%s", out)
	}
}

func TestTableOverlongRowPanics(t *testing.T) {
	tb := NewTable("bad", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("overlong row did not panic")
		}
	}()
	tb.AddRow(1, 2)
}

func TestSnapshotMatchesQuantileAccessors(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.P50 != h.Quantile(0.5) || s.P90 != h.Quantile(0.9) || s.P99 != h.Quantile(0.99) {
		t.Fatalf("single-sort snapshot disagrees with Quantile: %+v", s)
	}
	if s.Count != 100 || s.Min != 1 || s.Max != 100 || s.Mean != 50.5 {
		t.Fatalf("snapshot aggregates wrong: %+v", s)
	}
}

func TestObserveExemplarKeepsWorst(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(0.2, 11)
	h.ObserveExemplar(0.9, 22)
	h.ObserveExemplar(0.5, 33) // smaller than current exemplar: ignored
	h.ObserveExemplar(1.5, 0)  // no trace ID: observation counts, exemplar unchanged
	s := h.Snapshot()
	if s.Exemplar.TraceID != 22 || s.Exemplar.Value != 0.9 {
		t.Fatalf("exemplar %+v, want value 0.9 from trace 22", s.Exemplar)
	}
	if s.Count != 4 || s.Max != 1.5 {
		t.Fatalf("exemplar observations not recorded: %+v", s)
	}
}
