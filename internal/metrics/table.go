package metrics

import (
	"fmt"
	"strings"
)

// Table renders experiment results as an aligned text table. The benchmark
// harness uses it to print the rows recorded in EXPERIMENTS.md.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted with %v; float64 values are
// formatted with 4 significant digits. A row with more values than the
// table has columns is a programming error and panics.
func (t *Table) AddRow(values ...any) {
	if len(values) > len(t.Columns) {
		panic(fmt.Sprintf("metrics: row with %d values in a %d-column table %q",
			len(values), len(t.Columns), t.Title))
	}
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with a title line, a header row, a rule, and the
// data rows, all columns padded to their widest cell.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(width)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
