package migrate

import (
	"testing"

	"videocloud/internal/simnet"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

// BenchmarkPreCopyMigration measures the whole pre-copy engine on a busy
// 2 GiB guest (bitmap harvesting + flow scheduling, no real data movement).
func BenchmarkPreCopyMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simtime.NewSimulator()
		net := simnet.New(sim)
		net.AddHost("a", 1*simnet.Gbps, 1*simnet.Gbps, 0)
		net.AddHost("b", 1*simnet.Gbps, 1*simnet.Gbps, 0)
		src := virt.NewHost("a", 8, 1e9, 64<<30, 500<<30, 0)
		dst := virt.NewHost("b", 8, 1e9, 64<<30, 500<<30, 0)
		vm, err := src.CreateVM(virt.VMConfig{Name: "vm", VCPUs: 2, MemoryBytes: 2 << 30, Mode: virt.HWAssist})
		if err != nil {
			b.Fatal(err)
		}
		vm.Workload = virt.HotspotWriter{Rate: 40 << 20}
		vm.Start()
		ok := false
		m := New(sim, net)
		if err := m.Migrate(vm, dst, Config{Algorithm: PreCopy}, func(r Report) { ok = r.Success }); err != nil {
			b.Fatal(err)
		}
		sim.Run()
		if !ok {
			b.Fatal("migration failed")
		}
	}
}
