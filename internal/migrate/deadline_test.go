package migrate

import (
	"errors"
	"testing"
	"time"

	"videocloud/internal/simnet"
	"videocloud/internal/virt"
)

// A destination that stops responding mid pre-copy stalls the transfer
// forever; the deadline must cut the migration loose with a typed error and
// leave the guest running on the source.
func TestDeadlineAbortsStalledMigration(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "web", 1*gb, virt.IdleWorkload{})

	// Partition the destination one second in — mid round 1.
	r.sim.Schedule(time.Second, func() { r.net.Partition("node2") })

	var rep Report
	got := false
	err := r.mig.Migrate(vm, r.dst, Config{
		Algorithm: PreCopy, Deadline: 30 * time.Second,
	}, func(rp Report) { rep = rp; got = true })
	if err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(5 * time.Minute)
	if !got {
		t.Fatal("migration never reported")
	}
	if rep.Success {
		t.Fatal("stalled migration reported success")
	}
	if !errors.Is(rep.Err, ErrDeadline) {
		t.Fatalf("Err = %v, want ErrDeadline", rep.Err)
	}
	if vm.Host() != r.src || vm.State() != virt.StateRunning {
		t.Fatalf("guest host=%v state=%v, want running on source", vm.Host(), vm.State())
	}
	// Deadline fired at t=30s, not when the sim ran out of events.
	if rep.TotalTime != 30*time.Second {
		t.Fatalf("TotalTime = %v, want 30s (deadline)", rep.TotalTime)
	}
	// Reservation must be released so the destination can host other VMs
	// once it heals.
	cpu, mem, _ := r.dst.Usage()
	if cpu != 0 || mem != 0 {
		t.Fatalf("destination still reserves %d vcpu / %d mem", cpu, mem)
	}
}

// A migration that finishes comfortably inside its deadline is unaffected,
// and the pending deadline event does not fire afterwards.
func TestDeadlineDoesNotFireOnSuccess(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "web", 1*gb, virt.IdleWorkload{})
	rep := migrateAndWait(t, r, vm, Config{Algorithm: PreCopy, Deadline: time.Hour})
	if !rep.Success {
		t.Fatalf("migration failed: %s", rep.Reason)
	}
	if rep.Err != nil {
		t.Fatalf("Err = %v on success", rep.Err)
	}
	if vm.Host() != r.dst {
		t.Fatal("VM not on destination")
	}
}

// A pre-copy that cannot converge (dirty rate ~ link rate) with a dead-slow
// destination respects the deadline rather than iterating unbounded rounds.
func TestDeadlineBoundsNonConvergingRun(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "busy", 1*gb, virt.UniformWriter{Rate: 200 * mb})
	var rep Report
	got := false
	err := r.mig.Migrate(vm, r.dst, Config{
		Algorithm: PreCopy, MaxRounds: 1 << 20, Deadline: 20 * time.Second,
	}, func(rp Report) { rep = rp; got = true })
	if err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(10 * time.Minute)
	if !got {
		t.Fatal("migration never reported")
	}
	// Either it cut over via the not-converging heuristic before 20s or
	// the deadline stopped it; both bound the run. But it must not still
	// be copying at the horizon.
	if !rep.Success && !errors.Is(rep.Err, ErrDeadline) {
		t.Fatalf("failure without ErrDeadline: %s", rep.Reason)
	}
	if rep.TotalTime > 21*time.Second {
		t.Fatalf("TotalTime = %v, want bounded by ~20s deadline", rep.TotalTime)
	}
}
