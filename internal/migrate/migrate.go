// Package migrate implements live migration of virtual machines between
// hosts, the capability the paper demonstrates in Figures 8-10 ("Live
// migration of the VM from Node 3 to Node 2 ... Live migration is
// successful").
//
// Three algorithms are provided:
//
//   - PreCopy — the Clark et al. [paper ref 20] iterative algorithm: RAM is
//     copied while the guest runs, rounds re-send pages dirtied during the
//     previous round, and a final brief stop-and-copy moves the residual
//     writable working set. Downtime is the final round plus resume cost.
//   - PostCopy — Hines et al. [paper ref 21]: the VM resumes on the
//     destination after only device state moves (minimal downtime) and pages
//     are pushed/faulted in afterwards, trading downtime for a degraded
//     post-resume window.
//   - StopAndCopy — the non-live baseline: pause, move everything, resume.
//
// Guest dirtying during migration is applied to the VM's real dirty-page
// bitmap (virt.GuestMemory), so convergence behaviour — including
// non-convergence when the dirty rate exceeds link bandwidth — emerges from
// data, not from a formula. Transfer timing comes from the simnet flow model,
// so migrations contend for bandwidth with any other traffic.
package migrate

import (
	"errors"
	"fmt"
	"time"

	"videocloud/internal/simnet"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

// Algorithm selects the migration strategy.
type Algorithm int

// Available algorithms.
const (
	PreCopy Algorithm = iota
	PostCopy
	StopAndCopy
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case PreCopy:
		return "pre-copy"
	case PostCopy:
		return "post-copy"
	case StopAndCopy:
		return "stop-and-copy"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Errors returned by Migrate.
var (
	ErrVMNotRunning = errors.New("migrate: VM is not running")
	ErrSameHost     = errors.New("migrate: destination is the source host")
	ErrNoHost       = errors.New("migrate: VM has no host")
	ErrDestination  = errors.New("migrate: destination cannot take the VM")
)

// ErrDeadline is carried in Report.Err when a migration exceeds
// Config.Deadline before switchover — typically a pre-copy that never
// converges against a destination that stopped responding. The guest keeps
// running on the source.
var ErrDeadline = errors.New("migrate: deadline exceeded")

// Config tunes a migration. Zero values select defaults.
type Config struct {
	Algorithm Algorithm
	// MaxRounds bounds pre-copy iterations (default 30, as in Xen).
	MaxRounds int
	// DowntimeTarget: pre-copy stops iterating once the residual dirty
	// set can be moved within this budget (default 30ms).
	DowntimeTarget time.Duration
	// ResumeOverhead is the fixed cost of reactivating the VM on the
	// destination: device re-attach, unsolicited ARP (default 20ms).
	ResumeOverhead time.Duration
	// PageHeaderBytes is per-page wire metadata (default 16).
	PageHeaderBytes int
	// DeviceStateBytes is the vCPU+device snapshot size (default 2 MiB).
	DeviceStateBytes int64
	// Deadline bounds the whole migration in virtual time (0 = unbounded).
	// If it expires before switchover the in-flight transfer is cancelled
	// and the run aborts with Report.Err == ErrDeadline; once the VM has
	// switched to the destination the deadline no longer applies.
	Deadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxRounds == 0 {
		c.MaxRounds = 30
	}
	if c.DowntimeTarget == 0 {
		c.DowntimeTarget = 30 * time.Millisecond
	}
	if c.ResumeOverhead == 0 {
		c.ResumeOverhead = 20 * time.Millisecond
	}
	if c.PageHeaderBytes == 0 {
		c.PageHeaderBytes = 16
	}
	if c.DeviceStateBytes == 0 {
		c.DeviceStateBytes = 2 << 20
	}
	return c
}

// RoundStat records one pre-copy iteration.
type RoundStat struct {
	Round    int
	Pages    int
	Bytes    int64
	Duration time.Duration
}

// Report is the outcome of a migration.
type Report struct {
	VM        string
	Src, Dst  string
	Algorithm Algorithm
	Success   bool
	// Reason explains why iterative copying stopped ("converged",
	// "max-rounds", "not-converging") or why the migration failed.
	Reason string
	// Err is the typed failure cause when Success is false and a sentinel
	// applies (e.g. ErrDeadline); nil otherwise.
	Err error
	Rounds []RoundStat
	// TotalBytes counts all bytes moved, including re-sent dirty pages.
	TotalBytes int64
	// TotalTime spans request to switchover completion.
	TotalTime time.Duration
	// Downtime is the span during which the VM executes nowhere.
	Downtime time.Duration
	// RemoteFaults and DegradedTime apply to post-copy only: page faults
	// served over the network after resume, and the extra service delay
	// they induce.
	RemoteFaults int
	DegradedTime time.Duration
}

// Migrator runs migrations over a simulated network.
type Migrator struct {
	sim *simtime.Simulator
	net *simnet.Network
}

// New returns a Migrator on the given kernel and network.
func New(sim *simtime.Simulator, net *simnet.Network) *Migrator {
	return &Migrator{sim: sim, net: net}
}

// Migrate moves vm to dst and calls done with the final report. The error
// return covers immediate rejections (bad state, capacity); failures after
// the migration starts are reported through done with Success=false.
// The caller drives the simulation (sim.Run) to completion.
func (m *Migrator) Migrate(vm *virt.VM, dst *virt.Host, cfg Config, done func(Report)) error {
	cfg = cfg.withDefaults()
	src := vm.Host()
	if src == nil {
		return ErrNoHost
	}
	if src == dst {
		return ErrSameHost
	}
	if vm.State() != virt.StateRunning {
		return fmt.Errorf("%w: %v", ErrVMNotRunning, vm.State())
	}
	if err := dst.Reserve(vm.Config); err != nil {
		return fmt.Errorf("%w: %v", ErrDestination, err)
	}
	if err := vm.BeginMigration(); err != nil {
		dst.CancelReservation(vm.Config.Name)
		return err
	}
	run := &migration{
		m: m, vm: vm, src: src, dst: dst, cfg: cfg, done: done,
		start: m.sim.Now(),
	}
	if cfg.Deadline > 0 {
		run.deadlineEv = m.sim.Schedule(cfg.Deadline, run.deadlineExpired)
	}
	switch cfg.Algorithm {
	case PreCopy:
		run.startPreCopy()
	case PostCopy:
		run.startPostCopy()
	case StopAndCopy:
		run.startStopAndCopy()
	default:
		vm.FinishMigration(true)
		dst.CancelReservation(vm.Config.Name)
		return fmt.Errorf("migrate: unknown algorithm %d", int(cfg.Algorithm))
	}
	return nil
}

// migration is the per-run state machine.
type migration struct {
	m     *Migrator
	vm    *virt.VM
	src   *virt.Host
	dst   *virt.Host
	cfg   Config
	done  func(Report)
	start time.Duration

	rounds     []RoundStat
	totalBytes int64

	flow       *simnet.Flow   // in-flight transfer, for deadline cancellation
	deadlineEv *simtime.Event // pending deadline, cancelled on finish
	switched   bool           // residency moved to dst; deadline is moot
	ended      bool           // finish already ran; ignore late events
}

// deadlineExpired aborts the run if it is still copying state: the stalled
// transfer is cancelled and the guest keeps running on the source. After
// switchover there is nothing to roll back, so the event is a no-op.
func (r *migration) deadlineExpired() {
	if r.ended || r.switched {
		return
	}
	if r.flow != nil {
		r.flow.Cancel()
		r.flow = nil
	}
	r.abortErr(ErrDeadline, "deadline exceeded")
}

func (r *migration) pageWire(pages int) int64 {
	return int64(pages) * int64(virt.PageSize+r.cfg.PageHeaderBytes)
}

func (r *migration) finish(rep Report) {
	if r.ended {
		return
	}
	r.ended = true
	if r.deadlineEv != nil {
		r.deadlineEv.Cancel()
		r.deadlineEv = nil
	}
	rep.VM = r.vm.Config.Name
	rep.Src = r.src.Name
	rep.Dst = r.dst.Name
	rep.Algorithm = r.cfg.Algorithm
	rep.Rounds = r.rounds
	rep.TotalBytes = r.totalBytes
	rep.TotalTime = r.m.sim.Now() - r.start
	if r.done != nil {
		r.done(rep)
	}
}

func (r *migration) abort(reason string) { r.abortErr(nil, reason) }

func (r *migration) abortErr(err error, reason string) {
	if r.ended {
		return
	}
	r.dst.CancelReservation(r.vm.Config.Name)
	// The guest was never paused; it keeps running on the source.
	r.vm.FinishMigration(true)
	r.finish(Report{Success: false, Reason: reason, Err: err})
}

// switchover moves residency from src to dst and resumes the guest.
func (r *migration) switchover() error {
	if err := r.dst.CommitReservation(r.vm); err != nil {
		return err
	}
	if err := r.src.ReleaseVM(r.vm.Config.Name); err != nil {
		return err
	}
	r.switched = true
	return r.vm.FinishMigration(true)
}

// ---- pre-copy ----

func (r *migration) startPreCopy() {
	// Round 1 sends all of RAM.
	r.vm.Mem.MarkAllDirty()
	r.preCopyRound(1)
}

func (r *migration) preCopyRound(round int) {
	if r.dst.Failed() {
		r.abort("destination failed")
		return
	}
	pages := r.vm.Mem.ClearDirty()
	bytes := r.pageWire(pages)
	sendStart := r.m.sim.Now()
	f, err := r.m.net.Transfer(r.src.Name, r.dst.Name, bytes, func(res simnet.Result) {
		if r.ended {
			return
		}
		r.flow = nil
		dur := r.m.sim.Now() - sendStart
		// The guest ran (and dirtied pages) for the whole round.
		r.vm.RunFor(dur)
		r.rounds = append(r.rounds, RoundStat{Round: round, Pages: pages, Bytes: bytes, Duration: dur})
		r.totalBytes += bytes

		remaining := r.vm.Mem.DirtyCount()
		est, eerr := r.m.net.EstimateTransfer(r.src.Name, r.dst.Name, r.pageWire(remaining))
		if eerr != nil {
			r.abort(fmt.Sprintf("estimate: %v", eerr))
			return
		}
		switch {
		case est+r.cfg.ResumeOverhead <= r.cfg.DowntimeTarget:
			r.stopAndCopyFinal("converged")
		case round >= r.cfg.MaxRounds:
			r.stopAndCopyFinal("max-rounds")
		case round >= 3 && remaining >= pages:
			// The writable working set is not shrinking: dirty rate
			// has matched the link. Cut over now rather than loop.
			r.stopAndCopyFinal("not-converging")
		default:
			r.preCopyRound(round + 1)
		}
	})
	if err != nil {
		r.abort(fmt.Sprintf("transfer: %v", err))
		return
	}
	r.flow = f
}

// stopAndCopyFinal pauses the guest and moves the residual dirty set plus
// device state; its duration is the downtime.
func (r *migration) stopAndCopyFinal(reason string) {
	if r.dst.Failed() {
		r.abort("destination failed")
		return
	}
	pages := r.vm.Mem.ClearDirty()
	bytes := r.pageWire(pages) + r.cfg.DeviceStateBytes
	pauseStart := r.m.sim.Now()
	// Guest paused: no RunFor during this transfer.
	f, err := r.m.net.Transfer(r.src.Name, r.dst.Name, bytes, func(res simnet.Result) {
		if r.ended {
			return
		}
		r.flow = nil
		r.totalBytes += bytes
		r.rounds = append(r.rounds, RoundStat{
			Round: len(r.rounds) + 1, Pages: pages, Bytes: bytes,
			Duration: r.m.sim.Now() - pauseStart,
		})
		downtime := r.m.sim.Now() - pauseStart + r.cfg.ResumeOverhead
		r.m.sim.Schedule(r.cfg.ResumeOverhead, func() {
			if r.ended {
				return
			}
			if err := r.switchover(); err != nil {
				r.abort(fmt.Sprintf("switchover: %v", err))
				return
			}
			r.finish(Report{Success: true, Reason: reason, Downtime: downtime})
		})
	})
	if err != nil {
		r.abort(fmt.Sprintf("transfer: %v", err))
		return
	}
	r.flow = f
}

// ---- stop-and-copy baseline ----

func (r *migration) startStopAndCopy() {
	r.vm.Mem.MarkAllDirty()
	r.stopAndCopyFinal("stop-and-copy")
}

// ---- post-copy ----

func (r *migration) startPostCopy() {
	// Phase 1: move device state only; the VM is down just for this.
	pauseStart := r.m.sim.Now()
	f, err := r.m.net.Transfer(r.src.Name, r.dst.Name, r.cfg.DeviceStateBytes, func(res simnet.Result) {
		if r.ended {
			return
		}
		r.flow = nil
		r.totalBytes += r.cfg.DeviceStateBytes
		downtime := r.m.sim.Now() - pauseStart + r.cfg.ResumeOverhead
		r.m.sim.Schedule(r.cfg.ResumeOverhead, func() {
			if r.ended {
				return
			}
			if err := r.switchover(); err != nil {
				r.abort(fmt.Sprintf("switchover: %v", err))
				return
			}
			r.postCopyPush(downtime)
		})
	})
	if err != nil {
		r.abort(fmt.Sprintf("transfer: %v", err))
		return
	}
	r.flow = f
}

// postCopyPush streams all of RAM to the destination while the guest already
// runs there; guest accesses to un-pushed pages fault across the network.
func (r *migration) postCopyPush(downtime time.Duration) {
	total := r.pageWire(r.vm.Mem.Pages())
	pushStart := r.m.sim.Now()
	r.vm.Mem.ClearDirty()
	_, err := r.m.net.Transfer(r.src.Name, r.dst.Name, total, func(res simnet.Result) {
		if r.ended {
			return
		}
		r.totalBytes += total
		pushDur := r.m.sim.Now() - pushStart
		// Pages the guest touched during the push window; on average
		// half of them had not arrived yet when touched (uniform page
		// push order vs. uniform touch times).
		r.vm.RunFor(pushDur)
		touched := r.vm.Mem.ClearDirty()
		faults := touched / 2
		lat, _ := r.m.net.EstimateTransfer(r.src.Name, r.dst.Name, int64(virt.PageSize))
		degraded := time.Duration(faults) * lat
		r.rounds = append(r.rounds, RoundStat{Round: 1, Pages: r.vm.Mem.Pages(), Bytes: total, Duration: pushDur})
		r.finish(Report{
			Success: true, Reason: "post-copy",
			Downtime: downtime, RemoteFaults: faults, DegradedTime: degraded,
		})
	})
	if err != nil {
		// The guest already runs on dst; a push failure would strand
		// pages. Report failure without rollback (as real post-copy
		// must).
		r.finish(Report{Success: false, Reason: fmt.Sprintf("push: %v", err), Downtime: downtime})
	}
}
