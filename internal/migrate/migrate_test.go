package migrate

import (
	"errors"
	"testing"
	"time"

	"videocloud/internal/simnet"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

const (
	gb = int64(1) << 30
	mb = int64(1) << 20
)

type rig struct {
	sim *simtime.Simulator
	net *simnet.Network
	mig *Migrator
	src *virt.Host
	dst *virt.Host
}

func newRig(t *testing.T, bandwidth float64) *rig {
	t.Helper()
	sim := simtime.NewSimulator()
	net := simnet.New(sim)
	net.AddHost("node1", bandwidth, bandwidth, 100*time.Microsecond)
	net.AddHost("node2", bandwidth, bandwidth, 100*time.Microsecond)
	return &rig{
		sim: sim, net: net, mig: New(sim, net),
		src: virt.NewHost("node1", 8, 1e9, 32*gb, 500*gb, 0),
		dst: virt.NewHost("node2", 8, 1e9, 32*gb, 500*gb, 0),
	}
}

func (r *rig) runningVM(t *testing.T, name string, memBytes int64, w virt.Workload) *virt.VM {
	t.Helper()
	vm, err := r.src.CreateVM(virt.VMConfig{
		Name: name, VCPUs: 2, MemoryBytes: memBytes, DiskBytes: 10 * gb, Mode: virt.HWAssist,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Workload = w
	if err := vm.Start(); err != nil {
		t.Fatal(err)
	}
	return vm
}

func migrateAndWait(t *testing.T, r *rig, vm *virt.VM, cfg Config) Report {
	t.Helper()
	var rep Report
	got := false
	if err := r.mig.Migrate(vm, r.dst, cfg, func(rp Report) { rep = rp; got = true }); err != nil {
		t.Fatal(err)
	}
	r.sim.Run()
	if !got {
		t.Fatal("migration never completed")
	}
	return rep
}

func TestPreCopyIdleVMConverges(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "web", 1*gb, virt.IdleWorkload{})
	rep := migrateAndWait(t, r, vm, Config{Algorithm: PreCopy})

	if !rep.Success {
		t.Fatalf("migration failed: %s", rep.Reason)
	}
	if rep.Reason != "converged" {
		t.Fatalf("reason = %q, want converged", rep.Reason)
	}
	if vm.Host() != r.dst {
		t.Fatal("VM not on destination")
	}
	if vm.State() != virt.StateRunning {
		t.Fatalf("VM state = %v", vm.State())
	}
	// 1 GB over 1 Gb/s: total time a bit over 8s; downtime well under
	// 100ms for an idle guest.
	if rep.TotalTime < 8*time.Second || rep.TotalTime > 12*time.Second {
		t.Fatalf("TotalTime = %v, want ~8-12s", rep.TotalTime)
	}
	if rep.Downtime > 100*time.Millisecond {
		t.Fatalf("Downtime = %v for idle guest", rep.Downtime)
	}
	if rep.TotalBytes < 1*gb {
		t.Fatalf("TotalBytes = %d, must include full RAM", rep.TotalBytes)
	}
	// Source no longer holds capacity.
	cpu, mem, _ := r.src.Usage()
	if cpu != 0 || mem != 0 {
		t.Fatalf("source still holds %d vcpu / %d mem", cpu, mem)
	}
}

func TestPreCopyDowntimeGrowsWithDirtyRate(t *testing.T) {
	downtime := func(rate int64) time.Duration {
		r := newRig(t, 1*simnet.Gbps)
		vm := r.runningVM(t, "vm", 1*gb, virt.UniformWriter{Rate: rate})
		rep := migrateAndWait(t, r, vm, Config{Algorithm: PreCopy})
		if !rep.Success {
			t.Fatalf("rate %d: failed: %s", rate, rep.Reason)
		}
		return rep.Downtime
	}
	low := downtime(1 * mb)
	high := downtime(80 * mb)
	if high <= low {
		t.Fatalf("downtime low-rate %v !< high-rate %v", low, high)
	}
}

func TestPreCopyNonConvergingCutsOver(t *testing.T) {
	// Dirty rate (200 MB/s) beyond link bandwidth (125 MB/s): the
	// writable working set cannot shrink; the engine must cut over
	// rather than iterate forever.
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "vm", 2*gb, virt.UniformWriter{Rate: 200 * mb})
	rep := migrateAndWait(t, r, vm, Config{Algorithm: PreCopy})
	if !rep.Success {
		t.Fatalf("failed: %s", rep.Reason)
	}
	if rep.Reason != "not-converging" && rep.Reason != "max-rounds" {
		t.Fatalf("reason = %q, want non-convergence cutover", rep.Reason)
	}
	if len(rep.Rounds) > 35 {
		t.Fatalf("%d rounds, engine failed to cut over", len(rep.Rounds))
	}
}

func TestPreCopyHotspotConvergesFasterThanUniform(t *testing.T) {
	run := func(w virt.Workload) Report {
		r := newRig(t, 1*simnet.Gbps)
		vm := r.runningVM(t, "vm", 1*gb, w)
		return migrateAndWait(t, r, vm, Config{Algorithm: PreCopy})
	}
	hot := run(virt.HotspotWriter{Rate: 60 * mb})
	uni := run(virt.UniformWriter{Rate: 60 * mb})
	if !hot.Success || !uni.Success {
		t.Fatal("migration failed")
	}
	if hot.TotalBytes >= uni.TotalBytes {
		t.Fatalf("hotspot moved %d bytes >= uniform %d; WWS locality should help",
			hot.TotalBytes, uni.TotalBytes)
	}
}

func TestStopAndCopyDowntimeIsWholeTransfer(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "vm", 1*gb, virt.IdleWorkload{})
	rep := migrateAndWait(t, r, vm, Config{Algorithm: StopAndCopy})
	if !rep.Success {
		t.Fatalf("failed: %s", rep.Reason)
	}
	// Downtime ~ total time ~ RAM/bandwidth (~8.6s at 1 Gb/s).
	if rep.Downtime < 8*time.Second {
		t.Fatalf("Downtime = %v, want ~8.6s (non-live baseline)", rep.Downtime)
	}
	if vm.Host() != r.dst || vm.State() != virt.StateRunning {
		t.Fatal("VM not running on destination")
	}
}

func TestPostCopyMinimalDowntime(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "vm", 4*gb, virt.UniformWriter{Rate: 20 * mb})
	rep := migrateAndWait(t, r, vm, Config{Algorithm: PostCopy})
	if !rep.Success {
		t.Fatalf("failed: %s", rep.Reason)
	}
	// Downtime covers only the 2 MiB device state + resume: far below
	// 200ms regardless of RAM size.
	if rep.Downtime > 200*time.Millisecond {
		t.Fatalf("post-copy Downtime = %v", rep.Downtime)
	}
	if rep.RemoteFaults == 0 {
		t.Fatal("no remote faults recorded for a writing guest")
	}
	if rep.DegradedTime == 0 {
		t.Fatal("no degradation recorded")
	}
	if vm.Host() != r.dst {
		t.Fatal("VM not on destination")
	}
}

func TestAlgorithmTradeoffs(t *testing.T) {
	// The citation-level comparison behind the paper's design choice:
	// pre-copy and post-copy are live (short downtime); stop-and-copy is
	// not. Post-copy's downtime is below pre-copy's for a busy guest.
	run := func(alg Algorithm) Report {
		r := newRig(t, 1*simnet.Gbps)
		vm := r.runningVM(t, "vm", 2*gb, virt.HotspotWriter{Rate: 40 * mb})
		return migrateAndWait(t, r, vm, Config{Algorithm: alg})
	}
	pre, post, stop := run(PreCopy), run(PostCopy), run(StopAndCopy)
	if !(post.Downtime <= pre.Downtime && pre.Downtime < stop.Downtime) {
		t.Fatalf("downtime ordering violated: post=%v pre=%v stop=%v",
			post.Downtime, pre.Downtime, stop.Downtime)
	}
	if pre.TotalBytes <= stop.TotalBytes {
		t.Fatal("pre-copy should move more bytes than stop-and-copy (re-sent pages)")
	}
}

func TestMigrateRejections(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "vm", 1*gb, virt.IdleWorkload{})

	if err := r.mig.Migrate(vm, r.src, Config{}, nil); !errors.Is(err, ErrSameHost) {
		t.Fatalf("same host: %v", err)
	}
	vm.Shutdown()
	if err := r.mig.Migrate(vm, r.dst, Config{}, nil); !errors.Is(err, ErrVMNotRunning) {
		t.Fatalf("stopped VM: %v", err)
	}
	vm.Start()

	// Destination too small.
	tiny := virt.NewHost("tiny", 1, 1e9, 512*(1<<20), 1*gb, 0)
	if err := r.mig.Migrate(vm, tiny, Config{}, nil); !errors.Is(err, ErrDestination) {
		t.Fatalf("tiny destination: %v", err)
	}
	// Rejected migration leaves the VM running on the source.
	if vm.State() != virt.StateRunning || vm.Host() != r.src {
		t.Fatal("failed admission disturbed the VM")
	}
}

func TestDestinationFailureMidMigrationAborts(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "vm", 4*gb, virt.UniformWriter{Rate: 30 * mb})
	var rep Report
	if err := r.mig.Migrate(vm, r.dst, Config{Algorithm: PreCopy}, func(rp Report) { rep = rp }); err != nil {
		t.Fatal(err)
	}
	// Kill the destination partway through the first (long) round.
	r.sim.RunFor(10 * time.Second)
	r.dst.Fail()
	r.sim.Run()
	if rep.Success {
		t.Fatal("migration to failed host reported success")
	}
	// The guest survives on the source.
	if vm.State() != virt.StateRunning || vm.Host() != r.src {
		t.Fatalf("guest lost: state=%v host=%v", vm.State(), vm.Host())
	}
}

func TestReservationHeldDuringMigration(t *testing.T) {
	r := newRig(t, 1*simnet.Gbps)
	vm := r.runningVM(t, "vm", 8*gb, virt.IdleWorkload{})
	if err := r.mig.Migrate(vm, r.dst, Config{Algorithm: PreCopy}, nil); err != nil {
		t.Fatal(err)
	}
	// Mid-migration, the destination's capacity is already booked.
	r.sim.RunFor(time.Second)
	_, mem, _ := r.dst.Usage()
	if mem != 8*gb {
		t.Fatalf("destination reservation = %d, want 8GB", mem)
	}
	// A competing VM that needs the same memory must be rejected.
	if r.dst.CanFit(virt.VMConfig{Name: "x", VCPUs: 1, MemoryBytes: 30 * gb}) {
		t.Fatal("destination double-booked")
	}
	r.sim.Run()
}

func TestBandwidthScalesTotalTime(t *testing.T) {
	total := func(bw float64) time.Duration {
		r := newRig(t, bw)
		vm := r.runningVM(t, "vm", 1*gb, virt.IdleWorkload{})
		rep := migrateAndWait(t, r, vm, Config{Algorithm: PreCopy})
		if !rep.Success {
			t.Fatal(rep.Reason)
		}
		return rep.TotalTime
	}
	slow := total(1 * simnet.Gbps)
	fast := total(10 * simnet.Gbps)
	ratio := float64(slow) / float64(fast)
	if ratio < 5 || ratio > 15 {
		t.Fatalf("10x bandwidth gave %.1fx speedup", ratio)
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, a := range []Algorithm{PreCopy, PostCopy, StopAndCopy} {
		if a.String() == "" {
			t.Fatal("empty algorithm name")
		}
	}
}
