package migrate

import (
	"testing"
	"testing/quick"
	"time"

	"videocloud/internal/simnet"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

// Property tests over randomized VM sizes, dirty rates and algorithms:
// the invariants every migration must satisfy regardless of parameters.
func TestPropertyMigrationInvariants(t *testing.T) {
	f := func(memMB uint16, rateMB uint8, algRaw uint8) bool {
		mem := int64(memMB%2048+64) * mb
		rate := int64(rateMB%120) * mb
		alg := Algorithm(int(algRaw) % 3)

		sim := simtime.NewSimulator()
		net := simnet.New(sim)
		net.AddHost("a", 1*simnet.Gbps, 1*simnet.Gbps, 100*time.Microsecond)
		net.AddHost("b", 1*simnet.Gbps, 1*simnet.Gbps, 100*time.Microsecond)
		src := virt.NewHost("a", 8, 1e9, 64*gb, 500*gb, 0)
		dst := virt.NewHost("b", 8, 1e9, 64*gb, 500*gb, 0)
		vm, err := src.CreateVM(virt.VMConfig{
			Name: "vm", VCPUs: 1, MemoryBytes: mem, Mode: virt.HWAssist,
		})
		if err != nil {
			return false
		}
		if rate > 0 {
			vm.Workload = virt.UniformWriter{Rate: rate}
		} else {
			vm.Workload = virt.IdleWorkload{}
		}
		if vm.Start() != nil {
			return false
		}
		var rep Report
		done := false
		m := New(sim, net)
		if err := m.Migrate(vm, dst, Config{Algorithm: alg}, func(r Report) { rep = r; done = true }); err != nil {
			return false
		}
		sim.Run()
		if !done || !rep.Success {
			return false
		}
		// I1: the guest ends Running on the destination; source is empty.
		if vm.State() != virt.StateRunning || vm.Host() != dst {
			return false
		}
		if cpus, m2, _ := src.Usage(); cpus != 0 || m2 != 0 {
			return false
		}
		// I2: downtime never exceeds total time.
		if rep.Downtime > rep.TotalTime || rep.Downtime <= 0 || rep.TotalTime <= 0 {
			return false
		}
		// I3: at least the VM's RAM crossed the wire (every page moves
		// at least once for pre/stop; post-copy pushes all of RAM too).
		if rep.TotalBytes < mem {
			return false
		}
		// I4: the destination holds exactly the VM's reservation.
		_, dm, _ := dst.Usage()
		return dm == mem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: pre-copy downtime is never worse than stop-and-copy downtime
// for the same configuration.
func TestPropertyPreCopyNeverWorseThanStopCopy(t *testing.T) {
	f := func(memMB uint16, rateMB uint8) bool {
		mem := int64(memMB%1024+128) * mb
		rate := int64(rateMB%100) * mb
		run := func(alg Algorithm) Report {
			sim := simtime.NewSimulator()
			net := simnet.New(sim)
			net.AddHost("a", 1*simnet.Gbps, 1*simnet.Gbps, 0)
			net.AddHost("b", 1*simnet.Gbps, 1*simnet.Gbps, 0)
			src := virt.NewHost("a", 8, 1e9, 64*gb, 500*gb, 0)
			dst := virt.NewHost("b", 8, 1e9, 64*gb, 500*gb, 0)
			vm, _ := src.CreateVM(virt.VMConfig{Name: "vm", VCPUs: 1, MemoryBytes: mem, Mode: virt.HWAssist})
			if rate > 0 {
				vm.Workload = virt.HotspotWriter{Rate: rate}
			} else {
				vm.Workload = virt.IdleWorkload{}
			}
			vm.Start()
			var rep Report
			m := New(sim, net)
			m.Migrate(vm, dst, Config{Algorithm: alg}, func(r Report) { rep = r })
			sim.Run()
			return rep
		}
		pre := run(PreCopy)
		stop := run(StopAndCopy)
		if !pre.Success || !stop.Success {
			return false
		}
		// Allow a hair of slack for the resume overhead constant.
		return pre.Downtime <= stop.Downtime+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
