package nebula

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"videocloud/internal/tenant"
	"videocloud/internal/virt"
)

// API serves the cloud's management interface over HTTP — the stand-in for
// the web UI of Figures 7-10 ("this system uses a web-based interface to
// manage virtual machines"). Endpoints are JSON except /api/metrics.
//
//	GET    /api/hosts              host pool with utilization
//	GET    /api/vms                all instances
//	GET    /api/vms/{id}           one instance, with state history
//	POST   /api/vms                submit a template (TemplateRequest)
//	POST   /api/vms/{id}/migrate   {"host": "node2"} — live migration
//	POST   /api/vms/{id}/shutdown  graceful shutdown
//	GET    /api/monitor            monitoring samples
//	GET    /api/metrics            text metrics dump
type API struct {
	cloud *Cloud
	mux   *http.ServeMux
	auth  *tenant.Registry // nil = open API (apiauth.go)
}

// NewAPI returns the management API for cloud.
func NewAPI(cloud *Cloud) *API {
	a := &API{cloud: cloud, mux: http.NewServeMux()}
	a.mux.HandleFunc("GET /api/hosts", a.hosts)
	a.mux.HandleFunc("GET /api/vms", a.vms)
	a.mux.HandleFunc("GET /api/vms/{id}", a.vm)
	a.mux.HandleFunc("POST /api/vms", a.submit)
	a.mux.HandleFunc("POST /api/vms/{id}/migrate", a.migrate)
	a.mux.HandleFunc("POST /api/vms/{id}/shutdown", a.shutdown)
	a.mux.HandleFunc("GET /api/monitor", a.monitor)
	a.mux.HandleFunc("GET /api/metrics", a.metrics)
	a.mux.HandleFunc("POST /api/hosts/{name}/evacuate", a.evacuate)
	a.mux.HandleFunc("POST /api/hosts/{name}/enable", a.enable)
	a.mux.HandleFunc("POST /api/consolidate", a.consolidate)
	a.mux.HandleFunc("POST /api/vms/{id}/suspend", a.suspend)
	a.mux.HandleFunc("POST /api/vms/{id}/resume", a.resume)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// HostInfo is the wire form of a host row.
type HostInfo struct {
	Name      string  `json:"name"`
	Cores     int     `json:"cores"`
	MemoryMB  int64   `json:"memory_mb"`
	UsedMemMB int64   `json:"used_mem_mb"`
	UsedVCPUs int     `json:"used_vcpus"`
	CPUUtil   float64 `json:"cpu_util"`
	Failed    bool    `json:"failed"`
	VMCount   int     `json:"vm_count"`
}

func (a *API) hosts(w http.ResponseWriter, r *http.Request) {
	var out []HostInfo
	for _, h := range a.cloud.Hosts() {
		vcpus, mem, _ := h.Usage()
		out = append(out, HostInfo{
			Name: h.Name, Cores: h.Cores,
			MemoryMB: h.MemoryBytes >> 20, UsedMemMB: mem >> 20,
			UsedVCPUs: vcpus, CPUUtil: h.CPUUtilization(),
			Failed: h.Failed(), VMCount: len(h.VMs()),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// VMWire is the wire form of a VM row.
type VMWire struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	Host  string `json:"host"`
	IP    string `json:"ip"`
	Group string `json:"group,omitempty"`
	Owner string `json:"owner,omitempty"`
}

func (a *API) vms(w http.ResponseWriter, r *http.Request) {
	id, ok := a.authenticate(w, r)
	if !ok {
		return
	}
	var out []VMWire
	for _, info := range a.cloud.Snapshot() {
		if !id.sees(info.Owner) {
			continue // another tenant's instance: invisible, not 403
		}
		out = append(out, VMWire{
			ID: info.ID, Name: info.Name, State: info.State.String(),
			Host: info.Host, IP: info.IP, Group: info.Group, Owner: info.Owner,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// VMDetail extends VMWire with history and migration data.
type VMDetail struct {
	VMWire
	FailReason string           `json:"fail_reason,omitempty"`
	History    []TransitionWire `json:"history"`
	Migration  *MigrationWire   `json:"last_migration,omitempty"`
}

// TransitionWire is one state-history entry.
type TransitionWire struct {
	AtSeconds float64 `json:"at_seconds"`
	From      string  `json:"from"`
	To        string  `json:"to"`
}

// MigrationWire summarises a migration report.
type MigrationWire struct {
	Success        bool    `json:"success"`
	Reason         string  `json:"reason"`
	Src            string  `json:"src"`
	Dst            string  `json:"dst"`
	Rounds         int     `json:"rounds"`
	TotalSeconds   float64 `json:"total_seconds"`
	DowntimeMillis float64 `json:"downtime_ms"`
}

func (a *API) vm(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok {
		return
	}
	id, ok := a.authorizeVM(w, r, ident)
	if !ok {
		return
	}
	rec, err := a.cloud.VM(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	a.cloud.mu.Lock()
	detail := VMDetail{
		VMWire: VMWire{
			ID: rec.ID, Name: rec.Name(), State: rec.State.String(),
			Host: rec.HostName, IP: rec.IP, Group: rec.Template.Group,
			Owner: rec.Template.Owner,
		},
		FailReason: rec.FailReason,
	}
	for _, tr := range rec.StateLog {
		detail.History = append(detail.History, TransitionWire{
			AtSeconds: tr.At.Seconds(), From: tr.From.String(), To: tr.To.String(),
		})
	}
	if m := rec.LastMigration; m != nil {
		detail.Migration = &MigrationWire{
			Success: m.Success, Reason: m.Reason, Src: m.Src, Dst: m.Dst,
			Rounds: len(m.Rounds), TotalSeconds: m.TotalTime.Seconds(),
			DowntimeMillis: float64(m.Downtime) / float64(time.Millisecond),
		}
	}
	a.cloud.mu.Unlock()
	writeJSON(w, http.StatusOK, detail)
}

// TemplateRequest is the JSON submission format. Workload selects a guest
// behaviour model by name since behaviours are code, not data.
type TemplateRequest struct {
	Name      string            `json:"name"`
	VCPUs     int               `json:"vcpus"`
	MemoryMB  int64             `json:"memory_mb"`
	DiskGB    int64             `json:"disk_gb"`
	Image     string            `json:"image"`
	FullClone bool              `json:"full_clone,omitempty"`
	Group     string            `json:"group,omitempty"`
	Requeue   bool              `json:"requeue,omitempty"`
	Workload  string            `json:"workload,omitempty"`  // idle|uniform|hotspot|streaming
	RateMBps  int64             `json:"rate_mbps,omitempty"` // dirty/stream rate for the workload
	Context   map[string]string `json:"context,omitempty"`
	// Owner is honoured only for the operator; tenant tokens always get
	// their own tenant stamped regardless of what they send.
	Owner string `json:"owner,omitempty"`
}

// workloadByName builds the named guest workload.
func workloadByName(name string, rateMBps int64) (virt.Workload, error) {
	rate := rateMBps << 20
	switch name {
	case "", "idle":
		return virt.IdleWorkload{}, nil
	case "uniform":
		return virt.UniformWriter{Rate: rate}, nil
	case "hotspot":
		return virt.HotspotWriter{Rate: rate}, nil
	case "streaming":
		return &virt.StreamingServer{StreamRate: rate}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireWriter(w, ident) {
		return
	}
	var req TemplateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	wl, err := workloadByName(req.Workload, req.RateMBps)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	owner := req.Owner
	if !ident.operator() {
		owner = ident.ten.Name() // tenants can't submit as someone else
	}
	id, err := a.cloud.Submit(Template{
		Name: req.Name, VCPUs: req.VCPUs,
		MemoryBytes: req.MemoryMB << 20, DiskBytes: req.DiskGB << 30,
		Image: req.Image, FullClone: req.FullClone,
		Group: req.Group, Requeue: req.Requeue,
		Workload: wl, Context: req.Context, Owner: owner,
	})
	if err != nil {
		if !writeQuotaErr(w, err) {
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

func (a *API) migrate(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireWriter(w, ident) {
		return
	}
	id, ok := a.authorizeVM(w, r, ident)
	if !ok {
		return
	}
	var body struct {
		Host string `json:"host"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := a.cloud.LiveMigrate(id, body.Host); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "migrating"})
}

func (a *API) shutdown(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireWriter(w, ident) {
		return
	}
	id, ok := a.authorizeVM(w, r, ident)
	if !ok {
		return
	}
	if err := a.cloud.Shutdown(id); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "shutting-down"})
}

// SampleWire is the wire form of a monitoring sample.
type SampleWire struct {
	AtSeconds  float64 `json:"at_seconds"`
	Host       string  `json:"host"`
	CPUUtil    float64 `json:"cpu_util"`
	UsedMemMB  int64   `json:"used_mem_mb"`
	RunningVMs int     `json:"running_vms"`
}

func (a *API) monitor(w http.ResponseWriter, r *http.Request) {
	var out []SampleWire
	for _, s := range a.cloud.Monitor().Samples() {
		out = append(out, SampleWire{
			AtSeconds: s.At.Seconds(), Host: s.Host, CPUUtil: s.CPUUtil,
			UsedMemMB: s.UsedMem >> 20, RunningVMs: s.RunningVMs,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, a.cloud.Metrics().Dump())
}

func (a *API) evacuate(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireOperator(w, ident) {
		return
	}
	started, err := a.cloud.Evacuate(r.PathValue("name"))
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"migrations_started": started})
}

func (a *API) enable(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireOperator(w, ident) {
		return
	}
	if err := a.cloud.Enable(r.PathValue("name")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "enabled"})
}

func (a *API) suspend(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireWriter(w, ident) {
		return
	}
	id, ok := a.authorizeVM(w, r, ident)
	if !ok {
		return
	}
	if err := a.cloud.Suspend(id); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "suspended"})
}

func (a *API) resume(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireWriter(w, ident) {
		return
	}
	id, ok := a.authorizeVM(w, r, ident)
	if !ok {
		return
	}
	if err := a.cloud.Resume(id); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "resuming"})
}

func (a *API) consolidate(w http.ResponseWriter, r *http.Request) {
	ident, ok := a.authenticate(w, r)
	if !ok || !a.requireOperator(w, ident) {
		return
	}
	plan := a.cloud.Consolidate()
	writeJSON(w, http.StatusAccepted, map[string]int{
		"moves":           len(plan.Moves),
		"candidate_hosts": plan.CandidateHosts,
	})
}
