package nebula

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func apiRig(t *testing.T) (*Cloud, *httptest.Server) {
	t.Helper()
	c := testCloud(t, 2, Options{})
	srv := httptest.NewServer(NewAPI(c))
	t.Cleanup(srv.Close)
	return c, srv
}

func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestAPISubmitAndList(t *testing.T) {
	c, srv := apiRig(t)
	var created map[string]int
	code := doJSON(t, "POST", srv.URL+"/api/vms",
		`{"name":"web","vcpus":2,"memory_mb":2048,"disk_gb":10,"image":"ubuntu-10.04","workload":"streaming","rate_mbps":8}`,
		&created)
	if code != http.StatusCreated {
		t.Fatalf("status = %d", code)
	}
	id := created["id"]
	if id == 0 {
		t.Fatal("no id returned")
	}
	c.WaitIdle()

	var vms []VMWire
	if code := doJSON(t, "GET", srv.URL+"/api/vms", "", &vms); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(vms) != 1 || vms[0].State != "running" || vms[0].IP == "" {
		t.Fatalf("vms = %+v", vms)
	}

	var detail VMDetail
	doJSON(t, "GET", fmt.Sprintf("%s/api/vms/%d", srv.URL, id), "", &detail)
	if len(detail.History) < 4 {
		t.Fatalf("history = %+v", detail.History)
	}
}

func TestAPIHosts(t *testing.T) {
	c, srv := apiRig(t)
	doJSON(t, "POST", srv.URL+"/api/vms",
		`{"name":"web","vcpus":2,"memory_mb":2048,"disk_gb":10,"image":"ubuntu-10.04"}`, nil)
	c.WaitIdle()
	var hosts []HostInfo
	doJSON(t, "GET", srv.URL+"/api/hosts", "", &hosts)
	if len(hosts) != 2 {
		t.Fatalf("%d hosts", len(hosts))
	}
	total := 0
	for _, h := range hosts {
		total += h.VMCount
	}
	if total != 1 {
		t.Fatalf("total VMs across hosts = %d", total)
	}
}

func TestAPIMigrateFlow(t *testing.T) {
	c, srv := apiRig(t)
	var created map[string]int
	doJSON(t, "POST", srv.URL+"/api/vms",
		`{"name":"web","vcpus":2,"memory_mb":1024,"disk_gb":10,"image":"ubuntu-10.04"}`, &created)
	c.WaitIdle()
	var detail VMDetail
	doJSON(t, "GET", fmt.Sprintf("%s/api/vms/%d", srv.URL, created["id"]), "", &detail)
	dst := "node2"
	if detail.Host == "node2" {
		dst = "node1"
	}
	code := doJSON(t, "POST", fmt.Sprintf("%s/api/vms/%d/migrate", srv.URL, created["id"]),
		fmt.Sprintf(`{"host":%q}`, dst), nil)
	if code != http.StatusAccepted {
		t.Fatalf("migrate status = %d", code)
	}
	c.WaitIdle()
	doJSON(t, "GET", fmt.Sprintf("%s/api/vms/%d", srv.URL, created["id"]), "", &detail)
	if detail.Host != dst || detail.State != "running" {
		t.Fatalf("after migrate: %+v", detail.VMWire)
	}
	if detail.Migration == nil || !detail.Migration.Success {
		t.Fatal("no migration report in detail")
	}
	if detail.Migration.DowntimeMillis <= 0 {
		t.Fatal("zero downtime reported")
	}
}

func TestAPIShutdown(t *testing.T) {
	c, srv := apiRig(t)
	var created map[string]int
	doJSON(t, "POST", srv.URL+"/api/vms",
		`{"name":"web","vcpus":1,"memory_mb":1024,"disk_gb":1,"image":"ubuntu-10.04"}`, &created)
	c.WaitIdle()
	code := doJSON(t, "POST", fmt.Sprintf("%s/api/vms/%d/shutdown", srv.URL, created["id"]), "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("status = %d", code)
	}
	c.WaitIdle()
	var detail VMDetail
	doJSON(t, "GET", fmt.Sprintf("%s/api/vms/%d", srv.URL, created["id"]), "", &detail)
	if detail.State != "done" {
		t.Fatalf("state = %s", detail.State)
	}
}

func TestAPIErrors(t *testing.T) {
	_, srv := apiRig(t)
	if code := doJSON(t, "GET", srv.URL+"/api/vms/999", "", nil); code != http.StatusNotFound {
		t.Fatalf("missing vm status = %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/api/vms/abc", "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad id status = %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/vms", `{"name":"x"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid template status = %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/vms", `not json`, nil); code != http.StatusBadRequest {
		t.Fatalf("garbage body status = %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/vms",
		`{"name":"x","vcpus":1,"memory_mb":512,"image":"ubuntu-10.04","workload":"quantum"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown workload status = %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/vms/1/migrate", `{"host":"node9"}`, nil); code != http.StatusConflict {
		t.Fatalf("bad migrate status = %d", code)
	}
}

func TestAPIMonitorAndMetrics(t *testing.T) {
	c, srv := apiRig(t)
	doJSON(t, "POST", srv.URL+"/api/vms",
		`{"name":"web","vcpus":1,"memory_mb":1024,"disk_gb":1,"image":"ubuntu-10.04","workload":"uniform","rate_mbps":10}`, nil)
	c.WaitIdle()
	c.Monitor().SampleNow()
	var samples []SampleWire
	doJSON(t, "GET", srv.URL+"/api/monitor", "", &samples)
	if len(samples) != 2 { // one per host
		t.Fatalf("%d samples", len(samples))
	}
	resp, err := http.Get(srv.URL + "/api/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "vms_submitted") {
		t.Fatalf("metrics output missing counters: %s", buf[:n])
	}
}

func TestAPIEvacuateAndConsolidate(t *testing.T) {
	c, srv := apiRig(t)
	doJSON(t, "POST", srv.URL+"/api/vms",
		`{"name":"web","vcpus":1,"memory_mb":1024,"disk_gb":1,"image":"ubuntu-10.04"}`, nil)
	c.WaitIdle()
	var detail []VMWire
	doJSON(t, "GET", srv.URL+"/api/vms", "", &detail)
	host := detail[0].Host

	var out map[string]int
	code := doJSON(t, "POST", fmt.Sprintf("%s/api/hosts/%s/evacuate", srv.URL, host), "", &out)
	if code != http.StatusAccepted || out["migrations_started"] != 1 {
		t.Fatalf("evacuate: %d %v", code, out)
	}
	c.WaitIdle()
	doJSON(t, "GET", srv.URL+"/api/vms", "", &detail)
	if detail[0].Host == host {
		t.Fatal("VM not evacuated")
	}
	if code := doJSON(t, "POST", fmt.Sprintf("%s/api/hosts/%s/enable", srv.URL, host), "", nil); code != http.StatusOK {
		t.Fatalf("enable status %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/api/hosts/ghost/evacuate", "", nil); code != http.StatusConflict {
		t.Fatalf("ghost evacuate status %d", code)
	}
	var plan map[string]int
	if code := doJSON(t, "POST", srv.URL+"/api/consolidate", "", &plan); code != http.StatusAccepted {
		t.Fatalf("consolidate status %d", code)
	}
	c.WaitIdle()
}

func TestPacerAdvancesVirtualTime(t *testing.T) {
	c := testCloud(t, 1, Options{})
	p := StartPacer(c, 100) // 100x
	defer p.Stop()
	deadline := time.After(3 * time.Second)
	for c.Now() < 2*time.Second {
		select {
		case <-deadline:
			t.Fatalf("pacer advanced only to %v", c.Now())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestMonitorSeriesAndTable(t *testing.T) {
	c := testCloud(t, 2, Options{})
	c.Submit(webTemplate("web"))
	c.Monitor().Enable(10 * time.Second)
	c.RunFor(65 * time.Second)
	c.Monitor().Disable()
	c.WaitIdle()
	series := c.Monitor().HostSeries("node1")
	if len(series) != 6 {
		t.Fatalf("node1 series has %d samples, want 6", len(series))
	}
	all := c.Monitor().Samples()
	if len(all) != 12 {
		t.Fatalf("total samples = %d, want 12", len(all))
	}
	tbl := c.Monitor().UtilizationTable().String()
	if !strings.Contains(tbl, "node1") || !strings.Contains(tbl, "node2") {
		t.Fatalf("table missing hosts:\n%s", tbl)
	}
	// The VM's host shows committed memory.
	found := false
	for _, s := range all {
		if s.UsedMem > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no sample recorded the running VM's memory")
	}
}
