package nebula

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"videocloud/internal/tenant"
)

// Token authentication for the management API. With SetAuth the API becomes
// multi-tenant: every request needs a Bearer token, instances are scoped to
// the token's tenant, submissions are stamped with it and pass quota
// admission (429 + Retry-After when over), and infrastructure operations
// (host maintenance, consolidation) need the operator — an admin token of
// the default tenant. Without SetAuth the API stays open, single-tenant.

// SetAuth enables Bearer-token authentication against reg. Call before
// serving traffic; a nil registry keeps the API open.
func (a *API) SetAuth(reg *tenant.Registry) { a.auth = reg }

// apiIdentity is the resolved caller of one request.
type apiIdentity struct {
	ten  *tenant.Tenant
	role tenant.Role
	open bool // auth disabled: the caller is the implicit operator
}

// operator reports whether the caller runs the cloud itself.
func (id apiIdentity) operator() bool {
	return id.open || (id.role == tenant.RoleAdmin && id.ten.IsDefault())
}

// sees reports whether the caller may observe or act on a VM with the given
// owner. Unowned instances belong to the default tenant.
func (id apiIdentity) sees(owner string) bool {
	if id.operator() {
		return true
	}
	if owner == "" {
		return id.ten.IsDefault()
	}
	return owner == id.ten.Name()
}

// authenticate resolves the request's identity. ok=false means a 401 was
// written. With auth disabled every caller is the operator.
func (a *API) authenticate(w http.ResponseWriter, r *http.Request) (apiIdentity, bool) {
	if a.auth == nil {
		return apiIdentity{open: true}, true
	}
	auth := r.Header.Get("Authorization")
	tok, found := strings.CutPrefix(auth, "Bearer ")
	if auth == "" || !found {
		writeErr(w, http.StatusUnauthorized, errors.New("nebula: Bearer token required"))
		return apiIdentity{}, false
	}
	ten, role, err := a.auth.Authenticate(tok)
	if err != nil {
		a.cloud.Metrics().Counter("api_auth_failures").Inc()
		writeErr(w, http.StatusUnauthorized, errors.New("nebula: invalid or revoked token"))
		return apiIdentity{}, false
	}
	return apiIdentity{ten: ten, role: role}, true
}

// requireWriter rejects read-only tokens on mutating endpoints (403).
func (a *API) requireWriter(w http.ResponseWriter, id apiIdentity) bool {
	if id.open || id.role.CanWrite() {
		return true
	}
	writeErr(w, http.StatusForbidden, errors.New("nebula: token is read-only"))
	return false
}

// requireOperator guards infrastructure endpoints (403 for tenant tokens).
func (a *API) requireOperator(w http.ResponseWriter, id apiIdentity) bool {
	if id.operator() {
		return true
	}
	writeErr(w, http.StatusForbidden, errors.New("nebula: operator token required"))
	return false
}

// authorizeVM checks that the caller may act on instance id (403 when it
// belongs to another tenant; the usual not-found/bad-id errors otherwise).
// ok=false means a response was written.
func (a *API) authorizeVM(w http.ResponseWriter, r *http.Request, id apiIdentity) (int, bool) {
	vmID, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad id: %v", err))
		return 0, false
	}
	if !id.operator() {
		owner, err := a.cloud.VMOwner(vmID)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return 0, false
		}
		if !id.sees(owner) {
			writeErr(w, http.StatusForbidden, errors.New("nebula: VM belongs to another tenant"))
			return 0, false
		}
	}
	return vmID, true
}

// writeQuotaErr maps tenant admission failures to 429 + Retry-After; other
// submission errors stay 400. Reports whether err was a quota rejection.
func writeQuotaErr(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, tenant.ErrQuotaExceeded) {
		return false
	}
	if secs, ok := tenant.RetryAfterSeconds(err); ok {
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeErr(w, http.StatusTooManyRequests, err)
	return true
}

// VMOwner returns the owner of instance id.
func (c *Cloud) VMOwner(id int) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.vms[id]
	if !ok {
		return "", fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	return rec.Template.Owner, nil
}
