package nebula

import (
	"errors"
	"fmt"
	"time"

	"videocloud/internal/simtime"
)

// AutoScaler grows and shrinks a fleet of identical VMs to track offered
// demand — the elasticity the paper's conclusion invokes ("with the
// scalability of cloud hosting, streaming a video can become seamless") and
// that its reference [28] (quality-assured cloud bandwidth auto-scaling for
// VoD) studies in depth.
//
// Each tick the scaler reads the demand metric, computes per-instance
// utilization against InstanceCapacity, and launches one instance above
// HiLoad or retires the newest instance below LoLoad, clamped to
// [Min, Max]. One move per tick plus hysteresis between the thresholds
// keeps the fleet from oscillating.
type AutoScaler struct {
	cloud *Cloud
	// Template stamps out fleet instances; instance names get -N
	// suffixes via the usual record naming.
	Template Template
	// Min and Max bound the fleet size.
	Min, Max int
	// InstanceCapacity is the demand one instance absorbs (default 1).
	InstanceCapacity float64
	// HiLoad/LoLoad are per-instance utilization thresholds (defaults
	// 0.8 and 0.3). LoLoad must stay below HiLoad for hysteresis.
	HiLoad, LoLoad float64
	// Metric returns the offered demand at the given virtual time, in
	// the same units as InstanceCapacity. It runs inside the simulation
	// tick (the cloud lock is held): it must not call Cloud methods.
	Metric func(now time.Duration) float64
	// Drain configures graceful scale-down (drain.go): the retired
	// instance stops taking work (OnDrain), finishes its in-flight work
	// (InFlight, bounded by Deadline, past which OnExpire requeues it),
	// and only then shuts down. The zero value drains an idle instance at
	// the first poll, preserving the old scaler's timing for idle fleets.
	Drain DrainOptions

	ticker    *simtime.Event
	instances []int
	history   []ScaleSample
}

// ScaleSample records one scaler decision point.
type ScaleSample struct {
	At        time.Duration
	Load      float64
	Instances int
	Util      float64
}

// ErrScalerConfig reports invalid scaler parameters.
var ErrScalerConfig = errors.New("nebula: invalid auto-scaler configuration")

// NewAutoScaler binds a scaler to a cloud. Call Start to launch the fleet.
func NewAutoScaler(cloud *Cloud, tpl Template, min, max int) *AutoScaler {
	return &AutoScaler{
		cloud: cloud, Template: tpl, Min: min, Max: max,
		InstanceCapacity: 1, HiLoad: 0.8, LoLoad: 0.3,
	}
}

func (a *AutoScaler) validate() error {
	if a.Min < 1 || a.Max < a.Min {
		return fmt.Errorf("%w: min=%d max=%d", ErrScalerConfig, a.Min, a.Max)
	}
	if a.Metric == nil {
		return fmt.Errorf("%w: nil Metric", ErrScalerConfig)
	}
	if a.InstanceCapacity <= 0 || a.LoLoad >= a.HiLoad || a.LoLoad < 0 {
		return fmt.Errorf("%w: capacity=%v thresholds=%v/%v",
			ErrScalerConfig, a.InstanceCapacity, a.LoLoad, a.HiLoad)
	}
	return nil
}

// Start submits the minimum fleet and begins evaluating every interval of
// virtual time.
func (a *AutoScaler) Start(interval time.Duration) error {
	if err := a.validate(); err != nil {
		return err
	}
	c := a.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if a.ticker != nil {
		return fmt.Errorf("%w: already started", ErrScalerConfig)
	}
	for i := 0; i < a.Min; i++ {
		id, err := c.submitLocked(a.Template)
		if err != nil {
			return err
		}
		a.instances = append(a.instances, id)
	}
	a.ticker = c.sim.Every(interval, a.step)
	return nil
}

// Stop halts evaluation (the fleet stays as it is).
func (a *AutoScaler) Stop() {
	c := a.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if a.ticker != nil {
		a.ticker.Cancel()
		a.ticker = nil
	}
}

// step runs with the cloud lock held (simulation callback).
func (a *AutoScaler) step() {
	c := a.cloud
	// Track instances that are alive (anything before Shutdown/Done).
	// Draining instances stay tracked — they must not be retired twice —
	// but provide no capacity.
	alive := a.instances[:0]
	n := 0
	for _, id := range a.instances {
		rec := c.vms[id]
		if rec == nil {
			continue
		}
		switch rec.State {
		case Pending, Prolog, Boot, Running, Migrating, Suspended:
			alive = append(alive, id)
			n++
		case Draining:
			alive = append(alive, id)
		}
	}
	a.instances = alive

	load := a.Metric(c.sim.Now())
	util := 0.0
	if n > 0 {
		util = load / (a.InstanceCapacity * float64(n))
	}
	a.history = append(a.history, ScaleSample{
		At: c.sim.Now(), Load: load, Instances: n, Util: util,
	})

	switch {
	case (n == 0 || util > a.HiLoad) && n < a.Max:
		if id, err := c.submitLocked(a.Template); err == nil {
			a.instances = append(a.instances, id)
			c.reg.Counter("autoscale_out").Inc()
		}
	case util < a.LoLoad && n > a.Min:
		// Retire the newest running instance (oldest-first stability) —
		// gracefully: drain first, shut down only once its in-flight work
		// completes (or the drain deadline requeues the remainder).
		for i := len(a.instances) - 1; i >= 0; i-- {
			id := a.instances[i]
			if rec := c.vms[id]; rec != nil && rec.State == Running {
				if err := c.drainLocked(rec, a.Drain); err == nil {
					c.reg.Counter("autoscale_in").Inc()
					break
				}
			}
		}
	}
}

// Fleet returns the current instance IDs.
func (a *AutoScaler) Fleet() []int {
	c := a.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), a.instances...)
}

// History returns all decision samples.
func (a *AutoScaler) History() []ScaleSample {
	c := a.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ScaleSample(nil), a.history...)
}
