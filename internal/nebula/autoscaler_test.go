package nebula

import (
	"errors"
	"testing"
	"time"
)

func scalerCloud(t *testing.T) *Cloud {
	t.Helper()
	c := testCloud(t, 8, Options{})
	return c
}

func streamerTemplate() Template {
	tpl := webTemplate("streamer")
	tpl.VCPUs = 1
	tpl.MemoryBytes = 1 * gb
	return tpl
}

func TestAutoScalerTracksDemandWave(t *testing.T) {
	c := scalerCloud(t)
	// Demand: 1 unit for the first hour, 6 units for two hours, then 1.
	metric := func(now time.Duration) float64 {
		switch {
		case now < time.Hour:
			return 1
		case now < 3*time.Hour:
			return 6
		default:
			return 1
		}
	}
	a := NewAutoScaler(c, streamerTemplate(), 1, 8)
	a.Metric = metric
	if err := a.Start(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.RunFor(4 * time.Hour)
	a.Stop()
	c.WaitIdle()

	hist := a.History()
	if len(hist) == 0 {
		t.Fatal("no samples")
	}
	peak, trough := 0, 99
	var lastPhase int
	for _, s := range hist {
		if s.At > time.Hour+30*time.Minute && s.At < 3*time.Hour && s.Instances > peak {
			peak = s.Instances
		}
		if s.At > 3*time.Hour+30*time.Minute && s.Instances < trough {
			trough = s.Instances
		}
		lastPhase = s.Instances
	}
	// 6 units at 0.8 threshold needs ~8 instances; at least 6.
	if peak < 6 {
		t.Fatalf("peak fleet = %d, want >= 6", peak)
	}
	// After the wave the fleet shrinks to the hysteresis floor: load 1
	// with LoLoad 0.3 settles at 3 instances (1/3 ≈ 0.33 > 0.3).
	if trough > 3 {
		t.Fatalf("post-peak fleet = %d, want <= 3", trough)
	}
	if lastPhase > 3 {
		t.Fatalf("final fleet = %d", lastPhase)
	}
	if c.Metrics().Counter("autoscale_out").Value() == 0 ||
		c.Metrics().Counter("autoscale_in").Value() == 0 {
		t.Fatal("scaling events not counted")
	}
}

func TestAutoScalerRespectsBounds(t *testing.T) {
	c := scalerCloud(t)
	a := NewAutoScaler(c, streamerTemplate(), 2, 3)
	a.Metric = func(time.Duration) float64 { return 100 } // infinite demand
	if err := a.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Hour)
	a.Stop()
	c.WaitIdle()
	if n := len(a.Fleet()); n != 3 {
		t.Fatalf("fleet = %d, want Max=3", n)
	}
	// Zero demand never goes below Min.
	c2 := scalerCloud(t)
	a2 := NewAutoScaler(c2, streamerTemplate(), 2, 5)
	a2.Metric = func(time.Duration) float64 { return 0 }
	if err := a2.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	c2.RunFor(time.Hour)
	a2.Stop()
	c2.WaitIdle()
	if n := len(a2.Fleet()); n != 2 {
		t.Fatalf("fleet = %d, want Min=2", n)
	}
}

func TestAutoScalerHysteresisNoFlapping(t *testing.T) {
	c := scalerCloud(t)
	// Constant demand that sits between the thresholds for 3 instances:
	// util = 2.0/3 ≈ 0.67, inside (0.3, 0.8) — no moves should happen
	// once the fleet reaches 3.
	a := NewAutoScaler(c, streamerTemplate(), 3, 8)
	a.Metric = func(time.Duration) float64 { return 2.0 }
	if err := a.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Hour)
	a.Stop()
	c.WaitIdle()
	if n := len(a.Fleet()); n != 3 {
		t.Fatalf("fleet = %d, want steady 3", n)
	}
	if got := c.Metrics().Counter("autoscale_out").Value() +
		c.Metrics().Counter("autoscale_in").Value(); got != 0 {
		t.Fatalf("%d scaling moves under steady demand", got)
	}
}

func TestAutoScalerValidation(t *testing.T) {
	c := scalerCloud(t)
	cases := []*AutoScaler{
		func() *AutoScaler { a := NewAutoScaler(c, streamerTemplate(), 0, 3); a.Metric = zeroMetric; return a }(),
		func() *AutoScaler { a := NewAutoScaler(c, streamerTemplate(), 3, 1); a.Metric = zeroMetric; return a }(),
		NewAutoScaler(c, streamerTemplate(), 1, 3), // nil metric
		func() *AutoScaler {
			a := NewAutoScaler(c, streamerTemplate(), 1, 3)
			a.Metric = zeroMetric
			a.LoLoad, a.HiLoad = 0.9, 0.5
			return a
		}(),
	}
	for i, a := range cases {
		if err := a.Start(time.Minute); !errors.Is(err, ErrScalerConfig) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
	// Double start rejected.
	ok := NewAutoScaler(c, streamerTemplate(), 1, 3)
	ok.Metric = zeroMetric
	if err := ok.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := ok.Start(time.Minute); !errors.Is(err, ErrScalerConfig) {
		t.Fatalf("double start: %v", err)
	}
	ok.Stop()
	c.WaitIdle()
}

func zeroMetric(time.Duration) float64 { return 0 }
