package nebula

import (
	"errors"
	"fmt"
	"time"
)

// This file implements graceful VM retirement: scale-down must drain, never
// kill. A retiring instance enters Draining — the farm/ingress stop assigning
// it new work (OnDrain) — and the orchestrator polls the instance's in-flight
// count until it reaches zero, then shuts the VM down. A drain deadline bounds
// the wait; past it OnExpire fires so the workload layer can requeue whatever
// is still running (the PR 4 recovery path), and the VM terminates anyway.

// Default drain tuning (virtual time).
const (
	DefaultDrainDeadline = 30 * time.Second
	DefaultDrainPoll     = 250 * time.Millisecond
)

// ErrDrainActive reports an operation that conflicts with an in-progress
// drain.
var ErrDrainActive = errors.New("nebula: drain already in progress")

// DrainOptions configures one graceful retirement. Every hook runs inside a
// simulation callback with the cloud mutex held: hooks must not call Cloud
// methods (they may touch external state, e.g. the web farm pool).
type DrainOptions struct {
	// Deadline bounds the drain in virtual time (default 30s). Past it the
	// VM shuts down anyway and OnExpire fires first.
	Deadline time.Duration
	// PollInterval is how often the in-flight count is re-checked
	// (default 250ms of virtual time).
	PollInterval time.Duration
	// InFlight reports work still executing on the instance, by VM name.
	// nil means the instance is idle: the drain completes at the first poll.
	InFlight func(name string) int
	// OnDrain fires when the drain starts: stop assigning the instance work.
	OnDrain func(name string)
	// OnExpire fires if the deadline passes with work still in flight (or
	// the instance's host dies mid-drain): cancel and requeue that work.
	OnExpire func(name string)
	// OnRetire fires when the instance leaves service for good — after a
	// completed or expired drain, just before shutdown begins.
	OnRetire func(name string)
}

func (o DrainOptions) withDefaults() DrainOptions {
	if o.Deadline <= 0 {
		o.Deadline = DefaultDrainDeadline
	}
	if o.PollInterval <= 0 {
		o.PollInterval = DefaultDrainPoll
	}
	return o
}

// drainJob is the orchestrator's bookkeeping for one in-progress drain.
type drainJob struct {
	opts    DrainOptions
	started time.Duration
}

// Drain gracefully retires a running instance: it enters Draining, new work
// stops being assigned (opts.OnDrain), in-flight work finishes (polled via
// opts.InFlight, bounded by opts.Deadline), then the VM shuts down. Progress
// runs in virtual time; drive with RunFor/WaitIdle.
func (c *Cloud) Drain(id int, opts DrainOptions) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	return c.drainLocked(rec, opts)
}

// drainLocked starts a graceful retirement with c.mu held.
func (c *Cloud) drainLocked(rec *VMRecord, opts DrainOptions) error {
	if rec.State != Running {
		return fmt.Errorf("%w: drain from %v", ErrBadState, rec.State)
	}
	if _, active := c.draining[rec.ID]; active {
		return fmt.Errorf("%w: vm %d", ErrDrainActive, rec.ID)
	}
	opts = opts.withDefaults()
	job := &drainJob{opts: opts, started: c.sim.Now()}
	c.draining[rec.ID] = job
	c.setState(rec, Draining)
	c.reg.Counter("drains_started").Inc()
	if opts.OnDrain != nil {
		opts.OnDrain(rec.Name())
	}
	c.scheduleDrainPoll(rec, job)
	return nil
}

// scheduleDrainPoll arranges the next in-flight check. The poll chain only
// reschedules while work remains, so WaitIdle still terminates.
func (c *Cloud) scheduleDrainPoll(rec *VMRecord, job *drainJob) {
	c.sim.Schedule(job.opts.PollInterval, func() {
		if c.draining[rec.ID] != job || rec.State != Draining {
			return // cancelled, expired by host failure, or already finished
		}
		inflight := 0
		if job.opts.InFlight != nil {
			inflight = job.opts.InFlight(rec.Name())
		}
		switch {
		case inflight <= 0:
			c.reg.Counter("drains_completed").Inc()
			c.reg.Histogram("drain_seconds").
				Observe((c.sim.Now() - job.started).Seconds())
			c.finishDrainLocked(rec, job)
		case c.sim.Now()-job.started >= job.opts.Deadline:
			c.reg.Counter("drain_deadline_expired").Inc()
			if job.opts.OnExpire != nil {
				job.opts.OnExpire(rec.Name())
			}
			c.finishDrainLocked(rec, job)
		default:
			c.scheduleDrainPoll(rec, job)
		}
	})
}

// finishDrainLocked retires a drained instance: it leaves service (OnRetire)
// and shuts down.
func (c *Cloud) finishDrainLocked(rec *VMRecord, job *drainJob) {
	delete(c.draining, rec.ID)
	if job.opts.OnRetire != nil {
		job.opts.OnRetire(rec.Name())
	}
	if err := c.beginShutdownLocked(rec); err != nil {
		// The guest is unreachable (host died between poll and shutdown);
		// host-failure recovery owns the record now.
		c.reg.Counter("drain_shutdown_failed").Inc()
	}
}

// cancelDrainLocked aborts an in-progress drain and returns the instance to
// service — the scale-out path reclaims draining capacity before booting new
// VMs. Reports whether a drain was cancelled.
func (c *Cloud) cancelDrainLocked(rec *VMRecord) bool {
	if _, ok := c.draining[rec.ID]; !ok || rec.State != Draining {
		return false
	}
	delete(c.draining, rec.ID)
	c.setState(rec, Running)
	c.reg.Counter("drains_cancelled").Inc()
	return true
}

// expireDrainOnFailureLocked is called from host-failure handling for a
// record that died while Draining: its in-flight work is requeued via the
// drain's OnExpire hook and the job is discarded. The record itself is failed
// by the caller (a retiring VM is never resubmitted).
func (c *Cloud) expireDrainOnFailureLocked(rec *VMRecord) {
	job, ok := c.draining[rec.ID]
	if !ok {
		return
	}
	delete(c.draining, rec.ID)
	c.reg.Counter("drain_deadline_expired").Inc()
	if job.opts.OnExpire != nil {
		job.opts.OnExpire(rec.Name())
	}
	if job.opts.OnRetire != nil {
		job.opts.OnRetire(rec.Name())
	}
}

// DrainingCount returns how many instances are currently draining.
func (c *Cloud) DrainingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.draining)
}
