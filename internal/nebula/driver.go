package nebula

import (
	"time"

	"videocloud/internal/migrate"
	"videocloud/internal/virt"
)

// Driver is the Virtualized Access Driver abstraction of the paper's §III-A:
// "OpenNebula uses pluggable drivers that expose the basic functionality of
// the hypervisor". The orchestrator core speaks only this interface; KVM,
// Xen and VMware drivers plug in below it.
type Driver interface {
	// Name identifies the hypervisor ("kvm", "xen", "vmware").
	Name() string
	// DefaultMode is the virtualization mode used when a template does
	// not pin one.
	DefaultMode() virt.VirtMode
	// BootTime is how long a guest takes from power-on to ready.
	BootTime() time.Duration
	// Create instantiates (but does not start) a VM on host.
	Create(host *virt.Host, cfg virt.VMConfig) (*virt.VM, error)
	// Start powers the VM on.
	Start(vm *virt.VM) error
	// Shutdown powers the VM off.
	Shutdown(vm *virt.VM) error
	// Destroy removes the VM from its host, releasing capacity.
	Destroy(host *virt.Host, name string) error
	// Migrate live-migrates the VM; done receives the report.
	Migrate(vm *virt.VM, dst *virt.Host, done func(migrate.Report)) error
}

// hypervisorDriver implements Driver for any mode/boot combination; the
// exported constructors bake in per-hypervisor defaults matching the three
// platforms OpenNebula supported in 2012.
type hypervisorDriver struct {
	name     string
	mode     virt.VirtMode
	boot     time.Duration
	migrator *migrate.Migrator
	migCfg   migrate.Config
}

// NewKVMDriver returns the driver the paper deploys: hardware-assisted full
// virtualization with pre-copy live migration.
func NewKVMDriver(m *migrate.Migrator) Driver {
	return &hypervisorDriver{
		name: "kvm", mode: virt.HWAssist, boot: 25 * time.Second,
		migrator: m, migCfg: migrate.Config{Algorithm: migrate.PreCopy},
	}
}

// NewXenDriver returns a para-virtualization driver (the platform of the
// paper's §II comparison and of Clark et al.'s migration work).
func NewXenDriver(m *migrate.Migrator) Driver {
	return &hypervisorDriver{
		name: "xen", mode: virt.ParaVirt, boot: 20 * time.Second,
		migrator: m, migCfg: migrate.Config{Algorithm: migrate.PreCopy},
	}
}

// NewVMwareDriver returns a software full-virtualization driver.
func NewVMwareDriver(m *migrate.Migrator) Driver {
	return &hypervisorDriver{
		name: "vmware", mode: virt.FullVirt, boot: 30 * time.Second,
		migrator: m, migCfg: migrate.Config{Algorithm: migrate.PreCopy},
	}
}

// Name implements Driver.
func (d *hypervisorDriver) Name() string { return d.name }

// DefaultMode implements Driver.
func (d *hypervisorDriver) DefaultMode() virt.VirtMode { return d.mode }

// BootTime implements Driver.
func (d *hypervisorDriver) BootTime() time.Duration { return d.boot }

// Create implements Driver.
func (d *hypervisorDriver) Create(host *virt.Host, cfg virt.VMConfig) (*virt.VM, error) {
	return host.CreateVM(cfg)
}

// Start implements Driver.
func (d *hypervisorDriver) Start(vm *virt.VM) error { return vm.Start() }

// Shutdown implements Driver.
func (d *hypervisorDriver) Shutdown(vm *virt.VM) error { return vm.Shutdown() }

// Destroy implements Driver.
func (d *hypervisorDriver) Destroy(host *virt.Host, name string) error {
	return host.DestroyVM(name)
}

// SetMigrationDeadline bounds every migration this driver starts (see
// migrate.Config.Deadline). The Cloud plumbs RecoveryOptions.MigrationDeadline
// here during New.
func (d *hypervisorDriver) SetMigrationDeadline(deadline time.Duration) {
	d.migCfg.Deadline = deadline
}

// Migrate implements Driver.
func (d *hypervisorDriver) Migrate(vm *virt.VM, dst *virt.Host, done func(migrate.Report)) error {
	return d.migrator.Migrate(vm, dst, d.migCfg, done)
}
