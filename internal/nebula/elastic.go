package nebula

import (
	"fmt"
	"math"
	"time"

	"videocloud/internal/simtime"
)

// ElasticController is the closed-loop elasticity engine: it watches offered
// demand (transcode queue depth + farm in-flight load, surfaced by the
// Signal hook) and boots or retires fleet VMs through the scheduler — the
// queue-driven "boot VMs to match the job queue" design of Cloud Scheduler
// (arXiv:1007.0050), hardened for chaos:
//
//   - proportional step sizing toward the demand-implied fleet size, capped
//     at MaxStep per tick (PID-ish P-control with an actuator limit);
//   - hysteresis bands (HiLoad/LoLoad) plus per-direction cooldowns, so the
//     fleet cannot oscillate faster than one direction flip per window;
//   - a failure-aware guard: while Monitor failure detection or VM recovery
//     (requeue, stuck evacuation) is in progress — or within GuardHold of the
//     last host failure — scale decisions freeze, so a host crash never
//     masquerades as a load drop;
//   - graceful scale-down: a retiring instance Drains (drain.go) — it stops
//     taking work, finishes what it has (bounded by Drain.Deadline, past
//     which OnExpire requeues the remainder), and only then terminates.
//     Scale-out reclaims draining instances before booting new ones.
//
// It replaces the single-metric AutoScaler for fleet management; the old
// scaler remains for simple one-signal uses and now drains on scale-down too.
type ElasticController struct {
	cloud *Cloud
	opts  ElasticOptions

	ticker   *simtime.Event
	fleet    []int        // tracked instance IDs, oldest first
	attached map[int]bool // OnReady fired; instance is in service
	drainSet map[int]bool // instance is draining (excluded from capacity)

	lastOut, lastIn time.Duration // virtual time of the last action per direction
	lastDir         int           // +1 out, -1 in, 0 none yet
	lastDirAt       time.Duration
	history         []ElasticSample
}

// ElasticOptions tunes the controller. Zero values select the documented
// defaults. All hooks run inside simulation ticks with the cloud mutex held:
// they must not call Cloud methods.
type ElasticOptions struct {
	// Template stamps out fleet instances.
	Template Template
	// Min and Max bound the fleet (Min may be 0: scale to zero).
	Min, Max int
	// InstanceCapacity is the demand one instance absorbs (default 1).
	InstanceCapacity float64
	// BaseCapacity is demand absorbed outside the elastic fleet (e.g. the
	// static data VMs that also run transcode work). Default 0.
	BaseCapacity float64
	// HiLoad/LoLoad are the hysteresis band edges on per-capacity
	// utilization (defaults 0.8 / 0.3; LoLoad must stay below HiLoad).
	HiLoad, LoLoad float64
	// MaxStep caps instances launched or retired per tick (default 2).
	MaxStep int
	// OutCooldown / InCooldown are the per-direction minimum gaps between
	// actions (defaults 2s / 10s of virtual time). Scale-in additionally
	// waits out the scale-out cooldown, so a spike's tail cannot trigger an
	// immediate flip.
	OutCooldown, InCooldown time.Duration
	// GuardHold keeps scale decisions frozen for this long after a host
	// failure, on top of freezing while recovery is actively in progress
	// (default 5s of virtual time).
	GuardHold time.Duration
	// Drain configures graceful scale-down (deadline, poll, and the
	// OnDrain/InFlight/OnExpire hooks; OnRetire is chained internally).
	Drain DrainOptions
	// Signal returns offered demand at the given virtual time, in the same
	// units as InstanceCapacity (e.g. queued + in-flight transcodes).
	Signal func(now time.Duration) float64
	// OnReady fires when an instance reaches Running and joins service —
	// and again when a draining instance is reclaimed by scale-out.
	OnReady func(name string)
	// OnRetire fires when an instance leaves service for good (drained,
	// expired, or lost to a host failure).
	OnRetire func(name string)
}

func (o ElasticOptions) withDefaults() ElasticOptions {
	if o.InstanceCapacity <= 0 {
		o.InstanceCapacity = 1
	}
	if o.HiLoad == 0 {
		o.HiLoad = 0.8
	}
	if o.LoLoad == 0 {
		o.LoLoad = 0.3
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 2
	}
	if o.OutCooldown <= 0 {
		o.OutCooldown = 2 * time.Second
	}
	if o.InCooldown <= 0 {
		o.InCooldown = 10 * time.Second
	}
	if o.GuardHold <= 0 {
		o.GuardHold = 5 * time.Second
	}
	o.Drain = o.Drain.withDefaults()
	return o
}

func (o ElasticOptions) validate() error {
	if o.Min < 0 || o.Max < o.Min || o.Max == 0 {
		return fmt.Errorf("%w: min=%d max=%d", ErrScalerConfig, o.Min, o.Max)
	}
	if o.Signal == nil {
		return fmt.Errorf("%w: nil Signal", ErrScalerConfig)
	}
	if o.LoLoad >= o.HiLoad || o.LoLoad < 0 {
		return fmt.Errorf("%w: thresholds=%v/%v", ErrScalerConfig, o.LoLoad, o.HiLoad)
	}
	return nil
}

// ElasticSample records one controller decision point.
type ElasticSample struct {
	At        time.Duration
	Load      float64
	Instances int // serving (non-draining) fleet size
	Draining  int
	Util      float64
	Desired   int
	Decision  string // "hold", "out+N", "in-N", "freeze", "reclaim+N"
}

// ElasticStats is a race-free snapshot of the controller.
type ElasticStats struct {
	Instances  int // serving fleet size
	Draining   int
	Booting    int // submitted but not yet Running
	LastLoad   float64
	LastUtil   float64
	ScaleOuts  int64
	ScaleIns   int64
	Freezes    int64
	Thrash     int64
	Reclaims   int64
	FlipCount  int64 // direction changes over the controller's lifetime
	LastSample ElasticSample
}

// NewElasticController binds a controller to a cloud. Call Start to launch
// the minimum fleet and begin the control loop.
func NewElasticController(cloud *Cloud, opts ElasticOptions) (*ElasticController, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &ElasticController{
		cloud:    cloud,
		opts:     opts,
		attached: make(map[int]bool),
		drainSet: make(map[int]bool),
	}, nil
}

// Start submits the minimum fleet and evaluates every interval of virtual
// time. Like the Monitor, the periodic tick keeps the simulation queue
// non-empty: call Stop before WaitIdle.
func (e *ElasticController) Start(interval time.Duration) error {
	c := e.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.ticker != nil {
		return fmt.Errorf("%w: already started", ErrScalerConfig)
	}
	for i := 0; i < e.opts.Min; i++ {
		id, err := c.submitLocked(e.opts.Template)
		if err != nil {
			return err
		}
		e.fleet = append(e.fleet, id)
	}
	e.ticker = c.sim.Every(interval, e.step)
	return nil
}

// Stop halts the control loop (the fleet stays as it is; in-progress drains
// run to completion).
func (e *ElasticController) Stop() {
	c := e.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.ticker != nil {
		e.ticker.Cancel()
		e.ticker = nil
	}
}

// step is one control tick; it runs with the cloud mutex held.
func (e *ElasticController) step() {
	c := e.cloud
	now := c.sim.Now()
	e.reconcileLocked()

	load := e.opts.Signal(now)
	serving, booting := e.servingLocked()
	capacity := e.opts.BaseCapacity + e.opts.InstanceCapacity*float64(serving+booting)
	util := math.Inf(1)
	if capacity > 0 {
		util = load / capacity
	} else if load <= 0 {
		util = 0
	}
	sample := ElasticSample{
		At: now, Load: load, Instances: serving + booting,
		Draining: len(e.drainSet), Util: util, Decision: "hold",
	}

	// Failure-aware guard: while detection/recovery is in progress, freeze.
	// Drains already started keep progressing; new decisions wait.
	if c.recoveryActiveLocked(e.opts.GuardHold) {
		sample.Decision = "freeze"
		c.reg.Counter("elastic_freezes").Inc()
		e.history = append(e.history, sample)
		return
	}

	// Proportional target: the fleet size that would put utilization at the
	// middle of the hysteresis band.
	target := (e.opts.HiLoad + e.opts.LoLoad) / 2
	desired := serving + booting
	if target > 0 {
		desired = int(math.Ceil((load/target - e.opts.BaseCapacity) / e.opts.InstanceCapacity))
	}
	if desired < e.opts.Min {
		desired = e.opts.Min
	}
	if desired > e.opts.Max {
		desired = e.opts.Max
	}
	sample.Desired = desired
	n := serving + booting

	switch {
	case (util > e.opts.HiLoad || n < e.opts.Min) && desired > n:
		if now-e.lastOut < e.opts.OutCooldown && n >= e.opts.Min {
			break // actuator cooling down
		}
		step := desired - n
		if step > e.opts.MaxStep {
			step = e.opts.MaxStep
		}
		reclaimed := e.reclaimDrainingLocked(step)
		launched := 0
		for i := reclaimed; i < step; i++ {
			id, err := c.submitLocked(e.opts.Template)
			if err != nil {
				break
			}
			e.fleet = append(e.fleet, id)
			launched++
			c.reg.Counter("elastic_scale_out").Inc()
		}
		if reclaimed+launched > 0 {
			e.lastOut = now
			e.noteDirectionLocked(+1, now)
			sample.Decision = fmt.Sprintf("out+%d", launched)
			if reclaimed > 0 {
				sample.Decision = fmt.Sprintf("reclaim+%d/out+%d", reclaimed, launched)
			}
		}
	case util < e.opts.LoLoad && n > e.opts.Min && desired < n:
		// Scale-in waits for quiet in BOTH directions: a spike's tail must
		// not flip the fleet straight back down.
		if now-e.lastIn < e.opts.InCooldown || now-e.lastOut < e.opts.InCooldown {
			break
		}
		step := n - desired
		if step > e.opts.MaxStep {
			step = e.opts.MaxStep
		}
		if max := n - e.opts.Min; step > max {
			step = max
		}
		drained := e.drainNewestLocked(step)
		if drained > 0 {
			e.lastIn = now
			e.noteDirectionLocked(-1, now)
			sample.Decision = fmt.Sprintf("in-%d", drained)
		}
	}
	sample.Instances, _ = e.servingAndBootingTotal()
	e.history = append(e.history, sample)
}

// servingAndBootingTotal re-counts after a decision, for the recorded sample.
func (e *ElasticController) servingAndBootingTotal() (int, int) {
	s, b := e.servingLocked()
	return s + b, b
}

// reconcileLocked folds instance state back into the controller: newly
// Running instances join service (OnReady), dead instances leave it
// (OnRetire) and are dropped from the fleet.
func (e *ElasticController) reconcileLocked() {
	c := e.cloud
	kept := e.fleet[:0]
	for _, id := range e.fleet {
		rec := c.vms[id]
		if rec == nil || rec.State == Done || rec.State == Failed {
			// Drained retirements already ran OnRetire via the drain hooks;
			// an instance lost to a host crash leaves service here.
			if e.attached[id] {
				delete(e.attached, id)
				if rec != nil && e.opts.OnRetire != nil {
					e.opts.OnRetire(rec.Name())
				}
			}
			delete(e.drainSet, id)
			continue
		}
		if rec.State == Running && !e.attached[id] && !e.drainSet[id] {
			e.attached[id] = true
			if e.opts.OnReady != nil {
				e.opts.OnReady(rec.Name())
			}
		}
		kept = append(kept, id)
	}
	e.fleet = kept
}

// servingLocked counts fleet instances providing capacity (Running and not
// draining) and instances still on their way up.
func (e *ElasticController) servingLocked() (serving, booting int) {
	c := e.cloud
	for _, id := range e.fleet {
		rec := c.vms[id]
		if rec == nil || e.drainSet[id] {
			continue
		}
		switch rec.State {
		case Running, Migrating, Suspended:
			serving++
		case Pending, Prolog, Boot:
			booting++
		}
	}
	return serving, booting
}

// reclaimDrainingLocked cancels up to limit in-progress drains, newest
// first — reclaiming capacity that is already booted and warm is always
// cheaper than provisioning a fresh instance.
func (e *ElasticController) reclaimDrainingLocked(limit int) int {
	c := e.cloud
	reclaimed := 0
	for i := len(e.fleet) - 1; i >= 0 && reclaimed < limit; i-- {
		id := e.fleet[i]
		if !e.drainSet[id] {
			continue
		}
		rec := c.vms[id]
		if rec == nil || !c.cancelDrainLocked(rec) {
			continue
		}
		delete(e.drainSet, id)
		e.attached[id] = true
		c.reg.Counter("elastic_reclaims").Inc()
		if e.opts.OnReady != nil {
			e.opts.OnReady(rec.Name()) // farm resumes assigning it work
		}
		reclaimed++
	}
	return reclaimed
}

// drainNewestLocked starts graceful retirement of up to limit attached
// Running instances, newest first (oldest-first stability).
func (e *ElasticController) drainNewestLocked(limit int) int {
	c := e.cloud
	drained := 0
	for i := len(e.fleet) - 1; i >= 0 && drained < limit; i-- {
		id := e.fleet[i]
		rec := c.vms[id]
		if rec == nil || rec.State != Running || !e.attached[id] || e.drainSet[id] {
			continue
		}
		opts := e.opts.Drain
		opts.OnRetire = e.retireHookLocked(id, e.opts.Drain.OnRetire)
		if err := c.drainLocked(rec, opts); err != nil {
			continue
		}
		e.drainSet[id] = true
		delete(e.attached, id)
		c.reg.Counter("elastic_scale_in").Inc()
		drained++
	}
	return drained
}

// retireHookLocked chains controller bookkeeping onto a drain's OnRetire:
// the instance leaves the drain set and the user hooks fire.
func (e *ElasticController) retireHookLocked(id int, user func(string)) func(string) {
	return func(name string) {
		delete(e.drainSet, id)
		if user != nil {
			user(name)
		}
		if e.opts.OnRetire != nil {
			e.opts.OnRetire(name)
		}
	}
}

// noteDirectionLocked tracks direction flips; a flip inside the larger
// cooldown window is thrash (the E16 gate requires zero).
func (e *ElasticController) noteDirectionLocked(dir int, now time.Duration) {
	if e.lastDir != 0 && dir != e.lastDir {
		window := e.opts.OutCooldown
		if e.opts.InCooldown > window {
			window = e.opts.InCooldown
		}
		if now-e.lastDirAt < window {
			e.cloud.reg.Counter("elastic_thrash").Inc()
		}
		e.cloud.reg.Counter("elastic_flips").Inc()
	}
	e.lastDir = dir
	e.lastDirAt = now
}

// Fleet returns the tracked instance IDs (including draining ones).
func (e *ElasticController) Fleet() []int {
	c := e.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), e.fleet...)
}

// History returns all decision samples.
func (e *ElasticController) History() []ElasticSample {
	c := e.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ElasticSample(nil), e.history...)
}

// Stats snapshots the controller for dashboards and Status().
func (e *ElasticController) Stats() ElasticStats {
	c := e.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	serving, booting := e.servingLocked()
	st := ElasticStats{
		Instances: serving,
		Booting:   booting,
		Draining:  len(e.drainSet),
		ScaleOuts: c.reg.Counter("elastic_scale_out").Value(),
		ScaleIns:  c.reg.Counter("elastic_scale_in").Value(),
		Freezes:   c.reg.Counter("elastic_freezes").Value(),
		Thrash:    c.reg.Counter("elastic_thrash").Value(),
		Reclaims:  c.reg.Counter("elastic_reclaims").Value(),
		FlipCount: c.reg.Counter("elastic_flips").Value(),
	}
	if len(e.history) > 0 {
		st.LastSample = e.history[len(e.history)-1]
		st.LastLoad = st.LastSample.Load
		st.LastUtil = st.LastSample.Util
	}
	return st
}
