package nebula

import (
	"errors"
	"strings"
	"testing"
	"time"

	"videocloud/internal/trace"
)

// stateSeq renders a record's lifecycle as "pending,prolog,...".
func stateSeq(rec *VMRecord) string {
	var seq []string
	for _, tr := range rec.StateLog {
		seq = append(seq, tr.To.String())
	}
	return strings.Join(seq, ",")
}

// Graceful retirement: the instance stops taking work, finishes what it has,
// and only then shuts down — never a kill with work in flight.
func TestDrainCompletesInFlightThenShutsDown(t *testing.T) {
	c := testCloud(t, 2, Options{})
	c.SetTracer(trace.New(trace.Options{Enabled: true}))
	id, err := c.Submit(webTemplate("worker"))
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()

	inflight := 3
	var events []string
	err = c.Drain(id, DrainOptions{
		InFlight: func(string) int {
			v := inflight
			if inflight > 0 {
				inflight-- // one job finishes per poll
			}
			return v
		},
		OnDrain:  func(name string) { events = append(events, "drain:"+name) },
		OnExpire: func(name string) { events = append(events, "expire:"+name) },
		OnRetire: func(name string) { events = append(events, "retire:"+name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.DrainingCount(); n != 1 {
		t.Fatalf("DrainingCount = %d", n)
	}
	c.WaitIdle()

	rec, _ := c.VM(id)
	if rec.State != Done {
		t.Fatalf("state = %v, want done", rec.State)
	}
	// The instance must pass through draining before shutdown — drain, not kill.
	if seq := stateSeq(rec); !strings.Contains(seq, "draining,shutdown,done") {
		t.Fatalf("lifecycle = %s, want ...draining,shutdown,done", seq)
	}
	name := rec.Name()
	if got := strings.Join(events, " "); got != "drain:"+name+" retire:"+name {
		t.Fatalf("hook order = %q", got)
	}
	reg := c.Metrics()
	if reg.Counter("drains_started").Value() != 1 || reg.Counter("drains_completed").Value() != 1 {
		t.Fatalf("drain counters: started=%d completed=%d",
			reg.Counter("drains_started").Value(), reg.Counter("drains_completed").Value())
	}
	if reg.Counter("drain_deadline_expired").Value() != 0 {
		t.Fatal("deadline expired on a converging drain")
	}
	if reg.Histogram("drain_seconds").Count() != 1 {
		t.Fatal("drain_seconds not observed")
	}
	// The whole retirement is one vm.drain trace episode.
	found := false
	for _, tr := range c.Tracer().Traces() {
		if tr.Root == "vm.drain" {
			found = true
		}
	}
	if !found {
		t.Fatal("no vm.drain trace recorded")
	}
}

// A drain that never converges hits its deadline: the leftover work is
// handed back via OnExpire (requeued, not dropped) and the VM still retires.
func TestDrainDeadlineExpiresAndRequeues(t *testing.T) {
	c := testCloud(t, 2, Options{})
	id, _ := c.Submit(webTemplate("worker"))
	c.WaitIdle()

	var expired, retired []string
	sim := c.Sim()
	start := c.Now()
	var expiredAt time.Duration
	err := c.Drain(id, DrainOptions{
		Deadline: 2 * time.Second,
		InFlight: func(string) int { return 5 }, // stuck forever
		OnExpire: func(name string) {
			expired = append(expired, name)
			expiredAt = sim.Now()
		},
		OnRetire: func(name string) { retired = append(retired, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()

	rec, _ := c.VM(id)
	if rec.State != Done {
		t.Fatalf("state = %v, want done", rec.State)
	}
	if len(expired) != 1 || len(retired) != 1 {
		t.Fatalf("expired=%v retired=%v, want one each", expired, retired)
	}
	if elapsed := expiredAt - start; elapsed < 2*time.Second || elapsed > 3*time.Second {
		t.Fatalf("drain expired after %v, want ~deadline", elapsed)
	}
	reg := c.Metrics()
	if reg.Counter("drain_deadline_expired").Value() != 1 {
		t.Fatal("expiry not counted")
	}
	if reg.Counter("drains_completed").Value() != 0 {
		t.Fatal("expired drain counted as completed")
	}
}

func TestDrainStateErrors(t *testing.T) {
	c := testCloud(t, 2, Options{})
	if err := c.Drain(99, DrainOptions{}); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("missing VM: %v", err)
	}
	id, _ := c.Submit(webTemplate("worker"))
	if err := c.Drain(id, DrainOptions{}); !errors.Is(err, ErrBadState) {
		t.Fatalf("drain while pending: %v", err)
	}
	c.WaitIdle()
	if err := c.Drain(id, DrainOptions{InFlight: func(string) int { return 1 }}); err != nil {
		t.Fatal(err)
	}
	// Already draining: a second drain is a state error, not a double-start.
	if err := c.Drain(id, DrainOptions{}); !errors.Is(err, ErrBadState) {
		t.Fatalf("double drain: %v", err)
	}
}

// A host crash mid-drain must not strand the drain: the in-flight work is
// requeued via OnExpire and the record is failed (a retiring VM is never
// resubmitted, even with Requeue set).
func TestDrainExpiresOnHostFailure(t *testing.T) {
	c := testCloud(t, 2, Options{Policy: FixedPolicy{Host: "node1"}})
	tpl := webTemplate("worker")
	tpl.Requeue = true
	id, _ := c.Submit(tpl)
	c.WaitIdle()

	var expired, retired []string
	err := c.Drain(id, DrainOptions{
		Deadline: time.Minute,
		InFlight: func(string) int { return 2 },
		OnExpire: func(name string) { expired = append(expired, name) },
		OnRetire: func(name string) { retired = append(retired, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	c.Monitor().EnableFailureDetection()
	if err := c.CrashHost("node1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)
	c.Monitor().DisableFailureDetection()
	c.WaitIdle()

	rec, _ := c.VM(id)
	if rec.State != Failed {
		t.Fatalf("state = %v, want failed (retiring VMs are not resubmitted)", rec.State)
	}
	if len(expired) != 1 || len(retired) != 1 {
		t.Fatalf("expired=%v retired=%v", expired, retired)
	}
	if c.Metrics().Counter("drain_deadline_expired").Value() != 1 {
		t.Fatal("host-failure expiry not counted")
	}
}

// Regression for the old AutoScaler behaviour: scale-down used to Shutdown
// instances outright. It must now drain them — every retired instance shows
// a draining phase before shutdown.
func TestAutoScalerDrainsBeforeRetiring(t *testing.T) {
	c := testCloud(t, 8, Options{})
	metric := func(now time.Duration) float64 {
		if now < 2*time.Hour {
			return 6
		}
		return 1
	}
	a := NewAutoScaler(c, streamerTemplate(), 1, 8)
	a.Metric = metric
	inflight := map[string]int{}
	a.Drain = DrainOptions{
		InFlight: func(name string) int {
			if inflight[name] > 0 {
				inflight[name]--
				return inflight[name] + 1
			}
			return 0
		},
	}
	if err := a.Start(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	c.RunFor(4 * time.Hour)
	a.Stop()
	c.WaitIdle()

	reg := c.Metrics()
	in := reg.Counter("autoscale_in").Value()
	if in == 0 {
		t.Fatal("no scale-in happened")
	}
	if got := reg.Counter("drains_started").Value(); got != in {
		t.Fatalf("drains_started = %d, autoscale_in = %d: scale-down bypassed the drain path", got, in)
	}
	// No retired instance may skip the draining phase.
	for id := 1; id < 64; id++ {
		rec, err := c.VM(id)
		if err != nil {
			break
		}
		seq := stateSeq(rec)
		if strings.Contains(seq, "shutdown") && !strings.Contains(seq, "draining,shutdown") {
			t.Fatalf("vm %d was killed without draining: %s", id, seq)
		}
	}
}

// The closed-loop controller rides a flash crowd: scale out under load,
// drain back down after, and never thrash.
func TestElasticFlashCrowdScalesOutAndBack(t *testing.T) {
	c := testCloud(t, 8, Options{})
	load := 0.0
	var expired []string
	ready := map[string]int{}
	e, err := NewElasticController(c, ElasticOptions{
		Template: streamerTemplate(),
		Min:      1, Max: 6,
		InstanceCapacity: 1,
		OutCooldown:      10 * time.Second,
		InCooldown:       time.Minute,
		Signal:           func(time.Duration) float64 { return load },
		OnReady:          func(name string) { ready[name]++ },
		Drain: DrainOptions{
			OnExpire: func(name string) { expired = append(expired, name) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	c.RunFor(3 * time.Minute) // idle: settle at Min (provisioning included)
	if st := e.Stats(); st.Instances != 1 {
		t.Fatalf("idle fleet = %d, want Min=1", st.Instances)
	}
	load = 12 // 12x the single instance's capacity: flash crowd
	c.RunFor(10 * time.Minute)
	if st := e.Stats(); st.Instances != 6 {
		t.Fatalf("spike fleet = %d, want Max=6", st.Instances)
	}
	load = 0
	c.RunFor(20 * time.Minute)
	st := e.Stats()
	e.Stop()
	c.WaitIdle()

	if st.Instances != 1 {
		t.Fatalf("post-spike fleet = %d, want Min=1", st.Instances)
	}
	if st.ScaleOuts == 0 || st.ScaleIns == 0 {
		t.Fatalf("stats = %+v, want both directions exercised", st)
	}
	if st.Thrash != 0 {
		t.Fatalf("thrash = %d, want 0", st.Thrash)
	}
	if len(expired) != 0 {
		t.Fatalf("drains expired (work lost): %v", expired)
	}
	reg := c.Metrics()
	if reg.Counter("drains_completed").Value() != st.ScaleIns {
		t.Fatalf("completed drains = %d, scale-ins = %d: an instance was retired without draining",
			reg.Counter("drains_completed").Value(), st.ScaleIns)
	}
	if len(ready) == 0 {
		t.Fatal("OnReady never fired")
	}
	if len(e.History()) == 0 {
		t.Fatal("no decision samples recorded")
	}
}

// A host failure freezes scale decisions for GuardHold: the crash-induced
// signal wobble must not drive scaling while recovery is in progress.
func TestElasticGuardFreezesAfterHostFailure(t *testing.T) {
	c := testCloud(t, 3, Options{})
	load := 0.0
	e, err := NewElasticController(c, ElasticOptions{
		Template: streamerTemplate(),
		Min:      1, Max: 6,
		InstanceCapacity: 1,
		OutCooldown:      10 * time.Second,
		GuardHold:        time.Minute,
		Signal:           func(time.Duration) float64 { return load },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * time.Minute)

	c.Monitor().EnableFailureDetection()
	if err := c.CrashHost("node3"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)  // detection fires; guard window opens
	load = 20                  // spike lands mid-recovery
	c.RunFor(30 * time.Second) // still inside GuardHold
	st := e.Stats()
	if st.Freezes == 0 {
		t.Fatal("controller never froze during recovery")
	}
	if st.Instances != 1 || st.ScaleOuts != 0 {
		t.Fatalf("scaled during guard window: fleet=%d outs=%d", st.Instances, st.ScaleOuts)
	}

	c.RunFor(5 * time.Minute) // guard expires; demand is real, so scale now
	st = e.Stats()
	c.Monitor().DisableFailureDetection()
	e.Stop()
	c.WaitIdle()
	if st.Instances <= 1 || st.ScaleOuts == 0 {
		t.Fatalf("never scaled after guard cleared: fleet=%d outs=%d", st.Instances, st.ScaleOuts)
	}
}

// Scale-out reclaims draining instances before booting new ones: warm
// capacity returns to service instantly.
func TestElasticReclaimsDrainingOnSpike(t *testing.T) {
	c := testCloud(t, 8, Options{})
	load := 10.0
	stuck := true
	ready := map[string]int{}
	e, err := NewElasticController(c, ElasticOptions{
		Template: streamerTemplate(),
		Min:      1, Max: 4,
		InstanceCapacity: 1,
		OutCooldown:      10 * time.Second,
		InCooldown:       10 * time.Second,
		Signal:           func(time.Duration) float64 { return load },
		OnReady:          func(name string) { ready[name]++ },
		Drain: DrainOptions{
			Deadline: time.Hour,
			InFlight: func(string) int {
				if stuck {
					return 1
				}
				return 0
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Minute) // scale to Max
	if st := e.Stats(); st.Instances != 4 {
		t.Fatalf("fleet = %d, want 4", st.Instances)
	}
	load = 0.2
	c.RunFor(30 * time.Second) // scale-in starts draining (drains can't finish: work is stuck)
	if st := e.Stats(); st.Draining == 0 {
		t.Fatalf("nothing draining: %+v", st)
	}
	load = 10
	c.RunFor(30 * time.Second) // spike returns: reclaim the draining instances
	st := e.Stats()
	stuck = false
	e.Stop()
	c.WaitIdle()

	if st.Reclaims == 0 {
		t.Fatalf("no drains reclaimed: %+v", st)
	}
	if c.Metrics().Counter("drains_cancelled").Value() == 0 {
		t.Fatal("cancelDrain never ran")
	}
	reclaimedTwice := false
	for _, n := range ready {
		if n >= 2 {
			reclaimedTwice = true
		}
	}
	if !reclaimedTwice {
		t.Fatal("no instance re-joined service after reclaim")
	}
}

func TestElasticValidation(t *testing.T) {
	c := testCloud(t, 2, Options{})
	sig := func(time.Duration) float64 { return 0 }
	bad := []ElasticOptions{
		{Template: streamerTemplate(), Min: 1, Max: 0, Signal: sig},
		{Template: streamerTemplate(), Min: 3, Max: 1, Signal: sig},
		{Template: streamerTemplate(), Min: 1, Max: 2},
		{Template: streamerTemplate(), Min: 1, Max: 2, Signal: sig, LoLoad: 0.9, HiLoad: 0.5},
	}
	for i, opts := range bad {
		if _, err := NewElasticController(c, opts); !errors.Is(err, ErrScalerConfig) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
	e, err := NewElasticController(c, ElasticOptions{Template: streamerTemplate(), Min: 0, Max: 2, Signal: sig})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(time.Second); !errors.Is(err, ErrScalerConfig) {
		t.Fatalf("double start: %v", err)
	}
	e.Stop()
	c.WaitIdle()
}

// The rebalancer moves load onto a newly added (empty) host until the spread
// target holds, then converges — no ping-pong.
func TestRebalancerSpreadsLoadOntoNewHost(t *testing.T) {
	c := testCloud(t, 2, Options{})
	c.SetTracer(trace.New(trace.Options{Enabled: true}))
	for i := 0; i < 6; i++ {
		if _, err := c.Submit(webTemplate("web")); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	if _, err := c.AddHost("fresh", 8, 1e9, 16*gb, 500*gb); err != nil {
		t.Fatal(err)
	}
	if _, _, spread := c.HostLoadSpread(); spread < 0.3 {
		t.Fatalf("pre-rebalance spread = %.3f, want an imbalance", spread)
	}

	r := NewRebalancer(c, 0.2, 2)
	moves := 0
	for pass := 0; pass < 5; pass++ {
		n := r.PassNow()
		c.WaitIdle() // let the started migrations finish
		moves += n
		if n == 0 {
			break
		}
	}
	if moves == 0 {
		t.Fatal("no migrations started")
	}
	if _, _, spread := c.HostLoadSpread(); spread > 0.2 {
		t.Fatalf("post-rebalance spread = %.3f, want <= 0.2", spread)
	}
	// Convergence: once balanced, further passes are no-ops.
	if n := r.PassNow(); n != 0 {
		t.Fatalf("balanced cloud still moved %d VMs (ping-pong)", n)
	}
	reg := c.Metrics()
	if got := reg.Counter("rebalance_migrations").Value(); got != int64(moves) {
		t.Fatalf("rebalance_migrations = %d, moves = %d", got, moves)
	}
	if reg.Counter("rebalance_passes").Value() == 0 {
		t.Fatal("no pass counted")
	}
	// Each move is a vm.rebalance trace episode.
	episodes := 0
	for _, tr := range c.Tracer().Traces() {
		if tr.Root == "vm.rebalance" {
			episodes++
		}
	}
	if episodes != moves {
		t.Fatalf("vm.rebalance traces = %d, moves = %d", episodes, moves)
	}
}

// Rebalancing must not fight failure recovery: passes are skipped while the
// guard is up.
func TestRebalancerGuardSkipsDuringRecovery(t *testing.T) {
	c := testCloud(t, 3, Options{})
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(webTemplate("web")); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	c.Monitor().EnableFailureDetection()
	if err := c.CrashHost("node3"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * time.Second) // detection fires
	r := NewRebalancer(c, 0.01, 2)
	if n := r.PassNow(); n != 0 {
		t.Fatalf("rebalanced during recovery: %d moves", n)
	}
	if c.Metrics().Counter("rebalance_skipped_guard").Value() == 0 {
		t.Fatal("guard skip not counted")
	}
	c.Monitor().DisableFailureDetection()
	c.WaitIdle()
}
