package nebula

import (
	"fmt"
	"sort"

	"videocloud/internal/virt"
)

// This file implements two orchestrator-level operations the paper's
// deployment motivates: host evacuation (maintenance without downtime,
// built on the live migration of Figures 8-10) and consolidation (the
// §III-A "economize power" goal: pack VMs onto fewer hosts so the rest can
// be powered down).

// Evacuate puts a host in maintenance mode and live-migrates every running
// VM off it, choosing destinations with the active placement policy. It
// returns the number of migrations started; drive the simulation (WaitIdle)
// to let them finish. VMs for which no destination fits stay put and are
// reported in the error; the host remains disabled either way.
func (c *Cloud) Evacuate(hostName string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hostByName[hostName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchHost, hostName)
	}
	h.SetDisabled(true)
	c.reg.Counter("hosts_disabled").Inc()

	var stuck []string
	started := 0
	for _, rec := range c.recordsOnHost(hostName) {
		if rec.State != Running {
			continue
		}
		target := place(c.policy, c.candidateHosts(rec, c.otherHosts(h)), c.vmConfig(rec))
		if target == nil {
			stuck = append(stuck, rec.Name())
			c.stuckEvac[rec.ID] = hostName
			c.reg.Counter("evacuations_stuck").Inc()
			continue
		}
		if err := c.liveMigrateLocked(rec, target); err != nil {
			stuck = append(stuck, rec.Name())
			c.stuckEvac[rec.ID] = hostName
			c.reg.Counter("evacuations_stuck").Inc()
			continue
		}
		started++
	}
	if len(stuck) > 0 {
		// The scheduler keeps retrying these whenever capacity frees (see
		// retryStuckEvacuationsLocked); the error reports the initial gap.
		return started, fmt.Errorf("nebula: evacuation of %q left %v in place (no capacity)",
			hostName, stuck)
	}
	return started, nil
}

// Enable takes a host out of maintenance mode.
func (c *Cloud) Enable(hostName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hostByName[hostName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchHost, hostName)
	}
	h.SetDisabled(false)
	c.kickScheduler()
	return nil
}

// recordsOnHost returns the records resident on a host, sorted by ID for
// deterministic evacuation order.
func (c *Cloud) recordsOnHost(hostName string) []*VMRecord {
	var out []*VMRecord
	for _, rec := range c.vms {
		if rec.HostName == hostName && rec.VM != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (c *Cloud) otherHosts(h *virt.Host) []*virt.Host {
	out := make([]*virt.Host, 0, len(c.hosts)-1)
	for _, cand := range c.hosts {
		if cand != h {
			out = append(out, cand)
		}
	}
	return out
}

// ConsolidationPlan describes the migrations Consolidate started.
type ConsolidationPlan struct {
	// Moves lists (vm id, destination host) pairs.
	Moves []ConsolidationMove
	// CandidateHosts counts hosts the plan tries to empty.
	CandidateHosts int
}

// ConsolidationMove is one planned migration.
type ConsolidationMove struct {
	VMID int
	From string
	To   string
}

// Consolidate runs one pass of power-saving consolidation: hosts are
// visited emptiest first, and each of their VMs is live-migrated to the
// fullest other host that can take it — the packing heuristic applied to an
// already-running cloud. The migrations run in virtual time; after WaitIdle,
// EmptyHosts reports how many machines could be powered down.
func (c *Cloud) Consolidate() ConsolidationPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var plan ConsolidationPlan

	hosts := append([]*virt.Host(nil), c.hosts...)
	sort.Slice(hosts, func(i, j int) bool {
		fi, fj := hosts[i].FreeMemory(), hosts[j].FreeMemory()
		if fi != fj {
			return fi > fj // emptiest (most free) first
		}
		return hosts[i].Name < hosts[j].Name
	})
	for _, h := range hosts {
		recs := c.recordsOnHost(h.Name)
		if len(recs) == 0 {
			continue
		}
		plan.CandidateHosts++
		for _, rec := range recs {
			if rec.State != Running {
				continue
			}
			// Fullest other host that fits, but never one emptier
			// than the source (that would fight consolidation).
			// Ties break toward the lexically smaller host name so
			// equally loaded hosts drain in one direction instead
			// of ping-ponging between passes.
			cands := PackingPolicy{}.Rank(c.otherHosts(h), c.vmConfig(rec))
			var target *virt.Host
			for _, cand := range cands {
				if !cand.CanFit(c.vmConfig(rec)) {
					continue
				}
				cf, hf := cand.FreeMemory(), h.FreeMemory()
				if cf < hf || (cf == hf && cand.Name < h.Name) {
					target = cand
					break
				}
			}
			if target == nil {
				continue
			}
			if err := c.liveMigrateLocked(rec, target); err != nil {
				continue
			}
			plan.Moves = append(plan.Moves, ConsolidationMove{
				VMID: rec.ID, From: h.Name, To: target.Name,
			})
		}
	}
	if len(plan.Moves) > 0 {
		c.reg.Counter("consolidation_passes").Inc()
	}
	return plan
}

// EmptyHosts returns the names of hosts with no resident VMs or
// reservations — the machines consolidation freed for power-down.
func (c *Cloud) EmptyHosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, h := range c.hosts {
		vcpus, mem, disk := h.Usage()
		if vcpus == 0 && mem == 0 && disk == 0 && !h.Failed() {
			out = append(out, h.Name)
		}
	}
	sort.Strings(out)
	return out
}
