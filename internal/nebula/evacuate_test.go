package nebula

import (
	"errors"
	"testing"

	"videocloud/internal/virt"
)

func TestEvacuateMovesEveryVM(t *testing.T) {
	c := testCloud(t, 3, Options{Policy: FixedPolicy{Host: "node1"}})
	var ids []int
	for i := 0; i < 3; i++ {
		tpl := webTemplate("vm" + string(rune('a'+i)))
		tpl.MemoryBytes = 1 * gb
		tpl.VCPUs = 1
		id, err := c.Submit(tpl)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	c.WaitIdle()
	// Switch to striping so evacuation spreads.
	c.policy = StripingPolicy{}
	started, err := c.Evacuate("node1")
	if err != nil {
		t.Fatal(err)
	}
	if started != 3 {
		t.Fatalf("started = %d", started)
	}
	c.WaitIdle()
	for _, id := range ids {
		rec, _ := c.VM(id)
		if rec.State != Running {
			t.Fatalf("%s state = %v", rec.Name(), rec.State)
		}
		if rec.HostName == "node1" {
			t.Fatalf("%s still on node1", rec.Name())
		}
		if rec.LastMigration == nil || !rec.LastMigration.Success {
			t.Fatalf("%s has no successful migration", rec.Name())
		}
	}
	// The evacuated host is empty and disabled: nothing new lands there.
	h, _ := c.Host("node1")
	if _, mem, _ := h.Usage(); mem != 0 {
		t.Fatalf("node1 still holds %d", mem)
	}
	if !h.Disabled() {
		t.Fatal("node1 not in maintenance mode")
	}
	id, _ := c.Submit(webTemplate("after"))
	c.WaitIdle()
	rec, _ := c.VM(id)
	if rec.HostName == "node1" {
		t.Fatal("placement on disabled host")
	}
	// Enable restores it as a target.
	if err := c.Enable("node1"); err != nil {
		t.Fatal(err)
	}
	if h.Disabled() {
		t.Fatal("Enable did not clear maintenance")
	}
}

func TestEvacuateInsufficientCapacity(t *testing.T) {
	// Two hosts; the second is too small for the big VM.
	c := New(Options{Policy: FixedPolicy{Host: "big"}})
	if _, err := c.Catalog().Register("ubuntu-10.04", 2*gb, 7); err != nil {
		t.Fatal(err)
	}
	c.AddHost("big", 8, 1e9, 32*gb, 500*gb)
	c.AddHost("small", 8, 1e9, 4*gb, 500*gb)
	tpl := webTemplate("huge")
	tpl.MemoryBytes = 16 * gb
	id, err := c.Submit(tpl)
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	c.policy = StripingPolicy{}
	started, err := c.Evacuate("big")
	if err == nil {
		t.Fatal("evacuation without capacity reported success")
	}
	if started != 0 {
		t.Fatalf("started = %d", started)
	}
	// The VM keeps running in place.
	rec, _ := c.VM(id)
	if rec.State != Running || rec.HostName != "big" {
		t.Fatalf("VM disturbed: %v on %s", rec.State, rec.HostName)
	}
}

func TestEvacuateUnknownHost(t *testing.T) {
	c := testCloud(t, 1, Options{})
	if _, err := c.Evacuate("ghost"); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Enable("ghost"); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v", err)
	}
}

func TestConsolidatePacksAndFreesHosts(t *testing.T) {
	// Striping spreads 4 small VMs over 4 hosts; consolidation should
	// pack them back and free hosts.
	c := testCloud(t, 4, Options{Policy: StripingPolicy{}})
	for i := 0; i < 4; i++ {
		tpl := webTemplate("vm" + string(rune('a'+i)))
		tpl.MemoryBytes = 2 * gb
		tpl.VCPUs = 1
		if _, err := c.Submit(tpl); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	if free := c.EmptyHosts(); len(free) != 0 {
		t.Fatalf("hosts already empty: %v", free)
	}
	plan := c.Consolidate()
	if len(plan.Moves) == 0 {
		t.Fatal("consolidation planned nothing")
	}
	c.WaitIdle()
	free := c.EmptyHosts()
	if len(free) == 0 {
		t.Fatal("consolidation freed no hosts")
	}
	// Every VM still runs.
	for _, info := range c.Snapshot() {
		if info.State != Running {
			t.Fatalf("%s state = %v", info.Name, info.State)
		}
	}
	// A second pass may finish the packing; it must terminate and never
	// un-free a host.
	before := len(free)
	c.Consolidate()
	c.WaitIdle()
	if len(c.EmptyHosts()) < before {
		t.Fatal("second pass reduced empty hosts")
	}
}

func TestConsolidateNoOpWhenPacked(t *testing.T) {
	c := testCloud(t, 2, Options{Policy: PackingPolicy{}})
	for i := 0; i < 2; i++ {
		tpl := webTemplate("vm" + string(rune('a'+i)))
		tpl.VCPUs = 1
		if _, err := c.Submit(tpl); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	plan := c.Consolidate()
	if len(plan.Moves) != 0 {
		t.Fatalf("already-packed cloud planned %d moves", len(plan.Moves))
	}
}

func TestDisabledHostRejectsReservation(t *testing.T) {
	h := virt.NewHost("h", 8, 1e9, 16*gb, 100*gb, 0)
	h.SetDisabled(true)
	err := h.Reserve(virt.VMConfig{Name: "x", VCPUs: 1, MemoryBytes: 1 * gb})
	if !errors.Is(err, virt.ErrInsufficientCapacity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := h.CreateVM(virt.VMConfig{Name: "x", VCPUs: 1, MemoryBytes: 1 * gb}); err == nil {
		t.Fatal("disabled host accepted VM")
	}
	h.SetDisabled(false)
	if _, err := h.CreateVM(virt.VMConfig{Name: "x", VCPUs: 1, MemoryBytes: 1 * gb}); err != nil {
		t.Fatal(err)
	}
}
