package nebula

import (
	"fmt"
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

// Sample is one monitoring observation of one host — the data behind the
// paper's web interface, which "shows the CPU utilization, host loading,
// memory utilization, and VMs information" (§III-A).
type Sample struct {
	At          time.Duration
	Host        string
	CPUUtil     float64
	UsedMem     int64
	FreeMem     int64
	RunningVMs  int
	NetSent     int64
	NetReceived int64
}

// Monitor periodically samples every host. It is created by the Cloud; use
// Enable to start sampling and Disable before WaitIdle (periodic events keep
// the simulation queue non-empty).
//
// It is also the failure detector: EnableFailureDetection polls a heartbeat
// from every host each interval, and a host that misses MissThreshold
// consecutive beats — crashed (CrashHost) or hung (SetUnresponsive) — is
// declared failed and handed to the recovery engine (selfheal.go).
type Monitor struct {
	cloud   *Cloud
	samples []Sample
	ticker  *simtime.Event

	hbTicker     *simtime.Event
	missed       map[string]int           // consecutive missed heartbeats
	lastSeen     map[string]time.Duration // last successful beat, virtual time
	unresponsive map[string]bool          // hang-injected: alive but silent
	handled      map[string]bool          // failure already declared/declared-for-us
	// OnHostFailure, if set, observes each detection (host name, time since
	// the last good heartbeat). Called with the cloud mutex held — do not
	// call back into the Cloud.
	OnHostFailure func(host string, sinceLastSeen time.Duration)
}

func newMonitor(c *Cloud) *Monitor {
	return &Monitor{
		cloud:        c,
		missed:       make(map[string]int),
		lastSeen:     make(map[string]time.Duration),
		unresponsive: make(map[string]bool),
		handled:      make(map[string]bool),
	}
}

// Enable starts sampling every interval of virtual time. Calling Enable
// while enabled restarts the ticker with the new interval.
func (m *Monitor) Enable(interval time.Duration) {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.ticker != nil {
		m.ticker.Cancel()
	}
	m.ticker = c.sim.Every(interval, m.sampleLocked)
}

// Disable stops sampling.
func (m *Monitor) Disable() {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.ticker != nil {
		m.ticker.Cancel()
		m.ticker = nil
	}
}

// EnableFailureDetection starts the heartbeat loop using the cloud's
// RecoveryOptions (interval, miss threshold). Like Enable, the periodic
// event keeps the queue non-empty: call DisableFailureDetection before
// WaitIdle.
func (m *Monitor) EnableFailureDetection() {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.hbTicker != nil {
		m.hbTicker.Cancel()
	}
	now := c.sim.Now()
	for _, h := range c.hosts {
		if !m.handled[h.Name] {
			m.lastSeen[h.Name] = now
		}
	}
	m.hbTicker = c.sim.Every(c.opts.Recovery.HeartbeatInterval, m.heartbeatLocked)
}

// DisableFailureDetection stops the heartbeat loop.
func (m *Monitor) DisableFailureDetection() {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.hbTicker != nil {
		m.hbTicker.Cancel()
		m.hbTicker = nil
	}
}

// SetUnresponsive hang-injects a host: the machine keeps its guests running
// but stops answering heartbeats, the gray-failure case a crash test alone
// misses. The monitor must detect and fence it like a crash.
func (m *Monitor) SetUnresponsive(host string, v bool) error {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.hostByName[host]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchHost, host)
	}
	m.unresponsive[host] = v
	return nil
}

// markHandledLocked records that a host's failure is already being recovered
// (e.g. an operator called FailHost), so the detector does not double-fire.
func (m *Monitor) markHandledLocked(host string) { m.handled[host] = true }

// heartbeatLocked is one detection tick: every host answers unless it is
// failed or hang-injected; MissThreshold consecutive silent ticks declare
// the host failed and trigger recovery.
func (m *Monitor) heartbeatLocked() {
	c := m.cloud
	now := c.sim.Now()
	threshold := c.opts.Recovery.MissThreshold
	for _, h := range c.hosts {
		if m.handled[h.Name] {
			continue
		}
		if !h.Failed() && !m.unresponsive[h.Name] {
			m.missed[h.Name] = 0
			m.lastSeen[h.Name] = now
			continue
		}
		m.missed[h.Name]++
		if m.missed[h.Name] < threshold {
			continue
		}
		m.handled[h.Name] = true
		sinceLastSeen := now - m.lastSeen[h.Name]
		c.reg.Counter("host_failures_detected").Inc()
		c.reg.Histogram("host_detect_seconds").Observe(sinceLastSeen.Seconds())
		if m.OnHostFailure != nil {
			m.OnHostFailure(h.Name, sinceLastSeen)
		}
		c.handleHostFailureLocked(h)
	}
}

// SampleNow records one observation of every host immediately.
func (m *Monitor) SampleNow() {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	m.sampleLocked()
}

// sampleLocked runs with the cloud mutex held (from the sim callback or
// SampleNow).
func (m *Monitor) sampleLocked() {
	c := m.cloud
	for _, h := range c.hosts {
		running := 0
		for _, vm := range h.VMs() {
			switch vm.State() {
			case virt.StateRunning, virt.StateMigrating:
				running++
			}
		}
		_, usedMem, _ := h.Usage()
		var sent, recv int64
		if nh := c.net.Host(h.Name); nh != nil {
			sent, recv = nh.Sent(), nh.Received()
		}
		m.samples = append(m.samples, Sample{
			At: c.sim.Now(), Host: h.Name,
			CPUUtil: h.CPUUtilization(),
			UsedMem: usedMem, FreeMem: h.MemoryBytes - usedMem,
			RunningVMs: running,
			NetSent:    sent, NetReceived: recv,
		})
	}
}

// Samples returns all recorded observations in order.
func (m *Monitor) Samples() []Sample {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), m.samples...)
}

// HostSeries returns the observations for one host.
func (m *Monitor) HostSeries(host string) []Sample {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Sample
	for _, s := range m.samples {
		if s.Host == host {
			out = append(out, s)
		}
	}
	return out
}

// UtilizationTable renders the latest sample per host, the Sunstone-style
// dashboard view of Figure 7.
func (m *Monitor) UtilizationTable() *metrics.Table {
	c := m.cloud
	c.mu.Lock()
	latest := make(map[string]Sample)
	for _, s := range m.samples {
		latest[s.Host] = s
	}
	var hosts []string
	for _, h := range c.hosts {
		hosts = append(hosts, h.Name)
	}
	c.mu.Unlock()

	t := metrics.NewTable("host monitor", "host", "cpu_util", "used_mem_mb", "free_mem_mb", "running_vms")
	for _, name := range hosts {
		s, ok := latest[name]
		if !ok {
			continue
		}
		t.AddRow(name, s.CPUUtil, s.UsedMem>>20, s.FreeMem>>20, s.RunningVMs)
	}
	return t
}
