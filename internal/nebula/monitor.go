package nebula

import (
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

// Sample is one monitoring observation of one host — the data behind the
// paper's web interface, which "shows the CPU utilization, host loading,
// memory utilization, and VMs information" (§III-A).
type Sample struct {
	At          time.Duration
	Host        string
	CPUUtil     float64
	UsedMem     int64
	FreeMem     int64
	RunningVMs  int
	NetSent     int64
	NetReceived int64
}

// Monitor periodically samples every host. It is created by the Cloud; use
// Enable to start sampling and Disable before WaitIdle (periodic events keep
// the simulation queue non-empty).
type Monitor struct {
	cloud   *Cloud
	samples []Sample
	ticker  *simtime.Event
}

func newMonitor(c *Cloud) *Monitor { return &Monitor{cloud: c} }

// Enable starts sampling every interval of virtual time. Calling Enable
// while enabled restarts the ticker with the new interval.
func (m *Monitor) Enable(interval time.Duration) {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.ticker != nil {
		m.ticker.Cancel()
	}
	m.ticker = c.sim.Every(interval, m.sampleLocked)
}

// Disable stops sampling.
func (m *Monitor) Disable() {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.ticker != nil {
		m.ticker.Cancel()
		m.ticker = nil
	}
}

// SampleNow records one observation of every host immediately.
func (m *Monitor) SampleNow() {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	m.sampleLocked()
}

// sampleLocked runs with the cloud mutex held (from the sim callback or
// SampleNow).
func (m *Monitor) sampleLocked() {
	c := m.cloud
	for _, h := range c.hosts {
		running := 0
		for _, vm := range h.VMs() {
			switch vm.State() {
			case virt.StateRunning, virt.StateMigrating:
				running++
			}
		}
		_, usedMem, _ := h.Usage()
		var sent, recv int64
		if nh := c.net.Host(h.Name); nh != nil {
			sent, recv = nh.Sent(), nh.Received()
		}
		m.samples = append(m.samples, Sample{
			At: c.sim.Now(), Host: h.Name,
			CPUUtil: h.CPUUtilization(),
			UsedMem: usedMem, FreeMem: h.MemoryBytes - usedMem,
			RunningVMs: running,
			NetSent:    sent, NetReceived: recv,
		})
	}
}

// Samples returns all recorded observations in order.
func (m *Monitor) Samples() []Sample {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), m.samples...)
}

// HostSeries returns the observations for one host.
func (m *Monitor) HostSeries(host string) []Sample {
	c := m.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Sample
	for _, s := range m.samples {
		if s.Host == host {
			out = append(out, s)
		}
	}
	return out
}

// UtilizationTable renders the latest sample per host, the Sunstone-style
// dashboard view of Figure 7.
func (m *Monitor) UtilizationTable() *metrics.Table {
	c := m.cloud
	c.mu.Lock()
	latest := make(map[string]Sample)
	for _, s := range m.samples {
		latest[s.Host] = s
	}
	var hosts []string
	for _, h := range c.hosts {
		hosts = append(hosts, h.Name)
	}
	c.mu.Unlock()

	t := metrics.NewTable("host monitor", "host", "cpu_util", "used_mem_mb", "free_mem_mb", "running_vms")
	for _, name := range hosts {
		s, ok := latest[name]
		if !ok {
			continue
		}
		t.AddRow(name, s.CPUUtil, s.UsedMem>>20, s.FreeMem>>20, s.RunningVMs)
	}
	return t
}
