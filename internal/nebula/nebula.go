// Package nebula is the OpenNebula stand-in: a virtual-infrastructure engine
// that "enables the dynamic deployment and reallocation of virtual machines
// in a pool of physical resources" (paper §III-A). It reproduces the paper's
// three-component decomposition:
//
//   - the Core — a centralized component managing the VM life cycle
//     (pending → prolog → boot → running → migrate/shutdown) and exposing
//     management and monitoring interfaces (api.go, monitor.go);
//   - the Capacity Manager — pluggable placement policies (scheduler.go);
//   - Virtualized Access Drivers — the hypervisor abstraction (driver.go).
//
// The cloud owns a discrete-event simulator: image staging, boot, and
// migration all take virtual time, and callers drive progress with RunFor /
// WaitIdle. All mutation happens under one mutex, so the HTTP management API
// can serve a paced real-time simulation concurrently.
package nebula

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"videocloud/internal/image"
	"videocloud/internal/metrics"
	"videocloud/internal/migrate"
	"videocloud/internal/simnet"
	"videocloud/internal/simtime"
	"videocloud/internal/trace"
	"videocloud/internal/virt"
)

// Errors returned by cloud operations.
var (
	ErrNoSuchVM    = errors.New("nebula: no such VM")
	ErrNoSuchHost  = errors.New("nebula: no such host")
	ErrBadState    = errors.New("nebula: operation invalid in VM state")
	ErrNoPlacement = errors.New("nebula: no host can fit the request")
)

// Options configures a Cloud. The zero value selects the paper's deployment:
// KVM driver, striping placement, GbE hosts, a 10 GbE front-end holding the
// image datastore.
type Options struct {
	// Policy is the Capacity Manager policy (default StripingPolicy).
	Policy Policy
	// Driver constructs the hypervisor driver (default NewKVMDriver).
	Driver func(*migrate.Migrator) Driver
	// HostBandwidth is per-node NIC speed in bytes/s (default 1 GbE).
	HostBandwidth float64
	// FrontendBandwidth is the image-repository NIC (default 10 GbE).
	FrontendBandwidth float64
	// Latency is per-NIC propagation delay (default 100µs).
	Latency time.Duration
	// COWStageBytes is the metadata moved when provisioning a COW clone
	// (default 4 MiB: the qcow2 header plus L1/L2 tables).
	COWStageBytes int64
	// Recovery tunes heartbeat failure detection and automatic VM
	// recovery (selfheal.go). Zero values select defaults.
	Recovery RecoveryOptions
}

func (o Options) withDefaults() Options {
	if o.Policy == nil {
		o.Policy = StripingPolicy{}
	}
	if o.Driver == nil {
		o.Driver = NewKVMDriver
	}
	if o.HostBandwidth == 0 {
		o.HostBandwidth = 1 * simnet.Gbps
	}
	if o.FrontendBandwidth == 0 {
		o.FrontendBandwidth = 10 * simnet.Gbps
	}
	if o.Latency == 0 {
		o.Latency = 100 * time.Microsecond
	}
	if o.COWStageBytes == 0 {
		o.COWStageBytes = 4 << 20
	}
	o.Recovery = o.Recovery.withDefaults()
	return o
}

// FrontendName is the simnet name of the front-end node that runs the
// orchestrator core and stores the image datastore.
const FrontendName = "frontend"

// Transition is one entry in a VM's state history.
type Transition struct {
	At       time.Duration
	From, To VMState
}

// VMRecord is the orchestrator's bookkeeping for one VM instance.
type VMRecord struct {
	ID       int
	Template Template
	State    VMState
	HostName string
	IP       string
	// DiskImage is the catalog name of the instance's cloned disk.
	DiskImage string
	// VM is the hypervisor-level object once created.
	VM *virt.VM
	// StateLog records every transition with its virtual time.
	StateLog []Transition
	// FailReason explains a Failed state.
	FailReason string
	// LastMigration holds the most recent migration report, if any.
	LastMigration *migrate.Report
	// Restarts counts automatic recoveries after host failures.
	Restarts int

	migRetries  int           // consecutive rescheduled-migration attempts
	recovering  bool          // requeued by recovery; next Running closes MTTR
	failedAt    time.Duration // virtual time of the host failure that requeued it
	rebalancing bool          // current migration was started by the Rebalancer

	admitted     bool          // holds a TenantGate VM slot until terminal
	runningSince time.Duration // start of the current Running interval

	// span is the open lifecycle trace (nebula.vm for provisioning,
	// nebula.migration / nebula.recovery / ... for later episodes); it is
	// closed when the episode reaches a settled state (Running, Done,
	// Failed). stateSpan is the child covering the current VM state.
	span      *trace.Span
	stateSpan *trace.Span
}

// Name returns the instance's unique hypervisor-level name.
func (r *VMRecord) Name() string { return fmt.Sprintf("%s-%d", r.Template.Name, r.ID) }

// Cloud is the orchestrator core plus the simulated testbed it manages.
type Cloud struct {
	mu      sync.Mutex
	sim     *simtime.Simulator
	net     *simnet.Network
	catalog *image.Catalog
	mig     *migrate.Migrator
	driver  Driver
	policy  Policy
	opts    Options
	reg     *metrics.Registry

	hosts      []*virt.Host
	hostByName map[string]*virt.Host
	vms        map[int]*VMRecord
	nextID     int
	pending    []int
	groups     map[string][]int
	ipNext     int
	monitor    *Monitor
	schedKick  bool
	stuckEvac  map[int]string // record ID → host an evacuation left it on
	tracer     *trace.Tracer  // nil disables lifecycle tracing

	draining      map[int]*drainJob // record ID → in-progress graceful drain
	lastFailureAt time.Duration     // virtual time of the most recent host failure
	sawFailure    bool              // lastFailureAt is meaningful (failures at t=0 count)
	gate          TenantGate        // nil = no tenant admission/metering
}

// New creates a cloud with a front-end node and an empty host pool.
func New(opts Options) *Cloud {
	opts = opts.withDefaults()
	sim := simtime.NewSimulator()
	net := simnet.New(sim)
	net.AddHost(FrontendName, opts.FrontendBandwidth, opts.FrontendBandwidth, opts.Latency)
	mig := migrate.New(sim, net)
	c := &Cloud{
		sim: sim, net: net,
		catalog: image.NewCatalog(),
		mig:     mig,
		driver:  opts.Driver(mig),
		policy:  opts.Policy,
		opts:    opts,
		reg:     metrics.NewRegistry(),

		hostByName: make(map[string]*virt.Host),
		vms:        make(map[int]*VMRecord),
		groups:     make(map[string][]int),
		ipNext:     1,
		stuckEvac:  make(map[int]string),
		draining:   make(map[int]*drainJob),
	}
	if opts.Recovery.MigrationDeadline > 0 {
		if dd, ok := c.driver.(interface{ SetMigrationDeadline(time.Duration) }); ok {
			dd.SetMigrationDeadline(opts.Recovery.MigrationDeadline)
		}
	}
	c.monitor = newMonitor(c)
	return c
}

// Sim exposes the simulation kernel (read-only use: Now()).
func (c *Cloud) Sim() *simtime.Simulator { return c.sim }

// Network exposes the simulated fabric.
func (c *Cloud) Network() *simnet.Network { return c.net }

// Catalog exposes the image datastore.
func (c *Cloud) Catalog() *image.Catalog { return c.catalog }

// Metrics exposes orchestrator counters.
func (c *Cloud) Metrics() *metrics.Registry { return c.reg }

// Policy returns the active Capacity Manager policy.
func (c *Cloud) Policy() Policy { return c.policy }

// Driver returns the active hypervisor driver.
func (c *Cloud) Driver() Driver { return c.driver }

// Monitor returns the host-monitoring subsystem.
func (c *Cloud) Monitor() *Monitor { return c.monitor }

// SetTracer attaches a tracer; VM lifecycle episodes (provisioning,
// migration, suspend, shutdown, recovery requeues) record root traces with
// one child span per state, stamped in the virtual clock domain. Set it
// before submitting VMs whose boot should be captured.
func (c *Cloud) SetTracer(t *trace.Tracer) {
	c.mu.Lock()
	c.tracer = t
	c.mu.Unlock()
}

// Tracer returns the attached tracer (nil when lifecycle tracing is off).
func (c *Cloud) Tracer() *trace.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// Now returns current virtual time.
func (c *Cloud) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sim.Now()
}

// RunFor advances virtual time by d, executing due events.
func (c *Cloud) RunFor(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sim.RunFor(d)
}

// WaitIdle runs the simulation until no events remain (all in-flight
// provisioning, boots and migrations settled). Periodic monitoring must be
// disabled first, or the queue never drains.
func (c *Cloud) WaitIdle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sim.Run()
}

// AddHost registers a physical node with the given capacity and attaches it
// to the fabric.
func (c *Cloud) AddHost(name string, cores int, coreRate float64, memBytes, diskBytes int64) (*virt.Host, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.hostByName[name]; dup {
		return nil, fmt.Errorf("nebula: duplicate host %q", name)
	}
	h := virt.NewHost(name, cores, coreRate, memBytes, diskBytes, 0)
	c.net.AddHost(name, c.opts.HostBandwidth, c.opts.HostBandwidth, c.opts.Latency)
	c.hosts = append(c.hosts, h)
	c.hostByName[name] = h
	c.kickScheduler() // new capacity may unblock queued VMs
	return h, nil
}

// Hosts returns the host pool sorted by name.
func (c *Cloud) Hosts() []*virt.Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]*virt.Host(nil), c.hosts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Host returns a host by name.
func (c *Cloud) Host(name string) (*virt.Host, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hostByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchHost, name)
	}
	return h, nil
}

// Submit queues a template for deployment and returns the instance ID.
// Scheduling happens asynchronously in virtual time; drive with RunFor or
// WaitIdle.
func (c *Cloud) Submit(tpl Template) (int, error) {
	if err := tpl.validate(); err != nil {
		return 0, err
	}
	if _, err := c.catalog.Get(tpl.Image); err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitLocked(tpl)
}

// submitLocked queues a template with c.mu held (the auto-scaler submits
// from inside simulation callbacks, which already hold the lock).
func (c *Cloud) submitLocked(tpl Template) (int, error) {
	if err := tpl.validate(); err != nil {
		return 0, err
	}
	admitted := false
	if c.gate != nil && tpl.Owner != "" {
		if err := c.gate.AdmitVM(tpl.Owner); err != nil {
			c.reg.Counter("vms_quota_rejected").Inc()
			return 0, err
		}
		admitted = true
	}
	c.nextID++
	rec := &VMRecord{ID: c.nextID, Template: tpl, State: Pending, admitted: admitted}
	rec.StateLog = append(rec.StateLog, Transition{At: c.sim.Now(), To: Pending})
	c.traceTransition(rec, Pending)
	c.vms[rec.ID] = rec
	c.pending = append(c.pending, rec.ID)
	if tpl.Group != "" {
		c.groups[tpl.Group] = append(c.groups[tpl.Group], rec.ID)
	}
	c.reg.Counter("vms_submitted").Inc()
	c.kickScheduler()
	return rec.ID, nil
}

// SubmitGroup submits templates as one service group: each template's Group
// is set to name, and when all members reach Running each VM's context is
// populated with every member's address (the paper's "group of related VMs
// becomes a first-class entity ... the core also handles context information
// delivery").
func (c *Cloud) SubmitGroup(name string, tpls []Template) ([]int, error) {
	ids := make([]int, 0, len(tpls))
	for _, tpl := range tpls {
		tpl.Group = name
		id, err := c.Submit(tpl)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// VM returns the record for id. The returned pointer is live; read-only use
// outside the cloud's own callbacks should prefer Snapshot.
func (c *Cloud) VM(id int) (*VMRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.vms[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	return rec, nil
}

// VMInfo is a race-free copy of a record's externally interesting state.
type VMInfo struct {
	ID       int
	Name     string
	State    VMState
	Host     string
	IP       string
	Group    string
	Owner    string
	MemBytes int64
	VCPUs    int
}

// Snapshot returns VMInfo for every instance, sorted by ID.
func (c *Cloud) Snapshot() []VMInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VMInfo, 0, len(c.vms))
	for _, rec := range c.vms {
		out = append(out, VMInfo{
			ID: rec.ID, Name: rec.Name(), State: rec.State,
			Host: rec.HostName, IP: rec.IP, Group: rec.Template.Group,
			Owner:    rec.Template.Owner,
			MemBytes: rec.Template.MemoryBytes, VCPUs: rec.Template.VCPUs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PendingCount returns how many instances await placement.
func (c *Cloud) PendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// ---- internal state machine (all methods below run with c.mu held) ----

func (c *Cloud) setState(rec *VMRecord, to VMState) {
	c.accountTransition(rec, to)
	rec.StateLog = append(rec.StateLog, Transition{At: c.sim.Now(), From: rec.State, To: to})
	rec.State = to
	c.traceTransition(rec, to)
}

// traceTransition maintains the record's lifecycle trace across a state
// change. Episodes open lazily on the first unsettled state (Pending,
// Prolog, Migrating, ...) and close when the VM settles (Running, Done,
// Failed), so a long-running VM yields one complete stored trace per
// lifecycle episode instead of one eternally open trace. All spans are
// stamped in the virtual clock domain explicitly — the tracer never reads
// the sim clock, which would deadlock under c.mu.
func (c *Cloud) traceTransition(rec *VMRecord, to VMState) {
	if rec.span == nil && !c.tracer.Enabled() {
		return
	}
	now := c.sim.Now()
	if rec.stateSpan != nil {
		rec.stateSpan.EndAtSim(now)
		rec.stateSpan = nil
	}
	settled := to == Running || to == Done || to == Failed
	if rec.span == nil {
		if settled {
			return // e.g. tracer attached mid-episode
		}
		rec.span = c.tracer.StartRoot(episodeName(rec, to))
		if rec.span == nil {
			return
		}
		rec.span.AnnotateInt("vm_id", int64(rec.ID))
		rec.span.Annotate("vm", rec.Name())
		rec.span.SetSimStart(now)
	}
	if settled {
		if to == Failed {
			rec.span.Annotate("fail_reason", rec.FailReason)
			rec.span.SetError(errors.New(rec.FailReason))
		}
		rec.span.EndAtSim(now)
		rec.span = nil
		return
	}
	rec.stateSpan = rec.span.StartChild("nebula." + to.String())
	rec.stateSpan.SetSimStart(now)
}

// episodeName names the lifecycle trace opened by a transition into an
// unsettled state: first provisioning is nebula.vm, a recovery requeue is
// nebula.recovery, and operator actions are named for the operation.
func episodeName(rec *VMRecord, to VMState) string {
	switch {
	case to == Pending && rec.recovering:
		return "nebula.recovery"
	case to == Draining:
		return "vm.drain"
	case to == Migrating && rec.rebalancing:
		return "vm.rebalance"
	case to == Migrating:
		return "nebula.migration"
	case to == Suspended:
		return "nebula.suspend"
	case to == Shutdown:
		return "nebula.shutdown"
	}
	return "nebula.vm"
}

// kickScheduler arranges a scheduling pass at the current virtual time.
// Passes are batched: many submits in one instant cause one pass.
func (c *Cloud) kickScheduler() {
	if c.schedKick {
		return
	}
	c.schedKick = true
	c.sim.Schedule(0, func() {
		c.schedKick = false
		c.schedulePass()
	})
}

// schedulePass tries to place every pending instance, FIFO, then re-attempts
// evacuations that were left stuck for lack of capacity.
func (c *Cloud) schedulePass() {
	var still []int
	for _, id := range c.pending {
		rec := c.vms[id]
		if rec == nil || rec.State != Pending {
			continue
		}
		if !c.deploy(rec) {
			still = append(still, id)
		}
	}
	c.pending = still
	c.retryStuckEvacuationsLocked()
}

// candidateHosts filters a host pool by the record's anti-affinity
// constraint: hosts already holding another *anti-affine* member of the
// same group are excluded, while ordinary members (a front-end VM, say)
// may share. Records without Group+AntiAffinity pass the pool through.
func (c *Cloud) candidateHosts(rec *VMRecord, pool []*virt.Host) []*virt.Host {
	if !rec.Template.AntiAffinity || rec.Template.Group == "" {
		return pool
	}
	taken := map[string]bool{}
	for _, id := range c.groups[rec.Template.Group] {
		other := c.vms[id]
		if other == nil || other.ID == rec.ID || other.HostName == "" ||
			!other.Template.AntiAffinity {
			continue
		}
		switch other.State {
		case Prolog, Boot, Running, Migrating, Suspended, Draining:
			taken[other.HostName] = true
		}
	}
	var out []*virt.Host
	for _, h := range pool {
		if !taken[h.Name] {
			out = append(out, h)
		}
	}
	return out
}

// vmConfig builds the hypervisor config for a record.
func (c *Cloud) vmConfig(rec *VMRecord) virt.VMConfig {
	mode := rec.Template.Mode
	if mode == virt.Native {
		mode = c.driver.DefaultMode()
	}
	return virt.VMConfig{
		Name:        rec.Name(),
		VCPUs:       rec.Template.VCPUs,
		MemoryBytes: rec.Template.MemoryBytes,
		DiskBytes:   rec.Template.DiskBytes,
		Mode:        mode,
		Image:       rec.Template.Image,
	}
}

// deploy runs placement and, on success, starts the prolog→boot→running
// pipeline. It reports whether the record left Pending.
func (c *Cloud) deploy(rec *VMRecord) bool {
	cfg := c.vmConfig(rec)
	pool := c.candidateHosts(rec, c.hosts)
	var host *virt.Host
	if oa, ok := c.policy.(ownerAware); ok && rec.Template.Owner != "" {
		host = placeOwned(oa, pool, cfg, c.ownerCountsLocked(rec.Template.Owner))
	} else {
		host = place(c.policy, pool, cfg)
	}
	if host == nil {
		c.reg.Counter("placement_deferrals").Inc()
		return false
	}
	vm, err := c.driver.Create(host, cfg)
	if err != nil {
		// Lost a race against capacity; stay pending.
		c.reg.Counter("placement_deferrals").Inc()
		return false
	}
	rec.VM = vm
	rec.HostName = host.Name
	c.reg.Counter("vms_placed").Inc()

	// Prolog: stage the disk image from the front-end datastore.
	diskName := rec.Name() + "-disk"
	var stageBytes int64
	if rec.Template.FullClone {
		img, cerr := c.catalog.FullClone(rec.Template.Image, diskName)
		if cerr != nil {
			c.fail(rec, fmt.Sprintf("full clone: %v", cerr))
			return true
		}
		stageBytes = img.Size
	} else {
		if _, cerr := c.catalog.Clone(rec.Template.Image, diskName); cerr != nil {
			c.fail(rec, fmt.Sprintf("clone: %v", cerr))
			return true
		}
		stageBytes = c.opts.COWStageBytes
	}
	rec.DiskImage = diskName
	c.setState(rec, Prolog)
	_, terr := c.net.Transfer(FrontendName, host.Name, stageBytes, func(simnet.Result) {
		c.boot(rec)
	})
	if terr != nil {
		c.fail(rec, fmt.Sprintf("prolog transfer: %v", terr))
	}
	return true
}

// boot powers the guest on and schedules its transition to Running.
func (c *Cloud) boot(rec *VMRecord) {
	if rec.State != Prolog {
		return // failed or cancelled during prolog
	}
	if rec.VM.Host() == nil || rec.VM.Host().Failed() {
		c.fail(rec, "host failed during prolog")
		return
	}
	if err := c.driver.Start(rec.VM); err != nil {
		c.fail(rec, fmt.Sprintf("start: %v", err))
		return
	}
	c.setState(rec, Boot)
	c.sim.Schedule(c.driver.BootTime(), func() {
		if rec.State != Boot {
			return
		}
		if rec.VM.State() == virt.StateFailed {
			c.fail(rec, "guest failed during boot")
			return
		}
		rec.IP = c.allocIP()
		rec.VM.Workload = rec.Template.Workload
		c.setState(rec, Running)
		c.reg.Counter("vms_booted").Inc()
		if rec.recovering {
			rec.recovering = false
			c.reg.Counter("vms_auto_restarted").Inc()
			c.reg.Histogram("vm_recovery_seconds").
				Observe((c.sim.Now() - rec.failedAt).Seconds())
		}
		c.deliverContext(rec)
		if rec.Template.Group != "" {
			c.checkGroupReady(rec.Template.Group)
		}
	})
}

func (c *Cloud) allocIP() string {
	n := c.ipNext
	c.ipNext++
	return fmt.Sprintf("10.0.%d.%d", n/254, n%254+1)
}

// deliverContext pushes the instance's contextualization into the guest.
func (c *Cloud) deliverContext(rec *VMRecord) {
	ctx := map[string]string{
		"IP":       rec.IP,
		"HOSTNAME": rec.Name(),
		"VM_ID":    fmt.Sprintf("%d", rec.ID),
	}
	for k, v := range rec.Template.Context {
		ctx[k] = v
	}
	if rec.Template.Group != "" {
		ctx["GROUP"] = rec.Template.Group
	}
	rec.VM.SetContext(ctx)
}

// checkGroupReady delivers cross-member addresses once every VM of the
// group is Running.
func (c *Cloud) checkGroupReady(group string) {
	ids := c.groups[group]
	members := make([]*VMRecord, 0, len(ids))
	for _, id := range ids {
		rec := c.vms[id]
		if rec == nil || rec.State != Running {
			return
		}
		members = append(members, rec)
	}
	for _, rec := range members {
		ctx := rec.VM.Context()
		for _, other := range members {
			ctx["MEMBER_"+other.Template.Name+"_IP"] = other.IP
		}
		rec.VM.SetContext(ctx)
	}
	c.reg.Counter("groups_contextualized").Inc()
}

func (c *Cloud) fail(rec *VMRecord, reason string) {
	rec.FailReason = reason
	c.setState(rec, Failed)
	c.reg.Counter("vms_failed").Inc()
	if rec.VM != nil {
		if h := rec.VM.Host(); h != nil && !h.Failed() {
			c.driver.Destroy(h, rec.Name())
		}
		rec.VM = nil
	}
}

// GroupReady reports whether every VM in the group is Running.
func (c *Cloud) GroupReady(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.groups[name]
	if len(ids) == 0 {
		return false
	}
	for _, id := range ids {
		if rec := c.vms[id]; rec == nil || rec.State != Running {
			return false
		}
	}
	return true
}

// LiveMigrate moves a running instance to dstHost using the driver's live
// migration. The outcome is recorded in the VM's LastMigration.
func (c *Cloud) LiveMigrate(id int, dstHost string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	dst, ok := c.hostByName[dstHost]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchHost, dstHost)
	}
	return c.liveMigrateLocked(rec, dst)
}

// liveMigrateLocked starts a live migration with c.mu held.
func (c *Cloud) liveMigrateLocked(rec *VMRecord, dst *virt.Host) error {
	if rec.State != Running {
		return fmt.Errorf("%w: migrate from %v", ErrBadState, rec.State)
	}
	err := c.driver.Migrate(rec.VM, dst, func(rep migrate.Report) {
		r := rep
		rec.LastMigration = &r
		wasRebalance := rec.rebalancing
		rec.rebalancing = false
		if rep.Success {
			rec.HostName = dst.Name
			rec.migRetries = 0
			rec.span.Annotate("downtime", rep.Downtime.String())
			c.setState(rec, Running)
			c.reg.Counter("migrations_succeeded").Inc()
			c.reg.Histogram("migration_downtime_seconds").Observe(rep.Downtime.Seconds())
			c.reg.Histogram("migration_total_seconds").Observe(rep.TotalTime.Seconds())
			c.kickScheduler() // source capacity freed
		} else {
			rec.span.Annotate("fail_reason", rep.Reason)
			rec.span.SetError(fmt.Errorf("migration failed: %s", rep.Reason))
			c.setState(rec, Running) // still live on the source
			c.reg.Counter("migrations_failed").Inc()
			if wasRebalance {
				c.reg.Counter("rebalance_migrations_failed").Inc()
			} else {
				c.rescheduleMigrationLocked(rec, dst)
			}
		}
	})
	if err != nil {
		return err
	}
	src := rec.HostName
	c.setState(rec, Migrating)
	if rec.span != nil {
		rec.span.Annotate("src", src)
		rec.span.Annotate("dst", dst.Name)
	}
	c.reg.Counter("migrations_started").Inc()
	return nil
}

// Suspend checkpoints a running instance to host disk: the guest pauses,
// its memory image is written out (at local disk speed), and the record
// enters Suspended. Resources stay reserved, as with OpenNebula's suspend.
func (c *Cloud) Suspend(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	if rec.State != Running {
		return fmt.Errorf("%w: suspend from %v", ErrBadState, rec.State)
	}
	if err := rec.VM.Pause(); err != nil {
		return err
	}
	host := rec.VM.Host()
	saveSecs := float64(rec.Template.MemoryBytes) / host.DiskRate
	c.setState(rec, Suspended)
	c.reg.Counter("vms_suspended").Inc()
	// The save runs in the background; the guest is already paused.
	c.sim.Schedule(time.Duration(saveSecs*float64(time.Second)), func() {})
	return nil
}

// Resume restores a Suspended instance: the memory image reads back from
// disk (taking virtual time), then the guest continues.
func (c *Cloud) Resume(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	if rec.State != Suspended {
		return fmt.Errorf("%w: resume from %v", ErrBadState, rec.State)
	}
	host := rec.VM.Host()
	if host == nil || host.Failed() {
		c.fail(rec, "host failed while suspended")
		return fmt.Errorf("%w: host lost while suspended", ErrBadState)
	}
	loadSecs := float64(rec.Template.MemoryBytes) / host.DiskRate
	c.sim.Schedule(time.Duration(loadSecs*float64(time.Second)), func() {
		if rec.State != Suspended {
			return
		}
		if err := rec.VM.Resume(); err != nil {
			c.fail(rec, fmt.Sprintf("resume: %v", err))
			return
		}
		c.setState(rec, Running)
		c.reg.Counter("vms_resumed").Inc()
	})
	return nil
}

// Shutdown gracefully stops a running instance and releases its resources.
func (c *Cloud) Shutdown(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shutdownLocked(id)
}

// shutdownLocked is Shutdown with c.mu held.
func (c *Cloud) shutdownLocked(id int) error {
	rec, ok := c.vms[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	if rec.State != Running {
		return fmt.Errorf("%w: shutdown from %v", ErrBadState, rec.State)
	}
	return c.beginShutdownLocked(rec)
}

// beginShutdownLocked stops the guest and schedules the epilog. It is the
// shared tail of operator shutdown (from Running) and graceful drain
// completion (from Draining).
func (c *Cloud) beginShutdownLocked(rec *VMRecord) error {
	if err := c.driver.Shutdown(rec.VM); err != nil {
		return err
	}
	c.setState(rec, Shutdown)
	// Epilog: brief delay for guest OS halt + cleanup, then release.
	c.sim.Schedule(5*time.Second, func() {
		if rec.State != Shutdown {
			return
		}
		if h := rec.VM.Host(); h != nil && !h.Failed() {
			c.driver.Destroy(h, rec.Name())
		}
		if rec.DiskImage != "" {
			c.catalog.Delete(rec.DiskImage)
		}
		rec.VM = nil
		c.setState(rec, Done)
		c.reg.Counter("vms_done").Inc()
		c.kickScheduler() // capacity freed
	})
	return nil
}

// FailHost crash-injects a physical node and immediately runs recovery, as
// if the failure had just been detected: its VMs fail, and templates
// submitted with Requeue are resubmitted for placement elsewhere (with
// restart backoff and cap — see RecoveryOptions). Contrast CrashHost, which
// kills the node silently and leaves detection to the heartbeat monitor.
func (c *Cloud) FailHost(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hostByName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchHost, name)
	}
	c.monitor.markHandledLocked(name)
	c.handleHostFailureLocked(h)
	return nil
}
