package nebula

import (
	"errors"
	"strings"
	"testing"
	"time"

	"videocloud/internal/virt"
)

// testCloud builds a cloud with n uniform hosts and a registered base image.
func testCloud(t *testing.T, n int, opts Options) *Cloud {
	t.Helper()
	c := New(opts)
	if _, err := c.Catalog().Register("ubuntu-10.04", 2*gb, 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := []string{"node1", "node2", "node3", "node4", "node5", "node6", "node7", "node8"}[i]
		if _, err := c.AddHost(name, 8, 1e9, 16*gb, 500*gb); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func webTemplate(name string) Template {
	return Template{
		Name: name, VCPUs: 2, MemoryBytes: 2 * gb, DiskBytes: 10 * gb,
		Image: "ubuntu-10.04", Workload: virt.IdleWorkload{},
	}
}

func TestSubmitDeployLifecycle(t *testing.T) {
	c := testCloud(t, 2, Options{})
	id, err := c.Submit(webTemplate("web"))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := c.VM(id)
	if rec.State != Pending {
		t.Fatalf("state = %v right after submit", rec.State)
	}
	c.WaitIdle()
	if rec.State != Running {
		t.Fatalf("state = %v (%s), want running", rec.State, rec.FailReason)
	}
	if rec.HostName == "" || rec.IP == "" {
		t.Fatalf("missing placement data: host=%q ip=%q", rec.HostName, rec.IP)
	}
	if rec.VM.State() != virt.StateRunning {
		t.Fatalf("guest state = %v", rec.VM.State())
	}
	// State history: pending -> prolog -> boot -> running.
	var seq []string
	for _, tr := range rec.StateLog {
		seq = append(seq, tr.To.String())
	}
	want := "pending,prolog,boot,running"
	if got := strings.Join(seq, ","); got != want {
		t.Fatalf("history = %s, want %s", got, want)
	}
	// Context delivered.
	ctx := rec.VM.Context()
	if ctx["IP"] != rec.IP || ctx["HOSTNAME"] != rec.Name() {
		t.Fatalf("context = %v", ctx)
	}
	// Disk is a COW clone in the catalog.
	img, err := c.Catalog().Get(rec.DiskImage)
	if err != nil {
		t.Fatal(err)
	}
	if img.Backing() == nil {
		t.Fatal("instance disk is not a COW clone")
	}
	// Boot takes prolog + driver boot time.
	if now := c.Now(); now < c.Driver().BootTime() {
		t.Fatalf("deployment finished too fast: %v", now)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := testCloud(t, 1, Options{})
	bad := webTemplate("x")
	bad.Image = "missing"
	if _, err := c.Submit(bad); err == nil {
		t.Fatal("unknown image accepted")
	}
	bad = webTemplate("")
	if _, err := c.Submit(bad); err == nil {
		t.Fatal("empty name accepted")
	}
	bad = webTemplate("x")
	bad.VCPUs = 0
	if _, err := c.Submit(bad); err == nil {
		t.Fatal("zero vcpus accepted")
	}
}

func TestStripingSpreadsAcrossHosts(t *testing.T) {
	c := testCloud(t, 4, Options{Policy: StripingPolicy{}})
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(webTemplate("w" + string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	perHost := map[string]int{}
	for _, info := range c.Snapshot() {
		if info.State != Running {
			t.Fatalf("%s not running", info.Name)
		}
		perHost[info.Host]++
	}
	if len(perHost) != 4 {
		t.Fatalf("striping used %d hosts for 4 VMs: %v", len(perHost), perHost)
	}
}

func TestPackingConsolidates(t *testing.T) {
	c := testCloud(t, 4, Options{Policy: PackingPolicy{}})
	for i := 0; i < 4; i++ { // 4 x 2GB VMs fit one 16GB host
		if _, err := c.Submit(webTemplate("w" + string(rune('a'+i)))); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	perHost := map[string]int{}
	for _, info := range c.Snapshot() {
		perHost[info.Host]++
	}
	if len(perHost) != 1 {
		t.Fatalf("packing used %d hosts: %v", len(perHost), perHost)
	}
}

func TestQueueingWhenFullThenFreed(t *testing.T) {
	c := testCloud(t, 1, Options{})
	// 16GB host: seven 2GB VMs fit (vCPU limit: 8 cores / 2 = 4 VMs).
	ids := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		id, err := c.Submit(webTemplate("w" + string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	c.WaitIdle()
	if got := c.PendingCount(); got != 1 {
		t.Fatalf("pending = %d, want 1 (vCPU-bound)", got)
	}
	// Shut one down; the queued VM must deploy.
	if err := c.Shutdown(ids[0]); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if got := c.PendingCount(); got != 0 {
		t.Fatalf("pending = %d after capacity freed", got)
	}
	last, _ := c.VM(ids[4])
	if last.State != Running {
		t.Fatalf("queued VM state = %v", last.State)
	}
}

func TestShutdownReleasesEverything(t *testing.T) {
	c := testCloud(t, 1, Options{})
	id, _ := c.Submit(webTemplate("web"))
	c.WaitIdle()
	rec, _ := c.VM(id)
	disk := rec.DiskImage
	if err := c.Shutdown(id); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if rec.State != Done {
		t.Fatalf("state = %v", rec.State)
	}
	h, _ := c.Host("node1")
	if vcpus, mem, _ := h.Usage(); vcpus != 0 || mem != 0 {
		t.Fatalf("host still holds %d/%d", vcpus, mem)
	}
	if _, err := c.Catalog().Get(disk); err == nil {
		t.Fatal("instance disk not deleted")
	}
	// Double shutdown rejected.
	if err := c.Shutdown(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestLiveMigrateViaOrchestrator(t *testing.T) {
	c := testCloud(t, 2, Options{Policy: FixedPolicy{Host: "node1"}})
	id, _ := c.Submit(webTemplate("web"))
	c.WaitIdle()
	rec, _ := c.VM(id)
	if rec.HostName != "node1" {
		t.Fatalf("deployed on %s", rec.HostName)
	}
	if err := c.LiveMigrate(id, "node2"); err != nil {
		t.Fatal(err)
	}
	if rec.State != Migrating {
		t.Fatalf("state = %v during migration", rec.State)
	}
	c.WaitIdle()
	if rec.State != Running || rec.HostName != "node2" {
		t.Fatalf("after migration: state=%v host=%s", rec.State, rec.HostName)
	}
	if rec.LastMigration == nil || !rec.LastMigration.Success {
		t.Fatal("no successful migration report")
	}
	if rec.LastMigration.Downtime > 200*time.Millisecond {
		t.Fatalf("downtime = %v", rec.LastMigration.Downtime)
	}
	if got := c.Metrics().Counter("migrations_succeeded").Value(); got != 1 {
		t.Fatalf("migrations_succeeded = %d", got)
	}
	// Source freed.
	h, _ := c.Host("node1")
	if _, mem, _ := h.Usage(); mem != 0 {
		t.Fatalf("node1 still holds %d", mem)
	}
}

func TestLiveMigrateRejections(t *testing.T) {
	c := testCloud(t, 2, Options{})
	if err := c.LiveMigrate(99, "node2"); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("err = %v", err)
	}
	id, _ := c.Submit(webTemplate("web"))
	if err := c.LiveMigrate(id, "node9"); !errors.Is(err, ErrNoSuchHost) {
		t.Fatalf("err = %v", err)
	}
	// Still pending: cannot migrate.
	if err := c.LiveMigrate(id, "node2"); !errors.Is(err, ErrBadState) {
		t.Fatalf("err = %v", err)
	}
	c.WaitIdle()
}

func TestHostFailureRequeues(t *testing.T) {
	c := testCloud(t, 2, Options{Policy: FixedPolicy{Host: "node1"}})
	tpl := webTemplate("ha")
	tpl.Requeue = true
	id, _ := c.Submit(tpl)
	tpl2 := webTemplate("fragile")
	id2, _ := c.Submit(tpl2)
	c.WaitIdle()

	// Re-point the policy via a new cloud? No — switch placement by
	// failing node1; the requeued VM must land on node2.
	c.policy = StripingPolicy{}
	if err := c.FailHost("node1"); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	ha, _ := c.VM(id)
	if ha.State != Running || ha.HostName != "node2" {
		t.Fatalf("requeued VM: state=%v host=%s (%s)", ha.State, ha.HostName, ha.FailReason)
	}
	fragile, _ := c.VM(id2)
	if fragile.State != Failed {
		t.Fatalf("non-requeue VM state = %v, want failed", fragile.State)
	}
}

func TestServiceGroupContextDelivery(t *testing.T) {
	c := testCloud(t, 3, Options{})
	ids, err := c.SubmitGroup("lamp", []Template{
		webTemplate("webserver"),
		webTemplate("database"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.GroupReady("lamp") {
		t.Fatal("group ready before deployment")
	}
	c.WaitIdle()
	if !c.GroupReady("lamp") {
		t.Fatal("group not ready after deployment")
	}
	web, _ := c.VM(ids[0])
	db, _ := c.VM(ids[1])
	ctx := web.VM.Context()
	if ctx["MEMBER_database_IP"] != db.IP {
		t.Fatalf("web context missing db address: %v", ctx)
	}
	if ctx2 := db.VM.Context(); ctx2["MEMBER_webserver_IP"] != web.IP {
		t.Fatalf("db context missing web address: %v", ctx2)
	}
	if ctx["GROUP"] != "lamp" {
		t.Fatalf("GROUP = %q", ctx["GROUP"])
	}
}

func TestFullCloneProvisioningSlower(t *testing.T) {
	deployTime := func(full bool) time.Duration {
		c := testCloud(t, 1, Options{})
		tpl := webTemplate("vm")
		tpl.FullClone = full
		id, err := c.Submit(tpl)
		if err != nil {
			t.Fatal(err)
		}
		c.WaitIdle()
		rec, _ := c.VM(id)
		if rec.State != Running {
			t.Fatalf("state = %v (%s)", rec.State, rec.FailReason)
		}
		_ = id
		return c.Now()
	}
	cow := deployTime(false)
	full := deployTime(true)
	if full <= cow {
		t.Fatalf("full-clone deploy %v not slower than COW %v", full, cow)
	}
	// The 2GB image over 1GbE adds ~17s.
	if full-cow < 10*time.Second {
		t.Fatalf("full-clone penalty only %v", full-cow)
	}
}

func TestUniqueIPs(t *testing.T) {
	c := testCloud(t, 4, Options{})
	for i := 0; i < 10; i++ {
		tpl := webTemplate("vm" + string(rune('a'+i)))
		tpl.MemoryBytes = 1 * gb
		tpl.VCPUs = 1
		if _, err := c.Submit(tpl); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitIdle()
	seen := map[string]bool{}
	for _, info := range c.Snapshot() {
		if info.State != Running {
			continue
		}
		if info.IP == "" || seen[info.IP] {
			t.Fatalf("duplicate or empty IP %q", info.IP)
		}
		seen[info.IP] = true
	}
	if len(seen) != 10 {
		t.Fatalf("%d unique IPs for 10 VMs", len(seen))
	}
}

func TestAddHostUnblocksQueue(t *testing.T) {
	c := testCloud(t, 0, Options{})
	id, err := c.Submit(webTemplate("web"))
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	rec, _ := c.VM(id)
	if rec.State != Pending {
		t.Fatalf("state = %v with no hosts", rec.State)
	}
	if _, err := c.AddHost("node1", 8, 1e9, 16*gb, 500*gb); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if rec.State != Running {
		t.Fatalf("state = %v after host added", rec.State)
	}
}

func TestDriverVariants(t *testing.T) {
	for _, mk := range []func(c *Cloud) Driver{} {
		_ = mk
	}
	cases := []struct {
		driver func(*Cloud) Options
		mode   virt.VirtMode
	}{
		{func(*Cloud) Options { return Options{Driver: NewKVMDriver} }, virt.HWAssist},
		{func(*Cloud) Options { return Options{Driver: NewXenDriver} }, virt.ParaVirt},
		{func(*Cloud) Options { return Options{Driver: NewVMwareDriver} }, virt.FullVirt},
	}
	for _, tc := range cases {
		c := testCloud(t, 1, tc.driver(nil))
		id, _ := c.Submit(webTemplate("vm"))
		c.WaitIdle()
		rec, _ := c.VM(id)
		if rec.State != Running {
			t.Fatalf("%s: state = %v", c.Driver().Name(), rec.State)
		}
		if rec.VM.Config.Mode != tc.mode {
			t.Fatalf("%s: mode = %v, want %v", c.Driver().Name(), rec.VM.Config.Mode, tc.mode)
		}
	}
}
