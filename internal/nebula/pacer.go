package nebula

import (
	"sync"
	"time"
)

// Pacer advances the cloud's virtual clock in step with wall time, so the
// HTTP management API can be used interactively (cmd/onecloud,
// cmd/videocloud): one wall second advances scale virtual seconds.
type Pacer struct {
	cloud *Cloud
	scale float64
	stop  chan struct{}
	wg    sync.WaitGroup
}

// StartPacer begins advancing the clock. scale <= 0 defaults to 1 (real
// time). Call Stop to halt.
func StartPacer(c *Cloud, scale float64) *Pacer {
	if scale <= 0 {
		scale = 1
	}
	p := &Pacer{cloud: c, scale: scale, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Pacer) loop() {
	defer p.wg.Done()
	const tick = 50 * time.Millisecond
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.cloud.RunFor(time.Duration(float64(tick) * p.scale))
		}
	}
}

// Stop halts the pacer and waits for its goroutine to exit.
func (p *Pacer) Stop() {
	close(p.stop)
	p.wg.Wait()
}
