package nebula

import (
	"sort"
	"time"

	"videocloud/internal/simtime"
	"videocloud/internal/virt"
)

// Rebalancer periodically measures per-host load spread and live-migrates
// VMs off hot hosts onto cold ones — the OpenNebula load-balancing study
// (arXiv:1406.5759) applied to the paper's testbed, reusing the migrate +
// evacuate plumbing. Chaos-hardened the same way as the elastic controller:
//
//   - a migration Budget caps moves per pass (migrations are not free);
//   - a move is only taken if it strictly shrinks the hot/cold gap, so two
//     equally loaded hosts can never ping-pong a VM between passes;
//   - the failure-aware guard skips passes while failure detection or VM
//     recovery is in progress — rebalancing must not fight evacuation.
//
// Load is the host's reserved-memory fraction: deterministic (reservations
// are fixed per template) and the binding resource for VM packing here.
type Rebalancer struct {
	cloud *Cloud
	// Spread is the target max−min host load gap; passes only act above it
	// (default 0.25).
	Spread float64
	// Budget caps live migrations per pass (default 2).
	Budget int
	// GuardHold freezes passes for this long after a host failure
	// (default 5s of virtual time).
	GuardHold time.Duration

	ticker *simtime.Event
}

// NewRebalancer binds a rebalancer with the given targets; zero values
// select the documented defaults.
func NewRebalancer(cloud *Cloud, spread float64, budget int) *Rebalancer {
	r := &Rebalancer{cloud: cloud, Spread: spread, Budget: budget}
	if r.Spread <= 0 {
		r.Spread = 0.25
	}
	if r.Budget <= 0 {
		r.Budget = 2
	}
	if r.GuardHold <= 0 {
		r.GuardHold = 5 * time.Second
	}
	return r
}

// Start runs a pass every interval of virtual time. The periodic event keeps
// the simulation queue non-empty: call Stop before WaitIdle.
func (r *Rebalancer) Start(interval time.Duration) {
	c := r.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.ticker != nil {
		r.ticker.Cancel()
	}
	r.ticker = c.sim.Every(interval, r.passLocked)
}

// Stop halts periodic passes (in-flight migrations complete).
func (r *Rebalancer) Stop() {
	c := r.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.ticker != nil {
		r.ticker.Cancel()
		r.ticker = nil
	}
}

// PassNow runs one pass immediately (tests and operator use); it returns the
// number of migrations started. Drive the simulation to let them finish.
func (r *Rebalancer) PassNow() int {
	c := r.cloud
	c.mu.Lock()
	defer c.mu.Unlock()
	return r.runPassLocked()
}

// passLocked is the periodic tick.
func (r *Rebalancer) passLocked() { r.runPassLocked() }

// hostLoad is one host's reserved-memory fraction.
type hostLoad struct {
	h    *virt.Host
	frac float64
}

// runPassLocked computes the spread and moves VMs hot→cold, bounded by the
// budget, with c.mu held. Returns migrations started.
func (r *Rebalancer) runPassLocked() int {
	c := r.cloud
	if c.recoveryActiveLocked(r.GuardHold) {
		c.reg.Counter("rebalance_skipped_guard").Inc()
		return 0
	}
	started := 0
	for started < r.Budget {
		loads := r.activeLoadsLocked()
		if len(loads) < 2 {
			break
		}
		// Hottest and coldest; names break ties for determinism.
		sort.Slice(loads, func(i, j int) bool {
			if loads[i].frac != loads[j].frac {
				return loads[i].frac > loads[j].frac
			}
			return loads[i].h.Name < loads[j].h.Name
		})
		hot, cold := loads[0], loads[len(loads)-1]
		gap := hot.frac - cold.frac
		if gap <= r.Spread {
			break
		}
		if !r.moveOneLocked(hot, cold, gap) {
			break // nothing movable shrinks the gap; stop the pass
		}
		started++
	}
	if started > 0 {
		c.reg.Counter("rebalance_passes").Inc()
	}
	return started
}

// activeLoadsLocked returns the load fraction of every schedulable host.
func (r *Rebalancer) activeLoadsLocked() []hostLoad {
	c := r.cloud
	loads := make([]hostLoad, 0, len(c.hosts))
	for _, h := range c.hosts {
		if h.Failed() || h.Disabled() || h.MemoryBytes <= 0 {
			continue
		}
		_, usedMem, _ := h.Usage()
		loads = append(loads, hostLoad{h: h, frac: float64(usedMem) / float64(h.MemoryBytes)})
	}
	return loads
}

// moveOneLocked migrates one Running VM from hot to cold if doing so
// strictly shrinks the gap between the two (anti-ping-pong: the destination
// must stay below the source's old level, and the source must stay above the
// destination's old level would be too strict — shrinking the pairwise gap
// suffices for convergence). Returns whether a migration started.
func (r *Rebalancer) moveOneLocked(hot, cold hostLoad, gap float64) bool {
	c := r.cloud
	for _, rec := range c.recordsOnHost(hot.h.Name) {
		if rec.State != Running || c.draining[rec.ID] != nil {
			continue
		}
		cfg := c.vmConfig(rec)
		if !cold.h.CanFit(cfg) {
			continue
		}
		m := float64(rec.Template.MemoryBytes)
		newHot := hot.frac - m/float64(hot.h.MemoryBytes)
		newCold := cold.frac + m/float64(cold.h.MemoryBytes)
		if newGap := newCold - newHot; newGap >= gap || -newGap >= gap {
			continue // the move would not strictly shrink the spread
		}
		// Respect anti-affinity the same way the scheduler does.
		allowed := false
		for _, cand := range c.candidateHosts(rec, []*virt.Host{cold.h}) {
			if cand == cold.h {
				allowed = true
			}
		}
		if !allowed {
			continue
		}
		rec.rebalancing = true
		if err := c.liveMigrateLocked(rec, cold.h); err != nil {
			rec.rebalancing = false
			continue
		}
		c.reg.Counter("rebalance_migrations").Inc()
		return true
	}
	return false
}

// HostLoadSpread returns the min and max schedulable-host load fractions and
// their gap — the metric the rebalancer drives down and E16 gates on.
func (c *Cloud) HostLoadSpread() (min, max, spread float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	first := true
	for _, h := range c.hosts {
		if h.Failed() || h.Disabled() || h.MemoryBytes <= 0 {
			continue
		}
		_, usedMem, _ := h.Usage()
		f := float64(usedMem) / float64(h.MemoryBytes)
		if first {
			min, max, first = f, f, false
			continue
		}
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	return min, max, max - min
}
