package nebula

import (
	"sort"

	"videocloud/internal/virt"
)

// Policy is a Capacity Manager placement policy: "the capacity manager
// adjusts VM placement based on a set of predefined policies" (§III-A).
// Given the candidate hosts that can fit a request, Rank orders them best
// first. Hosts that cannot fit are filtered before Rank is called.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Rank orders candidates best-first. It must not mutate the slice's
	// hosts and must be deterministic.
	Rank(candidates []*virt.Host, req virt.VMConfig) []*virt.Host
}

// PackingPolicy fills the most-loaded feasible host first, minimising the
// number of powered hosts — the paper's "economize power" goal (§III-A).
type PackingPolicy struct{}

// Name implements Policy.
func (PackingPolicy) Name() string { return "packing" }

// Rank implements Policy.
func (PackingPolicy) Rank(candidates []*virt.Host, req virt.VMConfig) []*virt.Host {
	out := append([]*virt.Host(nil), candidates...)
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := out[i].FreeMemory(), out[j].FreeMemory()
		if fi != fj {
			return fi < fj // least free memory first = most packed first
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// StripingPolicy spreads VMs across hosts, maximising per-VM headroom —
// OpenNebula's default for performance-sensitive deployments.
type StripingPolicy struct{}

// Name implements Policy.
func (StripingPolicy) Name() string { return "striping" }

// Rank implements Policy.
func (StripingPolicy) Rank(candidates []*virt.Host, req virt.VMConfig) []*virt.Host {
	out := append([]*virt.Host(nil), candidates...)
	sort.SliceStable(out, func(i, j int) bool {
		fi, fj := out[i].FreeMemory(), out[j].FreeMemory()
		if fi != fj {
			return fi > fj // most free memory first = emptiest first
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// LoadAwarePolicy places on the host with the lowest current guest CPU
// demand, using the monitor's view rather than static reservations.
type LoadAwarePolicy struct{}

// Name implements Policy.
func (LoadAwarePolicy) Name() string { return "load-aware" }

// Rank implements Policy.
func (LoadAwarePolicy) Rank(candidates []*virt.Host, req virt.VMConfig) []*virt.Host {
	out := append([]*virt.Host(nil), candidates...)
	util := make(map[*virt.Host]float64, len(out))
	for _, h := range out {
		util[h] = h.CPUUtilization()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if util[out[i]] != util[out[j]] {
			return util[out[i]] < util[out[j]]
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FixedPolicy pins every placement to one named host (OpenNebula's
// REQUIREMENTS = HOSTNAME pinning); requests for other hosts fail placement.
type FixedPolicy struct {
	// Host is the only acceptable placement target.
	Host string
}

// Name implements Policy.
func (p FixedPolicy) Name() string { return "fixed:" + p.Host }

// Rank implements Policy.
func (p FixedPolicy) Rank(candidates []*virt.Host, req virt.VMConfig) []*virt.Host {
	for _, h := range candidates {
		if h.Name == p.Host {
			return []*virt.Host{h}
		}
	}
	return nil
}

// place filters hosts that can fit req and applies the policy. It returns
// nil when no host fits.
func place(policy Policy, hosts []*virt.Host, req virt.VMConfig) *virt.Host {
	var candidates []*virt.Host
	for _, h := range hosts {
		if h.CanFit(req) {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	ranked := policy.Rank(candidates, req)
	if len(ranked) == 0 {
		return nil
	}
	return ranked[0]
}

// placeOwned is place for owner-aware policies: the request's tenant
// footprint (per-host VM counts) joins the ranking inputs.
func placeOwned(policy ownerAware, hosts []*virt.Host, req virt.VMConfig, ownerVMs map[string]int) *virt.Host {
	var candidates []*virt.Host
	for _, h := range hosts {
		if h.CanFit(req) {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	ranked := policy.RankForOwner(candidates, req, ownerVMs)
	if len(ranked) == 0 {
		return nil
	}
	return ranked[0]
}
