package nebula

import (
	"testing"
	"testing/quick"

	"videocloud/internal/virt"
)

const (
	gb = int64(1) << 30
	mb = int64(1) << 20
)

func poolOfHosts(t *testing.T, free ...int64) []*virt.Host {
	t.Helper()
	hosts := make([]*virt.Host, len(free))
	for i, f := range free {
		h := virt.NewHost(string(rune('a'+i)), 32, 1e9, 32*gb, 1000*gb, 0)
		// Consume memory so FreeMemory == f.
		pad := 32*gb - f
		if pad > 0 {
			if _, err := h.CreateVM(virt.VMConfig{
				Name: "pad", VCPUs: 1, MemoryBytes: pad, DiskBytes: 0,
			}); err != nil {
				t.Fatal(err)
			}
		}
		hosts[i] = h
	}
	return hosts
}

func req(mem int64) virt.VMConfig {
	return virt.VMConfig{Name: "r", VCPUs: 1, MemoryBytes: mem, DiskBytes: 1 * gb}
}

func TestPackingPrefersFullestHost(t *testing.T) {
	hosts := poolOfHosts(t, 8*gb, 2*gb, 16*gb)
	got := place(PackingPolicy{}, hosts, req(1*gb))
	if got == nil || got.Name != "b" {
		t.Fatalf("packing chose %v, want b (2GB free)", got)
	}
}

func TestStripingPrefersEmptiestHost(t *testing.T) {
	hosts := poolOfHosts(t, 8*gb, 2*gb, 16*gb)
	got := place(StripingPolicy{}, hosts, req(1*gb))
	if got == nil || got.Name != "c" {
		t.Fatalf("striping chose %v, want c (16GB free)", got)
	}
}

func TestPlacementFiltersInfeasible(t *testing.T) {
	hosts := poolOfHosts(t, 8*gb, 2*gb, 16*gb)
	// 12GB only fits on c even though packing prefers fuller hosts.
	got := place(PackingPolicy{}, hosts, req(12*gb))
	if got == nil || got.Name != "c" {
		t.Fatalf("chose %v, want c", got)
	}
	// Nothing fits 64GB.
	if got := place(PackingPolicy{}, hosts, req(64*gb)); got != nil {
		t.Fatalf("placed impossible request on %v", got.Name)
	}
}

func TestPlacementSkipsFailedHosts(t *testing.T) {
	hosts := poolOfHosts(t, 8*gb, 16*gb)
	hosts[1].Fail()
	got := place(StripingPolicy{}, hosts, req(1*gb))
	if got == nil || got.Name != "a" {
		t.Fatalf("chose %v, want a (b failed)", got)
	}
}

func TestLoadAwareUsesCPUDemand(t *testing.T) {
	hosts := poolOfHosts(t, 16*gb, 16*gb)
	// Host a gets a hot VM: 16 busy vcpus.
	vm, err := hosts[0].CreateVM(virt.VMConfig{Name: "hot", VCPUs: 16, MemoryBytes: 1 * gb})
	if err != nil {
		t.Fatal(err)
	}
	vm.Workload = virt.UniformWriter{Rate: mb, Util: 1.0}
	vm.Start()
	got := place(LoadAwarePolicy{}, hosts, req(1*gb))
	if got == nil || got.Name != "b" {
		t.Fatalf("load-aware chose %v, want idle host b", got)
	}
}

func TestFixedPolicyPins(t *testing.T) {
	hosts := poolOfHosts(t, 8*gb, 16*gb)
	got := place(FixedPolicy{Host: "a"}, hosts, req(1*gb))
	if got == nil || got.Name != "a" {
		t.Fatalf("fixed chose %v", got)
	}
	if got := place(FixedPolicy{Host: "zz"}, hosts, req(1*gb)); got != nil {
		t.Fatalf("fixed to absent host placed on %v", got.Name)
	}
	// Pinned host too small -> no placement even though others fit.
	if got := place(FixedPolicy{Host: "a"}, hosts, req(12*gb)); got != nil {
		t.Fatalf("fixed overrode capacity: %v", got.Name)
	}
}

func TestPoliciesDoNotMutateInput(t *testing.T) {
	hosts := poolOfHosts(t, 8*gb, 2*gb, 16*gb)
	orig := append([]*virt.Host(nil), hosts...)
	for _, p := range []Policy{PackingPolicy{}, StripingPolicy{}, LoadAwarePolicy{}} {
		p.Rank(hosts, req(1*gb))
		for i := range hosts {
			if hosts[i] != orig[i] {
				t.Fatalf("%s mutated candidate slice", p.Name())
			}
		}
	}
}

// Property: packing and striping return exact reverses of each other when
// all free-memory values are distinct, and both are permutations of the
// candidates.
func TestPropertyPackingStripingDual(t *testing.T) {
	f := func(frees []uint8) bool {
		if len(frees) == 0 || len(frees) > 10 {
			return true
		}
		seen := map[int64]bool{}
		hosts := make([]*virt.Host, 0, len(frees))
		for i, fr := range frees {
			free := int64(fr%30+1) * gb
			if seen[free] {
				continue // need distinct values for strict reversal
			}
			seen[free] = true
			h := virt.NewHost(string(rune('a'+i)), 32, 1e9, 32*gb, 100*gb, 0)
			h.CreateVM(virt.VMConfig{Name: "pad", VCPUs: 1, MemoryBytes: 32*gb - free})
			hosts = append(hosts, h)
		}
		if len(hosts) < 2 {
			return true
		}
		r := req(1)
		pack := PackingPolicy{}.Rank(hosts, r)
		strip := StripingPolicy{}.Rank(hosts, r)
		if len(pack) != len(hosts) || len(strip) != len(hosts) {
			return false
		}
		for i := range pack {
			if pack[i] != strip[len(strip)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
