package nebula

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"videocloud/internal/virt"
)

// This file is the orchestrator half of the self-healing subsystem: what
// happens *after* a host failure is known — whether declared by an operator
// (FailHost), detected by the heartbeat monitor (monitor.go), or observed
// mid-migration. The paper's IaaS claim is continuity: host monitoring plus
// live migration keep the video service running through node trouble
// (§III-A, Figures 7–10); this is the policy layer that claim needs.

// RecoveryOptions tunes failure detection and automatic recovery. The zero
// value selects the defaults documented per field.
type RecoveryOptions struct {
	// HeartbeatInterval is the monitor's failure-detection sampling period
	// (default 500ms of virtual time).
	HeartbeatInterval time.Duration
	// MissThreshold is how many consecutive missed heartbeats declare a
	// host failed (default 3).
	MissThreshold int
	// MaxRestarts caps automatic restarts per VM across host failures;
	// past it the record fails permanently (default 3).
	MaxRestarts int
	// RestartBackoff delays the Nth automatic restart by
	// RestartBackoff·2^(N-1), capped at RestartBackoffCap (default 1s).
	RestartBackoff time.Duration
	// RestartBackoffCap bounds the exponential backoff (default 30s).
	RestartBackoffCap time.Duration
	// MigrationRetries is how many times a failed live migration is
	// re-aimed at a fresh destination before giving up (default 2).
	MigrationRetries int
	// MigrationDeadline bounds every driver-started live migration in
	// virtual time (default 0 = unbounded); see migrate.Config.Deadline.
	MigrationDeadline time.Duration
}

func (r RecoveryOptions) withDefaults() RecoveryOptions {
	if r.HeartbeatInterval == 0 {
		r.HeartbeatInterval = 500 * time.Millisecond
	}
	if r.MissThreshold == 0 {
		r.MissThreshold = 3
	}
	if r.MaxRestarts == 0 {
		r.MaxRestarts = 3
	}
	if r.RestartBackoff == 0 {
		r.RestartBackoff = time.Second
	}
	if r.RestartBackoffCap == 0 {
		r.RestartBackoffCap = 30 * time.Second
	}
	if r.MigrationRetries == 0 {
		r.MigrationRetries = 2
	}
	return r
}

// CrashHost kills a physical node silently: its guests die, but the
// orchestrator's records are not told. Recovery happens only when the
// heartbeat monitor notices the missing host — this is the chaos injector's
// host-kill fault, and the difference between it and FailHost is exactly the
// detection latency the monitor is measured on.
func (c *Cloud) CrashHost(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hostByName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchHost, name)
	}
	h.Fail()
	c.reg.Counter("hosts_crashed").Inc()
	return nil
}

// handleHostFailureLocked fences a failed (or hung) host and recovers its
// VMs: Requeue templates are resubmitted with capped backoff, others fail.
func (c *Cloud) handleHostFailureLocked(h *virt.Host) {
	if !h.Failed() {
		h.Fail() // fence: a hung host must not keep running guests
	}
	c.reg.Counter("hosts_failed").Inc()
	c.lastFailureAt = c.sim.Now()
	c.sawFailure = true
	ids := make([]int, 0, len(c.vms))
	for id := range c.vms {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic requeue order
	for _, id := range ids {
		rec := c.vms[id]
		if rec.HostName != h.Name || rec.VM == nil {
			continue
		}
		if rec.State == Done || rec.State == Failed {
			continue
		}
		if rec.State == Draining {
			// A retiring VM is never resubmitted; its in-flight work is
			// requeued through the drain's expiry hook instead.
			c.expireDrainOnFailureLocked(rec)
			c.fail(rec, "host failure while draining")
			continue
		}
		if rec.Template.Requeue {
			c.requeueWithBackoffLocked(rec, "host failure")
		} else {
			c.fail(rec, "host failure")
		}
	}
	c.kickScheduler()
}

// recoveryActiveLocked reports whether failure handling is in progress (or a
// failure was handled within the last hold window): heartbeat detection is
// mid-count on some host, a requeued VM has not come back Running, an
// evacuation is stuck waiting for capacity, or a host failure fired recently.
// Elastic scaling and rebalancing freeze while this holds — a host crash
// must never masquerade as a load drop.
func (c *Cloud) recoveryActiveLocked(hold time.Duration) bool {
	if c.sawFailure && c.sim.Now()-c.lastFailureAt < hold {
		return true
	}
	if len(c.stuckEvac) > 0 {
		return true
	}
	for host, n := range c.monitor.missed {
		if n > 0 && !c.monitor.handled[host] {
			return true // detection mid-count: a host has gone quiet
		}
	}
	for _, rec := range c.vms {
		if rec.recovering {
			return true
		}
	}
	return false
}

// RecoveryActive reports the chaos-guard predicate under the lock — whether
// scale decisions are currently frozen for a given hold window.
func (c *Cloud) RecoveryActive(hold time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recoveryActiveLocked(hold)
}

// requeueWithBackoffLocked resubmits a VM whose host died. The Nth restart
// waits RestartBackoff·2^(N-1) (capped) before re-entering the scheduler —
// a flapping host must not monopolize placement — and past MaxRestarts the
// record fails permanently.
func (c *Cloud) requeueWithBackoffLocked(rec *VMRecord, reason string) {
	rec.Restarts++
	cfg := c.opts.Recovery
	if rec.Restarts > cfg.MaxRestarts {
		c.fail(rec, reason+" (restart budget exhausted)")
		c.reg.Counter("vms_restart_exhausted").Inc()
		return
	}
	if rec.DiskImage != "" {
		c.catalog.Delete(rec.DiskImage)
		rec.DiskImage = ""
	}
	rec.VM = nil
	rec.HostName = ""
	rec.IP = ""
	rec.recovering = true
	rec.failedAt = c.sim.Now()
	// The state the failure interrupted carries the fault; the (possibly
	// fresh) episode root carries the requeue decision.
	rec.stateSpan.SetError(errors.New(reason))
	c.setState(rec, Pending)
	rec.span.Annotate("requeue", reason)
	c.reg.Counter("vms_requeued").Inc()

	delay := cfg.RestartBackoff << (rec.Restarts - 1)
	if delay > cfg.RestartBackoffCap || delay <= 0 {
		delay = cfg.RestartBackoffCap
	}
	c.sim.Schedule(delay, func() {
		if rec.State != Pending {
			return
		}
		c.pending = append(c.pending, rec.ID)
		c.kickScheduler()
	})
}

// rescheduleMigrationLocked runs in a migration's failure callback: if the
// destination died mid-copy, the guest (still live on the source) is
// re-aimed at a fresh destination, up to MigrationRetries consecutive
// attempts.
func (c *Cloud) rescheduleMigrationLocked(rec *VMRecord, deadDst *virt.Host) {
	if rec.State != Running || rec.VM == nil {
		return
	}
	src := rec.VM.Host()
	if src == nil || src.Failed() {
		return // the source died too; host-failure recovery owns this VM
	}
	if !deadDst.Failed() || rec.migRetries >= c.opts.Recovery.MigrationRetries {
		rec.migRetries = 0
		return
	}
	rec.migRetries++
	// place() skips failed and disabled hosts, so the dead destination is
	// excluded automatically.
	target := place(c.policy, c.candidateHosts(rec, c.otherHosts(src)), c.vmConfig(rec))
	if target == nil {
		return
	}
	if err := c.liveMigrateLocked(rec, target); err == nil {
		c.reg.Counter("migrations_rescheduled").Inc()
	}
}

// retryStuckEvacuationsLocked runs at the end of every scheduling pass: VMs
// an evacuation could not move (no capacity at the time) are retried now
// that capacity may have freed. A record leaves the stuck set when its
// migration starts, its host leaves maintenance, or it stops Running.
func (c *Cloud) retryStuckEvacuationsLocked() {
	if len(c.stuckEvac) == 0 {
		return
	}
	ids := make([]int, 0, len(c.stuckEvac))
	for id := range c.stuckEvac {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rec := c.vms[id]
		host := c.stuckEvac[id]
		if rec == nil || rec.State != Running || rec.HostName != host {
			delete(c.stuckEvac, id)
			continue
		}
		h := c.hostByName[host]
		if h == nil || !h.Disabled() {
			delete(c.stuckEvac, id) // maintenance over; nothing to finish
			continue
		}
		target := place(c.policy, c.candidateHosts(rec, c.otherHosts(h)), c.vmConfig(rec))
		if target == nil {
			continue // still no room; stay in the set
		}
		if err := c.liveMigrateLocked(rec, target); err == nil {
			delete(c.stuckEvac, id)
			c.reg.Counter("evacuations_retried").Inc()
		}
	}
}

// StuckEvacuations returns how many VMs are waiting for capacity to finish
// an evacuation.
func (c *Cloud) StuckEvacuations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stuckEvac)
}
