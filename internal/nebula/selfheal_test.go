package nebula

import (
	"strings"
	"testing"
	"time"
)

// A silent crash (CrashHost) must be noticed by the heartbeat monitor and
// the Requeue VM restarted on a surviving host, with the detect latency and
// recovery time recorded.
func TestHeartbeatDetectsCrashAndRestartsVM(t *testing.T) {
	c := testCloud(t, 2, Options{Policy: FixedPolicy{Host: "node1"}})
	tpl := webTemplate("ha")
	tpl.Requeue = true
	id, _ := c.Submit(tpl)
	c.WaitIdle()
	c.policy = StripingPolicy{}

	var detected string
	c.Monitor().OnHostFailure = func(host string, since time.Duration) { detected = host }
	c.Monitor().EnableFailureDetection()
	if err := c.CrashHost("node1"); err != nil {
		t.Fatal(err)
	}
	// 3 missed beats at 500ms + 1s restart backoff + reprovision well
	// inside a minute of virtual time.
	c.RunFor(time.Minute)
	c.Monitor().DisableFailureDetection()
	c.WaitIdle()

	if detected != "node1" {
		t.Fatalf("OnHostFailure saw %q, want node1", detected)
	}
	rec, _ := c.VM(id)
	if rec.State != Running || rec.HostName != "node2" {
		t.Fatalf("VM state=%v host=%s (%s), want running on node2",
			rec.State, rec.HostName, rec.FailReason)
	}
	if rec.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rec.Restarts)
	}
	reg := c.Metrics()
	if got := reg.Counter("host_failures_detected").Value(); got != 1 {
		t.Fatalf("host_failures_detected = %d", got)
	}
	if got := reg.Counter("vms_auto_restarted").Value(); got != 1 {
		t.Fatalf("vms_auto_restarted = %d", got)
	}
	if reg.Histogram("vm_recovery_seconds").Count() != 1 {
		t.Fatal("vm_recovery_seconds not observed")
	}
	if reg.Histogram("host_detect_seconds").Count() != 1 {
		t.Fatal("host_detect_seconds not observed")
	}
}

// A hung host (alive but silent) must be fenced and recovered exactly like
// a crashed one.
func TestHeartbeatDetectsHungHost(t *testing.T) {
	c := testCloud(t, 2, Options{Policy: FixedPolicy{Host: "node1"}})
	tpl := webTemplate("ha")
	tpl.Requeue = true
	id, _ := c.Submit(tpl)
	c.WaitIdle()
	c.policy = StripingPolicy{}

	c.Monitor().EnableFailureDetection()
	if err := c.Monitor().SetUnresponsive("node1", true); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Minute)
	c.Monitor().DisableFailureDetection()
	c.WaitIdle()

	h, _ := c.Host("node1")
	if !h.Failed() {
		t.Fatal("hung host was not fenced")
	}
	rec, _ := c.VM(id)
	if rec.State != Running || rec.HostName != "node2" {
		t.Fatalf("VM state=%v host=%s, want running on node2", rec.State, rec.HostName)
	}
}

// A healthy cloud must see zero detections no matter how long the monitor
// watches.
func TestHeartbeatNoFalsePositives(t *testing.T) {
	c := testCloud(t, 3, Options{})
	for i := 0; i < 3; i++ {
		c.Submit(webTemplate("web"))
	}
	c.WaitIdle()
	c.Monitor().EnableFailureDetection()
	c.RunFor(10 * time.Minute)
	c.Monitor().DisableFailureDetection()
	if got := c.Metrics().Counter("host_failures_detected").Value(); got != 0 {
		t.Fatalf("detected %d failures on a healthy cloud", got)
	}
}

// Restarts are capped: a VM whose hosts keep dying eventually fails for
// good instead of looping forever.
func TestRestartBudgetExhausted(t *testing.T) {
	c := testCloud(t, 5, Options{Recovery: RecoveryOptions{MaxRestarts: 2}})
	tpl := webTemplate("ha")
	tpl.Requeue = true
	id, _ := c.Submit(tpl)
	c.WaitIdle()

	for i := 0; i < 3; i++ {
		rec, _ := c.VM(id)
		if rec.State != Running {
			break
		}
		if err := c.FailHost(rec.HostName); err != nil {
			t.Fatal(err)
		}
		c.WaitIdle()
	}
	rec, _ := c.VM(id)
	if rec.State != Failed {
		t.Fatalf("state = %v after exceeding restart budget", rec.State)
	}
	if !strings.Contains(rec.FailReason, "restart budget exhausted") {
		t.Fatalf("FailReason = %q", rec.FailReason)
	}
	if got := c.Metrics().Counter("vms_restart_exhausted").Value(); got != 1 {
		t.Fatalf("vms_restart_exhausted = %d", got)
	}
}

// An evacuation that strands a VM for lack of capacity must complete later,
// once another VM's shutdown frees room — without operator action.
func TestStuckEvacuationRetriesWhenCapacityFrees(t *testing.T) {
	// Two hosts, 16 GB each. A 10 GB VM on node1; a 10 GB VM on node2
	// blocks the evacuation until it shuts down.
	c := New(Options{Policy: FixedPolicy{Host: "node1"}})
	if _, err := c.Catalog().Register("ubuntu-10.04", 2*gb, 7); err != nil {
		t.Fatal(err)
	}
	c.AddHost("node1", 8, 1e9, 16*gb, 500*gb)
	c.AddHost("node2", 8, 1e9, 16*gb, 500*gb)
	tpl := webTemplate("big")
	tpl.MemoryBytes = 10 * gb
	evacuee, _ := c.Submit(tpl)
	c.WaitIdle()
	c.policy = FixedPolicy{Host: "node2"}
	blocker, _ := c.Submit(func() Template {
		t := webTemplate("blocker")
		t.MemoryBytes = 10 * gb
		return t
	}())
	c.WaitIdle()
	c.policy = StripingPolicy{}

	if _, err := c.Evacuate("node1"); err == nil {
		t.Fatal("evacuation should report the stuck VM")
	}
	if c.StuckEvacuations() != 1 {
		t.Fatalf("StuckEvacuations = %d, want 1", c.StuckEvacuations())
	}
	if got := c.Metrics().Counter("evacuations_stuck").Value(); got != 1 {
		t.Fatalf("evacuations_stuck = %d", got)
	}

	// Free capacity on node2; the scheduler must finish the evacuation.
	if err := c.Shutdown(blocker); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()

	rec, _ := c.VM(evacuee)
	if rec.State != Running || rec.HostName != "node2" {
		t.Fatalf("evacuee state=%v host=%s, want running on node2", rec.State, rec.HostName)
	}
	if c.StuckEvacuations() != 0 {
		t.Fatalf("StuckEvacuations = %d after retry", c.StuckEvacuations())
	}
	if got := c.Metrics().Counter("evacuations_retried").Value(); got != 1 {
		t.Fatalf("evacuations_retried = %d", got)
	}
}

// A destination that dies mid-copy must not end the story: the migration is
// re-aimed at a third host automatically.
func TestMigrationRescheduledWhenDestinationDies(t *testing.T) {
	c := testCloud(t, 3, Options{Policy: FixedPolicy{Host: "node1"}})
	id, _ := c.Submit(webTemplate("web"))
	c.WaitIdle()
	c.policy = StripingPolicy{}

	if err := c.LiveMigrate(id, "node2"); err != nil {
		t.Fatal(err)
	}
	// Kill the destination while the copy is in flight.
	c.RunFor(time.Second)
	if err := c.FailHost("node2"); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()

	rec, _ := c.VM(id)
	if rec.State != Running || rec.HostName != "node3" {
		t.Fatalf("VM state=%v host=%s (last migration: %+v), want running on node3",
			rec.State, rec.HostName, rec.LastMigration)
	}
	reg := c.Metrics()
	if got := reg.Counter("migrations_rescheduled").Value(); got != 1 {
		t.Fatalf("migrations_rescheduled = %d", got)
	}
	if got := reg.Counter("migrations_succeeded").Value(); got != 1 {
		t.Fatalf("migrations_succeeded = %d", got)
	}
}
