package nebula

import (
	"fmt"
	"math/rand"
	"testing"

	"videocloud/internal/virt"
)

// TestCloudSoak drives the orchestrator with randomized operation sequences
// (submit, shutdown, migrate, suspend/resume, host fail, evacuate,
// consolidate) and checks global invariants after every settle:
//
//	I1: committed host resources equal the sum of resident VM configs —
//	    capacity is conserved through every life-cycle path;
//	I2: no host exceeds its physical capacity;
//	I3: every Running record's guest is Running on the host the record
//	    names;
//	I4: a record in Done/Failed holds no guest and no capacity.
func TestCloudSoak(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soakOnce(t, seed)
		})
	}
}

func soakOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	c := testCloud(t, 4, Options{})
	var ids []int
	for step := 0; step < 60; step++ {
		switch rng.Intn(8) {
		case 0, 1, 2: // submit
			tpl := webTemplate(fmt.Sprintf("vm%d-%d", seed, step))
			tpl.VCPUs = 1 + rng.Intn(2)
			tpl.MemoryBytes = int64(1+rng.Intn(3)) * gb
			tpl.Requeue = rng.Intn(2) == 0
			if id, err := c.Submit(tpl); err == nil {
				ids = append(ids, id)
			}
		case 3: // shutdown a random VM
			if len(ids) > 0 {
				c.Shutdown(ids[rng.Intn(len(ids))])
			}
		case 4: // migrate a random VM to a random host
			if len(ids) > 0 {
				hosts := c.Hosts()
				c.LiveMigrate(ids[rng.Intn(len(ids))], hosts[rng.Intn(len(hosts))].Name)
			}
		case 5: // suspend/resume
			if len(ids) > 0 {
				id := ids[rng.Intn(len(ids))]
				if rec, err := c.VM(id); err == nil {
					if rec.State == Suspended {
						c.Resume(id)
					} else {
						c.Suspend(id)
					}
				}
			}
		case 6: // evacuate or re-enable a host
			hosts := c.Hosts()
			h := hosts[rng.Intn(len(hosts))]
			if h.Disabled() {
				c.Enable(h.Name)
			} else if rng.Intn(3) == 0 {
				c.Evacuate(h.Name)
				c.WaitIdle()
				c.Enable(h.Name)
			}
		case 7: // consolidation pass
			if rng.Intn(2) == 0 {
				c.Consolidate()
			}
		}
		if rng.Intn(4) == 0 {
			c.WaitIdle()
			checkInvariants(t, c, step)
		}
	}
	c.WaitIdle()
	checkInvariants(t, c, -1)
}

func checkInvariants(t *testing.T, c *Cloud, step int) {
	t.Helper()
	// Expected per-host usage from the records' point of view.
	type usage struct {
		vcpus int
		mem   int64
		disk  int64
	}
	want := map[string]usage{}
	c.mu.Lock()
	for _, rec := range c.vms {
		switch rec.State {
		case Prolog, Boot, Running, Suspended, Migrating, Shutdown:
			if rec.VM == nil {
				c.mu.Unlock()
				t.Fatalf("step %d: %s in state %v with no guest", step, rec.Name(), rec.State)
			}
			h := rec.VM.Host()
			if h == nil {
				c.mu.Unlock()
				t.Fatalf("step %d: %s in state %v detached from any host", step, rec.Name(), rec.State)
			}
			u := want[h.Name]
			u.vcpus += rec.VM.Config.VCPUs
			u.mem += rec.VM.Config.MemoryBytes
			u.disk += rec.VM.Config.DiskBytes
			want[h.Name] = u
			if rec.State == Running && rec.VM.State() != virt.StateRunning {
				c.mu.Unlock()
				t.Fatalf("step %d: %s Running but guest is %v", step, rec.Name(), rec.VM.State())
			}
		case Done, Failed:
			if rec.VM != nil && rec.State == Done {
				c.mu.Unlock()
				t.Fatalf("step %d: done record %s still holds a guest", step, rec.Name())
			}
		}
	}
	hosts := append([]*virt.Host(nil), c.hosts...)
	c.mu.Unlock()

	for _, h := range hosts {
		vcpus, mem, disk := h.Usage()
		u := want[h.Name]
		// Failed hosts keep stale books (their VMs died in place);
		// skip the equality check for them.
		if h.Failed() {
			continue
		}
		if vcpus != u.vcpus || mem != u.mem || disk != u.disk {
			t.Fatalf("step %d: host %s books %d/%d/%d, records say %d/%d/%d",
				step, h.Name, vcpus, mem, disk, u.vcpus, u.mem, u.disk)
		}
		if mem > h.MemoryBytes || vcpus > h.Cores {
			t.Fatalf("step %d: host %s overcommitted (%d vcpu, %d mem)", step, h.Name, vcpus, mem)
		}
	}
}
