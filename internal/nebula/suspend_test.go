package nebula

import (
	"errors"
	"testing"
	"time"

	"videocloud/internal/virt"
)

func TestSuspendResumeCycle(t *testing.T) {
	c := testCloud(t, 1, Options{})
	id, _ := c.Submit(webTemplate("vm"))
	c.WaitIdle()
	rec, _ := c.VM(id)

	if err := c.Suspend(id); err != nil {
		t.Fatal(err)
	}
	if rec.State != Suspended {
		t.Fatalf("state = %v", rec.State)
	}
	if rec.VM.State() != virt.StatePaused {
		t.Fatalf("guest state = %v", rec.VM.State())
	}
	// Resources stay reserved while suspended.
	h, _ := c.Host("node1")
	if _, mem, _ := h.Usage(); mem != 2*gb {
		t.Fatalf("reservation dropped: %d", mem)
	}
	// Double suspend rejected.
	if err := c.Suspend(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("double suspend: %v", err)
	}
	// Cannot migrate or shut down a suspended VM.
	if err := c.LiveMigrate(id, "node1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("migrate suspended: %v", err)
	}

	before := c.Now()
	if err := c.Resume(id); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if rec.State != Running || rec.VM.State() != virt.StateRunning {
		t.Fatalf("after resume: %v / %v", rec.State, rec.VM.State())
	}
	// Restoring 2 GiB from a 120 MB/s disk takes ~17s of virtual time.
	if c.Now()-before < 10*time.Second {
		t.Fatalf("resume was instantaneous (%v)", c.Now()-before)
	}
	// Resume only from Suspended.
	if err := c.Resume(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("double resume: %v", err)
	}
}

func TestSuspendErrors(t *testing.T) {
	c := testCloud(t, 1, Options{})
	if err := c.Suspend(99); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Resume(99); !errors.Is(err, ErrNoSuchVM) {
		t.Fatalf("err = %v", err)
	}
	id, _ := c.Submit(webTemplate("vm"))
	// Still pending.
	if err := c.Suspend(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("suspend pending: %v", err)
	}
	c.WaitIdle()
}

func TestResumeAfterHostFailureFails(t *testing.T) {
	c := testCloud(t, 1, Options{})
	id, _ := c.Submit(webTemplate("vm"))
	c.WaitIdle()
	c.Suspend(id)
	h, _ := c.Host("node1")
	h.Fail()
	if err := c.Resume(id); err == nil {
		t.Fatal("resume on failed host accepted")
	}
	rec, _ := c.VM(id)
	if rec.State != Failed {
		t.Fatalf("state = %v", rec.State)
	}
}

func TestAntiAffinitySpreadsGroup(t *testing.T) {
	// Packing policy would stack everything on one host; anti-affinity
	// must override it for group members.
	c := testCloud(t, 3, Options{Policy: PackingPolicy{}})
	tpls := make([]Template, 3)
	for i := range tpls {
		tpl := webTemplate("dn" + string(rune('a'+i)))
		tpl.VCPUs = 1
		tpl.AntiAffinity = true
		tpls[i] = tpl
	}
	ids, err := c.SubmitGroup("hdfs", tpls)
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	hosts := map[string]bool{}
	for _, id := range ids {
		rec, _ := c.VM(id)
		if rec.State != Running {
			t.Fatalf("%s state = %v", rec.Name(), rec.State)
		}
		if hosts[rec.HostName] {
			t.Fatalf("two group members on %s", rec.HostName)
		}
		hosts[rec.HostName] = true
	}
}

func TestAntiAffinityBlocksWhenHostsExhausted(t *testing.T) {
	// 2 hosts, 3 anti-affine members: the third must stay pending rather
	// than violate the constraint.
	c := testCloud(t, 2, Options{})
	tpls := make([]Template, 3)
	for i := range tpls {
		tpl := webTemplate("dn" + string(rune('a'+i)))
		tpl.VCPUs = 1
		tpl.AntiAffinity = true
		tpls[i] = tpl
	}
	if _, err := c.SubmitGroup("hdfs", tpls); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if got := c.PendingCount(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	// Adding a third host unblocks it.
	if _, err := c.AddHost("node3", 8, 1e9, 16*gb, 500*gb); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if got := c.PendingCount(); got != 0 {
		t.Fatalf("pending = %d after host added", got)
	}
}

func TestNonGroupVMsUnaffectedByAntiAffinity(t *testing.T) {
	c := testCloud(t, 1, Options{})
	tpl := webTemplate("solo")
	tpl.AntiAffinity = true // no Group: flag is inert
	id, err := c.Submit(tpl)
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	rec, _ := c.VM(id)
	if rec.State != Running {
		t.Fatalf("state = %v", rec.State)
	}
}
