package nebula

import (
	"fmt"

	"videocloud/internal/virt"
)

// Template is a VM definition submitted to the cloud, the equivalent of an
// OpenNebula VM template file: capacity, image, virtualization mode, and
// optional contextualization and service-group membership.
type Template struct {
	// Name is the base VM name; instances get "-<id>" appended.
	Name string
	// VCPUs, MemoryBytes, DiskBytes are the requested capacity.
	VCPUs       int
	MemoryBytes int64
	DiskBytes   int64
	// Mode selects the virtualization strategy (default: the driver's).
	Mode virt.VirtMode
	// Image names the catalog base image to clone for the VM's disk.
	Image string
	// FullClone materialises an independent copy instead of a COW clone;
	// provisioning then has to move the whole image (experiment E6b).
	FullClone bool
	// Workload drives the guest after boot (may be nil = idle).
	Workload virt.Workload
	// Context is user-supplied contextualization merged with the
	// orchestrator-generated entries (IP, group members) at boot.
	Context map[string]string
	// Group optionally names a service group; the group's VMs are
	// treated as a unit and learn each other's addresses (§III-A).
	Group string
	// AntiAffinity keeps this VM off any host already holding another
	// member of its Group — so one host failure cannot take out several
	// HDFS DataNode VMs at once. Requires Group.
	AntiAffinity bool
	// Requeue resubmits the VM if its host fails.
	Requeue bool
	// Owner names the tenant the instance belongs to. Owned submissions
	// pass the cloud's TenantGate (quota admission, vm-seconds metering);
	// an empty Owner is unowned and bypasses the gate.
	Owner string
}

func (t Template) validate() error {
	if t.Name == "" {
		return fmt.Errorf("nebula: template with empty name")
	}
	if t.VCPUs < 1 {
		return fmt.Errorf("nebula: template %q with %d vcpus", t.Name, t.VCPUs)
	}
	if t.MemoryBytes <= 0 {
		return fmt.Errorf("nebula: template %q with non-positive memory", t.Name)
	}
	if t.DiskBytes < 0 {
		return fmt.Errorf("nebula: template %q with negative disk", t.Name)
	}
	if t.Image == "" {
		return fmt.Errorf("nebula: template %q with no image", t.Name)
	}
	return nil
}

// VMState is the orchestrator-level life-cycle, mirroring OpenNebula's:
// Pending (queued), Prolog (image staging), Boot, Running, Migrate,
// Shutdown, Done, Failed.
type VMState int

// Orchestrator VM states. Draining is an elastic-scale-down extension: the
// instance still runs but takes no new work; it moves to Shutdown once its
// in-flight work completes (or its drain deadline expires).
const (
	Pending VMState = iota
	Prolog
	Boot
	Running
	Migrating
	Suspended
	Shutdown
	Done
	Failed
	Draining
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Prolog:
		return "prolog"
	case Boot:
		return "boot"
	case Running:
		return "running"
	case Migrating:
		return "migrating"
	case Suspended:
		return "suspended"
	case Shutdown:
		return "shutdown"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Draining:
		return "draining"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}
