package nebula

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"videocloud/internal/tenant"
)

// tenantRig builds a cloud wired to a tenant registry via the VMGate
// adapter, with one "acme" tenant at the given quota.
func tenantRig(t *testing.T, hosts int, opts Options, q tenant.Quota) (*Cloud, *tenant.Registry, *tenant.Tenant) {
	t.Helper()
	c := testCloud(t, hosts, opts)
	reg := tenant.NewRegistry()
	acme, err := reg.Create("acme", 1, q)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTenantGate(tenant.VMGate{Reg: reg})
	return c, reg, acme
}

func ownedTemplate(name, owner string) Template {
	tpl := webTemplate(name)
	tpl.Owner = owner
	return tpl
}

func TestTenantGateAdmission(t *testing.T) {
	c, _, acme := tenantRig(t, 4, Options{}, tenant.Quota{MaxVMs: 2})
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ownedTemplate("web", "acme")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := c.Submit(ownedTemplate("web", "acme"))
	if !errors.Is(err, tenant.ErrQuotaExceeded) {
		t.Fatalf("third submit err = %v, want quota exceeded", err)
	}
	if got := c.Metrics().Counter("vms_quota_rejected").Value(); got != 1 {
		t.Fatalf("vms_quota_rejected = %d", got)
	}
	// Unowned submissions bypass the gate entirely.
	if _, err := c.Submit(webTemplate("infra")); err != nil {
		t.Fatalf("unowned submit: %v", err)
	}
	c.WaitIdle()
	// Retiring an instance returns its slot.
	if err := c.Shutdown(1); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if got := acme.Reservations().VMs; got != 1 {
		t.Fatalf("reserved VMs after shutdown = %d, want 1", got)
	}
	if _, err := c.Submit(ownedTemplate("web", "acme")); err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	// Unknown owners are rejected outright, not admitted unmetered.
	if _, err := c.Submit(ownedTemplate("web", "ghost")); err == nil {
		t.Fatal("submit for unknown tenant succeeded")
	}
}

// TestTenantVMSeconds checks the metered Running time equals what the state
// log records — the ledger's vm_seconds must reconcile exactly.
func TestTenantVMSeconds(t *testing.T) {
	c, reg, _ := tenantRig(t, 2, Options{}, tenant.Quota{})
	id, err := c.Submit(ownedTemplate("web", "acme"))
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	c.RunFor(90 * time.Second)
	if err := c.Shutdown(id); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	rec, _ := c.VM(id)
	var want float64
	var runningAt time.Duration
	running := false
	for _, tr := range rec.StateLog {
		if !running && tr.To == Running {
			running, runningAt = true, tr.At
		} else if running && tr.To != Running {
			running = false
			want += (tr.At - runningAt).Seconds()
		}
	}
	got := reg.Ledger().Usage("acme").VMSeconds
	if got != want || got == 0 {
		t.Fatalf("metered vm_seconds = %v, state log says %v", got, want)
	}
}

// TestTenantCrashRequeueKeepsSlot: a host crash requeues the VM without
// releasing and re-admitting its quota slot, so recovery can never push a
// tenant over MaxVMs, and the interrupted Running interval is still metered.
func TestTenantCrashRequeueKeepsSlot(t *testing.T) {
	c, reg, acme := tenantRig(t, 2, Options{}, tenant.Quota{MaxVMs: 1})
	tpl := ownedTemplate("web", "acme")
	tpl.Requeue = true
	id, err := c.Submit(tpl)
	if err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	rec, _ := c.VM(id)
	c.RunFor(30 * time.Second)
	if err := c.FailHost(rec.HostName); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if rec.State != Running {
		t.Fatalf("state after recovery = %v (%s)", rec.State, rec.FailReason)
	}
	if got := acme.Reservations().VMs; got != 1 {
		t.Fatalf("reserved VMs after recovery = %d, want 1 (no double admission)", got)
	}
	if vms, _, _ := acme.Overshoot(); vms != 0 {
		t.Fatalf("VM overshoot = %d", vms)
	}
	if secs := reg.Ledger().Usage("acme").VMSeconds; secs <= 0 {
		t.Fatalf("interrupted running interval not metered: %v", secs)
	}
	if err := c.Shutdown(id); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	if got := acme.Reservations().VMs; got != 0 {
		t.Fatalf("reserved VMs after final shutdown = %d", got)
	}
}

// TestTenantSpreadPolicy: the policy places by the owner's per-host
// footprint, not raw free memory — on a pool with one big host, a tenant's
// second VM still lands on the other host instead of stacking.
func TestTenantSpreadPolicy(t *testing.T) {
	c := New(Options{Policy: TenantSpreadPolicy{}})
	if _, err := c.Catalog().Register("ubuntu-10.04", 2*gb, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("small", 8, 1e9, 8*gb, 500*gb); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("big", 8, 1e9, 64*gb, 500*gb); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ownedTemplate("web", "acme")); err != nil {
			t.Fatal(err)
		}
		c.WaitIdle() // place one at a time so footprint is visible
	}
	hosts := map[string]bool{}
	for _, info := range c.Snapshot() {
		if info.State != Running {
			t.Fatalf("vm %d state = %v", info.ID, info.State)
		}
		hosts[info.Host] = true
	}
	if len(hosts) != 2 {
		t.Fatalf("tenant stacked on %v; want both hosts", hosts)
	}
}

// authedJSON is doJSON plus a Bearer token.
func authedJSON(t *testing.T, method, url, token, body string, out any) (int, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestAPIAuth(t *testing.T) {
	c, reg, _ := tenantRig(t, 2, Options{}, tenant.Quota{MaxVMs: 1})
	api := NewAPI(c)
	api.SetAuth(reg)
	srv := httptest.NewServer(api)
	defer srv.Close()

	operator, err := reg.IssueToken(tenant.DefaultName, tenant.RoleAdmin)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := reg.IssueToken("acme", tenant.RoleWriter)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := reg.IssueToken("acme", tenant.RoleReader)
	if err != nil {
		t.Fatal(err)
	}

	submitBody := `{"name":"web","vcpus":2,"memory_mb":2048,"disk_gb":10,"image":"ubuntu-10.04"}`

	// 401: no token, garbage token.
	if code, _ := authedJSON(t, "GET", srv.URL+"/api/vms", "", "", nil); code != 401 {
		t.Fatalf("no token: %d", code)
	}
	if code, _ := authedJSON(t, "POST", srv.URL+"/api/vms", "junk", submitBody, nil); code != 401 {
		t.Fatalf("bad token: %d", code)
	}
	// 403: read-only token on a mutating route; tenant token on host ops.
	if code, _ := authedJSON(t, "POST", srv.URL+"/api/vms", reader, submitBody, nil); code != 403 {
		t.Fatalf("reader submit: %d", code)
	}
	if code, _ := authedJSON(t, "POST", srv.URL+"/api/hosts/node1/evacuate", writer, "", nil); code != 403 {
		t.Fatalf("tenant evacuate: %d", code)
	}
	// Submissions are stamped with the token's tenant even if it lies.
	var created map[string]int
	code, _ := authedJSON(t, "POST", srv.URL+"/api/vms", writer,
		`{"name":"web","vcpus":2,"memory_mb":2048,"disk_gb":10,"image":"ubuntu-10.04","owner":"default"}`, &created)
	if code != http.StatusCreated {
		t.Fatalf("writer submit: %d", code)
	}
	if owner, _ := c.VMOwner(created["id"]); owner != "acme" {
		t.Fatalf("submitted owner = %q, want acme", owner)
	}
	// 429 + Retry-After past the VM quota.
	code, hdr := authedJSON(t, "POST", srv.URL+"/api/vms", writer, submitBody, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	c.WaitIdle()
	// Operator submits an unscoped VM; acme's token must not see or touch it.
	code, _ = authedJSON(t, "POST", srv.URL+"/api/vms", operator, submitBody, &created)
	if code != http.StatusCreated {
		t.Fatalf("operator submit: %d", code)
	}
	c.WaitIdle()
	var mine []VMWire
	if code, _ := authedJSON(t, "GET", srv.URL+"/api/vms", writer, "", &mine); code != 200 {
		t.Fatalf("scoped list: %d", code)
	}
	if len(mine) != 1 || mine[0].Owner != "acme" {
		t.Fatalf("scoped list = %+v, want only acme's VM", mine)
	}
	foreign := strconv.Itoa(created["id"])
	if code, _ := authedJSON(t, "POST", srv.URL+"/api/vms/"+foreign+"/shutdown", writer, "", nil); code != 403 {
		t.Fatalf("cross-tenant shutdown: %d", code)
	}
	if code, _ := authedJSON(t, "POST", srv.URL+"/api/vms/"+foreign+"/shutdown", operator, "", nil); code != http.StatusAccepted {
		t.Fatalf("operator shutdown: %d", code)
	}
}
