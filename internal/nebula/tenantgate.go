package nebula

import (
	"sort"

	"videocloud/internal/virt"
)

// Tenant admission and accounting for the orchestrator core. The cloud does
// not know about quotas or ledgers itself — a TenantGate (wired by core from
// the tenant registry) is consulted at submit time and told about VM
// lifetime, keeping the dependency one-way: nebula defines the seam, the
// tenant package stays ignorant of VMs.

// TenantGate admits owned VM submissions against per-tenant quotas and
// receives usage callbacks as instances run and retire.
type TenantGate interface {
	// AdmitVM runs check-and-reserve against the owner's VM quota; a
	// non-nil error (typically tenant.ErrQuotaExceeded) rejects the
	// submission before a record is created.
	AdmitVM(owner string) error
	// ReleaseVM returns the slot when the instance reaches a terminal
	// state (Done or Failed). A recovery requeue is NOT terminal: the
	// record keeps its slot while the orchestrator restarts it elsewhere,
	// so a host crash can never double-admit a tenant past its quota.
	ReleaseVM(owner string)
	// MeterVMSeconds reports one completed Running interval, measured on
	// the virtual clock.
	MeterVMSeconds(owner string, secs float64)
}

// SetTenantGate installs the admission/accounting hook. Set it before
// submitting owned templates; a nil gate (the default) admits everything and
// meters nothing, preserving single-tenant behaviour.
func (c *Cloud) SetTenantGate(g TenantGate) {
	c.mu.Lock()
	c.gate = g
	c.mu.Unlock()
}

// accountTransition runs inside setState (c.mu held): it closes a Running
// interval on the way out of Running, opens one on the way in, and returns
// the admission slot when the record settles terminally.
func (c *Cloud) accountTransition(rec *VMRecord, to VMState) {
	owner := rec.Template.Owner
	if c.gate == nil || owner == "" {
		return
	}
	now := c.sim.Now()
	if rec.State == Running && to != Running {
		c.gate.MeterVMSeconds(owner, (now - rec.runningSince).Seconds())
	}
	if to == Running && rec.State != Running {
		rec.runningSince = now
	}
	if (to == Done || to == Failed) && rec.admitted {
		rec.admitted = false
		c.gate.ReleaseVM(owner)
	}
}

// ownerAware is an optional Policy extension: policies that place by tenant
// footprint get the owner's current per-host VM counts alongside the
// request. TenantSpreadPolicy implements it.
type ownerAware interface {
	RankForOwner(candidates []*virt.Host, req virt.VMConfig, ownerVMs map[string]int) []*virt.Host
}

// ownerCountsLocked counts the owner's active instances per host (c.mu
// held). Terminal records don't occupy capacity and are skipped.
func (c *Cloud) ownerCountsLocked(owner string) map[string]int {
	counts := make(map[string]int)
	for _, rec := range c.vms {
		if rec.Template.Owner != owner || rec.HostName == "" {
			continue
		}
		switch rec.State {
		case Prolog, Boot, Running, Migrating, Suspended, Draining:
			counts[rec.HostName]++
		}
	}
	return counts
}

// TenantSpreadPolicy places each tenant's VMs on the hosts where that tenant
// has the fewest instances already, so one bulk tenant's fleet spreads thin
// instead of saturating the host a victim's VM shares — noisy-neighbor
// isolation at placement time. Ties break like striping (most free memory
// first). Templates without an Owner fall back to plain striping.
type TenantSpreadPolicy struct{}

// Name implements Policy.
func (TenantSpreadPolicy) Name() string { return "tenant-spread" }

// Rank implements Policy (the ownerless fallback).
func (TenantSpreadPolicy) Rank(candidates []*virt.Host, req virt.VMConfig) []*virt.Host {
	return StripingPolicy{}.Rank(candidates, req)
}

// RankForOwner implements ownerAware.
func (TenantSpreadPolicy) RankForOwner(candidates []*virt.Host, req virt.VMConfig, ownerVMs map[string]int) []*virt.Host {
	out := append([]*virt.Host(nil), candidates...)
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := ownerVMs[out[i].Name], ownerVMs[out[j].Name]
		if ci != cj {
			return ci < cj // fewest of this owner's VMs first
		}
		fi, fj := out[i].FreeMemory(), out[j].FreeMemory()
		if fi != fj {
			return fi > fj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
