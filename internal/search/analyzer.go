// Package search is the Nutch/Lucene stand-in of the paper's §IV: "Nutch is
// set on Hadoop and then input distributed application of Map/Reduce to
// search index for desired information by using HDFS as searching index
// storage database."
//
// It provides the text analyzer, a TF-IDF ranked inverted index, index
// segments persisted in HDFS, a crawler that discovers documents by
// following links (crawler.go), and MapReduce-based distributed index
// construction (mrindex.go) — the paper's claimed route to "sufficiently
// shorten the time spent in searching indexes space construction".
package search

import (
	"strings"
	"unicode"
)

// stopwords is the small English stopword list Lucene's StandardAnalyzer
// shipped with.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "if": true, "in": true,
	"into": true, "is": true, "it": true, "no": true, "not": true, "of": true,
	"on": true, "or": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// Analyze tokenizes text the way our indexer and query parser both must:
// lower-cased alphanumeric runs, stopwords removed, trivial plural 's'
// stripped from words of four or more letters.
func Analyze(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		cur.Reset()
		// Possessive handling: "video's" indexes as "video".
		if i := strings.IndexByte(tok, '\''); i >= 0 {
			tok = tok[:i]
		}
		if tok == "" || stopwords[tok] {
			return
		}
		tokens = append(tokens, stem(tok))
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		case r == '\'' && cur.Len() > 0:
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stem applies a minimal plural stemmer: "videos" and "video" index to the
// same term, without the mis-stemming a full Porter pass risks.
func stem(tok string) string {
	if len(tok) >= 4 && strings.HasSuffix(tok, "s") &&
		!strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us") {
		return tok[:len(tok)-1]
	}
	return tok
}
