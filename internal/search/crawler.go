package search

import (
	"fmt"
	"sort"
)

// Page is what a fetch returns: the document content plus outgoing links.
type Page struct {
	Doc   Document
	Links []string
}

// Fetcher retrieves one URL. The video website exposes its pages through
// this interface; tests use an in-memory site.
type Fetcher interface {
	Fetch(url string) (Page, error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(url string) (Page, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(url string) (Page, error) { return f(url) }

// CrawlResult reports a finished crawl.
type CrawlResult struct {
	// Fetched maps URL to the discovered document.
	Fetched map[string]Document
	// Failed maps URL to the fetch error's message.
	Failed map[string]string
	// Frontier holds URLs discovered but not visited (depth exhausted).
	Frontier []string
}

// Crawl walks the link graph breadth-first from the seeds, up to maxDepth
// hops away and at most maxPages fetches — Nutch's generate/fetch/update
// cycle collapsed into one in-process pass. Each URL is fetched at most
// once; fetch failures are recorded, not fatal.
func Crawl(f Fetcher, seeds []string, maxDepth, maxPages int) CrawlResult {
	res := CrawlResult{Fetched: map[string]Document{}, Failed: map[string]string{}}
	if maxPages <= 0 {
		return res
	}
	visited := map[string]bool{}
	frontier := append([]string(nil), seeds...)
	for depth := 0; depth <= maxDepth && len(frontier) > 0; depth++ {
		var next []string
		for _, url := range frontier {
			if visited[url] {
				continue
			}
			visited[url] = true
			if len(res.Fetched)+len(res.Failed) >= maxPages {
				res.Frontier = appendUnvisited(res.Frontier, visited, frontier, next)
				return res
			}
			page, err := f.Fetch(url)
			if err != nil {
				res.Failed[url] = err.Error()
				continue
			}
			res.Fetched[url] = page.Doc
			next = append(next, page.Links...)
		}
		frontier = next
	}
	res.Frontier = appendUnvisited(res.Frontier, visited, frontier, nil)
	return res
}

func appendUnvisited(dst []string, visited map[string]bool, lists ...[]string) []string {
	seen := map[string]bool{}
	for _, d := range dst {
		seen[d] = true
	}
	for _, list := range lists {
		for _, u := range list {
			if !visited[u] && !seen[u] {
				seen[u] = true
				dst = append(dst, u)
			}
		}
	}
	sort.Strings(dst)
	return dst
}

// IndexCrawl builds an index from a crawl's documents.
func IndexCrawl(res CrawlResult) *Index {
	ix := NewIndex()
	// Deterministic insertion order.
	urls := make([]string, 0, len(res.Fetched))
	for u := range res.Fetched {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		ix.Add(res.Fetched[u])
	}
	return ix
}

// String summarizes the crawl.
func (r CrawlResult) String() string {
	return fmt.Sprintf("crawl: %d fetched, %d failed, %d frontier",
		len(r.Fetched), len(r.Failed), len(r.Frontier))
}
