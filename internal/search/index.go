package search

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Document is one indexable item — for the video site, a video page with its
// title, description and tags flattened into Body.
type Document struct {
	ID    int64
	Title string
	Body  string
}

// titleBoost weights title matches above body matches, as the video site's
// relevance expects.
const titleBoost = 2.0

// posting records one document's occurrences of a term.
type posting struct {
	Doc int64
	// TF is the boost-weighted term frequency.
	TF float64
}

// Hit is one ranked search result.
type Hit struct {
	Doc   int64
	Score float64
}

// Index is an in-memory inverted index with TF-IDF ranking. It is safe for
// concurrent use; queries proceed under a read lock.
type Index struct {
	mu       sync.RWMutex
	postings map[string][]posting
	docLen   map[int64]float64 // per-doc weight norm
	// docTerms is the forward index (doc -> term weights), which powers
	// MoreLikeThis ("related ranking methods", paper §IV-A).
	docTerms map[int64]map[string]float64
	docs     int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string][]posting),
		docLen:   make(map[int64]float64),
		docTerms: make(map[int64]map[string]float64),
	}
}

// Add indexes a document. Re-adding an existing ID replaces it.
func (ix *Index) Add(doc Document) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.docLen[doc.ID]; exists {
		ix.removeLocked(doc.ID)
	}
	tf := docTermWeights(doc)
	if len(tf) == 0 {
		// Still count the document so IDF stays meaningful.
		ix.docLen[doc.ID] = 0
		ix.docs++
		return
	}
	var norm float64
	for term, w := range tf {
		ix.postings[term] = append(ix.postings[term], posting{Doc: doc.ID, TF: w})
		norm += w * w
	}
	ix.docLen[doc.ID] = math.Sqrt(norm)
	ix.docTerms[doc.ID] = tf
	ix.docs++
}

// docTermWeights computes boost-weighted term frequencies for a document.
func docTermWeights(doc Document) map[string]float64 {
	tf := make(map[string]float64)
	for _, t := range Analyze(doc.Title) {
		tf[t] += titleBoost
	}
	for _, t := range Analyze(doc.Body) {
		tf[t]++
	}
	return tf
}

// Remove deletes a document from the index (a video was deleted by its
// uploader, §I "edit or delete uploaded videos").
func (ix *Index) Remove(id int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Index) removeLocked(id int64) {
	if _, ok := ix.docLen[id]; !ok {
		return
	}
	for term, list := range ix.postings {
		kept := list[:0]
		for _, p := range list {
			if p.Doc != id {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(ix.postings, term)
		} else {
			ix.postings[term] = kept
		}
	}
	delete(ix.docLen, id)
	delete(ix.docTerms, id)
	ix.docs--
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs
}

// Terms returns the vocabulary size.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// Search ranks documents against the query with TF-IDF scoring and returns
// up to limit hits, best first. Documents matching more query terms always
// score above documents matching fewer (conjunctive tiers), matching how a
// video search should treat multi-word queries.
func (ix *Index) Search(query string, limit int) []Hit {
	terms := Analyze(query)
	if len(terms) == 0 || limit <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	scores := make(map[int64]float64)
	matched := make(map[int64]int)
	seen := make(map[string]bool)
	for _, term := range terms {
		if seen[term] {
			continue
		}
		seen[term] = true
		list := ix.postings[term]
		if len(list) == 0 {
			continue
		}
		idf := math.Log(1 + float64(ix.docs)/float64(len(list)))
		for _, p := range list {
			w := (1 + math.Log(p.TF)) * idf * idf
			if n := ix.docLen[p.Doc]; n > 0 {
				w /= n
			}
			scores[p.Doc] += w
			matched[p.Doc]++
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		// Tiering: each extra matched term dominates any score sum.
		hits = append(hits, Hit{Doc: doc, Score: s + 1000*float64(matched[doc]-1)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Merge folds other's postings into ix (used to combine MapReduce-built
// partial indexes). Documents present in both panic: partitions must be
// disjoint.
func (ix *Index) Merge(other *Index) {
	other.mu.RLock()
	defer other.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for id, n := range other.docLen {
		if _, dup := ix.docLen[id]; dup {
			panic(fmt.Sprintf("search: merge with overlapping document %d", id))
		}
		ix.docLen[id] = n
		ix.docs++
	}
	for id, tf := range other.docTerms {
		ix.docTerms[id] = tf
	}
	for term, list := range other.postings {
		ix.postings[term] = append(ix.postings[term], list...)
	}
}

// MoreLikeThis returns up to limit documents most similar to doc id, best
// first, never including the document itself — the "related videos" list on
// the player page. Similarity is TF-IDF scoring with the source document's
// strongest terms used as the query.
func (ix *Index) MoreLikeThis(id int64, limit int) []Hit {
	if limit <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	tf, ok := ix.docTerms[id]
	if !ok {
		return nil
	}
	// Take the source's strongest terms by tf*idf.
	type tw struct {
		term   string
		weight float64
	}
	terms := make([]tw, 0, len(tf))
	for term, w := range tf {
		df := len(ix.postings[term])
		if df == 0 {
			continue
		}
		idf := math.Log(1 + float64(ix.docs)/float64(df))
		terms = append(terms, tw{term, w * idf})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].weight != terms[j].weight {
			return terms[i].weight > terms[j].weight
		}
		return terms[i].term < terms[j].term
	})
	const queryTerms = 10
	if len(terms) > queryTerms {
		terms = terms[:queryTerms]
	}
	scores := make(map[int64]float64)
	for _, t := range terms {
		list := ix.postings[t.term]
		idf := math.Log(1 + float64(ix.docs)/float64(len(list)))
		for _, p := range list {
			if p.Doc == id {
				continue
			}
			w := (1 + math.Log(p.TF)) * idf * t.weight
			if n := ix.docLen[p.Doc]; n > 0 {
				w /= n
			}
			scores[p.Doc] += w
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{Doc: doc, Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}
