package search

import (
	"testing"
)

func themedIndex() *Index {
	ix := NewIndex()
	// Two dance videos, two cooking videos, one cloud lecture.
	ix.Add(Document{ID: 1, Title: "Nobody dance practice", Body: "pop dance choreography studio mirror"})
	ix.Add(Document{ID: 2, Title: "Dance cover compilation", Body: "pop dance choreography stage lights"})
	ix.Add(Document{ID: 3, Title: "Pasta carbonara", Body: "cooking recipe kitchen italian eggs"})
	ix.Add(Document{ID: 4, Title: "Ramen at home", Body: "cooking recipe kitchen broth noodles"})
	ix.Add(Document{ID: 5, Title: "KVM lecture", Body: "cloud virtualization hypervisor kernel"})
	return ix
}

func TestMoreLikeThisFindsThematicNeighbours(t *testing.T) {
	ix := themedIndex()
	rel := ix.MoreLikeThis(1, 3)
	if len(rel) == 0 {
		t.Fatal("no related docs")
	}
	if rel[0].Doc != 2 {
		t.Fatalf("top related to dance video = %d, want the other dance video", rel[0].Doc)
	}
	for _, h := range rel {
		if h.Doc == 1 {
			t.Fatal("MoreLikeThis returned the source document")
		}
	}
	// Cooking video relates to cooking video.
	rel = ix.MoreLikeThis(3, 1)
	if len(rel) != 1 || rel[0].Doc != 4 {
		t.Fatalf("related to pasta = %+v, want ramen", rel)
	}
}

func TestMoreLikeThisEdgeCases(t *testing.T) {
	ix := themedIndex()
	if rel := ix.MoreLikeThis(999, 5); rel != nil {
		t.Fatalf("unknown doc returned %v", rel)
	}
	if rel := ix.MoreLikeThis(1, 0); rel != nil {
		t.Fatal("limit 0 returned hits")
	}
	// Removing the only neighbour empties the result.
	ix.Remove(2)
	rel := ix.MoreLikeThis(1, 5)
	for _, h := range rel {
		if h.Doc == 2 {
			t.Fatal("removed doc still related")
		}
	}
	// Ordered by score.
	for i := 1; i < len(rel); i++ {
		if rel[i].Score > rel[i-1].Score {
			t.Fatal("related hits not sorted")
		}
	}
}

func TestMoreLikeThisSurvivesSegmentRoundTrip(t *testing.T) {
	ix := themedIndex()
	data, err := ix.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	rel := back.MoreLikeThis(1, 1)
	if len(rel) != 1 || rel[0].Doc != 2 {
		t.Fatalf("related after round trip = %+v", rel)
	}
}

func TestMoreLikeThisFromMapReduceIndex(t *testing.T) {
	c, e := mrRig(t, 3)
	docs := []Document{
		{ID: 1, Title: "dance one", Body: "pop dance choreography"},
		{ID: 2, Title: "dance two", Body: "pop dance stage"},
		{ID: 3, Title: "cooking", Body: "recipe kitchen pasta"},
	}
	paths, err := WriteCorpus(c.Client(""), "/corpus", docs, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix, _, err := BuildIndexMR(e, paths, "")
	if err != nil {
		t.Fatal(err)
	}
	rel := ix.MoreLikeThis(1, 1)
	if len(rel) != 1 || rel[0].Doc != 2 {
		t.Fatalf("MR-built related = %+v", rel)
	}
}

func TestMoreLikeThisMergePreservesForwardIndex(t *testing.T) {
	a, b := NewIndex(), NewIndex()
	a.Add(Document{ID: 1, Title: "dance one", Body: "pop dance"})
	b.Add(Document{ID: 2, Title: "dance two", Body: "pop dance"})
	a.Merge(b)
	rel := a.MoreLikeThis(2, 1)
	if len(rel) != 1 || rel[0].Doc != 1 {
		t.Fatalf("related after merge = %+v", rel)
	}
}
