package search

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"videocloud/internal/hdfs"
	"videocloud/internal/mapred"
)

// This file implements distributed index construction: documents are stored
// in HDFS as newline-delimited records, a MapReduce job tokenizes them in
// parallel across the cluster's TaskTrackers, and the reduce side assembles
// postings lists. It is the paper's "distributed computation in Map-Reduced
// programming in order to sufficiently shorten the time spent in searching
// indexes space construction" (§I), measured by experiment E3.

// docRecord is the on-HDFS line format: id<TAB>base64(title)<TAB>base64(body).
func docRecord(doc Document) string {
	return fmt.Sprintf("%d\t%s\t%s\n",
		doc.ID,
		base64.StdEncoding.EncodeToString([]byte(doc.Title)),
		base64.StdEncoding.EncodeToString([]byte(doc.Body)))
}

func parseDocRecord(line string) (Document, error) {
	parts := strings.Split(line, "\t")
	if len(parts) != 3 {
		return Document{}, fmt.Errorf("search: malformed doc record %q", line)
	}
	id, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Document{}, fmt.Errorf("search: bad doc id %q: %v", parts[0], err)
	}
	title, err := base64.StdEncoding.DecodeString(parts[1])
	if err != nil {
		return Document{}, fmt.Errorf("search: bad title encoding: %v", err)
	}
	body, err := base64.StdEncoding.DecodeString(parts[2])
	if err != nil {
		return Document{}, fmt.Errorf("search: bad body encoding: %v", err)
	}
	return Document{ID: id, Title: string(title), Body: string(body)}, nil
}

// WriteCorpus stores documents as HDFS record files, splitting the corpus
// into shards of shardDocs documents so the MapReduce input has multiple
// blocks/splits to parallelize over. It returns the shard paths.
func WriteCorpus(client *hdfs.Client, dir string, docs []Document, shardDocs, replication int) ([]string, error) {
	if shardDocs <= 0 {
		shardDocs = 1000
	}
	if err := client.Mkdir(dir); err != nil {
		return nil, err
	}
	var paths []string
	for start := 0; start < len(docs); start += shardDocs {
		end := start + shardDocs
		if end > len(docs) {
			end = len(docs)
		}
		var b strings.Builder
		for _, d := range docs[start:end] {
			b.WriteString(docRecord(d))
		}
		path := fmt.Sprintf("%s/docs-%05d", strings.TrimSuffix(dir, "/"), start/shardDocs)
		if err := client.WriteFile(path, []byte(b.String()), replication); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// postingWire is the JSON value the indexing job's reducers emit.
type postingWire struct {
	Doc int64   `json:"d"`
	TF  float64 `json:"t"`
}

// IndexJob returns the MapReduce job that builds postings from corpus
// shards. Used directly by BuildIndexMR; exposed for benchmarks that want
// to run it under different engine configurations.
func IndexJob(inputs []string, output string) mapred.Job {
	return mapred.Job{
		Name:       "build-index",
		InputPaths: inputs,
		OutputPath: output,
		Map: func(path string, data []byte, emit func(k, v string)) error {
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(line) == "" {
					continue
				}
				doc, err := parseDocRecord(line)
				if err != nil {
					return err
				}
				for term, w := range docTermWeights(doc) {
					wire, _ := json.Marshal(postingWire{Doc: doc.ID, TF: w})
					emit(term, string(wire))
				}
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			list := make([]postingWire, 0, len(values))
			for _, v := range values {
				var p postingWire
				if err := json.Unmarshal([]byte(v), &p); err != nil {
					return err
				}
				list = append(list, p)
			}
			wire, err := json.Marshal(list)
			if err != nil {
				return err
			}
			emit(key, string(wire))
			return nil
		},
	}
}

// BuildIndexMR runs the distributed indexing job and assembles the final
// searchable index from its output. The returned JobResult carries the
// modelled parallel construction time for E3.
func BuildIndexMR(engine *mapred.Engine, inputs []string, output string) (*Index, *mapred.JobResult, error) {
	return BuildIndexMRCtx(context.Background(), engine, inputs, output)
}

// BuildIndexMRCtx is BuildIndexMR linked to the trace span in ctx: the
// MapReduce job records mapred.job / task-attempt spans under the caller's
// trace.
func BuildIndexMRCtx(ctx context.Context, engine *mapred.Engine, inputs []string, output string) (*Index, *mapred.JobResult, error) {
	res, err := engine.RunCtx(ctx, IndexJob(inputs, output))
	if err != nil {
		return nil, nil, err
	}
	ix := NewIndex()
	docSet := make(map[int64]bool)
	for _, kv := range res.Output {
		var list []postingWire
		if err := json.Unmarshal([]byte(kv.Value), &list); err != nil {
			return nil, nil, fmt.Errorf("search: bad reducer output for %q: %v", kv.Key, err)
		}
		for _, p := range list {
			ix.postings[kv.Key] = append(ix.postings[kv.Key], posting{Doc: p.Doc, TF: p.TF})
			docSet[p.Doc] = true
			ix.docLen[p.Doc] += p.TF * p.TF
			tf := ix.docTerms[p.Doc]
			if tf == nil {
				tf = make(map[string]float64)
				ix.docTerms[p.Doc] = tf
			}
			tf[kv.Key] = p.TF
		}
	}
	for id, sq := range ix.docLen {
		ix.docLen[id] = math.Sqrt(sq)
	}
	ix.docs = len(docSet)
	return ix, res, nil
}
