package search

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"videocloud/internal/hdfs"
	"videocloud/internal/mapred"
)

func TestAnalyze(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"The quick brown fox", []string{"quick", "brown", "fox"}},
		{"videos VIDEO Video's", []string{"video", "video", "video"}},
		{"H.264 1080p", []string{"h", "264", "1080p"}},
		{"", nil},
		{"the a of to", nil},
		{"glass buses", []string{"glass", "buse"}}, // -ss and -es edge
		{"日本語 test", []string{"日本語", "test"}},
	}
	for _, tc := range cases {
		if got := Analyze(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("Analyze(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func sampleDocs() []Document {
	return []Document{
		{ID: 1, Title: "Nobody knows", Body: "music video pop korea dance"},
		{ID: 2, Title: "Cloud computing tutorial", Body: "kvm opennebula hadoop deployment lecture"},
		{ID: 3, Title: "Dance practice", Body: "nobody dance cover practice room"},
		{ID: 4, Title: "Cooking pasta", Body: "italian kitchen recipe tomato"},
		{ID: 5, Title: "KVM internals", Body: "virtualization kernel linux hypervisor cloud"},
	}
}

func buildIndex() *Index {
	ix := NewIndex()
	for _, d := range sampleDocs() {
		ix.Add(d)
	}
	return ix
}

func TestSearchBasics(t *testing.T) {
	ix := buildIndex()
	if ix.Docs() != 5 {
		t.Fatalf("Docs = %d", ix.Docs())
	}
	if ix.Terms() == 0 {
		t.Fatal("empty vocabulary")
	}
	// The paper's demo query (Figure 18): "nobody".
	hits := ix.Search("nobody", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	// Title match (doc 1) outranks body match (doc 3).
	if hits[0].Doc != 1 || hits[1].Doc != 3 {
		t.Fatalf("ranking = %+v, want doc1 before doc3", hits)
	}
	// No match.
	if hits := ix.Search("zebra", 10); len(hits) != 0 {
		t.Fatalf("ghost query hits = %+v", hits)
	}
	// Empty and stopword-only queries.
	if hits := ix.Search("", 10); hits != nil {
		t.Fatal("empty query returned hits")
	}
	if hits := ix.Search("the of and", 10); hits != nil {
		t.Fatal("stopword query returned hits")
	}
	if hits := ix.Search("nobody", 0); hits != nil {
		t.Fatal("limit 0 returned hits")
	}
}

func TestMultiTermConjunctiveTiering(t *testing.T) {
	ix := buildIndex()
	// "cloud kvm": doc 5 matches both, docs 2 matches both too; doc 2 and
	// 5 must both rank above any single-term match.
	hits := ix.Search("cloud kvm", 10)
	if len(hits) < 2 {
		t.Fatalf("hits = %+v", hits)
	}
	top2 := map[int64]bool{hits[0].Doc: true, hits[1].Doc: true}
	if !top2[2] || !top2[5] {
		t.Fatalf("docs matching both terms not on top: %+v", hits)
	}
}

func TestSearchLimit(t *testing.T) {
	ix := buildIndex()
	hits := ix.Search("dance", 1)
	if len(hits) != 1 {
		t.Fatalf("limit ignored: %+v", hits)
	}
}

func TestRemoveAndReAdd(t *testing.T) {
	ix := buildIndex()
	ix.Remove(1)
	if ix.Docs() != 4 {
		t.Fatalf("Docs = %d", ix.Docs())
	}
	hits := ix.Search("nobody", 10)
	if len(hits) != 1 || hits[0].Doc != 3 {
		t.Fatalf("hits after remove = %+v", hits)
	}
	// Replace semantics: re-add with new content.
	ix.Add(Document{ID: 3, Title: "Totally different", Body: "unrelated content"})
	if ix.Docs() != 4 {
		t.Fatalf("Docs after replace = %d", ix.Docs())
	}
	if hits := ix.Search("nobody", 10); len(hits) != 0 {
		t.Fatalf("stale postings: %+v", hits)
	}
	if hits := ix.Search("totally different", 10); len(hits) != 1 {
		t.Fatalf("replacement not searchable: %+v", hits)
	}
	// Removing a ghost is a no-op.
	ix.Remove(999)
	if ix.Docs() != 4 {
		t.Fatal("ghost remove changed count")
	}
}

func TestIDFPrefersRareTerms(t *testing.T) {
	ix := NewIndex()
	for i := int64(1); i <= 20; i++ {
		ix.Add(Document{ID: i, Title: fmt.Sprintf("video %d", i), Body: "common common common"})
	}
	ix.Add(Document{ID: 100, Title: "the rare gem", Body: "common unique"})
	hits := ix.Search("common unique", 5)
	if hits[0].Doc != 100 {
		t.Fatalf("doc with rare term not first: %+v", hits)
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	ix := buildIndex()
	data, err := ix.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Docs() != ix.Docs() || back.Terms() != ix.Terms() {
		t.Fatalf("decoded %d/%d, want %d/%d", back.Docs(), back.Terms(), ix.Docs(), ix.Terms())
	}
	for _, q := range []string{"nobody", "cloud kvm", "dance"} {
		if !reflect.DeepEqual(back.Search(q, 10), ix.Search(q, 10)) {
			t.Fatalf("query %q differs after round trip", q)
		}
	}
	if _, err := DecodeIndex([]byte("garbage")); err == nil {
		t.Fatal("garbage segment decoded")
	}
}

func TestSegmentInHDFS(t *testing.T) {
	c := hdfs.NewCluster(3, 64*1024)
	cl := c.Client("")
	ix := buildIndex()
	if err := ix.SaveSegment(cl, "/index/segment-0", 3); err != nil {
		t.Fatal(err)
	}
	// Re-index overwrites ("renew indexed material every certain time").
	ix.Add(Document{ID: 6, Title: "Fresh upload", Body: "new video"})
	if err := ix.SaveSegment(cl, "/index/segment-0", 3); err != nil {
		t.Fatal(err)
	}
	// A datanode dies; the segment must still load (replicated storage).
	blocks, _ := cl.BlockLocations("/index/segment-0")
	c.KillDataNode(blocks[0].Locations[0])
	back, err := LoadSegment(cl, "/index/segment-0")
	if err != nil {
		t.Fatal(err)
	}
	if back.Docs() != 6 {
		t.Fatalf("Docs = %d after reload", back.Docs())
	}
	if hits := back.Search("fresh upload", 5); len(hits) != 1 || hits[0].Doc != 6 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestMergeDisjoint(t *testing.T) {
	a, b := NewIndex(), NewIndex()
	a.Add(Document{ID: 1, Title: "alpha", Body: "shared term"})
	b.Add(Document{ID: 2, Title: "beta", Body: "shared term"})
	a.Merge(b)
	if a.Docs() != 2 {
		t.Fatalf("Docs = %d", a.Docs())
	}
	if hits := a.Search("shared", 5); len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	// Overlap panics.
	c := NewIndex()
	c.Add(Document{ID: 1, Title: "dup", Body: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping merge did not panic")
		}
	}()
	a.Merge(c)
}

func TestCrawler(t *testing.T) {
	site := map[string]Page{
		"/":        {Doc: Document{ID: 1, Title: "home", Body: "welcome"}, Links: []string{"/v/1", "/v/2"}},
		"/v/1":     {Doc: Document{ID: 2, Title: "first video", Body: "cats"}, Links: []string{"/v/2", "/v/3"}},
		"/v/2":     {Doc: Document{ID: 3, Title: "second video", Body: "dogs"}, Links: []string{"/"}},
		"/v/3":     {Doc: Document{ID: 4, Title: "third video", Body: "birds"}, Links: []string{"/deep"}},
		"/deep":    {Doc: Document{ID: 5, Title: "deep page", Body: "hidden"}, Links: nil},
		"/broken2": {},
	}
	fetch := FetcherFunc(func(url string) (Page, error) {
		p, ok := site[url]
		if !ok || url == "/broken2" {
			return Page{}, fmt.Errorf("404 %s", url)
		}
		return p, nil
	})
	res := Crawl(fetch, []string{"/", "/broken"}, 2, 100)
	if len(res.Fetched) != 4 { // home, v1, v2, v3 (deep is depth 3)
		t.Fatalf("fetched = %v", res)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("failed = %v", res.Failed)
	}
	if len(res.Frontier) != 1 || res.Frontier[0] != "/deep" {
		t.Fatalf("frontier = %v", res.Frontier)
	}
	// Deeper crawl reaches everything.
	res = Crawl(fetch, []string{"/"}, 5, 100)
	if len(res.Fetched) != 5 {
		t.Fatalf("deep crawl fetched %d", len(res.Fetched))
	}
	// Page cap respected.
	res = Crawl(fetch, []string{"/"}, 5, 2)
	if len(res.Fetched)+len(res.Failed) > 2 {
		t.Fatalf("page cap exceeded: %s", res)
	}
	// Index the crawl.
	ix := IndexCrawl(Crawl(fetch, []string{"/"}, 5, 100))
	if hits := ix.Search("birds", 5); len(hits) != 1 || hits[0].Doc != 4 {
		t.Fatalf("crawl index hits = %+v", hits)
	}
	if res.String() == "" {
		t.Fatal("empty crawl summary")
	}
}

func mrRig(t *testing.T, nodes int) (*hdfs.Cluster, *mapred.Engine) {
	t.Helper()
	c := hdfs.NewCluster(nodes, 32*1024)
	trackers := make([]string, nodes)
	for i := range trackers {
		trackers[i] = fmt.Sprintf("dn%d", i)
	}
	e, err := mapred.NewEngine(c, trackers, mapred.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c, e
}

func bigCorpus(n int) []Document {
	topics := []string{"cloud kvm virtualization", "music dance pop", "cooking recipe pasta",
		"lecture hadoop mapreduce", "travel tokyo japan"}
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = Document{
			ID:    int64(i + 1),
			Title: fmt.Sprintf("video number %d about %s", i+1, topics[i%len(topics)]),
			Body:  strings.Repeat(topics[i%len(topics)]+" uploaded content description ", 8),
		}
	}
	return docs
}

func TestMapReduceIndexMatchesDirect(t *testing.T) {
	c, e := mrRig(t, 4)
	docs := bigCorpus(300)
	paths, err := WriteCorpus(c.Client(""), "/corpus", docs, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 6 {
		t.Fatalf("%d shards", len(paths))
	}
	mrIx, res, err := BuildIndexMR(e, paths, "/index-out")
	if err != nil {
		t.Fatal(err)
	}
	direct := NewIndex()
	for _, d := range docs {
		direct.Add(d)
	}
	if mrIx.Docs() != direct.Docs() || mrIx.Terms() != direct.Terms() {
		t.Fatalf("MR index %d/%d vs direct %d/%d",
			mrIx.Docs(), mrIx.Terms(), direct.Docs(), direct.Terms())
	}
	for _, q := range []string{"cloud kvm", "dance", "tokyo", "recipe pasta"} {
		a, b := mrIx.Search(q, 20), direct.Search(q, 20)
		if len(a) != len(b) {
			t.Fatalf("query %q: MR %d hits vs direct %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].Doc != b[i].Doc {
				t.Fatalf("query %q: rank %d differs (%d vs %d)", q, i, a[i].Doc, b[i].Doc)
			}
		}
	}
	if res.Duration == 0 || len(res.MapTasks) == 0 {
		t.Fatal("no job stats")
	}
}

func TestMapReduceIndexScales(t *testing.T) {
	build := func(nodes int) *mapred.JobResult {
		c, e := mrRig(t, nodes)
		docs := bigCorpus(400)
		paths, err := WriteCorpus(c.Client(""), "/corpus", docs, 25, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := BuildIndexMR(e, paths, "")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	d1 := build(1).Duration
	d8 := build(8).Duration
	if speedup := float64(d1) / float64(d8); speedup < 2 {
		t.Fatalf("8-node index build speedup = %.2f", speedup)
	}
}

// Property: search scores are non-increasing down the hit list and every
// hit actually contains at least one query term.
func TestPropertyRankingInvariants(t *testing.T) {
	docs := bigCorpus(60)
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	queries := []string{"cloud", "dance pop", "hadoop mapreduce lecture", "travel", "video"}
	f := func(qi uint8, limit uint8) bool {
		q := queries[int(qi)%len(queries)]
		hits := ix.Search(q, int(limit%30)+1)
		terms := Analyze(q)
		for i, h := range hits {
			if i > 0 && hits[i-1].Score < h.Score {
				return false
			}
			doc := docs[h.Doc-1]
			text := strings.ToLower(doc.Title + " " + doc.Body)
			any := false
			for _, term := range terms {
				if strings.Contains(text, term) {
					any = true
					break
				}
			}
			if !any {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
