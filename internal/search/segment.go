package search

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"videocloud/internal/hdfs"
)

// segmentWire is the serialized form of an index segment. Nutch stores its
// index segments in HDFS; so do we — replicated blocks mean the index
// survives node failures, "to lower damage risks caused by hosts" (§III).
type segmentWire struct {
	Postings map[string][]posting
	DocLen   map[int64]float64
	DocTerms map[int64]map[string]float64
	Docs     int
}

// Encode serializes the index into a byte segment.
func (ix *Index) Encode() ([]byte, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	err := enc.Encode(segmentWire{
		Postings: ix.postings, DocLen: ix.docLen, DocTerms: ix.docTerms, Docs: ix.docs,
	})
	if err != nil {
		return nil, fmt.Errorf("search: encode segment: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeIndex reconstructs an index from a segment.
func DecodeIndex(data []byte) (*Index, error) {
	var wire segmentWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("search: decode segment: %w", err)
	}
	ix := NewIndex()
	if wire.Postings != nil {
		ix.postings = wire.Postings
	}
	if wire.DocLen != nil {
		ix.docLen = wire.DocLen
	}
	if wire.DocTerms != nil {
		ix.docTerms = wire.DocTerms
	}
	ix.docs = wire.Docs
	return ix, nil
}

// SaveSegment writes the index as an HDFS file with the given replication.
func (ix *Index) SaveSegment(client *hdfs.Client, path string, replication int) error {
	data, err := ix.Encode()
	if err != nil {
		return err
	}
	// Replace any previous segment at this path (periodic re-index).
	if _, serr := client.Stat(path); serr == nil {
		if derr := client.Remove(path); derr != nil {
			return derr
		}
	}
	return client.WriteFile(path, data, replication)
}

// LoadSegment reads an index segment from HDFS.
func LoadSegment(client *hdfs.Client, path string) (*Index, error) {
	data, err := client.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeIndex(data)
}
