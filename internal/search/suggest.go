package search

import (
	"sort"
	"strings"
)

// Suggest returns up to limit indexed terms that begin with the query's
// last token, ranked by document frequency — the type-ahead behaviour of
// the paper's search box ("people can find films fast via index searching",
// §IV-A). Earlier tokens of the query are kept verbatim in the returned
// completions.
func (ix *Index) Suggest(query string, limit int) []string {
	if limit <= 0 {
		return nil
	}
	// The last token is being typed; analyze leniently (no stopword
	// filtering on the prefix — "th" should still complete).
	raw := strings.Fields(strings.ToLower(query))
	if len(raw) == 0 {
		return nil
	}
	prefix := stem(raw[len(raw)-1])
	if strings.HasSuffix(raw[len(raw)-1], "s") {
		// Don't stem a still-being-typed token: "glas" vs "glass".
		prefix = raw[len(raw)-1]
	}
	head := strings.Join(raw[:len(raw)-1], " ")

	ix.mu.RLock()
	type cand struct {
		term string
		df   int
	}
	var cands []cand
	for term, list := range ix.postings {
		if strings.HasPrefix(term, prefix) {
			cands = append(cands, cand{term, len(list)})
		}
	}
	ix.mu.RUnlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].df != cands[j].df {
			return cands[i].df > cands[j].df
		}
		return cands[i].term < cands[j].term
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		if head == "" {
			out[i] = c.term
		} else {
			out[i] = head + " " + c.term
		}
	}
	return out
}
