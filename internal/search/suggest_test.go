package search

import (
	"reflect"
	"testing"
)

func suggestIndex() *Index {
	ix := NewIndex()
	ix.Add(Document{ID: 1, Title: "dance practice", Body: "dance dance dance"})
	ix.Add(Document{ID: 2, Title: "dance cover", Body: "dancing stage"})
	ix.Add(Document{ID: 3, Title: "dandelion field", Body: "nature spring"})
	ix.Add(Document{ID: 4, Title: "cooking show", Body: "kitchen"})
	return ix
}

func TestSuggestRanksByFrequency(t *testing.T) {
	ix := suggestIndex()
	got := ix.Suggest("dan", 5)
	// "dance" (2 docs) outranks "dancing" (1) and "dandelion" (1).
	if len(got) < 3 || got[0] != "dance" {
		t.Fatalf("Suggest = %v", got)
	}
	rest := got[1:]
	want := []string{"dancing", "dandelion"}
	if !reflect.DeepEqual(rest, want) {
		t.Fatalf("tail = %v, want %v (alphabetical among equals)", rest, want)
	}
}

func TestSuggestKeepsQueryHead(t *testing.T) {
	ix := suggestIndex()
	got := ix.Suggest("cooking da", 2)
	if len(got) == 0 || got[0] != "cooking dance" {
		t.Fatalf("Suggest = %v", got)
	}
}

func TestSuggestLimitsAndEdges(t *testing.T) {
	ix := suggestIndex()
	if got := ix.Suggest("dan", 1); len(got) != 1 {
		t.Fatalf("limit ignored: %v", got)
	}
	if got := ix.Suggest("", 5); got != nil {
		t.Fatalf("empty query suggested %v", got)
	}
	if got := ix.Suggest("dan", 0); got != nil {
		t.Fatal("limit 0 returned suggestions")
	}
	if got := ix.Suggest("zzz", 5); len(got) != 0 {
		t.Fatalf("no-match prefix suggested %v", got)
	}
	// Case-insensitive.
	if got := ix.Suggest("DAN", 5); len(got) == 0 {
		t.Fatal("uppercase prefix found nothing")
	}
}

func TestSuggestFollowsIndexUpdates(t *testing.T) {
	ix := suggestIndex()
	ix.Remove(3)
	for _, s := range ix.Suggest("dan", 5) {
		if s == "dandelion" {
			t.Fatal("removed doc's term still suggested")
		}
	}
	ix.Add(Document{ID: 5, Title: "dangerous stunts", Body: "action"})
	found := false
	for _, s := range ix.Suggest("dang", 5) {
		if s == "dangerou" || s == "dangerous" { // analyzer may stem
			found = true
		}
	}
	if !found {
		t.Fatal("new doc's term not suggested")
	}
}
