package simnet

import (
	"fmt"
	"testing"

	"videocloud/internal/simtime"
)

// BenchmarkManyConcurrentFlows measures the max-min fair-share recomputation
// under churn: 32 hosts, 64 overlapping flows.
func BenchmarkManyConcurrentFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simtime.NewSimulator()
		n := New(sim)
		n.AddUniformHosts("h", 32, 100*MB, 0)
		for f := 0; f < 64; f++ {
			src := fmt.Sprintf("h%d", f%32)
			dst := fmt.Sprintf("h%d", (f+7)%32)
			if _, err := n.Transfer(src, dst, 10*MB, nil); err != nil {
				b.Fatal(err)
			}
		}
		sim.Run()
		if got := n.Metrics().Counter("flows_completed").Value(); got != 64 {
			b.Fatalf("completed %d flows", got)
		}
	}
}
