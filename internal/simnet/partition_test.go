package simnet

import (
	"testing"
	"time"
)

// A partitioned destination freezes the flow; healing resumes it from where
// it stalled, so total transfer time = pre-partition progress + outage +
// remainder.
func TestPartitionStallsAndHealResumes(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 0)
	n.AddHost("b", 100*MB, 100*MB, 0)
	var res Result
	done := false
	if _, err := n.Transfer("a", "b", 100*MB, func(r Result) { res = r; done = true }); err != nil {
		t.Fatal(err)
	}
	// Let half the bytes move, then cut the cable for 3 seconds.
	sim.Schedule(500*time.Millisecond, func() {
		if err := n.Partition("b"); err != nil {
			t.Errorf("partition: %v", err)
		}
	})
	sim.Schedule(3500*time.Millisecond, func() {
		if err := n.Heal("b"); err != nil {
			t.Errorf("heal: %v", err)
		}
	})
	sim.Run()
	if !done {
		t.Fatal("flow never completed after heal")
	}
	got := res.Duration().Seconds()
	// 0.5s progress + 3s outage + 0.5s remainder = 4s.
	if got < 3.95 || got > 4.05 {
		t.Fatalf("transfer took %.4fs, want ~4s (stall included)", got)
	}
}

func TestPartitionNeverCompletesWithoutHeal(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 0)
	n.AddHost("b", 100*MB, 100*MB, 0)
	done := false
	n.Transfer("a", "b", 10*MB, func(Result) { done = true })
	sim.Schedule(time.Millisecond, func() { n.Partition("b") })
	sim.RunFor(time.Hour)
	if done {
		t.Fatal("flow completed through a partition")
	}
	if !n.Partitioned("b") {
		t.Fatal("Partitioned(b) = false")
	}
	// The stalled flow is still tracked, waiting for a heal.
	if n.ActiveFlows() != 1 {
		t.Fatalf("ActiveFlows = %d, want 1 stalled", n.ActiveFlows())
	}
}

// New transfers issued while the host is partitioned stall too, and a flow
// between two healthy hosts is unaffected.
func TestPartitionIsolatesOnlyTargetHost(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 0)
	n.AddHost("b", 100*MB, 100*MB, 0)
	n.AddHost("c", 100*MB, 100*MB, 0)
	if err := n.Partition("b"); err != nil {
		t.Fatal(err)
	}
	stalled, healthy := false, false
	n.Transfer("a", "b", 10*MB, func(Result) { stalled = true })
	n.Transfer("a", "c", 10*MB, func(Result) { healthy = true })
	sim.RunFor(time.Minute)
	if stalled {
		t.Fatal("transfer into partition completed")
	}
	if !healthy {
		t.Fatal("unrelated transfer was blocked")
	}
}

func TestPartitionUnknownHost(t *testing.T) {
	_, n := newNet(t)
	if err := n.Partition("ghost"); err == nil {
		t.Fatal("want error for unknown host")
	}
	if err := n.Heal("ghost"); err == nil {
		t.Fatal("want error for unknown host")
	}
}

func TestSetLatencyAppliesToNewTransfers(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 0)
	n.AddHost("b", 100*MB, 100*MB, 0)
	if err := n.SetLatency("b", 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var res Result
	n.Transfer("a", "b", 0, func(r Result) { res = r })
	sim.Run()
	if res.Duration() != 50*time.Millisecond {
		t.Fatalf("zero-byte transfer took %v, want 50ms injected delay", res.Duration())
	}
}
