// Package simnet models the cluster network that connects physical hosts in
// the simulated testbed (DESIGN.md §2). It is a flow-level simulator: each
// transfer is a fluid flow constrained by the sender's egress NIC and the
// receiver's ingress NIC, and concurrent flows share bandwidth max-min
// fairly, the standard first-order model for TCP on a non-blocking switch
// fabric. Whenever the flow set changes, per-flow rates are recomputed by
// progressive filling and completion events are rescheduled on the simtime
// kernel.
//
// Live-migration timing (paper Figs 8-10), HDFS pipeline placement cost and
// VM provisioning all derive their durations from this model.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"videocloud/internal/metrics"
	"videocloud/internal/simtime"
)

// Common sizes and rates, in the base units used throughout the package:
// bytes and bytes per second.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30

	// Gbps converts a gigabit-per-second figure to bytes per second.
	Gbps = 1e9 / 8
	// Mbps converts a megabit-per-second figure to bytes per second.
	Mbps = 1e6 / 8
)

// ErrUnknownHost is returned when a transfer names a host that was never
// added to the network.
var ErrUnknownHost = errors.New("simnet: unknown host")

// ErrSameHost is returned for a transfer whose source and destination are
// the same host; such copies are local and cost no network time.
var ErrSameHost = errors.New("simnet: transfer to self")

// Host is one endpoint on the fabric. Egress and Ingress are NIC capacities
// in bytes/second; Latency is the one-way propagation delay between the host
// and the switch fabric.
type Host struct {
	Name    string
	Egress  float64
	Ingress float64
	Latency time.Duration

	// exact byte accounting for utilization reports
	sent     int64
	received int64
}

// Sent returns the total bytes this host has finished sending.
func (h *Host) Sent() int64 { return h.sent }

// Received returns the total bytes this host has finished receiving.
func (h *Host) Received() int64 { return h.received }

// Result describes a completed transfer.
type Result struct {
	Src, Dst string
	Bytes    int64
	Start    time.Duration // virtual time the transfer was issued
	End      time.Duration // virtual time the last byte arrived
}

// Duration returns End-Start.
func (r Result) Duration() time.Duration { return r.End - r.Start }

// Flow is an in-progress transfer. It is returned by Transfer so callers can
// cancel it (e.g. a migration that aborts).
type Flow struct {
	src, dst   *Host
	bytes      int64
	remaining  float64
	rate       float64 // bytes/second, 0 before the latency phase ends
	lastUpdate time.Duration
	start      time.Duration
	active     bool // true once past propagation latency
	canceled   bool
	finished   bool
	completion *simtime.Event
	done       func(Result)
	net        *Network
}

// Cancel aborts the flow; the done callback is never invoked. Cancel reports
// whether the flow was still in progress.
func (f *Flow) Cancel() bool {
	if f.finished || f.canceled {
		return false
	}
	f.canceled = true
	if f.completion != nil {
		f.completion.Cancel()
	}
	if f.active {
		f.net.advanceProgress()
		delete(f.net.flows, f)
		f.net.reschedule()
	}
	return true
}

// Rate returns the flow's current fair-share rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Network is the fabric connecting all hosts. It must be driven by a single
// goroutine together with its simtime.Simulator.
type Network struct {
	sim         *simtime.Simulator
	hosts       map[string]*Host
	flows       map[*Flow]struct{}
	partitioned map[*Host]bool
	reg         *metrics.Registry
}

// New returns an empty network on the given simulator.
func New(sim *simtime.Simulator) *Network {
	return &Network{
		sim:         sim,
		hosts:       make(map[string]*Host),
		flows:       make(map[*Flow]struct{}),
		partitioned: make(map[*Host]bool),
		reg:         metrics.NewRegistry(),
	}
}

// Metrics exposes the network's registry (flow counts, bytes, durations).
func (n *Network) Metrics() *metrics.Registry { return n.reg }

// AddHost registers a host. Duplicate names and non-positive bandwidths are
// programming errors and panic.
func (n *Network) AddHost(name string, egress, ingress float64, latency time.Duration) *Host {
	if name == "" {
		panic("simnet: empty host name")
	}
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate host %q", name))
	}
	if egress <= 0 || ingress <= 0 {
		panic(fmt.Sprintf("simnet: host %q with non-positive bandwidth", name))
	}
	if latency < 0 {
		panic(fmt.Sprintf("simnet: host %q with negative latency", name))
	}
	h := &Host{Name: name, Egress: egress, Ingress: ingress, Latency: latency}
	n.hosts[name] = h
	return h
}

// AddUniformHosts registers count hosts named prefix0..prefixN-1 with
// identical NICs, the common testbed shape in the paper's cluster.
func (n *Network) AddUniformHosts(prefix string, count int, bandwidth float64, latency time.Duration) []*Host {
	hosts := make([]*Host, count)
	for i := range hosts {
		hosts[i] = n.AddHost(fmt.Sprintf("%s%d", prefix, i), bandwidth, bandwidth, latency)
	}
	return hosts
}

// Host returns a registered host, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// Hosts returns all hosts sorted by name.
func (n *Network) Hosts() []*Host {
	out := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ActiveFlows returns the number of flows currently moving bytes.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Partition isolates a host from the fabric: every active flow touching it
// freezes at rate zero (no progress, no completion) and new transfers stall
// the same way until Heal. Zero-byte transfers still complete after
// propagation latency — they model control messages already in flight.
// Partition models a switch-port or cable failure, the "destination stops
// responding" scenario for migration deadlines.
func (n *Network) Partition(name string) error {
	h, ok := n.hosts[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if n.partitioned[h] {
		return nil
	}
	n.advanceProgress()
	n.partitioned[h] = true
	n.reg.Counter("partitions").Inc()
	n.reschedule()
	return nil
}

// Heal reconnects a partitioned host; stalled flows resume at fair-share
// rates from wherever they froze.
func (n *Network) Heal(name string) error {
	h, ok := n.hosts[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if !n.partitioned[h] {
		return nil
	}
	n.advanceProgress()
	delete(n.partitioned, h)
	n.reg.Counter("partition_heals").Inc()
	n.reschedule()
	return nil
}

// Partitioned reports whether the named host is currently isolated.
func (n *Network) Partitioned(name string) bool {
	h, ok := n.hosts[name]
	return ok && n.partitioned[h]
}

// SetLatency changes a host's one-way propagation delay for transfers issued
// after the call — the chaos injector's "delay a link" fault.
func (n *Network) SetLatency(name string, latency time.Duration) error {
	h, ok := n.hosts[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, name)
	}
	if latency < 0 {
		return fmt.Errorf("simnet: host %q negative latency", name)
	}
	h.Latency = latency
	return nil
}

// EstimateTransfer returns the contention-free time to move bytes from src
// to dst: propagation latency plus bytes over the bottleneck NIC.
func (n *Network) EstimateTransfer(src, dst string, bytes int64) (time.Duration, error) {
	s, d, err := n.pair(src, dst)
	if err != nil {
		return 0, err
	}
	bw := math.Min(s.Egress, d.Ingress)
	secs := float64(bytes) / bw
	return s.Latency + d.Latency + time.Duration(secs*float64(time.Second)), nil
}

// Transfer starts moving bytes from src to dst. done (may be nil) is invoked
// on the simulation goroutine when the last byte arrives. Zero-byte
// transfers complete after propagation latency alone.
func (n *Network) Transfer(src, dst string, bytes int64, done func(Result)) (*Flow, error) {
	s, d, err := n.pair(src, dst)
	if err != nil {
		return nil, err
	}
	if bytes < 0 {
		return nil, fmt.Errorf("simnet: negative transfer size %d", bytes)
	}
	f := &Flow{
		src: s, dst: d,
		bytes: bytes, remaining: float64(bytes),
		start: n.sim.Now(), done: done, net: n,
	}
	lat := s.Latency + d.Latency
	n.sim.Schedule(lat, func() {
		if f.canceled {
			return
		}
		if f.bytes == 0 {
			f.complete()
			return
		}
		f.active = true
		f.lastUpdate = n.sim.Now()
		n.advanceProgress()
		n.flows[f] = struct{}{}
		n.reschedule()
	})
	n.reg.Counter("flows_started").Inc()
	return f, nil
}

func (n *Network) pair(src, dst string) (*Host, *Host, error) {
	s, ok := n.hosts[src]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownHost, src)
	}
	d, ok := n.hosts[dst]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownHost, dst)
	}
	if s == d {
		return nil, nil, ErrSameHost
	}
	return s, d, nil
}

// advanceProgress debits remaining bytes on every active flow for the time
// elapsed since the last rate change.
func (n *Network) advanceProgress() {
	now := n.sim.Now()
	for f := range n.flows {
		dt := (now - f.lastUpdate).Seconds()
		if dt > 0 {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastUpdate = now
	}
}

// reschedule recomputes max-min fair rates by progressive filling and
// re-arms each flow's completion event.
func (n *Network) reschedule() {
	if len(n.flows) == 0 {
		return
	}
	// Directional capacities: each host egress and ingress is a "link".
	type link struct {
		cap   float64
		flows []*Flow
	}
	links := make(map[*Host]map[bool]*link) // bool: true=egress
	get := func(h *Host, egress bool) *link {
		m := links[h]
		if m == nil {
			m = make(map[bool]*link)
			links[h] = m
		}
		l := m[egress]
		if l == nil {
			c := h.Ingress
			if egress {
				c = h.Egress
			}
			l = &link{cap: c}
			m[egress] = l
		}
		return l
	}
	frozen := make(map[*Flow]bool, len(n.flows))
	ordered := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		ordered = append(ordered, f)
	}
	// Deterministic iteration: order by start time then src/dst names.
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if a.src.Name != b.src.Name {
			return a.src.Name < b.src.Name
		}
		return a.dst.Name < b.dst.Name
	})
	for _, f := range ordered {
		if n.partitioned[f.src] || n.partitioned[f.dst] {
			// Frozen by a partition: rate 0, no link share, and the
			// completion loop below cancels any pending event.
			f.rate = 0
			frozen[f] = true
			continue
		}
		e := get(f.src, true)
		i := get(f.dst, false)
		e.flows = append(e.flows, f)
		i.flows = append(i.flows, f)
	}
	for len(frozen) < len(ordered) {
		// Find the most constrained link: min cap / unfrozen count.
		var bottleneck *link
		best := math.Inf(1)
		for _, m := range links {
			for _, l := range m {
				cnt := 0
				for _, f := range l.flows {
					if !frozen[f] {
						cnt++
					}
				}
				if cnt == 0 {
					continue
				}
				share := l.cap / float64(cnt)
				if share < best {
					best = share
					bottleneck = l
				}
			}
		}
		if bottleneck == nil {
			break
		}
		for _, f := range bottleneck.flows {
			if frozen[f] {
				continue
			}
			frozen[f] = true
			f.rate = best
			// Debit this flow's rate from both of its links.
			get(f.src, true).cap -= best
			get(f.dst, false).cap -= best
		}
	}
	now := n.sim.Now()
	for _, f := range ordered {
		if f.completion != nil {
			f.completion.Cancel()
		}
		if f.rate <= 0 {
			// Partition-frozen (or degenerate capacity): no completion
			// event — the flow stalls until a Heal reschedules it.
			continue
		}
		secs := f.remaining / f.rate
		f.completion = n.sim.Schedule(time.Duration(secs*float64(time.Second))+1, func() {
			// +1ns absorbs float truncation so the flow always has
			// <=0 remaining when its completion fires.
			n.advanceProgress()
			if f.remaining > 1 { // not actually done (rates changed)
				n.reschedule()
				return
			}
			delete(n.flows, f)
			f.complete()
			n.reschedule()
		})
		_ = now
	}
}

func (f *Flow) complete() {
	if f.finished || f.canceled {
		return
	}
	f.finished = true
	f.src.sent += f.bytes
	f.dst.received += f.bytes
	n := f.net
	n.reg.Counter("flows_completed").Inc()
	n.reg.Counter("bytes_transferred").Add(f.bytes)
	res := Result{
		Src: f.src.Name, Dst: f.dst.Name,
		Bytes: f.bytes, Start: f.start, End: n.sim.Now(),
	}
	n.reg.Histogram("flow_seconds").Observe(res.Duration().Seconds())
	if f.done != nil {
		f.done(res)
	}
}
