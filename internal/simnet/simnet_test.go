package simnet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"videocloud/internal/simtime"
)

func newNet(t *testing.T) (*simtime.Simulator, *Network) {
	t.Helper()
	sim := simtime.NewSimulator()
	return sim, New(sim)
}

func TestSingleFlowTime(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 0)
	n.AddHost("b", 100*MB, 100*MB, 0)
	var res Result
	if _, err := n.Transfer("a", "b", 100*MB, func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	got := res.Duration().Seconds()
	if math.Abs(got-1.0) > 0.01 {
		t.Fatalf("100MB over 100MB/s took %.4fs, want ~1s", got)
	}
}

func TestLatencyAdded(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 5*time.Millisecond)
	n.AddHost("b", 100*MB, 100*MB, 5*time.Millisecond)
	var res Result
	n.Transfer("a", "b", 0, func(r Result) { res = r })
	sim.Run()
	if res.Duration() != 10*time.Millisecond {
		t.Fatalf("zero-byte transfer took %v, want 10ms latency", res.Duration())
	}
}

func TestEstimateMatchesUncontendedTransfer(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 1*Gbps, 1*Gbps, time.Millisecond)
	n.AddHost("b", 1*Gbps, 1*Gbps, time.Millisecond)
	est, err := n.EstimateTransfer("a", "b", 512*MB)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	n.Transfer("a", "b", 512*MB, func(r Result) { res = r })
	sim.Run()
	diff := (res.Duration() - est).Seconds()
	if math.Abs(diff) > 0.001 {
		t.Fatalf("estimate %v vs actual %v", est, res.Duration())
	}
}

func TestBottleneckIsSlowerNIC(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("fast", 100*MB, 100*MB, 0)
	n.AddHost("slow", 10*MB, 10*MB, 0)
	var res Result
	n.Transfer("fast", "slow", 10*MB, func(r Result) { res = r })
	sim.Run()
	got := res.Duration().Seconds()
	if math.Abs(got-1.0) > 0.01 {
		t.Fatalf("transfer limited by slow ingress took %.3fs, want ~1s", got)
	}
}

func TestTwoFlowsShareEgressFairly(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("src", 100*MB, 100*MB, 0)
	n.AddHost("d1", 100*MB, 100*MB, 0)
	n.AddHost("d2", 100*MB, 100*MB, 0)
	var r1, r2 Result
	n.Transfer("src", "d1", 50*MB, func(r Result) { r1 = r })
	n.Transfer("src", "d2", 50*MB, func(r Result) { r2 = r })
	sim.Run()
	// Each gets 50MB/s of the shared 100MB/s egress: both finish at ~1s.
	for _, r := range []Result{r1, r2} {
		if math.Abs(r.Duration().Seconds()-1.0) > 0.02 {
			t.Fatalf("shared flow took %.3fs, want ~1s", r.Duration().Seconds())
		}
	}
}

func TestShortFlowFreesBandwidthForLongFlow(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("src", 100*MB, 100*MB, 0)
	n.AddHost("d1", 100*MB, 100*MB, 0)
	n.AddHost("d2", 100*MB, 100*MB, 0)
	var long Result
	n.Transfer("src", "d1", 100*MB, func(r Result) { long = r })
	n.Transfer("src", "d2", 25*MB, nil)
	sim.Run()
	// Short flow: 25MB at 50MB/s = 0.5s. Long flow: 25MB in first 0.5s,
	// remaining 75MB at full 100MB/s = 0.75s. Total 1.25s.
	got := long.Duration().Seconds()
	if math.Abs(got-1.25) > 0.03 {
		t.Fatalf("long flow took %.3fs, want ~1.25s", got)
	}
}

func TestIndependentPairsDoNotInterfere(t *testing.T) {
	sim, n := newNet(t)
	n.AddUniformHosts("h", 4, 100*MB, 0)
	var r1, r2 Result
	n.Transfer("h0", "h1", 100*MB, func(r Result) { r1 = r })
	n.Transfer("h2", "h3", 100*MB, func(r Result) { r2 = r })
	sim.Run()
	for _, r := range []Result{r1, r2} {
		if math.Abs(r.Duration().Seconds()-1.0) > 0.01 {
			t.Fatalf("independent flow took %.3fs, want ~1s", r.Duration().Seconds())
		}
	}
}

func TestCancelStopsFlow(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 0)
	n.AddHost("b", 100*MB, 100*MB, 0)
	called := false
	f, _ := n.Transfer("a", "b", 100*MB, func(Result) { called = true })
	sim.RunFor(500 * time.Millisecond)
	if !f.Cancel() {
		t.Fatal("Cancel reported not in progress")
	}
	if f.Cancel() {
		t.Fatal("double Cancel reported in progress")
	}
	sim.Run()
	if called {
		t.Fatal("done callback ran for cancelled flow")
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d after cancel", n.ActiveFlows())
	}
}

func TestCancelBeforeLatencyPhase(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("a", 100*MB, 100*MB, 10*time.Millisecond)
	n.AddHost("b", 100*MB, 100*MB, 10*time.Millisecond)
	called := false
	f, _ := n.Transfer("a", "b", 10*MB, func(Result) { called = true })
	// Cancel before the propagation delay elapses (flow not yet active).
	if !f.Cancel() {
		t.Fatal("Cancel reported not in progress")
	}
	sim.Run()
	if called {
		t.Fatal("cancelled-before-start flow completed")
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("ActiveFlows = %d", n.ActiveFlows())
	}
}

func TestCancelReleasesBandwidth(t *testing.T) {
	sim, n := newNet(t)
	n.AddHost("src", 100*MB, 100*MB, 0)
	n.AddHost("d1", 100*MB, 100*MB, 0)
	n.AddHost("d2", 100*MB, 100*MB, 0)
	var surv Result
	f, _ := n.Transfer("src", "d1", 100*MB, nil)
	n.Transfer("src", "d2", 100*MB, func(r Result) { surv = r })
	sim.RunFor(500 * time.Millisecond)
	f.Cancel()
	sim.Run()
	// Survivor: 25MB in first 0.5s at 50MB/s, then 75MB at 100MB/s = 1.25s.
	got := surv.Duration().Seconds()
	if math.Abs(got-1.25) > 0.03 {
		t.Fatalf("survivor took %.3fs, want ~1.25s", got)
	}
}

func TestErrors(t *testing.T) {
	_, n := newNet(t)
	n.AddHost("a", 1*Gbps, 1*Gbps, 0)
	if _, err := n.Transfer("a", "nope", 1, nil); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
	if _, err := n.Transfer("nope", "a", 1, nil); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
	if _, err := n.Transfer("a", "a", 1, nil); !errors.Is(err, ErrSameHost) {
		t.Fatalf("err = %v, want ErrSameHost", err)
	}
	if _, err := n.Transfer("a", "a", -5, nil); err == nil {
		t.Fatal("negative size accepted")
	}
	n.AddHost("b", 1*Gbps, 1*Gbps, 0)
	if _, err := n.Transfer("a", "b", -5, nil); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestAddHostValidation(t *testing.T) {
	_, n := newNet(t)
	n.AddHost("a", 1, 1, 0)
	for _, fn := range []func(){
		func() { n.AddHost("a", 1, 1, 0) },
		func() { n.AddHost("", 1, 1, 0) },
		func() { n.AddHost("x", 0, 1, 0) },
		func() { n.AddHost("y", 1, -1, 0) },
		func() { n.AddHost("z", 1, 1, -time.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad AddHost did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestByteAccounting(t *testing.T) {
	sim, n := newNet(t)
	a := n.AddHost("a", 1*Gbps, 1*Gbps, 0)
	b := n.AddHost("b", 1*Gbps, 1*Gbps, 0)
	n.Transfer("a", "b", 7*MB, nil)
	n.Transfer("a", "b", 3*MB, nil)
	sim.Run()
	if a.Sent() != 10*MB || b.Received() != 10*MB {
		t.Fatalf("sent=%d received=%d, want 10MB each", a.Sent(), b.Received())
	}
	if got := n.Metrics().Counter("bytes_transferred").Value(); got != 10*MB {
		t.Fatalf("bytes_transferred = %d", got)
	}
}

// Property: N equal flows from one source complete in ~N× the single-flow
// time (work conservation), and total bytes are conserved exactly.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(nFlows uint8) bool {
		k := int(nFlows%8) + 1
		sim := simtime.NewSimulator()
		n := New(sim)
		n.AddHost("src", 100*MB, 100*MB, 0)
		var last time.Duration
		for i := 0; i < k; i++ {
			dst := n.AddHost(string(rune('a'+i)), 100*MB, 100*MB, 0)
			n.Transfer("src", dst.Name, 10*MB, func(r Result) {
				if r.End > last {
					last = r.End
				}
			})
		}
		sim.Run()
		want := float64(k) * 0.1 // k*10MB over 100MB/s egress
		if math.Abs(last.Seconds()-want) > want*0.05+0.01 {
			return false
		}
		return n.Host("src").Sent() == int64(k)*10*MB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: EstimateTransfer is a lower bound on (or equal to) any actual
// contended transfer time.
func TestPropertyEstimateIsLowerBound(t *testing.T) {
	f := func(sz uint32, extra uint8) bool {
		bytes := int64(sz%100+1) * MB
		k := int(extra % 4)
		sim := simtime.NewSimulator()
		n := New(sim)
		n.AddUniformHosts("h", 3+k, 50*MB, time.Millisecond)
		est, _ := n.EstimateTransfer("h0", "h1", bytes)
		var res Result
		n.Transfer("h0", "h1", bytes, func(r Result) { res = r })
		for i := 0; i < k; i++ {
			n.Transfer("h0", n.Hosts()[2+i].Name, 20*MB, nil)
		}
		sim.Run()
		return res.Duration() >= est-time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
