package simtime

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun measures raw event throughput of the DES kernel.
func BenchmarkScheduleRun(b *testing.B) {
	s := NewSimulator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkNestedScheduling measures the self-rescheduling pattern the
// migration rounds use.
func BenchmarkNestedScheduling(b *testing.B) {
	s := NewSimulator()
	remaining := b.N
	var step func()
	step = func() {
		remaining--
		if remaining > 0 {
			s.Schedule(time.Microsecond, step)
		}
	}
	b.ResetTimer()
	s.Schedule(0, step)
	s.Run()
}
