// Package simtime provides a deterministic discrete-event simulation kernel.
//
// Hardware-bound behaviour in videocloud (VM memory copies during live
// migration, network transfers, disk provisioning) is simulated on a virtual
// clock so that migrating an 8 GB VM costs microseconds of wall time. The
// kernel is callback based: components schedule closures at virtual times and
// the simulator executes them in (time, sequence) order, which makes every
// run reproducible bit for bit.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It can be cancelled until it has fired.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
	every    time.Duration // >0 for periodic events
	sim      *Simulator
}

// At reports the virtual time the event is (or was) scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Cancel removes the event from the queue. Cancelling an event that already
// fired or was already cancelled is a no-op. Cancel reports whether the event
// was still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return false
	}
	e.canceled = true
	heap.Remove(&e.sim.queue, e.index)
	return true
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all components driven by one Simulator must run on the
// goroutine that calls Run/Step. This is deliberate: determinism is a design
// requirement (DESIGN.md §5.2).
type Simulator struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	// Fired counts executed events; useful for run-away detection in tests.
	fired uint64
}

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time as an offset from the simulation
// epoch.
func (s *Simulator) Now() time.Duration { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events waiting in the queue.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fn runs at the current time, after already-queued events for that
// time). The returned Event may be cancelled.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simtime: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	return s.scheduleAt(s.now+delay, fn, 0)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simtime: ScheduleAt with nil fn")
	}
	if at < s.now {
		at = s.now
	}
	return s.scheduleAt(at, fn, 0)
}

// Every runs fn every period of virtual time, starting one period from now,
// until the returned Event is cancelled.
func (s *Simulator) Every(period time.Duration, fn func()) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: Every with non-positive period %v", period))
	}
	return s.scheduleAt(s.now+period, fn, period)
}

func (s *Simulator) scheduleAt(at time.Duration, fn func(), every time.Duration) *Event {
	s.seq++
	ev := &Event{at: at, seq: s.seq, fn: fn, every: every, sim: s}
	heap.Push(&s.queue, ev)
	return ev
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.canceled {
			continue
		}
		s.now = ev.at
		if ev.every > 0 {
			// Re-arm before running so fn can cancel its own event.
			ev.at += ev.every
			ev.canceled = false
			heap.Push(&s.queue, ev)
		}
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled later stay queued.
func (s *Simulator) RunUntil(t time.Duration) {
	for s.queue.Len() > 0 {
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events within the next d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// RunWhile executes events while cond() is true and events remain. It is the
// natural way to drive a state machine to completion: RunWhile(func() bool {
// return !migration.Done() }).
func (s *Simulator) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
