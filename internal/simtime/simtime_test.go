package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSimulator()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewSimulator()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := NewSimulator()
	s.RunUntil(5 * time.Second)
	fired := time.Duration(-1)
	s.Schedule(-time.Hour, func() { fired = s.Now() })
	s.Run()
	if fired != 5*time.Second {
		t.Fatalf("negative delay fired at %v, want 5s", fired)
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := NewSimulator()
	s.RunUntil(10 * time.Second)
	var at time.Duration
	s.ScheduleAt(3*time.Second, func() { at = s.Now() })
	s.Run()
	if at != 10*time.Second {
		t.Fatalf("past ScheduleAt fired at %v, want clamp to 10s", at)
	}
}

func TestCancel(t *testing.T) {
	s := NewSimulator()
	fired := false
	ev := s.Schedule(time.Second, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel reported not pending")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := NewSimulator()
	fired := false
	later := s.Schedule(2*time.Second, func() { fired = true })
	s.Schedule(time.Second, func() { later.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestEvery(t *testing.T) {
	s := NewSimulator()
	n := 0
	var ev *Event
	ev = s.Every(time.Second, func() {
		n++
		if n == 5 {
			ev.Cancel()
		}
	})
	s.RunUntil(time.Minute)
	if n != 5 {
		t.Fatalf("periodic fired %d times, want 5", n)
	}
	if s.Now() != time.Minute {
		t.Fatalf("RunUntil left clock at %v", s.Now())
	}
}

func TestEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewSimulator().Every(0, func() {})
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := NewSimulator()
	s.RunUntil(42 * time.Second)
	if s.Now() != 42*time.Second {
		t.Fatalf("Now() = %v", s.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	s := NewSimulator()
	s.RunUntil(10 * time.Second)
	fired := false
	s.Schedule(5*time.Second, func() { fired = true })
	s.RunFor(4 * time.Second)
	if fired {
		t.Fatal("event fired too early")
	}
	s.RunFor(time.Second)
	if !fired {
		t.Fatal("event did not fire at its time")
	}
}

func TestRunWhile(t *testing.T) {
	s := NewSimulator()
	n := 0
	for i := 0; i < 100; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { n++ })
	}
	s.RunWhile(func() bool { return n < 10 })
	if n != 10 {
		t.Fatalf("RunWhile ran %d events, want 10", n)
	}
	if s.Pending() != 90 {
		t.Fatalf("pending = %d, want 90", s.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var order []string
	s.Schedule(time.Second, func() {
		order = append(order, "a")
		s.Schedule(time.Second, func() { order = append(order, "c") })
		s.Schedule(0, func() { order = append(order, "b") })
	})
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: regardless of insertion order, events fire sorted by time, and
// same-time events fire in insertion order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		rng := rand.New(rand.NewSource(seed))
		s := NewSimulator()
		type stamp struct {
			at  time.Duration
			seq int
		}
		var fired []stamp
		for i, r := range raw {
			d := time.Duration(r%1000) * time.Millisecond
			i := i
			s.Schedule(d, func() { fired = append(fired, stamp{s.Now(), i}) })
			// Occasionally interleave a step to exercise mid-run inserts.
			if rng.Intn(4) == 0 {
				s.Step()
			}
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return i < j
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := NewSimulator()
		rng := rand.New(rand.NewSource(7))
		var log []time.Duration
		var rec func()
		rec = func() {
			log = append(log, s.Now())
			if len(log) < 50 {
				s.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, rec)
			}
		}
		s.Schedule(0, rec)
		s.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
