package stream

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"
)

// ABRPlayer is a headless adaptive-bitrate client over the playlist format:
// it fetches a title's master playlist, walks one rendition's media playlist
// segment by segment, measures download bandwidth, and switches renditions
// mid-stream when the measured rate says a better (or safer) one fits —
// the segmented counterpart of Player's progressive Range session.
//
// Playback is simulated against real wall-clock download times: each segment
// adds its play duration to a bounded client buffer, each download drains
// the buffer for as long as it took, and time spent downloading with an
// empty buffer is rebuffering. A live playlist (no end marker) is followed
// at the live edge: the player re-polls the playlist when it runs out of
// segments and records how far behind the newest segment it fell.
type ABRPlayer struct {
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// MaxSegments bounds the session; 0 plays until the VOD end marker
	// (a live session without the bound follows until the channel ends).
	MaxSegments int
	// LiveWindow is how many segments behind the live edge playback starts
	// (default 3, like HLS's three-target-durations rule).
	LiveWindow int
	// PollInterval is the live-edge playlist re-poll period (default 20ms).
	PollInterval time.Duration
	// PollBudget bounds consecutive empty polls before the session fails
	// (default 500 — a stalled ingest must not hang viewers forever).
	PollBudget int
	// SwitchHeadroom is the safety factor for moving up: a rendition is
	// eligible when measured bandwidth >= SwitchHeadroom * its bitrate
	// (default 1.25).
	SwitchHeadroom float64
	// BufferCapSeconds bounds the simulated client buffer (default 4
	// target durations): players keep a bounded lookahead, and without the
	// cap an early burst of fast downloads would mask every later stall.
	BufferCapSeconds float64
}

// ABRReport is what one adaptive session experienced.
type ABRReport struct {
	// PlayedSeconds is content play time fetched; RebufferSeconds is time
	// spent downloading with an empty buffer (startup excluded).
	PlayedSeconds   float64
	RebufferSeconds float64
	Segments        int
	Bytes           int64
	// Switches counts mid-stream rendition changes; Renditions counts
	// segments fetched per quality label.
	Switches   int
	Renditions map[string]int
	// MaxLiveLag is the deepest the player fell behind the live edge, in
	// segments, at the moment it fetched one (0 for VOD sessions).
	MaxLiveLag int
	// EndReached reports that the playlist's end marker was consumed.
	EndReached bool
}

// RebufferRatio is stall time over total session time (played + stalled).
func (r *ABRReport) RebufferRatio() float64 {
	total := r.PlayedSeconds + r.RebufferSeconds
	if total <= 0 {
		return 0
	}
	return r.RebufferSeconds / total
}

func (p *ABRPlayer) client() *http.Client {
	if p.HTTP != nil {
		return p.HTTP
	}
	return http.DefaultClient
}

// Play runs one adaptive session against a master playlist URL.
func (p *ABRPlayer) Play(masterURL string) (*ABRReport, error) {
	base, err := url.Parse(masterURL)
	if err != nil {
		return nil, fmt.Errorf("stream: bad master URL: %w", err)
	}
	origin := base.Scheme + "://" + base.Host
	data, err := p.fetch(masterURL)
	if err != nil {
		return nil, err
	}
	master, err := ParseMaster(data)
	if err != nil {
		return nil, err
	}
	// Ladder sorted by bandwidth: playback starts conservative (lowest)
	// and climbs as measurements come in.
	ladder := append([]Rendition(nil), master.Renditions...)
	sort.Slice(ladder, func(i, j int) bool { return ladder[i].BandwidthBps < ladder[j].BandwidthBps })

	headroom := p.SwitchHeadroom
	if headroom <= 0 {
		headroom = 1.25
	}
	liveWindow := p.LiveWindow
	if liveWindow <= 0 {
		liveWindow = 3
	}
	poll := p.PollInterval
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	pollBudget := p.PollBudget
	if pollBudget <= 0 {
		pollBudget = 500
	}

	rep := &ABRReport{Renditions: make(map[string]int)}
	cur := 0
	pl, err := p.fetchMedia(origin, ladder[cur])
	if err != nil {
		return nil, err
	}
	bufferCap := p.BufferCapSeconds
	if bufferCap <= 0 {
		bufferCap = 4 * float64(pl.TargetDuration)
	}

	next := 0
	if pl.Live && len(pl.Segments) > liveWindow {
		next = len(pl.Segments) - liveWindow
	}
	var estBps, buffer float64
	emptyPolls := 0
	for {
		if p.MaxSegments > 0 && rep.Segments >= p.MaxSegments {
			return rep, nil
		}
		if next >= len(pl.Segments) {
			if !pl.Live {
				rep.EndReached = true
				return rep, nil
			}
			// At the live edge with nothing new: wait for the ingest.
			if emptyPolls++; emptyPolls > pollBudget {
				return rep, fmt.Errorf("stream: live edge stalled at segment %d", next)
			}
			time.Sleep(poll)
			if pl, err = p.fetchMedia(origin, ladder[cur]); err != nil {
				return rep, err
			}
			continue
		}
		emptyPolls = 0
		seg := pl.Segments[next]
		if pl.Live {
			if lag := len(pl.Segments) - 1 - next; lag > rep.MaxLiveLag {
				rep.MaxLiveLag = lag
			}
		}
		t0 := time.Now()
		n, err := p.fetchDiscard(origin + seg.URL)
		if err != nil {
			return rep, fmt.Errorf("stream: segment %d (%s): %w", seg.Index, ladder[cur].Label, err)
		}
		dt := time.Since(t0).Seconds()
		if dt < 1e-9 {
			dt = 1e-9
		}
		if sample := float64(n) * 8 / dt; estBps == 0 {
			estBps = sample
		} else {
			estBps = 0.7*estBps + 0.3*sample
		}
		segDur := float64(seg.DurationSeconds)
		if rep.Segments == 0 {
			// Startup: the first download is latency, not a stall.
			buffer = segDur
		} else {
			if dt > buffer {
				rep.RebufferSeconds += dt - buffer
				buffer = 0
			} else {
				buffer -= dt
			}
			buffer += segDur
		}
		if buffer > bufferCap {
			buffer = bufferCap
		}
		rep.PlayedSeconds += segDur
		rep.Segments++
		rep.Bytes += n
		rep.Renditions[ladder[cur].Label]++
		next++

		// Rate adaptation: the highest rung the measured bandwidth clears
		// with headroom, never below the bottom one.
		want := 0
		for i := len(ladder) - 1; i > 0; i-- {
			if estBps >= headroom*float64(ladder[i].BandwidthBps) {
				want = i
				break
			}
		}
		if want != cur {
			cur = want
			rep.Switches++
			if pl, err = p.fetchMedia(origin, ladder[cur]); err != nil {
				return rep, err
			}
		}
	}
}

func (p *ABRPlayer) fetchMedia(origin string, r Rendition) (MediaPlaylist, error) {
	data, err := p.fetch(origin + r.URL)
	if err != nil {
		return MediaPlaylist{}, fmt.Errorf("stream: %s playlist: %w", r.Label, err)
	}
	return ParseMedia(data)
}

// fetch GETs a small resource (a playlist) fully into memory.
func (p *ABRPlayer) fetch(url string) ([]byte, error) {
	resp, err := p.client().Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("%w: %d for %s", ErrBadStatus, resp.StatusCode, url)
	}
	return io.ReadAll(resp.Body)
}

// fetchDiscard GETs a segment, draining (and counting) the body.
func (p *ABRPlayer) fetchDiscard(url string) (int64, error) {
	resp, err := p.client().Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return n, err
	}
	if resp.StatusCode != http.StatusOK {
		return n, fmt.Errorf("%w: %d for %s", ErrBadStatus, resp.StatusCode, url)
	}
	return n, nil
}
