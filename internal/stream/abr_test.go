package stream

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// abrOrigin is an in-memory segmented origin for player tests: a master
// playlist, per-rendition media playlists, and dummy segment bodies sized
// to the rendition bitrate. Segments can be appended while live.
type abrOrigin struct {
	mu       sync.Mutex
	target   int
	live     bool
	segs     int
	ladder   []Rendition
	perSegmt map[string]int // label -> bytes per segment body
}

func newABROrigin(target, segs int, live bool) *abrOrigin {
	return &abrOrigin{
		target: target, segs: segs, live: live,
		ladder: []Rendition{
			{Label: "360p", BandwidthBps: 80_000, URL: "/playlist/1/360p"},
			{Label: "720p", BandwidthBps: 200_000, URL: "/playlist/1/720p"},
		},
		perSegmt: map[string]int{"360p": 40_000, "720p": 100_000},
	}
}

func (o *abrOrigin) publish() { o.mu.Lock(); o.segs++; o.mu.Unlock() }
func (o *abrOrigin) end()     { o.mu.Lock(); o.live = false; o.mu.Unlock() }

func (o *abrOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	segs, live := o.segs, o.live
	o.mu.Unlock()
	switch {
	case r.URL.Path == "/playlist/1":
		w.Write(MasterPlaylist{Renditions: o.ladder}.Marshal())
	case strings.HasPrefix(r.URL.Path, "/playlist/1/"):
		label := strings.TrimPrefix(r.URL.Path, "/playlist/1/")
		m := MediaPlaylist{TargetDuration: o.target, Live: live}
		for i := 0; i < segs; i++ {
			m.Segments = append(m.Segments, SegmentRef{
				Index: i, DurationSeconds: o.target,
				URL: fmt.Sprintf("/segment/1/%s/%d", label, i),
			})
		}
		w.Write(m.Marshal())
	case strings.HasPrefix(r.URL.Path, "/segment/1/"):
		rest := strings.TrimPrefix(r.URL.Path, "/segment/1/")
		label, idxStr, _ := strings.Cut(rest, "/")
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 || idx >= segs {
			http.NotFound(w, r)
			return
		}
		w.Write(make([]byte, o.perSegmt[label]))
	default:
		http.NotFound(w, r)
	}
}

func TestABRPlaysVODAndSwitchesUp(t *testing.T) {
	origin := newABROrigin(4, 6, false)
	srv := httptest.NewServer(origin)
	defer srv.Close()

	p := &ABRPlayer{}
	rep, err := p.Play(srv.URL + "/playlist/1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EndReached {
		t.Error("VOD session did not reach the end marker")
	}
	if rep.Segments != 6 {
		t.Errorf("played %d segments, want 6", rep.Segments)
	}
	if rep.PlayedSeconds != 24 {
		t.Errorf("played %vs, want 24s", rep.PlayedSeconds)
	}
	// Loopback bandwidth dwarfs the 200kbps top rung: the player must start
	// at 360p (conservative) and switch up exactly once.
	if rep.Renditions["360p"] != 1 || rep.Renditions["720p"] != 5 || rep.Switches != 1 {
		t.Errorf("rendition mix %v with %d switches, want one 360p start then 720p", rep.Renditions, rep.Switches)
	}
	if rep.RebufferRatio() < 0 || rep.RebufferRatio() > 1 {
		t.Errorf("rebuffer ratio %v out of [0,1]", rep.RebufferRatio())
	}
}

func TestABRFollowsLiveEdge(t *testing.T) {
	origin := newABROrigin(4, 2, true)
	srv := httptest.NewServer(origin)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			time.Sleep(5 * time.Millisecond)
			origin.publish()
		}
		origin.end()
	}()

	p := &ABRPlayer{PollInterval: 2 * time.Millisecond}
	rep, err := p.Play(srv.URL + "/playlist/1")
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EndReached {
		t.Error("live session did not consume the end marker")
	}
	// Started 2 behind the edge (only 2 existed), consumed through 10.
	if rep.Segments != 10 {
		t.Errorf("played %d segments, want 10", rep.Segments)
	}
	if rep.MaxLiveLag > 6 {
		t.Errorf("fell %d segments behind the live edge", rep.MaxLiveLag)
	}
}

func TestABRMaxSegmentsBound(t *testing.T) {
	origin := newABROrigin(4, 10, false)
	srv := httptest.NewServer(origin)
	defer srv.Close()
	p := &ABRPlayer{MaxSegments: 3}
	rep, err := p.Play(srv.URL + "/playlist/1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 3 || rep.EndReached {
		t.Errorf("bounded session: %d segments (end=%v), want exactly 3", rep.Segments, rep.EndReached)
	}
}
