package stream

import "testing"

// TestParseRangeTable pins the current semantics of the single-range parser:
// which specs it serves, which it hands to ServeContent (ok=false), and
// which are valid-but-unsatisfiable (off=-1).
func TestParseRangeTable(t *testing.T) {
	const size = 1000
	cases := []struct {
		spec        string
		off, length int64
		ok          bool
	}{
		// Served forms.
		{"bytes=0-499", 0, 500, true},
		{"bytes=500-", 500, 500, true},
		{"bytes=-200", 800, 200, true},
		{"bytes=999-999", 999, 1, true},
		{"bytes=990-5000", 990, 10, true},  // end clamps to EOF
		{"bytes=-5000", 0, 1000, true},     // suffix longer than file = whole file
		// Valid but unsatisfiable: off=-1 → 416.
		{"bytes=1000-", -1, 0, true},
		{"bytes=2000-3000", -1, 0, true},
		{"bytes=-0", -1, 0, true},
		// Not served here: fall back to ServeContent.
		{"bytes=0-9,20-29", 0, 0, false}, // multi-range
		{"bytes=0 - 9", 0, 0, false},     // embedded spaces
		{"bits=0-9", 0, 0, false},        // wrong unit
		{"0-9", 0, 0, false},             // no unit
		{"bytes=", 0, 0, false},
		{"bytes=-", 0, 0, false},
		{"bytes=a-b", 0, 0, false},
		{"bytes=5-2", 0, 0, false},                    // inverted
		{"bytes=-1-5", 0, 0, false},                   // negative start
		{"bytes=99999999999999999999-", 0, 0, false},  // overflow
		{"bytes=-99999999999999999999", 0, 0, false},  // suffix overflow
	}
	for _, c := range cases {
		off, length, ok := parseRange(c.spec, size)
		if ok != c.ok {
			t.Errorf("parseRange(%q): ok=%v, want %v", c.spec, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if off != c.off || (off >= 0 && length != c.length) {
			t.Errorf("parseRange(%q) = (%d, %d), want (%d, %d)", c.spec, off, length, c.off, c.length)
		}
	}
	// Any range against an empty file is unsatisfiable, never an error.
	for _, spec := range []string{"bytes=0-", "bytes=-5", "bytes=0-0"} {
		off, _, ok := parseRange(spec, 0)
		if !ok || off != -1 {
			t.Errorf("parseRange(%q, 0) = (off=%d, ok=%v), want (-1, true)", spec, off, ok)
		}
	}
}

// FuzzParseRange checks the parser's safety invariants on arbitrary specs:
// no panics, and every served window lies within the file.
func FuzzParseRange(f *testing.F) {
	for _, seed := range []string{
		"bytes=0-499", "bytes=500-", "bytes=-200", "bytes=0-9,20-29",
		"bytes=-", "bytes=a-b", "bytes=5-2", "bytes=-0", "bytes=1000-",
		"bytes=99999999999999999999-", "bits=0-9", "", "bytes= 0-9",
	} {
		f.Add(seed, int64(1000))
	}
	f.Add("bytes=0-0", int64(0))
	f.Fuzz(func(t *testing.T, spec string, size int64) {
		if size < 0 {
			size = -size
		}
		off, length, ok := parseRange(spec, size)
		if !ok {
			return
		}
		if off == -1 {
			return // unsatisfiable, handled as 416
		}
		if off < 0 || length <= 0 || off+length > size || off+length < off {
			t.Fatalf("parseRange(%q, %d) served out-of-file window (%d, %d)", spec, size, off, length)
		}
	})
}
