package stream

import (
	"fmt"
	"strconv"
	"strings"
)

// Playlists are the index files of segmented delivery, modelled on HLS but
// kept to a line-oriented format the stdlib parses without a spec's worth of
// edge cases. A master playlist lists the renditions of one title with their
// bandwidths; a media playlist lists one rendition's time-indexed segments.
// A media playlist without the "end" marker is live: the player re-fetches
// it to discover segments published after it was built.

// PlaylistContentType is the Content-Type playlist responses carry.
const PlaylistContentType = "application/vnd.videocloud.playlist"

const (
	masterHeader = "#VCPL:MASTER:1"
	mediaHeader  = "#VCPL:MEDIA:1"
)

// Rendition is one row of a master playlist.
type Rendition struct {
	Label        string // e.g. "720p"
	BandwidthBps int64
	URL          string // media playlist location (absolute path)
}

// MasterPlaylist lists a title's renditions, in the publisher's order.
type MasterPlaylist struct {
	Renditions []Rendition
}

// SegmentRef is one row of a media playlist.
type SegmentRef struct {
	Index           int
	DurationSeconds int
	URL             string // segment location (absolute path)
}

// MediaPlaylist lists one rendition's segments. Live reports whether more
// segments may still be published (no end marker was written).
type MediaPlaylist struct {
	TargetDuration int // nominal segment play length in seconds
	Live           bool
	Segments       []SegmentRef
}

// Marshal renders the master playlist.
func (m MasterPlaylist) Marshal() []byte {
	var b strings.Builder
	b.WriteString(masterHeader)
	b.WriteByte('\n')
	for _, r := range m.Renditions {
		fmt.Fprintf(&b, "rendition %s %d %s\n", r.Label, r.BandwidthBps, r.URL)
	}
	return []byte(b.String())
}

// Marshal renders the media playlist.
func (m MediaPlaylist) Marshal() []byte {
	var b strings.Builder
	b.WriteString(mediaHeader)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "target %d\n", m.TargetDuration)
	for _, s := range m.Segments {
		fmt.Fprintf(&b, "seg %d %d %s\n", s.Index, s.DurationSeconds, s.URL)
	}
	if !m.Live {
		b.WriteString("end\n")
	}
	return []byte(b.String())
}

// ParseMaster parses a master playlist.
func ParseMaster(data []byte) (MasterPlaylist, error) {
	var m MasterPlaylist
	lines, err := playlistLines(data, masterHeader)
	if err != nil {
		return m, err
	}
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 4 || f[0] != "rendition" {
			return m, fmt.Errorf("stream: bad master playlist line %q", line)
		}
		bw, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil || bw < 0 {
			return m, fmt.Errorf("stream: bad bandwidth in %q", line)
		}
		m.Renditions = append(m.Renditions, Rendition{Label: f[1], BandwidthBps: bw, URL: f[3]})
	}
	if len(m.Renditions) == 0 {
		return m, fmt.Errorf("stream: master playlist has no renditions")
	}
	return m, nil
}

// ParseMedia parses a media playlist.
func ParseMedia(data []byte) (MediaPlaylist, error) {
	m := MediaPlaylist{Live: true}
	lines, err := playlistLines(data, mediaHeader)
	if err != nil {
		return m, err
	}
	for _, line := range lines {
		f := strings.Fields(line)
		switch {
		case len(f) == 2 && f[0] == "target":
			d, err := strconv.Atoi(f[1])
			if err != nil || d <= 0 {
				return m, fmt.Errorf("stream: bad target duration %q", line)
			}
			m.TargetDuration = d
		case len(f) == 1 && f[0] == "end":
			m.Live = false
		case len(f) == 4 && f[0] == "seg":
			idx, err1 := strconv.Atoi(f[1])
			dur, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil || idx < 0 || dur < 0 {
				return m, fmt.Errorf("stream: bad segment line %q", line)
			}
			if n := len(m.Segments); n > 0 && idx != m.Segments[n-1].Index+1 {
				return m, fmt.Errorf("stream: non-contiguous segment index %d after %d",
					idx, m.Segments[n-1].Index)
			}
			m.Segments = append(m.Segments, SegmentRef{Index: idx, DurationSeconds: dur, URL: f[3]})
		default:
			return m, fmt.Errorf("stream: bad media playlist line %q", line)
		}
	}
	if m.TargetDuration == 0 {
		return m, fmt.Errorf("stream: media playlist missing target duration")
	}
	return m, nil
}

// playlistLines validates the header line and returns the remaining
// non-empty lines.
func playlistLines(data []byte, header string) ([]string, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != header {
		return nil, fmt.Errorf("stream: not a %s playlist", header)
	}
	out := make([]string, 0, len(lines)-1)
	for _, line := range lines[1:] {
		if s := strings.TrimSpace(line); s != "" {
			out = append(out, s)
		}
	}
	return out, nil
}
