package stream

import (
	"reflect"
	"testing"
)

func TestMasterPlaylistRoundTrip(t *testing.T) {
	m := MasterPlaylist{Renditions: []Rendition{
		{Label: "720p", BandwidthBps: 200_000, URL: "/playlist/12/720p"},
		{Label: "360p", BandwidthBps: 80_000, URL: "/playlist/12/360p"},
	}}
	got, err := ParseMaster(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}
}

func TestMediaPlaylistRoundTrip(t *testing.T) {
	for _, live := range []bool{false, true} {
		m := MediaPlaylist{TargetDuration: 4, Live: live, Segments: []SegmentRef{
			{Index: 0, DurationSeconds: 4, URL: "/segment/12/720p/0"},
			{Index: 1, DurationSeconds: 4, URL: "/segment/12/720p/1"},
			{Index: 2, DurationSeconds: 2, URL: "/segment/12/720p/2"},
		}}
		got, err := ParseMedia(m.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip (live=%v): got %+v, want %+v", live, got, m)
		}
	}
}

func TestPlaylistParseRejects(t *testing.T) {
	cases := []struct {
		name  string
		parse func([]byte) error
		data  string
	}{
		{"master wrong header", masterErr, "#VCPL:MEDIA:1\n"},
		{"master no renditions", masterErr, "#VCPL:MASTER:1\n"},
		{"master bad bandwidth", masterErr, "#VCPL:MASTER:1\nrendition 720p x /u\n"},
		{"master bad line", masterErr, "#VCPL:MASTER:1\nseg 0 4 /u\n"},
		{"media wrong header", mediaErr, "#VCPL:MASTER:1\n"},
		{"media no target", mediaErr, "#VCPL:MEDIA:1\nseg 0 4 /u\nend\n"},
		{"media gap in indices", mediaErr, "#VCPL:MEDIA:1\ntarget 4\nseg 0 4 /u\nseg 2 4 /u\nend\n"},
		{"media bad segment", mediaErr, "#VCPL:MEDIA:1\ntarget 4\nseg x 4 /u\nend\n"},
		{"media junk line", mediaErr, "#VCPL:MEDIA:1\ntarget 4\nwhat is this\n"},
	}
	for _, c := range cases {
		if err := c.parse([]byte(c.data)); err == nil {
			t.Errorf("%s: parse accepted %q", c.name, c.data)
		}
	}
}

func masterErr(data []byte) error { _, err := ParseMaster(data); return err }
func mediaErr(data []byte) error  { _, err := ParseMedia(data); return err }
