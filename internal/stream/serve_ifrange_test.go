package stream

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestIfRangeStaysOnSlicePath(t *testing.T) {
	data := payload(100000)
	var reasons []string
	srv := serveWithHook(t, data, &reasons)

	// First request learns the validator.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, "\"") {
		t.Fatalf("no strong ETag on sliced content, got %q", etag)
	}

	// Matching If-Range: the Range is honoured, zero-copy, no fallback.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Range", "bytes=100-299")
	req.Header.Set("If-Range", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("matching If-Range: status %d, want 206", resp.StatusCode)
	}
	if !bytes.Equal(body, data[100:300]) {
		t.Fatal("matching If-Range: body mismatch")
	}

	// Stale If-Range: Range ignored, full 200 — still no fallback.
	req, _ = http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Range", "bytes=100-299")
	req.Header.Set("If-Range", "\"deadbeefdeadbeef\"")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-Range: status %d, want 200", resp.StatusCode)
	}
	if !bytes.Equal(body, data) {
		t.Fatal("stale If-Range: expected the full representation")
	}
	if len(reasons) != 0 {
		t.Fatalf("If-Range requests fell back: %v", reasons)
	}

	// Multi-range still falls back, and the hook sees it.
	req, _ = http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Range", "bytes=0-9,20-29")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("multi-range: status %d", resp.StatusCode)
	}
	if len(reasons) != 1 || reasons[0] != "range-spec" {
		t.Fatalf("fallback reasons = %v, want [range-spec]", reasons)
	}
}

// serveWithHook serves data from an in-memory slicer through
// ServeWithFallback, appending fallback reasons to out.
func serveWithHook(t *testing.T, data []byte, out *[]string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := &memSlicer{data: data}
		ServeWithFallback(w, r, "v.vcf", c, func(reason string) { *out = append(*out, reason) })
	}))
	t.Cleanup(srv.Close)
	return srv
}

// memSlicer is a minimal in-memory SliceRanger + ReadSeeker.
type memSlicer struct {
	data []byte
	pos  int64
}

func (m *memSlicer) Size() int64 { return int64(len(m.data)) }

func (m *memSlicer) AppendRangeSlices(dst [][]byte, off, length int64) ([][]byte, error) {
	if off < 0 || off > int64(len(m.data)) {
		return dst, io.EOF
	}
	end := off + length
	if end > int64(len(m.data)) {
		end = int64(len(m.data))
	}
	return append(dst, m.data[off:end]), nil
}

func (m *memSlicer) Read(p []byte) (int, error) {
	if m.pos >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[m.pos:])
	m.pos += int64(n)
	return n, nil
}

func (m *memSlicer) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		m.pos = off
	case io.SeekCurrent:
		m.pos += off
	case io.SeekEnd:
		m.pos = int64(len(m.data)) + off
	}
	return m.pos, nil
}

func TestFallbackReasonNotSliceable(t *testing.T) {
	var reasons []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeWithFallback(w, r, "v.vcf", bytes.NewReader(payload(1000)),
			func(reason string) { reasons = append(reasons, reason) })
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if len(reasons) != 1 || reasons[0] != "not-sliceable" {
		t.Fatalf("reasons = %v, want [not-sliceable]", reasons)
	}
}
