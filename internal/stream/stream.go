// Package stream implements the playback path of the paper's §IV-E player
// page: "video time bars can be moved to streaming playback at any time"
// (Flowplayer over H.264). Serving is HTTP Range-based — the mechanism
// behind a draggable time bar — and the Player type is a headless client
// that probes, streams, and seeks like the Flash player would, so tests and
// experiments can drive real playback sessions.
package stream

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Serve writes content with full Range support (206 partial content,
// Accept-Ranges, If-Range) using the standard library's ServeContent over
// any io.ReadSeeker — which the HDFS reader satisfies, so playback bytes
// come straight out of replicated blocks.
func Serve(w http.ResponseWriter, r *http.Request, name string, content io.ReadSeeker) {
	// The paper streams H.264 in an MP4 container to Flowplayer, so the
	// response carries the real media type (not the internal .vcf
	// container extension).
	w.Header().Set("Content-Type", "video/mp4")
	http.ServeContent(w, r, name, time.Time{}, content)
}

// Player is a headless streaming client.
type Player struct {
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// ChunkBytes is the fetch window per request (default 256 KiB, a
	// typical progressive-download read-ahead).
	ChunkBytes int64
}

func (p *Player) client() *http.Client {
	if p.HTTP != nil {
		return p.HTTP
	}
	return http.DefaultClient
}

func (p *Player) chunk() int64 {
	if p.ChunkBytes > 0 {
		return p.ChunkBytes
	}
	return 256 << 10
}

// Errors returned by the player.
var (
	ErrNoRangeSupport = errors.New("stream: server does not support ranges")
	ErrBadStatus      = errors.New("stream: unexpected HTTP status")
)

// Probe asks for the first byte to learn total size and Range support.
func (p *Player) Probe(url string) (size int64, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Range", "bytes=0-0")
	resp, err := p.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusPartialContent:
		// Range honoured — fall through to Content-Range parsing.
	case http.StatusOK:
		// The server answered with the full body: it works, it just
		// ignores Range — the only reply that genuinely means "no range
		// support". Anything else (404, 500, 503…) is a request failure.
		return 0, fmt.Errorf("%w: got 200 with full content", ErrNoRangeSupport)
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadStatus, resp.StatusCode)
	}
	// Content-Range: bytes 0-0/12345
	cr := resp.Header.Get("Content-Range")
	i := strings.LastIndexByte(cr, '/')
	if i < 0 {
		return 0, fmt.Errorf("stream: bad Content-Range %q", cr)
	}
	return strconv.ParseInt(cr[i+1:], 10, 64)
}

// FetchRange retrieves bytes [start, end] inclusive.
func (p *Player) FetchRange(url string, start, end int64) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", start, end))
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		return nil, fmt.Errorf("%w: %d for range %d-%d", ErrBadStatus, resp.StatusCode, start, end)
	}
	return io.ReadAll(resp.Body)
}

// Report summarises a playback session.
type Report struct {
	Size         int64
	BytesFetched int64
	Requests     int
	Seeks        int
}

// Play simulates a viewing session: probe, fetch the first chunk (startup),
// then for each seek fraction drag the time bar there and stream one chunk.
// verify, when non-nil, receives each (offset, data) window for content
// checking.
func (p *Player) Play(url string, seekFractions []float64, verify func(off int64, data []byte) error) (*Report, error) {
	size, err := p.Probe(url)
	if err != nil {
		return nil, err
	}
	rep := &Report{Size: size, Requests: 1}
	fetch := func(off int64) error {
		end := off + p.chunk() - 1
		if end >= size {
			end = size - 1
		}
		if off > end {
			return fmt.Errorf("stream: seek beyond end (%d >= %d)", off, size)
		}
		data, err := p.FetchRange(url, off, end)
		if err != nil {
			return err
		}
		rep.Requests++
		rep.BytesFetched += int64(len(data))
		if int64(len(data)) != end-off+1 {
			return fmt.Errorf("stream: short range read %d of %d", len(data), end-off+1)
		}
		if verify != nil {
			return verify(off, data)
		}
		return nil
	}
	if err := fetch(0); err != nil {
		return nil, err
	}
	for _, f := range seekFractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("stream: seek fraction %v out of [0,1)", f)
		}
		off := int64(f * float64(size))
		if err := fetch(off); err != nil {
			return nil, err
		}
		rep.Seeks++
	}
	return rep, nil
}
