// Package stream implements the playback path of the paper's §IV-E player
// page: "video time bars can be moved to streaming playback at any time"
// (Flowplayer over H.264). Serving is HTTP Range-based — the mechanism
// behind a draggable time bar — and the Player type is a headless client
// that probes, streams, and seeks like the Flash player would, so tests and
// experiments can drive real playback sessions.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// SliceRanger is content that can expose a byte range as views of its
// backing storage instead of copying through a read buffer — the HDFS
// reader implements it by slicing shared-cache block data. Serve uses it
// for the zero-copy response path.
type SliceRanger interface {
	Size() int64
	// AppendRangeSlices appends views covering [off, off+length) (clamped
	// to EOF) to dst. The views must stay valid until the content is
	// closed.
	AppendRangeSlices(dst [][]byte, off, length int64) ([][]byte, error)
}

// Serve writes content with full Range support (206 partial content,
// Accept-Ranges, If-Range) — the paper's draggable-time-bar mechanism.
//
// Content implementing SliceRanger takes the zero-copy path: the requested
// window is resolved to views of cached block data and written with a
// single readv-style vectored write (net.Buffers), so no serving buffer
// ever holds a copy of the bytes. Single-range If-Range requests stay on
// that path: sliced content gets a strong ETag (derived from name and
// size), a matching validator serves the range, a stale one serves the full
// representation — both zero-copy, per RFC 7233. Only what the slice path
// does not speak (multi-range requests, malformed specs, plain
// io.ReadSeeker content) falls back to the standard library's ServeContent.
func Serve(w http.ResponseWriter, r *http.Request, name string, content io.ReadSeeker) {
	ServeWithFallback(w, r, name, content, nil)
}

// ServeWithFallback is Serve with a hook: onFallback (when non-nil) is
// called with a short reason just before a request leaves the zero-copy
// slice path for the copying ServeContent path, so servers can keep the
// fallback rate visible in their stats.
func ServeWithFallback(w http.ResponseWriter, r *http.Request, name string, content io.ReadSeeker, onFallback func(reason string)) {
	// The paper streams H.264 in an MP4 container to Flowplayer, so the
	// response carries the real media type (not the internal .vcf
	// container extension).
	w.Header().Set("Content-Type", "video/mp4")
	fallback := func(reason string) {
		if onFallback != nil {
			onFallback(reason)
		}
		http.ServeContent(w, r, name, time.Time{}, content)
	}
	sr, ok := content.(SliceRanger)
	if !ok {
		fallback("not-sliceable")
		return
	}
	etag := w.Header().Get("ETag")
	if etag == "" {
		etag = contentETag(name, sr.Size())
		w.Header().Set("ETag", etag)
	}
	// RFC 7233 §3.2: a matching If-Range validator honours the Range; a
	// stale one means the client's byte offsets refer to an old version, so
	// the Range is ignored and the current full representation is sent.
	// Both outcomes stay on the slice path.
	ignoreRange := false
	if ir := r.Header.Get("If-Range"); ir != "" && ir != etag {
		ignoreRange = true
	}
	if reason := serveSlices(w, r, sr, ignoreRange); reason != "" {
		fallback(reason)
	}
}

// contentETag derives a strong validator from what identifies a stored
// video's bytes: its path and size (content under videos/ and segments/ is
// written once and never rewritten in place).
func contentETag(name string, size int64) string {
	h := fnv.New64a()
	io.WriteString(h, name)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(size))
	h.Write(b[:])
	return fmt.Sprintf("\"%016x\"", h.Sum64())
}

// serveSlices answers GET/HEAD with an optional single Range out of a
// SliceRanger, returning "" when it handled the request. Requests it does
// not speak (multi-range, malformed specs, non-bytes units) return a short
// reason and fall back to ServeContent. ignoreRange serves the full
// representation regardless of any Range header (the If-Range-mismatch
// case).
func serveSlices(w http.ResponseWriter, r *http.Request, sr SliceRanger, ignoreRange bool) string {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		return "method"
	}
	size := sr.Size()
	off, length := int64(0), size
	status := http.StatusOK
	if spec := r.Header.Get("Range"); spec != "" && !ignoreRange {
		var ok bool
		off, length, ok = parseRange(spec, size)
		if !ok {
			return "range-spec"
		}
		if off < 0 {
			// Syntactically valid but unsatisfiable (start past EOF, or
			// any range against an empty file).
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
			http.Error(w, "requested range not satisfiable", http.StatusRequestedRangeNotSatisfiable)
			return ""
		}
		status = http.StatusPartialContent
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, size))
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	w.WriteHeader(status)
	if r.Method == http.MethodHead || length == 0 {
		return ""
	}
	slices, err := sr.AppendRangeSlices(nil, off, length)
	if err != nil {
		// Headers are on the wire; aborting the connection mid-body is the
		// only honest signal left (ServeContent has the same failure mode).
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		return ""
	}
	// One vectored write: on a TCP connection net.Buffers becomes writev,
	// handing every cached block slice to the kernel without concatenating
	// them into a response buffer.
	bufs := net.Buffers(slices)
	bufs.WriteTo(w)
	return ""
}

// parseRange parses a single-range "bytes=" spec against size, returning
// the window and ok=false for specs this path does not serve (multi-range,
// non-bytes units, syntax errors) — those fall back to ServeContent. A
// syntactically valid but unsatisfiable range returns off=-1 with ok=true.
func parseRange(spec string, size int64) (off, length int64, ok bool) {
	const prefix = "bytes="
	if !strings.HasPrefix(spec, prefix) || strings.ContainsAny(spec, ", ") {
		return 0, 0, false
	}
	startStr, endStr, found := strings.Cut(spec[len(prefix):], "-")
	if !found {
		return 0, 0, false
	}
	if startStr == "" {
		// Suffix form "-n": the final n bytes.
		n, err := strconv.ParseInt(endStr, 10, 64)
		if err != nil || n < 0 {
			return 0, 0, false
		}
		if n == 0 || size == 0 {
			return -1, 0, true
		}
		if n > size {
			n = size
		}
		return size - n, n, true
	}
	start, err := strconv.ParseInt(startStr, 10, 64)
	if err != nil || start < 0 {
		return 0, 0, false
	}
	if start >= size {
		return -1, 0, true
	}
	if endStr == "" {
		return start, size - start, true
	}
	end, err := strconv.ParseInt(endStr, 10, 64)
	if err != nil || end < start {
		return 0, 0, false
	}
	if end >= size {
		end = size - 1
	}
	return start, end - start + 1, true
}

// Player is a headless streaming client.
type Player struct {
	// HTTP defaults to http.DefaultClient.
	HTTP *http.Client
	// ChunkBytes is the fetch window per request (default 256 KiB, a
	// typical progressive-download read-ahead).
	ChunkBytes int64
}

func (p *Player) client() *http.Client {
	if p.HTTP != nil {
		return p.HTTP
	}
	return http.DefaultClient
}

func (p *Player) chunk() int64 {
	if p.ChunkBytes > 0 {
		return p.ChunkBytes
	}
	return 256 << 10
}

// Errors returned by the player.
var (
	ErrNoRangeSupport = errors.New("stream: server does not support ranges")
	ErrBadStatus      = errors.New("stream: unexpected HTTP status")
)

// probeDrainLimit bounds how much of a probe response body the player reads
// before giving up on it. A range-honouring server sends 1 byte; a server
// that ignores Range would otherwise make the probe download the whole
// video just to learn it can't seek.
const probeDrainLimit = 4 << 10

// Probe asks for the first byte to learn total size and Range support.
func (p *Player) Probe(url string) (size int64, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Range", "bytes=0-0")
	resp, err := p.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	// Drain at most a few KiB so the connection can be reused in the
	// common case, then just close: never slurp a 200-with-full-body.
	io.CopyN(io.Discard, resp.Body, probeDrainLimit)
	switch resp.StatusCode {
	case http.StatusPartialContent,
		http.StatusRequestedRangeNotSatisfiable:
		// 206: range honoured. 416: range understood but the file is
		// empty (no byte 0 exists) — both carry the total size in
		// Content-Range, as "bytes 0-0/N" or "bytes */N".
	case http.StatusOK:
		// The server answered with the full body: it works, it just
		// ignores Range — the only reply that genuinely means "no range
		// support". Anything else (404, 500, 503…) is a request failure.
		return 0, fmt.Errorf("%w: got 200 with full content", ErrNoRangeSupport)
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadStatus, resp.StatusCode)
	}
	// Content-Range: bytes 0-0/12345 (or bytes */0 for an empty file)
	cr := resp.Header.Get("Content-Range")
	i := strings.LastIndexByte(cr, '/')
	if i < 0 {
		return 0, fmt.Errorf("stream: bad Content-Range %q", cr)
	}
	return strconv.ParseInt(cr[i+1:], 10, 64)
}

// FetchRange retrieves bytes [start, end] inclusive.
func (p *Player) FetchRange(url string, start, end int64) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", start, end))
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		return nil, fmt.Errorf("%w: %d for range %d-%d", ErrBadStatus, resp.StatusCode, start, end)
	}
	return io.ReadAll(resp.Body)
}

// Report summarises a playback session.
type Report struct {
	Size         int64
	BytesFetched int64
	Requests     int
	Seeks        int
}

// Play simulates a viewing session: probe, fetch the first chunk (startup),
// then for each seek fraction drag the time bar there and stream one chunk.
// verify, when non-nil, receives each (offset, data) window for content
// checking.
func (p *Player) Play(url string, seekFractions []float64, verify func(off int64, data []byte) error) (*Report, error) {
	size, err := p.Probe(url)
	if err != nil {
		return nil, err
	}
	rep := &Report{Size: size, Requests: 1}
	if size == 0 {
		// A zero-length video has nothing to fetch; the session is just
		// the probe. Seek fractions are still validated — a bad drag is a
		// caller bug regardless of content length.
		for _, f := range seekFractions {
			if f < 0 || f >= 1 {
				return nil, fmt.Errorf("stream: seek fraction %v out of [0,1)", f)
			}
			rep.Seeks++
		}
		return rep, nil
	}
	fetch := func(off int64) error {
		end := off + p.chunk() - 1
		if end >= size {
			end = size - 1
		}
		if off > end {
			return fmt.Errorf("stream: seek beyond end (%d >= %d)", off, size)
		}
		data, err := p.FetchRange(url, off, end)
		if err != nil {
			return err
		}
		rep.Requests++
		rep.BytesFetched += int64(len(data))
		if int64(len(data)) != end-off+1 {
			return fmt.Errorf("stream: short range read %d of %d", len(data), end-off+1)
		}
		if verify != nil {
			return verify(off, data)
		}
		return nil
	}
	if err := fetch(0); err != nil {
		return nil, err
	}
	for _, f := range seekFractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("stream: seek fraction %v out of [0,1)", f)
		}
		off := int64(f * float64(size))
		if err := fetch(off); err != nil {
			return nil, err
		}
		rep.Seeks++
	}
	return rep, nil
}
