package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
)

// server serves one file from HDFS through the fuse mount.
func server(t *testing.T, data []byte) (*httptest.Server, []byte) {
	t.Helper()
	c := hdfs.NewCluster(3, 64*1024)
	m, err := fusebridge.New(c.Client(""), "/videos", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("v.vcf", data); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rd, err := m.OpenSeeker("v.vcf")
		if err != nil {
			http.NotFound(w, r)
			return
		}
		Serve(w, r, "v.vcf", rd)
	}))
	t.Cleanup(srv.Close)
	return srv, data
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestProbe(t *testing.T) {
	srv, data := server(t, payload(300000))
	p := &Player{}
	size, err := p.Probe(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", size, len(data))
	}
}

func TestFetchRange(t *testing.T) {
	srv, data := server(t, payload(300000))
	p := &Player{}
	got, err := p.FetchRange(srv.URL, 100000, 100099)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[100000:100100]) {
		t.Fatal("range bytes wrong")
	}
	// Tail range.
	got, err = p.FetchRange(srv.URL, int64(len(data)-10), int64(len(data)-1))
	if err != nil || len(got) != 10 {
		t.Fatalf("tail range: %v (%d bytes)", err, len(got))
	}
}

func TestPlayWithSeeks(t *testing.T) {
	srv, data := server(t, payload(1_000_000))
	p := &Player{ChunkBytes: 64 << 10}
	rep, err := p.Play(srv.URL, []float64{0.5, 0.9, 0.1}, func(off int64, chunk []byte) error {
		if !bytes.Equal(chunk, data[off:off+int64(len(chunk))]) {
			t.Fatalf("content mismatch at %d", off)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeks != 3 {
		t.Fatalf("seeks = %d", rep.Seeks)
	}
	if rep.Requests != 5 { // probe + startup + 3 seeks
		t.Fatalf("requests = %d", rep.Requests)
	}
	// Progressive download fetched far less than the whole file — the
	// point of a seekable time bar: "not necessary to view from the very
	// beginning to the end".
	if rep.BytesFetched >= rep.Size/2 {
		t.Fatalf("fetched %d of %d despite seeking", rep.BytesFetched, rep.Size)
	}
}

func TestPlayValidation(t *testing.T) {
	srv, _ := server(t, payload(100000))
	p := &Player{}
	if _, err := p.Play(srv.URL, []float64{1.5}, nil); err == nil {
		t.Fatal("bad seek fraction accepted")
	}
	if _, err := p.Play(srv.URL, []float64{-0.1}, nil); err == nil {
		t.Fatal("negative seek accepted")
	}
}

// TestServeContentType is the MIME regression test: the paper streams H.264
// to Flowplayer, which wants a real video media type, not the internal .vcf
// container extension.
func TestServeContentType(t *testing.T) {
	srv, _ := server(t, payload(1000))
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "video/mp4" {
		t.Fatalf("Content-Type = %q, want video/mp4", ct)
	}
}

// TestProbeBadStatus checks Probe distinguishes a request failure from a
// working server that merely lacks range support.
func TestProbeBadStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	p := &Player{}
	_, err := p.Probe(srv.URL)
	if !errors.Is(err, ErrBadStatus) {
		t.Fatalf("err = %v, want ErrBadStatus", err)
	}
	if errors.Is(err, ErrNoRangeSupport) {
		t.Fatal("404 misreported as missing range support")
	}
}

func TestNoRangeSupportDetected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("plain body, no ranges"))
	}))
	defer srv.Close()
	p := &Player{}
	if _, err := p.Probe(srv.URL); !errors.Is(err, ErrNoRangeSupport) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamingSurvivesDataNodeDeath(t *testing.T) {
	c := hdfs.NewCluster(3, 64*1024)
	m, _ := fusebridge.New(c.Client(""), "/videos", 3)
	data := payload(500000)
	m.WriteFile("v.vcf", data)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rd, _ := m.OpenSeeker("v.vcf")
		Serve(w, r, "v.vcf", rd)
	}))
	defer srv.Close()
	c.KillDataNode("dn0")
	p := &Player{}
	rep, err := p.Play(srv.URL, []float64{0.7}, func(off int64, chunk []byte) error {
		if !bytes.Equal(chunk, data[off:off+int64(len(chunk))]) {
			return errors.New("content mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("playback after node death: %v", err)
	}
	if rep.Size != int64(len(data)) {
		t.Fatalf("size = %d", rep.Size)
	}
}

// countingTransport counts the response-body bytes actually consumed by the
// client — exactly what Probe drains, independent of what the server wrote.
type countingTransport struct {
	n int64
}

type countingBody struct {
	io.ReadCloser
	n *int64
}

func (b countingBody) Read(p []byte) (int, error) {
	n, err := b.ReadCloser.Read(p)
	*b.n += int64(n)
	return n, err
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = countingBody{resp.Body, &t.n}
	return resp, nil
}

// TestProbeDrainCapped is the regression test for the probe-slurp bug:
// against a server that ignores Range and answers 200 with the whole file,
// Probe used to drain the entire body before reporting ErrNoRangeSupport —
// downloading a full video just to learn it can't seek. The drain must be
// capped near probeDrainLimit.
func TestProbeDrainCapped(t *testing.T) {
	const bodySize = 8 << 20
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, bodySize))
	}))
	defer srv.Close()
	ct := &countingTransport{}
	p := &Player{HTTP: &http.Client{Transport: ct}}
	if _, err := p.Probe(srv.URL); !errors.Is(err, ErrNoRangeSupport) {
		t.Fatalf("err = %v, want ErrNoRangeSupport", err)
	}
	// Allow transport buffering slack beyond the drain cap, but nothing
	// close to the body size.
	if ct.n > probeDrainLimit+(64<<10) {
		t.Fatalf("probe consumed %d bytes of a range-ignoring response, want <= ~%d", ct.n, probeDrainLimit)
	}
}

// TestPlayEmptyFile is the regression test for the zero-length crash: Play
// used to issue a startup fetch at offset 0 of a 0-byte file and fail with
// "seek beyond end". An empty video is a valid (if dull) session: probe
// only, zero bytes fetched, seek fractions still validated.
func TestPlayEmptyFile(t *testing.T) {
	srv, _ := server(t, nil)
	p := &Player{}
	rep, err := p.Play(srv.URL, []float64{0.5}, func(off int64, chunk []byte) error {
		t.Fatal("verify called for an empty file")
		return nil
	})
	if err != nil {
		t.Fatalf("empty-file playback: %v", err)
	}
	if rep.Size != 0 || rep.BytesFetched != 0 || rep.Requests != 1 || rep.Seeks != 1 {
		t.Fatalf("report = %+v, want Size 0, BytesFetched 0, Requests 1, Seeks 1", rep)
	}
	// Bad fractions still rejected with no content to play.
	if _, err := p.Play(srv.URL, []float64{1.5}, nil); err == nil {
		t.Fatal("bad seek fraction accepted for empty file")
	}
}

// TestServeSlicesRangeMatrix drives the vectored zero-copy response path
// through the Range shapes a real player sends, checking status, headers,
// and byte-exact bodies against the RFC 7233 behaviour ServeContent set the
// baseline for.
func TestServeSlicesRangeMatrix(t *testing.T) {
	srv, data := server(t, payload(200000))
	size := int64(len(data))
	get := func(rangeHdr string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rangeHdr != "" {
			req.Header.Set("Range", rangeHdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	body := func(resp *http.Response) []byte {
		t.Helper()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Plain GET: 200, full body, ranges advertised.
	resp := get("")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Accept-Ranges") != "bytes" {
		t.Fatalf("plain GET: status %d, Accept-Ranges %q", resp.StatusCode, resp.Header.Get("Accept-Ranges"))
	}
	if !bytes.Equal(body(resp), data) {
		t.Fatal("plain GET body mismatch")
	}

	// Interior range: 206 with exact Content-Range and bytes.
	resp = get("bytes=1000-2999")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("interior range: status %d", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes 1000-2999/%d", size) {
		t.Fatalf("interior range: Content-Range %q", cr)
	}
	if !bytes.Equal(body(resp), data[1000:3000]) {
		t.Fatal("interior range body mismatch")
	}

	// Open-ended "a-" and suffix "-n" forms.
	resp = get(fmt.Sprintf("bytes=%d-", size-500))
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body(resp), data[size-500:]) {
		t.Fatalf("open-ended range: status %d", resp.StatusCode)
	}
	resp = get("bytes=-50")
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body(resp), data[size-50:]) {
		t.Fatalf("suffix range: status %d", resp.StatusCode)
	}

	// End past EOF is clamped, not rejected.
	resp = get(fmt.Sprintf("bytes=%d-%d", size-10, size+1000))
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body(resp), data[size-10:]) {
		t.Fatalf("clamped range: status %d", resp.StatusCode)
	}

	// Start past EOF: 416 with the total-size form.
	resp = get(fmt.Sprintf("bytes=%d-", size+5))
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("unsatisfiable range: status %d", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != fmt.Sprintf("bytes */%d", size) {
		t.Fatalf("unsatisfiable range: Content-Range %q", cr)
	}

	// Multi-range falls back to ServeContent's multipart handling.
	resp = get("bytes=0-9,20-29")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("multi-range: status %d", resp.StatusCode)
	}
	if mt := resp.Header.Get("Content-Type"); !strings.HasPrefix(mt, "multipart/byteranges") {
		t.Fatalf("multi-range: Content-Type %q", mt)
	}

	// HEAD: headers only, no body.
	req, _ := http.NewRequest(http.MethodHead, srv.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.ContentLength != size {
		t.Fatalf("HEAD: status %d, Content-Length %d", resp.StatusCode, resp.ContentLength)
	}
	if len(body(resp)) != 0 {
		t.Fatal("HEAD returned a body")
	}
}
