package stream

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"videocloud/internal/fusebridge"
	"videocloud/internal/hdfs"
)

// server serves one file from HDFS through the fuse mount.
func server(t *testing.T, data []byte) (*httptest.Server, []byte) {
	t.Helper()
	c := hdfs.NewCluster(3, 64*1024)
	m, err := fusebridge.New(c.Client(""), "/videos", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile("v.vcf", data); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rd, err := m.OpenSeeker("v.vcf")
		if err != nil {
			http.NotFound(w, r)
			return
		}
		Serve(w, r, "v.vcf", rd)
	}))
	t.Cleanup(srv.Close)
	return srv, data
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestProbe(t *testing.T) {
	srv, data := server(t, payload(300000))
	p := &Player{}
	size, err := p.Probe(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", size, len(data))
	}
}

func TestFetchRange(t *testing.T) {
	srv, data := server(t, payload(300000))
	p := &Player{}
	got, err := p.FetchRange(srv.URL, 100000, 100099)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[100000:100100]) {
		t.Fatal("range bytes wrong")
	}
	// Tail range.
	got, err = p.FetchRange(srv.URL, int64(len(data)-10), int64(len(data)-1))
	if err != nil || len(got) != 10 {
		t.Fatalf("tail range: %v (%d bytes)", err, len(got))
	}
}

func TestPlayWithSeeks(t *testing.T) {
	srv, data := server(t, payload(1_000_000))
	p := &Player{ChunkBytes: 64 << 10}
	rep, err := p.Play(srv.URL, []float64{0.5, 0.9, 0.1}, func(off int64, chunk []byte) error {
		if !bytes.Equal(chunk, data[off:off+int64(len(chunk))]) {
			t.Fatalf("content mismatch at %d", off)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeks != 3 {
		t.Fatalf("seeks = %d", rep.Seeks)
	}
	if rep.Requests != 5 { // probe + startup + 3 seeks
		t.Fatalf("requests = %d", rep.Requests)
	}
	// Progressive download fetched far less than the whole file — the
	// point of a seekable time bar: "not necessary to view from the very
	// beginning to the end".
	if rep.BytesFetched >= rep.Size/2 {
		t.Fatalf("fetched %d of %d despite seeking", rep.BytesFetched, rep.Size)
	}
}

func TestPlayValidation(t *testing.T) {
	srv, _ := server(t, payload(100000))
	p := &Player{}
	if _, err := p.Play(srv.URL, []float64{1.5}, nil); err == nil {
		t.Fatal("bad seek fraction accepted")
	}
	if _, err := p.Play(srv.URL, []float64{-0.1}, nil); err == nil {
		t.Fatal("negative seek accepted")
	}
}

// TestServeContentType is the MIME regression test: the paper streams H.264
// to Flowplayer, which wants a real video media type, not the internal .vcf
// container extension.
func TestServeContentType(t *testing.T) {
	srv, _ := server(t, payload(1000))
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "video/mp4" {
		t.Fatalf("Content-Type = %q, want video/mp4", ct)
	}
}

// TestProbeBadStatus checks Probe distinguishes a request failure from a
// working server that merely lacks range support.
func TestProbeBadStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	p := &Player{}
	_, err := p.Probe(srv.URL)
	if !errors.Is(err, ErrBadStatus) {
		t.Fatalf("err = %v, want ErrBadStatus", err)
	}
	if errors.Is(err, ErrNoRangeSupport) {
		t.Fatal("404 misreported as missing range support")
	}
}

func TestNoRangeSupportDetected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("plain body, no ranges"))
	}))
	defer srv.Close()
	p := &Player{}
	if _, err := p.Probe(srv.URL); !errors.Is(err, ErrNoRangeSupport) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamingSurvivesDataNodeDeath(t *testing.T) {
	c := hdfs.NewCluster(3, 64*1024)
	m, _ := fusebridge.New(c.Client(""), "/videos", 3)
	data := payload(500000)
	m.WriteFile("v.vcf", data)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rd, _ := m.OpenSeeker("v.vcf")
		Serve(w, r, "v.vcf", rd)
	}))
	defer srv.Close()
	c.KillDataNode("dn0")
	p := &Player{}
	rep, err := p.Play(srv.URL, []float64{0.7}, func(off int64, chunk []byte) error {
		if !bytes.Equal(chunk, data[off:off+int64(len(chunk))]) {
			return errors.New("content mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("playback after node death: %v", err)
	}
	if rep.Size != int64(len(data)) {
		t.Fatalf("size = %d", rep.Size)
	}
}
