package tenant

import (
	"testing"
)

// TestAllocAuthenticate gates the token-verify + tenant-lookup hot path —
// this runs inside the web middleware on every authenticated request — at
// <= 2 allocs/op (the hash's []byte conversion is the only unavoidable
// one). Wired into `make alloccheck`.
func TestAllocAuthenticate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is unreliable in short/race runs")
	}
	r := NewRegistry()
	if _, err := r.Create("acme", 1, Quota{}); err != nil {
		t.Fatal(err)
	}
	tok, err := r.IssueToken("acme", RoleWriter)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := r.Authenticate(tok); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Authenticate = %.1f allocs/op, want <= 2", allocs)
	}
}

// TestAllocHashToken keeps the shared digest helper allocation-bounded;
// session-cookie lookups in the web tier hash on every request.
func TestAllocHashToken(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is unreliable in short/race runs")
	}
	tok := NewToken()
	var sink [32]byte
	allocs := testing.AllocsPerRun(1000, func() {
		sink = HashToken(tok)
	})
	_ = sink
	if allocs > 1 {
		t.Fatalf("HashToken = %.1f allocs/op, want <= 1", allocs)
	}
}
