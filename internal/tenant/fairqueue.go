package tenant

import (
	"sync"
	"time"
)

// throttleRetryAfter hints when a throttled flow should retry: by then the
// workers have usually drained at least one of its queued jobs.
const throttleRetryAfter = 2 * time.Second

// fqEntry is one queued item with its start-time-fair finish tag.
type fqEntry[T any] struct {
	item   T
	finish float64
}

// fqFlow is one tenant's FIFO inside the fair queue.
type fqFlow[T any] struct {
	name       string
	weight     int
	entries    []fqEntry[T]
	lastFinish float64
}

// FairQueue is a bounded multi-flow queue with start-time fair queuing
// (SFQ) dispatch: each pushed item gets a virtual finish tag
//
//	finish = max(virt, flow.lastFinish) + cost/weight
//
// and Pop always takes the earliest-finishing head across flows, so
// service interleaves proportionally to weight no matter how deep one
// flow's backlog runs.
//
// Backpressure is two-tier, preserving the legacy single-operator
// contract while isolating weighted tenants:
//
//   - The legacy flow (weight <= 0, from unauthenticated/default traffic)
//     is never throttled: when the queue is full its Push blocks, exactly
//     like the plain channel it replaces.
//   - A weighted flow whose own backlog has reached its fair share of the
//     queue capacity gets an immediate ThrottleError (mapped to HTTP 429 +
//     Retry-After) instead of being allowed to crowd out other flows; a
//     weighted flow under its share blocks only when the queue is globally
//     full of under-share work.
type FairQueue[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond

	capacity int
	size     int
	virt     float64
	flows    map[string]*fqFlow[T]
	closed   bool

	throttles int64
}

// legacyFlow is the internal flow name for weight<=0 pushes.
const legacyFlow = "\x00legacy"

// NewFairQueue builds a fair queue holding at most capacity items.
func NewFairQueue[T any](capacity int) *FairQueue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &FairQueue[T]{capacity: capacity, flows: make(map[string]*fqFlow[T])}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Push enqueues item on the named flow. cost is the item's service cost in
// arbitrary consistent units (e.g. source video seconds); larger costs push
// the flow's next turn further out. See the type comment for the blocking
// vs throttling contract. Returns ErrQueueClosed after Close.
func (q *FairQueue[T]) Push(flowName string, weight int, cost float64, item T) error {
	legacy := weight <= 0
	if legacy {
		flowName, weight = legacyFlow, 1
	}
	if cost <= 0 {
		cost = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrQueueClosed
		}
		f := q.flows[flowName]
		if !legacy && f != nil && len(f.entries) >= q.shareLocked(flowName, weight) {
			q.throttles++
			return &ThrottleError{
				Flow:       flowName,
				Backlog:    len(f.entries),
				Share:      q.shareLocked(flowName, weight),
				RetryAfter: throttleRetryAfter,
			}
		}
		if q.size < q.capacity {
			break
		}
		q.notFull.Wait()
	}
	f := q.flows[flowName]
	if f == nil {
		f = &fqFlow[T]{name: flowName, weight: weight}
		q.flows[flowName] = f
	}
	f.weight = weight
	start := f.lastFinish
	if q.virt > start {
		start = q.virt
	}
	finish := start + cost/float64(weight)
	f.lastFinish = finish
	f.entries = append(f.entries, fqEntry[T]{item: item, finish: finish})
	q.size++
	q.notEmpty.Signal()
	return nil
}

// shareLocked computes a weighted flow's fair share of the queue capacity:
// capacity * weight / (total weight of currently backlogged flows,
// counting the pusher once), floored at 1 so every tenant can always have
// at least one job queued.
func (q *FairQueue[T]) shareLocked(flowName string, weight int) int {
	active, self := 0, false
	for name, f := range q.flows {
		if len(f.entries) > 0 {
			active += f.weight
			if name == flowName {
				self = true
			}
		}
	}
	if !self {
		active += weight
	}
	share := q.capacity * weight / active
	if share < 1 {
		share = 1
	}
	return share
}

// Pop dequeues the earliest-finishing head across flows, blocking until an
// item is available. After Close it drains remaining items, then returns
// ok=false.
func (q *FairQueue[T]) Pop() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.notEmpty.Wait()
	}
	var best *fqFlow[T]
	for _, f := range q.flows {
		if len(f.entries) == 0 {
			continue
		}
		if best == nil ||
			f.entries[0].finish < best.entries[0].finish ||
			(f.entries[0].finish == best.entries[0].finish && f.name < best.name) {
			best = f
		}
	}
	head := best.entries[0]
	copy(best.entries, best.entries[1:])
	best.entries = best.entries[:len(best.entries)-1]
	if len(best.entries) == 0 && best.name != legacyFlow {
		// Idle flows are pruned so long-lived queues do not accumulate
		// per-tenant state; lastFinish restarts from virt on return,
		// which SFQ tolerates (virt only moves forward).
		delete(q.flows, best.name)
	}
	if head.finish > q.virt {
		q.virt = head.finish
	}
	q.size--
	q.notFull.Signal()
	return head.item, true
}

// Close wakes all blocked pushers (they fail with ErrQueueClosed) and lets
// poppers drain what remains.
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Len returns the number of queued items.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Cap returns the queue capacity.
func (q *FairQueue[T]) Cap() int { return q.capacity }

// Full reports whether the queue is at capacity.
func (q *FairQueue[T]) Full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size >= q.capacity
}

// Backlog returns the named flow's queued-item count ("" or weight<=0
// flows live under the legacy flow).
func (q *FairQueue[T]) Backlog(flowName string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if f := q.flows[flowName]; f != nil {
		return len(f.entries)
	}
	return 0
}

// Throttles returns how many pushes were refused with a ThrottleError.
func (q *FairQueue[T]) Throttles() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.throttles
}
