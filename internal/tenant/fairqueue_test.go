package tenant

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFairQueueFIFOWithinFlow(t *testing.T) {
	q := NewFairQueue[int](8)
	for i := 0; i < 5; i++ {
		if err := q.Push("a", 1, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		got, ok := q.Pop()
		if !ok || got != i {
			t.Fatalf("pop %d = %d,%v", i, got, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d", q.Len())
	}
}

// TestFairQueueInterleaves pins the SFQ property: with equal weights and a
// deep backlog from each flow, service alternates rather than draining one
// flow first.
func TestFairQueueInterleaves(t *testing.T) {
	q := NewFairQueue[string](16)
	for i := 0; i < 4; i++ {
		if err := q.Push("bulk", 1, 1, "bulk"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := q.Push("victim", 1, 1, "victim"); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 8; i++ {
		it, _ := q.Pop()
		order = append(order, it)
	}
	// The victim's first job must come out within the first two pops even
	// though bulk enqueued its whole batch first.
	if order[0] != "victim" && order[1] != "victim" {
		t.Fatalf("victim starved: %v", order)
	}
	// No run of 3+ same-flow pops while both have backlog (positions 0..5).
	for i := 2; i < 6; i++ {
		if order[i] == order[i-1] && order[i-1] == order[i-2] {
			t.Fatalf("3-run of %s at %d: %v", order[i], i, order)
		}
	}
}

// TestFairQueueWeights pins proportional service: a weight-3 flow gets ~3x
// the service of a weight-1 flow over a mixed backlog.
func TestFairQueueWeights(t *testing.T) {
	q := NewFairQueue[string](32)
	for i := 0; i < 8; i++ {
		if err := q.Push("heavy", 3, 1, "heavy"); err != nil {
			t.Fatal(err)
		}
	}
	// light's fair share of 32 slots at weight 1 vs heavy's 3 is 8.
	for i := 0; i < 8; i++ {
		if err := q.Push("light", 1, 1, "light"); err != nil {
			t.Fatal(err)
		}
	}
	heavy := 0
	for i := 0; i < 8; i++ {
		it, _ := q.Pop()
		if it == "heavy" {
			heavy++
		}
	}
	if heavy < 5 || heavy > 7 {
		t.Fatalf("weight-3 flow got %d of first 8 slots, want ~6", heavy)
	}
}

// TestFairQueueCostAware pins that cost feeds the finish tag: one
// expensive job defers the flow's next turn as much as many cheap ones.
func TestFairQueueCostAware(t *testing.T) {
	q := NewFairQueue[string](16)
	q.Push("big", 1, 10, "big-1") // one 10-second source
	q.Push("big", 1, 10, "big-2")
	for i := 0; i < 5; i++ {
		q.Push("small", 1, 2, "small") // five 2-second sources
	}
	// First pop is big-1 (finish 10) vs small (finish 2) -> small wins.
	it, _ := q.Pop()
	if it != "small" {
		t.Fatalf("first pop = %s, want small", it)
	}
	// big-2 (finish 20) must wait for all five smalls (finishes 2..10).
	var popped []string
	for i := 0; i < 6; i++ {
		it, _ := q.Pop()
		popped = append(popped, it)
	}
	if popped[5] != "big-2" {
		t.Fatalf("big-2 jumped the cost line: %v", popped)
	}
}

// TestFairQueueLegacyBlocksNeverThrottles pins the backwards-compat
// contract: the weight<=0 legacy flow blocks on a full queue (like the
// plain channel it replaced) and is never refused.
func TestFairQueueLegacyBlocksNeverThrottles(t *testing.T) {
	q := NewFairQueue[int](1)
	if err := q.Push("", 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- q.Push("", 0, 1, 2) }()
	select {
	case err := <-unblocked:
		t.Fatalf("legacy push did not block on full queue: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := <-unblocked; err != nil {
		t.Fatalf("unblocked push: %v", err)
	}
	if q.Throttles() != 0 {
		t.Fatalf("legacy flow throttled %d times", q.Throttles())
	}
}

// TestFairQueueThrottlesOverShare pins tenant isolation: a weighted flow
// at its fair share gets an immediate typed ThrottleError instead of
// crowding the queue.
func TestFairQueueThrottlesOverShare(t *testing.T) {
	q := NewFairQueue[int](4)
	var err error
	pushed := 0
	for i := 0; i < 10; i++ {
		err = q.Push("abuser", 1, 1, i)
		if err != nil {
			break
		}
		pushed++
	}
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("deep backlog err = %v", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) || te.Flow != "abuser" || te.RetryAfter <= 0 {
		t.Fatalf("throttle detail: %+v", te)
	}
	if secs, ok := RetryAfterSeconds(err); !ok || secs < 1 {
		t.Fatalf("RetryAfterSeconds = %d,%v", secs, ok)
	}
	// Sole backlogged flow: its share is the whole queue.
	if pushed != 4 {
		t.Fatalf("pushed %d before throttle, want 4 (full share)", pushed)
	}
	if q.Throttles() != 1 {
		t.Fatalf("throttles = %d", q.Throttles())
	}
	// Another tenant still gets in immediately after a drain: the abuser's
	// share shrinks once a second flow has backlog.
	q.Pop()
	if err := q.Push("victim", 1, 1, 99); err != nil {
		t.Fatalf("victim blocked by abuser backlog: %v", err)
	}
	// Now two active flows share capacity 4 -> abuser share is 2, and its
	// backlog (3) is already over it.
	if err := q.Push("abuser", 1, 1, 100); !errors.Is(err, ErrThrottled) {
		t.Fatalf("abuser re-admitted over share: %v", err)
	}
}

func TestFairQueueCloseSemantics(t *testing.T) {
	q := NewFairQueue[int](2)
	q.Push("a", 1, 1, 1)
	q.Push("a", 1, 1, 2)
	blocked := make(chan error, 1)
	go func() { blocked <- q.Push("", 0, 1, 3) }() // legacy, blocks on full
	time.Sleep(20 * time.Millisecond)
	q.Close()
	if err := <-blocked; !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("blocked push after close: %v", err)
	}
	// Poppers drain the backlog, then get ok=false.
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("drain 1: %d,%v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("drain 2: %d,%v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after drain returned an item")
	}
	if err := q.Push("a", 1, 1, 4); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close: %v", err)
	}
}

// TestFairQueueConcurrent race-exercises mixed pushers and poppers; every
// pushed item must be popped exactly once.
func TestFairQueueConcurrent(t *testing.T) {
	q := NewFairQueue[int](8)
	const perFlow = 200
	flows := []string{"", "a", "b", "c"} // "" = legacy
	var pushWG sync.WaitGroup
	var pushed, throttled sync.Map
	var pushedCount, throttledCount int64
	var mu sync.Mutex
	for fi, flow := range flows {
		pushWG.Add(1)
		go func(fi int, flow string) {
			defer pushWG.Done()
			weight := 1
			if flow == "" {
				weight = 0
			}
			for i := 0; i < perFlow; i++ {
				id := fi*perFlow + i
				for {
					err := q.Push(flow, weight, 1, id)
					if err == nil {
						pushed.Store(id, true)
						mu.Lock()
						pushedCount++
						mu.Unlock()
						break
					}
					if errors.Is(err, ErrThrottled) {
						throttled.Store(id, true)
						mu.Lock()
						throttledCount++
						mu.Unlock()
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("push: %v", err)
					return
				}
			}
		}(fi, flow)
	}
	var popWG sync.WaitGroup
	var popMu sync.Mutex
	got := make(map[int]int)
	for w := 0; w < 3; w++ {
		popWG.Add(1)
		go func() {
			defer popWG.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				popMu.Lock()
				got[v]++
				popMu.Unlock()
			}
		}()
	}
	pushWG.Wait()
	q.Close()
	popWG.Wait()
	mu.Lock()
	total := pushedCount
	mu.Unlock()
	if int64(len(got)) != total {
		t.Fatalf("popped %d distinct items, pushed %d", len(got), total)
	}
	for id, n := range got {
		if n != 1 {
			t.Fatalf("item %d popped %d times", id, n)
		}
	}
}
