package tenant

import "fmt"

// VMGate adapts a Registry to the orchestrator's admission seam
// (nebula.TenantGate): VM slots are check-and-reserved against the owner's
// quota at submit, returned when the instance retires, and Running time
// lands in the ledger as vm_seconds. Defined here so the wiring layer and
// tests share one adapter without nebula importing any of them.
type VMGate struct{ Reg *Registry }

// AdmitVM reserves one VM slot for owner (ErrQuotaExceeded when full).
func (g VMGate) AdmitVM(owner string) error {
	t := g.Reg.Get(owner)
	if t == nil {
		return fmt.Errorf("tenant: unknown tenant %q", owner)
	}
	return t.ReserveVM()
}

// ReleaseVM returns owner's slot.
func (g VMGate) ReleaseVM(owner string) {
	if t := g.Reg.Get(owner); t != nil {
		t.ReleaseVM()
	}
}

// MeterVMSeconds appends one completed Running interval to the ledger.
func (g VMGate) MeterVMSeconds(owner string, secs float64) {
	g.Reg.Meter(owner, KindVMSeconds, secs)
}
