package tenant

import (
	"sync"
	"time"
)

// Kind names a metered resource in the usage ledger.
type Kind string

// Ledger event kinds. Amount units are seconds for *Seconds kinds and
// bytes for Bytes* kinds.
const (
	// KindVMSeconds meters virtual-clock seconds a tenant's VM spent in
	// the Running state (appended when the VM leaves Running).
	KindVMSeconds Kind = "vm_seconds"
	// KindBytesStored meters bytes durably published to HDFS, appended
	// exactly once at publish time with the exact stored size.
	KindBytesStored Kind = "bytes_stored"
	// KindBytesDeleted meters stored bytes released by deletion.
	KindBytesDeleted Kind = "bytes_deleted"
	// KindBytesEgressed meters response-body bytes served to viewers,
	// attributed to the tenant that owns the video (IaaS billing model).
	KindBytesEgressed Kind = "bytes_egressed"
	// KindTranscodeSeconds meters source-seconds of video converted,
	// appended once per successful publish. Source seconds (from the
	// container header) are deterministic, so experiments reconcile the
	// ledger against uploads exactly.
	KindTranscodeSeconds Kind = "transcode_seconds"
	// KindHDFSBytesWritten is an independent verification channel: bytes
	// observed by the HDFS client write path for contexts carrying this
	// tenant. E17 cross-checks it against KindBytesStored.
	KindHDFSBytesWritten Kind = "hdfs_bytes_written"
)

// Usage is a tenant's accumulated metered totals.
type Usage struct {
	VMSeconds        float64 `json:"vm_seconds"`
	BytesStored      float64 `json:"bytes_stored"`
	BytesDeleted     float64 `json:"bytes_deleted"`
	BytesEgressed    float64 `json:"bytes_egressed"`
	TranscodeSeconds float64 `json:"transcode_seconds"`
	HDFSBytesWritten float64 `json:"hdfs_bytes_written"`
	Events           int64   `json:"events"`
}

func (u *Usage) add(kind Kind, amount float64) {
	switch kind {
	case KindVMSeconds:
		u.VMSeconds += amount
	case KindBytesStored:
		u.BytesStored += amount
	case KindBytesDeleted:
		u.BytesDeleted += amount
	case KindBytesEgressed:
		u.BytesEgressed += amount
	case KindTranscodeSeconds:
		u.TranscodeSeconds += amount
	case KindHDFSBytesWritten:
		u.HDFSBytesWritten += amount
	}
	u.Events++
}

// Event is one append-only ledger entry.
type Event struct {
	Seq    int64     `json:"seq"`
	Tenant string    `json:"tenant"`
	Kind   Kind      `json:"kind"`
	Amount float64   `json:"amount"`
	At     time.Time `json:"at"`
}

// eventTail bounds the retained raw-event ring. Totals are exact forever;
// the raw tail exists for inspection and debugging, not billing.
const eventTail = 65536

// Ledger is the append-only usage ledger: exact running totals per tenant
// plus a bounded ring of the most recent raw events. Appends never block
// on snapshots and never allocate per-tenant state twice.
type Ledger struct {
	mu     sync.Mutex
	seq    int64
	totals map[string]*Usage
	ring   []Event
	next   int // ring write cursor
	full   bool
	clock  func() time.Time
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		totals: make(map[string]*Usage),
		ring:   make([]Event, 0, 1024),
		clock:  time.Now,
	}
}

func (l *Ledger) setClock(fn func() time.Time) {
	l.mu.Lock()
	l.clock = fn
	l.mu.Unlock()
}

// Append records one metered event. Amounts <= 0 are dropped (nothing was
// consumed), keeping totals monotone non-decreasing.
func (l *Ledger) Append(tenantName string, kind Kind, amount float64) {
	if amount <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	u := l.totals[tenantName]
	if u == nil {
		u = &Usage{}
		l.totals[tenantName] = u
	}
	u.add(kind, amount)
	ev := Event{Seq: l.seq, Tenant: tenantName, Kind: kind, Amount: amount, At: l.clock()}
	if len(l.ring) < eventTail && !l.full {
		l.ring = append(l.ring, ev)
		if len(l.ring) == eventTail {
			l.full = true
		}
		return
	}
	l.ring[l.next] = ev
	l.next = (l.next + 1) % len(l.ring)
}

// Snapshot returns a copy of every tenant's accumulated totals — the
// accountant view surfaced through core.Status().
func (l *Ledger) Snapshot() map[string]Usage {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]Usage, len(l.totals))
	for name, u := range l.totals {
		out[name] = *u
	}
	return out
}

// Usage returns one tenant's accumulated totals.
func (l *Ledger) Usage(tenantName string) Usage {
	l.mu.Lock()
	defer l.mu.Unlock()
	if u := l.totals[tenantName]; u != nil {
		return *u
	}
	return Usage{}
}

// Events returns the retained raw-event tail in append order.
func (l *Ledger) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Event(nil), l.ring...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Seq returns the number of events ever appended.
func (l *Ledger) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
