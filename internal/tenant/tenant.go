// Package tenant turns the single-operator cloud into multi-tenant IaaS:
// a registry of named tenants with API tokens (crypto/rand generation,
// constant-time verification, scoped roles), hard per-tenant quotas
// enforced with check-and-reserve admission (never check-then-act), an
// append-only usage ledger with a snapshotting accountant, and a weighted
// start-time-fair queue that keeps one tenant's bulk burst from starving
// another's work.
//
// The package is dependency-free (stdlib only) so every layer — web,
// nebula, hdfs, core — can consume it without cycles. Identity is threaded
// through context.Context via WithContext/FromContext.
package tenant

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultName is the implicit tenant every unauthenticated request and
// legacy caller runs as. It is created by NewRegistry with no quota limits
// and legacy queue semantics (blocking backpressure, never throttled).
const DefaultName = "default"

// maxTenants bounds the registry so per-tenant metric label cardinality is
// bounded by construction: dashboards can enumerate tenants without a
// cardinality explosion.
const maxTenants = 64

// Role scopes what a token may do.
type Role uint8

// Token roles, weakest first.
const (
	// RoleReader may read: list VMs, stream video, fetch usage.
	RoleReader Role = 1 + iota
	// RoleWriter may additionally mutate the tenant's own resources:
	// upload, delete own videos, boot and shut down own VMs.
	RoleWriter
	// RoleAdmin is RoleWriter plus tenant administration. A RoleAdmin
	// token of the default tenant is the cloud operator: it sees every
	// tenant's resources and may drive host-level operations.
	RoleAdmin
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleReader:
		return "reader"
	case RoleWriter:
		return "writer"
	case RoleAdmin:
		return "admin"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// CanWrite reports whether the role may mutate resources.
func (r Role) CanWrite() bool { return r >= RoleWriter }

// Sentinel errors. Quota and throttle failures carry typed wrappers
// (QuotaError, ThrottleError) that errors.Is-match these sentinels and
// carry a Retry-After hint for the HTTP 429 mapping.
var (
	ErrQuotaExceeded = errors.New("tenant: quota exceeded")
	ErrThrottled     = errors.New("tenant: fair-share throttled")
	ErrBadToken      = errors.New("tenant: unknown or revoked token")
	ErrQueueClosed   = errors.New("tenant: queue closed")
)

// QuotaError reports a check-and-reserve admission failure.
type QuotaError struct {
	// Tenant and Resource identify what ran out ("vms", "storage_bytes",
	// "transcode_seconds").
	Tenant, Resource string
	// Used and Limit are the reservation level and cap at denial time.
	Used, Limit float64
	// RetryAfter hints when retrying may succeed (the window remainder
	// for rate quotas, a fixed backoff for capacity quotas).
	RetryAfter time.Duration
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %s: %s quota exceeded (%.6g of %.6g used)",
		e.Tenant, e.Resource, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrQuotaExceeded) hold.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }

// ThrottleError reports a weighted-fair-queue rejection: the flow's backlog
// reached its fair share of the queue, so the push was refused instead of
// letting the flow crowd everyone else out. The work is not lost — the
// caller retries after RetryAfter (HTTP 429 + Retry-After).
type ThrottleError struct {
	Flow           string
	Backlog, Share int
	RetryAfter     time.Duration
}

// Error implements error.
func (e *ThrottleError) Error() string {
	return fmt.Sprintf("tenant %s: transcode backlog %d at fair share %d — retry in %v",
		e.Flow, e.Backlog, e.Share, e.RetryAfter)
}

// Is makes errors.Is(err, ErrThrottled) hold.
func (e *ThrottleError) Is(target error) bool { return target == ErrThrottled }

// RetryAfterSeconds extracts the Retry-After hint (in whole seconds, >= 1)
// from a quota or throttle error; ok is false for other errors.
func RetryAfterSeconds(err error) (secs int, ok bool) {
	var d time.Duration
	var qe *QuotaError
	var te *ThrottleError
	switch {
	case errors.As(err, &qe):
		d = qe.RetryAfter
	case errors.As(err, &te):
		d = te.RetryAfter
	default:
		return 0, false
	}
	secs = int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs, true
}

// Quota caps a tenant's resource reservations. Zero fields are unlimited.
type Quota struct {
	// MaxVMs caps concurrently admitted VM instances.
	MaxVMs int
	// MaxStorageBytes caps HDFS bytes reserved for stored objects.
	MaxStorageBytes int64
	// TranscodeSecondsPerHour caps source-seconds of video admitted for
	// conversion per rolling one-hour window.
	TranscodeSecondsPerHour float64
}

// transcodeWindow is the rate-quota accounting window.
const transcodeWindow = time.Hour

// vmRetryAfter is the Retry-After hint for capacity (non-windowed) quotas:
// capacity frees when the tenant releases something, not on a schedule.
const vmRetryAfter = 30 * time.Second

// Tenant is one registered tenant: identity, scheduling weight, quota
// reservations, and abuse counters. All reservation methods are
// check-and-reserve under one mutex — concurrent admissions at the quota
// boundary can never overshoot the limit.
type Tenant struct {
	name   string
	weight int
	reg    *Registry

	mu          sync.Mutex
	quota       Quota
	vms         int
	storedBytes int64
	windowStart time.Time
	windowSecs  float64

	// Peaks record the high-water reservation per resource; experiments
	// assert peak <= limit to prove overshoot is exactly zero.
	peakVMs    int
	peakBytes  int64
	peakWindow float64

	requests     atomic.Int64
	quotaDenials atomic.Int64
	throttles    atomic.Int64
}

// Name returns the tenant's unique name.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's fair-share scheduling weight.
func (t *Tenant) Weight() int { return t.weight }

// IsDefault reports whether this is the implicit default tenant.
func (t *Tenant) IsDefault() bool { return t.name == DefaultName }

// Quota returns the tenant's current quota.
func (t *Tenant) Quota() Quota {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quota
}

// SetQuota replaces the tenant's quota. Existing reservations are kept even
// if they now exceed the new limits; only new admissions are denied.
func (t *Tenant) SetQuota(q Quota) {
	t.mu.Lock()
	t.quota = q
	t.mu.Unlock()
}

// ReserveVM admits one VM instance or fails with a QuotaError. Admission is
// atomic: the slot is held from the moment this returns nil until
// ReleaseVM, so racing boots cannot overshoot MaxVMs.
func (t *Tenant) ReserveVM() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quota.MaxVMs > 0 && t.vms+1 > t.quota.MaxVMs {
		t.quotaDenials.Add(1)
		return &QuotaError{Tenant: t.name, Resource: "vms",
			Used: float64(t.vms), Limit: float64(t.quota.MaxVMs), RetryAfter: vmRetryAfter}
	}
	t.vms++
	if t.vms > t.peakVMs {
		t.peakVMs = t.vms
	}
	return nil
}

// ReleaseVM frees one admitted VM slot.
func (t *Tenant) ReleaseVM() {
	t.mu.Lock()
	if t.vms > 0 {
		t.vms--
	}
	t.mu.Unlock()
}

// ReserveBytes admits n bytes of storage or fails with a QuotaError.
func (t *Tenant) ReserveBytes(n int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reserveBytesLocked(n)
}

func (t *Tenant) reserveBytesLocked(n int64) error {
	if n < 0 {
		n = 0
	}
	if t.quota.MaxStorageBytes > 0 && t.storedBytes+n > t.quota.MaxStorageBytes {
		t.quotaDenials.Add(1)
		return &QuotaError{Tenant: t.name, Resource: "storage_bytes",
			Used: float64(t.storedBytes), Limit: float64(t.quota.MaxStorageBytes), RetryAfter: vmRetryAfter}
	}
	t.storedBytes += n
	if t.storedBytes > t.peakBytes {
		t.peakBytes = t.storedBytes
	}
	return nil
}

// ReleaseBytes frees n reserved storage bytes.
func (t *Tenant) ReleaseBytes(n int64) {
	t.mu.Lock()
	if n > 0 {
		t.storedBytes -= n
		if t.storedBytes < 0 {
			t.storedBytes = 0
		}
	}
	t.mu.Unlock()
}

// AdjustBytes atomically replaces an old reservation with a new one — the
// publish-time correction from the admission-time estimate to the exact
// stored size. On failure the old reservation is kept.
func (t *Tenant) AdjustBytes(old, new int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old > 0 {
		t.storedBytes -= old
		if t.storedBytes < 0 {
			t.storedBytes = 0
		}
	}
	if err := t.reserveBytesLocked(new); err != nil {
		t.storedBytes += old // restore: admission keeps its estimate
		return err
	}
	return nil
}

// ReserveTranscode admits secs source-seconds of conversion against the
// rolling hourly window, or fails with a QuotaError whose RetryAfter is the
// window remainder.
func (t *Tenant) ReserveTranscode(secs float64) error {
	if secs < 0 {
		secs = 0
	}
	now := t.reg.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.windowStart.IsZero() || now.Sub(t.windowStart) >= transcodeWindow {
		t.windowStart, t.windowSecs = now, 0
	}
	if lim := t.quota.TranscodeSecondsPerHour; lim > 0 && t.windowSecs+secs > lim {
		t.quotaDenials.Add(1)
		return &QuotaError{Tenant: t.name, Resource: "transcode_seconds",
			Used: t.windowSecs, Limit: lim,
			RetryAfter: t.windowStart.Add(transcodeWindow).Sub(now)}
	}
	t.windowSecs += secs
	if t.windowSecs > t.peakWindow {
		t.peakWindow = t.windowSecs
	}
	return nil
}

// ReleaseTranscode returns secs to the current window (a reservation whose
// conversion failed). A reservation from an already-rotated window is gone;
// releasing it is a no-op.
func (t *Tenant) ReleaseTranscode(secs float64) {
	now := t.reg.now()
	t.mu.Lock()
	if !t.windowStart.IsZero() && now.Sub(t.windowStart) < transcodeWindow && secs > 0 {
		t.windowSecs -= secs
		if t.windowSecs < 0 {
			t.windowSecs = 0
		}
	}
	t.mu.Unlock()
}

// CountThrottle records a fair-queue throttle against the tenant.
func (t *Tenant) CountThrottle() { t.throttles.Add(1) }

// Reservations is a point-in-time view of a tenant's quota state.
type Reservations struct {
	VMs                 int
	StorageBytes        int64
	TranscodeWindowSecs float64
	PeakVMs             int
	PeakStorageBytes    int64
	PeakTranscodeWindow float64
	Requests            int64
	QuotaDenials        int64
	Throttles           int64
}

// Reservations snapshots the tenant's reservation and abuse counters.
func (t *Tenant) Reservations() Reservations {
	t.mu.Lock()
	r := Reservations{
		VMs: t.vms, StorageBytes: t.storedBytes, TranscodeWindowSecs: t.windowSecs,
		PeakVMs: t.peakVMs, PeakStorageBytes: t.peakBytes, PeakTranscodeWindow: t.peakWindow,
	}
	t.mu.Unlock()
	r.Requests = t.requests.Load()
	r.QuotaDenials = t.quotaDenials.Load()
	r.Throttles = t.throttles.Load()
	return r
}

// Overshoot returns how far the tenant's peak reservations ever exceeded
// its limits. A correct check-and-reserve admission path returns all zeros
// no matter how hard the quota boundary is hammered.
func (t *Tenant) Overshoot() (vms int, bytes int64, transcodeSecs float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quota.MaxVMs > 0 && t.peakVMs > t.quota.MaxVMs {
		vms = t.peakVMs - t.quota.MaxVMs
	}
	if t.quota.MaxStorageBytes > 0 && t.peakBytes > t.quota.MaxStorageBytes {
		bytes = t.peakBytes - t.quota.MaxStorageBytes
	}
	if lim := t.quota.TranscodeSecondsPerHour; lim > 0 && t.peakWindow > lim {
		transcodeSecs = t.peakWindow - lim
	}
	return vms, bytes, transcodeSecs
}

// grant is what a token resolves to.
type grant struct {
	t    *Tenant
	role Role
}

// Registry is the tenant directory: named tenants, their tokens, and the
// shared usage ledger. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
	order   []string
	tokens  map[[32]byte]grant
	ledger  *Ledger
	clock   func() time.Time
}

// NewRegistry builds a registry holding only the default tenant (weight 1,
// no quota limits).
func NewRegistry() *Registry {
	r := &Registry{
		tenants: make(map[string]*Tenant),
		tokens:  make(map[[32]byte]grant),
		ledger:  NewLedger(),
		clock:   time.Now,
	}
	def := &Tenant{name: DefaultName, weight: 1, reg: r}
	r.tenants[DefaultName] = def
	r.order = append(r.order, DefaultName)
	return r
}

// SetClock injects a time source (tests drive quota windows with it).
func (r *Registry) SetClock(fn func() time.Time) {
	r.mu.Lock()
	r.clock = fn
	r.mu.Unlock()
	r.ledger.setClock(fn)
}

func (r *Registry) now() time.Time {
	r.mu.Lock()
	fn := r.clock
	r.mu.Unlock()
	return fn()
}

// Create registers a tenant. Weight < 1 is normalised to 1. The registry is
// capped at maxTenants so per-tenant label cardinality stays bounded.
func (r *Registry) Create(name string, weight int, q Quota) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("tenant: empty name")
	}
	if weight < 1 {
		weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[name]; dup {
		return nil, fmt.Errorf("tenant: %q already exists", name)
	}
	if len(r.tenants) >= maxTenants {
		return nil, fmt.Errorf("tenant: registry full (%d tenants)", maxTenants)
	}
	t := &Tenant{name: name, weight: weight, reg: r, quota: q}
	r.tenants[name] = t
	r.order = append(r.order, name)
	return t, nil
}

// Get returns the named tenant, or nil. The empty name resolves to the
// default tenant (legacy rows carry no tenant column).
func (r *Registry) Get(name string) *Tenant {
	if name == "" {
		name = DefaultName
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[name]
}

// Default returns the implicit default tenant.
func (r *Registry) Default() *Tenant { return r.Get(DefaultName) }

// Tenants returns every tenant in creation order.
func (r *Registry) Tenants() []*Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Tenant, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.tenants[name])
	}
	return out
}

// Ledger returns the registry's shared usage ledger.
func (r *Registry) Ledger() *Ledger { return r.ledger }

// Meter appends a usage event for the named tenant.
func (r *Registry) Meter(tenantName string, kind Kind, amount float64) {
	if tenantName == "" {
		tenantName = DefaultName
	}
	r.ledger.Append(tenantName, kind, amount)
}

// IssueToken mints an API token for the named tenant. The cleartext token
// is returned exactly once; the registry stores only its SHA-256 hash, so a
// registry dump cannot be replayed as credentials.
func (r *Registry) IssueToken(tenantName string, role Role) (string, error) {
	if role < RoleReader || role > RoleAdmin {
		return "", fmt.Errorf("tenant: invalid role %d", role)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[tenantName]
	if !ok {
		return "", fmt.Errorf("tenant: no tenant %q", tenantName)
	}
	tok := NewToken()
	r.tokens[HashToken(tok)] = grant{t: t, role: role}
	return tok, nil
}

// Revoke invalidates a token, reporting whether it existed.
func (r *Registry) Revoke(token string) bool {
	h := HashToken(token)
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.tokens[h]
	delete(r.tokens, h)
	return ok
}

// Authenticate resolves a presented token in constant time with respect to
// the stored credentials: the token is hashed and the digest used as the
// lookup key, so timing reveals nothing about any stored token — an
// attacker learns at most about the hash of their own guess, which SHA-256
// preimage resistance makes useless. The hot path is <= 2 allocs/op
// (gated by TestAllocAuthenticate, wired into `make alloccheck`).
func (r *Registry) Authenticate(token string) (*Tenant, Role, error) {
	h := sha256.Sum256([]byte(token))
	r.mu.Lock()
	g, ok := r.tokens[h]
	r.mu.Unlock()
	if !ok {
		return nil, 0, ErrBadToken
	}
	g.t.requests.Add(1)
	return g.t, g.role, nil
}

// NewToken returns a fresh 256-bit random token as 64 hex characters. It is
// the shared generator for API tokens, web session cookies, verification
// links, and password salts.
func NewToken() string {
	var b [32]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("tenant: entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// HashToken digests a token for storage or map lookup. Comparing digests by
// map key is the constant-time comparison: equality tests run on the
// fixed-width hash, never on the secret itself.
func HashToken(token string) [32]byte { return sha256.Sum256([]byte(token)) }

// Status is one tenant's row in a dashboard: identity, reservations, and
// accumulated usage from the ledger.
type Status struct {
	Name   string
	Weight int
	Quota  Quota
	Res    Reservations
	Usage  Usage
}

// StatusAll snapshots every tenant (creation order) joined with its ledger
// usage — the accountant view core.Status().Tenants surfaces.
func (r *Registry) StatusAll() []Status {
	tenants := r.Tenants()
	usage := r.ledger.Snapshot()
	out := make([]Status, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, Status{
			Name: t.name, Weight: t.weight, Quota: t.Quota(),
			Res: t.Reservations(), Usage: usage[t.name],
		})
	}
	return out
}

// ---- context threading ----

type ctxKey struct{}

type ctxIdentity struct {
	t    *Tenant
	role Role
}

// WithContext attaches a tenant identity to ctx. It survives across the
// layers that thread ctx (web → queue → farm → HDFS → nebula); note that
// trace.Reparent drops context values, so async hops re-attach explicitly.
func WithContext(ctx context.Context, t *Tenant, role Role) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxIdentity{t: t, role: role})
}

// FromContext returns the tenant identity attached to ctx, if any.
func FromContext(ctx context.Context) (*Tenant, Role, bool) {
	id, ok := ctx.Value(ctxKey{}).(ctxIdentity)
	if !ok {
		return nil, 0, false
	}
	return id.t, id.role, true
}
