package tenant

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTokenLifecycle(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create("acme", 2, Quota{MaxVMs: 3}); err != nil {
		t.Fatal(err)
	}
	tok, err := r.IssueToken("acme", RoleWriter)
	if err != nil {
		t.Fatal(err)
	}
	if len(tok) != 64 {
		t.Fatalf("token length = %d, want 64 hex chars", len(tok))
	}
	ten, role, err := r.Authenticate(tok)
	if err != nil {
		t.Fatal(err)
	}
	if ten.Name() != "acme" || role != RoleWriter {
		t.Fatalf("authenticated as %s/%v", ten.Name(), role)
	}
	if !role.CanWrite() {
		t.Fatal("writer role cannot write")
	}
	if _, _, err := r.Authenticate("deadbeef"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("bad token err = %v", err)
	}
	if !r.Revoke(tok) {
		t.Fatal("revoke of live token reported false")
	}
	if _, _, err := r.Authenticate(tok); !errors.Is(err, ErrBadToken) {
		t.Fatalf("revoked token authenticated: %v", err)
	}
	if r.Revoke(tok) {
		t.Fatal("double revoke reported true")
	}
	if _, err := r.IssueToken("ghost", RoleReader); err == nil {
		t.Fatal("token issued for unknown tenant")
	}
	if _, err := r.IssueToken("acme", Role(99)); err == nil {
		t.Fatal("token issued with invalid role")
	}
}

func TestTokensAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 256; i++ {
		tok := NewToken()
		if seen[tok] {
			t.Fatal("duplicate token from NewToken")
		}
		seen[tok] = true
	}
}

func TestRegistryCreate(t *testing.T) {
	r := NewRegistry()
	if r.Default() == nil || !r.Default().IsDefault() {
		t.Fatal("registry has no default tenant")
	}
	if r.Get("") != r.Default() {
		t.Fatal("empty name does not resolve to default")
	}
	if _, err := r.Create("", 1, Quota{}); err == nil {
		t.Fatal("created tenant with empty name")
	}
	if _, err := r.Create("dup", 1, Quota{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("dup", 1, Quota{}); err == nil {
		t.Fatal("created duplicate tenant")
	}
	ten, _ := r.Create("weighted", -5, Quota{})
	if ten.Weight() != 1 {
		t.Fatalf("weight normalised to %d, want 1", ten.Weight())
	}
	if got := len(r.Tenants()); got != 3 {
		t.Fatalf("Tenants() = %d entries, want 3", got)
	}
}

func TestRegistryCap(t *testing.T) {
	r := NewRegistry()
	var err error
	for i := 0; err == nil; i++ {
		_, err = r.Create(string(rune('a'+i%26))+string(rune('0'+i/26)), 1, Quota{})
	}
	if n := len(r.Tenants()); n != maxTenants {
		t.Fatalf("registry grew to %d tenants, want cap at %d", n, maxTenants)
	}
}

func TestQuotaVMs(t *testing.T) {
	r := NewRegistry()
	ten, _ := r.Create("a", 1, Quota{MaxVMs: 2})
	if err := ten.ReserveVM(); err != nil {
		t.Fatal(err)
	}
	if err := ten.ReserveVM(); err != nil {
		t.Fatal(err)
	}
	err := ten.ReserveVM()
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third VM err = %v", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "vms" {
		t.Fatalf("quota error detail: %+v", err)
	}
	if secs, ok := RetryAfterSeconds(err); !ok || secs < 1 {
		t.Fatalf("RetryAfterSeconds = %d,%v", secs, ok)
	}
	ten.ReleaseVM()
	if err := ten.ReserveVM(); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if res := ten.Reservations(); res.QuotaDenials != 1 || res.PeakVMs != 2 {
		t.Fatalf("reservations = %+v", res)
	}
}

func TestQuotaBytesAdjust(t *testing.T) {
	r := NewRegistry()
	ten, _ := r.Create("a", 1, Quota{MaxStorageBytes: 1000})
	if err := ten.ReserveBytes(600); err != nil {
		t.Fatal(err)
	}
	if err := ten.ReserveBytes(600); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("overshoot admitted: %v", err)
	}
	// Publish-time correction down: 600-byte estimate became 400 actual.
	if err := ten.AdjustBytes(600, 400); err != nil {
		t.Fatal(err)
	}
	if res := ten.Reservations(); res.StorageBytes != 400 {
		t.Fatalf("after adjust: %d bytes reserved", res.StorageBytes)
	}
	// Correction up past the limit must fail and keep the old reservation.
	if err := ten.AdjustBytes(400, 1200); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-limit adjust admitted: %v", err)
	}
	if res := ten.Reservations(); res.StorageBytes != 400 {
		t.Fatalf("failed adjust changed reservation to %d", res.StorageBytes)
	}
	ten.ReleaseBytes(9999) // over-release clamps at zero
	if res := ten.Reservations(); res.StorageBytes != 0 {
		t.Fatalf("after release: %d", res.StorageBytes)
	}
}

func TestQuotaTranscodeWindow(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	ten, _ := r.Create("a", 1, Quota{TranscodeSecondsPerHour: 100})
	if err := ten.ReserveTranscode(80); err != nil {
		t.Fatal(err)
	}
	err := ten.ReserveTranscode(30)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("window overshoot admitted: %v", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.RetryAfter != transcodeWindow {
		t.Fatalf("retry-after = %v, want window remainder", qe.RetryAfter)
	}
	// A failed conversion returns its reservation.
	ten.ReleaseTranscode(80)
	if err := ten.ReserveTranscode(100); err != nil {
		t.Fatal(err)
	}
	// The window rotates after an hour; the budget refills.
	now = now.Add(time.Hour + time.Second)
	if err := ten.ReserveTranscode(100); err != nil {
		t.Fatalf("after window rotation: %v", err)
	}
}

// TestQuotaBoundaryRace hammers concurrent reservations exactly at the
// quota boundary under -race and asserts admission is check-and-reserve:
// the admitted count matches the limit exactly and peak reservations never
// overshoot (satellite 2).
func TestQuotaBoundaryRace(t *testing.T) {
	r := NewRegistry()
	const limitVMs, limitBytes = 16, 16 * 1024
	ten, _ := r.Create("hot", 1, Quota{
		MaxVMs: limitVMs, MaxStorageBytes: limitBytes, TranscodeSecondsPerHour: 64,
	})
	const workers = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	admittedVMs, admittedBytes, admittedSecs := 0, int64(0), 0.0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				if ten.ReserveVM() == nil {
					mu.Lock()
					admittedVMs++
					mu.Unlock()
				}
				if ten.ReserveBytes(1024) == nil {
					mu.Lock()
					admittedBytes += 1024
					mu.Unlock()
				}
				if ten.ReserveTranscode(4) == nil {
					mu.Lock()
					admittedSecs += 4
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if admittedVMs != limitVMs {
		t.Errorf("admitted %d VMs, want exactly %d", admittedVMs, limitVMs)
	}
	if admittedBytes != limitBytes {
		t.Errorf("admitted %d bytes, want exactly %d", admittedBytes, limitBytes)
	}
	if admittedSecs != 64 {
		t.Errorf("admitted %.0f transcode secs, want exactly 64", admittedSecs)
	}
	if vms, bytes, secs := ten.Overshoot(); vms != 0 || bytes != 0 || secs != 0 {
		t.Errorf("overshoot: vms=%d bytes=%d secs=%.3f, want all zero", vms, bytes, secs)
	}
	res := ten.Reservations()
	if res.PeakVMs != limitVMs || res.PeakStorageBytes != limitBytes {
		t.Errorf("peaks = %+v", res)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Append("a", KindBytesStored, 100)
	l.Append("a", KindBytesStored, 50)
	l.Append("a", KindTranscodeSeconds, 7)
	l.Append("b", KindVMSeconds, 30)
	l.Append("b", KindBytesEgressed, 0)  // dropped: nothing consumed
	l.Append("b", KindBytesEgressed, -5) // dropped
	snap := l.Snapshot()
	if snap["a"].BytesStored != 150 || snap["a"].TranscodeSeconds != 7 || snap["a"].Events != 3 {
		t.Fatalf("tenant a usage: %+v", snap["a"])
	}
	if snap["b"].VMSeconds != 30 || snap["b"].Events != 1 {
		t.Fatalf("tenant b usage: %+v", snap["b"])
	}
	if got := l.Usage("ghost"); got.Events != 0 {
		t.Fatalf("ghost usage: %+v", got)
	}
	evs := l.Events()
	if len(evs) != 4 || evs[0].Seq != 1 || evs[3].Seq != 4 {
		t.Fatalf("events: %+v", evs)
	}
	if l.Seq() != 4 {
		t.Fatalf("seq = %d", l.Seq())
	}
}

func TestLedgerConcurrentAppend(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Append("t", KindBytesEgressed, 1)
			}
		}()
	}
	wg.Wait()
	if got := l.Usage("t").BytesEgressed; got != 8000 {
		t.Fatalf("total = %.0f, want 8000", got)
	}
}

func TestContextThreading(t *testing.T) {
	r := NewRegistry()
	ten, _ := r.Create("ctx", 1, Quota{})
	ctx := WithContext(context.Background(), ten, RoleWriter)
	got, role, ok := FromContext(ctx)
	if !ok || got != ten || role != RoleWriter {
		t.Fatalf("FromContext = %v/%v/%v", got, role, ok)
	}
	if _, _, ok := FromContext(context.Background()); ok {
		t.Fatal("bare context carries a tenant")
	}
	if WithContext(context.Background(), nil, RoleWriter) != context.Background() {
		t.Fatal("nil tenant attached something")
	}
}

func TestStatusAll(t *testing.T) {
	r := NewRegistry()
	r.Create("z-late", 3, Quota{MaxVMs: 5})
	r.Create("a-early", 1, Quota{})
	r.Meter("z-late", KindBytesStored, 42)
	sts := r.StatusAll()
	if len(sts) != 3 {
		t.Fatalf("%d statuses", len(sts))
	}
	// Creation order, default first.
	if sts[0].Name != DefaultName || sts[1].Name != "z-late" || sts[2].Name != "a-early" {
		t.Fatalf("order: %s, %s, %s", sts[0].Name, sts[1].Name, sts[2].Name)
	}
	if sts[1].Usage.BytesStored != 42 || sts[1].Weight != 3 || sts[1].Quota.MaxVMs != 5 {
		t.Fatalf("z-late status: %+v", sts[1])
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{RoleReader: "reader", RoleWriter: "writer", RoleAdmin: "admin"} {
		if r.String() != want {
			t.Fatalf("%d.String() = %q", r, r.String())
		}
	}
}
