package trace

import (
	"context"
	"errors"
	"testing"
)

// Allocation regression gates for the disabled-tracer fast path (make tier1
// runs these via the alloccheck target). Instrumentation ships permanently
// wired into every layer, so the disabled path must cost literally nothing:
// StartSpan returns the context unchanged and a nil span, and every Span
// method short-circuits on the nil receiver.

func TestAllocDisabledStartSpan(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	tr := New(Options{Enabled: false})
	ctx := context.Background()
	got := testing.AllocsPerRun(10, func() {
		c, sp := tr.StartSpan(ctx, "web.upload")
		sp.Annotate("k", "v")
		sp.AnnotateInt("n", 42)
		sp.SetError(errTest)
		child := sp.StartChild("hdfs.read_block")
		child.End()
		sp.End()
		if c != ctx {
			t.Fatal("disabled StartSpan must return ctx unchanged")
		}
	})
	if got != 0 {
		t.Fatalf("disabled StartSpan path allocates %.0f times per op, want 0", got)
	}
}

func TestAllocNilTracer(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	var tr *Tracer
	ctx := context.Background()
	got := testing.AllocsPerRun(10, func() {
		_, sp := tr.StartSpan(ctx, "web.stream")
		sp.End()
		if rt := tr.StartRoot("nebula.vm"); rt != nil {
			t.Fatal("nil tracer StartRoot must return nil")
		}
	})
	if got != 0 {
		t.Fatalf("nil-tracer path allocates %.0f times per op, want 0", got)
	}
}

func TestAllocFromContextDisabled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	ctx := context.Background()
	got := testing.AllocsPerRun(10, func() {
		sp := FromContext(ctx)
		sp.Annotate("k", "v")
		c := sp.StartChild("farm.task")
		c.End()
	})
	if got != 0 {
		t.Fatalf("FromContext on a bare context allocates %.0f times per op, want 0", got)
	}
}

var errTest = errors.New("test error")
