package trace

import (
	"context"
	"testing"
	"time"
)

// The `make trace` target runs these three into BENCH_trace.json: the cost
// of a root+child span pair with tracing disabled (must be 0 B/op — the
// price every request pays forever), head-sampled at 1%, and always-on.

func benchSpans(b *testing.B, tr *Tracer) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, sp := tr.StartSpan(ctx, "web.stream")
		child := FromContext(c).StartChild("hdfs.read_block")
		child.End()
		sp.End()
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	benchSpans(b, New(Options{Enabled: false}))
}

func BenchmarkTraceSampled(b *testing.B) {
	benchSpans(b, New(Options{Enabled: true, SampleRate: 0.01, SlowThreshold: time.Hour}))
}

func BenchmarkTraceAlwaysOn(b *testing.B) {
	benchSpans(b, New(Options{Enabled: true, SampleRate: 1, SlowThreshold: time.Hour}))
}

func BenchmarkTraceCriticalPath(b *testing.B) {
	tr := New(Options{Enabled: true, SampleRate: 1, SlowThreshold: time.Hour})
	ctx, root := tr.StartSpan(context.Background(), "web.upload")
	for i := 0; i < 16; i++ {
		_, sp := tr.StartSpan(ctx, "hdfs.write_file")
		for j := 0; j < 4; j++ {
			sp.StartChild("hdfs.write_block").End()
		}
		sp.End()
	}
	root.End()
	g := tr.Trace(root.TraceID())
	if g == nil {
		b.Fatal("trace not stored")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Summarize(g); s.Total <= 0 {
			b.Fatal("empty summary")
		}
	}
}
