package trace

import (
	"sort"
	"time"
)

// PathStep is one segment of a trace's critical path: the half-open wall
// interval [Start, End) (offsets from the trace start) attributed to one
// span's own work — the time no deeper child accounts for.
type PathStep struct {
	SpanID uint64        `json:"span_id"`
	Name   string        `json:"name"`
	Layer  string        `json:"layer"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
}

// LayerTime is one layer's share of a critical path.
type LayerTime struct {
	Layer string        `json:"layer"`
	Time  time.Duration `json:"time_ns"`
}

// PathSummary is the per-layer attribution of a trace's critical path.
type PathSummary struct {
	Total    time.Duration // the root span's wall window
	RootSelf time.Duration // root time no child accounts for
	Coverage float64       // 1 - RootSelf/Total: fraction attributed to children
	Layers   []LayerTime   // self-time per layer, largest first
	Steps    []PathStep    // the full path, earliest first
}

// cpNode is a span plus its effective end: the latest wall end among the
// span and all its descendants. Async children (queue work, prefetches) may
// outlive their parent; the effective end extends the parent's window so
// their time still lands on the path.
type cpNode struct {
	SpanData
	effEnd   time.Duration
	children []*cpNode
	used     bool
}

// CriticalPath walks a completed trace backward from the root's effective
// end, always descending into the child that was last active, and returns
// the sequence of self-time segments covering the whole window. Every
// instant of the root's window is attributed to exactly one span; gaps no
// child covers become the parent's own time.
func CriticalPath(tr *Trace) []PathStep {
	if tr == nil || len(tr.Spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*cpNode, len(tr.Spans))
	for _, s := range tr.Spans {
		nodes[s.SpanID] = &cpNode{SpanData: s, effEnd: s.End()}
	}
	var root *cpNode
	for _, n := range nodes {
		if p := nodes[n.ParentID]; n.ParentID != 0 && p != nil {
			p.children = append(p.children, n)
		} else if n.ParentID == 0 {
			if root == nil || n.Start < root.Start {
				root = n
			}
		}
	}
	if root == nil {
		return nil
	}
	var lift func(n *cpNode) time.Duration
	lift = func(n *cpNode) time.Duration {
		for _, c := range n.children {
			if e := lift(c); e > n.effEnd {
				n.effEnd = e
			}
		}
		return n.effEnd
	}
	lift(root)

	var steps []PathStep
	var walk func(n *cpNode, winStart, winEnd time.Duration)
	walk = func(n *cpNode, winStart, winEnd time.Duration) {
		cur := winEnd
		for cur > winStart {
			// The child that was last active strictly before cur.
			var best *cpNode
			bestEnd := time.Duration(-1)
			for _, c := range n.children {
				if c.used || c.Start >= cur {
					continue
				}
				ce := c.effEnd
				if ce > cur {
					ce = cur
				}
				if ce > bestEnd || (ce == bestEnd && best != nil && c.Start > best.Start) {
					best, bestEnd = c, ce
				}
			}
			if best == nil {
				break
			}
			best.used = true
			if bestEnd < cur {
				steps = append(steps, PathStep{n.SpanID, n.Name, n.Layer, bestEnd, cur})
			}
			cs := best.Start
			if cs < winStart {
				cs = winStart
			}
			walk(best, cs, bestEnd)
			cur = cs
		}
		if cur > winStart {
			steps = append(steps, PathStep{n.SpanID, n.Name, n.Layer, winStart, cur})
		}
	}
	walk(root, root.Start, root.effEnd)
	sort.Slice(steps, func(i, j int) bool { return steps[i].Start < steps[j].Start })
	return steps
}

// Summarize extracts the critical path and attributes it per layer. Total
// is the root's effective window; Coverage is the fraction of that window
// attributed to spans other than the root itself.
func Summarize(tr *Trace) PathSummary {
	steps := CriticalPath(tr)
	if len(steps) == 0 {
		return PathSummary{}
	}
	root, _ := tr.RootSpan()
	byLayer := map[string]time.Duration{}
	var total, rootSelf time.Duration
	for _, st := range steps {
		d := st.End - st.Start
		total += d
		byLayer[st.Layer] += d
		if st.SpanID == root.SpanID {
			rootSelf += d
		}
	}
	layers := make([]LayerTime, 0, len(byLayer))
	for l, d := range byLayer {
		layers = append(layers, LayerTime{Layer: l, Time: d})
	}
	sort.Slice(layers, func(i, j int) bool {
		if layers[i].Time != layers[j].Time {
			return layers[i].Time > layers[j].Time
		}
		return layers[i].Layer < layers[j].Layer
	})
	cov := 0.0
	if total > 0 {
		cov = 1 - float64(rootSelf)/float64(total)
	}
	return PathSummary{Total: total, RootSelf: rootSelf, Coverage: cov, Layers: layers, Steps: steps}
}
