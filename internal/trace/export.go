package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ExportJSON marshals traces in the native span format (indented, stable).
func ExportJSON(traces []*Trace) ([]byte, error) {
	return json.MarshalIndent(traces, "", "  ")
}

// chromeEvent is one entry in Chrome's trace-event format (the JSON array
// flavor loadable in chrome://tracing and Perfetto). Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ExportChrome renders traces as Chrome trace-event JSON: one process per
// trace, one thread per layer, complete ("X") events per span, with
// annotations, errors, and sim-clock stamps in args.
func ExportChrome(traces []*Trace) ([]byte, error) {
	var events []chromeEvent
	for pi, tr := range traces {
		pid := pi + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": fmt.Sprintf("%s trace %016x", tr.Root, tr.TraceID)},
		})
		// Deterministic thread (layer) numbering per trace.
		layerTid := map[string]int{}
		var layers []string
		for _, s := range tr.Spans {
			if _, ok := layerTid[s.Layer]; !ok {
				layerTid[s.Layer] = 0
				layers = append(layers, s.Layer)
			}
		}
		sort.Strings(layers)
		for i, l := range layers {
			layerTid[l] = i + 1
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
				Args: map[string]string{"name": l},
			})
		}
		for _, s := range tr.Spans {
			args := map[string]string{
				"trace_id": fmt.Sprintf("%016x", s.TraceID),
				"span_id":  fmt.Sprintf("%x", s.SpanID),
			}
			if s.ParentID != 0 {
				args["parent_id"] = fmt.Sprintf("%x", s.ParentID)
			}
			if s.Error != "" {
				args["error"] = s.Error
			}
			if s.SimDuration > 0 {
				args["sim_start"] = s.SimStart.String()
				args["sim_duration"] = s.SimDuration.String()
			}
			for _, a := range s.Annotations {
				args[a.Key] = a.Value
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Cat:  s.Layer,
				Ph:   "X",
				Ts:   float64(s.Start.Nanoseconds()) / 1e3,
				Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
				Pid:  pid,
				Tid:  layerTid[s.Layer],
				Args: args,
			})
		}
	}
	return json.MarshalIndent(events, "", " ")
}
